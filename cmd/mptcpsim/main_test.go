package main

import (
	"os"
	"os/exec"
	"strings"
	"testing"
)

// TestRejectsUnknownScheduler re-executes the test binary as mptcpsim
// with a bogus -scheduler and proves the typo dies at flag-parse time:
// exit code 1, a single error line naming the bad spec, no panic, and
// no simulation output.
func TestRejectsUnknownScheduler(t *testing.T) {
	if os.Getenv("MPTCPSIM_RUN_MAIN") == "1" {
		os.Args = []string{"mptcpsim", "-scheduler", "bogus"}
		main()
		return
	}
	cmd := exec.Command(os.Args[0], "-test.run=TestRejectsUnknownScheduler")
	cmd.Env = append(os.Environ(), "MPTCPSIM_RUN_MAIN=1")
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("want the child to exit non-zero, got err=%v; output:\n%s", err, out)
	}
	if code := ee.ExitCode(); code != 1 {
		t.Fatalf("exit code %d, want 1; output:\n%s", code, out)
	}
	text := strings.TrimSpace(string(out))
	if strings.Contains(text, "panic") {
		t.Fatalf("scheduler validation panicked:\n%s", out)
	}
	if strings.Count(text, "\n") != 0 {
		t.Errorf("want a one-line error, got:\n%s", out)
	}
	if !strings.HasPrefix(text, "mptcpsim:") || !strings.Contains(text, `"bogus"`) {
		t.Errorf("error line %q should name the binary and the bad scheduler", text)
	}
}
