// Command mptcpsim runs one configured download on the simulated
// testbed and reports its metrics — the unit of measurement behind
// every figure in the paper. It can also write tcpdump-style pcap
// captures from both endpoints for offline analysis with tracestat.
package main

import (
	"flag"
	"fmt"
	"os"

	"mptcplab/internal/experiment"
	"mptcplab/internal/mptcp"
	"mptcplab/internal/pathmodel"
	"mptcplab/internal/pcap"
	"mptcplab/internal/stats"
	"mptcplab/internal/trace"
	"mptcplab/internal/units"
)

func main() {
	var (
		transport  = flag.String("transport", "mp2", "sp-wifi | sp-cell | mp2 | mp4")
		carrier    = flag.String("carrier", "att", "att | verizon | sprint")
		wifi       = flag.String("wifi", "wifi", "wifi | coffeeshop")
		controller = flag.String("cc", "coupled", "reno | coupled | olia")
		scheduler  = flag.String("scheduler", "minrtt", "scheduler plugin: minrtt | roundrobin | weighted[:w0;w1;...] | redundant | blest | adaptive | backup")
		sizeKB     = flag.Int("size-kb", 4096, "download size in KB")
		seed       = flag.Int64("seed", 1, "simulation seed")
		simSYN     = flag.Bool("simultaneous-syn", false, "send all subflow SYNs together (§4.1.2)")
		penalize   = flag.Bool("penalize", false, "enable v0.86 receive-buffer penalization")
		coldRadio  = flag.Bool("cold-radio", false, "skip the pre-measurement radio warmup pings")
		pcapOut    = flag.String("pcap", "", "write client+server captures to <prefix>-client.pcap / -server.pcap")
	)
	flag.Parse()

	// A scheduler typo must die here with a one-line error, not run
	// the whole simulation under a silent fallback policy.
	exitOn(mptcp.ValidateScheduler(*scheduler))

	cellProfile, err := pathmodel.ByName(*carrier)
	exitOn(err)
	wifiProfile, err := pathmodel.ByName(*wifi)
	exitOn(err)

	tb := experiment.NewTestbed(experiment.TestbedConfig{
		WiFi:              wifiProfile,
		Cell:              cellProfile,
		ServerSecondIface: *transport == "mp4",
		SampleProfiles:    true,
		WarmRadio:         !*coldRadio,
		Seed:              *seed,
	})

	var closers []func()
	if *pcapOut != "" {
		closers = append(closers, attachPcap(tb, *pcapOut)...)
	}

	rc := experiment.RunConfig{
		Transport:       parseTransport(*transport),
		Controller:      *controller,
		Scheduler:       *scheduler,
		Size:            units.ByteCount(*sizeKB) * units.KB,
		SimultaneousSYN: *simSYN,
		Penalize:        *penalize,
	}
	res := tb.Run(rc)
	for _, c := range closers {
		c()
	}

	if !res.Completed {
		fmt.Println("download did NOT complete within the simulation timeout")
		os.Exit(1)
	}
	fmt.Printf("config:        %s over %s (+%s)\n", rc.Describe(), cellProfile.Name, wifiProfile.Name)
	fmt.Printf("download time: %.3f s\n", res.DownloadTime.Seconds())
	fmt.Printf("subflows:      %d\n", res.Subflows)
	fmt.Printf("cell share:    %.1f%%\n", res.CellShare()*100)
	fmt.Printf("wifi:  %8d data pkts, loss %.2f%%\n", res.WiFiDataPkts, res.WiFiLossRate()*100)
	fmt.Printf("cell:  %8d data pkts, loss %.2f%%\n", res.CellDataPkts, res.CellLossRate()*100)
	printRTT("wifi RTT", res.WiFiRTTms)
	printRTT("cell RTT", res.CellRTTms)
	if len(res.OFOms) > 0 {
		s := stats.New()
		s.AddAll(res.OFOms)
		fmt.Printf("out-of-order delay: n=%d in-order=%.1f%% mean=%.1fms p95=%.1fms max=%.0fms\n",
			s.N(), 100*(1-s.FractionAbove(0)), s.Mean(), s.Quantile(0.95), s.Max())
	}
}

func printRTT(label string, ms []float64) {
	if len(ms) == 0 {
		return
	}
	s := stats.New()
	s.AddAll(ms)
	fmt.Printf("%s: n=%d min=%.1f median=%.1f mean=%.1f max=%.1f ms\n",
		label, s.N(), s.Min(), s.Median(), s.Mean(), s.Max())
}

func parseTransport(s string) experiment.Transport {
	switch s {
	case "sp-wifi":
		return experiment.SPWiFi
	case "sp-cell":
		return experiment.SPCell
	case "mp2":
		return experiment.MP2
	case "mp4":
		return experiment.MP4
	default:
		exitOn(fmt.Errorf("unknown transport %q", s))
		return 0
	}
}

// attachPcap wires tcpdump-style taps on both hosts.
func attachPcap(tb *experiment.Testbed, prefix string) []func() {
	var closers []func()
	mk := func(suffix string) *pcap.Writer {
		f, err := os.Create(prefix + "-" + suffix + ".pcap")
		exitOn(err)
		w, err := pcap.NewWriter(f)
		exitOn(err)
		closers = append(closers, func() {
			fmt.Printf("wrote %s-%s.pcap (%d packets)\n", prefix, suffix, w.Packets)
			f.Close()
		})
		return w
	}
	tb.Client.AddTap(trace.PcapTap(mk("client")))
	tb.Server.AddTap(trace.PcapTap(mk("server")))
	return closers
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "mptcpsim:", err)
		os.Exit(1)
	}
}
