package main

import (
	"os"
	"os/exec"
	"strings"
	"testing"
)

// TestRejectsUnknownScheduler re-executes the test binary as mptcpload
// with a bogus -scheduler and proves the typo dies at flag-parse time
// — before any sweep row runs: exit code 1, a single error line naming
// the bad spec, no panic.
func TestRejectsUnknownScheduler(t *testing.T) {
	if os.Getenv("MPTCPLOAD_RUN_MAIN") == "1" {
		os.Args = []string{"mptcpload", "-scheduler", "weighted:3;oops"}
		main()
		return
	}
	cmd := exec.Command(os.Args[0], "-test.run=TestRejectsUnknownScheduler")
	cmd.Env = append(os.Environ(), "MPTCPLOAD_RUN_MAIN=1")
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("want the child to exit non-zero, got err=%v; output:\n%s", err, out)
	}
	if code := ee.ExitCode(); code != 1 {
		t.Fatalf("exit code %d, want 1; output:\n%s", code, out)
	}
	text := strings.TrimSpace(string(out))
	if strings.Contains(text, "panic") {
		t.Fatalf("scheduler validation panicked:\n%s", out)
	}
	if strings.Count(text, "\n") != 0 {
		t.Errorf("want a one-line error, got:\n%s", out)
	}
	// mptcpload's exitOn prints the bare error (no binary prefix, the
	// convention throughout this CLI) — just require the bad spec.
	if !strings.Contains(text, `"weighted:3;oops"`) {
		t.Errorf("error line %q should name the bad scheduler spec", text)
	}
}
