// Command mptcpload runs fleet-scale load campaigns: hundreds to
// thousands of concurrent TCP and MPTCP flows sharing one WiFi AP and
// one cellular sector inside a single deterministic simulation, swept
// over arrival rates and fleet sizes. Exports are a pure function of
// the seed — byte-identical for any -workers value — and every row
// carries a replay token that re-executes that one run standalone:
//
//	mptcpload -rates 2,5,10 -clients 200 -reps 3 -seed 42 -o sweep.csv
//	mptcpload -replay 'clients=200,rate=5,dur=1m0s,...,seed=7331'
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"mptcplab/internal/chaos"
	"mptcplab/internal/load"
	"mptcplab/internal/mptcp"
	"mptcplab/internal/pathmodel"
	"mptcplab/internal/sim"
	"mptcplab/internal/units"
)

func main() {
	var (
		clients   = flag.Int("clients", 100, "fleet size (clients sharing the bottlenecks)")
		fleets    = flag.String("fleets", "", "comma list of fleet sizes to sweep (overrides -clients)")
		rate      = flag.Float64("rate", 0, "open-loop Poisson arrival rate, flows per simulated second")
		rates     = flag.String("rates", "", "comma list of arrival rates to sweep (overrides -rate)")
		flows     = flag.Int("flows", 0, "exact open-loop flow count (Poisson-conditioned arrivals)")
		sessions  = flag.Int("sessions", 0, "closed-loop sessions (request, download, think, repeat)")
		think     = flag.Duration("think", 2*time.Second, "closed-loop mean think time")
		duration  = flag.Duration("duration", 60*time.Second, "arrival window (simulated)")
		drain     = flag.Duration("drain", 30*time.Second, "extra simulated time for in-flight transfers")
		mix       = flag.String("mix", "small", "flow size distribution: small | web | heavy | <size>")
		transport = flag.String("transport", "mptcp", "per-flow stack: mptcp | wifi | cell | wifi=0.3,cell=0.2,mptcp=0.5")
		cc        = flag.String("cc", "", "MPTCP coupling: coupled (default) | olia | reno")
		scheduler = flag.String("scheduler", "", "MPTCP scheduler plugin: minrtt (default) | roundrobin | weighted[:w0;w1;...] | redundant | blest | adaptive | backup")
		wifiProf  = flag.String("wifi", "coffeeshop", "WiFi profile: coffeeshop | wifi")
		carrier   = flag.String("carrier", "att", "cellular profile: att | verizon | sprint")
		sample    = flag.Bool("sample", false, "sample per-run link-parameter variation from the seed")
		bg        = flag.String("bg", "", "background cross-traffic, e.g. wd=8Mbps,wu=1Mbps,cd=2Mbps,cu=256Kbps")
		reps      = flag.Int("reps", 1, "repetitions per grid point")
		seed      = flag.Int64("seed", 1, "campaign seed (per-run seeds derive from it)")
		workers   = flag.Int("workers", 0, "parallel runs (0 = GOMAXPROCS, 1 = serial); exports identical either way")
		selfCheck = flag.Bool("selfcheck", true, "arm the protocol invariant checker on every run")
		format    = flag.String("format", "", "export format: csv | json (default: from -o extension, else csv)")
		out       = flag.String("o", "-", "output path ('-' = stdout)")
		progress  = flag.Bool("progress", false, "print per-run progress to stderr")
		replay    = flag.String("replay", "", "re-execute one run from an exported replay token and print its summary")
		chaosSpec = flag.String("chaos", "", "fault schedule: preset (outage|flap|storm|ramp|fade) or spec like 'flap:path=wifi;at=2s;dur=500ms;every=2s;n=5'")
		deadline  = flag.Duration("deadline", 0, "wall-clock budget per run; a run over budget is killed and exported as failed (0 = none)")
		resOut    = flag.String("res-out", "", "also write the per-run resilience report (CSV or JSON by extension) — chaos runs only")
	)
	flag.Parse()

	// A scheduler typo must die here with a one-line error, not sweep
	// an entire grid under a silent fallback policy.
	exitOn(mptcp.ValidateScheduler(*scheduler))

	if *replay != "" {
		os.Exit(runReplay(os.Stdout, os.Stderr, *replay, *wifiProf, *carrier, *deadline))
	}

	base := load.Config{
		Clients:        *clients,
		Rate:           *rate,
		Flows:          *flows,
		Sessions:       *sessions,
		ThinkMean:      sim.Time(*think),
		Duration:       sim.Time(*duration),
		Drain:          sim.Time(*drain),
		Controller:     *cc,
		Scheduler:      *scheduler,
		SampleProfiles: *sample,
		SelfCheck:      *selfCheck,
	}
	applyProfiles(&base, *wifiProf, *carrier)

	var err error
	base.Sizes, err = load.ParseSizeDist(*mix)
	exitOn(err)
	base.Transports, err = load.ParseTransportMix(*transport)
	exitOn(err)
	base.Background, err = parseBackground(*bg)
	exitOn(err)
	base.Chaos, err = chaos.Parse(*chaosSpec)
	exitOn(err)
	base.Deadline = *deadline

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	opts := load.SweepOpts{
		Context: ctx,
		Base:    base,
		Rates:   parseFloats(*rates),
		Clients: parseInts(*fleets),
		Reps:    *reps,
		Seed:    *seed,
		Workers: *workers,
	}
	if *progress {
		opts.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\rrun %d/%d", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}

	sw := load.RunSweep(opts)
	stopSignals() // a second Ctrl-C past this point kills the process outright
	fmt.Fprintf(os.Stderr, "%s: %s wall (%s busy, %d workers), %s events\n",
		sw.Describe(), sw.WallTime.Round(time.Millisecond),
		sw.BusyTime.Round(time.Millisecond), sw.Workers, withCommas(sw.TotalEvents))
	if sw.Cancelled {
		fmt.Fprintln(os.Stderr, "cancelled — exporting partial results")
	}
	if sw.FailedRuns > 0 {
		fmt.Fprintf(os.Stderr, "FAILED RUNS: %d (exported with fail_reason and replay token)\n", sw.FailedRuns)
	}
	if sw.TotalViolations > 0 {
		fmt.Fprintf(os.Stderr, "PROTOCOL VIOLATIONS: %d, first: %s\n",
			sw.TotalViolations, sw.FirstViolation)
	}

	w, closer, err := openOut(*out)
	exitOn(err)
	switch resolveFormat(*format, *out) {
	case "json":
		err = sw.WriteJSON(w, base)
	default:
		err = sw.WriteCSV(w, base)
	}
	if closer != nil {
		closer()
	}
	exitOn(err)

	if *resOut != "" {
		if base.Chaos.Empty() {
			exitOn(fmt.Errorf("-res-out needs a fault schedule; pass -chaos"))
		}
		rw, rcloser, err := openOut(*resOut)
		exitOn(err)
		switch resolveFormat(*format, *resOut) {
		case "json":
			err = sw.WriteResilienceJSON(rw, base)
		default:
			err = sw.WriteResilienceCSV(rw, base)
		}
		if rcloser != nil {
			rcloser()
		}
		exitOn(err)
	}
	if sw.TotalViolations > 0 || sw.FailedRuns > 0 {
		os.Exit(1)
	}
}

// runReplay re-executes one exported run from its token and prints a
// human summary. All failures — malformed tokens included — come back
// as a one-line error and exit code 1, never a panic.
func runReplay(w, ew io.Writer, token, wifi, carrier string, deadline time.Duration) int {
	cfg, err := load.ParseReplay(token)
	if err != nil {
		fmt.Fprintf(ew, "bad replay token: %v\n", err)
		return 1
	}
	if err := resolveProfiles(&cfg, wifi, carrier); err != nil {
		fmt.Fprintln(ew, err)
		return 1
	}
	cfg.Deadline = deadline
	res := load.Run(cfg)
	printSummary(w, cfg, res)
	if res.Failed || res.Violations > 0 {
		return 1
	}
	return 0
}

// applyProfiles resolves named WiFi and cellular profiles into cfg.
func applyProfiles(cfg *load.Config, wifi, carrier string) {
	exitOn(resolveProfiles(cfg, wifi, carrier))
}

func resolveProfiles(cfg *load.Config, wifi, carrier string) error {
	wp, err := pathmodel.ByName(wifi)
	if err != nil {
		return err
	}
	cp, err := pathmodel.ByName(carrier)
	if err != nil {
		return err
	}
	cfg.WiFi, cfg.Cell = wp, cp
	return nil
}

// parseBackground reads a "wd=8Mbps,wu=1Mbps,cd=2Mbps,cu=256Kbps" spec;
// omitted directions stay silent.
func parseBackground(s string) (load.Background, error) {
	var b load.Background
	if strings.TrimSpace(s) == "" {
		return b, nil
	}
	for _, part := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return b, fmt.Errorf("bad background part %q (want dir=rate)", part)
		}
		r, err := units.ParseBitRate(v)
		if err != nil {
			return b, fmt.Errorf("background %q: %v", part, err)
		}
		switch strings.ToLower(k) {
		case "wd", "wifi-down":
			b.WiFiDown = r
		case "wu", "wifi-up":
			b.WiFiUp = r
		case "cd", "cell-down":
			b.CellDown = r
		case "cu", "cell-up":
			b.CellUp = r
		default:
			return b, fmt.Errorf("unknown background direction %q (want wd|wu|cd|cu)", k)
		}
	}
	return b, nil
}

func parseFloats(s string) []float64 {
	var out []float64
	for _, p := range splitList(s) {
		v, err := strconv.ParseFloat(p, 64)
		exitOn(err)
		out = append(out, v)
	}
	return out
}

func parseInts(s string) []int {
	var out []int
	for _, p := range splitList(s) {
		v, err := strconv.Atoi(p)
		exitOn(err)
		out = append(out, v)
	}
	return out
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func resolveFormat(format, out string) string {
	if format != "" {
		return strings.ToLower(format)
	}
	if strings.HasSuffix(out, ".json") {
		return "json"
	}
	return "csv"
}

func openOut(path string) (io.Writer, func(), error) {
	if path == "" || path == "-" {
		return os.Stdout, nil, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	return f, func() { f.Close() }, nil
}

// printSummary renders one replayed run for a human.
func printSummary(w io.Writer, cfg load.Config, res *load.Result) {
	fmt.Fprintf(w, "replay:     %s\n", cfg.ReplayToken())
	fmt.Fprintf(w, "flows:      %d offered, %d started, %d completed, %d incomplete\n",
		res.Offered, res.Started, res.Completed, res.Incomplete)
	fmt.Fprintf(w, "fct:        p50 %.3fs  p90 %.3fs  p99 %.3fs  mean %.3fs  max %.3fs\n",
		res.FCTp50.Value(), res.FCTp90.Value(), res.FCTp99.Value(), res.FCT.Mean(), res.FCT.Max())
	fmt.Fprintf(w, "goodput:    mean %.2fMbps/flow, Jain %.3f over %d flows\n",
		res.Goodput.Mean()/float64(units.Mbps), res.Goodput.Jain(), res.Goodput.N())
	fmt.Fprintf(w, "cell share: %.1f%% of sender bytes\n", res.CellShare()*100)
	for _, l := range res.Links {
		fmt.Fprintf(w, "link %-9s %5.1f%% utilized, %d sent, %d queue drops, %d medium drops\n",
			l.Name+":", l.Utilization*100, l.Sent, l.QueueDrop, l.MediumDrop)
	}
	fmt.Fprintf(w, "sim:        %s events, %d violations\n", withCommas(res.Events), res.Violations)
	if res.Violations > 0 {
		fmt.Fprintf(w, "FIRST VIOLATION: %s\n", res.FirstViolation)
	}
	if res.Resilience != nil {
		printResilience(w, res)
	}
	if res.Failed {
		fmt.Fprintf(w, "RUN FAILED: %s\n", res.FailReason)
	}
}

// printResilience renders the chaos monitor's report for a human.
func printResilience(w io.Writer, res *load.Result) {
	r := res.Resilience
	fmt.Fprintf(w, "chaos:      %s\n", res.ChaosSpec)
	fmt.Fprintf(w, "verdicts:   %d ok, %d late, %d incomplete, %d stalled, %d aborted -> %s\n",
		r.OK, r.Late, r.Incomplete, r.Stalled, r.Aborted, r.Graceful())
	fmt.Fprintf(w, "stalls:     %d total, longest %.3fs; %d recoveries (TTR mean %.3fs max %.3fs), %d unrecovered\n",
		r.TotalStalls, float64(r.LongestStall)/float64(sim.Second),
		r.TTRAcc.N(), r.TTRAcc.Mean(), r.TTRAcc.Max(), r.Unrecovered)
	fmt.Fprintf(w, "goodput:    %.2fMbps during faults vs %.2fMbps steady; %d retries, %d timeouts\n",
		8*r.FaultGoodput()/float64(units.Mbps), 8*r.SteadyGoodput()/float64(units.Mbps),
		r.Retries, r.Timeouts)
}

// withCommas renders 1234567 as "1,234,567".
func withCommas(n uint64) string {
	s := strconv.FormatUint(n, 10)
	var b strings.Builder
	for i, r := range s {
		if i > 0 && (len(s)-i)%3 == 0 {
			b.WriteByte(',')
		}
		b.WriteRune(r)
	}
	return b.String()
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
