// Command benchjson converts `go test -bench -benchmem` output into a
// JSON record suitable for archiving one BENCH_<sha>.json per commit,
// and enforces the repository's allocation gates: if a gated benchmark
// reports more allocs/op than its ceiling, benchjson exits nonzero and
// the bench CI job fails.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem . | benchjson -o BENCH_abc123.json
//
// Input lines are echoed to stderr so the benchmark output stays
// visible in CI logs.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// allocGates pins allocs/op ceilings for the pooled hot path. The
// SingleDownload ceiling is 70% of the pre-pooling baseline (168910
// allocs/op), the PR's acceptance bar; the optimized path measures
// ~1.8k, so any regression back toward per-packet allocation trips it
// long before the baseline returns.
var allocGates = map[string]float64{
	"BenchmarkSimEventLoop":      0,
	"BenchmarkSegEncodeDecode":   4,
	"BenchmarkSingleDownload4MB": 118237,
	"BenchmarkTCPSingle4MB":      55472, // 70% of the 79247 baseline
}

// Result is one benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Extra holds custom b.ReportMetric units.
	Extra map[string]float64 `json:"extra,omitempty"`
}

func main() {
	out := flag.String("o", "", "write the JSON report to this file (default stdout)")
	noGates := flag.Bool("nogates", false, "parse and report only; skip the alloc-gate check")
	flag.Parse()

	var results []Result
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(os.Stderr, line)
		if r, ok := parseLine(line); ok {
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	if *noGates {
		return
	}
	failed := false
	for _, r := range results {
		limit, gated := allocGates[baseName(r.Name)]
		if !gated {
			continue
		}
		if r.AllocsPerOp > limit {
			fmt.Fprintf(os.Stderr, "benchjson: GATE FAILED: %s reports %.0f allocs/op, ceiling %.0f\n",
				r.Name, r.AllocsPerOp, limit)
			failed = true
		} else {
			fmt.Fprintf(os.Stderr, "benchjson: gate ok: %s %.0f allocs/op (ceiling %.0f)\n",
				r.Name, r.AllocsPerOp, limit)
		}
	}
	if failed {
		os.Exit(1)
	}
}

// baseName strips the -<GOMAXPROCS> suffix go test appends.
func baseName(name string) string {
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// parseLine extracts one "BenchmarkX  N  v1 unit1  v2 unit2 ..." line.
func parseLine(line string) (Result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: f[0], Iterations: iters}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			continue
		}
		switch f[i+1] {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		default:
			if r.Extra == nil {
				r.Extra = map[string]float64{}
			}
			r.Extra[f[i+1]] = v
		}
	}
	return r, true
}
