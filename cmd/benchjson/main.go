// Command benchjson converts `go test -bench -benchmem` output into a
// JSON record suitable for archiving one BENCH_<sha>.json per commit,
// and enforces the repository's allocation gates: if a gated benchmark
// reports more allocs/op than its ceiling, benchjson exits nonzero and
// the bench CI job fails.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem . | benchjson -o BENCH_abc123.json
//
// With -baseline it additionally diffs the gated benchmarks against a
// committed BENCH_*.json and fails on a >10% (-maxregress) regression
// in ns/op or allocs/op, so a perf slide is caught at the PR that
// introduces it rather than discovered in a later speed round.
//
// Input lines are echoed to stderr so the benchmark output stays
// visible in CI logs.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// allocGates pins allocs/op ceilings for the pooled hot path. The
// download ceilings sit ~25% above what the timer-wheel / batched-
// delivery / arena-reuse round measures (~690 and ~360 allocs per 4 MB
// download, from 168910 and 79247 before the two speed rounds), so any
// regression back toward per-packet or per-event allocation trips the
// gate long before the old numbers return.
var allocGates = map[string]float64{
	"BenchmarkSimEventLoop":      0,
	"BenchmarkSegEncodeDecode":   4,
	"BenchmarkSingleDownload4MB": 900,
	"BenchmarkTCPSingle4MB":      500,
}

// Result is one benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Extra holds custom b.ReportMetric units.
	Extra map[string]float64 `json:"extra,omitempty"`
}

func main() {
	out := flag.String("o", "", "write the JSON report to this file (default stdout)")
	noGates := flag.Bool("nogates", false, "parse and report only; skip the alloc-gate check")
	baseline := flag.String("baseline", "", "BENCH_*.json to diff the gated benchmarks against")
	maxRegress := flag.Float64("maxregress", 0.10, "fail when a gated benchmark regresses vs -baseline by more than this fraction in ns/op or allocs/op")
	flag.Parse()

	var results []Result
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(os.Stderr, line)
		if r, ok := parseLine(line); ok {
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	if *noGates {
		return
	}
	failed := false
	for _, r := range results {
		limit, gated := allocGates[baseName(r.Name)]
		if !gated {
			continue
		}
		if r.AllocsPerOp > limit {
			fmt.Fprintf(os.Stderr, "benchjson: GATE FAILED: %s reports %.0f allocs/op, ceiling %.0f\n",
				r.Name, r.AllocsPerOp, limit)
			failed = true
		} else {
			fmt.Fprintf(os.Stderr, "benchjson: gate ok: %s %.0f allocs/op (ceiling %.0f)\n",
				r.Name, r.AllocsPerOp, limit)
		}
	}
	if *baseline != "" && !diffBaseline(results, *baseline, *maxRegress) {
		failed = true
	}
	if failed {
		os.Exit(1)
	}
}

// diffBaseline compares the gated benchmarks against an archived
// report, returning false on any regression beyond maxRegress. Gated
// benchmarks missing from either side are reported but not fatal: the
// baseline may predate a benchmark, and renames should not brick CI.
// Allocation counts are deterministic so they get the same relative
// bound as time; a zero-alloc baseline requires staying at zero.
func diffBaseline(results []Result, path string, maxRegress float64) bool {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return false
	}
	var base []Result
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: parsing %s: %v\n", path, err)
		return false
	}
	byName := make(map[string]Result, len(base))
	for _, r := range base {
		byName[baseName(r.Name)] = r
	}
	ok := true
	for _, r := range results {
		name := baseName(r.Name)
		if _, gated := allocGates[name]; !gated {
			continue
		}
		b, found := byName[name]
		if !found {
			fmt.Fprintf(os.Stderr, "benchjson: baseline %s has no %s; skipping diff\n", path, name)
			continue
		}
		for _, m := range []struct {
			metric    string
			now, then float64
		}{
			{"ns/op", r.NsPerOp, b.NsPerOp},
			{"allocs/op", r.AllocsPerOp, b.AllocsPerOp},
		} {
			switch {
			case m.then == 0 && m.now > 0:
				fmt.Fprintf(os.Stderr, "benchjson: REGRESSION: %s %s rose from 0 to %.2f\n",
					name, m.metric, m.now)
				ok = false
			case m.then > 0 && m.now > m.then*(1+maxRegress):
				fmt.Fprintf(os.Stderr, "benchjson: REGRESSION: %s %s %.2f vs baseline %.2f (+%.1f%%, allowed +%.0f%%)\n",
					name, m.metric, m.now, m.then, (m.now/m.then-1)*100, maxRegress*100)
				ok = false
			default:
				fmt.Fprintf(os.Stderr, "benchjson: baseline ok: %s %s %.2f vs %.2f\n",
					name, m.metric, m.now, m.then)
			}
		}
	}
	return ok
}

// baseName strips the -<GOMAXPROCS> suffix go test appends.
func baseName(name string) string {
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// parseLine extracts one "BenchmarkX  N  v1 unit1  v2 unit2 ..." line.
func parseLine(line string) (Result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: f[0], Iterations: iters}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			continue
		}
		switch f[i+1] {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		default:
			if r.Extra == nil {
				r.Extra = map[string]float64{}
			}
			r.Extra[f[i+1]] = v
		}
	}
	return r, true
}
