package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"mptcplab/internal/chaos"
	"mptcplab/internal/experiment"
	"mptcplab/internal/load"
	"mptcplab/internal/mptcp"
	"mptcplab/internal/sweep"
)

// loadSalt is load.RunSweep's historical shuffle salt; the daemon
// uses the same one so a campaign walks its job list in exactly the
// order the CLI runner would.
const loadSalt = 0x10ad

const (
	kindExperiment = "experiment"
	kindLoad       = "load"

	stateQueued    = "queued"
	stateRunning   = "running"
	stateDone      = "done"
	stateCancelled = "cancelled"
	stateFailed    = "failed"
)

// campaignSpec is the POST /v1/campaigns request body. Everything in
// it is configuration (part of the result), except Workers, which is
// execution policy: exports are byte-identical for any worker count.
type campaignSpec struct {
	Kind string `json:"kind"` // "experiment" (default) | "load"
	Seed int64  `json:"seed"`
	Reps int    `json:"reps,omitempty"`
	// Workers sizes the run pool (0 = all CPUs, 1 = serial).
	Workers int `json:"workers,omitempty"`

	// Experiment campaigns: a registry name or alias (fig2, fig4,
	// fig6, fig8, fig9, fig11, fig12, shootout, mobility, table3, ...).
	Experiment string `json:"experiment,omitempty"`
	Periods    bool   `json:"periods,omitempty"`
	SelfCheck  bool   `json:"selfcheck,omitempty"`

	// Load campaigns: a base config as a load replay token
	// ("clients=40,rate=3,dur=10s,..."; empty = package defaults)
	// plus the sweep axes.
	Base    string    `json:"base,omitempty"`
	Rates   []float64 `json:"rates,omitempty"`
	Clients []int     `json:"clients,omitempty"`
	Scheds  []string  `json:"scheds,omitempty"`
}

// loadRow is the cached/streamed unit of a load campaign: one run's
// export row(s). It round-trips through JSON exactly, so a cache hit
// reproduces the cold run's export bytes.
type loadRow struct {
	Run        load.RunExport         `json:"run"`
	Resilience *load.ResilienceExport `json:"resilience,omitempty"`
}

// experimentRow is the NDJSON progress record for one campaign run.
type experimentRow struct {
	experiment.CampaignJob
	Completed bool    `json:"completed"`
	DownloadS float64 `json:"download_s"`
	CellShare float64 `json:"cell_share"`
	Subflows  int     `json:"subflows"`
	Fail      string  `json:"fail,omitempty"`
	Cached    bool    `json:"cached,omitempty"`
}

type campaignState struct {
	id      string
	spec    campaignSpec
	name    string // canonical experiment name ("" for load campaigns)
	resumed bool   // recovered from the journal after a restart

	ctx      context.Context
	cancel   context.CancelFunc
	finished chan struct{}
	// journaled, when non-nil, gates execution: the run loop holds the
	// campaign until its journal record is durably on disk, so a crash
	// can never have computed rows for a submission it has no record
	// of. Resumed campaigns (already journaled) leave it nil.
	journaled chan struct{}

	// onRow, when set, fires after each appended progress row — the
	// injected sync point the crash-recovery fault suite kills the
	// process at.
	onRow func()

	mu           sync.Mutex
	state        string
	done, total  int
	hits, misses int64
	rows         []json.RawMessage // completion-order progress feed
	errMsg       string
	exports      map[string][]byte // export.csv, export.json, resilience.*
}

func (c *campaignState) setState(st string) {
	c.mu.Lock()
	c.state = st
	c.mu.Unlock()
}

func (c *campaignState) fail(err error) {
	c.mu.Lock()
	c.state = stateFailed
	c.errMsg = err.Error()
	c.mu.Unlock()
}

func (c *campaignState) progress(done, total int) {
	c.mu.Lock()
	c.done, c.total = done, total
	c.mu.Unlock()
}

// note counts one run against the campaign's cache accounting.
func (c *campaignState) note(hit bool) {
	c.mu.Lock()
	if hit {
		c.hits++
	} else {
		c.misses++
	}
	c.mu.Unlock()
}

func (c *campaignState) appendRow(v any) {
	b, err := json.Marshal(v)
	if err != nil {
		return
	}
	c.mu.Lock()
	c.rows = append(c.rows, b)
	c.mu.Unlock()
	if c.onRow != nil {
		c.onRow()
	}
}

func (c *campaignState) setExports(exp map[string][]byte) {
	c.mu.Lock()
	c.exports = exp
	c.mu.Unlock()
}

func (c *campaignState) terminal() bool {
	switch c.state {
	case stateDone, stateCancelled, stateFailed:
		return true
	}
	return false
}

// statusView is the GET /v1/campaigns/{id} body.
type statusView struct {
	ID          string `json:"id"`
	Kind        string `json:"kind"`
	Name        string `json:"name,omitempty"`
	State       string `json:"state"`
	Done        int    `json:"done"`
	Total       int    `json:"total"`
	CacheHits   int64  `json:"cache_hits"`
	CacheMisses int64  `json:"cache_misses"`
	Rows        int    `json:"rows"`
	Resumed     bool   `json:"resumed,omitempty"`
	Error       string `json:"error,omitempty"`
}

func (c *campaignState) status() statusView {
	c.mu.Lock()
	defer c.mu.Unlock()
	return statusView{
		ID: c.id, Kind: c.spec.Kind, Name: c.name, State: c.state,
		Done: c.done, Total: c.total,
		CacheHits: c.hits, CacheMisses: c.misses,
		Rows: len(c.rows), Resumed: c.resumed, Error: c.errMsg,
	}
}

// serverConfig assembles a daemon: which result backend, whether
// submissions are journaled for crash recovery, and the HTTP-edge
// limits. The zero value is the historical in-memory daemon.
type serverConfig struct {
	// store is the result backend (nil = fresh in-memory sweep.Cache).
	store sweep.ResultStore
	// diskStore, when the backend is disk-backed, exposes its
	// durability health on /healthz.
	diskStore *sweep.Store
	// journal, when non-nil, records submissions before acceptance
	// and terminal states after; resume holds the incomplete entries
	// it recovered, re-enqueued at construction in submission order.
	journal *journal
	resume  []journalEntry
	// startID seeds the id sequence past every journaled id.
	startID int
	// queueDepth caps queued campaigns (0 = 128); beyond it submits
	// get 503 + Retry-After.
	queueDepth int
	// followMax bounds a /rows follower's lifetime (0 = 10m).
	followMax time.Duration
	// crashAfter > 0 arms the fault-injection sync point: once that
	// many progress rows have been appended across all campaigns,
	// crashFn runs (default: SIGKILL our own process).
	crashAfter int
	crashFn    func()
	// noRunLoop leaves the queue undrained — tests that need
	// campaigns to stay deterministically queued.
	noRunLoop bool
}

type server struct {
	ctx     context.Context
	cache   sweep.ResultStore
	cfg     serverConfig
	journal *journal
	queue   chan *campaignState
	rowSeen atomic.Int64 // crash sync-point counter

	mu        sync.Mutex
	campaigns map[string]*campaignState
	order     []string
	nextID    int
}

func newServer(ctx context.Context, cfg serverConfig) *server {
	if cfg.store == nil {
		cfg.store = sweep.NewCache()
	}
	if cfg.queueDepth <= 0 {
		cfg.queueDepth = 128
	}
	if cfg.followMax <= 0 {
		cfg.followMax = 10 * time.Minute
	}
	if cfg.crashFn == nil {
		cfg.crashFn = func() { syscall.Kill(os.Getpid(), syscall.SIGKILL) }
	}
	// The journal backlog must fit the queue, or recovery would lose
	// campaigns a crash already accepted.
	depth := cfg.queueDepth
	if len(cfg.resume) > depth {
		depth = len(cfg.resume)
	}
	s := &server{
		ctx:       ctx,
		cache:     cfg.store,
		cfg:       cfg,
		journal:   cfg.journal,
		queue:     make(chan *campaignState, depth),
		campaigns: map[string]*campaignState{},
		nextID:    cfg.startID,
	}
	for _, e := range cfg.resume {
		s.resumeCampaign(e)
	}
	if !cfg.noRunLoop {
		go s.runLoop()
	}
	return s
}

// resumeCampaign re-enqueues one journaled-but-unfinished submission.
// Replayed rows come out of the result store as cache hits, so the
// resumed campaign recomputes only the suffix the crash interrupted
// and exports byte-identically to an uninterrupted run.
func (s *server) resumeCampaign(e journalEntry) {
	spec := e.Spec
	name, err := validateSpec(&spec)
	ctx, cancel := context.WithCancel(s.ctx)
	c := &campaignState{
		id: e.ID, spec: spec, name: name, resumed: true, state: stateQueued,
		ctx: ctx, cancel: cancel, finished: make(chan struct{}),
		onRow: s.rowSyncPoint,
	}
	s.campaigns[c.id] = c
	s.order = append(s.order, c.id)
	if err != nil {
		// The spec no longer validates (registry drift across the
		// restart): surface it as a failed campaign, not a dead daemon.
		c.state = stateFailed
		c.errMsg = fmt.Sprintf("resume: %v", err)
		close(c.finished)
		s.journal.finish(c.id, stateFailed)
		return
	}
	s.queue <- c // capacity ≥ len(resume) by construction
}

// rowSyncPoint is the fault-injection hook: every appended progress
// row ticks a daemon-wide counter, and crossing cfg.crashAfter kills
// the process mid-campaign — deterministically, for the recovery
// suite.
func (s *server) rowSyncPoint() {
	if s.cfg.crashAfter > 0 && s.rowSeen.Add(1) == int64(s.cfg.crashAfter) {
		s.cfg.crashFn()
	}
}

func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/experiments", s.handleExperiments)
	mux.HandleFunc("POST /v1/campaigns", s.handleSubmit)
	mux.HandleFunc("GET /v1/campaigns", s.handleList)
	mux.HandleFunc("GET /v1/campaigns/{id}", s.handleStatus)
	mux.HandleFunc("DELETE /v1/campaigns/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/campaigns/{id}/rows", s.handleRows)
	mux.HandleFunc("GET /v1/campaigns/{id}/{artifact}", s.handleExport)
	mux.HandleFunc("GET /v1/replay", s.handleReplay)
	return mux
}

// runLoop executes campaigns one at a time, in submission order. One
// campaign already saturates the CPUs through its own worker pool;
// serializing keeps memory bounded and wall-clock accounting honest.
func (s *server) runLoop() {
	for {
		select {
		case <-s.ctx.Done():
			return
		case c := <-s.queue:
			if c.ctx.Err() != nil { // cancelled while queued
				c.setState(stateCancelled)
				close(c.finished)
				continue
			}
			s.runCampaign(c)
		}
	}
}

func (s *server) runCampaign(c *campaignState) {
	defer close(c.finished)
	if c.journaled != nil {
		<-c.journaled
	}
	c.setState(stateRunning)
	var err error
	contained := chaos.Contain(func() {
		if c.spec.Kind == kindLoad {
			err = s.runLoad(c)
		} else {
			err = s.runExperiment(c)
		}
	})
	switch {
	case contained != nil:
		line, _, _ := strings.Cut(contained.Error(), "\n")
		c.fail(fmt.Errorf("%s", line))
	case err != nil:
		c.fail(err)
	case c.ctx.Err() != nil:
		c.setState(stateCancelled)
	default:
		c.setState(stateDone)
	}
	s.journal.finish(c.id, c.status().State)
}

// experimentKey is the content address of one campaign run: the job
// descriptor carries everything that determines the result (and
// nothing that doesn't — see experiment.CampaignJob), and the derived
// per-run seed keys separately so distinct seeds cannot collide.
func experimentKey(job experiment.CampaignJob) (string, error) {
	return sweep.Key(struct {
		Kind string                 `json:"kind"`
		Job  experiment.CampaignJob `json:"job"`
	}{Kind: kindExperiment, Job: job}, job.Seed)
}

// experimentIntercept wraps every campaign run with the
// content-addressed cache: runs are pure functions of the job
// descriptor, so substituting a stored result is sound by
// construction. Failed runs (watchdog/panic — wall-clock facts) are
// never cached.
func (s *server) experimentIntercept(c *campaignState) func(experiment.CampaignJob, func() experiment.RunResult) experiment.RunResult {
	return func(job experiment.CampaignJob, run func() experiment.RunResult) experiment.RunResult {
		key, kerr := experimentKey(job)
		if kerr == nil {
			if b, ok := s.cache.GetRef(key); ok {
				var res experiment.RunResult
				if err := json.Unmarshal(b, &res); err == nil {
					c.note(true)
					c.appendRow(newExperimentRow(job, res, true))
					return res
				}
			}
		}
		res := run()
		c.note(false)
		if kerr == nil && res.FailReason == "" && res.Resilience == nil {
			if b, err := json.Marshal(res); err == nil {
				s.cache.Put(key, b)
			}
		}
		c.appendRow(newExperimentRow(job, res, false))
		return res
	}
}

func newExperimentRow(job experiment.CampaignJob, res experiment.RunResult, cached bool) experimentRow {
	return experimentRow{
		CampaignJob: job,
		Completed:   res.Completed,
		DownloadS:   res.DownloadTime.Seconds(),
		CellShare:   res.CellShare(),
		Subflows:    res.Subflows,
		Fail:        res.FailReason,
		Cached:      cached,
	}
}

func (s *server) runExperiment(c *campaignState) error {
	m, err := experiment.NewCampaign(c.name, experiment.CampaignOpts{
		Reps: c.spec.Reps, Seed: c.spec.Seed, Workers: c.spec.Workers,
		SampleProfiles: true, Periods: c.spec.Periods, SelfCheck: c.spec.SelfCheck,
		Context:   c.ctx,
		Progress:  c.progress,
		Intercept: s.experimentIntercept(c),
	})
	if err != nil {
		return err
	}
	var csv bytes.Buffer
	if err := experiment.WriteCSV(&csv, m); err != nil {
		return err
	}
	// Mirror paperbench -format json byte for byte.
	out := struct {
		Cells         []experiment.CellExport         `json:"cells"`
		Distributions []experiment.DistributionExport `json:"distributions,omitempty"`
	}{Cells: m.Export()}
	if c.name == "fig12" {
		out.Distributions = m.ExportDistributions()
	}
	var jb bytes.Buffer
	enc := json.NewEncoder(&jb)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&out); err != nil {
		return err
	}
	c.setExports(map[string][]byte{
		"export.csv":  csv.Bytes(),
		"export.json": jb.Bytes(),
	})
	return nil
}

// loadKey is the content address of one fleet run. The replay token
// canonically renders every knob reachable through the service
// surface — all daemon-built configs come from load.ParseReplay, so
// profiles and probe periods are always the defaults the token
// assumes — and the per-run seed keys separately so distinct seeds
// cannot collide.
func loadKey(cfg load.Config) (string, error) {
	seed := cfg.Seed
	cfg.Seed = 0
	return sweep.Key(struct {
		Kind  string `json:"kind"`
		Token string `json:"token"`
	}{Kind: kindLoad, Token: cfg.ReplayToken()}, seed)
}

func newLoadRow(base load.Config, p load.SweepPoint, rep int, res *load.Result) *loadRow {
	row := &loadRow{Run: load.ExportOne(base, p, rep, res)}
	if re, ok := load.ExportResilienceOne(base, p, rep, res); ok {
		row.Resilience = &re
	}
	return row
}

func (s *server) runLoad(c *campaignState) error {
	base, err := loadBase(c.spec)
	if err != nil {
		return err
	}
	so := load.SweepOpts{
		Base: base, Rates: c.spec.Rates, Clients: c.spec.Clients,
		Scheds: c.spec.Scheds, Reps: c.spec.Reps, Seed: c.spec.Seed,
	}
	points := so.Grid()
	reps := len(points[0].Runs)
	type job struct{ point, rep int }
	var jobs []job
	for pi := range points {
		for rep := 0; rep < reps; rep++ {
			jobs = append(jobs, job{pi, rep})
		}
	}
	cfgFor := func(k int) load.Config {
		j := jobs[k]
		cfg := load.PointConfig(base, points[j.point])
		cfg.Seed = so.RunSeed(j.point, j.rep)
		return cfg
	}

	rows := make([]*loadRow, len(jobs))
	sweep.Run(sweep.Opts{
		Seed: so.Seed, Salt: loadSalt, Workers: c.spec.Workers,
		Context: c.ctx, Progress: c.progress,
	}, len(jobs),
		func(ws **load.Arena, k int) *loadRow {
			j := jobs[k]
			cfg := cfgFor(k)
			key, kerr := loadKey(cfg)
			if kerr == nil {
				if b, ok := s.cache.GetRef(key); ok {
					var row loadRow
					if json.Unmarshal(b, &row) == nil {
						// The rep label is positional, not part of the
						// content address (only the seed varies with
						// it) — restore this sweep's position so a hit
						// exports byte-identically to a cold run.
						row.Run.Rep = j.rep
						if row.Resilience != nil {
							row.Resilience.Rep = j.rep
						}
						c.note(true)
						c.appendRow(&row)
						return &row
					}
				}
			}
			if *ws == nil {
				*ws = load.NewArena()
			}
			res := load.RunIn(*ws, cfg)
			c.note(false)
			row := newLoadRow(base, points[j.point], j.rep, res)
			if kerr == nil && !res.Failed {
				if b, err := json.Marshal(row); err == nil {
					s.cache.Put(key, b)
				}
			}
			c.appendRow(row)
			return row
		},
		func(k int, err error) *loadRow {
			j := jobs[k]
			c.note(false)
			row := newLoadRow(base, points[j.point], j.rep, load.FailedRun(cfgFor(k), err))
			c.appendRow(row)
			return row
		},
		func(k int, row *loadRow) { rows[k] = row })

	// Rows land indexed by job — point-major, rep-minor — which is
	// exactly the order Sweep.Export walks, so these artifacts are
	// byte-identical to the CLI runner's.
	var runRows []load.RunExport
	var resRows []load.ResilienceExport
	for _, r := range rows {
		if r == nil {
			continue // cancelled before execution
		}
		runRows = append(runRows, r.Run)
		if r.Resilience != nil {
			resRows = append(resRows, *r.Resilience)
		}
	}
	exp := map[string][]byte{}
	var b bytes.Buffer
	if err := load.WriteRunsCSV(&b, runRows); err != nil {
		return err
	}
	exp["export.csv"] = append([]byte(nil), b.Bytes()...)
	b.Reset()
	if err := load.WriteRunsJSON(&b, runRows); err != nil {
		return err
	}
	exp["export.json"] = append([]byte(nil), b.Bytes()...)
	if len(resRows) > 0 {
		b.Reset()
		if err := load.WriteResilienceRowsCSV(&b, resRows); err != nil {
			return err
		}
		exp["resilience.csv"] = append([]byte(nil), b.Bytes()...)
		b.Reset()
		if err := load.WriteResilienceRowsJSON(&b, resRows); err != nil {
			return err
		}
		exp["resilience.json"] = append([]byte(nil), b.Bytes()...)
	}
	c.setExports(exp)
	return nil
}

func loadBase(spec campaignSpec) (load.Config, error) {
	if spec.Base == "" {
		return load.Config{}, nil
	}
	return load.ParseReplay(spec.Base)
}

func validateSpec(spec *campaignSpec) (name string, err error) {
	if spec.Kind == "" {
		spec.Kind = kindExperiment
	}
	if spec.Reps < 0 {
		return "", fmt.Errorf("reps=%d is negative", spec.Reps)
	}
	switch spec.Kind {
	case kindExperiment:
		name = experiment.ResolveCampaign(spec.Experiment)
		if name == "" {
			return "", fmt.Errorf("unknown experiment %q (have %s)",
				spec.Experiment, strings.Join(experiment.CampaignNames(), ", "))
		}
		return name, nil
	case kindLoad:
		if _, err := loadBase(*spec); err != nil {
			return "", fmt.Errorf("bad base token: %v", err)
		}
		for _, sched := range spec.Scheds {
			if err := mptcp.ValidateScheduler(sched); err != nil {
				return "", err
			}
		}
		return "", nil
	}
	return "", fmt.Errorf("unknown kind %q (want %q or %q)", spec.Kind, kindExperiment, kindLoad)
}

func (s *server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec campaignSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, "bad campaign spec: %v", err)
		return
	}
	name, err := validateSpec(&spec)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ctx, cancel := context.WithCancel(s.ctx)
	c := &campaignState{
		spec: spec, name: name, state: stateQueued,
		ctx: ctx, cancel: cancel, finished: make(chan struct{}),
		journaled: make(chan struct{}),
		onRow:     s.rowSyncPoint,
	}
	s.mu.Lock()
	s.nextID++
	c.id = fmt.Sprintf("c%d", s.nextID)
	s.campaigns[c.id] = c
	s.order = append(s.order, c.id)
	s.mu.Unlock()
	select {
	case s.queue <- c:
	default:
		cancel()
		s.mu.Lock()
		delete(s.campaigns, c.id)
		s.order = s.order[:len(s.order)-1]
		s.mu.Unlock()
		// Nothing was journaled, so a rejected submission leaves no
		// state to resurrect. Retry-After tells a well-behaved client
		// (internal/sweep/client) when to re-ask.
		w.Header().Set("Retry-After", "5")
		httpError(w, http.StatusServiceUnavailable, "campaign queue full")
		return
	}
	// Journal before acknowledging: once the client sees 201, a crash
	// cannot forfeit the submission. (A crash in the gap before this
	// write loses only a campaign nobody was told was accepted — and
	// the run loop is gated on c.journaled, so that lost campaign has
	// provably computed nothing either.)
	s.journal.record(journalEntry{ID: c.id, Name: name, Spec: spec})
	close(c.journaled)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusCreated)
	writeJSON(w, c.status())
}

// handleHealthz reports the durability surface: result-store health
// (segments, corrupt-record count, degraded mode), journal health
// (skipped garbage, write failures), and queue pressure. "degraded"
// means the daemon still serves but something durable is running
// memory-only.
func (s *server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	entries, hits, misses := s.cache.Stats()
	view := struct {
		Status       string             `json:"status"`
		QueueLen     int                `json:"queue_len"`
		QueueCap     int                `json:"queue_cap"`
		Campaigns    int                `json:"campaigns"`
		CacheEntries int                `json:"cache_entries"`
		CacheHits    int64              `json:"cache_hits"`
		CacheMisses  int64              `json:"cache_misses"`
		Store        *sweep.StoreHealth `json:"store,omitempty"`
		Journal      *journalHealth     `json:"journal,omitempty"`
	}{
		Status: "ok", QueueLen: len(s.queue), QueueCap: cap(s.queue),
		CacheEntries: entries, CacheHits: hits, CacheMisses: misses,
	}
	s.mu.Lock()
	view.Campaigns = len(s.campaigns)
	s.mu.Unlock()
	if s.cfg.diskStore != nil {
		h := s.cfg.diskStore.Health()
		view.Store = &h
		if h.Degraded {
			view.Status = "degraded"
		}
	}
	if jh := s.journal.health(); jh != nil {
		view.Journal = jh
		if jh.Degraded {
			view.Status = "degraded"
		}
	}
	writeJSON(w, view)
}

func (s *server) lookup(w http.ResponseWriter, r *http.Request) *campaignState {
	s.mu.Lock()
	c := s.campaigns[r.PathValue("id")]
	s.mu.Unlock()
	if c == nil {
		httpError(w, http.StatusNotFound, "no campaign %q", r.PathValue("id"))
	}
	return c
}

func (s *server) handleExperiments(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, struct {
		Experiments []string `json:"experiments"`
	}{experiment.CampaignNames()})
}

func (s *server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	views := make([]statusView, 0, len(s.order))
	for _, id := range s.order {
		views = append(views, s.campaigns[id].status())
	}
	s.mu.Unlock()
	entries, hits, misses := s.cache.Stats()
	writeJSON(w, struct {
		Campaigns    []statusView `json:"campaigns"`
		CacheEntries int          `json:"cache_entries"`
		CacheHits    int64        `json:"cache_hits"`
		CacheMisses  int64        `json:"cache_misses"`
	}{views, entries, hits, misses})
}

func (s *server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if c := s.lookup(w, r); c != nil {
		writeJSON(w, c.status())
	}
}

func (s *server) handleCancel(w http.ResponseWriter, r *http.Request) {
	c := s.lookup(w, r)
	if c == nil {
		return
	}
	c.cancel()
	writeJSON(w, c.status())
}

// handleRows streams the campaign's per-run rows as NDJSON. Rows
// arrive in completion order (the progress feed); the deterministic
// artifacts are the export endpoints. The stream follows a running
// campaign until it reaches a terminal state — but never forever: a
// follower's lifetime is capped at cfg.followMax, each write carries
// a deadline so a stalled client errors the connection instead of
// pinning a handler goroutine, and client disconnect (request context)
// ends the stream between writes.
func (s *server) handleRows(w http.ResponseWriter, r *http.Request) {
	c := s.lookup(w, r)
	if c == nil {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	ctl := http.NewResponseController(w)
	expiry := time.NewTimer(s.cfg.followMax)
	defer expiry.Stop()
	sent := 0
	for {
		c.mu.Lock()
		pending := c.rows[sent:]
		terminal := c.terminal()
		c.mu.Unlock()
		// A dead client surfaces as a write error (under its own
		// deadline), which ends the follower.
		ctl.SetWriteDeadline(time.Now().Add(30 * time.Second))
		for _, row := range pending {
			if _, err := w.Write(row); err != nil {
				return
			}
			w.Write([]byte("\n"))
			sent++
		}
		if flusher != nil {
			flusher.Flush()
		}
		if terminal {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-expiry.C:
			// Bounded lifetime: the client re-issues the request and
			// picks up from the full feed (rows are cumulative).
			return
		case <-c.finished:
		case <-time.After(150 * time.Millisecond):
		}
	}
}

func (s *server) handleExport(w http.ResponseWriter, r *http.Request) {
	c := s.lookup(w, r)
	if c == nil {
		return
	}
	artifact := r.PathValue("artifact")
	c.mu.Lock()
	terminal := c.terminal()
	body, ok := c.exports[artifact]
	c.mu.Unlock()
	if !terminal {
		httpError(w, http.StatusConflict, "campaign %s is %s; exports appear once it finishes", c.id, c.status().State)
		return
	}
	if !ok {
		httpError(w, http.StatusNotFound, "campaign %s has no artifact %q", c.id, artifact)
		return
	}
	if strings.HasSuffix(artifact, ".json") {
		w.Header().Set("Content-Type", "application/json")
	} else {
		w.Header().Set("Content-Type", "text/csv")
	}
	w.Write(body)
}

// handleReplay re-executes one run from its replay token, answering
// from the content-addressed cache when the identical run (same
// canonical config, same seed) already happened — a row lookup, not a
// recomputation.
func (s *server) handleReplay(w http.ResponseWriter, r *http.Request) {
	token := r.URL.Query().Get("token")
	if token == "" {
		httpError(w, http.StatusBadRequest, "missing token query parameter")
		return
	}
	cfg, err := load.ParseReplay(token)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	type replayView struct {
		Cached     bool                   `json:"cached"`
		Run        load.RunExport         `json:"run"`
		Resilience *load.ResilienceExport `json:"resilience,omitempty"`
	}
	key, kerr := loadKey(cfg)
	if kerr == nil {
		if b, ok := s.cache.GetRef(key); ok {
			var row loadRow
			if json.Unmarshal(b, &row) == nil {
				writeJSON(w, replayView{Cached: true, Run: row.Run, Resilience: row.Resilience})
				return
			}
		}
	}
	p := load.SweepPoint{Rate: cfg.Rate, Clients: cfg.Clients, Sched: cfg.Scheduler}
	res := load.RunIn(load.NewArena(), cfg)
	row := newLoadRow(cfg, p, 0, res)
	if kerr == nil && !res.Failed {
		if b, err := json.Marshal(row); err == nil {
			s.cache.Put(key, b)
		}
	}
	writeJSON(w, replayView{Run: row.Run, Resilience: row.Resilience})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(struct {
		Error string `json:"error"`
	}{fmt.Sprintf(format, args...)})
}
