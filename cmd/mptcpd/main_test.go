package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"

	"mptcplab/internal/experiment"
	"mptcplab/internal/load"
	"mptcplab/internal/sweep/client"
)

// newTestServer boots the daemon on a random port (httptest) with a
// fresh cache, exactly as `make serve-smoke` exercises it. An
// optional serverConfig swaps in a disk store, a journal, or the
// fault-injection knobs.
func newTestServer(t *testing.T, cfg ...serverConfig) *httptest.Server {
	t.Helper()
	var c serverConfig
	if len(cfg) > 0 {
		c = cfg[0]
	}
	ctx, cancel := context.WithCancel(context.Background())
	ts := httptest.NewServer(newServer(ctx, c).routes())
	t.Cleanup(func() { cancel(); ts.Close() })
	return ts
}

func submit(t *testing.T, ts *httptest.Server, spec string) statusView {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/campaigns", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit %s: status %d: %s", spec, resp.StatusCode, body)
	}
	var st statusView
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("submit response %q: %v", body, err)
	}
	return st
}

func getStatus(t *testing.T, ts *httptest.Server, id string) statusView {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/campaigns/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statusView
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func waitTerminal(t *testing.T, ts *httptest.Server, id string) statusView {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		st := getStatus(t, ts, id)
		switch st.State {
		case stateDone, stateCancelled, stateFailed:
			return st
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("campaign %s did not finish in time", id)
	return statusView{}
}

func getBytes(t *testing.T, ts *httptest.Server, path string) []byte {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", path, resp.StatusCode, body)
	}
	return body
}

// TestServeExperimentCampaign is the serve-smoke acceptance check for
// the experiment kind: the daemon's artifacts are byte-identical to
// running the campaign directly (paperbench's writers), and a repeat
// submission is answered 100% from the content-addressed cache with
// the same bytes.
func TestServeExperimentCampaign(t *testing.T) {
	ts := newTestServer(t)
	spec := `{"experiment":"fig8","reps":1,"seed":42,"workers":2}`

	first := submit(t, ts, spec)
	st := waitTerminal(t, ts, first.ID)
	if st.State != stateDone {
		t.Fatalf("first submission ended %q (error %q)", st.State, st.Error)
	}
	if st.CacheHits != 0 || st.CacheMisses == 0 {
		t.Fatalf("cold run should be all misses: hits=%d misses=%d", st.CacheHits, st.CacheMisses)
	}
	csv1 := getBytes(t, ts, "/v1/campaigns/"+first.ID+"/export.csv")
	json1 := getBytes(t, ts, "/v1/campaigns/"+first.ID+"/export.json")

	// Direct run: same campaign, same opts the daemon uses.
	m := experiment.SimultaneousSYN(experiment.CampaignOpts{
		Reps: 1, Seed: 42, SampleProfiles: true,
	})
	var wantCSV bytes.Buffer
	if err := experiment.WriteCSV(&wantCSV, m); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(csv1, wantCSV.Bytes()) {
		t.Fatal("daemon export.csv differs from the direct campaign run")
	}
	out := struct {
		Cells         []experiment.CellExport         `json:"cells"`
		Distributions []experiment.DistributionExport `json:"distributions,omitempty"`
	}{Cells: m.Export()}
	var wantJSON bytes.Buffer
	enc := json.NewEncoder(&wantJSON)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(json1, wantJSON.Bytes()) {
		t.Fatal("daemon export.json differs from the direct campaign run")
	}

	// Repeat submission: answered entirely from cache, same bytes.
	second := submit(t, ts, spec)
	st2 := waitTerminal(t, ts, second.ID)
	if st2.State != stateDone {
		t.Fatalf("second submission ended %q (error %q)", st2.State, st2.Error)
	}
	if st2.CacheMisses != 0 || st2.CacheHits != st.CacheMisses {
		t.Fatalf("repeat submission not a 100%% cache hit: hits=%d misses=%d (cold run had %d runs)",
			st2.CacheHits, st2.CacheMisses, st.CacheMisses)
	}
	csv2 := getBytes(t, ts, "/v1/campaigns/"+second.ID+"/export.csv")
	if !bytes.Equal(csv1, csv2) {
		t.Fatal("cache-served export.csv differs from the cold run's")
	}

	// NDJSON rows: one valid record per run, all marked cached on the
	// repeat submission.
	rows := bytes.Split(bytes.TrimSpace(getBytes(t, ts, "/v1/campaigns/"+second.ID+"/rows")), []byte("\n"))
	if len(rows) != int(st.CacheMisses) {
		t.Fatalf("rows stream has %d records, want %d", len(rows), st.CacheMisses)
	}
	for _, row := range rows {
		var rec experimentRow
		if err := json.Unmarshal(row, &rec); err != nil {
			t.Fatalf("bad NDJSON row %q: %v", row, err)
		}
		if !rec.Cached {
			t.Fatalf("repeat-submission row not served from cache: %s", row)
		}
	}
}

// TestServeLoadCampaign: same acceptance check for the load kind,
// plus a cache-aware replay-token lookup of one exported row.
func TestServeLoadCampaign(t *testing.T) {
	ts := newTestServer(t)
	const base = "clients=8,flows=12,dur=5s"
	spec := fmt.Sprintf(`{"kind":"load","base":"%s","rates":[3,6],"reps":1,"seed":7,"workers":2}`, base)

	first := submit(t, ts, spec)
	st := waitTerminal(t, ts, first.ID)
	if st.State != stateDone {
		t.Fatalf("load campaign ended %q (error %q)", st.State, st.Error)
	}
	csv1 := getBytes(t, ts, "/v1/campaigns/"+first.ID+"/export.csv")
	json1 := getBytes(t, ts, "/v1/campaigns/"+first.ID+"/export.json")

	// Direct run through the CLI runner's path.
	baseCfg, err := load.ParseReplay(base)
	if err != nil {
		t.Fatal(err)
	}
	sw := load.RunSweep(load.SweepOpts{Base: baseCfg, Rates: []float64{3, 6}, Reps: 1, Seed: 7})
	var wantCSV, wantJSON bytes.Buffer
	if err := sw.WriteCSV(&wantCSV, baseCfg); err != nil {
		t.Fatal(err)
	}
	if err := sw.WriteJSON(&wantJSON, baseCfg); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(csv1, wantCSV.Bytes()) {
		t.Fatal("daemon load export.csv differs from RunSweep's")
	}
	if !bytes.Equal(json1, wantJSON.Bytes()) {
		t.Fatal("daemon load export.json differs from RunSweep's")
	}

	// Repeat submission: all hits, identical artifacts.
	second := submit(t, ts, spec)
	st2 := waitTerminal(t, ts, second.ID)
	if st2.State != stateDone || st2.CacheMisses != 0 || st2.CacheHits != st.CacheMisses {
		t.Fatalf("repeat load submission: state=%q hits=%d misses=%d (cold had %d runs)",
			st2.State, st2.CacheHits, st2.CacheMisses, st.CacheMisses)
	}
	if !bytes.Equal(csv1, getBytes(t, ts, "/v1/campaigns/"+second.ID+"/export.csv")) {
		t.Fatal("cache-served load export.csv differs from the cold run's")
	}

	// Replay one exported row by its token: the daemon must answer
	// from the cache with exactly the row the campaign exported.
	var exported []load.RunExport
	if err := json.Unmarshal(json1, &exported); err != nil || len(exported) == 0 {
		t.Fatalf("decoding export.json (%d rows): %v", len(exported), err)
	}
	want := exported[0]
	body := getBytes(t, ts, "/v1/replay?token="+url.QueryEscape(want.Replay))
	var view struct {
		Cached bool           `json:"cached"`
		Run    load.RunExport `json:"run"`
	}
	if err := json.Unmarshal(body, &view); err != nil {
		t.Fatal(err)
	}
	if !view.Cached {
		t.Fatalf("replay of an already-run token was recomputed: %s", body)
	}
	view.Run.Rep = want.Rep // rep label is positional, not content-addressed
	got, _ := json.Marshal(view.Run)
	expected, _ := json.Marshal(want)
	if !bytes.Equal(got, expected) {
		t.Fatalf("replayed row differs from exported row:\n got %s\nwant %s", got, expected)
	}
}

// TestServeCancelDrains: DELETE mid-campaign stops new runs, marks
// the campaign cancelled, and still serves the completed prefix as
// partial exports.
func TestServeCancelDrains(t *testing.T) {
	ts := newTestServer(t)
	spec := `{"kind":"load","base":"clients=12,flows=30,dur=10s","reps":40,"seed":9,"workers":1}`
	c := submit(t, ts, spec)

	// Wait until at least one run has completed, then cancel.
	deadline := time.Now().Add(60 * time.Second)
	for {
		st := getStatus(t, ts, c.ID)
		if st.Done >= 1 {
			break
		}
		if st.State == stateDone {
			t.Skip("campaign finished before cancel could land")
		}
		if time.Now().After(deadline) {
			t.Fatal("campaign made no progress")
		}
		time.Sleep(20 * time.Millisecond)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/campaigns/"+c.ID, nil)
	if _, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, ts, c.ID)
	if st.State != stateCancelled {
		t.Fatalf("cancelled campaign ended %q", st.State)
	}
	if st.Done >= st.Total {
		t.Fatalf("cancel did not stop the campaign early: %d/%d runs", st.Done, st.Total)
	}
	csv := getBytes(t, ts, "/v1/campaigns/"+c.ID+"/export.csv")
	lines := bytes.Split(bytes.TrimSpace(csv), []byte("\n"))
	if got := len(lines) - 1; got != st.Done {
		t.Fatalf("partial export has %d rows, want the %d completed runs", got, st.Done)
	}
}

// TestServeQueueFullRetryAfter: with the queue at capacity the daemon
// answers 503 with a Retry-After header, and a client following the
// header lands the submission once the queue drains. The run loop is
// left unstarted so "full" is deterministic, then started manually.
func TestServeQueueFullRetryAfter(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s := newServer(ctx, serverConfig{queueDepth: 1, noRunLoop: true})
	ts := httptest.NewServer(s.routes())
	defer ts.Close()

	spec := `{"experiment":"fig8","reps":1,"seed":1,"workers":1}`
	submit(t, ts, spec) // fills the 1-deep queue
	resp, err := http.Post(ts.URL+"/v1/campaigns", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("full queue answered %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("queue-full 503 carries no Retry-After header")
	}
	// A rejected submission leaves no state behind.
	if st := getStatus(t, ts, "c2"); st.ID != "" {
		t.Fatalf("rejected submission left campaign state %+v", st)
	}

	// The retrying client helper rides the 503 out: start the run
	// loop (the queue drains) and the same submit goes through.
	go s.runLoop()
	cl := client.New(ts.URL, client.Options{
		BaseDelay: 20 * time.Millisecond, MaxDelay: 100 * time.Millisecond, MaxAttempts: 50,
	})
	st, err := cl.Submit(context.Background(), json.RawMessage(spec))
	if err != nil {
		t.Fatalf("retrying submit never landed: %v", err)
	}
	if _, err := cl.WaitTerminal(context.Background(), st.ID, 25*time.Millisecond); err != nil {
		t.Fatal(err)
	}
}

// TestServeRowsFollowerBounded: a /rows follower of a campaign that
// never finishes is cut off at the configured lifetime instead of
// holding its handler goroutine forever.
func TestServeRowsFollowerBounded(t *testing.T) {
	ts := newTestServer(t, serverConfig{noRunLoop: true, followMax: 150 * time.Millisecond})
	c := submit(t, ts, `{"experiment":"fig8","reps":1,"seed":1}`)
	start := time.Now()
	body := getBytes(t, ts, "/v1/campaigns/"+c.ID+"/rows")
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("follower of a never-finishing campaign held on for %v", elapsed)
	}
	if len(bytes.TrimSpace(body)) != 0 {
		t.Fatalf("queued campaign streamed rows: %q", body)
	}
}

// TestRejectsBadQueueDepth re-executes the test binary as mptcpd with
// -queue-depth 0 and proves it dies at flag-parse time: exit code 1,
// a one-line error, no listener, no panic — matching the other
// binaries' validation contract.
func TestRejectsBadQueueDepth(t *testing.T) {
	if os.Getenv("MPTCPD_RUN_MAIN") == "1" {
		os.Args = []string{"mptcpd", "-queue-depth", "0"}
		main()
		return
	}
	cmd := exec.Command(os.Args[0], "-test.run=^TestRejectsBadQueueDepth$")
	cmd.Env = append(os.Environ(), "MPTCPD_RUN_MAIN=1")
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("want the child to exit non-zero, got err=%v; output:\n%s", err, out)
	}
	if code := ee.ExitCode(); code != 1 {
		t.Fatalf("exit code %d, want 1; output:\n%s", code, out)
	}
	text := strings.TrimSpace(string(out))
	if strings.Contains(text, "panic") {
		t.Fatalf("queue-depth validation panicked:\n%s", out)
	}
	if strings.Count(text, "\n") != 0 {
		t.Errorf("want a one-line error, got:\n%s", out)
	}
	if !strings.Contains(text, "-queue-depth") {
		t.Errorf("error line %q should name the bad flag", text)
	}
}

// TestServeRejectsBadSpecs pins the submit-time validation surface.
func TestServeRejectsBadSpecs(t *testing.T) {
	ts := newTestServer(t)
	for _, spec := range []string{
		`{"experiment":"fig99"}`,
		`{"kind":"load","base":"clients=banana"}`,
		`{"kind":"load","scheds":["warp-drive"]}`,
		`{"kind":"quantum"}`,
		`{"experiment":"fig8","reps":-1}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/campaigns", "application/json", strings.NewReader(spec))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("spec %s accepted with status %d", spec, resp.StatusCode)
		}
	}
}
