package main

// The service fault-injection suite: kill -9 the daemon mid-campaign
// at injected sync points, corrupt and truncate store segments on
// disk, fill the journal directory with garbage — and assert the
// restarted daemon recovers: resumes the interrupted campaign,
// replays the completed prefix from the store as cache hits, and
// exports byte-for-byte what an uninterrupted daemon exports.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mptcplab/internal/sweep"
	"mptcplab/internal/sweep/client"
)

// crashSpec is the campaign the crash suite interrupts: 12 serial
// runs, each tens of milliseconds, so a sync point mid-list kills the
// daemon with real completed rows on disk and real work left.
const (
	crashSpec    = `{"kind":"load","base":"clients=8,flows=10,dur=5s","reps":12,"seed":11,"workers":1}`
	crashSpecRun = 12 // total rows the spec produces
	crashAt      = 5  // SIGKILL after this many rows
)

// TestHelperDaemon is not a test: re-executed by startHelperDaemon
// with MPTCPD_HELPER_STORE set, it becomes the real daemon process —
// durable store + journal from the env dir, optional self-SIGKILL
// sync point, listening on a kernel-assigned port it prints to
// stdout. The parent kills it with the actual signal, not a polite
// shutdown, so recovery is tested against a genuine dead process.
func TestHelperDaemon(t *testing.T) {
	dir := os.Getenv("MPTCPD_HELPER_STORE")
	if dir == "" {
		t.Skip("helper process entry point; only meaningful re-executed with MPTCPD_HELPER_STORE")
	}
	cfg := serverConfig{queueDepth: 32}
	cfg, err := openDurable(dir, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "helper:", err)
		os.Exit(1)
	}
	if n, _ := strconv.Atoi(os.Getenv("MPTCPD_CRASH_AFTER")); n > 0 {
		cfg.crashAfter = n // default crashFn: SIGKILL ourselves
	}
	s := newServer(context.Background(), cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, "helper:", err)
		os.Exit(1)
	}
	fmt.Printf("MPTCPD_ADDR=%s\n", ln.Addr())
	http.Serve(ln, s.routes())
}

// startHelperDaemon launches the helper process over the given store
// dir and returns the command plus the daemon's base URL.
func startHelperDaemon(t *testing.T, dir string, crashAfter int) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^TestHelperDaemon$")
	cmd.Env = append(os.Environ(),
		"MPTCPD_HELPER_STORE="+dir,
		fmt.Sprintf("MPTCPD_CRASH_AFTER=%d", crashAfter))
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		if addr, ok := strings.CutPrefix(sc.Text(), "MPTCPD_ADDR="); ok {
			go func() { // keep draining so the child never blocks on stdout
				for sc.Scan() {
				}
			}()
			return cmd, "http://" + addr
		}
	}
	cmd.Wait()
	t.Fatal("helper daemon exited before announcing its address")
	return nil, ""
}

// submitCrashing submits crashSpec to a daemon armed to kill itself.
// The kill can land before the 201 flushes to the client — that's the
// durability design working, not a failure: the spec was journaled
// before acceptance, so recovery still owns it. A failed submit is
// tolerated exactly when the journal proves the submission landed.
func submitCrashing(ctx context.Context, t *testing.T, cl *client.Client, dir string) {
	t.Helper()
	st, err := cl.Submit(ctx, json.RawMessage(crashSpec))
	if err == nil && st.ID != "c1" {
		t.Fatalf("first submission got id %q", st.ID)
	}
	if err != nil {
		if _, serr := os.Stat(filepath.Join(dir, "journal", "c1.campaign.json")); serr != nil {
			t.Fatalf("submit failed (%v) with nothing journaled (%v)", err, serr)
		}
	}
}

// referenceExports runs crashSpec uninterrupted on a fresh in-memory
// daemon and returns its artifacts — the byte-identity oracle.
func referenceExports(t *testing.T) (csv, jsonb []byte) {
	t.Helper()
	ts := newTestServer(t)
	st := submit(t, ts, crashSpec)
	fin := waitTerminal(t, ts, st.ID)
	if fin.State != stateDone {
		t.Fatalf("reference campaign ended %q (%s)", fin.State, fin.Error)
	}
	return getBytes(t, ts, "/v1/campaigns/"+st.ID+"/export.csv"),
		getBytes(t, ts, "/v1/campaigns/"+st.ID+"/export.json")
}

// TestServeCrashRecovery is the acceptance case the tentpole names: a
// campaign interrupted by SIGKILL at an injected sync point, then a
// restart over the same store/journal, must resume the campaign,
// answer the completed prefix from the store, and export CSV/JSON
// byte-identical to an uninterrupted run.
func TestServeCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	// Daemon one: armed to SIGKILL itself after crashAt rows.
	cmd, base := startHelperDaemon(t, dir, crashAt)
	cl := client.New(base, client.Options{BaseDelay: 50 * time.Millisecond, MaxAttempts: 8})
	submitCrashing(ctx, t, cl, dir)
	// The injected sync point fires mid-campaign; the process dies by
	// its own SIGKILL — no drain, no terminal journal marker.
	if err := cmd.Wait(); err == nil {
		t.Fatal("daemon exited cleanly; the sync point never fired")
	}
	if _, err := os.Stat(filepath.Join(dir, "journal", "c1.done")); !os.IsNotExist(err) {
		t.Fatalf("killed daemon left a terminal marker (err=%v) — the campaign would not resume", err)
	}

	// Daemon two: same store and journal, no crash armed. It must
	// resume c1 on its own — no resubmission.
	_, base2 := startHelperDaemon(t, dir, 0)
	cl2 := client.New(base2, client.Options{BaseDelay: 50 * time.Millisecond, MaxAttempts: 8})
	fin, err := cl2.WaitTerminal(ctx, "c1", 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != "done" || !fin.Resumed {
		t.Fatalf("resumed campaign: state=%q resumed=%v (%s)", fin.State, fin.Resumed, fin.Error)
	}
	if fin.Done != crashSpecRun {
		t.Fatalf("resumed campaign ran %d/%d rows", fin.Done, crashSpecRun)
	}
	// Everything completed before the kill is answered from the
	// store: the kill landed at row crashAt, so at least crashAt rows
	// were persisted (the acceptance floor).
	if fin.CacheHits < crashAt {
		t.Fatalf("resume replayed only %d rows from the store, want ≥ %d", fin.CacheHits, crashAt)
	}
	if fin.CacheMisses > int64(crashSpecRun-crashAt) {
		t.Fatalf("resume recomputed %d rows, want only the missing suffix ≤ %d",
			fin.CacheMisses, crashSpecRun-crashAt)
	}

	gotCSV, err := cl2.Artifact(ctx, "c1", "export.csv")
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, err := cl2.Artifact(ctx, "c1", "export.json")
	if err != nil {
		t.Fatal(err)
	}
	wantCSV, wantJSON := referenceExports(t)
	if !bytes.Equal(gotCSV, wantCSV) {
		t.Fatal("resumed export.csv differs from an uninterrupted run's")
	}
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Fatal("resumed export.json differs from an uninterrupted run's")
	}

	// And the restarted daemon's health shows a clean (not degraded)
	// store that actually loaded the pre-crash records.
	h, err := cl2.Healthz(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Fatalf("healthz after recovery: %+v", h)
	}
	var sh sweep.StoreHealth
	if err := json.Unmarshal(h.Store, &sh); err != nil {
		t.Fatal(err)
	}
	if sh.LoadedRecords < crashAt {
		t.Fatalf("store loaded %d records after the crash, want ≥ %d", sh.LoadedRecords, crashAt)
	}
}

// TestServeCrashRecoverySecondKill: recovery must itself be
// crash-safe — kill the resumed daemon mid-resume, restart again, and
// the third daemon still converges to the identical artifacts.
func TestServeCrashRecoverySecondKill(t *testing.T) {
	dir := t.TempDir()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	cmd, base := startHelperDaemon(t, dir, 3)
	cl := client.New(base, client.Options{BaseDelay: 50 * time.Millisecond, MaxAttempts: 8})
	submitCrashing(ctx, t, cl, dir)
	cmd.Wait() // first kill, 3 rows in

	// Second daemon: resumes, then dies again. Resume counts rows
	// from zero, and the first 3 are instant store hits, so a sync
	// point of 8 kills it with ~5 fresh rows appended past the hits.
	cmd2, _ := startHelperDaemon(t, dir, 8)
	cmd2.Wait() // second kill — no client interaction needed; resume is autonomous

	_, base3 := startHelperDaemon(t, dir, 0)
	cl3 := client.New(base3, client.Options{BaseDelay: 50 * time.Millisecond, MaxAttempts: 8})
	fin, err := cl3.WaitTerminal(ctx, "c1", 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != "done" || fin.CacheHits < 8 {
		t.Fatalf("after two kills: state=%q hits=%d, want done with ≥8 store hits", fin.State, fin.CacheHits)
	}
	gotCSV, err := cl3.Artifact(ctx, "c1", "export.csv")
	if err != nil {
		t.Fatal(err)
	}
	wantCSV, _ := referenceExports(t)
	if !bytes.Equal(gotCSV, wantCSV) {
		t.Fatal("twice-interrupted export.csv differs from an uninterrupted run's")
	}
}

// TestServeStoreCorruptionRecovery: corrupt the store on disk between
// daemon lifetimes — truncate the newest segment mid-record — and the
// next daemon opens anyway, counts the damage on /healthz, serves
// every surviving row as a hit, and recomputes only the lost one with
// identical exports.
func TestServeStoreCorruptionRecovery(t *testing.T) {
	dir := t.TempDir()

	// Lifetime one: run the campaign to completion in-process over a
	// durable store, exactly as main would wire it.
	cfg, err := openDurable(dir, serverConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ts := newTestServer(t, cfg)
	st := submit(t, ts, crashSpec)
	fin := waitTerminal(t, ts, st.ID)
	if fin.State != stateDone {
		t.Fatalf("cold campaign ended %q", fin.State)
	}
	wantCSV := getBytes(t, ts, "/v1/campaigns/"+st.ID+"/export.csv")
	cfg.diskStore.Close()

	// Truncate the tail of the last segment: one row lost mid-record.
	segs, err := filepath.Glob(filepath.Join(dir, "results", "seg-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments written: %v, %v", segs, err)
	}
	last := segs[len(segs)-1]
	fi, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last, fi.Size()-20); err != nil {
		t.Fatal(err)
	}

	// Lifetime two: open degraded-gracefully, resubmit the same spec.
	cfg2, err := openDurable(dir, serverConfig{})
	if err != nil {
		t.Fatalf("corrupted store failed to open: %v", err)
	}
	if h := cfg2.diskStore.Health(); h.CorruptRecords != 1 || h.LoadedRecords != crashSpecRun-1 {
		t.Fatalf("after truncation Health = %+v, want exactly 1 corrupt / %d loaded", h, crashSpecRun-1)
	}
	ts2 := newTestServer(t, cfg2)
	st2 := submit(t, ts2, crashSpec)
	fin2 := waitTerminal(t, ts2, st2.ID)
	if fin2.State != stateDone {
		t.Fatalf("resubmission over corrupted store ended %q", fin2.State)
	}
	if fin2.CacheHits != crashSpecRun-1 || fin2.CacheMisses != 1 {
		t.Fatalf("hits=%d misses=%d, want %d surviving rows served + exactly the 1 lost row recomputed",
			fin2.CacheHits, fin2.CacheMisses, crashSpecRun-1)
	}
	if got := getBytes(t, ts2, "/v1/campaigns/"+st2.ID+"/export.csv"); !bytes.Equal(got, wantCSV) {
		t.Fatal("export over a corrupted store differs from the intact run's")
	}
}

// TestServeJournalGarbageTolerated: fill the journal directory with
// garbage — binary junk, a half-written spec, a directory, an entry
// whose id contradicts its filename — alongside one genuine
// incomplete campaign. Recovery resumes the real one, skips the rest
// with a counted warning on /healthz, and never crashes.
func TestServeJournalGarbageTolerated(t *testing.T) {
	dir := t.TempDir()
	jdir := filepath.Join(dir, "journal")
	if err := os.MkdirAll(jdir, 0o755); err != nil {
		t.Fatal(err)
	}
	// The genuine interrupted submission a crashed daemon left.
	entry, _ := json.Marshal(journalEntry{ID: "c7", Spec: mustSpec(t, crashSpec)})
	writeJournalFile(t, jdir, "c7.campaign.json", string(entry))
	// And the garbage.
	writeJournalFile(t, jdir, "c3.campaign.json", `{"id":"c3","spec":{truncated-by-a-cra`)
	writeJournalFile(t, jdir, "c4.campaign.json", `{"id":"c999","spec":{}}`) // id ≠ filename
	writeJournalFile(t, jdir, "cX.done", "")                                // unparseable id
	writeJournalFile(t, jdir, "README.txt", "not yours")
	writeJournalFile(t, jdir, "c5.campaign.json.tmp", "crash mid-record()")
	if err := os.WriteFile(filepath.Join(jdir, "junk.bin"), []byte{0xde, 0xad, 0xbe, 0xef}, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(filepath.Join(jdir, "subdir"), 0o755); err != nil {
		t.Fatal(err)
	}

	cfg, err := openDurable(dir, serverConfig{})
	if err != nil {
		t.Fatalf("garbage-filled journal failed recovery open: %v", err)
	}
	if n := len(cfg.resume); n != 1 || cfg.resume[0].ID != "c7" {
		t.Fatalf("resume list = %+v, want exactly the genuine c7", cfg.resume)
	}
	ts := newTestServer(t, cfg)
	fin := waitTerminal(t, ts, "c7")
	if fin.State != stateDone || !fin.Resumed {
		t.Fatalf("genuine campaign among garbage: state=%q resumed=%v", fin.State, fin.Resumed)
	}
	// New ids never collide with journaled ones.
	st := submit(t, ts, `{"experiment":"fig8","reps":1,"seed":1,"workers":1}`)
	if n, _ := campaignID(st.ID); n <= 7 {
		t.Fatalf("fresh submission reused journaled id space: %q", st.ID)
	}
	var health struct {
		Journal journalHealth `json:"journal"`
	}
	if err := json.Unmarshal(getBytes(t, ts, "/healthz"), &health); err != nil {
		t.Fatal(err)
	}
	// junk.bin, README.txt, subdir, the .tmp, cX.done, and the two
	// bad campaign files: 7 skipped warnings, no crash.
	if health.Journal.Skipped != 7 {
		t.Fatalf("journal skipped %d files, want 7 counted warnings", health.Journal.Skipped)
	}
}

// TestServeStoreDegradedMode: a disk write failure mid-service flips
// the store to memory-only; the campaign still completes, /healthz
// reports degraded with the reason, and the daemon keeps serving.
func TestServeStoreDegradedMode(t *testing.T) {
	var failing atomic.Bool
	st, err := sweep.OpenStore(filepath.Join(t.TempDir(), "results"), sweep.StoreOpts{
		WriteFault: func(op string) error {
			if failing.Load() {
				return fmt.Errorf("injected %s fault: no space left on device", op)
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	failing.Store(true)
	ts := newTestServer(t, serverConfig{store: st, diskStore: st})

	c := submit(t, ts, `{"experiment":"fig8","reps":1,"seed":42,"workers":2}`)
	fin := waitTerminal(t, ts, c.ID)
	if fin.State != stateDone {
		t.Fatalf("campaign over a failing disk ended %q (%s)", fin.State, fin.Error)
	}
	var health struct {
		Status string            `json:"status"`
		Store  sweep.StoreHealth `json:"store"`
	}
	if err := json.Unmarshal(getBytes(t, ts, "/healthz"), &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "degraded" || !health.Store.Degraded {
		t.Fatalf("disk failure not surfaced: %+v", health)
	}
	if !strings.Contains(health.Store.DegradedReason, "no space left") {
		t.Fatalf("degraded reason %q lost the cause", health.Store.DegradedReason)
	}
	// Memory-only degraded mode still answers the repeat from cache.
	c2 := submit(t, ts, `{"experiment":"fig8","reps":1,"seed":42,"workers":2}`)
	fin2 := waitTerminal(t, ts, c2.ID)
	if fin2.State != stateDone || fin2.CacheMisses != 0 {
		t.Fatalf("degraded repeat: state=%q misses=%d, want all hits", fin2.State, fin2.CacheMisses)
	}
}

func mustSpec(t *testing.T, raw string) campaignSpec {
	t.Helper()
	var spec campaignSpec
	if err := json.Unmarshal([]byte(raw), &spec); err != nil {
		t.Fatal(err)
	}
	return spec
}

func writeJournalFile(t *testing.T, dir, name, body string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
}
