package main

// The campaign journal makes submissions durable: a spec is written
// to disk before the daemon acknowledges it, and a terminal marker is
// written when the campaign finishes, so on restart the set
// {journaled} − {finished} is exactly the work a crash interrupted.
// Resuming is just re-running those specs — the result store turns
// every already-computed row into a cache hit, so a resumed campaign
// exports byte-identically to an uninterrupted one and recomputes
// only the missing suffix (the resume-equals-replay argument,
// DESIGN.md §14).
//
// Layout: <dir>/<id>.campaign.json holds {id, name, spec};
// <dir>/<id>.done holds {"state": ...}. Files the journal cannot
// parse — garbage, partial writes from a crash mid-journal, foreign
// droppings — are skipped with a counted warning, never a failed
// startup: losing one submission's durability must not take the
// service down with it.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

type journalEntry struct {
	ID   string       `json:"id"`
	Name string       `json:"name"` // canonical experiment name ("" for load)
	Spec campaignSpec `json:"spec"`
}

type journal struct {
	dir string

	mu       sync.Mutex
	skipped  int    // undecodable journal files ignored at open
	writeErr string // first write failure: journaling is degraded
}

// journalHealth is the /healthz surface of the journal.
type journalHealth struct {
	Dir      string `json:"dir"`
	Skipped  int    `json:"skipped_files"`
	Degraded bool   `json:"degraded"`
	WriteErr string `json:"write_error,omitempty"`
}

// campaignID parses "c<n>" ids; ok is false for anything else.
func campaignID(id string) (n int, ok bool) {
	rest, found := strings.CutPrefix(id, "c")
	if !found {
		return 0, false
	}
	n, err := strconv.Atoi(rest)
	return n, err == nil && n > 0
}

// openJournal opens (creating if needed) the journal at dir and
// returns the incomplete entries in submission (id) order plus the
// highest id ever journaled, so the daemon's id sequence never reuses
// a journaled id. Unreadable entries are counted, not fatal; only an
// unusable directory fails the open.
func openJournal(dir string) (j *journal, incomplete []journalEntry, maxID int, err error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, 0, fmt.Errorf("open journal: %w", err)
	}
	files, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("open journal: %w", err)
	}
	j = &journal{dir: dir}
	finished := map[string]bool{}
	var entries []journalEntry
	for _, f := range files {
		if f.IsDir() {
			j.skipped++
			continue
		}
		name := f.Name()
		switch {
		case strings.HasSuffix(name, ".done"):
			if id := strings.TrimSuffix(name, ".done"); isCampaignFile(id) {
				finished[id] = true
			} else {
				j.skipped++
			}
		case strings.HasSuffix(name, ".campaign.json"):
			b, err := os.ReadFile(filepath.Join(dir, name))
			var e journalEntry
			if err != nil || json.Unmarshal(b, &e) != nil || !isCampaignFile(e.ID) ||
				e.ID != strings.TrimSuffix(name, ".campaign.json") {
				j.skipped++
				continue
			}
			entries = append(entries, e)
		default:
			j.skipped++
		}
	}
	for _, e := range entries {
		n, _ := campaignID(e.ID)
		if n > maxID {
			maxID = n
		}
		if !finished[e.ID] {
			incomplete = append(incomplete, e)
		}
	}
	sort.Slice(incomplete, func(a, b int) bool {
		na, _ := campaignID(incomplete[a].ID)
		nb, _ := campaignID(incomplete[b].ID)
		return na < nb
	})
	return j, incomplete, maxID, nil
}

func isCampaignFile(id string) bool {
	_, ok := campaignID(id)
	return ok
}

// record journals one accepted submission, fsynced so acceptance
// survives a kill the moment the client sees 201. A write failure
// degrades journaling (surfaced via /healthz) instead of refusing the
// campaign: this process can still run it; only crash recovery is
// forfeit for this one entry.
func (j *journal) record(e journalEntry) {
	if j == nil {
		return
	}
	err := func() error {
		b, err := json.MarshalIndent(e, "", "  ")
		if err != nil {
			return err
		}
		path := filepath.Join(j.dir, e.ID+".campaign.json")
		tmp := path + ".tmp"
		f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
		if err != nil {
			return err
		}
		if _, err := f.Write(b); err != nil {
			f.Close()
			return err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		return os.Rename(tmp, path)
	}()
	if err != nil {
		j.mu.Lock()
		if j.writeErr == "" {
			j.writeErr = err.Error()
		}
		j.mu.Unlock()
	}
}

// finish marks one campaign terminal. A crash between reaching the
// terminal state and this marker re-resumes the campaign on restart —
// harmless, because every row is then a store hit and the re-run
// exports the identical bytes.
func (j *journal) finish(id, state string) {
	if j == nil {
		return
	}
	body := fmt.Sprintf("{\"state\":%q}\n", state)
	if err := os.WriteFile(filepath.Join(j.dir, id+".done"), []byte(body), 0o644); err != nil {
		j.mu.Lock()
		if j.writeErr == "" {
			j.writeErr = err.Error()
		}
		j.mu.Unlock()
	}
}

func (j *journal) health() *journalHealth {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return &journalHealth{
		Dir:      j.dir,
		Skipped:  j.skipped,
		Degraded: j.writeErr != "",
		WriteErr: j.writeErr,
	}
}
