// Command mptcpd serves the repo's measurement campaigns as a
// service: submit a campaign spec over HTTP/JSON, poll its progress,
// stream its per-run rows, and download CSV/JSON artifacts that are
// byte-identical to running paperbench or mptcpload directly. Repeat
// submissions are answered from a content-addressed result cache —
// runs are pure functions of (canonical config, seed), so caching is
// sound by construction.
//
//	mptcpd -addr :8080 -store /var/lib/mptcpd
//	curl -s localhost:8080/v1/campaigns -d '{"experiment":"fig8","reps":2,"seed":42}'
//	curl -s localhost:8080/v1/campaigns/c1
//	curl -s localhost:8080/v1/campaigns/c1/rows
//	curl -s localhost:8080/v1/campaigns/c1/export.csv
//	curl -s 'localhost:8080/v1/replay?token=clients=20,rate=3,...'
//	curl -s localhost:8080/healthz
//
// With -store, results persist in a segmented checksummed log and
// submissions are journaled before acceptance: kill -9 the daemon
// mid-campaign and the restarted daemon resumes the interrupted
// campaign, replaying completed rows from the store (cache hits) and
// recomputing only the missing suffix — exports are byte-identical to
// an uninterrupted run. Corrupt store records are skipped with a
// counted warning; disk write failures degrade to memory-only, both
// surfaced on /healthz.
//
// SIGINT/SIGTERM drains in-flight workers: the running campaign stops
// claiming new runs, its completed rows are exported with the
// campaign marked cancelled (a deliberate terminal state — drained
// campaigns are not resumed), and the listener shuts down gracefully.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"mptcplab/internal/sweep"
)

// openDurable wires a -store directory into a server config: the
// disk-backed result store under <dir>/results, the campaign journal
// under <dir>/journal, and the journal's incomplete entries queued
// for resume. Shared by main and the crash-recovery test helper.
func openDurable(dir string, cfg serverConfig) (serverConfig, error) {
	st, err := sweep.OpenStore(filepath.Join(dir, "results"), sweep.StoreOpts{})
	if err != nil {
		return cfg, err
	}
	j, incomplete, maxID, err := openJournal(filepath.Join(dir, "journal"))
	if err != nil {
		st.Close()
		return cfg, err
	}
	cfg.store = st
	cfg.diskStore = st
	cfg.journal = j
	cfg.resume = incomplete
	cfg.startID = maxID
	return cfg, nil
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	storeDir := flag.String("store", "", "durable state directory: disk-backed result store + campaign journal with crash recovery (empty = in-memory only)")
	queueDepth := flag.Int("queue-depth", 128, "campaign queue capacity; submissions beyond it get 503 + Retry-After")
	followMax := flag.Duration("follow-max", 10*time.Minute, "maximum lifetime of one /rows follower connection")
	flag.Parse()

	// Flag typos die at parse time with a one-line error, before any
	// state is touched — same contract as the other binaries.
	if *queueDepth < 1 {
		exitOn(fmt.Errorf("-queue-depth %d: must be at least 1", *queueDepth))
	}
	if *followMax <= 0 {
		exitOn(fmt.Errorf("-follow-max %s: must be positive", *followMax))
	}

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	cfg := serverConfig{queueDepth: *queueDepth, followMax: *followMax}
	if *storeDir != "" {
		var err error
		cfg, err = openDurable(*storeDir, cfg)
		exitOn(err)
		h := cfg.diskStore.Health()
		fmt.Fprintf(os.Stderr, "mptcpd: store %s: %d entries from %d segments (%d corrupt records skipped)\n",
			h.Dir, h.Entries, h.Segments, h.CorruptRecords)
		if n := len(cfg.resume); n > 0 {
			fmt.Fprintf(os.Stderr, "mptcpd: resuming %d interrupted campaign(s) from the journal\n", n)
		}
	}

	s := newServer(ctx, cfg)
	srv := &http.Server{
		Addr:    *addr,
		Handler: s.routes(),
		// Edge hardening: slow-loris headers and idle keep-alives are
		// bounded. No global write timeout — /rows is a long-lived
		// follower with its own per-write deadlines and lifetime cap.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "mptcpd: listening on %s\n", *addr)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			exitOn(err)
		}
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "mptcpd: draining (signal received)")
		// The root context cancellation already tells the running
		// campaign's workers to finish their current runs and stop;
		// give the listener a bounded window to flush responses.
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			exitOn(err)
		}
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "mptcpd:", err)
		os.Exit(1)
	}
}
