// Command mptcpd serves the repo's measurement campaigns as a
// service: submit a campaign spec over HTTP/JSON, poll its progress,
// stream its per-run rows, and download CSV/JSON artifacts that are
// byte-identical to running paperbench or mptcpload directly. Repeat
// submissions are answered from a content-addressed result cache —
// runs are pure functions of (canonical config, seed), so caching is
// sound by construction.
//
//	mptcpd -addr :8080
//	curl -s localhost:8080/v1/campaigns -d '{"experiment":"fig8","reps":2,"seed":42}'
//	curl -s localhost:8080/v1/campaigns/c1
//	curl -s localhost:8080/v1/campaigns/c1/rows
//	curl -s localhost:8080/v1/campaigns/c1/export.csv
//	curl -s 'localhost:8080/v1/replay?token=clients=20,rate=3,...'
//
// SIGINT/SIGTERM drains in-flight workers: the running campaign stops
// claiming new runs, its completed rows are exported with the
// campaign marked cancelled, and the listener shuts down gracefully.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	flag.Parse()

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	s := newServer(ctx)
	srv := &http.Server{Addr: *addr, Handler: s.routes()}

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "mptcpd: listening on %s\n", *addr)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "mptcpd:", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "mptcpd: draining (signal received)")
		// The root context cancellation already tells the running
		// campaign's workers to finish their current runs and stop;
		// give the listener a bounded window to flush responses.
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintln(os.Stderr, "mptcpd:", err)
			os.Exit(1)
		}
	}
}
