// Command tracestat is mptcplab's tcptrace: it analyzes pcap captures
// produced by the simulator's taps (or any raw-IP pcap of TCP traffic)
// and reports per-flow loss, RTT, and MPTCP reordering statistics —
// the paper's §3.3 metrics recomputed purely from the wire.
package main

import (
	"flag"
	"fmt"
	"os"

	"mptcplab/internal/trace"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: tracestat <capture.pcap> [more.pcap ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracestat:", err)
			os.Exit(1)
		}
		a, err := trace.AnalyzePcap(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracestat:", err)
			os.Exit(1)
		}
		fmt.Printf("== %s ==\n", path)
		a.WriteSummary(os.Stdout)
		fmt.Println()
	}
}
