// Command paperbench regenerates the paper's tables and figures.
//
// Text mode prints paper-style tables; csv/json modes emit
// machine-readable per-cell records (plus CCDF series for the
// latency-distribution figures) for external plotting.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	rtrace "runtime/trace"
	"strings"
	"syscall"

	"mptcplab/internal/experiment"
	"mptcplab/internal/units"
)

func main() {
	var (
		which   = flag.String("experiment", "all", "comma-separated: fig2,fig4,fig6,fig8,fig9,fig11,fig12,shootout,all (aliases: fig3/table2->fig2, fig5/table3->fig4, fig7/table4->fig6, fig10/table5->fig9, fig13/table6->fig12, sched->shootout)")
		reps    = flag.Int("reps", 5, "repetitions per configuration cell")
		seed    = flag.Int64("seed", 1, "campaign seed")
		workers = flag.Int("workers", 0, "parallel campaign workers (0 = all CPUs, 1 = serial); results are identical for any value")
		quick   = flag.Bool("quick", false, "scale the infinite-backlog size down for fast runs")
		format  = flag.String("format", "text", "output format: text | csv | json")
		outp    = flag.String("o", "", "write output to file instead of stdout")
		prog    = flag.Bool("progress", false, "print run progress to stderr")

		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file (inspect with go tool pprof)")
		memprofile = flag.String("memprofile", "", "write an allocation profile to this file at exit")
		tracefile  = flag.String("trace", "", "write a runtime execution trace to this file (inspect with go tool trace)")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "paperbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "paperbench:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *tracefile != "" {
		f, err := os.Create(*tracefile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "paperbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := rtrace.Start(f); err != nil {
			fmt.Fprintln(os.Stderr, "paperbench:", err)
			os.Exit(1)
		}
		defer rtrace.Stop()
	}
	if *memprofile != "" {
		path := *memprofile
		defer func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "paperbench:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live heap so the profile shows retained objects accurately
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "paperbench:", err)
			}
		}()
	}

	// Ctrl-C / SIGTERM drains the campaign workers and still emits
	// whatever cells completed; a second signal kills the process.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	opts := experiment.CampaignOpts{
		Reps: *reps, Seed: *seed, SampleProfiles: true, Workers: *workers,
		Context: ctx,
	}
	if *prog {
		opts.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\r%d/%d runs", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}

	sel := map[string]bool{}
	for _, s := range strings.Split(*which, ",") {
		sel[strings.TrimSpace(s)] = true
	}
	want := func(names ...string) bool {
		if sel["all"] {
			return true
		}
		for _, n := range names {
			if sel[n] {
				return true
			}
		}
		return false
	}

	var w io.Writer = os.Stdout
	if *outp != "" {
		f, err := os.Create(*outp)
		if err != nil {
			fmt.Fprintln(os.Stderr, "paperbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}

	type campaign struct {
		run     func() *experiment.Matrix
		text    func(io.Writer, *experiment.Matrix)
		distrib bool
	}
	timesShareChars := func(w io.Writer, m *experiment.Matrix) {
		experiment.WriteDownloadTimes(w, m)
		experiment.WriteCellShare(w, m)
		experiment.WritePathCharacteristics(w, m)
	}
	var campaigns []campaign
	if want("fig2", "fig3", "table2") {
		campaigns = append(campaigns, campaign{func() *experiment.Matrix { return experiment.Baseline(opts) }, timesShareChars, false})
	}
	if want("fig4", "fig5", "table3") {
		campaigns = append(campaigns, campaign{func() *experiment.Matrix { return experiment.SmallFlows(opts) }, timesShareChars, false})
	}
	if want("fig6", "fig7", "table4") {
		campaigns = append(campaigns, campaign{func() *experiment.Matrix { return experiment.CoffeeShop(opts) }, timesShareChars, false})
	}
	if want("fig8") {
		campaigns = append(campaigns, campaign{func() *experiment.Matrix { return experiment.SimultaneousSYN(opts) },
			func(w io.Writer, m *experiment.Matrix) { experiment.WriteDownloadTimes(w, m) }, false})
	}
	if want("fig9", "fig10", "table5") {
		campaigns = append(campaigns, campaign{func() *experiment.Matrix { return experiment.LargeFlows(opts) }, timesShareChars, false})
	}
	if want("fig11") {
		size := units.ByteCount(512 * units.MB)
		if *quick {
			size = 64 * units.MB
		}
		bopts := opts
		if bopts.Reps > 3 {
			bopts.Reps = 3
		}
		campaigns = append(campaigns, campaign{func() *experiment.Matrix { return experiment.Backlog(size, bopts) },
			func(w io.Writer, m *experiment.Matrix) { experiment.WriteDownloadTimes(w, m) }, false})
	}
	if want("shootout", "sched") {
		campaigns = append(campaigns, campaign{func() *experiment.Matrix { return experiment.SchedulerShootout(opts) }, timesShareChars, false})
	}
	if want("fig12", "fig13", "table6") {
		campaigns = append(campaigns, campaign{func() *experiment.Matrix { return experiment.LatencyDistribution(opts) },
			func(w io.Writer, m *experiment.Matrix) {
				experiment.WriteRTTCCDF(w, m)
				experiment.WriteOFOCCDF(w, m)
				experiment.WriteMPTCPLatencyTable(w, m)
			}, true})
	}
	if len(campaigns) == 0 {
		fmt.Fprintf(os.Stderr, "paperbench: nothing selected by -experiment %q\n", *which)
		os.Exit(2)
	}

	// speedline summarizes a campaign's host-side performance:
	// aggregate busy time over wall time approximates the speedup the
	// worker pool delivered, events/sec is the simulator's throughput,
	// and allocs/run is the heap-allocation cost of one download (the
	// pooled hot path keeps it O(window), not O(packets)). In text mode
	// it lands in the report; otherwise on stderr so csv/json stay
	// machine-readable.
	speedline := func(m *experiment.Matrix, allocs uint64) {
		dst := io.Writer(os.Stderr)
		if *format == "text" {
			dst = w
		}
		speedup := 1.0
		if m.WallTime > 0 {
			speedup = m.BusyTime.Seconds() / m.WallTime.Seconds()
		}
		runs := 0
		for _, e := range m.Export() {
			runs += e.N + e.Failures
		}
		var evRate, allocsPerRun float64
		if m.WallTime > 0 {
			evRate = float64(m.TotalEvents) / m.WallTime.Seconds()
		}
		if runs > 0 {
			allocsPerRun = float64(allocs) / float64(runs)
		}
		fmt.Fprintf(dst, "%s: wall %.2fs, aggregate run time %.2fs, %d workers (%.2fx speedup), %.2fM events/sec, %.0f allocs/run\n",
			m.ID, m.WallTime.Seconds(), m.BusyTime.Seconds(), m.Workers, speedup, evRate/1e6, allocsPerRun)
	}

	var matrices []*experiment.Matrix
	var distribs []experiment.DistributionExport
	cancelled := false
	for _, c := range campaigns {
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		m := c.run()
		runtime.ReadMemStats(&after)
		matrices = append(matrices, m)
		if *format == "text" {
			c.text(w, m)
		}
		speedline(m, after.Mallocs-before.Mallocs)
		if m.FailedRuns > 0 {
			fmt.Fprintf(os.Stderr, "%s: %d FAILED RUNS, first: %s\n", m.ID, m.FailedRuns, m.FirstFailure)
		}
		if c.distrib {
			distribs = append(distribs, m.ExportDistributions()...)
		}
		if m.Cancelled {
			cancelled = true
			fmt.Fprintf(os.Stderr, "%s: cancelled — emitting partial results\n", m.ID)
			break
		}
	}
	stopSignals()

	switch *format {
	case "text":
		fmt.Fprintln(w, "\ndone.")
	case "csv":
		if err := experiment.WriteCSV(w, matrices...); err != nil {
			fmt.Fprintln(os.Stderr, "paperbench:", err)
			os.Exit(1)
		}
	case "json":
		out := struct {
			Cells         []experiment.CellExport         `json:"cells"`
			Distributions []experiment.DistributionExport `json:"distributions,omitempty"`
		}{Distributions: distribs}
		for _, m := range matrices {
			out.Cells = append(out.Cells, m.Export()...)
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "paperbench:", err)
			os.Exit(1)
		}
	default:
		fmt.Fprintf(os.Stderr, "paperbench: unknown format %q\n", *format)
		os.Exit(2)
	}
	if cancelled {
		os.Exit(130)
	}
}
