// Command mptcpchaos runs single-flow chaos experiments: a named or
// custom fault schedule — link flaps, progressive degradation ramps,
// handover storms, signal fades, mid-transfer outages — applied to a
// deterministic testbed, with a resilience report per transport.
//
//	mptcpchaos -list
//	mptcpchaos -schedule outage -size 8MB -seed 61
//	mptcpchaos -schedule 'flap:path=wifi;at=2s;dur=500ms;every=2s;n=5' -transport mp2
//
// The default mode compares MP-2 against single-path WiFi under the
// same schedule and seed — the paper's §6 resilience claim: MPTCP's
// time-to-recover is bounded by reinjection onto the surviving path,
// while single-path TCP sits in RTO backoff until the fault clears.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"mptcplab/internal/chaos"
	"mptcplab/internal/experiment"
	"mptcplab/internal/mptcp"
	"mptcplab/internal/pathmodel"
	"mptcplab/internal/sim"
	"mptcplab/internal/units"
)

func main() {
	var (
		schedule  = flag.String("schedule", "outage", "fault schedule: preset name or spec like 'flap:path=wifi;at=2s;dur=500ms;every=2s;n=5' (see -list)")
		list      = flag.Bool("list", false, "list the named schedules with their specs and exit")
		transport = flag.String("transport", "compare", "wifi | cell | mp2 | mp4 | compare (mp2 vs wifi under the same faults)")
		size      = flag.String("size", "8MB", "download size")
		wifiProf  = flag.String("wifi", "comcast", "WiFi profile: comcast | coffeeshop")
		carrier   = flag.String("carrier", "att", "cellular profile: att | verizon | sprint")
		scheduler = flag.String("scheduler", "", "MPTCP scheduler plugin: minrtt (default) | roundrobin | weighted[:w0;w1;...] | redundant | blest | adaptive | backup")
		seed      = flag.Int64("seed", 61, "run seed (same seed + schedule => byte-identical behavior)")
		deadline  = flag.Duration("deadline", 30*time.Second, "wall-clock budget per run; over-budget runs are killed, not hung (0 = none)")
		selfCheck = flag.Bool("selfcheck", true, "arm the protocol invariant checker")
	)
	flag.Parse()

	// A scheduler typo must die here with a one-line error, not run a
	// full chaos comparison under a silent fallback policy.
	if err := mptcp.ValidateScheduler(*scheduler); err != nil {
		fmt.Fprintln(os.Stderr, "mptcpchaos:", err)
		os.Exit(1)
	}

	if *list {
		listSchedules(os.Stdout)
		return
	}
	if err := run(os.Stdout, *schedule, *transport, *size, *wifiProf, *carrier, *scheduler, *seed, *deadline, *selfCheck); err != nil {
		fmt.Fprintln(os.Stderr, "mptcpchaos:", err)
		os.Exit(1)
	}
}

func listSchedules(w io.Writer) {
	fmt.Fprintln(w, "named schedules (each expands to the spec shown; override fields with 'name:key=val;...'):")
	for _, name := range chaos.PresetNames() {
		sched, err := chaos.Named(name)
		if err != nil {
			continue
		}
		fmt.Fprintf(w, "  %-8s %s\n", name, sched.Spec())
	}
	fmt.Fprintln(w, "compose with '+': e.g. 'flap+fade:path=cell;depth=0.5'")
}

func run(w io.Writer, spec, transport, sizeStr, wifi, carrier, scheduler string, seed int64, deadline time.Duration, selfCheck bool) error {
	if err := mptcp.ValidateScheduler(scheduler); err != nil {
		return err
	}
	sched, err := chaos.Parse(spec)
	if err != nil {
		return err
	}
	if sched.Empty() {
		return fmt.Errorf("empty schedule %q; see -list", spec)
	}
	size, err := units.ParseByteCount(sizeStr)
	if err != nil {
		return fmt.Errorf("bad -size: %v", err)
	}
	wp, err := pathmodel.ByName(wifi)
	if err != nil {
		return err
	}
	cp, err := pathmodel.ByName(carrier)
	if err != nil {
		return err
	}

	one := func(tr experiment.Transport) experiment.RunResult {
		tb := experiment.NewTestbed(experiment.TestbedConfig{
			WiFi: wp, Cell: cp, WarmRadio: true, Seed: seed,
			ServerSecondIface: tr == experiment.MP4,
		})
		return tb.Run(experiment.RunConfig{
			Transport: tr,
			Scheduler: scheduler,
			Size:      size,
			Chaos:     sched,
			Deadline:  deadline,
			SelfCheck: selfCheck,
		})
	}

	fmt.Fprintf(w, "schedule: %s\nseed:     %d, size %s, wifi=%s, cell=%s\n\n",
		sched.Spec(), seed, size, wifi, carrier)

	transports, err := resolveTransports(transport)
	if err != nil {
		return err
	}
	results := make([]experiment.RunResult, len(transports))
	for i, tr := range transports {
		results[i] = one(tr)
		printRun(w, tr, results[i])
	}
	if len(transports) == 2 {
		printContrast(w, results[0], results[1])
	}
	for i, res := range results {
		if res.FailReason != "" {
			return fmt.Errorf("%s run failed: %s", transports[i], res.FailReason)
		}
		if res.Violations > 0 {
			return fmt.Errorf("%s run: %d protocol violations, first: %s",
				transports[i], res.Violations, res.FirstViolation)
		}
	}
	return nil
}

func resolveTransports(s string) ([]experiment.Transport, error) {
	switch strings.ToLower(s) {
	case "wifi":
		return []experiment.Transport{experiment.SPWiFi}, nil
	case "cell":
		return []experiment.Transport{experiment.SPCell}, nil
	case "mp2", "mptcp":
		return []experiment.Transport{experiment.MP2}, nil
	case "mp4":
		return []experiment.Transport{experiment.MP4}, nil
	case "compare":
		return []experiment.Transport{experiment.MP2, experiment.SPWiFi}, nil
	}
	return nil, fmt.Errorf("unknown -transport %q (want wifi|cell|mp2|mp4|compare)", s)
}

func printRun(w io.Writer, tr experiment.Transport, res experiment.RunResult) {
	fmt.Fprintf(w, "%s:\n", tr)
	if res.FailReason != "" {
		fmt.Fprintf(w, "  RUN FAILED: %s\n\n", res.FailReason)
		return
	}
	state := "completed"
	if !res.Completed {
		state = "DID NOT COMPLETE"
	}
	goodput := 0.0
	if res.DownloadTime > 0 {
		bytes := float64(res.WiFiBytesSent + res.CellBytesSent)
		goodput = 8 * bytes / res.DownloadTime.Seconds() / float64(units.Mbps)
	}
	fmt.Fprintf(w, "  download:   %s in %.3fs (%.2f Mbps), %d subflows\n",
		state, res.DownloadTime.Seconds(), goodput, res.Subflows)
	if r := res.Resilience; r != nil {
		fmt.Fprintf(w, "  verdict:    %s (%d ok, %d late, %d incomplete, %d stalled, %d aborted)\n",
			r.Graceful(), r.OK, r.Late, r.Incomplete, r.Stalled, r.Aborted)
		fmt.Fprintf(w, "  stalls:     %d, longest %.3fs\n",
			r.TotalStalls, float64(r.LongestStall)/float64(sim.Second))
		if r.TTRAcc.N() > 0 {
			fmt.Fprintf(w, "  recovery:   %d fault(s) recovered, TTR mean %.3fs max %.3fs; %d unrecovered\n",
				r.TTRAcc.N(), r.TTRAcc.Mean(), r.TTRAcc.Max(), r.Unrecovered)
		} else if r.Unrecovered > 0 {
			fmt.Fprintf(w, "  recovery:   %d fault(s) never recovered before the flow ended\n", r.Unrecovered)
		}
		fmt.Fprintf(w, "  goodput:    %.2f Mbps during faults vs %.2f Mbps steady; %d retries, %d timeouts\n",
			8*r.FaultGoodput()/float64(units.Mbps), 8*r.SteadyGoodput()/float64(units.Mbps),
			r.Retries, r.Timeouts)
	}
	fmt.Fprintln(w)
}

// printContrast distills the paper's resilience claim into one block:
// with the same seed and the same fault timeline, how long did each
// stack sit dark, and how fast did it come back.
func printContrast(w io.Writer, a, b experiment.RunResult) {
	if a.Resilience == nil || b.Resilience == nil {
		return
	}
	stall := func(r experiment.RunResult) float64 {
		return float64(r.Resilience.LongestStall) / float64(sim.Second)
	}
	fmt.Fprintf(w, "contrast: longest stall %.3fs vs %.3fs; bytes moved during faults %s vs %s\n",
		stall(a), stall(b),
		units.ByteCount(a.Resilience.FaultBytes), units.ByteCount(b.Resilience.FaultBytes))
}
