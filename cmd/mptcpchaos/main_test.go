package main

import (
	"io"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"
)

// TestRejectsUnknownScheduler re-executes the test binary as
// mptcpchaos with a bogus -scheduler and proves the typo dies at
// flag-parse time — before any chaos run starts: exit code 1, a single
// error line naming the bad spec, no panic.
func TestRejectsUnknownScheduler(t *testing.T) {
	if os.Getenv("MPTCPCHAOS_RUN_MAIN") == "1" {
		os.Args = []string{"mptcpchaos", "-scheduler", "bogus"}
		main()
		return
	}
	cmd := exec.Command(os.Args[0], "-test.run=TestRejectsUnknownScheduler")
	cmd.Env = append(os.Environ(), "MPTCPCHAOS_RUN_MAIN=1")
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("want the child to exit non-zero, got err=%v; output:\n%s", err, out)
	}
	if code := ee.ExitCode(); code != 1 {
		t.Fatalf("exit code %d, want 1; output:\n%s", code, out)
	}
	text := strings.TrimSpace(string(out))
	if strings.Contains(text, "panic") {
		t.Fatalf("scheduler validation panicked:\n%s", out)
	}
	if strings.Count(text, "\n") != 0 {
		t.Errorf("want a one-line error, got:\n%s", out)
	}
	if !strings.HasPrefix(text, "mptcpchaos:") || !strings.Contains(text, `"bogus"`) {
		t.Errorf("error line %q should name the binary and the bad scheduler", text)
	}
}

// TestRunRejectsUnknownScheduler covers the programmatic entry point
// too: run() must refuse a bad scheduler before building a testbed.
func TestRunRejectsUnknownScheduler(t *testing.T) {
	err := run(io.Discard, "outage", "mp2", "1MB", "comcast", "att", "nope", 1, time.Second, true)
	if err == nil {
		t.Fatal("run() accepted an unknown scheduler")
	}
	if !strings.Contains(err.Error(), `"nope"`) {
		t.Errorf("error %q does not name the bad scheduler", err)
	}
}
