// Command mptcpfuzz is the deterministic adversarial scenario fuzzer:
// it generates seeded scenarios — randomized path characteristics plus
// a script of mid-flow outages, burst loss, duplication/reordering
// windows, address churn, and handover storms — and runs each with the
// protocol invariant checker armed. On a violation it shrinks the
// fault script to a minimal reproducer and prints a one-line replay
// token; `mptcpfuzz -replay seed:mask[:sched]` re-runs exactly that
// case, under exactly that scheduler plugin.
package main

import (
	"flag"
	"fmt"
	"os"

	"mptcplab/internal/check"
	"mptcplab/internal/mptcp"
)

func main() {
	var (
		n      = flag.Int("n", 100, "number of scenarios to run")
		seed   = flag.Int64("seed", 1, "base seed; case i runs GenScenario(seed+i)")
		sched  = flag.String("sched", "", "run every generated scenario under this scheduler plugin: minrtt (default) | roundrobin | weighted[:w0;w1;...] | redundant | blest | adaptive | backup")
		replay = flag.String("replay", "", "replay one scenario from a seed:mask[:sched] token")
		v      = flag.Bool("v", false, "log every scenario, not just failures")
	)
	flag.Parse()

	// A scheduler typo must die here with a one-line error, not fuzz
	// hundreds of scenarios under a silent fallback policy.
	if err := mptcp.ValidateScheduler(*sched); err != nil {
		fmt.Fprintln(os.Stderr, "mptcpfuzz:", err)
		os.Exit(1)
	}

	if *replay != "" {
		sc, err := check.ParseReplay(*replay)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		rep := check.RunScenario(sc, nil)
		describe(rep, true)
		if !rep.Ok() {
			os.Exit(1)
		}
		return
	}

	failures := 0
	for i := 0; i < *n; i++ {
		sc := check.GenScenario(*seed + int64(i))
		sc.Scheduler = *sched
		rep := check.RunScenario(sc, nil)
		if rep.Ok() {
			if *v {
				describe(rep, false)
			}
			continue
		}
		failures++
		fmt.Printf("FAIL seed=%d: %d violation(s)\n", sc.Seed, rep.Count)
		min := check.Shrink(sc, func(s check.Scenario) check.Report {
			return check.RunScenario(s, nil)
		})
		minRep := check.RunScenario(min, nil)
		describe(minRep, true)
		fmt.Printf("  replay: mptcpfuzz -replay %s\n", min.Replay())
	}
	if failures > 0 {
		fmt.Printf("%d/%d scenarios violated invariants\n", failures, *n)
		os.Exit(1)
	}
	fmt.Printf("ok: %d scenarios, 0 violations\n", *n)
}

func describe(rep check.Report, detail bool) {
	sc := rep.Scenario
	status := "ok"
	if !rep.Ok() {
		status = fmt.Sprintf("%d violation(s)", rep.Count)
	}
	done := "stalled"
	if rep.Completed {
		done = "completed"
	}
	fmt.Printf("  seed=%d mask=%x size=%dKB paths=%d faults=%d: %s, %s, %d bytes delivered\n",
		sc.Seed, sc.Mask, sc.Size>>10, pathCount(sc), len(sc.ActiveFaults()), status, done, rep.Delivered)
	if detail {
		for _, f := range sc.ActiveFaults() {
			fmt.Printf("    fault %v\n", f)
		}
		for _, viol := range rep.Violations {
			fmt.Printf("    %v\n", viol)
		}
	}
}

func pathCount(sc check.Scenario) int {
	if sc.FourPaths {
		return 4
	}
	return 2
}
