GO ?= go
SHA := $(shell git rev-parse --short HEAD)

# Benchmarks archived per commit and gated on allocs/op by benchjson.
GATED_BENCHES := BenchmarkSimEventLoop|BenchmarkSegEncodeDecode|BenchmarkSingleDownload4MB|BenchmarkTCPSingle4MB

.PHONY: all build test race vet bench

all: vet build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# bench runs the gated hot-path benchmarks with -benchmem, archives
# the numbers as BENCH_<sha>.json, and fails if any allocation gate
# regresses (see cmd/benchjson for the ceilings).
bench:
	$(GO) test -run '^$$' -bench '$(GATED_BENCHES)' -benchmem . \
		| $(GO) run ./cmd/benchjson -o BENCH_$(SHA).json
