GO ?= go
SHA := $(shell git rev-parse --short HEAD)

# Benchmarks archived per commit and gated on allocs/op by benchjson.
GATED_BENCHES := BenchmarkSimEventLoop|BenchmarkSegEncodeDecode|BenchmarkSingleDownload4MB|BenchmarkTCPSingle4MB

.PHONY: all build test race vet bench fuzz-smoke cover

all: vet build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# bench runs the gated hot-path benchmarks with -benchmem, archives
# the numbers as BENCH_<sha>.json, and fails if any allocation gate
# regresses (see cmd/benchjson for the ceilings).
bench:
	$(GO) test -run '^$$' -bench '$(GATED_BENCHES)' -benchmem . \
		| $(GO) run ./cmd/benchjson -o BENCH_$(SHA).json

# fuzz-smoke gives each native fuzz target a short budget beyond its
# checked-in corpus, then sweeps the adversarial scenario fuzzer over
# 200 seeded scenarios with the full invariant checker armed. Any
# violation prints a one-line replay token (mptcpfuzz -replay seed:mask).
FUZZTIME ?= 20s
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzSegDecode$$' -fuzztime $(FUZZTIME) ./internal/seg/
	$(GO) test -run '^$$' -fuzz '^FuzzReorderInsert$$' -fuzztime $(FUZZTIME) ./internal/mptcp/
	$(GO) run ./cmd/mptcpfuzz -n 200 -seed 1

# cover enforces the statement-coverage floor (baseline 72.7% when the
# gate landed; the floor leaves a little slack for counter drift).
COVER_FLOOR ?= 72.0
cover:
	$(GO) test -count=1 -coverprofile=cover.out ./...
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	echo "total coverage: $$total% (floor $(COVER_FLOOR)%)"; \
	awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { exit (t+0 >= f+0) ? 0 : 1 }' \
		|| { echo "coverage $$total% fell below the $(COVER_FLOOR)% floor"; exit 1; }
