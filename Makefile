GO ?= go
SHA := $(shell git rev-parse --short HEAD)

# Benchmarks archived per commit and gated on allocs/op by benchjson.
GATED_BENCHES := BenchmarkSimEventLoop|BenchmarkSegEncodeDecode|BenchmarkSingleDownload4MB|BenchmarkTCPSingle4MB

.PHONY: all build test race vet bench bench-diff fuzz-smoke cover loadsmoke chaos-smoke sched-smoke serve-smoke

all: vet build test

build:
	$(GO) build ./...

test:
	$(GO) test -timeout 10m ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race -shuffle=on -timeout 20m ./...

# bench runs the gated hot-path benchmarks with -benchmem, archives
# the numbers as BENCH_<sha>.json, and fails if any allocation gate
# regresses (see cmd/benchjson for the ceilings).
bench:
	$(GO) test -run '^$$' -bench '$(GATED_BENCHES)' -benchmem . \
		| $(GO) run ./cmd/benchjson -o BENCH_$(SHA).json

# bench-diff additionally compares the gated benchmarks against the
# committed BENCH_baseline.json and fails on a >10% regression in
# ns/op or allocs/op. A perf PR that deliberately moves the numbers
# refreshes the baseline (and archives its BENCH_<sha>.json point).
BENCH_BASELINE ?= BENCH_baseline.json
bench-diff:
	$(GO) test -run '^$$' -bench '$(GATED_BENCHES)' -benchmem . \
		| $(GO) run ./cmd/benchjson -baseline $(BENCH_BASELINE) -o BENCH_$(SHA).json

# fuzz-smoke gives each native fuzz target a short budget beyond its
# checked-in corpus, then sweeps the adversarial scenario fuzzer over
# 200 seeded scenarios under each registered packet scheduler with the
# full invariant checker armed. Any violation prints a one-line replay
# token (mptcpfuzz -replay seed:mask[:sched]).
FUZZTIME ?= 20s
FUZZ_SCHEDS := minrtt roundrobin weighted redundant blest adaptive
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzSegDecode$$' -fuzztime $(FUZZTIME) ./internal/seg/
	$(GO) test -run '^$$' -fuzz '^FuzzReorderInsert$$' -fuzztime $(FUZZTIME) ./internal/mptcp/
	$(GO) test -run '^$$' -fuzz '^FuzzTimerWheel$$' -fuzztime $(FUZZTIME) ./internal/sim/
	$(GO) test -run '^$$' -fuzz '^FuzzStoreOpen$$' -fuzztime $(FUZZTIME) ./internal/sweep/
	for s in $(FUZZ_SCHEDS); do \
		$(GO) run ./cmd/mptcpfuzz -n 200 -seed 1 -sched $$s || exit 1; \
	done

# sched-smoke is the scheduler-matrix gate: the golden export fixture
# pins minrtt's placement byte-for-byte (any scheduler-layer change
# that perturbs the default policy fails here), and the conformance
# suite runs every registered scheduler through the five-scenario
# battery — zero invariant violations, byte-stream oracle intact,
# policy properties (RTT preference, rotation, weighted split,
# zero-stall blackout redundancy, blest HoL gate, adaptive fade
# survival) asserted — under the race detector. The suite runs in
# seconds; the tight timeout catches a gating policy wedging the
# virtual clock.
sched-smoke:
	$(GO) test -count=1 -run '^TestGoldenSmallFlowsExports$$' ./internal/experiment/
	$(GO) test -race -count=1 -timeout 5m \
		-run '^TestSchedulerConformance$$|^TestConformanceReplayTokens$$' ./internal/check/

# loadsmoke proves the fleet engine's determinism contract end to end:
# the same sweep, run serially and with a worker pool, must produce
# byte-identical CSV and JSON exports, with the invariant checker armed
# on every run (mptcpload exits non-zero on any violation).
LOADFLAGS := -clients 60 -rates 3,10 -duration 15s -drain 15s -reps 2 -seed 42 -transport 'wifi=0.3,cell=0.2,mptcp=0.5'
loadsmoke:
	$(GO) run ./cmd/mptcpload $(LOADFLAGS) -workers 1 -o loadsmoke_w1.csv
	$(GO) run ./cmd/mptcpload $(LOADFLAGS) -workers 8 -o loadsmoke_w8.csv
	$(GO) run ./cmd/mptcpload $(LOADFLAGS) -workers 1 -format json -o loadsmoke_w1.json
	$(GO) run ./cmd/mptcpload $(LOADFLAGS) -workers 8 -format json -o loadsmoke_w8.json
	cmp loadsmoke_w1.csv loadsmoke_w8.csv
	cmp loadsmoke_w1.json loadsmoke_w8.json
	@echo "loadsmoke: exports byte-identical across worker counts, zero violations"
	@rm -f loadsmoke_w1.csv loadsmoke_w8.csv loadsmoke_w1.json loadsmoke_w8.json

# chaos-smoke proves the resilience layer's determinism contract: the
# same chaos sweep, serial and with a worker pool, must produce
# byte-identical run exports AND byte-identical resilience reports,
# with the invariant checker armed on every run.
CHAOSFLAGS := -clients 40 -rates 4,8 -duration 10s -drain 20s -reps 2 -seed 42 \
	-transport 'wifi=0.3,cell=0.2,mptcp=0.5' \
	-chaos 'flap:path=wifi;at=2s;dur=400ms;every=2s;n=3'
chaos-smoke:
	$(GO) run ./cmd/mptcpload $(CHAOSFLAGS) -workers 1 -o chaos_w1.csv -res-out chaosres_w1.csv
	$(GO) run ./cmd/mptcpload $(CHAOSFLAGS) -workers 4 -o chaos_w4.csv -res-out chaosres_w4.csv
	$(GO) run ./cmd/mptcpload $(CHAOSFLAGS) -workers 1 -format json -o chaos_w1.json -res-out chaosres_w1.json
	$(GO) run ./cmd/mptcpload $(CHAOSFLAGS) -workers 4 -format json -o chaos_w4.json -res-out chaosres_w4.json
	cmp chaos_w1.csv chaos_w4.csv
	cmp chaosres_w1.csv chaosres_w4.csv
	cmp chaos_w1.json chaos_w4.json
	cmp chaosres_w1.json chaosres_w4.json
	$(GO) run ./cmd/mptcpchaos -schedule 'outage:path=wifi;at=2s;dur=3s' -size 4MB -seed 61
	@echo "chaos-smoke: chaos sweep + resilience exports byte-identical across worker counts"
	@rm -f chaos_w1.csv chaos_w4.csv chaos_w1.json chaos_w4.json \
		chaosres_w1.csv chaosres_w4.csv chaosres_w1.json chaosres_w4.json

# serve-smoke is the service layer's acceptance gate: boot mptcpd on a
# random port, submit a small experiment campaign and a small load
# campaign twice each, and assert (1) every artifact is byte-identical
# to running paperbench / mptcpload's writers directly, (2) the second
# submission of each is answered 100% from the content-addressed
# cache, and (3) cancellation mid-campaign still exports the completed
# prefix. The durability suite rides in the same pattern: SIGKILL the
# daemon mid-campaign at an injected sync point, restart over the same
# store+journal, and require the resumed campaign to replay its
# completed prefix as store hits with exports byte-identical to an
# uninterrupted run — plus corrupted-segment, garbage-journal, and
# degraded-disk recovery. The assertions live in cmd/mptcpd's
# TestServe* suite.
serve-smoke:
	$(GO) test -count=1 -timeout 5m -run '^TestServe' -v ./cmd/mptcpd/
	@echo "serve-smoke: daemon artifacts byte-identical to direct runners; repeat submissions 100% cache hits; kill/restart resumes byte-identically"

# cover enforces the statement-coverage floor (baseline 72.7% when the
# gate landed; the floor leaves a little slack for counter drift).
COVER_FLOOR ?= 72.0
cover:
	$(GO) test -count=1 -coverprofile=cover.out ./...
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	echo "total coverage: $$total% (floor $(COVER_FLOOR)%)"; \
	awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { exit (t+0 >= f+0) ? 0 : 1 }' \
		|| { echo "coverage $$total% fell below the $(COVER_FLOOR)% floor"; exit 1; }
