package sim_test

import (
	"fmt"

	"mptcplab/internal/sim"
)

// A discrete-event simulation: schedule callbacks in virtual time and
// run the clock forward.
func Example() {
	s := sim.New()
	s.After(10*sim.Millisecond, "hello", func() {
		fmt.Println("fired at", s.Now())
	})
	s.After(5*sim.Millisecond, "first", func() {
		fmt.Println("fired at", s.Now())
	})
	s.Run()
	// Output:
	// fired at 5ms
	// fired at 10ms
}

// Timers re-arm like time.Timer but in virtual time — the building
// block of TCP's retransmission machinery.
func ExampleTimer() {
	s := sim.New()
	t := sim.NewTimer(s, "rto", func() { fmt.Println("timeout at", s.Now()) })
	t.Reset(200 * sim.Millisecond)
	t.Reset(300 * sim.Millisecond) // replaces the earlier deadline
	s.Run()
	// Output:
	// timeout at 300ms
}
