package sim

import (
	"math"
	"math/rand"
)

// RNG is a deterministic random stream used by stochastic components
// (loss processes, jitter, scenario sampling). It wraps math/rand with
// a few distributions the path models need. Each component derives its
// own child stream so that adding randomness to one component does not
// perturb another's sequence.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a stream seeded with seed. The underlying source is
// the fast-seeding lagged-Fibonacci implementation from fastrand.go,
// bit-identical to math/rand's — world construction derives several
// streams per run, and seeding dominated its profile.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(newSource(seed))}
}

// Child derives an independent stream from this one, labeled for
// reproducibility: equal labels and parent state yield equal children.
func (g *RNG) Child(label string) *RNG {
	h := int64(1469598103934665603) // FNV-1a offset basis
	for i := 0; i < len(label); i++ {
		h ^= int64(label[i])
		h *= 1099511628211
	}
	return NewRNG(h ^ g.r.Int63())
}

// Float64 returns a uniform value in [0,1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform value in [0,n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a uniform non-negative int64.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// Bool returns true with probability p.
func (g *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return g.r.Float64() < p
}

// NormFloat64 returns a standard normal sample.
func (g *RNG) NormFloat64() float64 { return g.r.NormFloat64() }

// Normal returns a normal sample with the given mean and standard
// deviation.
func (g *RNG) Normal(mean, stddev float64) float64 {
	return mean + stddev*g.r.NormFloat64()
}

// ExpFloat64 returns an exponential sample with rate 1.
func (g *RNG) ExpFloat64() float64 { return g.r.ExpFloat64() }

// Exponential returns an exponential sample with the given mean.
func (g *RNG) Exponential(mean float64) float64 {
	return mean * g.r.ExpFloat64()
}

// LogNormal returns a log-normal sample parameterized by the location
// mu and scale sigma of the underlying normal. Heavy-tailed cellular
// RTT jitter is modeled with this.
func (g *RNG) LogNormal(mu, sigma float64) float64 {
	return exp(mu + sigma*g.r.NormFloat64())
}

// Pareto returns a Pareto(xm, alpha) sample: xm * U^(-1/alpha). Used
// for the multi-second tails seen on 3G paths.
func (g *RNG) Pareto(xm, alpha float64) float64 {
	u := g.r.Float64()
	for u == 0 {
		u = g.r.Float64()
	}
	return xm * pow(u, -1/alpha)
}

// Uniform returns a uniform sample in [lo, hi).
func (g *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*g.r.Float64()
}

// Duration returns a uniform virtual duration in [lo, hi).
func (g *RNG) Duration(lo, hi Time) Time {
	if hi <= lo {
		return lo
	}
	return lo + Time(g.r.Int63n(int64(hi-lo)))
}

// Shuffle permutes n elements using swap, in the manner of rand.Shuffle.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// Perm returns a random permutation of [0,n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

func exp(x float64) float64    { return math.Exp(x) }
func pow(x, y float64) float64 { return math.Pow(x, y) }

// Splitmix64 is the 64-bit finalizer of the SplitMix generator
// (Steele, Lea & Flood 2014): a bijection on uint64 with full
// avalanche, so distinct inputs always produce distinct outputs. The
// campaign and fleet runners both derive collision-free per-job seeds
// with it.
func Splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
