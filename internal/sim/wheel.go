package sim

import "math/bits"

// Hierarchical timing wheel.
//
// TCP stacks arm far more timers than they ever fire: the RTO timer is
// re-armed on every forward ACK, the delayed-ACK timer on most
// segments, and nearly all of those arms are cancelled long before
// expiry. Feeding them through the heap means every arm pays a sift-up
// and every cancel leaves a dead record for the pop loop to discard —
// O(log n) churn for timers that never fire.
//
// The wheel gives timers O(1) arm and O(1) cancel: a pending timer is
// an intrusive doubly-linked node in the slot covering its deadline
// (three levels of 256 slots; level-0 ticks of ~1.05ms cover ~268ms,
// level 1 ~68.7s, level 2 ~4.9h; anything further, or due inside the
// slot currently being flushed, falls back to the heap). Per-level
// occupancy bitmaps let the flush cursor skip empty slots in O(1).
//
// Determinism is preserved by making the wheel a pure holding area:
// timers draw their tie-break seq from the simulator's global counter
// at arm time, and a slot is flushed wholesale into the heap strictly
// before the clock reaches it (flushPos tracks the boundary; peek
// flushes just far enough to cover the heap's head event). The heap's
// (at, seq) comparator therefore always decides final firing order —
// including ties between timers and ordinary events — and the schedule
// is byte-identical to one produced without the wheel. Only the tiny
// fraction of timers that survive to their deadline ever touch the
// heap; the rest are unlinked without it noticing.

const (
	wheelBits   = 8
	wheelSlots  = 1 << wheelBits
	wheelMask   = wheelSlots - 1
	wheelLevels = 3
	wheelShift0 = 20 // level-0 tick = 2^20 ns ≈ 1.05ms

	tick0 = Time(1) << wheelShift0
	tick1 = Time(1) << (wheelShift0 + wheelBits)
	tick2 = Time(1) << (wheelShift0 + 2*wheelBits)

	horizon0 = tick1                                  // level-0 span ≈ 268ms
	horizon1 = tick2                                  // level-1 span ≈ 68.7s
	horizon2 = Time(1) << (wheelShift0 + 3*wheelBits) // level-2 span ≈ 4.9h
)

func wheelShift(level uint8) uint { return wheelShift0 + uint(level)*wheelBits }

// timerRec is one pending wheel entry. Unlike heap eventRecs it needs
// no generation counter: the only reference outside the wheel is its
// owning Timer's w field, which is nilled the moment the record leaves
// the wheel (cancel, flush, or simulator Reset).
type timerRec struct {
	at    Time
	seq   uint64 // drawn from Simulator.nextSeq at arm time
	owner *Timer
	next  *timerRec
	prev  *timerRec
	level uint8
}

type wheel struct {
	slots    [wheelLevels][wheelSlots]*timerRec
	occupied [wheelLevels][wheelSlots / 64]uint64
	count    int
	// flushPos is level-0-slot-aligned: every slot strictly below it has
	// been flushed into the heap, and every resident record's deadline
	// is at or above it.
	flushPos Time
}

func (s *Simulator) allocTimerRec() *timerRec {
	if n := len(s.freeTimers); n > 0 {
		r := s.freeTimers[n-1]
		s.freeTimers[n-1] = nil
		s.freeTimers = s.freeTimers[:n-1]
		return r
	}
	return &timerRec{}
}

func (s *Simulator) freeTimerRec(r *timerRec) {
	r.owner = nil
	r.next = nil
	r.prev = nil
	s.freeTimers = append(s.freeTimers, r)
}

// wheelInsert files a timer into the slot covering at, or reports false
// when the deadline must go to the heap instead: it lands in an
// already-flushed slot (imminent) or beyond the level-2 horizon.
func (s *Simulator) wheelInsert(at Time, seq uint64, t *Timer) bool {
	w := &s.wheel
	if at&^(tick0-1) < w.flushPos {
		return false
	}
	delta := at - w.flushPos
	var level uint8
	switch {
	case delta < horizon0:
		level = 0
	case delta < horizon1:
		level = 1
	case delta < horizon2:
		level = 2
	default:
		return false
	}
	r := s.allocTimerRec()
	r.at = at
	r.seq = seq
	r.owner = t
	r.level = level
	idx := int(at>>wheelShift(level)) & wheelMask
	head := w.slots[level][idx]
	r.next = head
	r.prev = nil
	if head != nil {
		head.prev = r
	}
	w.slots[level][idx] = r
	w.occupied[level][idx>>6] |= 1 << (idx & 63)
	w.count++
	t.w = r
	return true
}

// wheelRemove unlinks a pending record in O(1). The caller owns the
// live-count and owner bookkeeping.
func (s *Simulator) wheelRemove(r *timerRec) {
	w := &s.wheel
	idx := int(r.at>>wheelShift(r.level)) & wheelMask
	if r.prev != nil {
		r.prev.next = r.next
	} else {
		w.slots[r.level][idx] = r.next
	}
	if r.next != nil {
		r.next.prev = r.prev
	}
	if w.slots[r.level][idx] == nil {
		w.occupied[r.level][idx>>6] &^= 1 << (idx & 63)
	}
	w.count--
	s.freeTimerRec(r)
}

// flushWheel transfers wheel records into the heap until every record
// that could fire at or before limit is heap-resident (flushPos >
// limit) or the wheel drains. Slots flush strictly before the clock
// reaches them, so slot membership never influences execution order.
func (s *Simulator) flushWheel(limit Time) {
	w := &s.wheel
	for w.count > 0 && w.flushPos <= limit {
		pos := w.flushPos
		// Cascade boundary crossings, coarsest level first: the higher-
		// level slot beginning exactly at pos redistributes its records
		// into finer slots (or straight to level 0).
		if pos&(tick2-1) == 0 {
			s.cascade(2, pos)
		}
		if pos&(tick1-1) == 0 {
			s.cascade(1, pos)
		}
		idx := int(pos>>wheelShift0) & wheelMask
		for r := w.slots[0][idx]; r != nil; {
			next := r.next
			t := r.owner
			e := s.alloc()
			e.at = r.at
			e.seq = r.seq
			e.fn = t.fire
			e.name = t.name
			e.dead = false
			s.push(e)
			t.ev = Event{rec: e, gen: e.gen}
			t.w = nil
			w.count--
			s.wheelFlushes++
			s.freeTimerRec(r)
			r = next
		}
		w.slots[0][idx] = nil
		w.occupied[0][idx>>6] &^= 1 << (idx & 63)
		// Advance past empty level-0 slots in one step, but never skip a
		// cascade boundary: the gap's records may be parked coarser.
		bound := (pos &^ (tick1 - 1)) + tick1
		next := pos + tick0
		if span := int((bound - next) >> wheelShift0); span > 0 {
			if j, ok := w.nextOccupied0(int(next>>wheelShift0)&wheelMask, span); ok {
				next += Time(j) << wheelShift0
			} else {
				next = bound
			}
		}
		w.flushPos = next
	}
}

// cascade redistributes the level slot beginning at pos into finer
// levels. Re-inserted records keep their original (at, seq), so the
// eventual heap order is unchanged.
func (s *Simulator) cascade(level uint8, pos Time) {
	w := &s.wheel
	idx := int(pos>>wheelShift(level)) & wheelMask
	r := w.slots[level][idx]
	if r == nil {
		return
	}
	w.slots[level][idx] = nil
	w.occupied[level][idx>>6] &^= 1 << (idx & 63)
	for r != nil {
		next := r.next
		t := r.owner
		at, seq := r.at, r.seq
		w.count--
		s.freeTimerRec(r)
		// Always lands: delta < the slot's own span, well inside the
		// finer levels' horizons.
		s.wheelInsert(at, seq, t)
		r = next
	}
}

// nextOccupied0 scans the level-0 occupancy bitmap for the first set
// slot in [from, from+span), which never wraps (span is bounded by the
// distance to the next 256-slot boundary). It returns the offset from
// `from`.
func (w *wheel) nextOccupied0(from, span int) (int, bool) {
	for j := 0; j < span; {
		i := from + j
		word := w.occupied[0][i>>6] >> (i & 63)
		if word != 0 {
			off := bits.TrailingZeros64(word)
			if j+off < span {
				return j + off, true
			}
			return 0, false
		}
		j += 64 - (i & 63)
	}
	return 0, false
}

// armTimer schedules a Timer expiry at absolute time at, preferring the
// wheel and falling back to the heap. The seq is drawn from the same
// counter ordinary events use, so timers and events interleave exactly
// as if every arm had been a heap push.
func (s *Simulator) armTimer(t *Timer, at Time) {
	if at < s.now {
		panic("sim: timer " + t.name + " armed in the past")
	}
	seq := s.nextSeq
	s.nextSeq++
	s.live++
	if s.wheel.count == 0 {
		// Empty wheel: re-anchor the flush cursor at the record's own
		// slot so long-idle simulators don't walk a stale cursor.
		s.wheel.flushPos = at &^ (tick0 - 1)
	}
	if s.wheelInsert(at, seq, t) {
		s.wheelArms++
		return
	}
	e := s.alloc()
	e.at = at
	e.seq = seq
	e.fn = t.fire
	e.name = t.name
	e.dead = false
	s.push(e)
	t.ev = Event{rec: e, gen: e.gen}
}

// WheelStats reports cumulative timer-wheel traffic: arms that landed
// in the wheel, cancels unlinked in O(1), and records flushed into the
// heap as their deadline approached. arms − cancels − flushes is the
// current wheel population.
func (s *Simulator) WheelStats() (arms, cancels, flushes uint64) {
	return s.wheelArms, s.wheelCancels, s.wheelFlushes
}

// Reset returns the simulator to its initial state — clock at zero,
// empty schedule, tie-break counter restarted — while keeping the
// event-record and timer-record pools warm. This is the arena-reuse
// hook: a sweep worker can drive thousands of jobs through one
// Simulator without reallocating its pools, and because nextSeq
// restarts at zero a run on a reused simulator produces a schedule
// byte-identical to the same run on a fresh one. Event handles and
// timers from before the Reset become stale. Resetting inside a run
// loop panics.
func (s *Simulator) Reset() {
	if s.running {
		panic("sim: Reset inside a run loop")
	}
	for _, e := range s.queue {
		s.recycle(e)
	}
	clear(s.queue)
	s.queue = s.queue[:0]
	w := &s.wheel
	if w.count > 0 {
		for l := 0; l < wheelLevels; l++ {
			for wi, word := range w.occupied[l] {
				for word != 0 {
					b := bits.TrailingZeros64(word)
					word &^= 1 << b
					idx := wi<<6 + b
					for r := w.slots[l][idx]; r != nil; {
						next := r.next
						if r.owner != nil {
							r.owner.w = nil
							r.owner.ev = Event{}
						}
						s.freeTimerRec(r)
						r = next
					}
					w.slots[l][idx] = nil
				}
				w.occupied[l][wi] = 0
			}
		}
	}
	w.count = 0
	w.flushPos = 0
	s.now = 0
	s.live = 0
	s.nextSeq = 0
	s.ran = 0
	s.stopped = false
	s.watchFn = nil
	s.abortErr = nil
}
