package sim

import (
	"math/rand"
	"testing"
)

// The fast source only exists because its streams are frozen: golden
// export fixtures pin every draw made through RNG. These tests hold it
// to bit-identity with math/rand, not mere statistical quality.

func TestFastSourceActive(t *testing.T) {
	if !lfFastOK {
		t.Error("fast source failed its init self-check; NewRNG is using the slow fallback")
	}
}

func TestFastSourceMatchesStdlib(t *testing.T) {
	seeds := []int64{0, 1, 2, -1, -7, 42, 1469598103934665603,
		lfMax, lfMax + 1, -lfMax, 1 << 40, -(1 << 52), 1<<63 - 1, -1 << 63}
	for _, seed := range seeds {
		want := rand.NewSource(seed).(rand.Source64)
		got := newLFSource(seed)
		// Run well past one full cycle of the 607-slot register so the
		// feed/tap wraparound is exercised, and check Uint64 as well as
		// the masked Int63 path.
		for k := 0; k < 2000; k++ {
			if w, g := want.Uint64(), got.Uint64(); w != g {
				t.Fatalf("seed %d: Uint64 #%d: stdlib %#x, fast %#x", seed, k, w, g)
			}
		}
		if w, g := want.Int63(), got.Int63(); w != g {
			t.Fatalf("seed %d: Int63: stdlib %#x, fast %#x", seed, w, g)
		}
	}
}

// Reseeding an existing source must match a freshly seeded one — the
// Seed method is what arena reuse would lean on.
func TestFastSourceReseed(t *testing.T) {
	s := newLFSource(1)
	for k := 0; k < 100; k++ {
		s.Uint64()
	}
	s.Seed(99)
	fresh := newLFSource(99)
	for k := 0; k < 700; k++ {
		if w, g := fresh.Uint64(), s.Uint64(); w != g {
			t.Fatalf("reseeded source diverged at draw %d: %#x vs %#x", k, w, g)
		}
	}
}

func BenchmarkStdlibSourceSeed(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rand.NewSource(int64(i))
	}
}

func BenchmarkFastSourceSeed(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		newLFSource(int64(i))
	}
}
