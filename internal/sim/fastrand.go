package sim

import (
	"math/rand"
	"reflect"
	"unsafe"
)

// Fast-seeding source, bit-identical to math/rand.
//
// Every testbed or fleet build derives a handful of labeled child
// streams (per link, per flow), and math/rand's generator pays ~1900
// Schrage-division LCG steps per Seed — it dominated world-building
// profiles once the event loop itself stopped allocating. The RNG
// streams, however, are frozen: golden export fixtures pin every draw,
// so the generator cannot change, only the cost of seeding it.
//
// lfSource therefore reimplements the same additive lagged-Fibonacci
// generator (length 607, tap 273) with the seeding LCG's modulus
// folded instead of divided: 2^31 ≡ 1 (mod 2^31−1), so A·x mod M is a
// 64-bit multiply, a mask, a shift-add, and one conditional subtract —
// ~10x cheaper than the hi/lo division pair, with mathematically
// identical results. The table of cooked constants the seeder XORs in
// is recovered once at init from an actual seeded math/rand source
// (compute our own LCG terms, XOR them out of the observed state), and
// a self-check then replays several seeds against math/rand; if layout
// or output ever disagrees, lfFastOK stays false and NewRNG falls back
// to the stock source — slower, never wrong.

const (
	lfLen    = 607
	lfTap    = 273
	lfMax    = 1<<31 - 1 // the seeding LCG's Mersenne modulus
	lfSeedA  = 48271     // its multiplier (MINSTD, as in math/rand)
	lfSeed0  = 89482311  // replacement for the degenerate zero seed
	lfWarmup = 20        // LCG steps discarded before filling the state
)

var (
	lfCooked [lfLen]int64
	lfFastOK bool

	// lfJump[k] = A^(warmup + 3·base)  mod M for chain k's base slot:
	// the one-multiply jump that positions each of Seed's four
	// interleaved LCG chains (computed once in init).
	lfJump [4]uint64
)

// lfChainBase splits the 607 slots into four near-equal runs; the last
// chain is one slot short (607 = 3·152 + 151).
var lfChainBase = [5]int{0, 152, 304, 456, lfLen}

// lfModmul returns a·b mod 2^31−1 for a, b < 2^31, folding the 62-bit
// product twice.
func lfModmul(a, b uint64) uint64 {
	p := a * b
	p = (p & lfMax) + (p >> 31)
	p = (p & lfMax) + (p >> 31)
	if p >= lfMax {
		p -= lfMax
	}
	return p
}

// lfSeedrand advances the seeding LCG: A·x mod (2^31−1) by folding.
func lfSeedrand(x int32) int32 {
	v := lfSeedA * uint64(uint32(x))
	v = (v & lfMax) + (v >> 31) // can reach lfMax+48270: reduce before narrowing
	if v >= lfMax {
		v -= lfMax
	}
	return int32(v)
}

// lfSource is the lagged-Fibonacci state: vec[feed] += vec[tap], with
// both cursors walking backwards through the register.
type lfSource struct {
	vec       [lfLen]int64
	tap, feed int
}

func newLFSource(seed int64) *lfSource {
	s := &lfSource{}
	s.Seed(seed)
	return s
}

// Seed fills the register exactly as math/rand does: a warmed-up LCG
// contributes three terms per slot, XORed with the cooked table. The
// nominal computation is one 1841-step serial recurrence; because the
// LCG jumps in one modular multiply (x after n more steps is A^n·x mod
// M), Seed instead positions four chains at precomputed offsets and
// advances them interleaved, so the multiplies of independent chains
// pipeline instead of serializing on one dependency chain.
func (s *lfSource) Seed(seed int64) {
	s.tap = 0
	s.feed = lfLen - lfTap
	seed %= lfMax
	if seed < 0 {
		seed += lfMax
	}
	if seed == 0 {
		seed = lfSeed0
	}
	x0 := int32(lfModmul(uint64(seed), lfJump[0]))
	x1 := int32(lfModmul(uint64(seed), lfJump[1]))
	x2 := int32(lfModmul(uint64(seed), lfJump[2]))
	x3 := int32(lfModmul(uint64(seed), lfJump[3]))
	fill := func(x int32, i int) (int32, int) {
		x = lfSeedrand(x)
		u := int64(x) << 40
		x = lfSeedrand(x)
		u ^= int64(x) << 20
		x = lfSeedrand(x)
		u ^= int64(x)
		s.vec[i] = u ^ lfCooked[i]
		return x, i + 1
	}
	i0, i1, i2, i3 := lfChainBase[0], lfChainBase[1], lfChainBase[2], lfChainBase[3]
	for j := 0; j < lfLen-lfChainBase[3]; j++ { // the shortest chain's length
		x0, i0 = fill(x0, i0)
		x1, i1 = fill(x1, i1)
		x2, i2 = fill(x2, i2)
		x3, i3 = fill(x3, i3)
	}
	for i0 < lfChainBase[1] { // drain the longer chains' leftover slots
		x0, i0 = fill(x0, i0)
	}
	for i1 < lfChainBase[2] {
		x1, i1 = fill(x1, i1)
	}
	for i2 < lfChainBase[3] {
		x2, i2 = fill(x2, i2)
	}
}

func (s *lfSource) Uint64() uint64 {
	s.tap--
	if s.tap < 0 {
		s.tap += lfLen
	}
	s.feed--
	if s.feed < 0 {
		s.feed += lfLen
	}
	x := s.vec[s.feed] + s.vec[s.tap]
	s.vec[s.feed] = x
	return uint64(x)
}

func (s *lfSource) Int63() int64 { return int64(s.Uint64() &^ (1 << 63)) }

// newSource returns the fast source when the init-time recovery and
// self-check succeeded, else the stock math/rand source.
func newSource(seed int64) rand.Source {
	if lfFastOK {
		return newLFSource(seed)
	}
	return rand.NewSource(seed)
}

func init() {
	// A^(warmup + 3·base) mod M for each chain base, by iterated
	// modular multiplication (a few thousand multiplies, once).
	p := uint64(1)
	step := 0
	for k := 0; k < 4; k++ {
		for ; step < lfWarmup+3*lfChainBase[k]; step++ {
			p = lfModmul(p, lfSeedA)
		}
		lfJump[k] = p
	}
	if !lfRecoverCooked() {
		return
	}
	// Replay a spread of seeds against math/rand; any disagreement
	// (algorithm drift in a future stdlib) keeps the fallback.
	for _, seed := range []int64{0, 1, -7, 42, lfMax, 1 << 40, -(1 << 52)} {
		want := rand.New(rand.NewSource(seed))
		got := rand.New(newLFSource(seed))
		for k := 0; k < 700; k++ { // past one full register cycle
			if want.Int63() != got.Int63() {
				return
			}
		}
	}
	lfFastOK = true
}

// lfRecoverCooked reads one seeded math/rand register and XORs out our
// own LCG terms, leaving the cooked table. Returns false if the
// stdlib's internal layout no longer matches.
func lfRecoverCooked() (ok bool) {
	defer func() {
		if recover() != nil {
			ok = false
		}
	}()
	v := reflect.ValueOf(rand.NewSource(1))
	if v.Kind() != reflect.Pointer {
		return false
	}
	f := v.Elem().FieldByName("vec")
	if !f.IsValid() || f.Kind() != reflect.Array || f.Len() != lfLen ||
		f.Type().Elem().Kind() != reflect.Int64 || !f.CanAddr() {
		return false
	}
	vec := (*[lfLen]int64)(unsafe.Pointer(f.UnsafeAddr()))
	x := int32(1)
	for i := -lfWarmup; i < lfLen; i++ {
		x = lfSeedrand(x)
		if i >= 0 {
			u := int64(x) << 40
			x = lfSeedrand(x)
			u ^= int64(x) << 20
			x = lfSeedrand(x)
			u ^= int64(x)
			lfCooked[i] = u ^ vec[i]
		}
	}
	return true
}
