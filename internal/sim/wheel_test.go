package sim

import (
	"testing"
)

// TestWheelLevelsAndFallbacks pins where an arm lands for each deadline
// band: level 0/1/2 for deadlines inside the respective horizons, heap
// for far-future deadlines, and heap for deadlines inside the slot the
// flush cursor has already passed — and that every one of them fires at
// the right virtual time regardless of placement.
func TestWheelLevelsAndFallbacks(t *testing.T) {
	s := New()
	deadlines := []Time{
		50 * Millisecond, // level 0
		Second,           // level 1
		2 * Minute,       // level 2
		6 * 60 * Minute,  // beyond horizon2: heap
	}
	var fired []Time
	var timers []*Timer
	for _, d := range deadlines {
		tm := NewTimer(s, "band", func() { fired = append(fired, s.Now()) })
		tm.Reset(d)
		if got := tm.Deadline(); got != d {
			t.Fatalf("Deadline = %v, want %v", got, d)
		}
		timers = append(timers, tm)
	}
	wheelPop := 0
	for _, tm := range timers {
		if tm.w != nil {
			wheelPop++
		}
	}
	if wheelPop != 3 {
		t.Fatalf("wheel holds %d timers, want 3 (far-future must fall back to heap)", wheelPop)
	}
	if s.Pending() != 4 {
		t.Fatalf("Pending = %d, want 4", s.Pending())
	}
	s.Run()
	for i, d := range deadlines {
		if fired[i] != d {
			t.Fatalf("timer %d fired at %v, want %v", i, fired[i], d)
		}
	}

	// Imminent arm: once the flush cursor has moved past a slot, a
	// deadline inside it must go straight to the heap and still fire.
	s2 := New()
	late := NewTimer(s2, "anchor", func() {})
	late.Reset(100 * Millisecond) // anchors flushPos, populates wheel
	s2.At(90*Millisecond, "probe", func() {})
	s2.Step() // advances to 90ms, flushing slots up to there
	if s2.wheel.flushPos <= s2.Now() {
		t.Fatalf("flushPos %v not past now %v", s2.wheel.flushPos, s2.Now())
	}
	hit := false
	im := NewTimer(s2, "imminent", func() { hit = true })
	im.Reset(0)
	if im.w != nil {
		t.Fatal("imminent timer landed in an already-flushed wheel slot")
	}
	s2.Run()
	if !hit {
		t.Fatal("imminent timer never fired")
	}
}

// TestWheelCancelIsO1 pins the wheel's reason to exist: a cancelled
// wheel timer is unlinked immediately and never becomes heap traffic.
func TestWheelCancelIsO1(t *testing.T) {
	s := New()
	for i := 0; i < 100; i++ {
		tm := NewTimer(s, "doomed", func() { t.Error("cancelled timer fired") })
		tm.Reset(Time(i+1) * 10 * Millisecond)
		tm.Stop()
		if tm.Armed() {
			t.Fatal("timer still armed after Stop")
		}
	}
	arms, cancels, flushes := s.WheelStats()
	if arms != 100 || cancels != 100 || flushes != 0 {
		t.Fatalf("WheelStats = %d/%d/%d, want 100 arms, 100 cancels, 0 flushes", arms, cancels, flushes)
	}
	if s.Pending() != 0 || len(s.queue) != 0 {
		t.Fatalf("Pending=%d queue=%d after wheel cancels, want 0/0", s.Pending(), len(s.queue))
	}
	s.Run()
}

// TestWheelIdleReanchor: after a long idle gap the flush cursor is far
// behind; a fresh arm on the now-empty wheel must re-anchor instead of
// walking the gap slot by slot.
func TestWheelIdleReanchor(t *testing.T) {
	s := New()
	tm := NewTimer(s, "first", func() {})
	tm.Reset(10 * Millisecond)
	s.Run()
	// Idle jump: schedule a plain event far ahead and run to it.
	s.At(30*Minute, "wake", func() {})
	s.Run()
	fired := false
	tm2 := NewTimer(s, "second", func() { fired = true })
	tm2.Reset(40 * Millisecond)
	if tm2.w == nil {
		t.Fatal("post-idle arm fell back to the heap; re-anchor failed")
	}
	want := s.Now() + 40*Millisecond
	s.Run()
	if !fired || s.Now() != want {
		t.Fatalf("post-idle timer fired=%v at %v, want true at %v", fired, s.Now(), want)
	}
}

// TestWheelResetStormAllocFree pins the wheel's steady-state allocation
// behavior: once the record pools are warm, an RTO-style arm/cancel
// storm must not touch the heap at all.
func TestWheelResetStormAllocFree(t *testing.T) {
	s := New()
	tm := NewTimer(s, "rto", func() {})
	tm.Reset(200 * Millisecond) // warm the pool
	tm.Stop()
	allocs := testing.AllocsPerRun(200, func() {
		for i := 0; i < 50; i++ {
			tm.Reset(200 * Millisecond)
		}
		tm.Stop()
	})
	if allocs != 0 {
		t.Fatalf("timer Reset storm allocates %v/run, want 0", allocs)
	}
}

// TestSimulatorReset: a reused simulator must behave exactly like a
// fresh one — clock, seq counter, schedule, and wheel all restart —
// while keeping its pools warm.
func TestSimulatorReset(t *testing.T) {
	s := New()
	run := func() (order []string) {
		tm := NewTimer(s, "t", func() { order = append(order, "timer") })
		tm.Reset(5 * Millisecond)
		s.At(5*Millisecond, "e", func() { order = append(order, "event") })
		s.At(2*Millisecond, "early", func() { order = append(order, "early") })
		// Leave one pending timer and one pending event behind to make
		// Reset clean both structures.
		NewTimer(s, "leftover", func() {}).Reset(90 * Second)
		s.At(80*Second, "leftover-e", func() {})
		s.RunUntil(10 * Millisecond)
		return order
	}
	first := run()
	if s.Pending() != 2 {
		t.Fatalf("Pending = %d before Reset, want 2 leftovers", s.Pending())
	}
	s.Reset()
	if s.Now() != 0 || s.Pending() != 0 || s.Processed() != 0 {
		t.Fatalf("Reset left now=%v pending=%d processed=%d", s.Now(), s.Pending(), s.Processed())
	}
	second := run()
	if len(first) != 3 || len(second) != 3 {
		t.Fatalf("runs executed %d/%d handlers, want 3 each", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("order diverged after Reset: %v vs %v", first, second)
		}
	}
	// The timer armed with seq equal to a plain event's arm order must
	// tie-break identically across Reset; "timer" before "event" at 5ms
	// because the timer was armed first.
	if first[0] != "early" || first[1] != "timer" || first[2] != "event" {
		t.Fatalf("unexpected order %v", first)
	}
}

// refWheelTimer models one Timer in the fuzz oracle: at most one
// pending deadline, replaced on reset.
type refWheelTimer struct {
	pending bool
	at      Time
	seq     uint64
}

// FuzzTimerWheel drives Timers (wheel path) and plain events (heap
// path) against a brute-force oracle through random arm/stop/cancel/
// step storms across every wheel level, demanding identical firing
// order — including same-tick ties broken by arm-time seq — plus
// matching clocks, Pending counts, Armed flags, and Deadlines. This is
// the wheel's counterpart to FuzzScheduler's heap-vs-reference loop.
func FuzzTimerWheel(f *testing.F) {
	f.Add([]byte{0, 0, 10, 1, 4, 0, 1, 10, 1, 4, 4})
	f.Add([]byte{0, 0, 200, 4, 0, 1, 200, 4, 2, 50, 3, 0, 4, 4, 4})
	f.Add([]byte{0, 0, 255, 5, 0, 1, 255, 5, 1, 0, 4, 4})
	f.Add([]byte{2, 10, 0, 2, 10, 1, 3, 0, 4, 4, 0, 2, 10, 2, 4})
	f.Fuzz(func(t *testing.T, ops []byte) {
		s := New()
		const nTimers = 5
		// Deadline scales chosen to land in level 0, level 1, level 2,
		// the heap fallback, and sub-slot (imminent) territory.
		scales := []Time{Microsecond, Millisecond, 40 * Millisecond, Second, 45 * Second, 70 * Minute}

		var gotOrder, wantOrder []int
		var refT [nTimers]refWheelTimer
		var timers [nTimers]*Timer
		for i := range timers {
			id := i
			timers[i] = NewTimer(s, "wt", func() { gotOrder = append(gotOrder, id) })
		}
		var refEvents []refEvent
		var handles []Event
		var refSeq uint64
		refNow := Time(0)
		nextID := nTimers

		refStep := func() bool {
			bestTimer, bestEvent := -1, -1
			var bestAt Time
			var bestSeq uint64
			consider := func(at Time, seq uint64) bool {
				if bestTimer < 0 && bestEvent < 0 {
					return true
				}
				return at < bestAt || (at == bestAt && seq < bestSeq)
			}
			for i := range refT {
				if refT[i].pending && consider(refT[i].at, refT[i].seq) {
					bestTimer, bestEvent = i, -1
					bestAt, bestSeq = refT[i].at, refT[i].seq
				}
			}
			for i := range refEvents {
				if !refEvents[i].cancelled && consider(refEvents[i].at, refEvents[i].seq) {
					bestTimer, bestEvent = -1, i
					bestAt, bestSeq = refEvents[i].at, refEvents[i].seq
				}
			}
			switch {
			case bestTimer >= 0:
				refNow = bestAt
				refT[bestTimer].pending = false
				wantOrder = append(wantOrder, bestTimer)
			case bestEvent >= 0:
				refNow = bestAt
				wantOrder = append(wantOrder, refEvents[bestEvent].id)
				refEvents = append(refEvents[:bestEvent], refEvents[bestEvent+1:]...)
			default:
				return false
			}
			return true
		}
		refPending := func() int {
			n := 0
			for i := range refT {
				if refT[i].pending {
					n++
				}
			}
			for i := range refEvents {
				if !refEvents[i].cancelled {
					n++
				}
			}
			return n
		}
		next := func(i *int) byte {
			if *i+1 < len(ops) {
				*i++
				return ops[*i]
			}
			return 0
		}

		for i := 0; i < len(ops); i++ {
			switch ops[i] % 5 {
			case 0: // Reset timer k to a banded deadline
				k := int(next(&i)) % nTimers
				mag := next(&i)
				d := Time(mag%16) * scales[int(mag)%len(scales)]
				timers[k].Reset(d)
				refT[k] = refWheelTimer{pending: true, at: s.Now() + d, seq: refSeq}
				refSeq++
			case 1: // Stop timer k
				k := int(next(&i)) % nTimers
				timers[k].Stop()
				refT[k].pending = false
			case 2: // Schedule a plain heap event
				d := Time(next(&i)) * Millisecond
				id := nextID
				nextID++
				handles = append(handles, s.At(s.Now()+d, "fe", func() { gotOrder = append(gotOrder, id) }))
				refEvents = append(refEvents, refEvent{at: s.Now() + d, seq: refSeq, id: id})
				refSeq++
			case 3: // Cancel a plain event (live or stale)
				if len(handles) == 0 {
					continue
				}
				j := int(next(&i)) % len(handles)
				s.Cancel(handles[j])
				id := nTimers + j
				for k := range refEvents {
					if refEvents[k].id == id {
						refEvents[k].cancelled = true
					}
				}
			case 4: // Step
				got := s.Step()
				want := refStep()
				if got != want {
					t.Fatalf("op %d: Step = %v, reference = %v", i, got, want)
				}
			}
			if s.Pending() != refPending() {
				t.Fatalf("op %d: Pending = %d, reference = %d", i, s.Pending(), refPending())
			}
			for k := range refT {
				if timers[k].Armed() != refT[k].pending {
					t.Fatalf("op %d: timer %d Armed = %v, reference = %v", i, k, timers[k].Armed(), refT[k].pending)
				}
				if refT[k].pending && timers[k].Deadline() != refT[k].at {
					t.Fatalf("op %d: timer %d Deadline = %v, reference = %v", i, k, timers[k].Deadline(), refT[k].at)
				}
			}
		}
		for s.Step() {
			if !refStep() {
				t.Fatal("scheduler ran more events than reference")
			}
		}
		if refStep() {
			t.Fatal("reference has events the scheduler dropped")
		}
		if len(gotOrder) != len(wantOrder) {
			t.Fatalf("executed %d callbacks, reference %d", len(gotOrder), len(wantOrder))
		}
		for i := range gotOrder {
			if gotOrder[i] != wantOrder[i] {
				t.Fatalf("firing order diverges at %d: got %v, want %v", i, gotOrder, wantOrder)
			}
		}
		if s.Now() != refNow {
			t.Fatalf("clock = %v, reference = %v", s.Now(), refNow)
		}
	})
}
