package sim

import (
	"sync"
	"testing"
)

// TestCancelAfterFire: once an event has executed, its handle is stale
// and Cancel must not disturb whichever event now occupies the recycled
// record.
func TestCancelAfterFire(t *testing.T) {
	s := New()
	var h Event
	fired := 0
	h = s.At(Millisecond, "first", func() {})
	s.Run()

	// The record behind h is now on the free list; this At reuses it.
	e2 := s.At(2*Millisecond, "second", func() { fired++ })
	if e2.rec != h.rec {
		t.Fatalf("free list did not recycle the fired record")
	}
	s.Cancel(h) // stale generation: must be a no-op
	if s.Pending() != 1 {
		t.Fatalf("Pending = %d after stale cancel, want 1", s.Pending())
	}
	s.Run()
	if fired != 1 {
		t.Errorf("second event fired %d times, want 1 (stale cancel hit it)", fired)
	}
}

// TestCancelAfterRecycle: a handle to a cancelled-and-discarded event
// must not be able to cancel the record's next occupant.
func TestCancelAfterRecycle(t *testing.T) {
	s := New()
	h := s.At(Millisecond, "doomed", func() { t.Error("cancelled event fired") })
	s.Cancel(h)
	if s.Pending() != 0 {
		t.Fatalf("Pending = %d after cancel, want 0", s.Pending())
	}
	s.Run() // discards the dead record and recycles it

	fired := false
	e2 := s.At(Millisecond, "heir", func() { fired = true })
	if e2.rec != h.rec {
		t.Fatalf("free list did not recycle the cancelled record")
	}
	s.Cancel(h) // stale handle from the previous generation
	s.Run()
	if !fired {
		t.Error("stale cancel killed the recycled record's new event")
	}
}

// TestPendingExcludesCancelled pins the documented Pending contract.
func TestPendingExcludesCancelled(t *testing.T) {
	s := New()
	var hs []Event
	for i := 0; i < 5; i++ {
		hs = append(hs, s.At(Time(i+1)*Millisecond, "e", func() {}))
	}
	if s.Pending() != 5 {
		t.Fatalf("Pending = %d, want 5", s.Pending())
	}
	s.Cancel(hs[1])
	s.Cancel(hs[3])
	if s.Pending() != 3 {
		t.Fatalf("Pending = %d after 2 cancels, want 3", s.Pending())
	}
	s.Step()
	if s.Pending() != 2 {
		t.Fatalf("Pending = %d after step, want 2", s.Pending())
	}
	s.Run()
	if s.Pending() != 0 {
		t.Fatalf("Pending = %d after drain, want 0", s.Pending())
	}
}

// TestRunningFlag: RunUntil and RunFor must maintain the same
// re-entrancy flag that Run does.
func TestRunningFlag(t *testing.T) {
	s := New()
	if s.Running() {
		t.Fatal("fresh simulator reports Running")
	}
	checks := 0
	observe := func() {
		if !s.Running() {
			t.Error("Running() false inside an event handler")
		}
		checks++
	}
	s.At(Millisecond, "a", observe)
	s.Run()
	s.At(2*Millisecond, "b", observe)
	s.RunUntil(3 * Millisecond)
	s.At(4*Millisecond, "c", observe)
	s.RunFor(5 * Millisecond)
	if checks != 3 {
		t.Fatalf("observed %d handlers, want 3", checks)
	}
	if s.Running() {
		t.Error("Running() true after loops returned")
	}
}

// TestTimerFireReusesCallback: re-arming a timer many times schedules
// the same bound function and every arm-fire cycle works.
func TestTimerResetStormSingle(t *testing.T) {
	s := New()
	fired := 0
	tm := NewTimer(s, "rto", func() { fired++ })
	for i := 0; i < 1000; i++ {
		tm.Reset(Millisecond) // re-arm storm, like an RTO on every ACK
	}
	s.Run()
	if fired != 1 {
		t.Fatalf("timer fired %d times after storm, want 1", fired)
	}
	// Steady state: a second identical storm must recycle the first
	// storm's records instead of growing the pool.
	poolSize := len(s.free)
	fired = 0
	for i := 0; i < 1000; i++ {
		tm.Reset(Millisecond)
	}
	s.Run()
	if fired != 1 {
		t.Fatalf("timer fired %d times after second storm, want 1", fired)
	}
	if len(s.free) > poolSize {
		t.Errorf("free list grew from %d to %d across identical storms", poolSize, len(s.free))
	}

	// Fire/re-arm cycles: arm inside the callback.
	cycles := 0
	var rearm *Timer
	rearm = NewTimer(s, "cycle", func() {
		if cycles++; cycles < 100 {
			rearm.Reset(Millisecond)
		}
	})
	rearm.Reset(Millisecond)
	s.Run()
	if cycles != 100 {
		t.Fatalf("arm-fire cycles = %d, want 100", cycles)
	}
}

// TestTimerResetStormTwoSimulators runs independent Reset storms on two
// simulators in two goroutines. Under -race this verifies that pooling
// kept all state per-simulator (no shared free lists or counters).
func TestTimerResetStormTwoSimulators(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			s := New()
			fired := 0
			timers := make([]*Timer, 8)
			for i := range timers {
				timers[i] = NewTimer(s, "storm", func() { fired++ })
			}
			for round := 0; round < 500; round++ {
				for i, tm := range timers {
					tm.Reset(Time(seed+i+1) * Microsecond)
				}
				s.RunFor(Millisecond)
			}
			if fired != 500*len(timers) {
				t.Errorf("sim %d: fired %d, want %d", seed, fired, 500*len(timers))
			}
		}(g)
	}
	wg.Wait()
}

// refEvent is the fuzz oracle's event representation: a plain sorted
// list with explicit cancelled flags, executed by linear scan.
type refEvent struct {
	at        Time
	seq       uint64
	id        int
	cancelled bool
}

// FuzzScheduler drives the pooled scheduler and a brute-force reference
// model through the same interleaving of At/After/Cancel/Step and
// demands identical execution order, clocks, and pending counts.
func FuzzScheduler(f *testing.F) {
	f.Add([]byte{0, 10, 1, 5, 3, 2, 0, 3})
	f.Add([]byte{0, 1, 0, 1, 0, 1, 3, 3, 3, 3})
	f.Add([]byte{1, 200, 2, 0, 3, 1, 100, 2, 1, 3, 3})
	f.Fuzz(func(t *testing.T, ops []byte) {
		s := New()
		var ref []refEvent
		var refSeq uint64
		refNow := Time(0)
		var handles []Event // handle per scheduled event, by id
		var gotOrder, wantOrder []int
		nextID := 0

		schedule := func(at Time) {
			id := nextID
			nextID++
			handles = append(handles, s.At(at, "f", func() { gotOrder = append(gotOrder, id) }))
			ref = append(ref, refEvent{at: at, seq: refSeq, id: id})
			refSeq++
		}
		refStep := func() bool {
			best := -1
			for i := range ref {
				if ref[i].cancelled {
					continue
				}
				if best < 0 || ref[i].at < ref[best].at ||
					(ref[i].at == ref[best].at && ref[i].seq < ref[best].seq) {
					best = i
				}
			}
			if best < 0 {
				return false
			}
			refNow = ref[best].at
			wantOrder = append(wantOrder, ref[best].id)
			ref = append(ref[:best], ref[best+1:]...)
			return true
		}
		refPending := func() int {
			n := 0
			for i := range ref {
				if !ref[i].cancelled {
					n++
				}
			}
			return n
		}

		for i := 0; i < len(ops); i++ {
			switch ops[i] % 4 {
			case 0: // At(now + delta)
				var delta byte
				if i+1 < len(ops) {
					i++
					delta = ops[i]
				}
				schedule(s.Now() + Time(delta)*Microsecond)
			case 1: // After(delta)
				var delta byte
				if i+1 < len(ops) {
					i++
					delta = ops[i]
				}
				schedule(s.Now() + Time(delta)*Microsecond)
			case 2: // Cancel an arbitrary handle (live or stale)
				if len(handles) == 0 {
					continue
				}
				var pick byte
				if i+1 < len(ops) {
					i++
					pick = ops[i]
				}
				id := int(pick) % len(handles)
				s.Cancel(handles[id])
				for j := range ref {
					if ref[j].id == id {
						ref[j].cancelled = true
					}
				}
			case 3: // Step
				got := s.Step()
				want := refStep()
				if got != want {
					t.Fatalf("op %d: Step = %v, reference = %v", i, got, want)
				}
			}
			if s.Pending() != refPending() {
				t.Fatalf("op %d: Pending = %d, reference = %d", i, s.Pending(), refPending())
			}
		}
		for s.Step() {
			if !refStep() {
				t.Fatal("scheduler ran more events than reference")
			}
		}
		if refStep() {
			t.Fatal("reference has events the scheduler dropped")
		}
		if len(gotOrder) != len(wantOrder) {
			t.Fatalf("executed %d events, reference %d", len(gotOrder), len(wantOrder))
		}
		for i := range gotOrder {
			if gotOrder[i] != wantOrder[i] {
				t.Fatalf("execution order diverges at %d: got %v, want %v", i, gotOrder, wantOrder)
			}
		}
		if s.Now() != refNow {
			t.Fatalf("clock = %v, reference = %v", s.Now(), refNow)
		}
	})
}
