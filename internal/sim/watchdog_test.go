package sim

import (
	"errors"
	"testing"
)

// A self-rescheduling event that never advances virtual time — the
// livelock shape the chaos harness watchdog must catch.
func livelock(s *Simulator) {
	var spin func()
	spin = func() { s.At(s.Now(), "spin", spin) }
	s.At(0, "spin", spin)
}

func TestWatchdogFiresEveryN(t *testing.T) {
	s := New()
	calls := 0
	s.SetWatchdog(10, func() error { calls++; return nil })
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < 95 {
			s.After(Millisecond, "tick", tick)
		}
	}
	s.After(Millisecond, "tick", tick)
	s.Run()
	if calls != 9 { // 95 events / every-10 = 9 full countdowns
		t.Fatalf("watchdog calls = %d, want 9", calls)
	}
	if s.AbortErr() != nil {
		t.Fatalf("AbortErr = %v, want nil", s.AbortErr())
	}
}

func TestWatchdogAbortsRun(t *testing.T) {
	s := New()
	livelock(s)
	boom := errors.New("livelock detected")
	s.SetWatchdog(64, func() error {
		if s.Processed() > 1000 {
			return boom
		}
		return nil
	})
	s.Run()
	if !errors.Is(s.AbortErr(), boom) {
		t.Fatalf("AbortErr = %v, want %v", s.AbortErr(), boom)
	}
	if s.Processed() > 2000 {
		t.Fatalf("processed %d events after abort should have stopped the loop", s.Processed())
	}
}

func TestWatchdogAbortsRunUntil(t *testing.T) {
	s := New()
	livelock(s)
	boom := errors.New("stuck")
	s.SetWatchdog(32, func() error { return boom })
	s.RunUntil(Second)
	if !errors.Is(s.AbortErr(), boom) {
		t.Fatalf("AbortErr = %v, want %v", s.AbortErr(), boom)
	}
	// An aborted RunUntil must not pretend time reached the deadline.
	if s.Now() != 0 {
		t.Fatalf("clock advanced to %v after abort, want 0", s.Now())
	}
}

func TestWatchdogAbortErrClearsOnNextRun(t *testing.T) {
	s := New()
	s.At(0, "x", func() {})
	s.SetWatchdog(1, func() error { return errors.New("once") })
	s.Run()
	if s.AbortErr() == nil {
		t.Fatal("expected abort on first run")
	}
	s.SetWatchdog(0, nil)
	s.At(s.Now()+Millisecond, "y", func() {})
	s.Run()
	if s.AbortErr() != nil {
		t.Fatalf("AbortErr = %v after clean run, want nil", s.AbortErr())
	}
}

func TestWatchdogRemovedByNilFn(t *testing.T) {
	s := New()
	calls := 0
	s.SetWatchdog(1, func() error { calls++; return nil })
	s.SetWatchdog(0, nil)
	for i := 0; i < 10; i++ {
		at := Time(i) * Millisecond
		s.At(at, "e", func() {})
	}
	s.Run()
	if calls != 0 {
		t.Fatalf("removed watchdog still ran %d times", calls)
	}
}
