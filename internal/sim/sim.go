// Package sim provides a deterministic discrete-event simulation engine.
//
// A Simulator owns a virtual clock and a priority queue of pending
// events. Components schedule callbacks at absolute or relative virtual
// times; the Run loop executes them in timestamp order. Ties are broken
// by scheduling order, so a simulation is fully reproducible given the
// same inputs and RNG seeds.
//
// The engine is single-threaded by design: network protocol state
// machines are much easier to reason about (and to debug) when every
// event handler runs to completion before the next one starts. All of
// mptcplab's substrates (queues, links, TCP endpoints, MPTCP
// connections, applications) are driven by one Simulator instance.
//
// The hot path is allocation-free: event records live in a per-
// simulator free-list pool and are recycled after they fire or are
// discarded, the priority queue is a concrete 4-ary min-heap over
// those pooled records (no container/heap, no interface boxing), and
// cancellation is lazy — Cancel marks the record dead in O(1) and the
// pop loop discards it, instead of paying an O(log n) heap removal.
// Generation counters make recycling safe: an Event handle held after
// its record was recycled can no longer cancel (or observe) the new
// occupant.
package sim

import (
	"fmt"
	"math"
	"time"
)

// Time is a virtual timestamp, measured as a duration since the start
// of the simulation. It is a distinct type so that wall-clock values
// cannot be mixed in by accident.
type Time time.Duration

// Common virtual-time constants.
const (
	Millisecond Time = Time(time.Millisecond)
	Microsecond Time = Time(time.Microsecond)
	Second      Time = Time(time.Second)
	Minute      Time = Time(time.Minute)

	// MaxTime is the largest representable virtual time. It is used as
	// an "infinite" deadline by timers that are currently disabled.
	MaxTime Time = Time(math.MaxInt64)
)

// Duration converts t to a time.Duration since simulation start.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Seconds reports t in (fractional) seconds.
func (t Time) Seconds() float64 { return time.Duration(t).Seconds() }

// Milliseconds reports t in (fractional) milliseconds.
func (t Time) Milliseconds() float64 {
	return float64(time.Duration(t)) / float64(time.Millisecond)
}

// String formats the time like a time.Duration.
func (t Time) String() string { return time.Duration(t).String() }

// eventRec is one pooled event record. Records are allocated once and
// recycled through the simulator's free list; gen is bumped on every
// recycle so stale Event handles cannot touch the new occupant.
type eventRec struct {
	at   Time
	seq  uint64 // tie-break: FIFO among equal timestamps
	fn   func()
	name string // for debugging
	gen  uint32
	dead bool // cancelled; discarded at pop
}

// Event is a handle to a scheduled callback. The zero Event is invalid
// and safe to Cancel (a no-op). Handles are values: they stay cheap to
// copy and, thanks to the generation counter, become inert once the
// underlying record fires, is cancelled, or is recycled.
type Event struct {
	rec *eventRec
	gen uint32
}

// live reports whether the handle still refers to the record's current
// occupancy.
func (e Event) live() bool { return e.rec != nil && e.rec.gen == e.gen }

// Time reports when the event will fire, or MaxTime if the handle is
// stale (fired, cancelled and recycled, or zero).
func (e Event) Time() Time {
	if !e.live() {
		return MaxTime
	}
	return e.rec.at
}

// Name reports the debug label given at scheduling time, or "" for a
// stale handle.
func (e Event) Name() string {
	if !e.live() {
		return ""
	}
	return e.rec.name
}

// Cancelled reports whether Cancel was called on the event while its
// handle was still live.
func (e Event) Cancelled() bool { return e.live() && e.rec.dead }

// Simulator is a discrete-event scheduler with a virtual clock.
// The zero value is ready to use.
type Simulator struct {
	now     Time
	queue   []*eventRec // 4-ary min-heap by (at, seq)
	free    []*eventRec // recycled records
	live    int         // queued, not-cancelled events
	nextSeq uint64
	ran     uint64
	running bool
	stopped bool

	// Watchdog state: watchFn is invoked every watchEvery processed
	// events inside Run/RunUntil; a non-nil return aborts the loop and
	// is reported by AbortErr. The per-event cost when no watchdog is
	// installed is a single nil check.
	watchFn    func() error
	watchEvery uint64
	watchLeft  uint64
	abortErr   error

	// Timer wheel (see wheel.go): pending Timer expiries park here in
	// O(1) and only migrate to the heap just before their deadline.
	wheel        wheel
	freeTimers   []*timerRec
	wheelArms    uint64
	wheelCancels uint64
	wheelFlushes uint64
}

// New returns a fresh Simulator with its clock at zero.
func New() *Simulator { return &Simulator{} }

// Now reports the current virtual time.
func (s *Simulator) Now() Time { return s.now }

// Processed reports how many events have been executed so far.
func (s *Simulator) Processed() uint64 { return s.ran }

// Pending reports how many live (not cancelled) events are queued.
// Cancelled events awaiting lazy discard are excluded.
func (s *Simulator) Pending() int { return s.live }

// alloc takes a record from the free list, or makes a new one.
func (s *Simulator) alloc() *eventRec {
	if n := len(s.free); n > 0 {
		e := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		return e
	}
	return &eventRec{}
}

// recycle bumps the record's generation (invalidating outstanding
// handles) and returns it to the free list.
func (s *Simulator) recycle(e *eventRec) {
	e.gen++
	e.fn = nil
	e.name = ""
	e.dead = false
	s.free = append(s.free, e)
}

// At schedules fn to run at absolute virtual time at. Scheduling in the
// past (before Now) panics: that is always a protocol-logic bug and
// silently reordering events would corrupt causality.
func (s *Simulator) At(at Time, name string, fn func()) Event {
	if at < s.now {
		panic(fmt.Sprintf("sim: scheduling %q at %v, before now %v", name, at, s.now))
	}
	e := s.alloc()
	e.at = at
	e.seq = s.nextSeq
	e.fn = fn
	e.name = name
	e.dead = false
	s.nextSeq++
	s.push(e)
	s.live++
	return Event{rec: e, gen: e.gen}
}

// After schedules fn to run d after the current virtual time.
func (s *Simulator) After(d Time, name string, fn func()) Event {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, name, fn)
}

// Cancel removes e from the schedule. The removal is lazy: the record
// is marked dead in O(1) and discarded when it reaches the head of the
// queue. Cancelling a zero, stale (already fired or already recycled),
// or already-cancelled handle is a no-op.
func (s *Simulator) Cancel(e Event) {
	if !e.live() || e.rec.dead {
		return
	}
	e.rec.dead = true
	s.live--
}

// Stop makes Run return after the currently executing event handler
// (if any) completes.
func (s *Simulator) Stop() { s.stopped = true }

// SetWatchdog installs fn, called once every `every` processed events
// during Run/RunUntil/RunFor. If fn returns a non-nil error, the run
// loop stops immediately and AbortErr reports the error — the hook the
// chaos harness uses for wall-clock deadlines and livelock detection
// (a simulation burning events without advancing virtual time).
// A nil fn removes the watchdog. every defaults to 65536 when <= 0.
func (s *Simulator) SetWatchdog(every uint64, fn func() error) {
	if every == 0 {
		every = 1 << 16
	}
	s.watchFn = fn
	s.watchEvery = every
	s.watchLeft = every
}

// AbortErr reports the error that aborted the last run loop via the
// watchdog, or nil. It stays set until the next Run/RunUntil starts.
func (s *Simulator) AbortErr() error { return s.abortErr }

// watchdogTripped runs the watchdog countdown after one processed
// event and reports whether the run loop must abort.
func (s *Simulator) watchdogTripped() bool {
	s.watchLeft--
	if s.watchLeft > 0 {
		return false
	}
	s.watchLeft = s.watchEvery
	if err := s.watchFn(); err != nil {
		s.abortErr = err
		return true
	}
	return false
}

// peek discards dead records from the head of the queue, flushes any
// wheel slots the head event could collide with, and returns the next
// live event, or nil if none remain anywhere.
func (s *Simulator) peek() *eventRec {
	for {
		var e *eventRec
		for len(s.queue) > 0 {
			h := s.queue[0]
			if !h.dead {
				e = h
				break
			}
			s.pop()
			s.recycle(h)
		}
		// Wheel records all have deadlines at or above flushPos, so a
		// heap head strictly below it is globally next.
		if s.wheel.count == 0 || (e != nil && e.at < s.wheel.flushPos) {
			return e
		}
		limit := MaxTime
		if e != nil {
			limit = e.at
		}
		s.flushWheel(limit)
	}
}

// Step executes the single next event, if any, and reports whether one
// was executed.
func (s *Simulator) Step() bool {
	e := s.peek()
	if e == nil {
		return false
	}
	s.pop()
	s.now = e.at
	s.live--
	s.ran++
	fn := e.fn
	// Recycle before running: the handler may schedule (reusing this
	// record under a fresh generation), and any handle to the firing
	// event — e.g. its own timer — must already be stale.
	s.recycle(e)
	fn()
	return true
}

// Run executes events until the queue drains, Stop is called, or the
// watchdog (if any) aborts the loop.
func (s *Simulator) Run() {
	s.running = true
	defer func() { s.running = false }()
	s.stopped = false
	s.abortErr = nil
	for !s.stopped && s.Step() {
		if s.watchFn != nil && s.watchdogTripped() {
			return
		}
	}
}

// RunUntil executes events with timestamps <= deadline, advancing the
// clock to exactly deadline when the queue runs dry earlier. Like Run,
// it holds the running flag for re-entrancy detection. A watchdog
// abort leaves the clock at the last processed event (AbortErr set).
func (s *Simulator) RunUntil(deadline Time) {
	s.running = true
	defer func() { s.running = false }()
	s.stopped = false
	s.abortErr = nil
	for !s.stopped {
		e := s.peek()
		if e == nil || e.at > deadline {
			break
		}
		s.Step()
		if s.watchFn != nil && s.watchdogTripped() {
			return
		}
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// RunFor executes events for d of virtual time from now.
func (s *Simulator) RunFor(d Time) { s.RunUntil(s.now + d) }

// Running reports whether a Run/RunUntil/RunFor loop is active — i.e.
// the caller is inside an event handler.
func (s *Simulator) Running() bool { return s.running }

// --- 4-ary min-heap over (at, seq) ---
//
// A 4-ary heap does ~half the levels of a binary heap on sift-down,
// which is where a simulator's pop-heavy workload spends its time; the
// comparisons stay cache-friendly because all four children are
// adjacent in the backing slice.

func eventLess(a, b *eventRec) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (s *Simulator) push(e *eventRec) {
	s.queue = append(s.queue, e)
	i := len(s.queue) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !eventLess(s.queue[i], s.queue[parent]) {
			break
		}
		s.queue[i], s.queue[parent] = s.queue[parent], s.queue[i]
		i = parent
	}
}

// pop removes the minimum record (the caller has already read it via
// peek or s.queue[0]).
func (s *Simulator) pop() {
	n := len(s.queue) - 1
	s.queue[0] = s.queue[n]
	s.queue[n] = nil
	s.queue = s.queue[:n]
	if n == 0 {
		return
	}
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if eventLess(s.queue[c], s.queue[min]) {
				min = c
			}
		}
		if !eventLess(s.queue[min], s.queue[i]) {
			break
		}
		s.queue[i], s.queue[min] = s.queue[min], s.queue[i]
		i = min
	}
}

// Timer is a restartable one-shot timer bound to a Simulator, in the
// style of time.Timer but in virtual time. It is the building block
// for TCP retransmission and delayed-ACK timers.
//
// A Timer binds its expiry callback once, at construction: re-arming
// via Reset schedules the same bound function instead of allocating a
// fresh closure per re-arm (RTO timers re-arm on every ACK).
//
// A pending Timer lives either in the timing wheel (w non-nil; the
// common case — O(1) arm and cancel) or, when its deadline is imminent
// or beyond the wheel horizon, as an ordinary heap event (ev). Wheel
// residents migrate to the heap shortly before expiry; either way the
// firing order is identical to a pure-heap schedule (see wheel.go).
type Timer struct {
	sim  *Simulator
	name string
	fn   func()
	fire func() // bound once; clears ev then invokes fn
	ev   Event
	w    *timerRec
}

// NewTimer returns a stopped timer that will invoke fn when it fires.
func NewTimer(s *Simulator, name string, fn func()) *Timer {
	t := &Timer{sim: s, name: name, fn: fn}
	t.fire = func() {
		t.ev = Event{}
		t.fn()
	}
	return t
}

// Reset (re)arms the timer to fire d from now, replacing any pending
// expiry.
func (t *Timer) Reset(d Time) {
	if d < 0 {
		d = 0
	}
	t.Stop()
	t.sim.armTimer(t, t.sim.now+d)
}

// ResetAt (re)arms the timer to fire at absolute time at.
func (t *Timer) ResetAt(at Time) {
	t.Stop()
	t.sim.armTimer(t, at)
}

// Stop disarms the timer if it is pending.
func (t *Timer) Stop() {
	if t.w != nil {
		t.sim.wheelRemove(t.w)
		t.sim.live--
		t.sim.wheelCancels++
		t.w = nil
	} else if t.ev.live() {
		t.sim.Cancel(t.ev)
	}
	t.ev = Event{}
}

// Armed reports whether the timer currently has a pending expiry.
func (t *Timer) Armed() bool {
	return t.w != nil || (t.ev.live() && !t.ev.Cancelled())
}

// Deadline reports when the timer will fire, or MaxTime if disarmed.
func (t *Timer) Deadline() Time {
	if t.w != nil {
		return t.w.at
	}
	if !t.Armed() {
		return MaxTime
	}
	return t.ev.Time()
}
