// Package sim provides a deterministic discrete-event simulation engine.
//
// A Simulator owns a virtual clock and a priority queue of pending
// events. Components schedule callbacks at absolute or relative virtual
// times; the Run loop executes them in timestamp order. Ties are broken
// by scheduling order, so a simulation is fully reproducible given the
// same inputs and RNG seeds.
//
// The engine is single-threaded by design: network protocol state
// machines are much easier to reason about (and to debug) when every
// event handler runs to completion before the next one starts. All of
// mptcplab's substrates (queues, links, TCP endpoints, MPTCP
// connections, applications) are driven by one Simulator instance.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Time is a virtual timestamp, measured as a duration since the start
// of the simulation. It is a distinct type so that wall-clock values
// cannot be mixed in by accident.
type Time time.Duration

// Common virtual-time constants.
const (
	Millisecond Time = Time(time.Millisecond)
	Microsecond Time = Time(time.Microsecond)
	Second      Time = Time(time.Second)
	Minute      Time = Time(time.Minute)

	// MaxTime is the largest representable virtual time. It is used as
	// an "infinite" deadline by timers that are currently disabled.
	MaxTime Time = Time(math.MaxInt64)
)

// Duration converts t to a time.Duration since simulation start.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Seconds reports t in (fractional) seconds.
func (t Time) Seconds() float64 { return time.Duration(t).Seconds() }

// Milliseconds reports t in (fractional) milliseconds.
func (t Time) Milliseconds() float64 {
	return float64(time.Duration(t)) / float64(time.Millisecond)
}

// String formats the time like a time.Duration.
func (t Time) String() string { return time.Duration(t).String() }

// Event is a scheduled callback. The zero Event is invalid; events are
// created by the Simulator's scheduling methods.
type Event struct {
	at   Time
	seq  uint64 // tie-break: FIFO among equal timestamps
	fn   func()
	name string // for debugging
	idx  int    // heap index; -1 when not queued
	dead bool   // cancelled
}

// Time reports when the event will fire.
func (e *Event) Time() Time { return e.at }

// Name reports the debug label given at scheduling time.
func (e *Event) Name() string { return e.name }

// Cancelled reports whether Cancel was called on the event.
func (e *Event) Cancelled() bool { return e.dead }

// eventQueue implements heap.Interface ordered by (at, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].idx = i
	q[j].idx = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.idx = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*q = old[:n-1]
	return e
}

// Simulator is a discrete-event scheduler with a virtual clock.
// The zero value is ready to use.
type Simulator struct {
	now     Time
	queue   eventQueue
	nextSeq uint64
	ran     uint64
	running bool
	stopped bool
}

// New returns a fresh Simulator with its clock at zero.
func New() *Simulator { return &Simulator{} }

// Now reports the current virtual time.
func (s *Simulator) Now() Time { return s.now }

// Processed reports how many events have been executed so far.
func (s *Simulator) Processed() uint64 { return s.ran }

// Pending reports how many events are queued (including cancelled
// events that have not yet been discarded).
func (s *Simulator) Pending() int { return len(s.queue) }

// At schedules fn to run at absolute virtual time at. Scheduling in the
// past (before Now) panics: that is always a protocol-logic bug and
// silently reordering events would corrupt causality.
func (s *Simulator) At(at Time, name string, fn func()) *Event {
	if at < s.now {
		panic(fmt.Sprintf("sim: scheduling %q at %v, before now %v", name, at, s.now))
	}
	e := &Event{at: at, seq: s.nextSeq, fn: fn, name: name}
	s.nextSeq++
	heap.Push(&s.queue, e)
	return e
}

// After schedules fn to run d after the current virtual time.
func (s *Simulator) After(d Time, name string, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, name, fn)
}

// Cancel removes e from the schedule. Cancelling a nil, already-fired,
// or already-cancelled event is a no-op.
func (s *Simulator) Cancel(e *Event) {
	if e == nil || e.dead {
		return
	}
	e.dead = true
	if e.idx >= 0 {
		heap.Remove(&s.queue, e.idx)
	}
}

// Stop makes Run return after the currently executing event handler
// (if any) completes.
func (s *Simulator) Stop() { s.stopped = true }

// Step executes the single next event, if any, and reports whether one
// was executed.
func (s *Simulator) Step() bool {
	for len(s.queue) > 0 {
		e := heap.Pop(&s.queue).(*Event)
		if e.dead {
			continue
		}
		s.now = e.at
		e.dead = true
		s.ran++
		e.fn()
		return true
	}
	return false
}

// Run executes events until the queue drains or Stop is called.
func (s *Simulator) Run() {
	s.running = true
	defer func() { s.running = false }()
	s.stopped = false
	for !s.stopped && s.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline, advancing the
// clock to exactly deadline when the queue runs dry earlier.
func (s *Simulator) RunUntil(deadline Time) {
	s.stopped = false
	for !s.stopped {
		if len(s.queue) == 0 {
			break
		}
		// Peek.
		if s.queue[0].at > deadline {
			break
		}
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// RunFor executes events for d of virtual time from now.
func (s *Simulator) RunFor(d Time) { s.RunUntil(s.now + d) }

// Timer is a restartable one-shot timer bound to a Simulator, in the
// style of time.Timer but in virtual time. It is the building block
// for TCP retransmission and delayed-ACK timers.
type Timer struct {
	sim  *Simulator
	name string
	fn   func()
	ev   *Event
}

// NewTimer returns a stopped timer that will invoke fn when it fires.
func NewTimer(s *Simulator, name string, fn func()) *Timer {
	return &Timer{sim: s, name: name, fn: fn}
}

// Reset (re)arms the timer to fire d from now, replacing any pending
// expiry.
func (t *Timer) Reset(d Time) {
	t.Stop()
	t.ev = t.sim.After(d, t.name, func() {
		t.ev = nil
		t.fn()
	})
}

// ResetAt (re)arms the timer to fire at absolute time at.
func (t *Timer) ResetAt(at Time) {
	t.Stop()
	t.ev = t.sim.At(at, t.name, func() {
		t.ev = nil
		t.fn()
	})
}

// Stop disarms the timer if it is pending.
func (t *Timer) Stop() {
	if t.ev != nil {
		t.sim.Cancel(t.ev)
		t.ev = nil
	}
}

// Armed reports whether the timer currently has a pending expiry.
func (t *Timer) Armed() bool { return t.ev != nil }

// Deadline reports when the timer will fire, or MaxTime if disarmed.
func (t *Timer) Deadline() Time {
	if t.ev == nil {
		return MaxTime
	}
	return t.ev.at
}
