package sim

// Reserved slots: batched scheduling for components with FIFO work.
//
// A netem link keeps per-packet state in FIFO rings whose entries fire
// in exactly push order (departure and arrival times are monotone per
// link). Scheduling a heap event per packet makes the heap O(packets
// in flight); a slot lets such a component draw the (at, seq) position
// an eager event would have received while materializing only its FIFO
// head as a real heap event. The heap stays O(links + timers), every
// push and pop sifts through a far shallower tree, and — because the
// stored (at, seq) is exactly what the eager schedule would have used —
// the global firing order is byte-identical.

// Slot is a reserved position in the schedule: an absolute deadline
// plus the tie-break sequence drawn at reservation time. The zero Slot
// is not a valid reservation.
type Slot struct {
	at  Time
	seq uint64
}

// At reports the slot's deadline.
func (sl Slot) At() Time { return sl.at }

// ReserveSlot draws the position an event scheduled now for time at
// would occupy, without pushing anything onto the heap. The caller
// must materialize the slot with ScheduleSlot (or retire it with
// ConsumeSlot) before the run loop passes its position — in practice
// by scheduling its FIFO head whenever the previous head fires, which
// is always in time because a FIFO's (at, seq) pairs are monotone.
// Abandoning a reservation (e.g. the packet was dropped) is safe:
// sequence numbers only order events, and gaps cost nothing.
func (s *Simulator) ReserveSlot(at Time) Slot {
	if at < s.now {
		panic("sim: slot reserved in the past")
	}
	sl := Slot{at: at, seq: s.nextSeq}
	s.nextSeq++
	return sl
}

// ScheduleSlot materializes a reserved slot as a pending event, firing
// fn at the slot's stored (at, seq) position exactly as if it had been
// scheduled eagerly at reservation time.
func (s *Simulator) ScheduleSlot(sl Slot, name string, fn func()) Event {
	if sl.at < s.now {
		panic("sim: slot " + name + " scheduled after its deadline passed")
	}
	e := s.alloc()
	e.at = sl.at
	e.seq = sl.seq
	e.fn = fn
	e.name = name
	e.dead = false
	s.push(e)
	s.live++
	return Event{rec: e, gen: e.gen}
}

// ConsumeSlot retires a reserved slot inline, skipping the heap
// round-trip, and reports whether it did. It succeeds only when the
// slot would have been the very next event executed anyway: its
// deadline is exactly now and no pending event orders before it.
// Callers use it from inside the event handler that fired their
// previous FIFO head, draining a same-instant burst in one call; on
// false they must ScheduleSlot instead. A consumed slot counts toward
// Processed, so event accounting matches the eager schedule exactly.
//
// The wheel needs no scan here: every timer due at or before now was
// flushed to the heap before the currently executing event was popped,
// and any timer armed since draws a later sequence than a slot
// reserved in the past, so it cannot order before one.
func (s *Simulator) ConsumeSlot(sl Slot) bool {
	if sl.at != s.now || s.stopped {
		return false
	}
	for len(s.queue) > 0 {
		h := s.queue[0]
		if !h.dead {
			if h.at < sl.at || (h.at == sl.at && h.seq < sl.seq) {
				return false
			}
			break
		}
		s.pop()
		s.recycle(h)
	}
	s.ran++
	return true
}
