package sim

import (
	"testing"
	"testing/quick"
)

func TestEventsRunInTimestampOrder(t *testing.T) {
	s := New()
	var got []int
	s.At(30*Millisecond, "c", func() { got = append(got, 3) })
	s.At(10*Millisecond, "a", func() { got = append(got, 1) })
	s.At(20*Millisecond, "b", func() { got = append(got, 2) })
	s.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order = %v, want [1 2 3]", got)
	}
	if s.Now() != 30*Millisecond {
		t.Errorf("clock = %v, want 30ms", s.Now())
	}
}

func TestTiesBreakFIFO(t *testing.T) {
	s := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(Millisecond, "tie", func() { got = append(got, i) })
	}
	s.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("tie order = %v, want FIFO", got)
		}
	}
}

func TestSchedulingInsideHandlers(t *testing.T) {
	s := New()
	depth := 0
	var recur func()
	recur = func() {
		if depth++; depth < 100 {
			s.After(Millisecond, "recur", recur)
		}
	}
	s.After(0, "start", recur)
	s.Run()
	if depth != 100 {
		t.Errorf("depth = %d, want 100", depth)
	}
	if s.Now() != 99*Millisecond {
		t.Errorf("clock = %v, want 99ms", s.Now())
	}
}

func TestCancel(t *testing.T) {
	s := New()
	fired := false
	e := s.At(Millisecond, "x", func() { fired = true })
	s.Cancel(e)
	s.Cancel(e)       // double-cancel is a no-op
	s.Cancel(Event{}) // zero handle is a no-op
	s.Run()
	if fired {
		t.Error("cancelled event fired")
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New()
	s.At(10*Millisecond, "later", func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		s.At(5*Millisecond, "past", func() {})
	})
	s.Run()
}

func TestRunUntilAdvancesClock(t *testing.T) {
	s := New()
	ran := false
	s.At(50*Millisecond, "x", func() { ran = true })
	s.RunUntil(20 * Millisecond)
	if ran {
		t.Error("future event ran early")
	}
	if s.Now() != 20*Millisecond {
		t.Errorf("clock = %v, want 20ms", s.Now())
	}
	s.RunUntil(100 * Millisecond)
	if !ran {
		t.Error("event did not run")
	}
}

func TestStop(t *testing.T) {
	s := New()
	count := 0
	for i := 1; i <= 10; i++ {
		s.At(Time(i)*Millisecond, "n", func() {
			count++
			if count == 3 {
				s.Stop()
			}
		})
	}
	s.Run()
	if count != 3 {
		t.Errorf("ran %d events after Stop, want 3", count)
	}
	s.Run() // resume
	if count != 10 {
		t.Errorf("ran %d events total, want 10", count)
	}
}

func TestTimerResetReplacesExpiry(t *testing.T) {
	s := New()
	fired := 0
	tm := NewTimer(s, "t", func() { fired++ })
	tm.Reset(10 * Millisecond)
	tm.Reset(20 * Millisecond) // replaces, does not add
	s.Run()
	if fired != 1 {
		t.Errorf("timer fired %d times, want 1", fired)
	}
	if s.Now() != 20*Millisecond {
		t.Errorf("fired at %v, want 20ms", s.Now())
	}
}

func TestTimerStop(t *testing.T) {
	s := New()
	tm := NewTimer(s, "t", func() { t.Error("stopped timer fired") })
	tm.Reset(Millisecond)
	if !tm.Armed() {
		t.Error("timer not armed after Reset")
	}
	tm.Stop()
	if tm.Armed() {
		t.Error("timer armed after Stop")
	}
	if tm.Deadline() != MaxTime {
		t.Error("stopped timer has a deadline")
	}
	s.Run()
}

// TestEventOrderProperty: any multiset of scheduled times executes in
// non-decreasing order.
func TestEventOrderProperty(t *testing.T) {
	f := func(offsets []uint16) bool {
		s := New()
		var seen []Time
		for _, o := range offsets {
			at := Time(o) * Microsecond
			s.At(at, "p", func() { seen = append(seen, s.Now()) })
		}
		s.Run()
		for i := 1; i < len(seen); i++ {
			if seen[i] < seen[i-1] {
				return false
			}
		}
		return len(seen) == len(offsets)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(99)
	b := NewRNG(99)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed produced different streams")
		}
	}
	ca := NewRNG(99).Child("x")
	cb := NewRNG(99).Child("x")
	if ca.Int63() != cb.Int63() {
		t.Error("same-labeled children differ")
	}
	cc := NewRNG(99).Child("y")
	cd := NewRNG(99).Child("x")
	if cc.Int63() == cd.Int63() {
		t.Error("differently-labeled children coincide")
	}
}

func TestRNGDistributions(t *testing.T) {
	g := NewRNG(5)
	n := 20000
	// Bool(p) hits roughly p.
	hits := 0
	for i := 0; i < n; i++ {
		if g.Bool(0.3) {
			hits++
		}
	}
	if frac := float64(hits) / float64(n); frac < 0.27 || frac > 0.33 {
		t.Errorf("Bool(0.3) rate %.3f", frac)
	}
	// Pareto samples are >= xm.
	for i := 0; i < 1000; i++ {
		if v := g.Pareto(2.0, 1.5); v < 2.0 {
			t.Fatalf("Pareto sample %v below xm", v)
		}
	}
	// Exponential mean roughly right.
	var sum float64
	for i := 0; i < n; i++ {
		sum += g.Exponential(5)
	}
	if mean := sum / float64(n); mean < 4.5 || mean > 5.5 {
		t.Errorf("Exponential(5) mean %.2f", mean)
	}
	// Uniform bounds.
	for i := 0; i < 1000; i++ {
		if v := g.Uniform(3, 7); v < 3 || v >= 7 {
			t.Fatalf("Uniform(3,7) sample %v out of range", v)
		}
	}
	// Duration bounds and degenerate range.
	if d := g.Duration(5*Millisecond, 5*Millisecond); d != 5*Millisecond {
		t.Errorf("degenerate Duration = %v", d)
	}
	for i := 0; i < 1000; i++ {
		d := g.Duration(Millisecond, Second)
		if d < Millisecond || d >= Second {
			t.Fatalf("Duration sample %v out of range", d)
		}
	}
}

func TestBoolEdgeCases(t *testing.T) {
	g := NewRNG(1)
	if g.Bool(0) {
		t.Error("Bool(0) returned true")
	}
	if !g.Bool(1) {
		t.Error("Bool(1) returned false")
	}
	if g.Bool(-5) {
		t.Error("Bool(-5) returned true")
	}
}

func TestTimeFormatting(t *testing.T) {
	if (1500 * Millisecond).Seconds() != 1.5 {
		t.Error("Seconds conversion wrong")
	}
	if (2 * Millisecond).Milliseconds() != 2.0 {
		t.Error("Milliseconds conversion wrong")
	}
	if (3 * Second).String() != "3s" {
		t.Errorf("String = %q", (3 * Second).String())
	}
}
