package mptcp

// BLEST is a head-of-line-blocking-aware scheduler after Ferlin et al.
// ("BLEST: Blocking estimation-based MPTCP scheduler for heterogeneous
// networks", IFIP Networking 2016). The failure mode it removes:
// minrtt happily tops up the slow path whenever the fast path's
// congestion window is momentarily full, and near the end of a
// transfer (or any time the unassigned backlog is small) those
// slow-path bytes arrive a full slow-RTT late, parking the receiver's
// connection-level reorder buffer behind them — head-of-line blocking
// that the fast path alone would have avoided entirely.
//
// The gate: before placing on a slow path, estimate how many bytes the
// fast path could move during one slow-path round trip,
//
//	B = cwnd_F x MSS_F x (srtt_S / srtt_F)
//
// discounted by what is already in flight on the fast path. If the
// remaining unassigned backlog fits inside lambda x B, the fast path
// can deliver everything sooner than the slow path would deliver this
// chunk — so return -1 and wait for the fast path's ACK clock instead
// of stalling the reorder buffer. With a large backlog the gate never
// binds and BLEST degenerates to minrtt, which is exactly the intended
// bulk behaviour.
type BLEST struct {
	singleCopy
	// Lambda scales the fast path's projected capacity; >1 biases
	// toward waiting (fewer slow-path placements, less HoL risk at the
	// price of idling the slow path on mid-size backlogs). Zero means
	// DefaultBLESTLambda.
	Lambda float64
}

// DefaultBLESTLambda leaves a half-window of slack in the blocking
// estimate: the fast path must be able to cover the backlog with 1.5x
// room before BLEST idles the slow path. Ferlin et al. adapt lambda
// online from observed blocking; a fixed margin keeps the policy a
// pure function of path state, which replay determinism wants.
const DefaultBLESTLambda = 1.5

// Name implements Scheduler.
func (*BLEST) Name() string { return "blest" }

// Pick implements Scheduler. The primary decision is minrtt's; the
// HoL gate only engages when minrtt would fall back to a slower path
// while a faster established path is merely cwnd-limited.
func (b *BLEST) Pick(subflows []*Subflow) int {
	// Fastest live established path, writable or not: the path whose
	// blocked window we are deciding whether to wait for.
	fast := -1
	var fastRTT float64
	for i, sf := range subflows {
		if !sf.EP.Established() || sf.EP.ConsecutiveTimeouts() >= DeadAfterTimeouts {
			continue
		}
		if rtt := sf.EP.SRTT(); fast < 0 || rtt < fastRTT {
			fast, fastRTT = i, rtt
		}
	}
	// minrtt choice among currently usable paths.
	pick := -1
	var pickRTT float64
	for i, sf := range subflows {
		if !sf.usable() {
			continue
		}
		if rtt := sf.EP.SRTT(); pick < 0 || rtt < pickRTT {
			pick, pickRTT = i, rtt
		}
	}
	if pick < 0 {
		return -1
	}
	if fast < 0 || pick == fast || pickRTT <= fastRTT {
		return pick // already on the fastest live path
	}
	// The fast path exists but cannot take data now. Estimate the
	// bytes it could move during one slow-path RTT once its window
	// opens, net of what it already has in flight.
	f := subflows[fast].EP
	if fastRTT <= 0 {
		return pick
	}
	mss := int64(f.Config().MSS)
	projected := int64(f.Cwnd()*float64(mss)*(pickRTT/fastRTT)) - f.UnackedBytes()
	if projected <= 0 {
		return pick
	}
	lambda := b.Lambda
	if lambda <= 0 {
		lambda = DefaultBLESTLambda
	}
	backlog := subflows[pick].conn.unassignedBytes()
	if float64(backlog) <= lambda*float64(projected) {
		// The fast path alone covers the backlog sooner than the slow
		// path would deliver this chunk: sending would block the
		// connection-level in-order edge. Wait for the fast ACK clock.
		return -1
	}
	return pick
}
