package mptcp

import (
	"math"
	"testing"

	"mptcplab/internal/sim"
)

// TestRateEstimatorNeverDelivering pins the zero-division contract: a
// path that never delivers reports exactly 0 — never NaN, never Inf —
// whether the estimator is fresh, zero-value, mis-inited, or has only
// seen the clock move.
func TestRateEstimatorNeverDelivering(t *testing.T) {
	checks := func(name string, r *RateEstimator, now sim.Time) {
		got := r.Rate(now)
		if got != 0 {
			t.Errorf("%s: Rate=%v, want 0", name, got)
		}
		if math.IsNaN(got) || math.IsInf(got, 0) {
			t.Errorf("%s: Rate=%v is not finite", name, got)
		}
		if tot := r.Total(now); tot != 0 {
			t.Errorf("%s: Total=%d, want 0", name, tot)
		}
	}

	var zero RateEstimator // never Init'd
	checks("zero-value", &zero, 5*sim.Second)

	var fresh RateEstimator
	fresh.Init(DefaultRateWindow)
	checks("fresh", &fresh, 0)
	checks("fresh@later", &fresh, 30*sim.Second)

	var badWin RateEstimator
	badWin.Init(-3 * sim.Second) // falls back to the default window
	badWin.Add(1*sim.Second, 0)  // zero-byte samples are ignored
	badWin.Add(1*sim.Second, -7) // so are negative ones
	checks("nonpositive-samples", &badWin, 2*sim.Second)
}

// TestRateEstimatorConvergence feeds a constant-rate path and requires
// the estimate to converge to the true rate within one window of
// samples, then hold there.
func TestRateEstimatorConvergence(t *testing.T) {
	const (
		chunk    = int64(1460)
		interval = 25 * sim.Millisecond
		want     = float64(chunk) * float64(sim.Second/interval) // B/s
	)
	var r RateEstimator
	r.Init(DefaultRateWindow)
	now := sim.Time(0)
	samplesPerWindow := int(DefaultRateWindow / interval)
	for i := 0; i < 4*samplesPerWindow; i++ {
		r.Add(now, chunk)
		now += interval
		if i < samplesPerWindow {
			continue // window still filling
		}
		got := r.Rate(now)
		// One bucket (window/rateBuckets) of quantization slack.
		tol := want / rateBuckets
		if math.Abs(got-want) > tol {
			t.Fatalf("sample %d: Rate=%.0f, want %.0f within %.0f", i, got, want, tol)
		}
	}
}

// TestRateEstimatorMonotoneAdvance pins the window semantics under a
// moving clock: with no new samples the estimate is non-increasing as
// time advances, a stale timestamp folds into the current bucket
// instead of corrupting the ring, and a jump past the whole window
// drains the estimate to zero.
func TestRateEstimatorMonotoneAdvance(t *testing.T) {
	var r RateEstimator
	r.Init(1 * sim.Second)
	now := sim.Time(0)
	for i := 0; i < 8; i++ {
		r.Add(now, 1000)
		now += 100 * sim.Millisecond
	}
	prev := r.Rate(now)
	if prev <= 0 {
		t.Fatalf("Rate=%v after 8 samples, want > 0", prev)
	}
	// No further deliveries: the estimate must decay monotonically.
	for i := 0; i < 20; i++ {
		now += 100 * sim.Millisecond
		got := r.Rate(now)
		if got > prev {
			t.Fatalf("Rate rose from %.0f to %.0f with no samples at now=%v", prev, got, now)
		}
		prev = got
	}
	if prev != 0 {
		t.Fatalf("Rate=%v after window drained, want 0", prev)
	}

	// Stale sample: time must not run backwards through the ring.
	r.Init(1 * sim.Second)
	r.Add(2*sim.Second, 500)
	r.Add(1*sim.Second, 500) // stale: folded into the current bucket
	if tot := r.Total(2 * sim.Second); tot != 1000 {
		t.Fatalf("Total=%d after stale fold, want 1000", tot)
	}

	// Jump far beyond the window: everything expires at once.
	r.Add(90*sim.Second, 700)
	if tot := r.Total(90 * sim.Second); tot != 700 {
		t.Fatalf("Total=%d after full-window jump, want 700", tot)
	}
	if got := r.Rate(200 * sim.Second); got != 0 {
		t.Fatalf("Rate=%v long after last sample, want 0", got)
	}
}
