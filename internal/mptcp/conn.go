package mptcp

import (
	"fmt"

	"mptcplab/internal/cc"
	"mptcplab/internal/netem"
	"mptcplab/internal/seg"
	"mptcplab/internal/sim"
	"mptcplab/internal/tcp"
	"mptcplab/internal/units"
)

// initialDataSeq is where the connection-level sequence space starts.
// (Real MPTCP derives an initial data sequence number from the key
// hash; a fixed origin changes nothing observable and keeps traces
// easy to read.)
const initialDataSeq uint64 = 1

// Config selects the MPTCP behaviours the paper varies.
type Config struct {
	TCP        tcp.Config
	Controller cc.Controller // shared across subflows (coupled/olia/reno)
	// Scheduler names the packet-scheduling plugin: "minrtt" (default),
	// "roundrobin", "weighted[:w0;w1;...]", "redundant", "backup",
	// "blest" (HoL-blocking-aware), or "adaptive" (delivery-rate
	// weighted); legacy aliases "lowest-rtt"/"round-robin" still
	// resolve.
	Scheduler string

	// SimultaneousSYN enables the paper's §4.1.2 patch: all subflow
	// SYNs leave together instead of the stock behaviour of joining
	// secondary paths only after the first subflow establishes. The
	// join SYNs identify the connection by the client's token
	// (pre-authorized servers, as the paper assumes).
	SimultaneousSYN bool

	// Penalize enables v0.86's receive-buffer penalization: when
	// transmission stalls on the shared receive window, the subflow
	// holding the oldest outstanding data has its congestion window
	// halved. The paper removes this mechanism (§3.1); it is off by
	// default and exists for the ablation study.
	Penalize bool

	// RcvBuf is the shared connection-level receive buffer (8 MB in
	// the paper). Defaults to TCP.RcvBuf when zero.
	RcvBuf units.ByteCount
}

// DefaultConfig mirrors the paper's measurement configuration:
// coupled congestion control, lowest-RTT scheduler, delayed second
// SYN, no penalization, 8 MB shared receive buffer.
func DefaultConfig() Config {
	t := tcp.DefaultConfig()
	return Config{
		TCP:        t,
		Controller: cc.Coupled{},
		Scheduler:  "minrtt",
		RcvBuf:     t.RcvBuf,
	}
}

// mapping binds [off, off+length) of a subflow's send stream to
// [dataSeq, dataSeq+length) of the connection's data-sequence space.
type mapping struct {
	dataSeq    uint64
	off        int64
	length     int64
	reinjected bool // already copied to another subflow
}

// Subflow is one TCP path of an MPTCP connection.
type Subflow struct {
	ID     int
	AddrID uint8
	Label  string // e.g. "wifi", "lte" — set from dial options
	// Backup marks a subflow the BackupMode scheduler holds in
	// reserve until regular paths fail.
	Backup bool
	EP     *tcp.Endpoint

	conn        *Conn
	mappings    []mapping
	pendingOpts []seg.Option
	lastPenalty sim.Time
	joinNonce   uint32
	// alignHold marks a subflow whose free space stops short of the
	// next MSS boundary; pump sets it to steer the scheduler toward
	// other subflows for the rest of the current pass.
	alignHold bool

	// Delivery-rate telemetry: ackedBytes counts cumulatively ACKed
	// payload bytes on this subflow; dlv and placed are the windowed
	// estimators (delivered and scheduler-placed bytes respectively)
	// the adaptive policy reads. Fed for every scheduler so exports
	// can carry per-path delivery telemetry regardless of policy.
	ackedBytes int64
	dlv        RateEstimator
	placed     RateEstimator
}

// AckedBytes reports the payload bytes the peer has cumulatively
// ACKed on this subflow — the per-path delivered-volume telemetry
// (duplicate copies and retransmissions count once, like the ACK
// stream itself).
func (sf *Subflow) AckedBytes() int64 { return sf.ackedBytes }

// DeliveryRate reports the subflow's windowed delivery rate in bytes
// per second as of the connection's current virtual time. Zero for a
// path that delivered nothing within the window.
func (sf *Subflow) DeliveryRate() float64 {
	return sf.dlv.Rate(sf.conn.sim.Now())
}

// usable reports whether the scheduler may assign data to this subflow.
func (sf *Subflow) usable() bool {
	return !sf.alignHold && sf.EP.Established() && sf.EP.SendSpace() > 0
}

// mappingFor finds the mapping covering stream offset off, or nil.
func (sf *Subflow) mappingFor(off int64) *mapping {
	for i := range sf.mappings {
		m := &sf.mappings[i]
		if off >= m.off && off < m.off+m.length {
			return m
		}
	}
	return nil
}

// pruneMappings discards mappings fully below the data-level ACK.
func (sf *Subflow) pruneMappings(dataAck uint64) {
	keep := sf.mappings[:0]
	for _, m := range sf.mappings {
		if m.dataSeq+uint64(m.length) > dataAck {
			keep = append(keep, m)
		}
	}
	sf.mappings = keep
}

// Conn is one MPTCP connection (either side).
type Conn struct {
	Name string

	cfg   Config
	sched Scheduler
	net   *netem.Network
	host  *netem.Host
	sim   *sim.Simulator
	rng   *sim.RNG

	isServer bool
	localKey uint64
	peerKey  uint64

	subflows []*Subflow
	flows    []cc.Flow

	// Client-side join state.
	localAddrs     []seg.Addr
	labels         []string
	backupFlags    []bool
	knownRemotes   []seg.Addr
	joinAdvertised bool

	server *Server // server-side registry backlink

	// Send state.
	sndNxtData    uint64 // next unassigned data sequence
	sndEndData    uint64 // end of application-written data
	dataFinQueued bool
	dataAck       uint64 // peer's cumulative data-level ACK
	peerDataEdge  uint64 // highest data-level right edge (DataAck + shared window) seen; 0 = none yet

	// Receive state.
	reorder    *ReorderBuffer
	peerFinSeq uint64 // data sequence just past the peer's last byte; 0 = unknown

	established bool
	closed      bool

	// StartedAt is when Dial issued the first SYN (download time in
	// the paper runs from here, §3.3).
	StartedAt sim.Time

	// Penalties counts receive-buffer penalization events.
	Penalties uint64
	// Reinjections counts mappings copied off presumed-dead subflows.
	Reinjections uint64
	// DupTxBytes counts payload bytes a redundant scheduler placed as
	// duplicate copies on extra subflows — sender-side accounting that
	// lets goodput metrics separate useful bytes from redundancy.
	DupTxBytes int64

	// Placement telemetry for the scheduler conformance harness:
	// fresh-chunk placements per subflow index, and how many
	// consecutive placements landed on a different subflow than the
	// one before (the alternation a round-robin policy promises).
	// lastPlace holds index+1 so the zero value means "none yet".
	placeCounts []int
	placeSwitch int
	lastPlace   int

	// Callbacks.
	OnEstablished func()
	OnSubflowUp   func(sf *Subflow)
	OnData        func(n int64)
	OnOFOSample   func(d sim.Time, subflowID int)
	OnRemoteClose func()
	OnDataAcked   func(dataAck uint64)
}

// DialOpts configures a client-side MPTCP connection.
type DialOpts struct {
	// LocalAddrs are the client's interface addresses; index 0 is the
	// default path (WiFi in the paper: "MPTCP initiates the connection
	// over the WiFi network").
	LocalAddrs []seg.Addr
	// Labels name each local address ("wifi", "lte", ...) for metrics.
	Labels []string
	// ServerAddr is the server's known address.
	ServerAddr seg.Addr
	// JoinAdvertised makes the client open subflows from every local
	// interface to addresses the server advertises via ADD_ADDR —
	// the 4-path scenarios of Figure 1.
	JoinAdvertised bool
	// Backup marks local addresses (parallel to LocalAddrs) whose
	// subflows the "backup" scheduler keeps in reserve.
	Backup []bool
	// Config selects protocol behaviour; zero value means defaults.
	Config Config
}

// Dial opens an MPTCP connection. The first subflow's SYN (carrying
// MP_CAPABLE) leaves immediately; additional paths join per the
// configured SYN mode.
func Dial(network *netem.Network, host *netem.Host, opts DialOpts, rng *sim.RNG) *Conn {
	cfg := opts.Config
	if cfg.Controller == nil {
		cfg = DefaultConfig()
	}
	if cfg.RcvBuf == 0 {
		cfg.RcvBuf = cfg.TCP.RcvBuf
	}
	c := &Conn{
		cfg:            cfg,
		sched:          NewScheduler(cfg.Scheduler),
		net:            network,
		host:           host,
		sim:            network.Sim(),
		rng:            rng.Child("mptcp"),
		localKey:       uint64(rng.Int63()) | 1,
		localAddrs:     opts.LocalAddrs,
		labels:         opts.Labels,
		knownRemotes:   []seg.Addr{opts.ServerAddr},
		joinAdvertised: opts.JoinAdvertised,
		sndNxtData:     initialDataSeq,
		sndEndData:     initialDataSeq,
	}
	c.initReorder()
	c.StartedAt = c.sim.Now()

	c.backupFlags = opts.Backup
	first := c.addSubflow(opts.LocalAddrs[0], opts.ServerAddr, c.label(0))
	first.Backup = c.backupFlag(0)
	first.EP.Connect()
	if cfg.SimultaneousSYN {
		for i := 1; i < len(opts.LocalAddrs); i++ {
			sf := c.addSubflow(opts.LocalAddrs[i], opts.ServerAddr, c.label(i))
			sf.Backup = c.backupFlag(i)
			sf.EP.Connect()
		}
	}
	return c
}

func (c *Conn) label(i int) string {
	if i < len(c.labels) {
		return c.labels[i]
	}
	return fmt.Sprintf("path%d", i)
}

func (c *Conn) backupFlag(i int) bool {
	return i < len(c.backupFlags) && c.backupFlags[i]
}

func (c *Conn) initReorder() {
	c.reorder = NewReorderBuffer(initialDataSeq)
	c.reorder.OnDeliver = func(n int64) {
		if c.OnData != nil {
			c.OnData(n)
		}
		c.checkRemoteClose()
		c.maybeWindowUpdate()
	}
	c.reorder.OnSample = func(d sim.Time, subflow int) {
		if c.OnOFOSample != nil {
			c.OnOFOSample(d, subflow)
		}
	}
}

// Tokens identify a connection for MP_JOIN (a 32-bit hash of a key).
func token(key uint64) uint32 {
	h := uint32(2166136261)
	for i := 0; i < 8; i++ {
		h ^= uint32(key >> (8 * i) & 0xFF)
		h *= 16777619
	}
	return h
}

// LocalToken is the token derived from this side's key.
func (c *Conn) LocalToken() uint32 { return token(c.localKey) }

// addSubflow creates and wires a subflow endpoint (not yet connected).
func (c *Conn) addSubflow(local, remote seg.Addr, label string) *Subflow {
	tcpCfg := c.cfg.TCP
	tcpCfg.Controller = c.cfg.Controller
	sf := &Subflow{
		ID:        len(c.subflows),
		AddrID:    uint8(len(c.subflows)),
		Label:     label,
		conn:      c,
		joinNonce: uint32(c.rng.Int63()),
	}
	sf.dlv.Init(DefaultRateWindow)
	sf.placed.Init(DefaultRateWindow)
	ep := tcp.NewEndpoint(c.host, c.net, local, remote, tcpCfg, c.rng.Child("sf"))
	sf.EP = ep
	c.subflows = append(c.subflows, sf)
	c.flows = append(c.flows, ep)
	// The flows slice may have been reallocated: refresh every subflow.
	for i, s := range c.subflows {
		s.EP.SetCoupled(c.flows, i)
	}

	ep.BuildOptions = func(s *seg.Segment, kind tcp.SegKind) { c.buildOptions(sf, s, kind) }
	ep.SegmentLimit = func(off int64, n int) int { return c.segmentLimit(sf, off, n) }
	ep.WindowOverride = c.sharedWindow
	ep.OnSegmentArrival = func(s *seg.Segment) { c.onSegment(sf, s) }
	ep.OnEstablished = func() { c.onSubflowEstablished(sf) }
	ep.OnSendReady = func() { c.pump() }
	ep.OnAcked = func(n int64) { c.noteDelivered(sf, n); c.pump() }
	ep.OnTimeout = func(consecutive int) { c.onSubflowTimeout(sf, consecutive) }
	return sf
}

// noteDelivered feeds one cumulative-ACK advance into the subflow's
// delivery telemetry (counter plus windowed rate estimator).
func (c *Conn) noteDelivered(sf *Subflow, n int64) {
	sf.ackedBytes += n
	sf.dlv.Add(c.sim.Now(), n)
}

// unassignedBytes is the send-stream backlog the scheduler has not yet
// mapped to any subflow — the quantity BLEST's blocking estimate
// compares against the fast path's projected capacity.
func (c *Conn) unassignedBytes() int64 { return int64(c.sndEndData - c.sndNxtData) }

// onSubflowEstablished runs when any subflow completes its handshake.
func (c *Conn) onSubflowEstablished(sf *Subflow) {
	first := !c.established
	c.established = true
	if c.OnSubflowUp != nil {
		c.OnSubflowUp(sf)
	}
	if first {
		if !c.isServer {
			c.afterFirstSubflow()
		} else {
			c.serverAfterFirstSubflow()
		}
		if c.OnEstablished != nil {
			c.OnEstablished()
		}
	}
	c.pump()
	// A subflow joining after the connection already closed must be
	// torn down too.
	c.maybeCloseSubflows()
}

// afterFirstSubflow implements the stock v0.86 client behaviour: only
// after the first subflow establishes does the client advertise its
// other interfaces (ADD_ADDR) and send joining SYNs (§2.2.1) — the
// "delayed SYN" the paper measures against its simultaneous-SYN patch.
func (c *Conn) afterFirstSubflow() {
	if c.cfg.SimultaneousSYN {
		return // all SYNs already left together
	}
	for i := 1; i < len(c.localAddrs); i++ {
		// Advertise the extra interface on the established subflow…
		c.subflows[0].pendingOpts = append(c.subflows[0].pendingOpts,
			seg.AddAddrOption{AddrID: uint8(i), Addr: c.localAddrs[i]})
		// …and join from it.
		sf := c.addSubflow(c.localAddrs[i], c.knownRemotes[0], c.label(i))
		sf.Backup = c.backupFlag(i)
		sf.EP.Connect()
	}
}

// serverAfterFirstSubflow advertises the server's secondary interface
// so a 4-path client can join it (Figure 1's dashed paths).
func (c *Conn) serverAfterFirstSubflow() {
	if c.server == nil {
		return
	}
	for i, a := range c.server.AdvertiseAddrs {
		c.subflows[0].pendingOpts = append(c.subflows[0].pendingOpts,
			seg.AddAddrOption{AddrID: uint8(0x10 + i), Addr: a})
	}
	if len(c.server.AdvertiseAddrs) > 0 {
		c.subflows[0].EP.PushAck()
	}
}

// --- Application interface ---

// Write appends n abstract bytes to the connection's send stream.
func (c *Conn) Write(n int) {
	if n <= 0 || c.dataFinQueued {
		return
	}
	c.sndEndData += uint64(n)
	c.pump()
}

// Close queues a connection-level FIN (DATA_FIN) after all written
// data, then closes subflows once everything is data-acked.
func (c *Conn) Close() {
	if c.dataFinQueued {
		return
	}
	c.dataFinQueued = true
	c.pump()
	if c.sndNxtData == c.sndEndData {
		// Nothing left to map the DATA_FIN onto: signal it on a bare ACK.
		for _, sf := range c.subflows {
			if sf.EP.Established() {
				sf.EP.PushAck()
				break
			}
		}
	}
	c.maybeCloseSubflows()
}

// Established reports whether any subflow has completed its handshake.
func (c *Conn) Established() bool { return c.established }

// Subflows exposes the connection's subflows for metrics collection.
func (c *Conn) Subflows() []*Subflow { return c.subflows }

// Reorder exposes the receive-side reorder buffer (metrics).
func (c *Conn) Reorder() *ReorderBuffer { return c.reorder }

// DataAcked reports the peer's cumulative data-level ACK.
func (c *Conn) DataAcked() uint64 { return c.dataAck }

// BytesWritten reports the total bytes the application has written.
func (c *Conn) BytesWritten() int64 { return int64(c.sndEndData - initialDataSeq) }

// --- Scheduler / sender ---

// pump assigns unassigned data to subflows per the scheduler until
// windows are exhausted.
func (c *Conn) pump() {
	for _, sf := range c.subflows {
		sf.alignHold = false
	}
	for c.sndNxtData < c.sndEndData {
		i := c.sched.Pick(c.subflows)
		if i < 0 {
			c.maybePenalize()
			return
		}
		sf := c.subflows[i]
		space := sf.EP.SendSpace()
		chunk := int64(c.sndEndData - c.sndNxtData)
		if chunk > space {
			chunk = space
		}
		// Data-level flow control: every subflow advertises the same
		// shared window, so bounding each subflow individually would let
		// N subflows overcommit the receiver's buffer N-fold. Clamp the
		// aggregate to the peer's data-level right edge instead.
		// peerDataEdge == 0 means no DSS ACK seen yet (handshake); the
		// subflow window alone governs that first flight.
		dataClamped := false
		if c.peerDataEdge > 0 {
			if dspace := int64(c.peerDataEdge) - int64(c.sndNxtData); chunk > dspace {
				chunk = dspace
				dataClamped = true
			}
		}
		if chunk <= 0 {
			return
		}
		off := sf.EP.WriteOffset()
		// Align the mapping's end to an MSS boundary of the subflow
		// stream. Segments cannot cross mapping boundaries, so unaligned
		// mappings — whose sizes echo whatever SendSpace freed at pick
		// time — would fragment the stream into sub-MSS segments: more
		// packets per byte, more per-packet drops at shared queues, and
		// a persistent throughput handicap against plain TCP. Alignment
		// applies only when the subflow's own congestion window is the
		// binding constraint: a chunk cut short by the stream tail or by
		// the receive window — subflow-level or data-level — must go out
		// as-is (filling the window is what lets a stall be observed and
		// penalized).
		mss := int64(sf.EP.Config().MSS)
		if rem := int64(c.sndEndData - c.sndNxtData); chunk < rem && !dataClamped && !sf.EP.RwndBinding() && mss > 0 {
			aligned := (off+chunk)/mss*mss - off
			if aligned > 0 {
				chunk = aligned
			} else if sf.EP.UnackedBytes() > 0 {
				// Defer the sub-MSS leftover: this subflow's ACK clock
				// is running and will free a full segment's worth soon.
				// Hold it out of scheduling so other subflows still get
				// data this pass; an idle subflow (no ACKs coming) sends
				// the runt instead — progress beats alignment when
				// nothing else would trigger the next pump.
				sf.alignHold = true
				continue
			}
		}
		// Record the mapping before Write: Write transmits segments
		// synchronously and buildOptions must already see it.
		start := c.sndNxtData
		sf.mappings = append(sf.mappings, mapping{dataSeq: start, off: off, length: chunk})
		c.sndNxtData += uint64(chunk)
		c.notePlacement(i, chunk)
		sf.EP.Write(int(chunk))
		// Redundant schedulers place copies of the same data-sequence
		// range on additional subflows. Copies are marked reinjected so
		// a dead path never re-sprays data that already exists
		// elsewhere; the receiver's reorder buffer discards the losers.
		for _, di := range c.sched.Duplicates(c.subflows, i) {
			d := c.subflows[di]
			if d == sf || !d.EP.Established() {
				continue
			}
			d.mappings = append(d.mappings, mapping{dataSeq: start, off: d.EP.WriteOffset(), length: chunk, reinjected: true})
			d.EP.Write(int(chunk))
			c.DupTxBytes += chunk
		}
	}
}

// notePlacement records one fresh-chunk placement for the conformance
// harness's scheduler-behavior metrics and feeds the subflow's
// windowed placed-bytes estimator (the numerator of the adaptive
// policy's deficit score). Duplicate copies and reinjections are not
// placements — only the scheduler's Pick decisions count.
func (c *Conn) notePlacement(i int, n int64) {
	c.subflows[i].placed.Add(c.sim.Now(), n)
	for len(c.placeCounts) <= i {
		c.placeCounts = append(c.placeCounts, 0)
	}
	c.placeCounts[i]++
	if c.lastPlace != 0 && c.lastPlace != i+1 {
		c.placeSwitch++
	}
	c.lastPlace = i + 1
}

// Placements returns the number of fresh chunks the scheduler placed
// on each subflow, indexed like Subflows().
func (c *Conn) Placements() []int { return c.placeCounts }

// PlacementSwitches returns how many placements landed on a different
// subflow than the placement immediately before — the alternation
// measure the conformance harness uses to tell a round-robin policy
// from an RTT-greedy one.
func (c *Conn) PlacementSwitches() int { return c.placeSwitch }

// onSubflowTimeout watches for presumed-dead subflows: after
// DeadAfterTimeouts consecutive unanswered RTOs the subflow's
// outstanding data is reinjected on live paths, so a WiFi outage does
// not strand the bytes mapped to it — the mobility robustness the
// paper argues for in §6. (Linux MPTCP performs the same opportunistic
// reinjection when a subflow dies.)
func (c *Conn) onSubflowTimeout(sf *Subflow, consecutive int) {
	if consecutive < DeadAfterTimeouts {
		return
	}
	c.reinjectFrom(sf)
}

// reinjectFrom copies sf's un-data-acked mappings onto the subflow
// the scheduler nominates. The receiver's reorder buffer discards
// whichever copy loses the race, so correctness is unaffected.
func (c *Conn) reinjectFrom(dead *Subflow) {
	i := c.sched.ReinjectTarget(c.subflows, dead)
	if i < 0 || c.subflows[i] == dead {
		return // nothing alive; retried on the next timeout
	}
	c.reinjectVia(dead, c.subflows[i])
}

// maybePenalize implements the v0.86 receive-buffer penalization when
// enabled: transmission stalled on the shared receive window halves
// the cwnd of the subflow holding the oldest outstanding data.
func (c *Conn) maybePenalize() {
	if !c.cfg.Penalize || c.sndNxtData >= c.sndEndData {
		return
	}
	anyEstablished := false
	for _, sf := range c.subflows {
		if !sf.EP.Established() {
			continue
		}
		anyEstablished = true
		if !sf.EP.WindowLimited() {
			return // stalled on cwnd, not the receive buffer
		}
	}
	if !anyEstablished {
		return
	}
	// Oldest outstanding data identifies the blocking subflow.
	var victim *Subflow
	oldest := uint64(1<<63 - 1)
	for _, sf := range c.subflows {
		for _, m := range sf.mappings {
			if m.dataSeq >= c.dataAck && m.dataSeq < oldest {
				oldest = m.dataSeq
				victim = sf
			}
		}
	}
	if victim == nil {
		return
	}
	now := c.sim.Now()
	if now-victim.lastPenalty < victim.EP.SRTTTime() {
		return
	}
	victim.lastPenalty = now
	victim.EP.PenalizeHalve()
	c.Penalties++
}

// segmentLimit keeps a data segment inside a single DSS mapping. A
// segment starting in an orphaned region (its mapping was pruned after
// the data was delivered via a reinjected copy) must still stop at the
// next live mapping's boundary — otherwise live data would ride in a
// mapless segment the receiver cannot place, stranding a permanent
// hole in the data stream.
func (c *Conn) segmentLimit(sf *Subflow, off int64, n int) int {
	if m := sf.mappingFor(off); m != nil {
		if lim := m.off + m.length - off; int64(n) > lim {
			return int(lim)
		}
		return n
	}
	next := int64(-1)
	for i := range sf.mappings {
		if mo := sf.mappings[i].off; mo > off && (next < 0 || mo < next) {
			next = mo
		}
	}
	if next >= 0 && int64(n) > next-off {
		return int(next - off)
	}
	return n
}

// buildOptions decorates outgoing subflow segments with MPTCP options.
func (c *Conn) buildOptions(sf *Subflow, s *seg.Segment, kind tcp.SegKind) {
	switch kind {
	case tcp.KindSYN:
		if c.isServer {
			break
		}
		if sf.ID == 0 {
			s.AddOption(seg.MPCapableOption{Key: c.localKey})
		} else {
			s.AddOption(seg.MPJoinOption{Token: c.joinToken(), Nonce: sf.joinNonce, AddrID: sf.AddrID, Backup: sf.Backup})
		}
	case tcp.KindSYNACK:
		if sf.ID == 0 {
			s.AddOption(seg.MPCapableOption{Key: c.localKey})
		} else {
			s.AddOption(seg.MPJoinOption{Token: c.LocalToken(), Nonce: sf.joinNonce, AddrID: sf.AddrID})
		}
	case tcp.KindData:
		off := sf.EP.StreamOffset(s.Seq)
		dss := seg.DSSOption{HasAck: true, DataAck: c.reorder.RcvNxt()}
		if m := sf.mappingFor(off); m != nil {
			dss.HasMap = true
			dss.DataSeq = m.dataSeq + uint64(off-m.off)
			dss.SubflowSeq = uint32(off + 1)
			dss.Length = uint16(s.PayloadLen)
			if c.dataFinQueued && dss.DataSeq+uint64(s.PayloadLen) == c.sndEndData {
				dss.DataFin = true
			}
		}
		s.AddDSS(dss)
	case tcp.KindAck, tcp.KindFin:
		dss := seg.DSSOption{HasAck: true, DataAck: c.reorder.RcvNxt()}
		if c.dataFinQueued && c.sndNxtData == c.sndEndData {
			// Standalone DATA_FIN: an empty mapping pointing at the end
			// of the stream.
			dss.HasMap = true
			dss.DataSeq = c.sndEndData
			dss.Length = 0
			dss.DataFin = true
		}
		s.AddDSS(dss)
	}
	if len(sf.pendingOpts) > 0 {
		s.Options = append(s.Options, sf.pendingOpts...)
		sf.pendingOpts = nil
	}
}

// joinToken identifies the connection a join SYN belongs to. Stock
// MPTCP uses the server's token, which the client learns from the
// MP_CAPABLE exchange; in simultaneous-SYN mode the first RTT hasn't
// happened yet, so the patch identifies the connection by the client's
// own token (the paper's premise: the server is known MPTCP-capable
// and the connection pre-authorized).
func (c *Conn) joinToken() uint32 {
	if c.cfg.SimultaneousSYN || c.peerKey == 0 {
		return c.LocalToken()
	}
	return token(c.peerKey)
}

// --- Receive path ---

// sharedWindow is the connection-level receive window advertised by
// every subflow: one shared buffer, minus out-of-order residue (§3.1).
func (c *Conn) sharedWindow() int64 {
	w := int64(c.cfg.RcvBuf) - c.reorder.BufferedBytes()
	if w < 0 {
		w = 0
	}
	return w
}

// onSegment processes MPTCP signaling on any arriving segment.
func (c *Conn) onSegment(sf *Subflow, s *seg.Segment) {
	if o := s.MPTCP(seg.SubMPCapable); o != nil && !c.isServer {
		c.peerKey = o.(seg.MPCapableOption).Key
	}
	if o := s.MPTCP(seg.SubAddAddr); o != nil {
		c.onAddAddr(o.(seg.AddAddrOption))
	}
	if o := s.MPTCP(seg.SubRemoveAddr); o != nil {
		c.onRemoveAddr(o.(seg.RemoveAddrOption))
	}
	if o := s.MPTCP(seg.SubFastClose); o != nil {
		c.onFastClose()
		return
	}
	if d, ok := s.GetDSS(); ok {
		if d.HasAck {
			// The shared receive window is relative to the data-level
			// ACK (RFC 6824 §3.3.1): DataAck plus this segment's window
			// is the right edge of data the peer can buffer. Track the
			// maximum edge ever advertised — like sndUna+rwnd at the
			// subflow level, it never retreats.
			if edge := d.DataAck + uint64(sf.EP.SegmentWindow(s)); edge > c.peerDataEdge {
				c.peerDataEdge = edge
			}
			c.onDataAck(d.DataAck)
		}
		if d.HasMap && s.PayloadLen > 0 {
			start := d.DataSeq
			c.reorder.Insert(c.sim.Now(), start, start+uint64(s.PayloadLen), sf.ID)
			c.maybeWindowUpdate()
		}
		if d.DataFin {
			fin := d.DataSeq + uint64(d.Length)
			if fin > c.peerFinSeq {
				c.peerFinSeq = fin
			}
			c.checkRemoteClose()
		}
	}
}

// onDataAck digests the peer's cumulative data-level acknowledgment.
func (c *Conn) onDataAck(ack uint64) {
	if ack <= c.dataAck {
		return
	}
	c.dataAck = ack
	for _, sf := range c.subflows {
		sf.pruneMappings(ack)
	}
	if c.OnDataAcked != nil {
		c.OnDataAcked(ack)
	}
	c.maybeCloseSubflows()
}

// checkRemoteClose fires OnRemoteClose once the peer's whole stream
// (through its DATA_FIN) has been delivered.
func (c *Conn) checkRemoteClose() {
	if c.closed || c.peerFinSeq == 0 || c.reorder.RcvNxt() < c.peerFinSeq {
		return
	}
	c.closed = true
	if c.OnRemoteClose != nil {
		c.OnRemoteClose()
	}
	c.maybeCloseSubflows()
}

// maybeCloseSubflows tears down subflows once both directions are
// complete: our data is fully data-acked and the peer's stream has
// ended (or we never expect one).
func (c *Conn) maybeCloseSubflows() {
	if !c.dataFinQueued || c.dataAck < c.sndEndData {
		return
	}
	if c.peerFinSeq != 0 && c.reorder.RcvNxt() < c.peerFinSeq {
		return
	}
	for _, sf := range c.subflows {
		sf.EP.Close()
	}
}

// maybeWindowUpdate re-advertises the shared window on all subflows
// after a reorder-buffer drain that had the window nearly closed —
// otherwise a stalled fast subflow would wait for its own RTO.
func (c *Conn) maybeWindowUpdate() {
	free := c.sharedWindow()
	if free < int64(c.cfg.RcvBuf)/2 {
		return
	}
	if c.reorder.MaxBuffered < int64(c.cfg.RcvBuf)/2 {
		return // never came close to filling; no one is stalled
	}
	for _, sf := range c.subflows {
		if sf.EP.Established() && sf.EP.State() == tcp.StateEstablished {
			sf.EP.PushAck()
		}
	}
	// Only push again after the next episode of pressure.
	c.reorder.MaxBuffered = 0
}

// RemoveLocalAddr withdraws one of this side's addresses: the
// application calls it when an interface disappears (the §6 mobility
// scenario of changing access points). Subflows using the address are
// aborted, their outstanding data is reinjected on surviving paths,
// and the peer is told via REMOVE_ADDR so it tears its ends down too.
func (c *Conn) RemoveLocalAddr(addr seg.Addr) {
	var survivor *Subflow
	for _, sf := range c.subflows {
		if sf.EP.Local != addr && sf.EP.Established() {
			survivor = sf
			break
		}
	}
	for _, sf := range c.subflows {
		if sf.EP.Local != addr {
			continue
		}
		if survivor != nil {
			c.reinjectVia(sf, survivor)
		}
		sf.EP.Abort()
	}
	if survivor != nil {
		survivor.pendingOpts = append(survivor.pendingOpts,
			seg.RemoveAddrOption{AddrID: c.addrID(addr), Addr: addr})
		survivor.EP.PushAck()
	}
	c.pump()
}

// RejoinLocalAddr re-establishes connectivity through an interface
// that previously disappeared: the "walked back into WiFi range" half
// of the §6 handover story (RemoveLocalAddr is the walking-away half).
// The caller must supply a FRESH port on the returning interface —
// reusing the withdrawn 4-tuple races against a stale server-side
// endpoint if the teardown RST was lost during the outage. The address
// slot is matched by IP so the AddrID advertised to the peer stays
// stable across remove/rejoin cycles. No-op (returns nil) if the
// connection is closed, never established, has no live subflow to
// advertise on, or the IP is already served by a live subflow.
func (c *Conn) RejoinLocalAddr(addr seg.Addr) *Subflow {
	if c.isServer || c.closed || !c.established || len(c.knownRemotes) == 0 {
		return nil
	}
	var adv *Subflow
	for _, sf := range c.subflows {
		if !sf.EP.Established() {
			continue
		}
		if sf.EP.Local.IP == addr.IP {
			return nil
		}
		if adv == nil {
			adv = sf
		}
	}
	if adv == nil {
		return nil
	}
	id := -1
	for i, a := range c.localAddrs {
		if a.IP == addr.IP {
			c.localAddrs[i] = addr
			id = i
			break
		}
	}
	if id < 0 {
		id = len(c.localAddrs)
		c.localAddrs = append(c.localAddrs, addr)
	}
	adv.pendingOpts = append(adv.pendingOpts,
		seg.AddAddrOption{AddrID: uint8(id), Addr: addr})
	adv.EP.PushAck()
	sf := c.addSubflow(addr, c.knownRemotes[0], c.label(id))
	sf.Backup = c.backupFlag(id)
	sf.EP.Connect()
	return sf
}

func (c *Conn) addrID(addr seg.Addr) uint8 {
	for i, a := range c.localAddrs {
		if a == addr {
			return uint8(i)
		}
	}
	return 0xFF
}

// onRemoveAddr tears down subflows whose remote end was withdrawn,
// first reinjecting any data still mapped to them onto a survivor.
func (c *Conn) onRemoveAddr(o seg.RemoveAddrOption) {
	var survivor *Subflow
	for _, sf := range c.subflows {
		if sf.EP.Remote != o.Addr && sf.EP.Established() {
			survivor = sf
			break
		}
	}
	for _, sf := range c.subflows {
		if sf.EP.Remote != o.Addr {
			continue
		}
		if survivor != nil {
			c.reinjectVia(sf, survivor)
		}
		sf.EP.Abort()
	}
	c.pump()
}

// Abort closes the whole connection immediately: MP_FASTCLOSE on one
// subflow (RFC 6824 §3.5), RST on the rest.
func (c *Conn) Abort() {
	sent := false
	for _, sf := range c.subflows {
		if !sent && sf.EP.Established() {
			sf.pendingOpts = append(sf.pendingOpts, seg.FastCloseOption{Key: c.peerKey})
			sf.EP.PushAck()
			sf.EP.Abort()
			sent = true
			continue
		}
		sf.EP.Abort()
	}
	c.closed = true // locally initiated: no remote-close callback
}

// onFastClose handles the peer's MP_FASTCLOSE: everything resets now.
func (c *Conn) onFastClose() {
	for _, sf := range c.subflows {
		sf.EP.Abort()
	}
	c.fireClosed()
}

func (c *Conn) fireClosed() {
	if c.closed {
		return
	}
	c.closed = true
	if c.OnRemoteClose != nil {
		c.OnRemoteClose()
	}
}

// reinjectVia copies every un-data-acked mapping of src onto dst.
func (c *Conn) reinjectVia(src, dst *Subflow) {
	for i := range src.mappings {
		m := &src.mappings[i]
		if m.reinjected || m.dataSeq+uint64(m.length) <= c.dataAck {
			continue
		}
		m.reinjected = true
		off := dst.EP.WriteOffset()
		dst.mappings = append(dst.mappings, mapping{dataSeq: m.dataSeq, off: off, length: m.length})
		dst.EP.Write(int(m.length))
		c.Reinjections++
	}
}

// onAddAddr reacts to a peer address advertisement: in 4-path mode the
// client joins the new server address from every local interface.
func (c *Conn) onAddAddr(o seg.AddAddrOption) {
	if c.isServer || !c.joinAdvertised {
		return
	}
	for _, known := range c.knownRemotes {
		if known == o.Addr {
			return
		}
	}
	c.knownRemotes = append(c.knownRemotes, o.Addr)
	for i, la := range c.localAddrs {
		exists := false
		for _, sf := range c.subflows {
			if sf.EP.Local == la && sf.EP.Remote == o.Addr {
				exists = true
				break
			}
		}
		if !exists {
			sf := c.addSubflow(la, o.Addr, c.label(i))
			sf.Backup = c.backupFlag(i)
			sf.EP.Connect()
		}
	}
}

// String renders a debug summary.
func (c *Conn) String() string {
	role := "client"
	if c.isServer {
		role = "server"
	}
	return fmt.Sprintf("mptcp-%s(%d subflows, %d/%d data assigned, dataAck=%d)",
		role, len(c.subflows), c.sndNxtData-initialDataSeq, c.sndEndData-initialDataSeq,
		c.dataAck)
}
