package mptcp

import (
	"testing"
	"testing/quick"

	"mptcplab/internal/sim"
)

func TestReorderInOrderDelivery(t *testing.T) {
	rb := NewReorderBuffer(1)
	var delivered int64
	rb.OnDeliver = func(n int64) { delivered += n }
	samples := []sim.Time{}
	rb.OnSample = func(d sim.Time, sf int) { samples = append(samples, d) }

	rb.Insert(10, 1, 101, 0)
	rb.Insert(20, 101, 201, 0)
	if delivered != 200 {
		t.Errorf("delivered %d, want 200", delivered)
	}
	if rb.Buffered != 0 {
		t.Errorf("buffered %d", rb.Buffered)
	}
	for _, s := range samples {
		if s != 0 {
			t.Errorf("in-order packet got OFO delay %v", s)
		}
	}
	if rb.PacketsInOrder != 2 || rb.PacketsOutOrder != 0 {
		t.Errorf("counters %d/%d", rb.PacketsInOrder, rb.PacketsOutOrder)
	}
}

func TestReorderHoleDelaysDelivery(t *testing.T) {
	rb := NewReorderBuffer(1)
	var delivered int64
	rb.OnDeliver = func(n int64) { delivered += n }
	var ofo []sim.Time
	rb.OnSample = func(d sim.Time, sf int) {
		if d > 0 {
			ofo = append(ofo, d)
		}
	}

	rb.Insert(100*sim.Millisecond, 101, 201, 1) // future data from subflow 1
	if delivered != 0 {
		t.Fatalf("delivered %d before hole filled", delivered)
	}
	if rb.Buffered != 100 || rb.SubflowOFOBytes(1) != 100 {
		t.Errorf("OFO accounting: buffered=%d sf1=%d", rb.Buffered, rb.SubflowOFOBytes(1))
	}
	rb.Insert(250*sim.Millisecond, 1, 101, 0) // the hole
	if delivered != 200 {
		t.Errorf("delivered %d, want 200", delivered)
	}
	if len(ofo) != 1 || ofo[0] != 150*sim.Millisecond {
		t.Errorf("OFO samples %v, want one sample of 150ms", ofo)
	}
	if rb.SubflowOFOBytes(1) != 0 {
		t.Errorf("subflow OFO not drained: %d", rb.SubflowOFOBytes(1))
	}
}

func TestReorderDuplicatesIgnored(t *testing.T) {
	rb := NewReorderBuffer(1)
	var delivered int64
	rb.OnDeliver = func(n int64) { delivered += n }

	rb.Insert(1, 1, 101, 0)
	rb.Insert(2, 1, 101, 0)   // full duplicate of delivered data
	rb.Insert(3, 51, 101, 0)  // partial duplicate
	rb.Insert(4, 201, 301, 1) // future
	rb.Insert(5, 201, 301, 1) // duplicate future
	rb.Insert(6, 151, 251, 0) // overlaps buffered future block
	if rb.Buffered != 150 {
		t.Errorf("buffered %d, want 150 (151..301 minus nothing double-counted)", rb.Buffered)
	}
	rb.Insert(7, 101, 151, 0) // heal
	if delivered != 300 {
		t.Errorf("delivered %d, want 300", delivered)
	}
	if rb.Buffered != 0 {
		t.Errorf("buffered %d after heal", rb.Buffered)
	}
}

// Property: any arrival permutation of a segmented stream delivers
// every byte exactly once, in order, with zero residue.
func TestReorderExactlyOncePropertyRandomPermutation(t *testing.T) {
	f := func(seed int64, nSegs uint8) bool {
		n := int(nSegs%40) + 2
		segSize := uint64(100)
		rng := sim.NewRNG(seed)

		type span struct{ start, end uint64 }
		spans := make([]span, n)
		for i := range spans {
			spans[i] = span{1 + uint64(i)*segSize, 1 + uint64(i+1)*segSize}
		}
		rng.Shuffle(len(spans), func(i, j int) { spans[i], spans[j] = spans[j], spans[i] })
		// Duplicate a few arrivals.
		dups := spans
		if n > 4 {
			dups = append(dups, spans[0], spans[n/2])
		}

		rb := NewReorderBuffer(1)
		var delivered int64
		rb.OnDeliver = func(k int64) { delivered += k }
		for i, sp := range dups {
			rb.Insert(sim.Time(i)*sim.Millisecond, sp.start, sp.end, i%3)
		}
		return delivered == int64(n)*int64(segSize) &&
			rb.Buffered == 0 &&
			rb.RcvNxt() == 1+uint64(n)*segSize
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: per-subflow OFO accounting never goes negative and drains
// to zero once the stream completes.
func TestReorderAccountingProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := sim.NewRNG(seed)
		rb := NewReorderBuffer(0)
		const segs = 30
		order := rng.Perm(segs)
		for i, idx := range order {
			start := uint64(idx) * 50
			rb.Insert(sim.Time(i), start, start+50, idx%4)
			if rb.Buffered < 0 {
				return false
			}
			for sf := 0; sf < 4; sf++ {
				if rb.SubflowOFOBytes(sf) < 0 {
					return false
				}
			}
		}
		return rb.Buffered == 0 && rb.Delivered == segs*50
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestReorderMaxBufferedHighWater(t *testing.T) {
	rb := NewReorderBuffer(0)
	rb.Insert(1, 100, 200, 0)
	rb.Insert(2, 300, 500, 0)
	if rb.MaxBuffered != 300 {
		t.Errorf("MaxBuffered = %d, want 300", rb.MaxBuffered)
	}
	rb.Insert(3, 0, 100, 0)
	if rb.MaxBuffered != 300 {
		t.Errorf("MaxBuffered should not shrink: %d", rb.MaxBuffered)
	}
}
