package mptcp

import (
	"testing"

	"mptcplab/internal/sim"
	"mptcplab/internal/units"
)

// TestMaplessSegmentNeverSpansLiveMapping regression-tests a deadlock:
// after a spurious reinjection pruned a subflow's mapping, a segment
// starting in the orphaned region could extend into the next live
// mapping; its payload carried no DSS map, the receiver discarded it,
// and the connection-level stream had a permanent hole that froze the
// shared receive window. High-jitter 3G paths (spurious RTOs) trigger
// the reinjection path frequently, so a long Sprint transfer exercises
// the bug.
func TestMaplessSegmentNeverSpansLiveMapping(t *testing.T) {
	cell := pathParams{rate: 1600 * units.Kbps, prop: 60 * sim.Millisecond, loss: 0.01, queue: 256 * units.KB}
	wifi := defaultWifi()
	for seed := int64(0); seed < 3; seed++ {
		tn := buildTwoPath(t, wifi, cell, false)
		// Jittery cellular causes spurious timeouts and reinjection.
		tn.cellDown.Jitter = jitterSpikes{}
		cli, srv, _ := tn.download(t, 8*units.MB, DefaultConfig(), false)
		if cli.Reorder().BufferedBytes() != 0 {
			t.Fatalf("seed %d: residue in reorder buffer", seed)
		}
		_ = srv
	}
}

// jitterSpikes adds an occasional delay larger than the RTO floor.
type jitterSpikes struct{}

func (jitterSpikes) Sample(rng *sim.RNG) sim.Time {
	if rng.Bool(0.02) {
		return 600 * sim.Millisecond
	}
	return rng.Duration(0, 30*sim.Millisecond)
}
