package mptcp

import (
	"testing"

	"mptcplab/internal/seg"
	"mptcplab/internal/sim"
	"mptcplab/internal/tcp"
	"mptcplab/internal/units"
)

// A connection closed without ever writing data must still deliver its
// DATA_FIN (on a bare ACK) and tear down cleanly on both sides.
func TestBareDataFinClose(t *testing.T) {
	tn := buildTwoPath(t, defaultWifi(), defaultCell(), false)
	cfg := DefaultConfig()

	srvClosed := false
	srv := NewServer(tn.server, tn.net, tn.srvAddr.Port, cfg, tn.rng.Child("srv"))
	srv.OnConn = func(c *Conn) {
		c.OnRemoteClose = func() {
			srvClosed = true
			c.Close()
		}
	}
	conn := Dial(tn.net, tn.client, DialOpts{
		LocalAddrs: []seg.Addr{tn.wifiAddr, tn.cellAddr},
		ServerAddr: tn.srvAddr,
		Config:     cfg,
	}, tn.rng.Child("cli"))
	cliClosed := false
	conn.OnRemoteClose = func() { cliClosed = true }
	conn.OnEstablished = func() { conn.Close() }

	tn.sim.RunUntil(10 * sim.Second)
	if !srvClosed {
		t.Error("server never saw the client's DATA_FIN")
	}
	if !cliClosed {
		t.Error("client never saw the server's DATA_FIN")
	}
	for _, sf := range conn.Subflows() {
		if st := sf.EP.State(); st != tcp.StateClosed && st != tcp.StateTimeWait {
			t.Errorf("subflow %d state %v after close", sf.ID, st)
		}
	}
}

// A legacy (non-MPTCP) SYN reaches the plain-TCP fallback, as the
// paper's Apache serves non-MPTCP clients.
func TestServerPlainTCPFallback(t *testing.T) {
	tn := buildTwoPath(t, defaultWifi(), defaultCell(), false)
	cfg := DefaultConfig()

	srv := NewServer(tn.server, tn.net, tn.srvAddr.Port, cfg, tn.rng.Child("srv"))
	plainAccepted := false
	srv.OnPlainConn = func(ep *tcp.Endpoint) bool {
		plainAccepted = true
		ep.OnEstablished = func() {
			ep.Write(1000)
			ep.Close()
		}
		return true
	}
	var rcvd int
	ep := tcp.NewEndpoint(tn.client, tn.net, tn.wifiAddr, tn.srvAddr, cfg.TCP, tn.rng.Child("cli"))
	ep.OnDeliver = func(n int) { rcvd += n }
	ep.Connect()
	tn.sim.RunUntil(5 * sim.Second)

	if !plainAccepted {
		t.Fatal("plain TCP SYN not routed to fallback")
	}
	if rcvd != 1000 {
		t.Errorf("plain client received %d of 1000", rcvd)
	}
}

// Without a fallback handler, legacy SYNs are refused and the server
// counts them.
func TestServerRefusesPlainWithoutFallback(t *testing.T) {
	tn := buildTwoPath(t, defaultWifi(), defaultCell(), false)
	cfg := DefaultConfig()
	srv := NewServer(tn.server, tn.net, tn.srvAddr.Port, cfg, tn.rng.Child("srv"))
	ep := tcp.NewEndpoint(tn.client, tn.net, tn.wifiAddr, tn.srvAddr, cfg.TCP, tn.rng.Child("cli"))
	ep.Connect()
	tn.sim.RunUntil(2 * sim.Second)
	if srv.Listener().Refused == 0 {
		t.Error("plain SYN not counted as refused")
	}
	if ep.State() == tcp.StateEstablished {
		t.Error("plain client established against an MPTCP-only server")
	}
}

// Round-robin splits load roughly evenly across symmetric paths and
// still delivers exactly once.
func TestRoundRobinSchedulerFairOnSymmetricPaths(t *testing.T) {
	p := pathParams{rate: 10 * units.Mbps, prop: 20 * sim.Millisecond, queue: 512 * units.KB}
	tn := buildTwoPath(t, p, p, false)
	cfg := DefaultConfig()
	cfg.Scheduler = "round-robin"
	cli, srv, _ := tn.download(t, 8*units.MB, cfg, false)
	var a, b int64
	for i, sf := range srv.Subflows() {
		if i == 0 {
			a = sf.EP.Stats.BytesSent
		} else {
			b += sf.EP.Stats.BytesSent
		}
	}
	frac := float64(a) / float64(a+b)
	if frac < 0.30 || frac > 0.70 {
		t.Errorf("round-robin split %.2f/%.2f on symmetric paths; want near-even", frac, 1-frac)
	}
	if cli.Reorder().BufferedBytes() != 0 {
		t.Errorf("reorder residue after completion")
	}
}

// The redundant scheduler sends every byte on both paths: the
// transfer still delivers exactly once, the sender accounts the extra
// copies as DupTxBytes (not retransmissions), and the receiver
// discards and counts them as DupBytes.
func TestRedundantSchedulerDuplicatesAndDedups(t *testing.T) {
	p := pathParams{rate: 10 * units.Mbps, prop: 20 * sim.Millisecond, queue: 512 * units.KB}
	tn := buildTwoPath(t, p, p, false)
	cfg := DefaultConfig()
	cfg.Scheduler = "redundant"
	size := 2 * units.MB
	cli, srv, _ := tn.download(t, int(size), cfg, false)
	if srv.DupTxBytes == 0 {
		t.Error("server scheduled no duplicate bytes under redundant")
	}
	// Nearly every byte should ride both paths once the second subflow
	// joins; allow slack for the pre-join prefix.
	if srv.DupTxBytes < int64(size)/2 {
		t.Errorf("DupTxBytes = %d, want most of the %d-byte transfer duplicated", srv.DupTxBytes, size)
	}
	rb := cli.Reorder()
	if rb.DupBytes == 0 {
		t.Error("client reorder buffer recorded no duplicate bytes")
	}
	if rb.Delivered != int64(size) {
		t.Errorf("delivered %d, want exactly %d (duplicates must not inflate delivery)", rb.Delivered, size)
	}
	if err := rb.CheckInvariants(); err != nil {
		t.Errorf("reorder invariants after redundant transfer: %v", err)
	}
	// Duplicate copies are fresh subflow sends, not TCP retransmissions:
	// per-path sent bytes exceed the file, yet retransmissions stay
	// bounded by actual loss (none on these clean paths).
	var sent, retrans int64
	for _, sf := range srv.Subflows() {
		sent += sf.EP.Stats.BytesSent
		retrans += sf.EP.Stats.BytesRetrans
	}
	if sent < int64(size)+srv.DupTxBytes {
		t.Errorf("per-path sent bytes %d below delivered+duplicated %d", sent, int64(size)+srv.DupTxBytes)
	}
	if retrans > int64(size)/10 {
		t.Errorf("redundant copies misaccounted as retransmissions: %d", retrans)
	}
}

// Duplicate ADD_ADDR advertisements must not create duplicate subflows.
func TestDuplicateAddAddrIgnored(t *testing.T) {
	tn := buildTwoPath(t, defaultWifi(), defaultCell(), true)
	cfg := DefaultConfig()
	srv := NewServer(tn.server, tn.net, tn.srvAddr.Port, cfg, tn.rng.Child("srv"))
	srv.AdvertiseAddrs = []seg.Addr{tn.srvAddr2, tn.srvAddr2} // duplicated
	srv.OnConn = func(c *Conn) { c.OnData = func(int64) {} }
	conn := Dial(tn.net, tn.client, DialOpts{
		LocalAddrs:     []seg.Addr{tn.wifiAddr, tn.cellAddr},
		ServerAddr:     tn.srvAddr,
		JoinAdvertised: true,
		Config:         cfg,
	}, tn.rng.Child("cli"))
	tn.sim.RunUntil(5 * sim.Second)
	if got := len(conn.Subflows()); got != 4 {
		t.Errorf("client has %d subflows, want exactly 4 despite duplicate ADD_ADDR", got)
	}
}

// A tiny shared receive buffer forces window stalls; the window-update
// path (PushAck after reorder drains) must keep the transfer alive to
// completion.
func TestSmallSharedBufferStillCompletes(t *testing.T) {
	cell := defaultCell()
	cell.prop = 120 * sim.Millisecond
	tn := buildTwoPath(t, defaultWifi(), cell, false)
	cfg := DefaultConfig()
	cfg.RcvBuf = 48 * units.KB
	cfg.TCP.RcvBuf = 48 * units.KB
	cli, _, done := tn.download(t, 2*units.MB, cfg, false)
	if done <= 0 {
		t.Fatal("no completion")
	}
	if cli.Reorder().MaxBuffered > 48*units.KB {
		t.Errorf("reorder buffer grew to %d, beyond the 48KB shared buffer", cli.Reorder().MaxBuffered)
	}
}

// Tokens are stable hashes: both sides derive the same token from the
// same key, and the server indexes connections under both.
func TestTokenRouting(t *testing.T) {
	if token(12345) != token(12345) {
		t.Error("token not deterministic")
	}
	if token(1) == token(2) {
		t.Error("distinct keys collide immediately")
	}
}
