package mptcp

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Scheduler is the packet-scheduling plugin: the connection's pump
// consults it for every placement decision a multipath sender makes.
//
//   - Pick chooses the subflow that receives the next chunk of
//     unassigned data (or -1 when no subflow can accept data).
//   - Duplicates, called after a chunk lands on its primary subflow,
//     names additional subflows that should carry a copy of the same
//     data-sequence range. Single-copy schedulers return nil;
//     redundant schedulers return every other live path. The
//     receiver's reorder buffer discards whichever copies lose the
//     race and accounts them as duplicate bytes.
//   - ReinjectTarget chooses the live subflow that inherits a
//     presumed-dead subflow's un-acked mappings (or -1 to wait).
//
// The v0.86 default (minrtt) prefers the established subflow with the
// lowest smoothed RTT that still has congestion-window space; that
// policy is what makes the WiFi path the workhorse for small flows
// (§4.1) and lets the cellular path take over for large ones.
type Scheduler interface {
	Name() string
	// Pick returns the index of the subflow to use next, or -1 when no
	// subflow can accept data.
	Pick(subflows []*Subflow) int
	// Duplicates returns the indexes of subflows (excluding primary)
	// that should carry a copy of the chunk just placed on primary.
	// The returned slice is only valid until the next call.
	Duplicates(subflows []*Subflow, primary int) []int
	// ReinjectTarget returns the index of the subflow that should
	// inherit a dead subflow's outstanding data, or -1 to defer.
	ReinjectTarget(subflows []*Subflow, dead *Subflow) int
}

// DeadAfterTimeouts is the liveness threshold: a subflow with this
// many consecutive RTOs is presumed down.
const DeadAfterTimeouts = 2

// schedulerMakers maps canonical scheduler names to constructors.
// Parametrized specs ("weighted:3;1") are handled by ParseScheduler.
var schedulerMakers = map[string]func() Scheduler{
	"minrtt":     func() Scheduler { return &MinRTT{} },
	"roundrobin": func() Scheduler { return &RoundRobin{} },
	"weighted":   func() Scheduler { return &Weighted{} },
	"redundant":  func() Scheduler { return &Redundant{} },
	"backup":     func() Scheduler { return &BackupMode{} },
	"blest":      func() Scheduler { return &BLEST{} },
	"adaptive":   func() Scheduler { return &Adaptive{} },
}

// schedulerAliases maps legacy spellings to canonical names, so
// configs and replay tokens from earlier versions keep working.
var schedulerAliases = map[string]string{
	"":            "minrtt",
	"lowest-rtt":  "minrtt",
	"round-robin": "roundrobin",
}

// SchedulerNames lists the canonical scheduler names, sorted.
func SchedulerNames() []string {
	out := make([]string, 0, len(schedulerMakers))
	for name := range schedulerMakers {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ParseScheduler resolves a scheduler spec — a canonical name, a
// legacy alias, or a parametrized form like "weighted:3;2" (static
// per-subflow weights, semicolon-separated so specs nest inside
// comma-separated replay tokens) — or reports a one-line error naming
// the valid choices.
func ParseScheduler(spec string) (Scheduler, error) {
	name, param, hasParam := strings.Cut(spec, ":")
	if canon, ok := schedulerAliases[name]; ok {
		name = canon
	}
	mk, ok := schedulerMakers[name]
	if !ok {
		return nil, fmt.Errorf("mptcp: unknown scheduler %q (valid: %s)",
			spec, strings.Join(SchedulerNames(), ", "))
	}
	if !hasParam {
		return mk(), nil
	}
	if name != "weighted" {
		return nil, fmt.Errorf("mptcp: scheduler %q takes no parameters (got %q)", name, spec)
	}
	var weights []float64
	for _, ws := range strings.Split(param, ";") {
		w, err := strconv.ParseFloat(ws, 64)
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("mptcp: bad weight %q in %q (want positive numbers, e.g. weighted:3;1)", ws, spec)
		}
		weights = append(weights, w)
	}
	return &Weighted{Weights: weights}, nil
}

// ValidateScheduler rejects unknown scheduler specs with a one-line
// error; CLIs call it at flag-parse time so a typo fails fast instead
// of silently running the default policy.
func ValidateScheduler(spec string) error {
	_, err := ParseScheduler(spec)
	return err
}

// NewScheduler returns the named scheduler, falling back to the
// default (minrtt) for unknown names — the lenient construction path
// used inside Dial and the server accept path, where a config has
// already passed validation or deliberately carries the default.
func NewScheduler(spec string) Scheduler {
	s, err := ParseScheduler(spec)
	if err != nil {
		return &MinRTT{}
	}
	return s
}

// singleCopy supplies the default duplicate-transmission and
// reinjection policies shared by every single-copy scheduler: no
// duplicates, and dead subflows hand their data to the lowest-RTT
// live path.
type singleCopy struct{}

// Duplicates implements Scheduler: single-copy schedulers never
// duplicate.
func (singleCopy) Duplicates([]*Subflow, int) []int { return nil }

// ReinjectTarget implements Scheduler: prefer the live (established,
// not itself timing out) subflow with the lowest smoothed RTT.
func (singleCopy) ReinjectTarget(subflows []*Subflow, dead *Subflow) int {
	best := -1
	var bestRTT float64
	for i, sf := range subflows {
		if sf == dead || !sf.EP.Established() {
			continue
		}
		if sf.EP.ConsecutiveTimeouts() >= DeadAfterTimeouts {
			continue
		}
		if rtt := sf.EP.SRTT(); best < 0 || rtt < bestRTT {
			best, bestRTT = i, rtt
		}
	}
	return best
}

// MinRTT is the Linux MPTCP default scheduler (v0.86 "lowest-rtt").
type MinRTT struct{ singleCopy }

// Name implements Scheduler.
func (*MinRTT) Name() string { return "minrtt" }

// Pick implements Scheduler.
func (*MinRTT) Pick(subflows []*Subflow) int {
	best := -1
	var bestRTT float64
	for i, sf := range subflows {
		if !sf.usable() {
			continue
		}
		rtt := sf.EP.SRTT()
		if best < 0 || rtt < bestRTT {
			best, bestRTT = i, rtt
		}
	}
	return best
}

// RoundRobin rotates across live subflows regardless of RTT — an
// ablation showing why the default scheduler matters for reordering
// delay. The rotation is strict: when the subflow whose turn it is
// cannot accept data right now, the scheduler waits for it rather
// than skipping ahead — under an ACK-clocked sender, window space
// opens on one subflow at a time, so a skip-ahead rotation would
// degenerate into fill-whatever-has-space and become observationally
// identical to minrtt. Presumed-dead subflows (DeadAfterTimeouts
// consecutive RTOs) drop out of the rotation so a failed path cannot
// wedge the connection.
type RoundRobin struct {
	singleCopy
	next int
}

// Name implements Scheduler.
func (*RoundRobin) Name() string { return "roundrobin" }

// Pick implements Scheduler.
func (r *RoundRobin) Pick(subflows []*Subflow) int {
	n := len(subflows)
	for k := 0; k < n; k++ {
		i := (r.next + k) % n
		sf := subflows[i]
		if !sf.EP.Established() || sf.EP.ConsecutiveTimeouts() >= DeadAfterTimeouts {
			continue // dead or unjoined paths drop out of the rotation
		}
		if !sf.usable() {
			return -1 // strict rotation: wait for this path's turn
		}
		r.next = i + 1
		return i
	}
	return -1
}

// Weighted splits traffic across subflows in proportion to static
// per-subflow weights (by subflow index; paths beyond the weight list
// get weight 1). It is a deficit scheduler: each pick goes to the
// usable subflow whose carried bytes are furthest below its weighted
// fair share, so the byte split converges on the weight ratio without
// per-chunk randomness.
type Weighted struct {
	singleCopy
	Weights []float64
	spec    string
}

// Name implements Scheduler.
func (w *Weighted) Name() string {
	if len(w.Weights) == 0 {
		return "weighted"
	}
	if w.spec == "" {
		parts := make([]string, len(w.Weights))
		for i, wt := range w.Weights {
			parts[i] = strconv.FormatFloat(wt, 'g', -1, 64)
		}
		w.spec = "weighted:" + strings.Join(parts, ";")
	}
	return w.spec
}

func (w *Weighted) weight(i int) float64 {
	if i < len(w.Weights) {
		return w.Weights[i]
	}
	return 1
}

// Pick implements Scheduler: lowest carried-bytes/weight deficit wins;
// ties go to the lower index. The argmin runs over every live
// established subflow, and when the most-behind subflow cannot accept
// data right now the scheduler waits for it instead of overshooting
// another path's share — the gate that keeps the byte split on the
// weight ratio even under a saturating sender, where a fill-anything
// policy would degenerate to cwnd-proportional placement. Presumed-
// dead subflows (DeadAfterTimeouts consecutive RTOs) are excluded so
// a failed path cannot wedge the connection.
func (w *Weighted) Pick(subflows []*Subflow) int {
	best := -1
	var bestScore float64
	for i, sf := range subflows {
		if !sf.EP.Established() || sf.EP.ConsecutiveTimeouts() >= DeadAfterTimeouts {
			continue
		}
		score := float64(sf.EP.WriteOffset()) / w.weight(i)
		if best < 0 || score < bestScore {
			best, bestScore = i, score
		}
	}
	if best < 0 || !subflows[best].usable() {
		return -1
	}
	return best
}

// Redundant duplicates every chunk on all live subflows: the primary
// copy goes to the lowest-RTT path, and every other established path
// carries a duplicate of the same data-sequence range. Latency and
// loss resilience improve — a single-path blackout costs zero stall,
// since the surviving copies keep the receiver's in-order edge moving
// — at the price of sending each byte once per path. The receiver
// discards the losing copies and accounts them (ReorderBuffer
// DupBytes / Conn DupTxBytes), so goodput metrics stay honest.
type Redundant struct {
	minrtt MinRTT
	dups   []int
}

// Name implements Scheduler.
func (*Redundant) Name() string { return "redundant" }

// Pick implements Scheduler: the primary copy follows the default
// lowest-RTT policy.
func (r *Redundant) Pick(subflows []*Subflow) int {
	return r.minrtt.Pick(subflows)
}

// Duplicates implements Scheduler: every established subflow other
// than the primary carries a copy. Subflows without free window still
// qualify — the copy queues in their send buffer and drains as ACKs
// arrive, which is exactly what keeps data flowing when the primary
// path blacks out.
func (r *Redundant) Duplicates(subflows []*Subflow, primary int) []int {
	r.dups = r.dups[:0]
	for i, sf := range subflows {
		if i == primary || !sf.EP.Established() {
			continue
		}
		r.dups = append(r.dups, i)
	}
	return r.dups
}

// ReinjectTarget implements Scheduler. Chunks placed before a path
// joined exist on only one subflow, so reinjection still matters on
// early-transfer deaths; the receiver dedups any copies that did make
// it across.
func (r *Redundant) ReinjectTarget(subflows []*Subflow, dead *Subflow) int {
	return singleCopy{}.ReinjectTarget(subflows, dead)
}

// BackupMode implements the handover policy of Paasch et al. (CellNet
// 2012), which the paper cites in §7: backup subflows carry data only
// while every regular subflow looks dead — not yet established, or
// with repeated unanswered retransmission timeouts. When a regular
// path recovers (its next ACK resets the timeout count), traffic moves
// back automatically.
type BackupMode struct{ singleCopy }

// Name implements Scheduler.
func (*BackupMode) Name() string { return "backup" }

// Pick implements Scheduler.
func (*BackupMode) Pick(subflows []*Subflow) int {
	pick := func(backup bool) int {
		best := -1
		var bestRTT float64
		for i, sf := range subflows {
			if sf.Backup != backup || !sf.usable() {
				continue
			}
			if !backup && sf.EP.ConsecutiveTimeouts() >= DeadAfterTimeouts {
				continue
			}
			rtt := sf.EP.SRTT()
			if best < 0 || rtt < bestRTT {
				best, bestRTT = i, rtt
			}
		}
		return best
	}
	if i := pick(false); i >= 0 {
		return i
	}
	// All regular subflows are unusable or presumed dead: are any of
	// them actually alive but merely cwnd-limited? If so, wait for
	// them rather than waking the backup path.
	for _, sf := range subflows {
		if !sf.Backup && sf.EP.Established() && sf.EP.ConsecutiveTimeouts() < DeadAfterTimeouts {
			return -1
		}
	}
	return pick(true)
}
