package mptcp

// Scheduler picks which subflow receives the next chunk of unassigned
// data. The v0.86 default scheduler prefers the established subflow
// with the lowest smoothed RTT that still has congestion-window space;
// that policy is what makes the WiFi path the workhorse for small
// flows (§4.1) and lets the cellular path take over for large ones.
type Scheduler interface {
	Name() string
	// Pick returns the index of the subflow to use next, or -1 when no
	// subflow can accept data.
	Pick(subflows []*Subflow) int
}

// NewScheduler returns the named scheduler ("lowest-rtt",
// "round-robin", or "backup").
func NewScheduler(name string) Scheduler {
	switch name {
	case "", "lowest-rtt":
		return &LowestRTT{}
	case "round-robin":
		return &RoundRobin{}
	case "backup":
		return &BackupMode{}
	default:
		return &LowestRTT{}
	}
}

// LowestRTT is the Linux MPTCP default scheduler.
type LowestRTT struct{}

// Name implements Scheduler.
func (*LowestRTT) Name() string { return "lowest-rtt" }

// Pick implements Scheduler.
func (*LowestRTT) Pick(subflows []*Subflow) int {
	best := -1
	var bestRTT float64
	for i, sf := range subflows {
		if !sf.usable() {
			continue
		}
		rtt := sf.EP.SRTT()
		if best < 0 || rtt < bestRTT {
			best, bestRTT = i, rtt
		}
	}
	return best
}

// RoundRobin rotates across usable subflows regardless of RTT — an
// ablation showing why the default scheduler matters for reordering
// delay.
type RoundRobin struct {
	next int
}

// Name implements Scheduler.
func (*RoundRobin) Name() string { return "round-robin" }

// Pick implements Scheduler.
func (r *RoundRobin) Pick(subflows []*Subflow) int {
	n := len(subflows)
	for k := 0; k < n; k++ {
		i := (r.next + k) % n
		if subflows[i].usable() {
			r.next = i + 1
			return i
		}
	}
	return -1
}

// BackupMode implements the handover policy of Paasch et al. (CellNet
// 2012), which the paper cites in §7: backup subflows carry data only
// while every regular subflow looks dead — not yet established, or
// with repeated unanswered retransmission timeouts. When a regular
// path recovers (its next ACK resets the timeout count), traffic moves
// back automatically.
type BackupMode struct{}

// DeadAfterTimeouts is the liveness threshold: a subflow with this
// many consecutive RTOs is presumed down.
const DeadAfterTimeouts = 2

// Name implements Scheduler.
func (*BackupMode) Name() string { return "backup" }

// Pick implements Scheduler.
func (*BackupMode) Pick(subflows []*Subflow) int {
	pick := func(backup bool) int {
		best := -1
		var bestRTT float64
		for i, sf := range subflows {
			if sf.Backup != backup || !sf.usable() {
				continue
			}
			if !backup && sf.EP.ConsecutiveTimeouts() >= DeadAfterTimeouts {
				continue
			}
			rtt := sf.EP.SRTT()
			if best < 0 || rtt < bestRTT {
				best, bestRTT = i, rtt
			}
		}
		return best
	}
	if i := pick(false); i >= 0 {
		return i
	}
	// All regular subflows are unusable or presumed dead: are any of
	// them actually alive but merely cwnd-limited? If so, wait for
	// them rather than waking the backup path.
	for _, sf := range subflows {
		if !sf.Backup && sf.EP.Established() && sf.EP.ConsecutiveTimeouts() < DeadAfterTimeouts {
			return -1
		}
	}
	return pick(true)
}
