package mptcp

import (
	"testing"

	"mptcplab/internal/seg"
	"mptcplab/internal/sim"
	"mptcplab/internal/tcp"
	"mptcplab/internal/units"
)

// The full handover round trip: WiFi disappears mid-download
// (RemoveLocalAddr), the transfer survives on cellular, WiFi returns
// (RejoinLocalAddr on a fresh port) and a new subflow joins and
// carries data again — the chaos layer's "storm" primitive.
func TestRejoinLocalAddrAfterOutage(t *testing.T) {
	tn := buildTwoPath(t, defaultWifi(), defaultCell(), false)
	cfg := DefaultConfig()
	size := int64(24 * units.MB)

	srv := NewServer(tn.server, tn.net, tn.srvAddr.Port, cfg, tn.rng.Child("srv"))
	srv.OnConn = func(c *Conn) {
		c.OnData = func(int64) {
			if c.BytesWritten() == 0 {
				c.Write(int(size))
				c.Close()
			}
		}
	}
	var rcvd int64
	conn := Dial(tn.net, tn.client, DialOpts{
		LocalAddrs: []seg.Addr{tn.wifiAddr, tn.cellAddr},
		Labels:     []string{"wifi", "cell"},
		ServerAddr: tn.srvAddr,
		Config:     cfg,
	}, tn.rng.Child("cli"))
	conn.OnData = func(n int64) { rcvd += n }
	conn.OnRemoteClose = func() { conn.Close() }
	conn.OnEstablished = func() { conn.Write(64) }

	freshWifi := seg.Addr{IP: tn.wifiAddr.IP, Port: tn.wifiAddr.Port + 1}
	var rejoined *Subflow
	tn.sim.At(1*sim.Second, "wifi-gone", func() {
		tn.wifiUp.SetDown(true)
		tn.wifiDown.SetDown(true)
		conn.RemoveLocalAddr(tn.wifiAddr)
	})
	tn.sim.At(3*sim.Second, "wifi-back", func() {
		tn.wifiUp.SetDown(false)
		tn.wifiDown.SetDown(false)
		rejoined = conn.RejoinLocalAddr(freshWifi)
	})
	tn.sim.RunUntil(3 * 60 * sim.Second)

	if rcvd != size {
		t.Fatalf("received %d of %d across remove+rejoin", rcvd, size)
	}
	if rejoined == nil {
		t.Fatal("RejoinLocalAddr returned nil on an established connection")
	}
	if !rejoined.EP.Established() && rejoined.EP.State() != tcp.StateClosed {
		t.Errorf("rejoined wifi subflow never established (state %v)", rejoined.EP.State())
	}
	// The rejoined slot must reuse the wifi AddrID (matched by IP), not
	// mint a new address slot for every flap.
	if got := conn.addrID(freshWifi); got != 0 {
		t.Errorf("rejoined addr got AddrID %d, want the original wifi slot 0", got)
	}
}

// Rejoin is a guarded no-op in every state where joining is wrong:
// before establishment, after close, while the IP is already live.
func TestRejoinLocalAddrGuards(t *testing.T) {
	tn := buildTwoPath(t, defaultWifi(), defaultCell(), false)
	cfg := DefaultConfig()
	srv := NewServer(tn.server, tn.net, tn.srvAddr.Port, cfg, tn.rng.Child("srv"))
	srv.OnConn = func(c *Conn) {
		c.OnData = func(int64) {
			if c.BytesWritten() == 0 {
				c.Write(1 << 20)
				c.Close()
			}
		}
	}
	conn := Dial(tn.net, tn.client, DialOpts{
		LocalAddrs: []seg.Addr{tn.wifiAddr, tn.cellAddr},
		ServerAddr: tn.srvAddr,
		Config:     cfg,
	}, tn.rng.Child("cli"))
	conn.OnRemoteClose = func() { conn.Close() }
	conn.OnEstablished = func() { conn.Write(64) }

	// Before the handshake completes: nothing to advertise on.
	if sf := conn.RejoinLocalAddr(seg.Addr{IP: tn.wifiAddr.IP, Port: 9999}); sf != nil {
		t.Error("rejoin before establishment should be a no-op")
	}
	tn.sim.RunUntil(30 * sim.Second)

	// IP already live on an established subflow.
	nBefore := len(conn.Subflows())
	if sf := conn.RejoinLocalAddr(seg.Addr{IP: tn.cellAddr.IP, Port: 9998}); sf != nil {
		t.Error("rejoin of a live IP should be a no-op")
	}
	if len(conn.Subflows()) != nBefore {
		t.Errorf("guarded rejoin grew subflows %d -> %d", nBefore, len(conn.Subflows()))
	}

	// After close.
	if sf := conn.RejoinLocalAddr(seg.Addr{IP: [4]byte{9, 9, 9, 9}, Port: 1}); sf != nil {
		t.Error("rejoin after close should be a no-op")
	}
}
