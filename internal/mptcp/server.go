package mptcp

import (
	"mptcplab/internal/netem"
	"mptcplab/internal/seg"
	"mptcplab/internal/sim"
	"mptcplab/internal/tcp"
)

// Server accepts MPTCP connections on a port: SYNs carrying MP_CAPABLE
// create connections, SYNs carrying MP_JOIN attach subflows to them by
// token, and plain-TCP SYNs fall back to a regular endpoint (as the
// paper's Apache does for non-MPTCP clients).
type Server struct {
	cfg Config
	lis *tcp.Listener
	net *netem.Network
	rng *sim.RNG

	// AdvertiseAddrs are secondary server addresses announced via
	// ADD_ADDR after a connection establishes (4-path scenarios).
	AdvertiseAddrs []seg.Addr

	// OnConn is invoked for each new MPTCP connection, at accept time
	// (before the SYN-ACK), so the application can install callbacks.
	OnConn func(c *Conn)

	// OnPlainConn, if set, accepts non-MPTCP clients on the same port
	// with a plain TCP endpoint; otherwise such SYNs are refused.
	OnPlainConn func(ep *tcp.Endpoint) bool

	conns        map[uint32]*Conn          // by either side's token
	pendingJoins map[uint32][]*seg.Segment // joins that raced MP_CAPABLE

	// Stats.
	AcceptedConns, AcceptedJoins, OrphanJoins uint64
}

// NewServer listens for MPTCP on host:port.
func NewServer(host *netem.Host, network *netem.Network, port uint16, cfg Config, rng *sim.RNG) *Server {
	if cfg.Controller == nil {
		cfg = DefaultConfig()
	}
	if cfg.RcvBuf == 0 {
		cfg.RcvBuf = cfg.TCP.RcvBuf
	}
	s := &Server{
		cfg:          cfg,
		net:          network,
		rng:          rng.Child("mptcp-server"),
		conns:        make(map[uint32]*Conn),
		pendingJoins: make(map[uint32][]*seg.Segment),
	}
	s.lis = tcp.Listen(host, network, port, cfg.TCP, s.rng)
	s.lis.OnAccept = s.accept
	return s
}

// Listener exposes the underlying TCP listener.
func (s *Server) Listener() *tcp.Listener { return s.lis }

func (s *Server) accept(ep *tcp.Endpoint, syn *seg.Segment) bool {
	if o := syn.MPTCP(seg.SubMPCapable); o != nil {
		return s.acceptCapable(ep, o.(seg.MPCapableOption))
	}
	if o := syn.MPTCP(seg.SubMPJoin); o != nil {
		return s.acceptJoin(ep, o.(seg.MPJoinOption), syn)
	}
	if s.OnPlainConn != nil {
		return s.OnPlainConn(ep)
	}
	return false
}

// acceptCapable creates the server side of a new MPTCP connection.
func (s *Server) acceptCapable(ep *tcp.Endpoint, o seg.MPCapableOption) bool {
	c := &Conn{
		cfg:        s.cfg,
		sched:      NewScheduler(s.cfg.Scheduler),
		net:        s.net,
		host:       nil, // subflows carry their own host binding
		sim:        s.net.Sim(),
		rng:        s.rng.Child("conn"),
		isServer:   true,
		localKey:   uint64(s.rng.Int63()) | 1,
		peerKey:    o.Key,
		server:     s,
		sndNxtData: initialDataSeq,
		sndEndData: initialDataSeq,
	}
	c.initReorder()
	c.StartedAt = c.sim.Now()
	s.conns[c.LocalToken()] = c
	s.conns[token(c.peerKey)] = c
	s.AcceptedConns++

	s.wireSubflow(c, ep, "first")
	if s.OnConn != nil {
		s.OnConn(c)
	}
	// Flush any join SYNs that arrived before the MP_CAPABLE SYN
	// (simultaneous-SYN mode).
	if held := s.pendingJoins[token(c.peerKey)]; len(held) > 0 {
		delete(s.pendingJoins, token(c.peerKey))
		for _, hs := range held {
			s.lis.Incoming(hs)
		}
	}
	return true
}

// acceptJoin attaches a joining subflow to an existing connection, or
// holds the SYN briefly if its MP_CAPABLE sibling hasn't arrived yet.
func (s *Server) acceptJoin(ep *tcp.Endpoint, o seg.MPJoinOption, syn *seg.Segment) bool {
	c, ok := s.conns[o.Token]
	if !ok {
		// Simultaneous SYNs can race ahead of their MP_CAPABLE sibling:
		// park the original SYN and replay it through the listener when
		// the connection appears. Park each 4-tuple once — a client
		// stuck in SYN_SENT retransmits the same join, and replaying
		// both copies would create two server endpoints (with two
		// different ISSs) for one subflow.
		for _, hs := range s.pendingJoins[o.Token] {
			if hs.Src == syn.Src && hs.Dst == syn.Dst {
				return false
			}
		}
		s.OrphanJoins++
		s.pendingJoins[o.Token] = append(s.pendingJoins[o.Token], syn.Clone())
		return false
	}
	s.AcceptedJoins++
	sf := s.wireSubflow(c, ep, "join")
	// Honor the client's B bit: hold this subflow in reserve.
	sf.Backup = o.Backup
	return true
}

// wireSubflow adopts a listener-created endpoint as a connection
// subflow. It mirrors Conn.addSubflow but for passive opens.
func (s *Server) wireSubflow(c *Conn, ep *tcp.Endpoint, label string) *Subflow {
	sf := &Subflow{
		ID:    len(c.subflows),
		Label: label,
		conn:  c,
		EP:    ep,
	}
	sf.dlv.Init(DefaultRateWindow)
	sf.placed.Init(DefaultRateWindow)
	c.subflows = append(c.subflows, sf)
	c.flows = append(c.flows, ep)
	// The listener created ep with the plain-TCP config; as a subflow
	// it must run the connection's (possibly coupled) controller, just
	// like an actively opened subflow.
	ep.SetController(c.cfg.Controller)
	for i, other := range c.subflows {
		other.EP.SetCoupled(c.flows, i)
	}
	ep.BuildOptions = func(sg *seg.Segment, kind tcp.SegKind) { c.buildOptions(sf, sg, kind) }
	ep.SegmentLimit = func(off int64, n int) int { return c.segmentLimit(sf, off, n) }
	ep.WindowOverride = c.sharedWindow
	ep.OnSegmentArrival = func(sg *seg.Segment) { c.onSegment(sf, sg) }
	ep.OnEstablished = func() { c.onSubflowEstablished(sf) }
	ep.OnSendReady = func() { c.pump() }
	ep.OnAcked = func(n int64) { c.noteDelivered(sf, n); c.pump() }
	ep.OnTimeout = func(consecutive int) { c.onSubflowTimeout(sf, consecutive) }
	return sf
}
