package mptcp

import (
	"fmt"
)

// CheckInvariants verifies the connection's data-sequence bookkeeping:
// per-subflow mapping structure, data-level ACK bounds, reassembly
// buffer consistency, and receive-buffer occupancy against the
// advertised shared buffer. It is the invariant checker's observation
// point into MPTCP state and costs nothing unless called.
func (c *Conn) CheckInvariants() error {
	if c.sndNxtData > c.sndEndData {
		return fmt.Errorf("mptcp %s: assigned data %d beyond written %d", c.Name, c.sndNxtData, c.sndEndData)
	}
	if c.dataAck > c.sndNxtData {
		return fmt.Errorf("mptcp %s: peer data-ACK %d beyond assigned data %d", c.Name, c.dataAck, c.sndNxtData)
	}

	for _, sf := range c.subflows {
		var prevEnd int64
		for i, m := range sf.mappings {
			if m.length <= 0 {
				return fmt.Errorf("mptcp %s sf%d: mapping %d empty (len %d)", c.Name, sf.ID, i, m.length)
			}
			if m.off < 0 {
				return fmt.Errorf("mptcp %s sf%d: mapping %d negative offset %d", c.Name, sf.ID, i, m.off)
			}
			if i > 0 && m.off < prevEnd {
				// A subflow byte covered by two mappings could carry two
				// different data sequences: exactly the corruption the
				// checker exists to catch.
				return fmt.Errorf("mptcp %s sf%d: mapping %d offset %d overlaps previous end %d",
					c.Name, sf.ID, i, m.off, prevEnd)
			}
			prevEnd = m.off + m.length
			if m.dataSeq < initialDataSeq {
				return fmt.Errorf("mptcp %s sf%d: mapping %d dataSeq %d below initial", c.Name, sf.ID, i, m.dataSeq)
			}
			if end := m.dataSeq + uint64(m.length); end > c.sndNxtData {
				return fmt.Errorf("mptcp %s sf%d: mapping %d maps unassigned data (end %d > %d)",
					c.Name, sf.ID, i, end, c.sndNxtData)
			}
		}
	}

	if err := c.reorder.CheckInvariants(); err != nil {
		return fmt.Errorf("mptcp %s: %w", c.Name, err)
	}
	if occ := c.reorder.BufferedBytes(); occ > int64(c.cfg.RcvBuf) {
		return fmt.Errorf("mptcp %s: reorder buffer holds %d bytes, advertised buffer is %v", c.Name, occ, c.cfg.RcvBuf)
	}
	if c.peerFinSeq > 0 && c.reorder.RcvNxt() > c.peerFinSeq {
		return fmt.Errorf("mptcp %s: delivered past peer DATA_FIN (%d > %d)", c.Name, c.reorder.RcvNxt(), c.peerFinSeq)
	}
	return nil
}
