package mptcp

import "mptcplab/internal/sim"

// The adaptive scheduler needs to know how fast each path is delivering
// *right now*, not on average since the handshake: a 5G mmWave path
// that moved 40 MB before walking into a fade still deserves a weight
// of ~zero while the fade lasts. RateEstimator measures a windowed
// byte rate over a small ring of fixed-duration buckets — O(1) memory,
// O(1) amortized per sample — so every subflow can afford one for
// delivered (cumulatively ACKed) bytes and one for scheduled bytes.

// rateBuckets is the ring size; window resolution is Window/rateBuckets.
const rateBuckets = 8

// DefaultRateWindow is the estimation window used for the per-subflow
// delivery-rate telemetry: long enough to smooth ACK-clock burstiness
// over several cellular RTTs, short enough that a mmWave blockage fade
// (hundreds of milliseconds to seconds) drains the estimate before the
// scheduler has placed much more data on the dying path.
const DefaultRateWindow = 1 * sim.Second

// RateEstimator is a windowed byte-rate estimator over virtual time.
// The zero value is unusable; call Init (or construct with a window)
// before Add/Rate. Time must not run backwards — out-of-order samples
// are folded into the current bucket rather than corrupting the ring.
type RateEstimator struct {
	window    sim.Time
	bucketDur sim.Time
	buckets   [rateBuckets]int64
	total     int64
	cur       int      // index of the bucket covering curStart..+bucketDur
	curStart  sim.Time // left edge of the current bucket
	started   bool     // true once the first sample anchors the grid
}

// Init sets the estimation window and clears all state. A non-positive
// window falls back to DefaultRateWindow.
func (r *RateEstimator) Init(window sim.Time) {
	if window <= 0 {
		window = DefaultRateWindow
	}
	*r = RateEstimator{window: window, bucketDur: window / rateBuckets}
}

// advance rotates the ring forward until the bucket grid covers now.
// Monotone by construction: a stale now (before the current bucket)
// rotates nothing, and a jump of any size lands on the aligned grid
// position in at most rateBuckets steps.
func (r *RateEstimator) advance(now sim.Time) {
	if r.bucketDur <= 0 {
		r.Init(r.window)
	}
	if !r.started {
		r.started = true
		// Anchor the grid on the first observation.
		r.curStart = now - now%r.bucketDur
		return
	}
	if now < r.curStart+r.bucketDur {
		return
	}
	steps := int64((now - r.curStart) / r.bucketDur)
	if steps >= rateBuckets {
		// The whole window expired: clear everything, re-anchor.
		r.buckets = [rateBuckets]int64{}
		r.total = 0
		r.curStart = now - now%r.bucketDur
		return
	}
	for i := int64(0); i < steps; i++ {
		r.cur = (r.cur + 1) % rateBuckets
		r.total -= r.buckets[r.cur]
		r.buckets[r.cur] = 0
		r.curStart += r.bucketDur
	}
}

// Add records n bytes observed at virtual time now.
func (r *RateEstimator) Add(now sim.Time, n int64) {
	if n <= 0 {
		return
	}
	r.advance(now)
	r.buckets[r.cur] += n
	r.total += n
}

// Rate returns the windowed byte rate (bytes per second) as of now.
// A path that has never delivered — or has delivered nothing within
// the window — reports exactly 0; the estimator never divides by zero
// and never produces NaN or Inf.
func (r *RateEstimator) Rate(now sim.Time) float64 {
	if r.bucketDur <= 0 || !r.started {
		return 0
	}
	r.advance(now)
	if r.total <= 0 {
		return 0
	}
	span := r.window.Seconds()
	if span <= 0 {
		return 0
	}
	return float64(r.total) / span
}

// Total returns the bytes currently inside the window (advanced to now).
func (r *RateEstimator) Total(now sim.Time) int64 {
	if r.bucketDur <= 0 || !r.started {
		return 0
	}
	r.advance(now)
	return r.total
}
