// Package mptcp implements Multipath TCP over the tcp package's
// subflow endpoints: MP_CAPABLE / ADD_ADDR / MP_JOIN connection
// establishment (with the stock delayed second SYN of Linux MPTCP
// v0.86 or the paper's simultaneous-SYN patch, §4.1.2), data-sequence
// mappings (DSS), a lowest-RTT packet scheduler, coupled congestion
// control across subflows, a shared receive buffer with data-level
// reordering, and the optional receive-buffer penalization the paper
// removes for its measurements (§3.1).
package mptcp

import (
	"sort"

	"mptcplab/internal/sim"
)

// ofoBlock is one received data-sequence range waiting (or not) for
// earlier data, tagged with the subflow that delivered it.
type ofoBlock struct {
	start, end uint64
	arrivedAt  sim.Time
	subflow    int
}

// ReorderBuffer assembles connection-level data from subflow
// deliveries. Packets whose data sequence number is not yet in order
// wait here — the paper's out-of-order delay (§3.3) is exactly the
// residence time this buffer measures.
type ReorderBuffer struct {
	rcvNxt uint64
	blocks []ofoBlock // sorted by start, non-overlapping

	// OnDeliver receives newly in-order byte counts.
	OnDeliver func(n int64)
	// OnSample receives one out-of-order delay observation per
	// delivered packet (zero for packets already in order on arrival).
	OnSample func(d sim.Time, subflow int)

	// perSubflowOFO tracks buffered out-of-order bytes by subflow for
	// the penalization heuristic.
	perSubflowOFO map[int]int64

	// Stats.
	Delivered       int64 // bytes handed to the application
	Buffered        int64 // bytes currently waiting out of order
	MaxBuffered     int64
	PacketsInOrder  uint64
	PacketsOutOrder uint64
}

// NewReorderBuffer returns an empty buffer expecting data sequence
// numbers to start at initialSeq.
func NewReorderBuffer(initialSeq uint64) *ReorderBuffer {
	return &ReorderBuffer{rcvNxt: initialSeq, perSubflowOFO: make(map[int]int64)}
}

// RcvNxt reports the next expected data sequence number.
func (b *ReorderBuffer) RcvNxt() uint64 { return b.rcvNxt }

// BufferedBytes reports bytes currently held out of order.
func (b *ReorderBuffer) BufferedBytes() int64 { return b.Buffered }

// SubflowOFOBytes reports the out-of-order bytes attributable to one
// subflow.
func (b *ReorderBuffer) SubflowOFOBytes(subflow int) int64 { return b.perSubflowOFO[subflow] }

// Insert records the arrival of data [start, end) from subflow at time
// now, delivering any newly contiguous data.
func (b *ReorderBuffer) Insert(now sim.Time, start, end uint64, subflow int) {
	if end <= start {
		return
	}
	// Trim data we already delivered (subflow-level retransmissions
	// can re-present old ranges).
	if start < b.rcvNxt {
		start = b.rcvNxt
	}
	if end <= start {
		return
	}
	// Trim against already-buffered ranges so accounting stays exact.
	for _, blk := range b.blocks {
		if blk.start <= start && end <= blk.end {
			return // fully duplicate
		}
	}

	if start == b.rcvNxt {
		// In order on arrival.
		b.PacketsInOrder++
		if b.OnSample != nil {
			b.OnSample(0, subflow)
		}
		b.rcvNxt = end
		delivered := int64(end - start)
		b.drain(now, &delivered)
		if b.OnDeliver != nil && delivered > 0 {
			b.OnDeliver(delivered)
		}
		b.Delivered += delivered
		return
	}

	// Out of order: store (splitting around existing blocks).
	b.PacketsOutOrder++
	b.insertBlock(ofoBlock{start: start, end: end, arrivedAt: now, subflow: subflow})
}

// insertBlock adds a range, discarding overlap with stored blocks.
func (b *ReorderBuffer) insertBlock(nb ofoBlock) {
	// Carve nb against existing blocks; keep simple O(n) given
	// buffers hold at most a few hundred blocks.
	pieces := []ofoBlock{nb}
	for _, ex := range b.blocks {
		var next []ofoBlock
		for _, p := range pieces {
			// Subtract ex from p.
			if ex.end <= p.start || p.end <= ex.start {
				next = append(next, p)
				continue
			}
			if p.start < ex.start {
				next = append(next, ofoBlock{p.start, ex.start, p.arrivedAt, p.subflow})
			}
			if ex.end < p.end {
				next = append(next, ofoBlock{ex.end, p.end, p.arrivedAt, p.subflow})
			}
		}
		pieces = next
		if len(pieces) == 0 {
			return
		}
	}
	for _, p := range pieces {
		b.blocks = append(b.blocks, p)
		n := int64(p.end - p.start)
		b.Buffered += n
		b.perSubflowOFO[p.subflow] += n
	}
	if b.Buffered > b.MaxBuffered {
		b.MaxBuffered = b.Buffered
	}
	sort.Slice(b.blocks, func(i, j int) bool { return b.blocks[i].start < b.blocks[j].start })
}

// drain advances rcvNxt across contiguous buffered blocks, emitting
// out-of-order delay samples for each as it becomes deliverable.
func (b *ReorderBuffer) drain(now sim.Time, delivered *int64) {
	i := 0
	for ; i < len(b.blocks); i++ {
		blk := b.blocks[i]
		if blk.start > b.rcvNxt {
			break
		}
		n := int64(blk.end - blk.start)
		b.Buffered -= n
		b.perSubflowOFO[blk.subflow] -= n
		if blk.end > b.rcvNxt {
			*delivered += int64(blk.end - b.rcvNxt)
			b.rcvNxt = blk.end
		}
		if b.OnSample != nil {
			b.OnSample(now-blk.arrivedAt, blk.subflow)
		}
	}
	b.blocks = b.blocks[i:]
}
