// Package mptcp implements Multipath TCP over the tcp package's
// subflow endpoints: MP_CAPABLE / ADD_ADDR / MP_JOIN connection
// establishment (with the stock delayed second SYN of Linux MPTCP
// v0.86 or the paper's simultaneous-SYN patch, §4.1.2), data-sequence
// mappings (DSS), pluggable packet schedulers (lowest-RTT default,
// round-robin, weighted, redundant, backup), coupled congestion
// control across subflows, a shared receive buffer with data-level
// reordering, and the optional receive-buffer penalization the paper
// removes for its measurements (§3.1).
package mptcp

import (
	"fmt"

	"mptcplab/internal/sim"
)

// ofoBlock is one received data-sequence range waiting (or not) for
// earlier data, tagged with the subflow that delivered it.
type ofoBlock struct {
	start, end uint64
	arrivedAt  sim.Time
	subflow    int
}

// ReorderBuffer assembles connection-level data from subflow
// deliveries. Packets whose data sequence number is not yet in order
// wait here — the paper's out-of-order delay (§3.3) is exactly the
// residence time this buffer measures.
type ReorderBuffer struct {
	rcvNxt  uint64
	initial uint64     // first expected data sequence (for accounting checks)
	blocks  []ofoBlock // sorted by start, non-overlapping
	scratch []ofoBlock // reused by insertBlock for gap carving

	// OnDeliver receives newly in-order byte counts.
	OnDeliver func(n int64)
	// OnSample receives one out-of-order delay observation per
	// delivered packet (zero for packets already in order on arrival).
	OnSample func(d sim.Time, subflow int)

	// perSubflowOFO tracks buffered out-of-order bytes by subflow for
	// the penalization heuristic.
	perSubflowOFO map[int]int64

	// Stats.
	Delivered       int64 // bytes handed to the application
	Buffered        int64 // bytes currently waiting out of order
	MaxBuffered     int64
	PacketsInOrder  uint64
	PacketsOutOrder uint64

	// Duplicate accounting: payload bytes presented more than once at
	// the data level and discarded here — redundant-scheduler copies,
	// reinjections that lost the race, and subflow retransmissions
	// re-presenting delivered ranges. DupPackets counts arrivals that
	// contributed no new bytes at all.
	DupBytes   int64
	DupPackets uint64
}

// NewReorderBuffer returns an empty buffer expecting data sequence
// numbers to start at initialSeq.
func NewReorderBuffer(initialSeq uint64) *ReorderBuffer {
	return &ReorderBuffer{rcvNxt: initialSeq, initial: initialSeq, perSubflowOFO: make(map[int]int64)}
}

// RcvNxt reports the next expected data sequence number.
func (b *ReorderBuffer) RcvNxt() uint64 { return b.rcvNxt }

// BufferedBytes reports bytes currently held out of order.
func (b *ReorderBuffer) BufferedBytes() int64 { return b.Buffered }

// SubflowOFOBytes reports the out-of-order bytes attributable to one
// subflow.
func (b *ReorderBuffer) SubflowOFOBytes(subflow int) int64 { return b.perSubflowOFO[subflow] }

// Insert records the arrival of data [start, end) from subflow at time
// now, delivering any newly contiguous data.
func (b *ReorderBuffer) Insert(now sim.Time, start, end uint64, subflow int) {
	if end <= start {
		return
	}
	// Trim data we already delivered (subflow-level retransmissions
	// and redundant-scheduler copies can re-present old ranges).
	if start < b.rcvNxt {
		trimTo := end
		if trimTo > b.rcvNxt {
			trimTo = b.rcvNxt
		}
		b.DupBytes += int64(trimTo - start)
		start = b.rcvNxt
	}
	if end <= start {
		b.DupPackets++
		return
	}
	// Trim against already-buffered ranges so accounting stays exact.
	for _, blk := range b.blocks {
		if blk.start <= start && end <= blk.end {
			b.DupBytes += int64(end - start)
			b.DupPackets++
			return // fully duplicate
		}
	}

	if start == b.rcvNxt {
		// In order on arrival.
		b.PacketsInOrder++
		if b.OnSample != nil {
			b.OnSample(0, subflow)
		}
		b.rcvNxt = end
		delivered := int64(end - start)
		b.drain(now, &delivered)
		// Count before the callback: OnDeliver handlers (completion
		// hooks, invariant probes) must observe Delivered consistent
		// with rcvNxt.
		b.Delivered += delivered
		if b.OnDeliver != nil && delivered > 0 {
			b.OnDeliver(delivered)
		}
		return
	}

	// Out of order: store (splitting around existing blocks).
	b.PacketsOutOrder++
	b.insertBlock(ofoBlock{start: start, end: end, arrivedAt: now, subflow: subflow})
}

// insertBlock adds a range, discarding overlap with stored blocks.
func (b *ReorderBuffer) insertBlock(nb ofoBlock) {
	// blocks is sorted and non-overlapping, so one pass over it carves
	// nb into the uncovered gaps. The pieces land in a reusable scratch
	// slice, so the per-packet OOO path allocates nothing once the two
	// slices have grown to the connection's working size.
	pieces := b.scratch[:0]
	cur := nb.start
	for _, ex := range b.blocks {
		if ex.end <= cur {
			continue
		}
		if ex.start >= nb.end {
			break
		}
		if cur < ex.start {
			pieces = append(pieces, ofoBlock{cur, ex.start, nb.arrivedAt, nb.subflow})
		}
		cur = ex.end
	}
	if cur < nb.end {
		pieces = append(pieces, ofoBlock{cur, nb.end, nb.arrivedAt, nb.subflow})
	}
	b.scratch = pieces
	var kept int64
	for _, p := range pieces {
		kept += int64(p.end - p.start)
	}
	b.DupBytes += int64(nb.end-nb.start) - kept
	if len(pieces) == 0 {
		b.DupPackets++
		return
	}
	for _, p := range pieces {
		// Splice into sorted position (pieces are themselves ascending,
		// so each lands at or after the previous one).
		i := len(b.blocks)
		for j := range b.blocks {
			if b.blocks[j].start > p.start {
				i = j
				break
			}
		}
		b.blocks = append(b.blocks, ofoBlock{})
		copy(b.blocks[i+1:], b.blocks[i:])
		b.blocks[i] = p
		n := int64(p.end - p.start)
		b.Buffered += n
		b.perSubflowOFO[p.subflow] += n
	}
	if b.Buffered > b.MaxBuffered {
		b.MaxBuffered = b.Buffered
	}
}

// drain advances rcvNxt across contiguous buffered blocks, emitting
// out-of-order delay samples for each as it becomes deliverable.
func (b *ReorderBuffer) drain(now sim.Time, delivered *int64) {
	i := 0
	for ; i < len(b.blocks); i++ {
		blk := b.blocks[i]
		if blk.start > b.rcvNxt {
			break
		}
		n := int64(blk.end - blk.start)
		b.Buffered -= n
		b.perSubflowOFO[blk.subflow] -= n
		if blk.start < b.rcvNxt {
			// The already-covered prefix was superseded by a copy that
			// arrived in order — duplicate bytes, not deliverable ones.
			ov := blk.end
			if ov > b.rcvNxt {
				ov = b.rcvNxt
			}
			b.DupBytes += int64(ov - blk.start)
		}
		if blk.end > b.rcvNxt {
			*delivered += int64(blk.end - b.rcvNxt)
			b.rcvNxt = blk.end
		}
		if b.OnSample != nil {
			b.OnSample(now-blk.arrivedAt, blk.subflow)
		}
	}
	if i > 0 {
		// Shift survivors down in place so the slice keeps its capacity
		// for later bursts instead of re-growing from a moved base.
		n := copy(b.blocks, b.blocks[i:])
		b.blocks = b.blocks[:n]
	}
}

// CheckInvariants verifies the buffer's structure and accounting: the
// block list sorted, disjoint, and strictly above rcvNxt; the buffered
// byte counters exactly matching the stored blocks; and delivered bytes
// equal to the distance rcvNxt has advanced. It is the invariant
// checker's observation point into data-level reassembly.
func (b *ReorderBuffer) CheckInvariants() error {
	var sum int64
	prev := b.rcvNxt
	for i, blk := range b.blocks {
		if blk.end <= blk.start {
			return fmt.Errorf("reorder: block %d empty [%d,%d)", i, blk.start, blk.end)
		}
		if i == 0 && blk.start <= b.rcvNxt {
			return fmt.Errorf("reorder: block at %d not above rcvNxt %d", blk.start, b.rcvNxt)
		}
		if i > 0 && blk.start < prev {
			return fmt.Errorf("reorder: block %d [%d,%d) overlaps previous end %d", i, blk.start, blk.end, prev)
		}
		prev = blk.end
		sum += int64(blk.end - blk.start)
	}
	if sum != b.Buffered {
		return fmt.Errorf("reorder: Buffered %d but blocks hold %d bytes", b.Buffered, sum)
	}
	if b.MaxBuffered < b.Buffered {
		return fmt.Errorf("reorder: MaxBuffered %d below Buffered %d", b.MaxBuffered, b.Buffered)
	}
	var perSF int64
	for sf, n := range b.perSubflowOFO {
		if n < 0 {
			return fmt.Errorf("reorder: subflow %d OFO bytes negative (%d)", sf, n)
		}
		perSF += n
	}
	if perSF != b.Buffered {
		return fmt.Errorf("reorder: per-subflow OFO sums to %d, Buffered is %d", perSF, b.Buffered)
	}
	if b.rcvNxt < b.initial {
		return fmt.Errorf("reorder: rcvNxt %d below initial %d", b.rcvNxt, b.initial)
	}
	if got := int64(b.rcvNxt - b.initial); got != b.Delivered {
		return fmt.Errorf("reorder: Delivered %d but rcvNxt advanced %d", b.Delivered, got)
	}
	if b.DupBytes < 0 {
		return fmt.Errorf("reorder: DupBytes negative (%d)", b.DupBytes)
	}
	return nil
}
