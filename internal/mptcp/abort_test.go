package mptcp

import (
	"testing"

	"mptcplab/internal/seg"
	"mptcplab/internal/sim"
	"mptcplab/internal/tcp"
	"mptcplab/internal/units"
)

// RemoveLocalAddr (the §6 mobility case: the WiFi address disappears
// when the user leaves the network) aborts that address's subflows on
// both ends, reinjects stranded data, and the transfer completes over
// the surviving path.
func TestRemoveLocalAddrMidDownload(t *testing.T) {
	tn := buildTwoPath(t, defaultWifi(), defaultCell(), false)
	cfg := DefaultConfig()
	size := int64(8 * units.MB)

	var serverConn *Conn
	srv := NewServer(tn.server, tn.net, tn.srvAddr.Port, cfg, tn.rng.Child("srv"))
	srv.OnConn = func(c *Conn) {
		serverConn = c
		c.OnData = func(int64) {
			if c.BytesWritten() == 0 {
				c.Write(int(size))
				c.Close()
			}
		}
	}
	var rcvd int64
	conn := Dial(tn.net, tn.client, DialOpts{
		LocalAddrs: []seg.Addr{tn.wifiAddr, tn.cellAddr},
		Labels:     []string{"wifi", "cell"},
		ServerAddr: tn.srvAddr,
		Config:     cfg,
	}, tn.rng.Child("cli"))
	conn.OnData = func(n int64) { rcvd += n }
	conn.OnRemoteClose = func() { conn.Close() }
	conn.OnEstablished = func() { conn.Write(64) }

	// Mid-download, the WiFi interface disappears: the link dies and
	// the client's connection manager withdraws the address.
	tn.sim.At(1*sim.Second, "wifi-gone", func() {
		tn.wifiUp.SetDown(true)
		tn.wifiDown.SetDown(true)
		conn.RemoveLocalAddr(tn.wifiAddr)
	})
	tn.sim.RunUntil(2 * 60 * sim.Second)

	if rcvd != size {
		t.Fatalf("received %d of %d after address removal", rcvd, size)
	}
	// The server must have torn down its wifi subflow (not left it
	// retransmitting into the void forever).
	for _, sf := range serverConn.Subflows() {
		if tn.wifiAddr == sf.EP.Remote && sf.EP.State() != tcp.StateClosed {
			t.Errorf("server wifi subflow still %v after REMOVE_ADDR", sf.EP.State())
		}
	}
	if serverConn.Reinjections == 0 && conn.Reinjections == 0 {
		// Server-side reinjection happens via its own dead-subflow
		// detection; the client reinjects on RemoveLocalAddr. At least
		// one side must have moved stranded data.
		t.Log("note: no reinjection was needed for this seed")
	}
}

// MP_FASTCLOSE aborts every subflow on both sides at once.
func TestFastCloseAbortsEverything(t *testing.T) {
	tn := buildTwoPath(t, defaultWifi(), defaultCell(), false)
	cfg := DefaultConfig()
	var serverConn *Conn
	remoteClosed := false
	srv := NewServer(tn.server, tn.net, tn.srvAddr.Port, cfg, tn.rng.Child("srv"))
	srv.OnConn = func(c *Conn) {
		serverConn = c
		c.OnData = func(int64) {
			if c.BytesWritten() == 0 {
				c.Write(32 * units.MB) // long transfer, will be aborted
			}
		}
		c.OnRemoteClose = func() { remoteClosed = true }
	}
	conn := Dial(tn.net, tn.client, DialOpts{
		LocalAddrs: []seg.Addr{tn.wifiAddr, tn.cellAddr},
		ServerAddr: tn.srvAddr,
		Config:     cfg,
	}, tn.rng.Child("cli"))
	conn.OnEstablished = func() { conn.Write(64) }

	tn.sim.At(500*sim.Millisecond, "abort", func() { conn.Abort() })
	tn.sim.RunUntil(5 * sim.Second)

	if !remoteClosed {
		t.Error("server never observed MP_FASTCLOSE")
	}
	for _, sf := range serverConn.Subflows() {
		if sf.EP.State() != tcp.StateClosed {
			t.Errorf("server subflow %d still %v after fast close", sf.ID, sf.EP.State())
		}
	}
	for _, sf := range conn.Subflows() {
		if sf.EP.State() != tcp.StateClosed {
			t.Errorf("client subflow %d still %v after fast close", sf.ID, sf.EP.State())
		}
	}
}
