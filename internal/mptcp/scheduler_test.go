package mptcp

import (
	"strings"
	"testing"

	"mptcplab/internal/seg"
	"mptcplab/internal/sim"
	"mptcplab/internal/tcp"
	"mptcplab/internal/units"
)

// mkSubflows builds established subflows with distinct RTTs on a live
// two-path harness, so scheduler unit tests exercise real endpoints.
func mkSubflows(t *testing.T) (fast, slow *Subflow, tn *twoPathNet) {
	t.Helper()
	cell := defaultCell()
	cell.prop = 100 * sim.Millisecond
	tn = buildTwoPath(t, defaultWifi(), cell, false)
	srv := NewServer(tn.server, tn.net, tn.srvAddr.Port, DefaultConfig(), tn.rng.Child("srv"))
	srv.OnConn = func(c *Conn) {}
	conn := Dial(tn.net, tn.client, DialOpts{
		LocalAddrs: []seg.Addr{tn.wifiAddr, tn.cellAddr},
		Labels:     []string{"wifi", "cell"},
		ServerAddr: tn.srvAddr,
		Config:     DefaultConfig(),
	}, tn.rng.Child("cli"))
	tn.sim.RunUntil(2 * sim.Second)
	sfs := conn.Subflows()
	if len(sfs) != 2 || !sfs[0].EP.Established() || !sfs[1].EP.Established() {
		t.Fatal("subflows not established")
	}
	return sfs[0], sfs[1], tn
}

func TestLowestRTTPrefersFastPath(t *testing.T) {
	fast, slow, _ := mkSubflows(t)
	s := NewScheduler("lowest-rtt")
	if got := s.Pick([]*Subflow{slow, fast}); got != 1 {
		t.Errorf("picked index %d (rtt %v), want the fast path (rtt %v)",
			got, slow.EP.SRTTTime(), fast.EP.SRTTTime())
	}
}

func TestSchedulerSkipsUnusableSubflows(t *testing.T) {
	fast, slow, _ := mkSubflows(t)
	// Exhaust the fast path's window.
	fast.EP.Write(int(fast.EP.SendSpace()))
	if fast.usable() {
		t.Fatal("fast path still has space; test premise broken")
	}
	s := NewScheduler("lowest-rtt")
	if got := s.Pick([]*Subflow{fast, slow}); got != 1 {
		t.Errorf("picked %d, want the slow-but-usable path", got)
	}
	slow.EP.Write(int(slow.EP.SendSpace()))
	if got := s.Pick([]*Subflow{fast, slow}); got != -1 {
		t.Errorf("picked %d with no usable subflow, want -1", got)
	}
}

func TestBackupModeHoldsBackupInReserve(t *testing.T) {
	fast, slow, _ := mkSubflows(t)
	slow.Backup = true
	s := NewScheduler("backup")
	if got := s.Pick([]*Subflow{fast, slow}); got != 0 {
		t.Errorf("picked %d, want the regular path", got)
	}
	// Regular path cwnd-limited but alive: wait rather than waking the
	// backup.
	fast.EP.Write(int(fast.EP.SendSpace()))
	if got := s.Pick([]*Subflow{fast, slow}); got != -1 {
		t.Errorf("picked %d while regular path merely cwnd-limited, want -1", got)
	}
}

func TestNewSchedulerNames(t *testing.T) {
	for _, name := range SchedulerNames() {
		s := NewScheduler(name)
		if s == nil {
			t.Fatalf("NewScheduler(%q) = nil", name)
		}
		if s.Name() != name {
			t.Errorf("NewScheduler(%q).Name() = %q", name, s.Name())
		}
	}
	// Legacy aliases resolve to their canonical plugins.
	for alias, canon := range map[string]string{
		"": "minrtt", "lowest-rtt": "minrtt", "round-robin": "roundrobin",
	} {
		if got := NewScheduler(alias).Name(); got != canon {
			t.Errorf("NewScheduler(%q).Name() = %q, want %q", alias, got, canon)
		}
	}
	if NewScheduler("bogus").Name() != "minrtt" {
		t.Error("unknown scheduler should fall back to minrtt")
	}
}

func TestParseSchedulerValidation(t *testing.T) {
	for _, spec := range []string{
		"minrtt", "roundrobin", "weighted", "redundant", "backup",
		"blest", "adaptive",
		"lowest-rtt", "round-robin", "", "weighted:3;1", "weighted:0.5;2;1",
	} {
		if err := ValidateScheduler(spec); err != nil {
			t.Errorf("ValidateScheduler(%q) = %v, want nil", spec, err)
		}
	}
	for _, spec := range []string{
		"bogus", "minrtt:2", "weighted:", "weighted:a;b", "weighted:-1;2", "weighted:0",
	} {
		err := ValidateScheduler(spec)
		if err == nil {
			t.Errorf("ValidateScheduler(%q) = nil, want error", spec)
			continue
		}
		if s := err.Error(); strings.Contains(s, "\n") {
			t.Errorf("ValidateScheduler(%q) error spans lines: %q", spec, s)
		}
	}
	s, err := ParseScheduler("weighted:3;1")
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Name(); got != "weighted:3;1" {
		t.Errorf("weighted spec round-trip: Name() = %q", got)
	}
}

func TestWeightedPickFollowsDeficit(t *testing.T) {
	fast, slow, _ := mkSubflows(t)
	w := &Weighted{Weights: []float64{3, 1}}
	sfs := []*Subflow{fast, slow}
	// Nothing written yet: both deficits are zero, lowest index wins.
	if got := w.Pick(sfs); got != 0 {
		t.Fatalf("initial pick %d, want 0", got)
	}
	// Load subflow 0 well past 3x subflow 1: deficit moves to 1.
	fast.EP.Write(6000)
	slow.EP.Write(1000)
	if got := w.Pick(sfs); got != 1 {
		t.Errorf("pick %d after 6000/1000 bytes at weights 3:1, want 1", got)
	}
	// And beyond the ratio the other way.
	slow.EP.Write(4000)
	if got := w.Pick(sfs); got != 0 {
		t.Errorf("pick %d after 6000/5000 bytes at weights 3:1, want 0", got)
	}
}

func TestRedundantDuplicatesOnAllEstablished(t *testing.T) {
	fast, slow, _ := mkSubflows(t)
	r := &Redundant{}
	sfs := []*Subflow{fast, slow}
	if got := r.Pick(sfs); got != 0 {
		t.Fatalf("primary pick %d, want the fast path", got)
	}
	dups := r.Duplicates(sfs, 0)
	if len(dups) != 1 || dups[0] != 1 {
		t.Errorf("Duplicates = %v, want [1]", dups)
	}
	// A window-limited path still carries copies (they queue), but a
	// non-established one must not.
	slow.EP.Write(int(slow.EP.SendSpace()))
	if dups := r.Duplicates(sfs, 0); len(dups) != 1 {
		t.Errorf("window-limited duplicate target dropped: %v", dups)
	}
}

func TestSingleCopySchedulersNeverDuplicate(t *testing.T) {
	fast, slow, _ := mkSubflows(t)
	sfs := []*Subflow{fast, slow}
	for _, name := range []string{"minrtt", "roundrobin", "weighted", "backup"} {
		s := NewScheduler(name)
		if i := s.Pick(sfs); i >= 0 {
			if dups := s.Duplicates(sfs, i); len(dups) != 0 {
				t.Errorf("%s.Duplicates = %v, want none", name, dups)
			}
		}
	}
}

// The 8 MB receive-buffer default never limits the paper's transfers;
// verify the config plumbs through to subflow windows.
func TestSharedWindowReflectsConfig(t *testing.T) {
	tn := buildTwoPath(t, defaultWifi(), defaultCell(), false)
	cfg := DefaultConfig()
	cfg.RcvBuf = 1 * units.MB
	srv := NewServer(tn.server, tn.net, tn.srvAddr.Port, cfg, tn.rng.Child("srv"))
	srv.OnConn = func(c *Conn) {}
	conn := Dial(tn.net, tn.client, DialOpts{
		LocalAddrs: []seg.Addr{tn.wifiAddr, tn.cellAddr},
		ServerAddr: tn.srvAddr,
		Config:     cfg,
	}, tn.rng.Child("cli"))
	tn.sim.RunUntil(1 * sim.Second)
	if got := conn.sharedWindow(); got != 1*units.MB {
		t.Errorf("shared window %d, want 1MB", got)
	}
	_ = tcp.StateEstablished
}
