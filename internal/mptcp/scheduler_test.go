package mptcp

import (
	"testing"

	"mptcplab/internal/seg"
	"mptcplab/internal/sim"
	"mptcplab/internal/tcp"
	"mptcplab/internal/units"
)

// mkSubflows builds established subflows with distinct RTTs on a live
// two-path harness, so scheduler unit tests exercise real endpoints.
func mkSubflows(t *testing.T) (fast, slow *Subflow, tn *twoPathNet) {
	t.Helper()
	cell := defaultCell()
	cell.prop = 100 * sim.Millisecond
	tn = buildTwoPath(t, defaultWifi(), cell, false)
	srv := NewServer(tn.server, tn.net, tn.srvAddr.Port, DefaultConfig(), tn.rng.Child("srv"))
	srv.OnConn = func(c *Conn) {}
	conn := Dial(tn.net, tn.client, DialOpts{
		LocalAddrs: []seg.Addr{tn.wifiAddr, tn.cellAddr},
		Labels:     []string{"wifi", "cell"},
		ServerAddr: tn.srvAddr,
		Config:     DefaultConfig(),
	}, tn.rng.Child("cli"))
	tn.sim.RunUntil(2 * sim.Second)
	sfs := conn.Subflows()
	if len(sfs) != 2 || !sfs[0].EP.Established() || !sfs[1].EP.Established() {
		t.Fatal("subflows not established")
	}
	return sfs[0], sfs[1], tn
}

func TestLowestRTTPrefersFastPath(t *testing.T) {
	fast, slow, _ := mkSubflows(t)
	s := NewScheduler("lowest-rtt")
	if got := s.Pick([]*Subflow{slow, fast}); got != 1 {
		t.Errorf("picked index %d (rtt %v), want the fast path (rtt %v)",
			got, slow.EP.SRTTTime(), fast.EP.SRTTTime())
	}
}

func TestSchedulerSkipsUnusableSubflows(t *testing.T) {
	fast, slow, _ := mkSubflows(t)
	// Exhaust the fast path's window.
	fast.EP.Write(int(fast.EP.SendSpace()))
	if fast.usable() {
		t.Fatal("fast path still has space; test premise broken")
	}
	s := NewScheduler("lowest-rtt")
	if got := s.Pick([]*Subflow{fast, slow}); got != 1 {
		t.Errorf("picked %d, want the slow-but-usable path", got)
	}
	slow.EP.Write(int(slow.EP.SendSpace()))
	if got := s.Pick([]*Subflow{fast, slow}); got != -1 {
		t.Errorf("picked %d with no usable subflow, want -1", got)
	}
}

func TestBackupModeHoldsBackupInReserve(t *testing.T) {
	fast, slow, _ := mkSubflows(t)
	slow.Backup = true
	s := NewScheduler("backup")
	if got := s.Pick([]*Subflow{fast, slow}); got != 0 {
		t.Errorf("picked %d, want the regular path", got)
	}
	// Regular path cwnd-limited but alive: wait rather than waking the
	// backup.
	fast.EP.Write(int(fast.EP.SendSpace()))
	if got := s.Pick([]*Subflow{fast, slow}); got != -1 {
		t.Errorf("picked %d while regular path merely cwnd-limited, want -1", got)
	}
}

func TestNewSchedulerNames(t *testing.T) {
	for _, name := range []string{"lowest-rtt", "round-robin", "backup", ""} {
		s := NewScheduler(name)
		if s == nil {
			t.Fatalf("NewScheduler(%q) = nil", name)
		}
		if name != "" && s.Name() != name {
			t.Errorf("NewScheduler(%q).Name() = %q", name, s.Name())
		}
	}
	if NewScheduler("bogus").Name() != "lowest-rtt" {
		t.Error("unknown scheduler should fall back to lowest-rtt")
	}
}

// The 8 MB receive-buffer default never limits the paper's transfers;
// verify the config plumbs through to subflow windows.
func TestSharedWindowReflectsConfig(t *testing.T) {
	tn := buildTwoPath(t, defaultWifi(), defaultCell(), false)
	cfg := DefaultConfig()
	cfg.RcvBuf = 1 * units.MB
	srv := NewServer(tn.server, tn.net, tn.srvAddr.Port, cfg, tn.rng.Child("srv"))
	srv.OnConn = func(c *Conn) {}
	conn := Dial(tn.net, tn.client, DialOpts{
		LocalAddrs: []seg.Addr{tn.wifiAddr, tn.cellAddr},
		ServerAddr: tn.srvAddr,
		Config:     cfg,
	}, tn.rng.Child("cli"))
	tn.sim.RunUntil(1 * sim.Second)
	if got := conn.sharedWindow(); got != 1*units.MB {
		t.Errorf("shared window %d, want 1MB", got)
	}
	_ = tcp.StateEstablished
}
