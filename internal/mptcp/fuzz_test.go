package mptcp

import (
	"testing"

	"mptcplab/internal/sim"
)

// FuzzReorderInsert drives the data-level reorder buffer with an
// arbitrary insertion schedule decoded from the fuzz input — three
// bytes per operation: start offset, length, subflow — and asserts
// after every step that the buffer's accounting invariants hold, the
// delivery point never moves backwards, and delivery callbacks only
// report positive byte counts. The byte widths keep ranges close
// enough together that overlap, duplication, and gap-fill paths all
// get exercised.
func FuzzReorderInsert(f *testing.F) {
	f.Add([]byte{0, 4, 0, 4, 4, 0, 8, 4, 1})        // in-order run across subflows
	f.Add([]byte{8, 4, 0, 4, 4, 1, 0, 4, 0})        // reversed arrival
	f.Add([]byte{0, 8, 0, 2, 4, 1, 0, 8, 0})        // duplicate + contained overlap
	f.Add([]byte{16, 8, 2, 0, 255, 0, 16, 8, 2})    // big block swallows gaps
	f.Add([]byte{255, 255, 255, 0, 0, 0, 1, 0, 64}) // degenerate lengths

	f.Fuzz(func(t *testing.T, in []byte) {
		const initial = 1
		b := NewReorderBuffer(initial)
		lastDelivered := int64(0)
		b.OnDeliver = func(n int64) {
			if n <= 0 {
				t.Fatalf("OnDeliver(%d): non-positive delivery", n)
			}
		}
		now := sim.Time(0)
		prevNxt := b.RcvNxt()
		for i := 0; i+3 <= len(in); i += 3 {
			start := initial + uint64(in[i])*4
			length := uint64(in[i+1]) % 64 // 0..63, zero included to hit the guard
			subflow := int(in[i+2]) % 4
			now += sim.Millisecond
			b.Insert(now, start, start+length, subflow)

			if nxt := b.RcvNxt(); nxt < prevNxt {
				t.Fatalf("rcvNxt went backwards: %d -> %d", prevNxt, nxt)
			} else {
				prevNxt = nxt
			}
			if b.Delivered < lastDelivered {
				t.Fatalf("Delivered went backwards: %d -> %d", lastDelivered, b.Delivered)
			}
			lastDelivered = b.Delivered
			if err := b.CheckInvariants(); err != nil {
				t.Fatalf("after op %d (insert [%d,%d) sf=%d): %v", i/3, start, start+length, subflow, err)
			}
		}
		// Flush: insert the full covered range in order; everything
		// buffered must drain and the buffer must end empty.
		b.Insert(now+sim.Millisecond, initial, initial+256*4+64, 0)
		if err := b.CheckInvariants(); err != nil {
			t.Fatalf("after flush: %v", err)
		}
		if b.BufferedBytes() != 0 {
			t.Fatalf("flush left %d bytes buffered", b.BufferedBytes())
		}
	})
}
