package mptcp

import (
	"testing"

	"mptcplab/internal/seg"
	"mptcplab/internal/sim"
	"mptcplab/internal/units"
)

// handoverRun drives a download while the WiFi path suffers an outage
// window, returning delivered bytes over time checkpoints.
func handoverRun(t *testing.T, scheduler string, backup []bool, outageStart, outageEnd sim.Time) (rcvdAtOutageEnd, rcvdFinal int64, srvConn *Conn) {
	t.Helper()
	tn := buildTwoPath(t, defaultWifi(), defaultCell(), false)
	cfg := DefaultConfig()
	cfg.Scheduler = scheduler

	size := int64(32 * units.MB)
	srv := NewServer(tn.server, tn.net, tn.srvAddr.Port, cfg, tn.rng.Child("srv"))
	srv.OnConn = func(c *Conn) {
		srvConn = c
		c.OnData = func(n int64) {
			if c.BytesWritten() == 0 {
				c.Write(int(size))
				c.Close()
			}
		}
	}
	var rcvd int64
	conn := Dial(tn.net, tn.client, DialOpts{
		LocalAddrs: []seg.Addr{tn.wifiAddr, tn.cellAddr},
		Labels:     []string{"wifi", "cell"},
		ServerAddr: tn.srvAddr,
		Backup:     backup,
		Config:     cfg,
	}, tn.rng.Child("cli"))
	conn.OnData = func(n int64) { rcvd += n }
	conn.OnRemoteClose = func() { conn.Close() }
	conn.OnEstablished = func() { conn.Write(64) }

	// WiFi outage window (both directions, as walking out of range).
	tn.sim.At(outageStart, "wifi-down", func() {
		tn.wifiDown.SetDown(true)
		tn.wifiUp.SetDown(true)
	})
	tn.sim.At(outageEnd, "wifi-up", func() {
		tn.wifiDown.SetDown(false)
		tn.wifiUp.SetDown(false)
	})

	tn.sim.RunUntil(outageEnd)
	rcvdAtOutageEnd = rcvd
	tn.sim.RunUntil(10 * 60 * sim.Second)
	return rcvdAtOutageEnd, rcvd, srvConn
}

// §6: MPTCP keeps transferring through a WiFi outage by shifting to
// the cellular subflow, where single-path TCP would stall.
func TestHandoverSurvivesWiFiOutage(t *testing.T) {
	atOutageEnd, final, srvConn := handoverRun(t, "lowest-rtt", nil,
		500*sim.Millisecond, 8*sim.Second)
	if final != 32*units.MB {
		t.Fatalf("download incomplete after outage: %d of %d", final, 32*units.MB)
	}
	// During the 7.5s outage the cellular path (≈15 Mbps) should keep
	// moving megabytes; a stalled connection would sit at roughly the
	// pre-outage volume (≈2 MB).
	if atOutageEnd < 6*units.MB {
		t.Errorf("only %d bytes delivered by outage end; transfer effectively stalled", atOutageEnd)
	}
	if srvConn.Reinjections == 0 {
		t.Errorf("expected reinjection of the dead subflow's data")
	}
}

// Backup mode: the cellular subflow is held in reserve while WiFi is
// healthy, then takes over during the outage.
func TestBackupModeActivatesOnFailure(t *testing.T) {
	tn := buildTwoPath(t, defaultWifi(), defaultCell(), false)
	cfg := DefaultConfig()
	cfg.Scheduler = "backup"

	size := int64(8 * units.MB)
	srv := NewServer(tn.server, tn.net, tn.srvAddr.Port, cfg, tn.rng.Child("srv"))
	var serverConn *Conn
	srv.OnConn = func(c *Conn) {
		serverConn = c
		c.OnData = func(n int64) {
			if c.BytesWritten() == 0 {
				c.Write(int(size))
				c.Close()
			}
		}
	}
	var rcvd int64
	conn := Dial(tn.net, tn.client, DialOpts{
		LocalAddrs: []seg.Addr{tn.wifiAddr, tn.cellAddr},
		Labels:     []string{"wifi", "cell"},
		ServerAddr: tn.srvAddr,
		Backup:     []bool{false, true},
		Config:     cfg,
	}, tn.rng.Child("cli"))
	conn.OnData = func(n int64) { rcvd += n }
	conn.OnRemoteClose = func() { conn.Close() }
	conn.OnEstablished = func() { conn.Write(64) }

	// Phase 1: healthy WiFi. The backup (cellular) subflow must carry
	// nothing even though it is established.
	tn.sim.RunUntil(2 * sim.Second)
	if serverConn == nil {
		t.Fatal("no server connection")
	}
	// NOTE: the server side schedules the response; its subflows carry
	// the data. Server subflow 0 pairs with the client's WiFi path.
	// The server has no Backup flags, so assert on the CLIENT's view:
	// bytes received over the cellular subflow.
	cellRcvd := func() int64 {
		for _, sf := range conn.Subflows() {
			if sf.Label == "cell" {
				return sf.EP.Stats.BytesRcvd
			}
		}
		return 0
	}
	_ = cellRcvd
	// Client->server direction is scheduled by the CLIENT: its 64-byte
	// request must have used WiFi only.
	for _, sf := range conn.Subflows() {
		if sf.Backup && sf.EP.Stats.BytesSent > 0 {
			t.Errorf("backup subflow sent %d bytes while primary healthy", sf.EP.Stats.BytesSent)
		}
	}

	// Phase 2: kill WiFi; the transfer must continue via backup on the
	// reverse direction too (server uses lowest-rtt: this test focuses
	// on client-side send behaviour plus overall liveness).
	tn.wifiDown.SetDown(true)
	tn.wifiUp.SetDown(true)
	tn.sim.RunUntil(4 * 60 * sim.Second)
	if rcvd != size {
		t.Fatalf("download did not complete during WiFi outage: %d of %d", rcvd, size)
	}
}

// Single-path TCP over WiFi stalls through the same outage — the
// §6 contrast that motivates MPTCP for mobility.
func TestSinglePathStallsDuringOutage(t *testing.T) {
	tn := buildTwoPath(t, defaultWifi(), defaultCell(), false)
	// Reuse the tcp-level harness via a plain MPTCP server accepting a
	// 1-subflow connection (no second local address).
	cfg := DefaultConfig()
	size := int64(8 * units.MB)
	srv := NewServer(tn.server, tn.net, tn.srvAddr.Port, cfg, tn.rng.Child("srv"))
	srv.OnConn = func(c *Conn) {
		c.OnData = func(n int64) {
			if c.BytesWritten() == 0 {
				c.Write(int(size))
				c.Close()
			}
		}
	}
	var rcvd int64
	conn := Dial(tn.net, tn.client, DialOpts{
		LocalAddrs: []seg.Addr{tn.wifiAddr}, // WiFi only
		ServerAddr: tn.srvAddr,
		Config:     cfg,
	}, tn.rng.Child("cli"))
	conn.OnData = func(n int64) { rcvd += n }
	conn.OnEstablished = func() { conn.Write(64) }

	tn.sim.At(1*sim.Second, "down", func() {
		tn.wifiDown.SetDown(true)
		tn.wifiUp.SetDown(true)
	})
	tn.sim.RunUntil(6 * sim.Second)
	atOutage := rcvd
	tn.sim.RunUntil(8 * sim.Second)
	if rcvd != atOutage {
		t.Errorf("single-path transfer progressed during a total outage (%d -> %d)", atOutage, rcvd)
	}
	if rcvd >= size {
		t.Errorf("single-path download finished before the outage began; timing premise broken")
	}
}
