package mptcp

// Adaptive is the weighted scheduler with the static weight table
// replaced by a live estimate: each path's weight is its windowed
// delivery rate (bytes cumulatively ACKed over the last
// DefaultRateWindow, see RateEstimator). The shootout's motivating
// negative result is static `weighted` forcing its configured share
// onto a 5G mmWave path through a blockage fade — a weight is a bet
// about the future, and a fading radio voids it within a second.
// Re-estimating the weights from delivered bytes makes the split
// track what each path is actually moving:
//
//	w_i(t) = dlv_i(t)            (windowed delivery rate, B/s)
//	score_i(t) = placed_i(t) / w_i(t)
//	pick = argmin score_i        (deficit: furthest below its share)
//
// where placed_i is the same windowed estimator fed with scheduled
// bytes — both sides of the ratio forget at the same horizon, so a
// weight shift moves the split within one window instead of waiting
// out a cumulative deficit built over the whole transfer.
//
// Gating (see the degeneracy trap, DESIGN.md section 12): when the
// argmin path cannot accept data right now the scheduler normally
// waits for it, which is what keeps the byte split on the weight
// ratio under a saturating sender. But it only waits for a path that
// is *actively delivering*: a path whose delivery window has drained
// to zero — fading, blacked out, or freshly dead — forfeits its turn
// and the pick falls to the best scoring usable path. That single
// rule is why adaptive survives the fade profile that static
// weighted blows up on.
type Adaptive struct {
	singleCopy
	scores []float64 // scratch, reused across Picks
}

// adaptiveProbeWeight is the optimistic weight for a path with no
// delivery sample in the window AND no recent placements: it gets the
// best observed rate so the deficit routes data its way and the
// estimator can learn. (A path with recent placements but zero
// deliveries is NOT probed — that is a black hole mid-fade.)
func adaptiveProbeWeight(maxRate float64) float64 {
	if maxRate > 0 {
		return maxRate
	}
	return 1
}

// Name implements Scheduler.
func (*Adaptive) Name() string { return "adaptive" }

// Pick implements Scheduler.
func (a *Adaptive) Pick(subflows []*Subflow) int {
	if len(subflows) == 0 {
		return -1
	}
	now := subflows[0].conn.sim.Now()
	if cap(a.scores) < len(subflows) {
		a.scores = make([]float64, len(subflows))
	}
	a.scores = a.scores[:len(subflows)]

	var maxRate float64
	for _, sf := range subflows {
		if r := sf.dlv.Rate(now); r > maxRate {
			maxRate = r
		}
	}
	best := -1
	for i, sf := range subflows {
		a.scores[i] = -1
		if !sf.EP.Established() || sf.EP.ConsecutiveTimeouts() >= DeadAfterTimeouts {
			continue
		}
		w := sf.dlv.Rate(now)
		placed := sf.placed.Rate(now)
		if w <= 0 {
			if placed > 0 {
				// Recently scheduled, nothing delivered: a stall or a
				// fade. Minimal weight pushes its score sky-high so the
				// deficit stops feeding it until ACKs return.
				w = 1
			} else {
				w = adaptiveProbeWeight(maxRate)
			}
		}
		a.scores[i] = placed / w
		if best < 0 || a.scores[i] < a.scores[best] {
			best = i
		}
	}
	if best < 0 {
		return -1
	}
	if subflows[best].usable() {
		return best
	}
	if subflows[best].dlv.Total(now) > 0 {
		// The most-behind path is alive (its ACK clock delivered bytes
		// within the window) but momentarily full: wait for it, or the
		// split degenerates to cwnd-proportional placement.
		return -1
	}
	// Silent path: forfeit its turn, take the best usable score.
	next := -1
	for i, sf := range subflows {
		if a.scores[i] < 0 || !sf.usable() {
			continue
		}
		if next < 0 || a.scores[i] < a.scores[next] {
			next = i
		}
	}
	return next
}
