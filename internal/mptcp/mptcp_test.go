package mptcp

import (
	"testing"

	"mptcplab/internal/cc"
	"mptcplab/internal/netem"
	"mptcplab/internal/seg"
	"mptcplab/internal/sim"
	"mptcplab/internal/units"
)

// twoPathNet is a client with wifi+cell interfaces and a server with
// one (optionally two) interfaces.
type twoPathNet struct {
	sim    *sim.Simulator
	net    *netem.Network
	client *netem.Host
	server *netem.Host
	rng    *sim.RNG

	wifiAddr, cellAddr seg.Addr
	srvAddr, srvAddr2  seg.Addr

	wifiUp, wifiDown, cellUp, cellDown *netem.Link
}

type pathParams struct {
	rate  units.BitRate
	prop  sim.Time
	loss  float64
	queue units.ByteCount
}

func buildTwoPath(t testing.TB, wifi, cell pathParams, serverSecondIface bool) *twoPathNet {
	t.Helper()
	s := sim.New()
	rng := sim.NewRNG(7)
	n := netem.NewNetwork(s)
	client := n.NewHost("client")
	server := n.NewHost("server")

	mk := func(name string, p pathParams) (up, down *netem.Link) {
		up = netem.NewLink(s, rng, name+"-up")
		up.Rate, up.PropDelay, up.QueueLimit = p.rate, p.prop, p.queue
		down = netem.NewLink(s, rng, name+"-down")
		down.Rate, down.PropDelay, down.QueueLimit = p.rate, p.prop, p.queue
		if p.loss > 0 {
			down.Loss = netem.BernoulliLoss{P: p.loss}
		}
		return
	}
	wifiUp, wifiDown := mk("wifi", wifi)
	cellUp, cellDown := mk("cell", cell)

	tn := &twoPathNet{
		sim: s, net: n, client: client, server: server, rng: rng,
		wifiAddr: seg.MakeAddr("10.0.0.2", 40000),
		cellAddr: seg.MakeAddr("172.16.0.2", 40001),
		srvAddr:  seg.MakeAddr("192.168.1.1", 8080),
		srvAddr2: seg.MakeAddr("192.168.2.1", 8080),
		wifiUp:   wifiUp, wifiDown: wifiDown, cellUp: cellUp, cellDown: cellDown,
	}
	n.AddDuplexRoute(tn.wifiAddr.IP, tn.srvAddr.IP, client, server,
		[]*netem.Link{wifiUp}, []*netem.Link{wifiDown})
	n.AddDuplexRoute(tn.cellAddr.IP, tn.srvAddr.IP, client, server,
		[]*netem.Link{cellUp}, []*netem.Link{cellDown})
	if serverSecondIface {
		// Second server interface shares the access links (Figure 1:
		// the bottleneck is the wireless access, not the server LAN).
		n.AddDuplexRoute(tn.wifiAddr.IP, tn.srvAddr2.IP, client, server,
			[]*netem.Link{wifiUp}, []*netem.Link{wifiDown})
		n.AddDuplexRoute(tn.cellAddr.IP, tn.srvAddr2.IP, client, server,
			[]*netem.Link{cellUp}, []*netem.Link{cellDown})
	}
	return tn
}

func defaultWifi() pathParams {
	return pathParams{rate: 25 * units.Mbps, prop: 10 * sim.Millisecond, loss: 0.016, queue: 256 * units.KB}
}

func defaultCell() pathParams {
	return pathParams{rate: 15 * units.Mbps, prop: 30 * sim.Millisecond, loss: 0, queue: 2 * units.MB}
}

// download runs a server->client transfer of size bytes over MPTCP and
// returns the client connection and completion time.
func (tn *twoPathNet) download(t testing.TB, size int, cfg Config, fourPath bool) (*Conn, *Conn, sim.Time) {
	t.Helper()
	var serverConn *Conn
	srv := NewServer(tn.server, tn.net, tn.srvAddr.Port, cfg, tn.rng.Child("srv"))
	if fourPath {
		srv.AdvertiseAddrs = []seg.Addr{tn.srvAddr2}
	}
	srv.OnConn = func(c *Conn) {
		serverConn = c
		reqSeen := int64(0)
		c.OnData = func(n int64) {
			reqSeen += n
			if reqSeen >= 100 { // "request" fully received
				c.Write(size)
				c.Close()
			}
		}
	}

	var done sim.Time = -1
	var rcvd int64
	conn := Dial(tn.net, tn.client, DialOpts{
		LocalAddrs:     []seg.Addr{tn.wifiAddr, tn.cellAddr},
		Labels:         []string{"wifi", "cell"},
		ServerAddr:     tn.srvAddr,
		JoinAdvertised: fourPath,
		Config:         cfg,
	}, tn.rng.Child("cli"))
	conn.OnData = func(n int64) {
		rcvd += n
		if rcvd >= int64(size) && done < 0 {
			done = tn.sim.Now()
		}
	}
	conn.OnRemoteClose = func() { conn.Close() }
	conn.OnEstablished = func() { conn.Write(100) } // the "HTTP request"

	tn.sim.RunUntil(20 * 60 * sim.Second)
	if rcvd != int64(size) {
		t.Fatalf("client received %d of %d bytes; server=%v client=%v",
			rcvd, size, serverConn, conn)
	}
	return conn, serverConn, done
}

func TestTwoPathDownloadCompletes(t *testing.T) {
	tn := buildTwoPath(t, defaultWifi(), defaultCell(), false)
	cli, srv, done := tn.download(t, 4*units.MB, DefaultConfig(), false)
	if len(cli.Subflows()) != 2 {
		t.Fatalf("client has %d subflows, want 2", len(cli.Subflows()))
	}
	if len(srv.Subflows()) != 2 {
		t.Fatalf("server has %d subflows, want 2", len(srv.Subflows()))
	}
	if done <= 0 {
		t.Fatal("no completion time")
	}
	// Both paths should carry data for a 4MB transfer.
	for _, sf := range srv.Subflows() {
		if sf.EP.Stats.BytesSent == 0 {
			t.Errorf("subflow %d (%s) sent nothing", sf.ID, sf.Label)
		}
	}
}

func TestSmallFlowPrefersDefaultPath(t *testing.T) {
	tn := buildTwoPath(t, defaultWifi(), defaultCell(), false)
	// 8 KB: paper §4.1 — the transfer finishes before the cellular
	// path can contribute.
	_, srv, done := tn.download(t, 8*units.KB, DefaultConfig(), false)
	first := srv.Subflows()[0]
	if first.EP.Stats.BytesSent < 8*units.KB {
		t.Errorf("first (wifi) subflow carried %d bytes, want all 8KB", first.EP.Stats.BytesSent)
	}
	if done > 150*sim.Millisecond {
		t.Errorf("8KB took %v; want under ~3 wifi RTTs", done)
	}
}

func TestLargeFlowUsesCellularHeavily(t *testing.T) {
	wifi := defaultWifi()
	wifi.rate = 8 * units.Mbps // lossy and now slower
	tn := buildTwoPath(t, wifi, defaultCell(), false)
	_, srv, _ := tn.download(t, 16*units.MB, DefaultConfig(), false)
	var wifiBytes, cellBytes int64
	for i, sf := range srv.Subflows() {
		if i == 0 {
			wifiBytes = sf.EP.Stats.BytesSent
		} else {
			cellBytes += sf.EP.Stats.BytesSent
		}
	}
	share := float64(cellBytes) / float64(wifiBytes+cellBytes)
	if share < 0.4 {
		t.Errorf("cellular share %.2f; want > 0.4 for a large flow on a weak wifi", share)
	}
}

func TestFourPathEstablishesFourSubflows(t *testing.T) {
	tn := buildTwoPath(t, defaultWifi(), defaultCell(), true)
	cli, srv, _ := tn.download(t, 4*units.MB, DefaultConfig(), true)
	if got := len(cli.Subflows()); got != 4 {
		t.Fatalf("client has %d subflows, want 4", got)
	}
	if got := len(srv.Subflows()); got != 4 {
		t.Fatalf("server has %d subflows, want 4", got)
	}
	if srv.server.AcceptedJoins != 3 {
		t.Errorf("server accepted %d joins, want 3", srv.server.AcceptedJoins)
	}
}

func TestSimultaneousSYNJoinsImmediately(t *testing.T) {
	cfgDelayed := DefaultConfig()
	cfgSim := DefaultConfig()
	cfgSim.SimultaneousSYN = true

	measureJoin := func(cfg Config) sim.Time {
		tn := buildTwoPath(t, defaultWifi(), defaultCell(), false)
		var joinUp sim.Time = -1
		srv := NewServer(tn.server, tn.net, tn.srvAddr.Port, cfg, tn.rng.Child("srv"))
		srv.OnConn = func(c *Conn) {
			c.OnSubflowUp = func(sf *Subflow) {
				if sf.ID == 1 && joinUp < 0 {
					joinUp = tn.sim.Now()
				}
			}
		}
		conn := Dial(tn.net, tn.client, DialOpts{
			LocalAddrs: []seg.Addr{tn.wifiAddr, tn.cellAddr},
			ServerAddr: tn.srvAddr,
			Config:     cfg,
		}, tn.rng.Child("cli"))
		_ = conn
		tn.sim.RunUntil(5 * sim.Second)
		if joinUp < 0 {
			t.Fatal("second subflow never established")
		}
		return joinUp
	}

	tDelayed := measureJoin(cfgDelayed)
	tSim := measureJoin(cfgSim)
	if tSim >= tDelayed {
		t.Errorf("simultaneous SYN join at %v, delayed at %v; want earlier", tSim, tDelayed)
	}
	// Delayed mode must wait at least one wifi RTT before the cell SYN
	// leaves, so roughly wifiRTT + cellRTT total.
	if tDelayed < 75*sim.Millisecond {
		t.Errorf("delayed join established at %v; expected after ~80ms (wifi RTT + cell RTT)", tDelayed)
	}
}

func TestOFODelayMeasuredOnAsymmetricPaths(t *testing.T) {
	cell := defaultCell()
	cell.prop = 150 * sim.Millisecond // 3G-like
	tn := buildTwoPath(t, defaultWifi(), cell, false)

	cfg := DefaultConfig()
	samples := 0
	var maxDelay sim.Time
	srv := NewServer(tn.server, tn.net, tn.srvAddr.Port, cfg, tn.rng.Child("srv"))
	srv.OnConn = func(c *Conn) {
		c.OnData = func(n int64) {}
	}
	var rcvd int64
	size := int64(8 * units.MB)
	conn := Dial(tn.net, tn.client, DialOpts{
		LocalAddrs: []seg.Addr{tn.wifiAddr, tn.cellAddr},
		ServerAddr: tn.srvAddr,
		Config:     cfg,
	}, tn.rng.Child("cli"))
	conn.OnOFOSample = func(d sim.Time, subflowID int) {
		samples++
		if d > maxDelay {
			maxDelay = d
		}
	}
	conn.OnData = func(n int64) { rcvd += n }
	var serverConn *Conn
	srv.OnConn = func(c *Conn) {
		serverConn = c
		c.OnData = func(n int64) {
			if c.BytesWritten() == 0 {
				c.Write(int(size))
				c.Close()
			}
		}
	}
	_ = serverConn
	conn.OnEstablished = func() { conn.Write(64) }
	conn.OnRemoteClose = func() { conn.Close() }
	tn.sim.RunUntil(10 * 60 * sim.Second)

	if rcvd != size {
		t.Fatalf("received %d of %d", rcvd, size)
	}
	if samples == 0 {
		t.Fatal("no OFO samples")
	}
	if maxDelay < 20*sim.Millisecond {
		t.Errorf("max OFO delay %v; want visible reordering with a 300ms-RTT path", maxDelay)
	}
}

func TestControllersProduceDifferentLargeFlowBehaviour(t *testing.T) {
	run := func(ctrl cc.Controller) sim.Time {
		wifi := defaultWifi()
		tn := buildTwoPath(t, wifi, defaultCell(), false)
		cfg := DefaultConfig()
		cfg.Controller = ctrl
		cfg.TCP.Controller = ctrl
		_, _, done := tn.download(t, 16*units.MB, cfg, false)
		return done
	}
	reno := run(cc.Reno{})
	coupled := run(cc.Coupled{})
	olia := run(cc.OLIA{})
	t.Logf("16MB download: reno=%v coupled=%v olia=%v", reno, coupled, olia)
	// Reno is the most aggressive (paper §4.2): it should not be the
	// slowest by a wide margin.
	if reno > coupled*3/2 && reno > olia*3/2 {
		t.Errorf("reno (%v) much slower than coupled (%v)/olia (%v); aggression inverted", reno, coupled, olia)
	}
}

func TestDataDeliveredInOrderExactlyOnce(t *testing.T) {
	// Heavy loss both paths: delivery must still be exact.
	wifi := pathParams{rate: 10 * units.Mbps, prop: 10 * sim.Millisecond, loss: 0.05, queue: 256 * units.KB}
	cell := pathParams{rate: 5 * units.Mbps, prop: 60 * sim.Millisecond, loss: 0.02, queue: 1 * units.MB}
	tn := buildTwoPath(t, wifi, cell, false)
	cli, _, _ := tn.download(t, 2*units.MB, DefaultConfig(), false)
	rb := cli.Reorder()
	if rb.Buffered != 0 {
		t.Errorf("reorder buffer holds %d bytes after completion", rb.Buffered)
	}
	if rb.Delivered < 2*units.MB {
		t.Errorf("delivered %d < 2MB", rb.Delivered)
	}
}

func TestPenalizationFiresWithTinyBuffer(t *testing.T) {
	cell := defaultCell()
	cell.prop = 200 * sim.Millisecond
	tn := buildTwoPath(t, defaultWifi(), cell, false)
	cfg := DefaultConfig()
	cfg.Penalize = true
	cfg.RcvBuf = 32 * units.KB
	cfg.TCP.RcvBuf = 32 * units.KB
	_, srv, _ := tn.download(t, 2*units.MB, cfg, false)
	t.Logf("penalties: %d", srv.Penalties)
	// With a 32KB shared buffer and a 400ms-RTT path, stalls are
	// inevitable; the heuristic should fire at least once.
	if srv.Penalties == 0 {
		t.Error("expected at least one penalization event with a tiny receive buffer")
	}
}
