package tcp

import (
	"testing"

	"mptcplab/internal/netem"
	"mptcplab/internal/seg"
	"mptcplab/internal/sim"
	"mptcplab/internal/units"
)

// TestLoneSegmentLossRecovers regression-tests a timer bug: when the
// very first (and only) data segment after the handshake was lost, the
// retransmission timer had been disarmed because armRTX ran before
// sndNxt advanced, deadlocking the connection forever.
func TestLoneSegmentLossRecovers(t *testing.T) {
	tn := newTestNet(t, 100*units.Mbps, 10*sim.Millisecond, 0, 1*units.MB)
	cfg := DefaultConfig()

	var serverGot int
	lis := Listen(tn.server, tn.net, tn.sAddr.Port, cfg, tn.rng.Child("server"))
	lis.OnAccept = func(ep *Endpoint, syn *seg.Segment) bool {
		ep.OnDeliver = func(n int) { serverGot += n }
		return true
	}

	client := NewEndpoint(tn.client, tn.net, tn.cAddr, tn.sAddr, cfg, tn.rng.Child("client"))
	client.OnEstablished = func() { client.Write(160) }
	client.Connect()

	// Drop the first data-bearing uplink packet by blacking out the
	// uplink for the instant the request crosses it: run to just after
	// establishment, lose everything for a moment, then restore.
	tn.sim.RunUntil(20 * sim.Millisecond) // handshake done at ~20ms
	tn.up.Loss = netem.BernoulliLoss{P: 1}
	tn.sim.RunUntil(25 * sim.Millisecond) // request transmitted & lost
	tn.up.Loss = netem.NoLoss{}
	tn.sim.RunUntil(30 * sim.Second)

	if serverGot != 160 {
		t.Fatalf("server received %d of 160 bytes; lone-segment loss not recovered", serverGot)
	}
	if client.Stats.Timeouts == 0 {
		t.Errorf("expected an RTO to drive recovery")
	}
}
