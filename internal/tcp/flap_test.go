package tcp

import (
	"testing"

	"mptcplab/internal/seg"
	"mptcplab/internal/sim"
	"mptcplab/internal/units"
)

// armOwnership fails the test if either link detects a pooled segment
// recycled while in flight — the invariant link flaps are most likely
// to break, since SetDown force-releases in-flight segments.
func (tn *testNet) armOwnership(t *testing.T) {
	t.Helper()
	catch := func(link string, _ *seg.Segment) {
		t.Errorf("pool use-after-release detected on link %q", link)
	}
	tn.up.OnBadOwnership = catch
	tn.down.OnBadOwnership = catch
}

// flap schedules a full down/up cycle on both directions.
func (tn *testNet) flap(at, dur sim.Time) {
	tn.sim.At(at, "flap-down", func() {
		tn.up.SetDown(true)
		tn.down.SetDown(true)
	})
	tn.sim.At(at+dur, "flap-up", func() {
		tn.up.SetUp()
		tn.down.SetUp()
	})
}

// TestFlapMidDeliveryTransferCompletes: repeated link flaps while data
// and ACKs are in the air kill in-flight segments (released straight
// back to the pool), yet the transfer recovers via RTO and completes
// with no ownership violations.
func TestFlapMidDeliveryTransferCompletes(t *testing.T) {
	tn := newTestNet(t, 10*units.Mbps, 20*sim.Millisecond, 0, 256*units.KB)
	tn.armOwnership(t)
	for i := 0; i < 3; i++ {
		tn.flap(sim.Time(200+400*i)*sim.Millisecond, 150*sim.Millisecond)
	}

	client, server, _ := tn.runDownload(t, 512*units.KB, DefaultConfig())
	if server.Stats.DataPktsRetrans == 0 {
		t.Error("flaps killed in-flight data but the server never retransmitted")
	}
	if tn.up.Stats.MediumDrop == 0 && tn.down.Stats.MediumDrop == 0 {
		t.Error("no medium drops recorded across three flaps")
	}
	if client.State() != StateClosed && client.State() != StateTimeWait {
		t.Errorf("client finished in state %v", client.State())
	}
}

// TestFlapDuringSYNRetransmission: the link goes down before the
// client's first SYN and stays down across several handshake
// retransmissions; once it returns, the next SYN retry establishes
// the connection and the download completes.
func TestFlapDuringSYNRetransmission(t *testing.T) {
	tn := newTestNet(t, 10*units.Mbps, 20*sim.Millisecond, 0, 256*units.KB)
	tn.armOwnership(t)
	tn.up.SetDown(true)
	tn.down.SetDown(true)
	// Long enough for the initial SYN plus at least one backoff retry
	// to die on the dark link.
	tn.sim.At(2*sim.Second, "flap-up", func() {
		tn.up.SetUp()
		tn.down.SetUp()
	})

	client, _, done := tn.runDownload(t, 64*units.KB, DefaultConfig())
	if done < 2*sim.Second {
		t.Errorf("download finished at %v, before the link even came back", done)
	}
	if client.Stats.Timeouts == 0 {
		t.Error("no RTO fired while SYNs were dying on a dark link")
	}
	if got := tn.up.Stats.MediumDrop; got == 0 {
		t.Error("uplink recorded no dropped SYNs during the outage")
	}
}

// TestDoubleSetDownIdempotent: calling SetDown(true) on an
// already-down link must not re-release in-flight segments (a double
// pool put would corrupt generation counters), and SetUp is equally
// idempotent.
func TestDoubleSetDownIdempotent(t *testing.T) {
	tn := newTestNet(t, 1*units.Gbps, 50*sim.Millisecond, 0, 1*units.MB)
	tn.armOwnership(t)
	pool := tn.net.Pool()

	// Put one segment in flight, then interleave redundant toggles
	// around its scheduled arrival.
	s0 := tn.net.NewSegment()
	s0.PayloadLen = 100
	delivered := 0
	tn.up.Send(s0, func(sg *seg.Segment) { delivered++; pool.Put(sg) })

	tn.sim.RunUntil(20 * sim.Millisecond)
	before := pool.Size()
	tn.up.SetDown(true)
	afterFirst := pool.Size()
	if afterFirst != before+1 {
		t.Fatalf("first SetDown released %d segments, want 1", afterFirst-before)
	}
	drops := tn.up.Stats.MediumDrop
	tn.up.SetDown(true) // redundant: must be a no-op
	if got := pool.Size(); got != afterFirst {
		t.Errorf("double SetDown changed pool size %d -> %d", afterFirst, got)
	}
	if tn.up.Stats.MediumDrop != drops {
		t.Errorf("double SetDown recounted drops: %d -> %d", drops, tn.up.Stats.MediumDrop)
	}
	tn.up.SetUp()
	tn.up.SetUp() // redundant
	if tn.up.IsDown() {
		t.Fatal("link still down after SetUp")
	}

	// The tombstoned arrival must not deliver, and fresh traffic flows.
	tn.sim.Run()
	if delivered != 0 {
		t.Fatalf("delivered %d packets killed by the outage", delivered)
	}
	s1 := tn.net.NewSegment()
	s1.PayloadLen = 100
	tn.up.Send(s1, func(sg *seg.Segment) { delivered++; pool.Put(sg) })
	tn.sim.Run()
	if delivered != 1 {
		t.Errorf("delivered %d after recovery, want 1", delivered)
	}
}
