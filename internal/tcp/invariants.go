package tcp

import (
	"fmt"
	"math"

	"mptcplab/internal/seg"
)

// CheckInvariants verifies the endpoint's internal consistency: send
// and receive sequence ordering, congestion-state sanity, and
// scoreboard structure. It is the invariant checker's observation
// point into TCP state and costs nothing unless called.
func (e *Endpoint) CheckInvariants() error {
	if e.state == StateClosed || e.state == StateListen {
		return nil
	}

	// Congestion state: finite, and never below one packet once the
	// connection is initialized.
	if math.IsNaN(e.cwnd) || math.IsInf(e.cwnd, 0) {
		return fmt.Errorf("tcp %v: cwnd is %v", e.Local, e.cwnd)
	}
	if e.cwnd < 0.5 {
		return fmt.Errorf("tcp %v: cwnd %.3f below minimum", e.Local, e.cwnd)
	}
	if math.IsNaN(e.ssthresh) || e.ssthresh <= 0 {
		return fmt.Errorf("tcp %v: ssthresh %v out of range", e.Local, e.ssthresh)
	}
	if e.rwnd < 0 {
		return fmt.Errorf("tcp %v: negative peer window %d", e.Local, e.rwnd)
	}

	// Send space: iss <= una <= nxt <= bufEnd (+1 for a queued FIN).
	if !seg.SeqLEQ(e.sndUna, e.sndNxt) {
		return fmt.Errorf("tcp %v: sndUna %d beyond sndNxt %d", e.Local, e.sndUna, e.sndNxt)
	}
	limit := e.sndBufEnd
	if e.finQueued {
		limit++
	}
	if !seg.SeqLEQ(e.sndNxt, limit) {
		return fmt.Errorf("tcp %v: sndNxt %d beyond send buffer end %d", e.Local, e.sndNxt, limit)
	}

	// In-flight ranges: sorted, disjoint, within (una, nxt].
	prev := e.sndUna
	for i, r := range e.inflight {
		if !seg.SeqLT(r.seq, r.end) {
			return fmt.Errorf("tcp %v: inflight[%d] empty [%d,%d)", e.Local, i, r.seq, r.end)
		}
		if !seg.SeqLEQ(prev, r.seq) {
			return fmt.Errorf("tcp %v: inflight[%d] start %d overlaps previous end %d", e.Local, i, r.seq, prev)
		}
		if !seg.SeqLEQ(r.end, e.sndNxt) {
			return fmt.Errorf("tcp %v: inflight[%d] end %d beyond sndNxt %d", e.Local, i, r.end, e.sndNxt)
		}
		prev = r.end
	}

	// SACK scoreboard: sorted, disjoint, above una, at or below nxt.
	prev = e.sndUna
	for i, r := range e.board.ranges {
		if !seg.SeqLT(r.Start, r.End) {
			return fmt.Errorf("tcp %v: sack range %d empty [%d,%d)", e.Local, i, r.Start, r.End)
		}
		if !seg.SeqLEQ(prev, r.Start) {
			return fmt.Errorf("tcp %v: sack range %d start %d overlaps %d", e.Local, i, r.Start, prev)
		}
		if !seg.SeqLEQ(r.End, e.sndNxt) {
			return fmt.Errorf("tcp %v: sack range %d end %d beyond sndNxt %d", e.Local, i, r.End, e.sndNxt)
		}
		prev = r.End
	}

	// Receive side: out-of-order spans strictly above rcvNxt, sorted,
	// disjoint.
	prev = e.rcvNxt
	for i, r := range e.ooo.ranges {
		if !seg.SeqLT(r.Start, r.End) {
			return fmt.Errorf("tcp %v: ooo range %d empty [%d,%d)", e.Local, i, r.Start, r.End)
		}
		if i == 0 && !seg.SeqLT(prev, r.Start) {
			return fmt.Errorf("tcp %v: ooo range starts at %d, not above rcvNxt %d", e.Local, r.Start, prev)
		}
		if !seg.SeqLEQ(prev, r.Start) {
			return fmt.Errorf("tcp %v: ooo range %d start %d overlaps %d", e.Local, i, r.Start, prev)
		}
		prev = r.End
	}
	return nil
}
