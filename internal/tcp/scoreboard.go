package tcp

import (
	"mptcplab/internal/seg"
)

// insertRange merges the half-open block blk into the sorted, disjoint
// range set rs in place and returns the updated slice. Adjacent ranges
// (r.Start == last.End) coalesce, matching the classic sort-then-merge
// formulation, but without sort.Slice: the per-ACK hot path calls this
// for every SACK block and sort.Slice allocates a closure plus a
// reflect-based swapper on every call, which dominated the allocation
// profile of both download benchmarks.
func insertRange(rs []seg.SACKBlock, blk seg.SACKBlock) []seg.SACKBlock {
	// Find the first range whose Start is strictly above blk.Start.
	i := 0
	for i < len(rs) && seg.SeqLEQ(rs[i].Start, blk.Start) {
		i++
	}
	// If blk touches its predecessor, extend that range instead of
	// inserting, then absorb any successors the extension now covers.
	if i > 0 && seg.SeqLEQ(blk.Start, rs[i-1].End) {
		if seg.SeqGT(blk.End, rs[i-1].End) {
			rs[i-1].End = blk.End
			j := i
			for j < len(rs) && seg.SeqLEQ(rs[j].Start, rs[i-1].End) {
				if seg.SeqGT(rs[j].End, rs[i-1].End) {
					rs[i-1].End = rs[j].End
				}
				j++
			}
			if j > i {
				rs = append(rs[:i], rs[j:]...)
			}
		}
		return rs
	}
	// blk opens a new range at position i; swallow successors it covers.
	j := i
	for j < len(rs) && seg.SeqLEQ(rs[j].Start, blk.End) {
		if seg.SeqGT(rs[j].End, blk.End) {
			blk.End = rs[j].End
		}
		j++
	}
	if j > i {
		rs[i] = blk
		return append(rs[:i+1], rs[j:]...)
	}
	rs = append(rs, seg.SACKBlock{})
	copy(rs[i+1:], rs[i:])
	rs[i] = blk
	return rs
}

// sackScoreboard tracks which parts of the unacknowledged send space
// the peer has selectively acknowledged, in the spirit of RFC 6675.
// Ranges are half-open [start, end) in sequence space, kept sorted and
// disjoint.
type sackScoreboard struct {
	ranges []seg.SACKBlock
}

// Add merges a SACK block into the scoreboard.
func (b *sackScoreboard) Add(blk seg.SACKBlock) {
	if !seg.SeqLT(blk.Start, blk.End) {
		return
	}
	b.ranges = insertRange(b.ranges, blk)
}

// AdvanceUna drops ranges at or below the new cumulative ACK point.
func (b *sackScoreboard) AdvanceUna(una uint32) {
	out := b.ranges[:0]
	for _, r := range b.ranges {
		if seg.SeqLEQ(r.End, una) {
			continue
		}
		if seg.SeqLT(r.Start, una) {
			r.Start = una
		}
		out = append(out, r)
	}
	b.ranges = out
}

// IsSacked reports whether the whole range [start,end) is covered.
func (b *sackScoreboard) IsSacked(start, end uint32) bool {
	for _, r := range b.ranges {
		if seg.SeqLEQ(r.Start, start) && seg.SeqGEQ(r.End, end) {
			return true
		}
	}
	return false
}

// SackedAbove reports the number of SACKed bytes at or above seqn.
func (b *sackScoreboard) SackedAbove(seqn uint32) int64 {
	var n int64
	for _, r := range b.ranges {
		start, end := r.Start, r.End
		if seg.SeqLT(start, seqn) {
			start = seqn
		}
		if seg.SeqLT(start, end) {
			n += int64(end - start)
		}
	}
	return n
}

// TotalSacked reports the number of bytes currently SACKed.
func (b *sackScoreboard) TotalSacked() int64 {
	var n int64
	for _, r := range b.ranges {
		n += int64(r.End - r.Start)
	}
	return n
}

// HighestSacked returns the top SACKed sequence, or una if none.
func (b *sackScoreboard) HighestSacked(una uint32) uint32 {
	if len(b.ranges) == 0 {
		return una
	}
	return b.ranges[len(b.ranges)-1].End
}

// Reset clears the scoreboard.
func (b *sackScoreboard) Reset() { b.ranges = b.ranges[:0] }

// rcvRanges tracks out-of-order received spans on the receive side,
// both to generate SACK blocks and to know when arriving data is
// duplicate. Ranges are sorted, disjoint, all above rcvNxt.
type rcvRanges struct {
	ranges []seg.SACKBlock
	recent seg.SACKBlock // most recently changed block, reported first
}

// Add records an arrived span.
func (r *rcvRanges) Add(start, end uint32) {
	if !seg.SeqLT(start, end) {
		return
	}
	r.recent = seg.SACKBlock{Start: start, End: end}
	r.ranges = insertRange(r.ranges, r.recent)
}

// NextContiguous reports how far rcvNxt can advance given the stored
// ranges, consuming any range that begins at or below rcvNxt.
func (r *rcvRanges) NextContiguous(rcvNxt uint32) uint32 {
	out := r.ranges[:0]
	for _, x := range r.ranges {
		if seg.SeqLEQ(x.Start, rcvNxt) {
			if seg.SeqGT(x.End, rcvNxt) {
				rcvNxt = x.End
			}
			continue
		}
		out = append(out, x)
	}
	r.ranges = out
	return rcvNxt
}

// Blocks renders up to max SACK blocks, most recently updated first,
// as RFC 2018 specifies.
func (r *rcvRanges) Blocks(max int) []seg.SACKBlock {
	if len(r.ranges) == 0 {
		return nil
	}
	return r.AppendBlocks(make([]seg.SACKBlock, 0, max), max)
}

// AppendBlocks is Blocks with a caller-supplied destination, so the
// per-ACK path can reuse one scratch array instead of allocating.
func (r *rcvRanges) AppendBlocks(blocks []seg.SACKBlock, max int) []seg.SACKBlock {
	if len(r.ranges) == 0 {
		return blocks
	}
	// Most recent first.
	for _, x := range r.ranges {
		if seg.SeqLEQ(x.Start, r.recent.Start) && seg.SeqGEQ(x.End, r.recent.End) {
			blocks = append(blocks, x)
			break
		}
	}
	for i := len(r.ranges) - 1; i >= 0 && len(blocks) < max; i-- {
		x := r.ranges[i]
		dup := false
		for _, bseen := range blocks {
			if bseen == x {
				dup = true
				break
			}
		}
		if !dup {
			blocks = append(blocks, x)
		}
	}
	return blocks
}

// Contains reports whether [start,end) has already been received
// out-of-order.
func (r *rcvRanges) Contains(start, end uint32) bool {
	for _, x := range r.ranges {
		if seg.SeqLEQ(x.Start, start) && seg.SeqGEQ(x.End, end) {
			return true
		}
	}
	return false
}

// BufferedBytes reports the total bytes held out-of-order.
func (r *rcvRanges) BufferedBytes() int64 {
	var n int64
	for _, x := range r.ranges {
		n += int64(x.End - x.Start)
	}
	return n
}
