package tcp

import (
	"sort"

	"mptcplab/internal/seg"
)

// sackScoreboard tracks which parts of the unacknowledged send space
// the peer has selectively acknowledged, in the spirit of RFC 6675.
// Ranges are half-open [start, end) in sequence space, kept sorted and
// disjoint.
type sackScoreboard struct {
	ranges []seg.SACKBlock
}

// Add merges a SACK block into the scoreboard.
func (b *sackScoreboard) Add(blk seg.SACKBlock) {
	if !seg.SeqLT(blk.Start, blk.End) {
		return
	}
	b.ranges = append(b.ranges, blk)
	sort.Slice(b.ranges, func(i, j int) bool {
		return seg.SeqLT(b.ranges[i].Start, b.ranges[j].Start)
	})
	merged := b.ranges[:1]
	for _, r := range b.ranges[1:] {
		last := &merged[len(merged)-1]
		if seg.SeqLEQ(r.Start, last.End) {
			if seg.SeqGT(r.End, last.End) {
				last.End = r.End
			}
		} else {
			merged = append(merged, r)
		}
	}
	b.ranges = merged
}

// AdvanceUna drops ranges at or below the new cumulative ACK point.
func (b *sackScoreboard) AdvanceUna(una uint32) {
	out := b.ranges[:0]
	for _, r := range b.ranges {
		if seg.SeqLEQ(r.End, una) {
			continue
		}
		if seg.SeqLT(r.Start, una) {
			r.Start = una
		}
		out = append(out, r)
	}
	b.ranges = out
}

// IsSacked reports whether the whole range [start,end) is covered.
func (b *sackScoreboard) IsSacked(start, end uint32) bool {
	for _, r := range b.ranges {
		if seg.SeqLEQ(r.Start, start) && seg.SeqGEQ(r.End, end) {
			return true
		}
	}
	return false
}

// SackedAbove reports the number of SACKed bytes at or above seqn.
func (b *sackScoreboard) SackedAbove(seqn uint32) int64 {
	var n int64
	for _, r := range b.ranges {
		start, end := r.Start, r.End
		if seg.SeqLT(start, seqn) {
			start = seqn
		}
		if seg.SeqLT(start, end) {
			n += int64(end - start)
		}
	}
	return n
}

// TotalSacked reports the number of bytes currently SACKed.
func (b *sackScoreboard) TotalSacked() int64 {
	var n int64
	for _, r := range b.ranges {
		n += int64(r.End - r.Start)
	}
	return n
}

// HighestSacked returns the top SACKed sequence, or una if none.
func (b *sackScoreboard) HighestSacked(una uint32) uint32 {
	if len(b.ranges) == 0 {
		return una
	}
	return b.ranges[len(b.ranges)-1].End
}

// Reset clears the scoreboard.
func (b *sackScoreboard) Reset() { b.ranges = b.ranges[:0] }

// rcvRanges tracks out-of-order received spans on the receive side,
// both to generate SACK blocks and to know when arriving data is
// duplicate. Ranges are sorted, disjoint, all above rcvNxt.
type rcvRanges struct {
	ranges []seg.SACKBlock
	recent seg.SACKBlock // most recently changed block, reported first
}

// Add records an arrived span.
func (r *rcvRanges) Add(start, end uint32) {
	if !seg.SeqLT(start, end) {
		return
	}
	r.recent = seg.SACKBlock{Start: start, End: end}
	r.ranges = append(r.ranges, r.recent)
	sort.Slice(r.ranges, func(i, j int) bool {
		return seg.SeqLT(r.ranges[i].Start, r.ranges[j].Start)
	})
	merged := r.ranges[:1]
	for _, x := range r.ranges[1:] {
		last := &merged[len(merged)-1]
		if seg.SeqLEQ(x.Start, last.End) {
			if seg.SeqGT(x.End, last.End) {
				last.End = x.End
			}
		} else {
			merged = append(merged, x)
		}
	}
	r.ranges = merged
}

// NextContiguous reports how far rcvNxt can advance given the stored
// ranges, consuming any range that begins at or below rcvNxt.
func (r *rcvRanges) NextContiguous(rcvNxt uint32) uint32 {
	out := r.ranges[:0]
	for _, x := range r.ranges {
		if seg.SeqLEQ(x.Start, rcvNxt) {
			if seg.SeqGT(x.End, rcvNxt) {
				rcvNxt = x.End
			}
			continue
		}
		out = append(out, x)
	}
	r.ranges = out
	return rcvNxt
}

// Blocks renders up to max SACK blocks, most recently updated first,
// as RFC 2018 specifies.
func (r *rcvRanges) Blocks(max int) []seg.SACKBlock {
	if len(r.ranges) == 0 {
		return nil
	}
	return r.AppendBlocks(make([]seg.SACKBlock, 0, max), max)
}

// AppendBlocks is Blocks with a caller-supplied destination, so the
// per-ACK path can reuse one scratch array instead of allocating.
func (r *rcvRanges) AppendBlocks(blocks []seg.SACKBlock, max int) []seg.SACKBlock {
	if len(r.ranges) == 0 {
		return blocks
	}
	// Most recent first.
	for _, x := range r.ranges {
		if seg.SeqLEQ(x.Start, r.recent.Start) && seg.SeqGEQ(x.End, r.recent.End) {
			blocks = append(blocks, x)
			break
		}
	}
	for i := len(r.ranges) - 1; i >= 0 && len(blocks) < max; i-- {
		x := r.ranges[i]
		dup := false
		for _, bseen := range blocks {
			if bseen == x {
				dup = true
				break
			}
		}
		if !dup {
			blocks = append(blocks, x)
		}
	}
	return blocks
}

// Contains reports whether [start,end) has already been received
// out-of-order.
func (r *rcvRanges) Contains(start, end uint32) bool {
	for _, x := range r.ranges {
		if seg.SeqLEQ(x.Start, start) && seg.SeqGEQ(x.End, end) {
			return true
		}
	}
	return false
}

// BufferedBytes reports the total bytes held out-of-order.
func (r *rcvRanges) BufferedBytes() int64 {
	var n int64
	for _, x := range r.ranges {
		n += int64(x.End - x.Start)
	}
	return n
}
