package tcp

import (
	"testing"

	"mptcplab/internal/seg"
	"mptcplab/internal/sim"
	"mptcplab/internal/units"
)

// Delayed ACKs batch roughly two data segments per ACK on a clean
// bulk transfer.
func TestDelayedAcksBatch(t *testing.T) {
	tn := newTestNet(t, 50*units.Mbps, 10*sim.Millisecond, 0, 2*units.MB)
	_, server, _ := tn.runDownload(t, 2*units.MB, DefaultConfig())
	ratio := float64(server.Stats.AcksRcvd) / float64(server.Stats.DataPktsSent)
	if ratio > 0.75 {
		t.Errorf("acks/data = %.2f; delayed ACKs not batching", ratio)
	}
	if ratio < 0.3 {
		t.Errorf("acks/data = %.2f; implausibly few ACKs", ratio)
	}
}

// The delayed-ACK flush timer bounds ACK latency for odd trailing
// segments: a single small write gets acknowledged within the timeout
// even though the 2-segment threshold is never reached.
func TestDelayedAckFlushTimer(t *testing.T) {
	tn := newTestNet(t, 50*units.Mbps, 5*sim.Millisecond, 0, 1*units.MB)
	cfg := DefaultConfig()

	var server *Endpoint
	lis := Listen(tn.server, tn.net, tn.sAddr.Port, cfg, tn.rng.Child("server"))
	lis.OnAccept = func(ep *Endpoint, syn *seg.Segment) bool {
		server = ep
		ep.OnEstablished = func() { ep.Write(500) } // one lone segment
		return true
	}
	var ackedAt sim.Time = -1
	client := NewEndpoint(tn.client, tn.net, tn.cAddr, tn.sAddr, cfg, tn.rng.Child("client"))
	client.Connect()
	tn.sim.RunUntil(30 * sim.Millisecond) // established + data delivered
	if server == nil || server.UnackedBytes() == 0 {
		t.Skip("segment already acknowledged; timing premise not met")
	}
	for i := 0; i < 100 && ackedAt < 0; i++ {
		tn.sim.RunFor(sim.Millisecond)
		if server.UnackedBytes() == 0 {
			ackedAt = tn.sim.Now()
		}
	}
	if ackedAt < 0 {
		t.Fatal("lone segment never acknowledged")
	}
	// 40ms delack timeout + one-way delay: well under 100ms.
	if ackedAt > 100*sim.Millisecond {
		t.Errorf("lone segment acked at %v; flush timer too slow", ackedAt)
	}
}
