package tcp

import (
	"math/rand"
	"sort"
	"testing"

	"mptcplab/internal/seg"
)

// refInsert is the pre-optimization formulation of range insertion:
// append, sort by Start, merge left to right. insertRange must produce
// exactly the same disjoint set; this reference keeps it honest.
func refInsert(rs []seg.SACKBlock, blk seg.SACKBlock) []seg.SACKBlock {
	rs = append(rs, blk)
	sort.Slice(rs, func(i, j int) bool {
		return seg.SeqLT(rs[i].Start, rs[j].Start)
	})
	merged := rs[:1]
	for _, r := range rs[1:] {
		last := &merged[len(merged)-1]
		if seg.SeqLEQ(r.Start, last.End) {
			if seg.SeqGT(r.End, last.End) {
				last.End = r.End
			}
		} else {
			merged = append(merged, r)
		}
	}
	return merged
}

func equalRanges(a, b []seg.SACKBlock) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestInsertRangeMatchesReference drives the allocation-free insertion
// and the sort-then-merge reference through the same random block
// streams (including wraparound starts, overlaps, adjacency, and
// containment) and demands identical range sets at every step.
func TestInsertRangeMatchesReference(t *testing.T) {
	bases := []uint32{0, 1, 1 << 20, 0xffff_ff00} // last exercises seq wraparound
	for _, base := range bases {
		rng := rand.New(rand.NewSource(int64(base) + 7))
		var got, want []seg.SACKBlock
		for step := 0; step < 4000; step++ {
			start := base + uint32(rng.Intn(5000))
			end := start + uint32(1+rng.Intn(400))
			blk := seg.SACKBlock{Start: start, End: end}
			got = insertRange(got, blk)
			want = refInsert(want, blk)
			if !equalRanges(got, want) {
				t.Fatalf("base %#x step %d: insertRange %v != reference %v after %v",
					base, step, got, want, blk)
			}
			// Occasionally advance the cumulative point like AdvanceUna
			// does, to keep the sets small and the positions varied.
			if step%97 == 96 && len(want) > 0 {
				una := want[0].End
				b := sackScoreboard{ranges: got}
				b.AdvanceUna(una)
				got = b.ranges
				out := want[:0]
				for _, r := range want {
					if seg.SeqLEQ(r.End, una) {
						continue
					}
					if seg.SeqLT(r.Start, una) {
						r.Start = una
					}
					out = append(out, r)
				}
				want = out
			}
		}
	}
}

// TestInsertRangeAllocFree pins the per-ACK SACK bookkeeping at zero
// steady-state allocations: once the range slices reach their working
// capacity, neither scoreboard nor receiver-side insertion may touch
// the heap. This is the alloc-gate for the single-path allocs gap
// (sort.Slice's closure + reflect swapper used to dominate the
// BenchmarkTCPSingle4MB profile).
func TestInsertRangeAllocFree(t *testing.T) {
	var b sackScoreboard
	var r rcvRanges
	// Warm to working capacity: disjoint ranges, then coalesce.
	storm := func() {
		for i := uint32(0); i < 32; i++ {
			b.Add(seg.SACKBlock{Start: i * 100, End: i*100 + 40})
			r.Add(i*100, i*100+40)
		}
		for i := uint32(0); i < 32; i++ {
			b.Add(seg.SACKBlock{Start: i*100 + 30, End: (i + 1) * 100})
			r.Add(i*100+30, (i+1)*100)
		}
		b.AdvanceUna(32 * 100)
		r.NextContiguous(32 * 100)
	}
	storm()
	allocs := testing.AllocsPerRun(100, storm)
	if allocs != 0 {
		t.Fatalf("SACK range insertion allocates %v/run in steady state, want 0", allocs)
	}
}
