package tcp

import "mptcplab/internal/seg"

// newSegment builds an outgoing segment with the current ACK state and
// advertised window. The segment comes from the host's pool and is
// surrendered when sent; every newSegment must be paired with a
// host.Send.
func (e *Endpoint) newSegment(flags seg.Flags, seqn uint32, payload int) *seg.Segment {
	s := e.host.NewSegment()
	s.Src = e.Local
	s.Dst = e.Remote
	s.Seq = seqn
	s.Flags = flags
	s.PayloadLen = payload
	if flags.Has(seg.ACK) {
		s.Ack = e.rcvNxt
	}
	s.Window = e.wireWindow(flags.Has(seg.SYN))
	return s
}

// advertisedWindow computes the receive window in bytes, honoring an
// MPTCP shared-buffer override.
func (e *Endpoint) advertisedWindow() int64 {
	if e.WindowOverride != nil {
		w := e.WindowOverride()
		if w < 0 {
			w = 0
		}
		return w
	}
	w := int64(e.cfg.RcvBuf) - e.ooo.BufferedBytes()
	if w < 0 {
		w = 0
	}
	return w
}

// wireWindow converts the advertised window to the 16-bit wire field,
// applying our window-scale shift on non-SYN segments (RFC 7323).
func (e *Endpoint) wireWindow(isSYN bool) uint32 {
	w := e.advertisedWindow()
	if !isSYN {
		w >>= e.cfg.WindowScale
	}
	if w > 0xFFFF {
		w = 0xFFFF
	}
	return uint32(w)
}

// sendSYN emits the initial SYN or SYN-ACK and arms the handshake
// retransmission timer.
func (e *Endpoint) sendSYN(isAck bool) {
	flags := seg.SYN
	kind := KindSYN
	if isAck {
		flags |= seg.ACK
		kind = KindSYNACK
	}
	s := e.newSegment(flags, e.iss, 0)
	s.AddOption(seg.MSSOption{MSS: uint16(e.cfg.MSS)})
	s.AddOption(seg.WindowScaleOption{Shift: e.cfg.WindowScale})
	s.AddOption(seg.SACKPermittedOption{})
	if e.BuildOptions != nil {
		e.BuildOptions(s, kind)
	}
	e.track(e.iss, e.iss+1)
	e.sndNxt = e.iss + 1
	e.host.Send(s)
	e.armRTX()
}

// track records a transmission range for RTT sampling, loss marking,
// and retransmission.
func (e *Endpoint) track(seqn, end uint32) {
	e.inflight = append(e.inflight, txRec{seq: seqn, end: end, sentAt: e.sim.Now()})
}

// trySend pushes as much data as the windows allow, plus the FIN when
// its turn comes. It is the single exit point of the send path: called
// on app writes, ACK arrivals, and recovery events.
func (e *Endpoint) trySend() {
	if e.state == StateClosed || e.state == StateListen || e.state == StateSynSent || e.state == StateSynRcvd {
		return
	}
	// Retransmit marked-lost ranges first (SACK-based recovery).
	e.retransmitLost()

	wnd := e.cwndBytes() + e.ltmBonus
	if e.rwnd < wnd {
		wnd = e.rwnd
	}
	dataEnd := e.sndBufEnd
	if e.finQueued {
		dataEnd = e.finSeq
	}
	// Sequence-space bound: sndNxt must never pass the advertised right
	// edge (una + rwnd). The pipe gate alone cannot guarantee that —
	// pipe() discounts SACKed data, so under heavy SACK it would let
	// fresh data slip beyond what the peer offered.
	seqSpace := e.rwnd - int64(e.sndNxt-e.sndUna)
	for seg.SeqLT(e.sndNxt, dataEnd) && e.pipe() < wnd && seqSpace > 0 {
		n := int64(dataEnd - e.sndNxt)
		if n > int64(e.cfg.MSS) {
			n = int64(e.cfg.MSS)
		}
		if avail := wnd - e.pipe(); n > avail {
			// Don't send runt segments when nearly window-limited,
			// except to finish the stream.
			if avail < n && seg.SeqLT(e.sndNxt+uint32(avail), dataEnd) && avail < int64(e.cfg.MSS) {
				break
			}
			n = avail
		}
		if n > seqSpace {
			n = seqSpace
		}
		if n <= 0 {
			break
		}
		if e.SegmentLimit != nil {
			if lim := e.SegmentLimit(e.StreamOffset(e.sndNxt), int(n)); lim > 0 && int64(lim) < n {
				n = int64(lim)
			}
		}
		// Advance sndNxt before emitting: emitData arms the
		// retransmission timer, which must see the data as
		// outstanding even for a lone segment.
		start := e.sndNxt
		e.sndNxt += uint32(n)
		seqSpace -= n
		e.emitData(start, int(n), false)
	}
	// FIN once all data is out.
	if e.finQueued && e.sndNxt == e.finSeq && seg.SeqLT(e.sndNxt, e.sndBufEnd) {
		s := e.newSegment(seg.FIN|seg.ACK, e.finSeq, 0)
		if e.BuildOptions != nil {
			e.BuildOptions(s, KindFin)
		}
		e.track(e.finSeq, e.finSeq+1)
		e.sndNxt = e.finSeq + 1
		e.host.Send(s)
		e.delAckPending = 0
		e.delAckTimer.Stop()
		e.armRTX()
	}
}

// emitData sends one payload segment (fresh or retransmission).
func (e *Endpoint) emitData(seqn uint32, n int, isRtx bool) {
	s := e.newSegment(seg.ACK, seqn, n)
	if seg.SeqGEQ(seqn+uint32(n), e.sndBufEnd) || seqn+uint32(n) == e.finSeq {
		s.Flags |= seg.PSH
	}
	s.Retransmit = isRtx
	if e.BuildOptions != nil {
		e.BuildOptions(s, KindData)
	}
	if !isRtx {
		e.track(seqn, seqn+uint32(n))
	}
	e.Stats.DataPktsSent++
	e.Stats.BytesSent += int64(n)
	if isRtx {
		e.Stats.DataPktsRetrans++
		e.Stats.BytesRetrans += int64(n)
	}
	// A data segment also carries our current ACK; cancel delayed ACK.
	e.delAckPending = 0
	e.delAckTimer.Stop()
	e.host.Send(s)
	e.armRTX()
}

// retransmitLost resends ranges marked lost, respecting cwnd — except
// for the head of the window, which must always be retransmittable:
// after an RTO the pipe estimate still counts the (presumed-in-flight)
// rest of the window, and gating the head on it would deadlock.
func (e *Endpoint) retransmitLost() {
	wnd := e.cwndBytes()
	for i := range e.inflight {
		r := &e.inflight[i]
		if !r.lost {
			continue
		}
		if r.seq != e.sndUna && e.pipe() >= wnd {
			return
		}
		if e.board.IsSacked(r.seq, r.end) {
			r.lost = false
			continue
		}
		r.lost = false
		r.rtx++
		r.sentAt = e.sim.Now()
		if r.end == r.seq+1 && (r.seq == e.finSeq) {
			// Lost FIN.
			s := e.newSegment(seg.FIN|seg.ACK, r.seq, 0)
			s.Retransmit = true
			if e.BuildOptions != nil {
				e.BuildOptions(s, KindFin)
			}
			e.host.Send(s)
			e.armRTX()
			continue
		}
		// Retransmit in MSS-sized pieces.
		start := r.seq
		for seg.SeqLT(start, r.end) {
			n := int64(r.end - start)
			if n > int64(e.cfg.MSS) {
				n = int64(e.cfg.MSS)
			}
			e.emitData(start, int(n), true)
			start += uint32(n)
		}
	}
}

// armRTX (re)starts the retransmission timer if anything is in flight.
func (e *Endpoint) armRTX() {
	if e.sndUna == e.sndNxt {
		e.rtxTimer.Stop()
		return
	}
	if !e.rtxTimer.Armed() {
		e.rtxTimer.Reset(e.est.RTO())
	}
}

// restartRTX reschedules the timer from now (on forward ACK progress).
func (e *Endpoint) restartRTX() {
	e.rtxTimer.Stop()
	if e.sndUna != e.sndNxt {
		e.rtxTimer.Reset(e.est.RTO())
	}
}

// onRTO handles a retransmission timeout: exponential backoff, window
// collapse to one segment, and go-back-N style recovery driven by the
// scoreboard (unSACKed in-flight data is marked lost).
func (e *Endpoint) onRTO() {
	if e.state == StateClosed || e.state == StateTimeWait {
		return
	}
	e.Stats.Timeouts++
	e.est.Backoff()

	switch e.state {
	case StateSynSent, StateSynRcvd:
		// Retransmit the handshake SYN.
		if len(e.inflight) > 0 {
			e.inflight[0].rtx++
			e.inflight[0].sentAt = e.sim.Now()
		}
		flags := seg.SYN
		kind := KindSYN
		if e.state == StateSynRcvd {
			flags |= seg.ACK
			kind = KindSYNACK
		}
		s := e.newSegment(flags, e.iss, 0)
		s.Retransmit = true
		s.AddOption(seg.MSSOption{MSS: uint16(e.cfg.MSS)})
		s.AddOption(seg.WindowScaleOption{Shift: e.cfg.WindowScale})
		s.AddOption(seg.SACKPermittedOption{})
		if e.BuildOptions != nil {
			e.BuildOptions(s, kind)
		}
		e.host.Send(s)
		e.rtxTimer.Reset(e.est.RTO())
		return
	}

	e.consecRTO++

	// Loss event for the congestion controller.
	e.noteLossEvent()
	e.ssthresh = e.cwnd / 2
	if e.ssthresh < 2 {
		e.ssthresh = 2
	}
	e.cwnd = 1
	e.inRecovery = false
	e.dupAcks = 0

	// Mark everything un-SACKed as lost (Linux's CA_Loss go-back-N).
	// Only the head goes out now — retransmitLost lets the collapsed
	// window cover one segment — and each returning ACK re-clocks the
	// next hole under slow start. Marking just the head would strand
	// the rest: once the RTO clears inRecovery, no partial-ACK
	// hole-marking runs, so recovery would degenerate to one segment
	// per (Karn-backed-off) timeout. If the timeout was spurious (a
	// delay spike, common on 3G paths), the late ACK covers the whole
	// flight, prunes these records, and nothing is resent.
	for i := range e.inflight {
		r := &e.inflight[i]
		if !e.board.IsSacked(r.seq, r.end) {
			r.lost = true
		}
	}
	e.rtxTimer.Reset(e.est.RTO())
	e.trySend()
	if e.OnTimeout != nil {
		e.OnTimeout(e.consecRTO)
	}
}

// noteLossEvent rolls the OLIA inter-loss interval counters.
func (e *Endpoint) noteLossEvent() {
	e.ackedPrevLoss = e.ackedSinceLoss
	e.ackedSinceLoss = 0
}

// sendAck emits a pure ACK immediately.
func (e *Endpoint) sendAck() {
	s := e.newSegment(seg.ACK, e.sndNxt, 0)
	if blocks := e.ooo.AppendBlocks(e.sackScratch[:0], 3); len(blocks) > 0 {
		s.AddSACK(blocks)
	}
	if e.BuildOptions != nil {
		e.BuildOptions(s, KindAck)
	}
	e.Stats.AcksSent++
	e.delAckPending = 0
	e.delAckTimer.Stop()
	e.host.Send(s)
}

// scheduleAck implements delayed ACKs: every DelAckCount-th full
// segment (or the flush timer) produces an ACK; out-of-order arrivals
// are acknowledged immediately to feed dupack-based recovery.
func (e *Endpoint) scheduleAck(immediate bool) {
	if immediate {
		e.sendAck()
		return
	}
	e.delAckPending++
	if e.cfg.DelAckCount > 0 && e.delAckPending >= e.cfg.DelAckCount {
		e.sendAck()
		return
	}
	if !e.delAckTimer.Armed() {
		e.delAckTimer.Reset(e.cfg.DelAckTimeout)
	}
}

func (e *Endpoint) flushDelAck() {
	if e.delAckPending > 0 {
		e.sendAck()
	}
}

// PushAck forces an immediate pure ACK — used by MPTCP to flush
// pending options (ADD_ADDR, DataFin, window updates after a shared-
// buffer drain) without waiting for data to ride on.
func (e *Endpoint) PushAck() {
	if e.Established() {
		e.sendAck()
	}
}

// WindowLimited reports whether transmission is currently blocked by
// the peer's receive window rather than by cwnd — the trigger for
// MPTCP's receive-buffer penalization heuristic.
func (e *Endpoint) WindowLimited() bool {
	return e.rwnd < e.cwndBytes() && e.pipe() >= e.rwnd
}

// RwndBinding reports whether the peer's receive window, not cwnd, is
// what bounds SendSpace right now. MPTCP's scheduler consults it: a
// window-bound subflow should be packed to the brim (so a stall is
// observable as such), while a cwnd-bound one defers sub-MSS leftovers
// to keep segments full-sized.
func (e *Endpoint) RwndBinding() bool {
	return e.rwnd < e.cwndBytes()
}
