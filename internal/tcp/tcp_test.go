package tcp

import (
	"testing"

	"mptcplab/internal/netem"
	"mptcplab/internal/seg"
	"mptcplab/internal/sim"
	"mptcplab/internal/units"
)

// testNet wires a client and server host through symmetric links.
type testNet struct {
	sim      *sim.Simulator
	net      *netem.Network
	client   *netem.Host
	server   *netem.Host
	up, down *netem.Link
	cAddr    seg.Addr
	sAddr    seg.Addr
	rng      *sim.RNG
}

func newTestNet(t testing.TB, rate units.BitRate, prop sim.Time, loss float64, queue units.ByteCount) *testNet {
	t.Helper()
	s := sim.New()
	rng := sim.NewRNG(42)
	n := netem.NewNetwork(s)
	client := n.NewHost("client")
	server := n.NewHost("server")

	up := netem.NewLink(s, rng, "up")
	up.Rate = rate
	up.PropDelay = prop
	up.QueueLimit = queue
	down := netem.NewLink(s, rng, "down")
	down.Rate = rate
	down.PropDelay = prop
	down.QueueLimit = queue
	if loss > 0 {
		down.Loss = netem.BernoulliLoss{P: loss}
	}

	cAddr := seg.MakeAddr("10.0.0.2", 40000)
	sAddr := seg.MakeAddr("192.168.1.1", 8080)
	n.AddDuplexRoute(cAddr.IP, sAddr.IP, client, server, []*netem.Link{up}, []*netem.Link{down})
	return &testNet{sim: s, net: n, client: client, server: server,
		up: up, down: down, cAddr: cAddr, sAddr: sAddr, rng: rng}
}

// runDownload performs a server->client transfer of size bytes and
// returns (client endpoint, server endpoint, completion time).
func (tn *testNet) runDownload(t testing.TB, size int, cfg Config) (*Endpoint, *Endpoint, sim.Time) {
	t.Helper()
	var serverEP *Endpoint
	var rcvd int
	var done sim.Time = -1

	lis := Listen(tn.server, tn.net, tn.sAddr.Port, cfg, tn.rng.Child("server"))
	lis.OnAccept = func(ep *Endpoint, syn *seg.Segment) bool {
		serverEP = ep
		ep.OnEstablished = func() {
			ep.Write(size)
			ep.Close()
		}
		return true
	}

	client := NewEndpoint(tn.client, tn.net, tn.cAddr, tn.sAddr, cfg, tn.rng.Child("client"))
	client.OnDeliver = func(n int) {
		rcvd += n
		if rcvd >= size && done < 0 {
			done = tn.sim.Now()
			client.Close()
		}
	}
	client.Connect()

	tn.sim.RunUntil(10 * 60 * sim.Second)
	if rcvd != size {
		t.Fatalf("received %d of %d bytes (client=%v server=%v)", rcvd, size, client, serverEP)
	}
	if done < 0 {
		t.Fatalf("download never completed")
	}
	return client, serverEP, done
}

func TestHandshakeAndSmallTransfer(t *testing.T) {
	tn := newTestNet(t, 100*units.Mbps, 10*sim.Millisecond, 0, 1*units.MB)
	client, server, done := tn.runDownload(t, 8*units.KB, DefaultConfig())

	// 8 KB fits in the initial window: SYN, SYN-ACK, ACK, data, so
	// roughly 2 RTTs (40 ms) plus serialization.
	if done > 100*sim.Millisecond {
		t.Errorf("8KB download took %v, want < 100ms", done)
	}
	if server.Stats.DataPktsRetrans != 0 {
		t.Errorf("unexpected retransmissions: %d", server.Stats.DataPktsRetrans)
	}
	if client.Stats.DataPktsRcvd == 0 {
		t.Errorf("client counted no data packets")
	}
}

func TestLossyTransferCompletes(t *testing.T) {
	tn := newTestNet(t, 20*units.Mbps, 15*sim.Millisecond, 0.02, 1*units.MB)
	_, server, _ := tn.runDownload(t, 2*units.MB, DefaultConfig())
	if server.Stats.DataPktsRetrans == 0 {
		t.Errorf("expected retransmissions on a 2%% lossy path")
	}
	lr := server.Stats.LossRate()
	if lr < 0.005 || lr > 0.10 {
		t.Errorf("loss rate %.3f implausible for p=0.02", lr)
	}
}

func TestThroughputApproachesLinkRate(t *testing.T) {
	tn := newTestNet(t, 10*units.Mbps, 20*sim.Millisecond, 0, 512*units.KB)
	size := 4 * units.MB
	_, _, done := tn.runDownload(t, size, DefaultConfig())

	ideal := units.BitRate(10 * units.Mbps).TransmitTime(units.ByteCount(size))
	if done > 3*ideal {
		t.Errorf("4MB over 10Mbps took %v, ideal %v: not using the link", done, ideal)
	}
}

func TestRTTInflationFromBufferbloat(t *testing.T) {
	// Slow link with a deep queue: SRTT should grow well beyond the
	// propagation RTT once congestion avoidance fills the buffer.
	tn := newTestNet(t, 8*units.Mbps, 30*sim.Millisecond, 0, 2*units.MB)
	var maxRTT sim.Time
	cfg := DefaultConfig()

	lis := Listen(tn.server, tn.net, tn.sAddr.Port, cfg, tn.rng.Child("server"))
	var size = 8 * units.MB
	var rcvd int
	lis.OnAccept = func(ep *Endpoint, syn *seg.Segment) bool {
		ep.OnRTTSample = func(rtt sim.Time) {
			if rtt > maxRTT {
				maxRTT = rtt
			}
		}
		ep.OnEstablished = func() { ep.Write(size); ep.Close() }
		return true
	}
	client := NewEndpoint(tn.client, tn.net, tn.cAddr, tn.sAddr, cfg, tn.rng.Child("client"))
	client.OnDeliver = func(n int) { rcvd += n }
	client.Connect()
	tn.sim.RunUntil(5 * 60 * sim.Second)

	if rcvd != size {
		t.Fatalf("received %d of %d", rcvd, size)
	}
	if maxRTT < 100*sim.Millisecond {
		t.Errorf("max RTT %v; want bufferbloat above 100ms (base 60ms)", maxRTT)
	}
}

func TestSsthreshLimitsSlowStart(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SSThresh = 64 * units.KB
	tn := newTestNet(t, 100*units.Mbps, 20*sim.Millisecond, 0, 4*units.MB)
	_, server, _ := tn.runDownload(t, 1*units.MB, cfg)
	// After slow start capped at 64KB/1460 ≈ 44 packets, growth is
	// linear; cwnd should not explode.
	if server.Cwnd() > 500 {
		t.Errorf("cwnd %f implausibly large with 64KB ssthresh", server.Cwnd())
	}
}

func TestCleanClose(t *testing.T) {
	tn := newTestNet(t, 100*units.Mbps, 5*sim.Millisecond, 0, 1*units.MB)
	client, server, _ := tn.runDownload(t, 64*units.KB, DefaultConfig())
	tn.sim.RunUntil(tn.sim.Now() + 5*sim.Second)
	if got := client.State(); got != StateClosed && got != StateTimeWait {
		t.Errorf("client state %v after close", got)
	}
	if got := server.State(); got != StateClosed && got != StateTimeWait {
		t.Errorf("server state %v after close", got)
	}
}

func TestRTOAfterTotalBlackout(t *testing.T) {
	// 100% loss on the data direction after establishment forces RTOs.
	tn := newTestNet(t, 10*units.Mbps, 10*sim.Millisecond, 0, 1*units.MB)
	cfg := DefaultConfig()

	var server *Endpoint
	lis := Listen(tn.server, tn.net, tn.sAddr.Port, cfg, tn.rng.Child("server"))
	lis.OnAccept = func(ep *Endpoint, syn *seg.Segment) bool {
		server = ep
		ep.OnEstablished = func() { ep.Write(4 * units.MB) }
		return true
	}
	client := NewEndpoint(tn.client, tn.net, tn.cAddr, tn.sAddr, cfg, tn.rng.Child("client"))
	client.Connect()
	tn.sim.RunUntil(60 * sim.Millisecond)
	// Blackout.
	tn.down.Loss = netem.BernoulliLoss{P: 1}
	tn.sim.RunUntil(10 * sim.Second)
	if server == nil {
		t.Fatal("no server endpoint")
	}
	if server.Stats.Timeouts == 0 {
		t.Errorf("expected RTO timeouts during blackout")
	}
	if server.Cwnd() > 2 {
		t.Errorf("cwnd %f should have collapsed during blackout", server.Cwnd())
	}
}

func TestRTTSamplesExcludeRetransmits(t *testing.T) {
	tn := newTestNet(t, 20*units.Mbps, 25*sim.Millisecond, 0.03, 1*units.MB)
	cfg := DefaultConfig()
	samples := 0
	lis := Listen(tn.server, tn.net, tn.sAddr.Port, cfg, tn.rng.Child("server"))
	var server *Endpoint
	size := 1 * units.MB
	lis.OnAccept = func(ep *Endpoint, syn *seg.Segment) bool {
		server = ep
		ep.OnRTTSample = func(rtt sim.Time) {
			samples++
			if rtt < 50*sim.Millisecond {
				t.Errorf("RTT sample %v below propagation floor 50ms", rtt)
			}
		}
		ep.OnEstablished = func() { ep.Write(size); ep.Close() }
		return true
	}
	var rcvd int
	client := NewEndpoint(tn.client, tn.net, tn.cAddr, tn.sAddr, cfg, tn.rng.Child("client"))
	client.OnDeliver = func(n int) { rcvd += n }
	client.Connect()
	tn.sim.RunUntil(5 * 60 * sim.Second)
	if rcvd != size {
		t.Fatalf("received %d of %d", rcvd, size)
	}
	if samples == 0 {
		t.Fatal("no RTT samples")
	}
	if server.Stats.RTTSamples != uint64(samples) {
		t.Errorf("stats RTTSamples=%d, callback saw %d", server.Stats.RTTSamples, samples)
	}
}
