package tcp

import (
	"testing"

	"mptcplab/internal/netem"
	"mptcplab/internal/seg"
	"mptcplab/internal/sim"
	"mptcplab/internal/units"
)

// Both sides closing at once (simultaneous close) must converge to
// CLOSED through the CLOSING/TIME_WAIT states.
func TestSimultaneousClose(t *testing.T) {
	tn := newTestNet(t, 100*units.Mbps, 5*sim.Millisecond, 0, 1*units.MB)
	cfg := DefaultConfig()

	var server *Endpoint
	lis := Listen(tn.server, tn.net, tn.sAddr.Port, cfg, tn.rng.Child("server"))
	lis.OnAccept = func(ep *Endpoint, syn *seg.Segment) bool {
		server = ep
		return true
	}
	client := NewEndpoint(tn.client, tn.net, tn.cAddr, tn.sAddr, cfg, tn.rng.Child("client"))
	client.Connect()
	tn.sim.RunUntil(100 * sim.Millisecond)
	if server == nil || client.State() != StateEstablished {
		t.Fatal("no established connection")
	}

	// Close both in the same instant.
	client.Close()
	server.Close()
	tn.sim.RunUntil(10 * sim.Second)

	for name, ep := range map[string]*Endpoint{"client": client, "server": server} {
		if st := ep.State(); st != StateClosed {
			t.Errorf("%s state %v after simultaneous close", name, st)
		}
	}
}

// Abort sends a RST that tears the peer down immediately.
func TestAbortResetsPeer(t *testing.T) {
	tn := newTestNet(t, 100*units.Mbps, 5*sim.Millisecond, 0, 1*units.MB)
	cfg := DefaultConfig()

	var server *Endpoint
	peerClosed := false
	lis := Listen(tn.server, tn.net, tn.sAddr.Port, cfg, tn.rng.Child("server"))
	lis.OnAccept = func(ep *Endpoint, syn *seg.Segment) bool {
		server = ep
		ep.OnClosed = func() { peerClosed = true }
		ep.OnEstablished = func() { ep.Write(1 * units.MB) }
		return true
	}
	client := NewEndpoint(tn.client, tn.net, tn.cAddr, tn.sAddr, cfg, tn.rng.Child("client"))
	client.Connect()
	tn.sim.RunUntil(50 * sim.Millisecond)

	client.Abort()
	tn.sim.RunUntil(1 * sim.Second)
	if client.State() != StateClosed {
		t.Errorf("client state %v after Abort", client.State())
	}
	if server.State() != StateClosed || !peerClosed {
		t.Errorf("server state %v, closed=%v after peer RST", server.State(), peerClosed)
	}
}

// The advertised window uses scaling: an 8 MB buffer survives the
// 16-bit wire field and lets cwnd-bound transfers run at full speed.
func TestWindowScalingAllowsLargeWindows(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SSThresh = 0 // infinite: let the window grow huge
	// High bandwidth-delay product: 500 Mbps x 80 ms = 5 MB.
	tn := newTestNet(t, 500*units.Mbps, 40*sim.Millisecond, 0, 64*units.MB)
	size := 64 * units.MB
	_, _, done := tn.runDownload(t, size, cfg)
	// With only 64 KB of effective window (no scaling), 64 MB would
	// take 64MB/64KB*80ms = 82 s. With scaling it is bandwidth-bound:
	// ~1.1 s plus slow start.
	if done > 10*sim.Second {
		t.Errorf("64MB over a 5MB-BDP path took %v; window scaling broken", done)
	}
}

// SegmentLimit fragments exactly at the boundaries the hook dictates.
func TestSegmentLimitHonored(t *testing.T) {
	tn := newTestNet(t, 100*units.Mbps, 5*sim.Millisecond, 0, 4*units.MB)
	cfg := DefaultConfig()

	var sizes []int
	tn.server.AddTap(func(dir netem.Direction, at sim.Time, s *seg.Segment) {
		if dir == netem.Egress && s.PayloadLen > 0 {
			sizes = append(sizes, s.PayloadLen)
		}
	})

	lis := Listen(tn.server, tn.net, tn.sAddr.Port, cfg, tn.rng.Child("server"))
	lis.OnAccept = func(ep *Endpoint, syn *seg.Segment) bool {
		// Cap every segment at 512 bytes via the hook.
		ep.SegmentLimit = func(off int64, n int) int {
			if n > 512 {
				return 512
			}
			return n
		}
		ep.OnEstablished = func() { ep.Write(8 * units.KB); ep.Close() }
		return true
	}
	var rcvd int
	client := NewEndpoint(tn.client, tn.net, tn.cAddr, tn.sAddr, cfg, tn.rng.Child("client"))
	client.OnDeliver = func(n int) { rcvd += n }
	client.Connect()
	tn.sim.RunUntil(5 * sim.Second)

	if rcvd != 8*units.KB {
		t.Fatalf("received %d", rcvd)
	}
	for _, n := range sizes {
		if n > 512 {
			t.Fatalf("segment of %d bytes exceeded the 512-byte limit", n)
		}
	}
}
