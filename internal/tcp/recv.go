package tcp

import (
	"mptcplab/internal/seg"
)

// Receive processes one arriving segment. It implements netem.Handler.
func (e *Endpoint) Receive(s *seg.Segment) {
	if e.state == StateClosed {
		return
	}
	if s.Flags.Has(seg.RST) {
		e.teardown()
		return
	}
	// Give the MPTCP layer first sight of any segment carrying payload
	// or MPTCP signaling (DSS, ADD_ADDR, MP_CAPABLE on the SYN-ACK...).
	if e.OnSegmentArrival != nil && (s.PayloadLen > 0 || s.Option(seg.KindMPTCP) != nil) {
		e.OnSegmentArrival(s)
	}

	switch e.state {
	case StateSynSent:
		e.receiveSynSent(s)
		return
	case StateSynRcvd:
		if s.Flags.Has(seg.SYN) {
			// Retransmitted SYN from the peer: repeat our SYN-ACK.
			e.onRTO()
			return
		}
		if s.Flags.Has(seg.ACK) && seg.SeqGEQ(s.Ack, e.iss+1) {
			e.completeHandshake(s)
			// Fall through: data may ride on the third ACK.
		} else {
			return
		}
	case StateTimeWait:
		// Re-ACK retransmitted FINs.
		if s.Flags.Has(seg.FIN) {
			e.sendAck()
		}
		return
	}

	if s.Flags.Has(seg.SYN) {
		// Retransmitted SYN-ACK: our final ACK was lost. Re-ACK.
		e.sendAck()
		return
	}

	if s.Flags.Has(seg.ACK) {
		e.processAck(s)
	}
	if s.PayloadLen > 0 || s.Flags.Has(seg.FIN) {
		e.processPayload(s)
	}
}

func (e *Endpoint) receiveSynSent(s *seg.Segment) {
	if !s.Flags.Has(seg.SYN) || !s.Flags.Has(seg.ACK) || s.Ack != e.iss+1 {
		return
	}
	e.handleSynOptions(s)
	e.irs = s.Seq
	e.rcvNxt = s.Seq + 1
	e.completeHandshake(s)
	// Third ACK of the handshake (possibly decorated by MPTCP).
	e.sendAck()
	e.trySend()
}

// completeHandshake transitions into ESTABLISHED from either side.
func (e *Endpoint) completeHandshake(s *seg.Segment) {
	if len(e.inflight) > 0 && e.inflight[0].seq == e.iss {
		if e.inflight[0].rtx == 0 {
			rtt := e.sim.Now() - e.inflight[0].sentAt
			e.est.Sample(rtt)
			e.Stats.RTTSamples++
			if e.OnRTTSample != nil {
				e.OnRTTSample(rtt)
			}
		}
		e.inflight = e.inflight[1:]
	}
	e.sndUna = e.iss + 1
	e.updatePeerWindow(s)
	e.rtxTimer.Stop()
	wasSynSent := e.state == StateSynSent
	e.state = StateEstablished
	e.HandshakeDone = e.sim.Now()
	// If Close raced the handshake, continue teardown.
	if e.finQueued {
		e.state = StateFinWait1
	}
	_ = wasSynSent
	if e.OnEstablished != nil {
		e.OnEstablished()
	}
	e.trySend()
}

// handleSynOptions digests the peer's SYN options.
func (e *Endpoint) handleSynOptions(s *seg.Segment) {
	if o := s.Option(seg.KindWindowScale); o != nil {
		e.peerShift = o.(seg.WindowScaleOption).Shift
	}
	if o := s.Option(seg.KindMSS); o != nil {
		if m := int(o.(seg.MSSOption).MSS); m > 0 && m < e.cfg.MSS {
			e.cfg.MSS = m
		}
	}
}

// SegmentWindow reports the receive window a segment advertises, in
// bytes after descaling — the value updatePeerWindow would adopt. It
// lets connection-level flow control (MPTCP's shared window is
// relative to the data ACK, not the subflow ACK) read a window from
// the same segment that carried the data-level signaling.
func (e *Endpoint) SegmentWindow(s *seg.Segment) int64 {
	w := int64(s.Window)
	if !s.Flags.Has(seg.SYN) {
		w <<= e.peerShift
	}
	return w
}

// updatePeerWindow refreshes our notion of the peer's receive window.
func (e *Endpoint) updatePeerWindow(s *seg.Segment) {
	// RFC 793 window-update rule (simplified): a segment acknowledging
	// less than we already have acknowledged is stale — under
	// reordering its window must not overwrite a newer advertisement.
	if s.Flags.Has(seg.ACK) && seg.SeqLT(s.Ack, e.sndUna) {
		return
	}
	w := int64(s.Window)
	if !s.Flags.Has(seg.SYN) {
		w <<= e.peerShift
	}
	e.rwnd = w
}

// processAck handles the acknowledgment content of a segment.
func (e *Endpoint) processAck(s *seg.Segment) {
	e.Stats.AcksRcvd++
	e.updatePeerWindow(s)

	// Fold in SACK information.
	for _, b := range s.GetSACK() {
		if seg.SeqGT(b.End, e.sndUna) && seg.SeqLEQ(b.End, e.sndNxt) {
			e.board.Add(b)
		}
	}

	switch {
	case seg.SeqGT(s.Ack, e.sndUna) && seg.SeqLEQ(s.Ack, e.sndNxt):
		e.handleNewAck(s.Ack)
	case s.Ack == e.sndUna && e.sndNxt != e.sndUna && s.PayloadLen == 0:
		e.handleDupAck()
	}

	// ACK of our FIN drives teardown.
	if e.finQueued && seg.SeqGEQ(s.Ack, e.finSeq+1) {
		switch e.state {
		case StateFinWait1:
			e.state = StateFinWait2
		case StateClosing:
			e.enterTimeWait()
		case StateLastAck:
			e.teardown()
			return
		}
	}
	e.trySend()
	if e.OnSendReady != nil && e.SendSpace() > 0 {
		e.OnSendReady()
	}
}

// handleNewAck processes forward cumulative-ACK progress.
func (e *Endpoint) handleNewAck(ack uint32) {
	acked := int64(ack - e.sndUna)
	// Was the flow using its whole window before this ACK? Congestion
	// window growth only applies then (an app-limited MPTCP subflow
	// must not inflate cwnd it never uses and then burst).
	flight := int64(e.sndNxt - e.sndUna)
	cwndLimited := flight+int64(e.cfg.MSS) >= e.cwndBytes() || e.UnsentBytes() > 0

	e.sndUna = ack
	e.board.AdvanceUna(ack)
	e.dupAcks = 0
	e.ltmBonus = 0
	e.consecRTO = 0
	e.ackedSinceLoss += acked

	// Prune transmission records; take Karn-valid RTT samples.
	keep := e.inflight[:0]
	for i := range e.inflight {
		r := e.inflight[i]
		if seg.SeqLEQ(r.end, ack) {
			if r.rtx == 0 {
				rtt := e.sim.Now() - r.sentAt
				e.est.Sample(rtt)
				e.Stats.RTTSamples++
				if e.OnRTTSample != nil {
					e.OnRTTSample(rtt)
				}
			}
			continue
		}
		if seg.SeqLT(r.seq, ack) {
			r.seq = ack // partially acked range
		}
		keep = append(keep, r)
	}
	e.inflight = keep

	if e.inRecovery {
		if seg.SeqGEQ(ack, e.recoveryPoint) {
			e.inRecovery = false
		} else {
			// NewReno partial ACK: the next hole is lost too.
			e.markFirstHoleLost()
		}
	} else if cwndLimited {
		e.growCwnd(acked)
	}

	e.restartRTX()
	if e.OnAcked != nil && acked > 0 {
		e.OnAcked(acked)
	}
}

// growCwnd applies slow start below ssthresh and the configured
// congestion controller above it.
func (e *Endpoint) growCwnd(ackedBytes int64) {
	ackedPkts := float64(ackedBytes) / float64(e.cfg.MSS)
	if e.cwnd < e.ssthresh {
		// Slow start: one packet per packet acked (doubles per RTT).
		e.cwnd += ackedPkts
		if e.cwnd > e.ssthresh {
			e.cwnd = e.ssthresh
		}
		return
	}
	e.cwnd += e.cfg.Controller.Increase(e.ccFlows, e.ccSelf, ackedPkts)
	if e.cwnd < 1 {
		e.cwnd = 1
	}
}

// handleDupAck counts duplicate ACKs and triggers fast retransmit.
func (e *Endpoint) handleDupAck() {
	e.dupAcks++
	if e.inRecovery {
		// Fresh SACK info may reveal more losses.
		e.markSackHolesLost()
		e.trySend()
		return
	}
	if e.dupAcks >= 3 || e.board.SackedAbove(e.sndUna) >= 3*int64(e.cfg.MSS) {
		e.ltmBonus = 0
		e.enterRecovery()
		return
	}
	// RFC 3042 limited transmit: the first two duplicate ACKs each
	// release one new segment, keeping the ACK clock alive so small
	// windows can still reach fast retransmit instead of an RTO —
	// which matters for exactly the short lossy-WiFi flows of §4.1.
	e.ltmBonus = int64(e.dupAcks) * int64(e.cfg.MSS)
	e.trySend()
}

// enterRecovery starts fast retransmit / fast recovery: one window
// reduction per round trip of loss, using the coupled controller's
// decrease.
func (e *Endpoint) enterRecovery() {
	e.inRecovery = true
	e.recoveryPoint = e.sndNxt
	e.Stats.FastRetransmits++
	e.noteLossEvent()

	newCwnd := e.cfg.Controller.OnLoss(e.ccFlows, e.ccSelf)
	e.ssthresh = newCwnd
	if e.ssthresh < 2 {
		e.ssthresh = 2
	}
	e.cwnd = e.ssthresh

	e.markFirstHoleLost()
	e.markSackHolesLost()
	e.trySend()
}

// markFirstHoleLost marks the range at sndUna for retransmission.
func (e *Endpoint) markFirstHoleLost() {
	for i := range e.inflight {
		r := &e.inflight[i]
		if r.seq == e.sndUna && !e.board.IsSacked(r.seq, r.end) {
			if r.rtx == 0 || !e.inRecovery {
				r.lost = true
			}
			return
		}
	}
}

// markSackHolesLost applies the RFC 6675 loss heuristic: a hole with
// at least 3*MSS SACKed above it is lost.
func (e *Endpoint) markSackHolesLost() {
	thresh := 3 * int64(e.cfg.MSS)
	for i := range e.inflight {
		r := &e.inflight[i]
		if r.lost || r.rtx > 0 {
			continue
		}
		if e.board.IsSacked(r.seq, r.end) {
			continue
		}
		if e.board.SackedAbove(r.end) >= thresh {
			r.lost = true
		}
	}
}

// processPayload handles in-order delivery, reordering, duplicates,
// and FIN consumption.
func (e *Endpoint) processPayload(s *seg.Segment) {
	if s.PayloadLen > 0 {
		e.Stats.DataPktsRcvd++
		e.Stats.BytesRcvd += int64(s.PayloadLen)
	}

	start := s.Seq
	end := s.Seq + uint32(s.PayloadLen)
	if s.Flags.Has(seg.FIN) {
		e.finRcvd = true
		e.finRcvdSeq = end
		end++ // FIN occupies one sequence unit
	}

	switch {
	case seg.SeqLEQ(end, e.rcvNxt):
		// Entire segment is old: duplicate, re-ACK immediately.
		e.Stats.DupPktsRcvd++
		e.scheduleAck(true)
		return
	case seg.SeqLEQ(start, e.rcvNxt):
		// In-order (possibly with a stale prefix).
		hadHoles := e.ooo.BufferedBytes() > 0
		old := e.rcvNxt
		e.rcvNxt = end
		e.rcvNxt = e.ooo.NextContiguous(e.rcvNxt)
		e.deliverAdvance(old, e.rcvNxt)
		// Filling a hole warrants an immediate ACK so the sender's
		// recovery sees progress quickly.
		e.scheduleAck(hadHoles)
	default:
		// Out of order: buffer and send an immediate duplicate ACK.
		if e.ooo.Contains(start, end) {
			e.Stats.DupPktsRcvd++
		} else {
			e.ooo.Add(start, end)
		}
		e.scheduleAck(true)
	}

	e.checkRemoteClose()
}

// deliverAdvance reports newly in-order payload bytes to the app,
// excluding the FIN's sequence unit.
func (e *Endpoint) deliverAdvance(old, new uint32) {
	n := int64(new - old)
	if n <= 0 {
		return
	}
	if e.finRcvd && seg.SeqGT(new, e.finRcvdSeq) {
		n--
	}
	if n > 0 && e.OnDeliver != nil {
		e.OnDeliver(int(n))
	}
}

// checkRemoteClose applies FIN-driven state transitions once the FIN
// is consumed in order.
func (e *Endpoint) checkRemoteClose() {
	if !e.finRcvd || seg.SeqLT(e.rcvNxt, e.finRcvdSeq+1) {
		return
	}
	switch e.state {
	case StateEstablished:
		e.state = StateCloseWait
	case StateFinWait1:
		// Our FIN not yet acked: simultaneous close.
		e.state = StateClosing
	case StateFinWait2:
		e.enterTimeWait()
		e.sendAck()
	}
}
