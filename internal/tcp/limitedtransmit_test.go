package tcp

import (
	"testing"

	"mptcplab/internal/netem"
	"mptcplab/internal/seg"
	"mptcplab/internal/sim"
	"mptcplab/internal/units"
)

// RFC 3042: with a small window and a single loss, the first two
// duplicate ACKs each release a new segment, producing the third
// dupack that triggers fast retransmit — no RTO needed.
func TestLimitedTransmitAvoidsRTO(t *testing.T) {
	tn := newTestNet(t, 50*units.Mbps, 20*sim.Millisecond, 0, 1*units.MB)
	cfg := DefaultConfig()
	cfg.InitialCwnd = 4 // small window: exactly the RFC 3042 scenario
	cfg.DelAckCount = 1 // ack every segment to keep the count simple

	var server *Endpoint
	lis := Listen(tn.server, tn.net, tn.sAddr.Port, cfg, tn.rng.Child("server"))
	size := 64 * units.KB
	lis.OnAccept = func(ep *Endpoint, syn *seg.Segment) bool {
		server = ep
		ep.OnEstablished = func() { ep.Write(size); ep.Close() }
		return true
	}
	var rcvd int
	client := NewEndpoint(tn.client, tn.net, tn.cAddr, tn.sAddr, cfg, tn.rng.Child("client"))
	client.OnDeliver = func(n int) { rcvd += n }
	client.Connect()

	// Drop exactly one early data segment: the 2nd data packet.
	dataSeen := 0
	dropped := false
	tn.down.Loss = dropNth{n: 2, seen: &dataSeen, done: &dropped}

	tn.sim.RunUntil(30 * sim.Second)
	if rcvd != size {
		t.Fatalf("received %d of %d", rcvd, size)
	}
	if !dropped {
		t.Fatal("test never dropped a packet; premise broken")
	}
	if server.Stats.Timeouts != 0 {
		t.Errorf("recovery used %d RTOs; limited transmit should have fed fast retransmit", server.Stats.Timeouts)
	}
	if server.Stats.FastRetransmits == 0 {
		t.Errorf("no fast retransmit recorded")
	}
}

// dropNth drops the n-th packet it sees (1-based), once.
type dropNth struct {
	n    int
	seen *int
	done *bool
}

func (d dropNth) Drop(*sim.RNG) bool {
	*d.seen++
	if *d.seen == d.n && !*d.done {
		*d.done = true
		return true
	}
	return false
}

var _ netem.LossModel = dropNth{}
