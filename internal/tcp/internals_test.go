package tcp

import (
	"testing"
	"testing/quick"

	"mptcplab/internal/seg"
	"mptcplab/internal/sim"
)

func TestRTTEstimatorRFC6298(t *testing.T) {
	e := newRTTEstimator(sim.Second, 200*sim.Millisecond, 60*sim.Second)
	if e.RTO() != sim.Second {
		t.Errorf("initial RTO = %v", e.RTO())
	}
	if e.HasSample() {
		t.Error("HasSample before any sample")
	}
	e.Sample(100 * sim.Millisecond)
	// First sample: srtt = rtt, rttvar = rtt/2, rto = srtt + 4*rttvar.
	if e.SRTT() != 100*sim.Millisecond {
		t.Errorf("SRTT = %v", e.SRTT())
	}
	if e.RTO() != 300*sim.Millisecond {
		t.Errorf("RTO = %v, want 300ms", e.RTO())
	}
	// A steady stream of identical samples collapses rttvar and the
	// floor kicks in.
	for i := 0; i < 100; i++ {
		e.Sample(100 * sim.Millisecond)
	}
	if e.RTO() != 200*sim.Millisecond {
		t.Errorf("steady-state RTO = %v, want MinRTO 200ms", e.RTO())
	}
	e.Backoff()
	if e.RTO() != 400*sim.Millisecond {
		t.Errorf("backed-off RTO = %v", e.RTO())
	}
	for i := 0; i < 20; i++ {
		e.Backoff()
	}
	if e.RTO() != 60*sim.Second {
		t.Errorf("RTO = %v, want MaxRTO cap", e.RTO())
	}
}

func TestRTTEstimatorRejectsNonPositive(t *testing.T) {
	e := newRTTEstimator(sim.Second, 200*sim.Millisecond, 60*sim.Second)
	e.Sample(0)
	if e.SRTT() <= 0 {
		t.Error("zero sample produced non-positive SRTT")
	}
}

func TestScoreboardMerging(t *testing.T) {
	var b sackScoreboard
	b.Add(seg.SACKBlock{Start: 100, End: 200})
	b.Add(seg.SACKBlock{Start: 300, End: 400})
	b.Add(seg.SACKBlock{Start: 150, End: 320}) // bridges
	if !b.IsSacked(100, 400) {
		t.Error("merged range not fully SACKed")
	}
	if b.TotalSacked() != 300 {
		t.Errorf("TotalSacked = %d, want 300", b.TotalSacked())
	}
	if b.IsSacked(50, 150) {
		t.Error("unSACKed prefix reported SACKed")
	}
	if got := b.SackedAbove(250); got != 150 {
		t.Errorf("SackedAbove(250) = %d, want 150", got)
	}
	b.AdvanceUna(350)
	if b.TotalSacked() != 50 {
		t.Errorf("TotalSacked after AdvanceUna = %d, want 50", b.TotalSacked())
	}
	if b.HighestSacked(0) != 400 {
		t.Errorf("HighestSacked = %d", b.HighestSacked(0))
	}
	b.Reset()
	if b.TotalSacked() != 0 {
		t.Error("Reset did not clear")
	}
}

func TestScoreboardInvalidBlockIgnored(t *testing.T) {
	var b sackScoreboard
	b.Add(seg.SACKBlock{Start: 200, End: 100})
	if b.TotalSacked() != 0 {
		t.Error("inverted block accepted")
	}
}

// Property: TotalSacked equals the measure of the union of added
// blocks (computed by brute force over a small universe).
func TestScoreboardUnionProperty(t *testing.T) {
	f := func(pairs [][2]uint8) bool {
		var b sackScoreboard
		covered := make([]bool, 256)
		for _, p := range pairs {
			lo, hi := uint32(p[0]), uint32(p[1])
			if lo > hi {
				lo, hi = hi, lo
			}
			b.Add(seg.SACKBlock{Start: lo, End: hi})
			for i := lo; i < hi; i++ {
				covered[i] = true
			}
		}
		var want int64
		for _, c := range covered {
			if c {
				want++
			}
		}
		return b.TotalSacked() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRcvRangesSACKBlockGeneration(t *testing.T) {
	var r rcvRanges
	r.Add(1000, 2000)
	r.Add(3000, 4000)
	blocks := r.Blocks(3)
	if len(blocks) != 2 {
		t.Fatalf("blocks = %v", blocks)
	}
	// Most recently changed first (RFC 2018).
	if blocks[0].Start != 3000 {
		t.Errorf("first block %v, want the most recent (3000)", blocks[0])
	}
	if !r.Contains(1200, 1300) {
		t.Error("Contains false for held range")
	}
	if r.Contains(2000, 2001) {
		t.Error("Contains true for gap")
	}
	if r.BufferedBytes() != 2000 {
		t.Errorf("BufferedBytes = %d", r.BufferedBytes())
	}
	// Consuming contiguity.
	if got := r.NextContiguous(1000); got != 2000 {
		t.Errorf("NextContiguous(1000) = %d", got)
	}
	if r.BufferedBytes() != 1000 {
		t.Errorf("BufferedBytes after consume = %d", r.BufferedBytes())
	}
}

// Property: after adding arbitrary ranges above rcvNxt, repeatedly
// applying NextContiguous never skips a hole.
func TestRcvRangesNoHoleSkipping(t *testing.T) {
	f := func(spans [][2]uint8) bool {
		var r rcvRanges
		covered := make([]bool, 300)
		for _, sp := range spans {
			lo := uint32(sp[0]) + 10
			hi := uint32(sp[1]) + 10
			if lo > hi {
				lo, hi = hi, lo
			}
			r.Add(lo, hi)
			for i := lo; i < hi; i++ {
				covered[i] = true
			}
		}
		next := r.NextContiguous(10)
		// next must be the first uncovered position at or after 10.
		want := uint32(10)
		for int(want) < len(covered) && covered[want] {
			want++
		}
		return next == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestStatsLossRate(t *testing.T) {
	var s Stats
	if s.LossRate() != 0 {
		t.Error("empty stats loss nonzero")
	}
	s.DataPktsSent = 200
	s.DataPktsRetrans = 3
	if got := s.LossRate(); got != 0.015 {
		t.Errorf("LossRate = %v", got)
	}
}

func TestStateString(t *testing.T) {
	if StateEstablished.String() != "ESTABLISHED" {
		t.Error("state name wrong")
	}
	if State(99).String() == "" {
		t.Error("unknown state empty")
	}
}
