package tcp

import "mptcplab/internal/sim"

// rttEstimator implements the RFC 6298 retransmission-timeout
// calculation with Karn's rule applied by the caller (only samples
// from unretransmitted segments are fed in).
type rttEstimator struct {
	srtt   sim.Time
	rttvar sim.Time
	rto    sim.Time
	minRTO sim.Time
	maxRTO sim.Time
	valid  bool // a sample has been taken
}

func newRTTEstimator(initialRTO, minRTO, maxRTO sim.Time) *rttEstimator {
	return &rttEstimator{rto: initialRTO, minRTO: minRTO, maxRTO: maxRTO}
}

// Sample folds one RTT measurement into the estimator.
func (e *rttEstimator) Sample(rtt sim.Time) {
	if rtt <= 0 {
		rtt = sim.Microsecond
	}
	if !e.valid {
		e.srtt = rtt
		e.rttvar = rtt / 2
		e.valid = true
	} else {
		// RFC 6298: rttvar = 3/4 rttvar + 1/4 |srtt - rtt|
		//           srtt   = 7/8 srtt  + 1/8 rtt
		diff := e.srtt - rtt
		if diff < 0 {
			diff = -diff
		}
		e.rttvar = (3*e.rttvar + diff) / 4
		e.srtt = (7*e.srtt + rtt) / 8
	}
	e.rto = e.srtt + 4*e.rttvar
	e.clamp()
}

// Backoff doubles the RTO after a timeout (Karn's algorithm).
func (e *rttEstimator) Backoff() {
	e.rto *= 2
	e.clamp()
}

func (e *rttEstimator) clamp() {
	if e.rto < e.minRTO {
		e.rto = e.minRTO
	}
	if e.rto > e.maxRTO {
		e.rto = e.maxRTO
	}
}

// RTO reports the current retransmission timeout.
func (e *rttEstimator) RTO() sim.Time { return e.rto }

// SRTT reports the smoothed RTT, or 0 before any sample.
func (e *rttEstimator) SRTT() sim.Time {
	if !e.valid {
		return 0
	}
	return e.srtt
}

// RTTVar reports the RTT variance estimate.
func (e *rttEstimator) RTTVar() sim.Time { return e.rttvar }

// HasSample reports whether at least one measurement was folded in.
func (e *rttEstimator) HasSample() bool { return e.valid }
