// Package tcp implements a complete user-space TCP endpoint on the
// mptcplab simulator: three-way handshake, slow start with a
// configurable initial ssthresh (the paper pins it to 64 KB),
// congestion avoidance via a pluggable cc.Controller, fast
// retransmit/fast recovery with SACK (RFC 2018/6675-style scoreboard),
// RFC 6298 retransmission timeouts with Karn's rule, delayed ACKs,
// window scaling, and the full connection teardown state machine.
//
// The same endpoint serves both as plain single-path TCP (the paper's
// SP-* baselines) and as an MPTCP subflow: the mptcp package attaches
// via the BuildOptions / OnSegmentArrival / WindowOverride hooks and
// couples congestion windows by handing every subflow the same
// cc.Controller and flow set.
//
// Following the paper's server configuration (§3.1), endpoints are
// created fresh for every connection and never cache ssthresh or RTT
// metrics from previous connections to the same destination.
package tcp

import (
	"fmt"

	"mptcplab/internal/cc"
	"mptcplab/internal/netem"
	"mptcplab/internal/seg"
	"mptcplab/internal/sim"
	"mptcplab/internal/units"
)

// State is the TCP connection state.
type State int

// Connection states (RFC 793).
const (
	StateClosed State = iota
	StateListen
	StateSynSent
	StateSynRcvd
	StateEstablished
	StateFinWait1
	StateFinWait2
	StateCloseWait
	StateClosing
	StateLastAck
	StateTimeWait
)

var stateNames = [...]string{
	"CLOSED", "LISTEN", "SYN_SENT", "SYN_RCVD", "ESTABLISHED",
	"FIN_WAIT_1", "FIN_WAIT_2", "CLOSE_WAIT", "CLOSING", "LAST_ACK", "TIME_WAIT",
}

// String names the state.
func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// SegKind tells a BuildOptions hook what kind of segment is being
// assembled, so MPTCP can attach the right option.
type SegKind int

// Segment kinds passed to BuildOptions.
const (
	KindSYN SegKind = iota
	KindSYNACK
	KindAck
	KindData
	KindFin
)

// Config carries the tunables the paper fixes in §3.1.
type Config struct {
	MSS           int             // maximum segment size, bytes
	InitialCwnd   float64         // initial window, packets (Linux default 10)
	SSThresh      units.ByteCount // initial slow-start threshold; 0 = infinity
	RcvBuf        units.ByteCount // receive buffer (8 MB in the paper)
	Controller    cc.Controller   // congestion-avoidance algorithm
	InitialRTO    sim.Time        // RFC 6298 initial RTO (1 s)
	MinRTO        sim.Time        // Linux floors RTO at 200 ms
	MaxRTO        sim.Time
	DelAckTimeout sim.Time // delayed-ACK flush timer
	DelAckCount   int      // ACK every n-th full segment
	WindowScale   uint8    // advertised window shift
	TimeWait      sim.Time // 2MSL linger; short by default to free sims
}

// DefaultConfig mirrors the paper's testbed settings: MSS 1460, IW 10,
// ssthresh 64 KB, 8 MB receive buffer, SACK on, New Reno.
func DefaultConfig() Config {
	return Config{
		MSS:           1460,
		InitialCwnd:   10,
		SSThresh:      64 * units.KB,
		RcvBuf:        8 * units.MB,
		Controller:    cc.Reno{},
		InitialRTO:    sim.Second,
		MinRTO:        200 * sim.Millisecond,
		MaxRTO:        60 * sim.Second,
		DelAckTimeout: 40 * sim.Millisecond,
		DelAckCount:   2,
		WindowScale:   8,
		TimeWait:      500 * sim.Millisecond,
	}
}

// Stats counts an endpoint's lifetime activity. The paper's loss rate
// (§3.3) is DataPktsRetrans / DataPktsSent.
type Stats struct {
	DataPktsSent    uint64
	DataPktsRetrans uint64
	BytesSent       int64
	BytesRetrans    int64
	DataPktsRcvd    uint64
	BytesRcvd       int64
	DupPktsRcvd     uint64
	AcksSent        uint64
	AcksRcvd        uint64
	Timeouts        uint64
	FastRetransmits uint64
	RTTSamples      uint64
}

// LossRate reports retransmitted data packets over data packets sent,
// the paper's per-subflow loss metric.
func (s *Stats) LossRate() float64 {
	if s.DataPktsSent == 0 {
		return 0
	}
	return float64(s.DataPktsRetrans) / float64(s.DataPktsSent)
}

// txRec describes one in-flight transmitted range.
type txRec struct {
	seq, end uint32
	sentAt   sim.Time
	rtx      int  // retransmission count
	lost     bool // marked lost, awaiting retransmission
}

// Endpoint is one side of a TCP connection.
type Endpoint struct {
	Local, Remote seg.Addr

	host *netem.Host
	sim  *sim.Simulator
	cfg  Config

	state State

	// Callbacks (all optional).
	OnEstablished    func()
	OnDeliver        func(n int)                 // in-order payload bytes for the app
	OnSegmentArrival func(s *seg.Segment)        // every arriving payload-bearing segment, pre-processing (MPTCP tap)
	OnAcked          func(n int64)               // cumulative-ACK progress in bytes
	OnSendReady      func()                      // window opened; upper layer may push more
	OnClosed         func()                      // fully closed (or reset)
	OnRTTSample      func(rtt sim.Time)          // Karn-valid RTT samples
	OnTimeout        func(consecutive int)       // after each data RTO (MPTCP reinjection hook)
	BuildOptions     func(*seg.Segment, SegKind) // decorate outgoing segments
	WindowOverride   func() int64                // shared receive-window (MPTCP)
	// SegmentLimit, if set, caps the payload of a fresh data segment
	// starting at stream offset off to at most the returned value (in
	// (0, n]). MPTCP uses it to keep segments within one DSS mapping.
	SegmentLimit func(off int64, n int) int

	// Coupling: the flow set visible to the congestion controller.
	// Defaults to just this endpoint.
	ccFlows []cc.Flow
	ccSelf  int

	// Send state.
	iss       uint32
	sndUna    uint32
	sndNxt    uint32
	sndBufEnd uint32 // sequence just past the last byte the app wrote
	finQueued bool
	finSeq    uint32
	cwnd      float64 // packets
	ssthresh  float64 // packets
	rwnd      int64   // peer's advertised window, bytes
	peerShift uint8

	inRecovery    bool
	recoveryPoint uint32
	dupAcks       int
	ltmBonus      int64 // RFC 3042 limited-transmit allowance, bytes
	board         sackScoreboard
	inflight      []txRec

	est      *rttEstimator
	rtxTimer *sim.Timer

	// OLIA loss-interval bookkeeping.
	ackedSinceLoss int64
	ackedPrevLoss  int64

	// Receive state.
	irs    uint32
	rcvNxt uint32
	ooo    rcvRanges
	// sackScratch backs the SACK blocks of each outgoing ACK; AddSACK
	// copies them into the segment, so reuse across ACKs is safe.
	sackScratch [3]seg.SACKBlock
	finRcvd     bool
	finRcvdSeq  uint32

	delAckPending int
	delAckTimer   *sim.Timer
	twTimer       *sim.Timer

	// Stats is exported for metrics collection.
	Stats Stats
	// HandshakeDone is when the connection reached ESTABLISHED.
	HandshakeDone sim.Time

	closedFired bool
	isnRNG      *sim.RNG
	earlyWrites int // bytes written before the active open
	consecRTO   int // timeouts since the last forward ACK
}

// NewEndpoint creates a closed endpoint bound to (local, remote) on
// host. It registers itself for segment demultiplexing.
func NewEndpoint(host *netem.Host, network *netem.Network, local, remote seg.Addr, cfg Config, rng *sim.RNG) *Endpoint {
	e := &Endpoint{
		Local:  local,
		Remote: remote,
		host:   host,
		sim:    network.Sim(),
		cfg:    cfg,
		state:  StateClosed,
		est:    newRTTEstimator(cfg.InitialRTO, cfg.MinRTO, cfg.MaxRTO),
		isnRNG: rng,
	}
	if e.cfg.Controller == nil {
		e.cfg.Controller = cc.Reno{}
	}
	e.ccFlows = []cc.Flow{e}
	e.ccSelf = 0
	e.rtxTimer = sim.NewTimer(e.sim, "tcp.rtx", e.onRTO)
	e.delAckTimer = sim.NewTimer(e.sim, "tcp.delack", e.flushDelAck)
	e.twTimer = sim.NewTimer(e.sim, "tcp.timewait", e.reapTimeWait)
	host.Bind(local, remote, e)
	return e
}

// SetCoupled installs the shared flow set used by MPTCP's coupled
// controllers; self must be this endpoint's index within flows.
func (e *Endpoint) SetCoupled(flows []cc.Flow, self int) {
	e.ccFlows = flows
	e.ccSelf = self
}

// SetController replaces the congestion-avoidance algorithm. MPTCP
// uses this to adopt listener-accepted endpoints, which are created
// with the listener's plain-TCP config, into a coupled connection.
func (e *Endpoint) SetController(ctrl cc.Controller) {
	if ctrl != nil {
		e.cfg.Controller = ctrl
	}
}

// Config returns the endpoint's configuration.
func (e *Endpoint) Config() Config { return e.cfg }

// State reports the connection state.
func (e *Endpoint) State() State { return e.state }

// Sim exposes the simulator (for upper layers scheduling against it).
func (e *Endpoint) Sim() *sim.Simulator { return e.sim }

// --- cc.Flow implementation ---

// Cwnd reports the congestion window in packets.
func (e *Endpoint) Cwnd() float64 { return e.cwnd }

// SRTT reports the smoothed RTT in seconds (initial RTO before any
// sample, so coupled formulas have something finite to work with).
func (e *Endpoint) SRTT() float64 {
	if !e.est.HasSample() {
		return e.cfg.InitialRTO.Seconds()
	}
	return e.est.SRTT().Seconds()
}

// SRTTTime reports the smoothed RTT as a sim.Time (0 before samples).
func (e *Endpoint) SRTTTime() sim.Time { return e.est.SRTT() }

// Established reports whether the subflow carries data.
func (e *Endpoint) Established() bool {
	return e.state == StateEstablished || e.state == StateCloseWait ||
		e.state == StateFinWait1 || e.state == StateFinWait2
}

// AckedSinceLoss implements cc.Flow for OLIA.
func (e *Endpoint) AckedSinceLoss() int64 { return e.ackedSinceLoss }

// AckedPrevLossInterval implements cc.Flow for OLIA.
func (e *Endpoint) AckedPrevLossInterval() int64 { return e.ackedPrevLoss }

// --- Opening ---

// Connect performs an active open, emitting a SYN.
func (e *Endpoint) Connect() {
	if e.state != StateClosed {
		return
	}
	e.initISS()
	e.state = StateSynSent
	e.sendSYN(false)
}

// accept performs a passive open in response to a SYN (the Listener
// calls this after constructing the endpoint).
func (e *Endpoint) accept(synSeg *seg.Segment) {
	e.initISS()
	e.handleSynOptions(synSeg)
	e.irs = synSeg.Seq
	e.rcvNxt = synSeg.Seq + 1
	e.state = StateSynRcvd
	e.sendSYN(true)
}

func (e *Endpoint) initISS() {
	e.iss = uint32(e.isnRNG.Int63())
	e.sndUna = e.iss
	e.sndNxt = e.iss
	// The SYN occupies one sequence unit; data written before the open
	// (an HTTP request issued while dialing) follows it.
	e.sndBufEnd = e.iss + 1 + uint32(e.earlyWrites)
	e.cwnd = e.cfg.InitialCwnd
	if e.cfg.SSThresh > 0 {
		e.ssthresh = float64(e.cfg.SSThresh) / float64(e.cfg.MSS)
	} else {
		e.ssthresh = 1 << 30 // "infinity"
	}
	e.rwnd = 65535 // until the peer advertises
}

// streamBase is the sequence of the first payload byte.
func (e *Endpoint) streamBase() uint32 { return e.iss + 1 }

// StreamOffset converts an absolute send-space sequence to a byte
// offset in this subflow's payload stream.
func (e *Endpoint) StreamOffset(seqn uint32) int64 {
	return int64(seqn - e.streamBase())
}

// RcvStreamOffset converts a receive-space sequence to a byte offset
// in the peer's payload stream.
func (e *Endpoint) RcvStreamOffset(seqn uint32) int64 {
	return int64(seqn - (e.irs + 1))
}

// --- Application interface ---

// WriteOffset reports the stream offset at which the next Write will
// place its first byte. MPTCP records its DSS mapping at this offset
// *before* calling Write, since Write transmits synchronously.
func (e *Endpoint) WriteOffset() int64 { return e.StreamOffset(e.sndBufEnd) }

// Write appends n abstract bytes to the send stream and starts
// transmission. It returns the stream offset of the first new byte.
func (e *Endpoint) Write(n int) int64 {
	if n <= 0 || e.finQueued {
		return e.StreamOffset(e.sndBufEnd)
	}
	if e.state == StateClosed {
		// Not yet opened: buffer until Connect assigns sequence space.
		off := int64(e.earlyWrites)
		e.earlyWrites += n
		return off
	}
	off := e.StreamOffset(e.sndBufEnd)
	e.sndBufEnd += uint32(n)
	e.trySend()
	return off
}

// Close queues a FIN after any unsent data.
func (e *Endpoint) Close() {
	switch e.state {
	case StateEstablished, StateSynRcvd, StateSynSent:
		if e.finQueued {
			return
		}
		e.finQueued = true
		e.finSeq = e.sndBufEnd
		e.sndBufEnd++
		if e.state == StateEstablished || e.state == StateSynRcvd {
			e.state = StateFinWait1
		}
		e.trySend()
	case StateCloseWait:
		if e.finQueued {
			return
		}
		e.finQueued = true
		e.finSeq = e.sndBufEnd
		e.sndBufEnd++
		e.state = StateLastAck
		e.trySend()
	}
}

// Abort sends a RST and tears the connection down immediately.
func (e *Endpoint) Abort() {
	if e.state != StateClosed {
		rst := e.newSegment(seg.RST|seg.ACK, e.sndNxt, 0)
		e.host.Send(rst)
	}
	e.teardown()
}

// UnackedBytes reports bytes written but not yet cumulatively acked
// (including queued-but-unsent).
func (e *Endpoint) UnackedBytes() int64 {
	return int64(e.sndBufEnd - e.sndUna)
}

// UnsentBytes reports bytes written but not yet transmitted once.
func (e *Endpoint) UnsentBytes() int64 {
	return int64(e.sndBufEnd - e.sndNxt)
}

// cwndBytes is the congestion window in bytes.
func (e *Endpoint) cwndBytes() int64 {
	return int64(e.cwnd * float64(e.cfg.MSS))
}

// pipe estimates bytes currently in the network per RFC 6675: in
// flight, minus SACKed, minus marked-lost-not-yet-retransmitted.
func (e *Endpoint) pipe() int64 {
	p := int64(e.sndNxt-e.sndUna) - e.board.TotalSacked()
	for _, r := range e.inflight {
		if r.lost {
			p -= int64(r.end - r.seq)
		}
	}
	if p < 0 {
		p = 0
	}
	return p
}

// SendSpace reports how many new bytes the scheduler could hand this
// subflow right now without overrunning cwnd or the peer window. This
// is what the MPTCP scheduler consults (§2.2: each subflow maintains
// its own congestion window).
func (e *Endpoint) SendSpace() int64 {
	if !e.Established() && e.state != StateSynSent && e.state != StateSynRcvd {
		return 0
	}
	wnd := e.cwndBytes()
	if e.rwnd < wnd {
		wnd = e.rwnd
	}
	space := wnd - e.pipe() - e.UnsentBytes()
	if space < 0 {
		space = 0
	}
	return space
}

// InSlowStart reports whether the subflow is below ssthresh (§4.1's
// small-flow analysis hinges on this).
func (e *Endpoint) InSlowStart() bool { return e.cwnd < e.ssthresh }

// ConsecutiveTimeouts reports RTOs since the last forward ACK — the
// backup-mode scheduler's liveness signal for detecting a dead path.
func (e *Endpoint) ConsecutiveTimeouts() int { return e.consecRTO }

// SsthreshPackets reports the current slow-start threshold.
func (e *Endpoint) SsthreshPackets() float64 { return e.ssthresh }

// PenalizeHalve halves cwnd without a loss event — the v0.86 receive-
// buffer penalization the paper removes for its measurements (§3.1).
func (e *Endpoint) PenalizeHalve() {
	e.cwnd = e.cwnd / 2
	if e.cwnd < 1 {
		e.cwnd = 1
	}
	if e.ssthresh > e.cwnd {
		e.ssthresh = e.cwnd
	}
}

// --- teardown ---

func (e *Endpoint) enterTimeWait() {
	e.state = StateTimeWait
	e.rtxTimer.Stop()
	e.twTimer.Reset(e.cfg.TimeWait)
}

func (e *Endpoint) reapTimeWait() {
	if e.state == StateTimeWait {
		e.teardown()
	}
}

func (e *Endpoint) teardown() {
	if e.state == StateClosed && e.closedFired {
		return
	}
	e.state = StateClosed
	e.rtxTimer.Stop()
	e.delAckTimer.Stop()
	e.twTimer.Stop()
	e.host.Unbind(e.Local, e.Remote)
	if !e.closedFired {
		e.closedFired = true
		if e.OnClosed != nil {
			e.OnClosed()
		}
	}
}

// String renders a debug summary.
func (e *Endpoint) String() string {
	return fmt.Sprintf("tcp(%v->%v %v cwnd=%.1f ssthresh=%.1f una=%d nxt=%d)",
		e.Local, e.Remote, e.state, e.cwnd, e.ssthresh,
		e.sndUna-e.iss, e.sndNxt-e.iss)
}
