package tcp

import (
	"mptcplab/internal/netem"
	"mptcplab/internal/seg"
	"mptcplab/internal/sim"
)

// Listener accepts passive opens on a port, across all of a host's
// addresses — the paper's server listens on one Apache port reachable
// via both of its interfaces.
type Listener struct {
	host *netem.Host
	net  *netem.Network
	cfg  Config
	rng  *sim.RNG

	// OnAccept is invoked with the newly created endpoint and the SYN
	// that produced it, before the SYN-ACK is sent, so the application
	// (or the MPTCP layer) can install callbacks and option hooks.
	// Returning false refuses the connection.
	OnAccept func(ep *Endpoint, syn *seg.Segment) bool

	// Accepted counts passive opens; Refused counts OnAccept vetoes.
	Accepted, Refused uint64
}

// Listen registers a listener for port on host.
func Listen(host *netem.Host, network *netem.Network, port uint16, cfg Config, rng *sim.RNG) *Listener {
	l := &Listener{host: host, net: network, cfg: cfg, rng: rng}
	host.Listen(port, l)
	return l
}

// Incoming implements netem.Listener.
func (l *Listener) Incoming(s *seg.Segment) {
	if !s.Flags.Has(seg.SYN) || s.Flags.Has(seg.ACK) {
		// Stray non-SYN segment for a connection we no longer have
		// (e.g. retransmission after teardown); ignore it.
		return
	}
	ep := NewEndpoint(l.host, l.net, s.Dst, s.Src, l.cfg, l.rng.Child("accept"))
	if l.OnAccept != nil && !l.OnAccept(ep, s) {
		l.Refused++
		ep.teardown()
		return
	}
	l.Accepted++
	ep.accept(s)
}
