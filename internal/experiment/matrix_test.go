package experiment

import (
	"bytes"
	"sync"
	"testing"

	"mptcplab/internal/sweep"
	"mptcplab/internal/units"
)

// parallelTestRows is a small two-row campaign grid used by the
// parallel-runner tests: one single-path and one multipath
// configuration so both runner code paths (runSP/runMP) execute under
// the pool.
func parallelTestRows() []RowSpec {
	return []RowSpec{
		{Label: "SP-WiFi", WiFi: baselineWiFi(), Cell: baselineCell(), Make: sp(SPWiFi)},
		{Label: "MP-2 (coupled)", WiFi: baselineWiFi(), Cell: baselineCell(), Make: mp(MP2, "coupled")},
	}
}

// TestMatrixParallelDeterminism is the guarantee that lets campaigns
// run parallel by default: the same seed must export byte-identical
// matrix JSON for any worker count, so parallelism can never silently
// change published numbers.
func TestMatrixParallelDeterminism(t *testing.T) {
	sizes := []units.ByteCount{64 * units.KB, 256 * units.KB}
	export := func(workers int) []byte {
		opts := CampaignOpts{Reps: 2, Seed: 21, SampleProfiles: true, Workers: workers}
		m := runMatrix("det", "determinism probe", parallelTestRows(), sizes, opts)
		var buf bytes.Buffer
		if err := WriteJSON(&buf, m); err != nil {
			t.Fatalf("workers=%d: WriteJSON: %v", workers, err)
		}
		return buf.Bytes()
	}

	serial := export(1)
	for _, workers := range []int{2, 8} {
		if got := export(workers); !bytes.Equal(got, serial) {
			t.Errorf("workers=%d: exported JSON differs from serial runner\nserial:\n%s\nworkers=%d:\n%s",
				workers, serial, workers, got)
		}
	}
}

// TestMatrixParallelRace stresses the worker pool under the race
// detector: 8 workers over a multi-row grid, with a Progress callback
// that mutates shared state relying solely on the documented
// serialization contract (no locking of its own).
func TestMatrixParallelRace(t *testing.T) {
	sizes := []units.ByteCount{32 * units.KB, 64 * units.KB}
	var doneSeen []int // mutated by Progress with no explicit lock
	lastTotal := 0
	opts := CampaignOpts{
		Reps: 3, Seed: 4, SampleProfiles: true, Workers: 8,
		Progress: func(done, total int) {
			doneSeen = append(doneSeen, done)
			lastTotal = total
		},
	}
	m := runMatrix("race", "race probe", parallelTestRows(), sizes, opts)

	totalJobs := len(m.Rows) * len(sizes) * opts.Reps
	if lastTotal != totalJobs {
		t.Errorf("Progress total = %d, want %d", lastTotal, totalJobs)
	}
	if len(doneSeen) != totalJobs {
		t.Fatalf("Progress invoked %d times, want %d", len(doneSeen), totalJobs)
	}
	for i, d := range doneSeen {
		if d != i+1 {
			t.Fatalf("Progress done sequence broken at call %d: got %d, want %d", i, d, i+1)
		}
	}
	for _, row := range m.Rows {
		for i, c := range row.Cells {
			if c.Times.N()+c.Failures != opts.Reps {
				t.Errorf("%s/%v: %d samples + %d failures, want %d reps",
					row.Label, sizes[i], c.Times.N(), c.Failures, opts.Reps)
			}
		}
	}
}

// TestMatrixWorkersDefault checks the zero value resolves to all CPUs
// and explicit counts are honored in the recorded metadata.
func TestMatrixWorkersDefault(t *testing.T) {
	if w := (CampaignOpts{}).workers(); w < 1 {
		t.Errorf("default workers = %d, want >= 1", w)
	}
	if w := (CampaignOpts{Workers: 3}).workers(); w != 3 {
		t.Errorf("explicit workers = %d, want 3", w)
	}
	m := runMatrix("meta", "metadata probe", parallelTestRows()[:1],
		[]units.ByteCount{32 * units.KB}, CampaignOpts{Reps: 1, Seed: 2, Workers: 2})
	if m.Workers != 2 {
		t.Errorf("matrix recorded %d workers, want 2", m.Workers)
	}
	if m.WallTime <= 0 || m.BusyTime <= 0 {
		t.Errorf("timing metadata not recorded: wall=%v busy=%v", m.WallTime, m.BusyTime)
	}
}

// TestJobSeedsDistinct asserts the splitmix64 seed derivation is
// collision-free over a grid far larger than any real campaign. The
// old additive mix (Seed + row*1_000_003 + col*7919 + rep*104729)
// collided on such grids.
func TestJobSeedsDistinct(t *testing.T) {
	const rows, cols, reps = 40, 40, 40
	seen := make(map[int64]matrixJob, rows*cols*reps)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			for p := 0; p < reps; p++ {
				s := sweep.Seed(1, r, c, p)
				if prev, dup := seen[s]; dup {
					t.Fatalf("seed collision: (%d,%d,%d) and (%d,%d,%d) both map to %d",
						r, c, p, prev.row, prev.col, prev.rep, s)
				}
				seen[s] = matrixJob{r, c, p}
			}
		}
	}
	// Different campaign seeds must decorrelate the whole grid, not
	// just offset it.
	if sweep.Seed(1, 0, 0, 0)-sweep.Seed(1, 0, 0, 1) == sweep.Seed(2, 0, 0, 0)-sweep.Seed(2, 0, 0, 1) {
		t.Error("seed grids for campaigns 1 and 2 are linearly related")
	}
}

// TestMatrixParallelProgressConcurrentCampaigns runs two campaigns
// concurrently (as a higher-level driver might) to check runMatrix
// has no hidden package-level state.
func TestMatrixParallelProgressConcurrentCampaigns(t *testing.T) {
	sizes := []units.ByteCount{32 * units.KB}
	var wg sync.WaitGroup
	exports := make([][]byte, 2)
	for i := range exports {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			opts := CampaignOpts{Reps: 2, Seed: 33, SampleProfiles: true, Workers: 2}
			m := runMatrix("cc", "concurrent campaigns", parallelTestRows(), sizes, opts)
			var buf bytes.Buffer
			if err := WriteJSON(&buf, m); err != nil {
				t.Errorf("WriteJSON: %v", err)
				return
			}
			exports[i] = buf.Bytes()
		}(i)
	}
	wg.Wait()
	if !bytes.Equal(exports[0], exports[1]) {
		t.Error("concurrent campaigns with equal seeds diverged")
	}
}
