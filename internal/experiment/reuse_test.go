package experiment

import (
	"reflect"
	"testing"

	"mptcplab/internal/chaos"
	"mptcplab/internal/pathmodel"
	"mptcplab/internal/units"
)

// TestTestbedResetDeterminism is the arena-reuse contract: a run on a
// Reset testbed must be byte-identical to the same run on a fresh one,
// even when the testbed previously executed a different config (other
// profiles, 4-path topology, chaos schedule) whose state must not leak
// through the warm pools.
func TestTestbedResetDeterminism(t *testing.T) {
	cfgA := TestbedConfig{
		WiFi: pathmodel.ComcastHome(), Cell: pathmodel.ATT(),
		SampleProfiles: true, WarmRadio: true, Seed: 7,
	}
	cfgB := TestbedConfig{
		WiFi: pathmodel.CoffeeShop(), Cell: pathmodel.Sprint(),
		SampleProfiles: true, WarmRadio: true, Seed: 11,
		ServerSecondIface: true,
	}
	runs := []RunConfig{
		{Transport: MP2, Size: 256 * units.KB},
		{Transport: SPWiFi, Size: 128 * units.KB},
	}
	if sched, err := chaos.Parse("flap:path=wifi;at=1s;dur=300ms;every=2s;n=2"); err != nil {
		t.Fatal(err)
	} else {
		runs = append(runs, RunConfig{Transport: MP2, Size: 256 * units.KB, Chaos: sched})
	}

	for i, rc := range runs {
		fresh := NewTestbed(cfgA).Run(rc)

		// Dirty a testbed with an unrelated run, then Reset to cfgA.
		reusedTB := NewTestbed(cfgB)
		reusedTB.Run(RunConfig{Transport: MP4, Size: 128 * units.KB})
		reusedTB.Reset(cfgA)
		reused := reusedTB.Run(rc)

		if !reflect.DeepEqual(fresh, reused) {
			t.Errorf("run %d: reused testbed diverged from fresh\nfresh:  %+v\nreused: %+v", i, fresh, reused)
		}

		// A second Reset on the same instance must be just as clean.
		reusedTB.Reset(cfgA)
		again := reusedTB.Run(rc)
		if !reflect.DeepEqual(fresh, again) {
			t.Errorf("run %d: second reuse diverged from fresh", i)
		}
	}
}

// The reuse benchmarks measure what Testbed.Reset buys a sweep worker:
// the same small run with a fresh world per iteration versus one
// reused testbed. Run with -benchtime=1000x for the 1k-run campaign
// comparison quoted in EXPERIMENTS.md.
func reuseBenchRun(tb *Testbed, b *testing.B) {
	res := tb.Run(RunConfig{Transport: MP2, Size: 64 * units.KB})
	if !res.Completed {
		b.Fatal("download failed")
	}
}

func reuseBenchCfg(i int) TestbedConfig {
	return TestbedConfig{
		WiFi: pathmodel.ComcastHome(), Cell: pathmodel.ATT(),
		SampleProfiles: true, WarmRadio: true, Seed: int64(i),
	}
}

// The *Only pair isolates world construction from the run: the gap
// between them is what Reset saves, and their absolute level is what
// the fast-seeding RNG source (internal/sim/fastrand.go) attacks.
func BenchmarkNewTestbedOnly(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		NewTestbed(reuseBenchCfg(i))
	}
}

func BenchmarkResetTestbedOnly(b *testing.B) {
	b.ReportAllocs()
	tb := NewTestbed(reuseBenchCfg(0))
	for i := 0; i < b.N; i++ {
		tb.Reset(reuseBenchCfg(i))
	}
}

func BenchmarkRunFreshTestbed(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		reuseBenchRun(NewTestbed(reuseBenchCfg(i)), b)
	}
}

func BenchmarkRunReusedTestbed(b *testing.B) {
	b.ReportAllocs()
	var tb *Testbed
	for i := 0; i < b.N; i++ {
		if tb == nil {
			tb = NewTestbed(reuseBenchCfg(i))
		} else {
			tb.Reset(reuseBenchCfg(i))
		}
		reuseBenchRun(tb, b)
	}
}
