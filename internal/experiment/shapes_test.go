package experiment

import (
	"testing"

	"mptcplab/internal/pathmodel"
	"mptcplab/internal/stats"
	"mptcplab/internal/units"
)

// These tests assert the paper's qualitative findings — the "shape" of
// every headline claim — on small deterministic campaigns. Absolute
// numbers are not compared (our substrate is a simulator); orderings
// and factors are.

func medianTime(t *testing.T, rc RunConfig, cell pathmodel.Profile, wifi pathmodel.Profile, reps int, seed int64) (float64, []RunResult) {
	t.Helper()
	s := stats.New()
	var results []RunResult
	for i := 0; i < reps; i++ {
		tb := NewTestbed(TestbedConfig{
			WiFi: wifi, Cell: cell,
			ServerSecondIface: rc.Transport == MP4,
			SampleProfiles:    true, WarmRadio: true,
			Seed: seed + int64(i)*977,
		})
		res := tb.Run(rc)
		if !res.Completed {
			t.Fatalf("%s did not complete (rep %d)", rc.Describe(), i)
		}
		s.Add(res.DownloadTime.Seconds())
		results = append(results, res)
	}
	return s.Median(), results
}

// Headline claim (§1, §4): MPTCP achieves performance at least close
// to the best single path, and beats it for large transfers on LTE.
func TestMPTCPTracksBestPath16MB(t *testing.T) {
	wifi := pathmodel.ComcastHome()
	att := pathmodel.ATT()
	size := units.ByteCount(16 * units.MB)
	const reps = 5

	spWiFi, _ := medianTime(t, RunConfig{Transport: SPWiFi, Size: size}, att, wifi, reps, 10)
	spCell, _ := medianTime(t, RunConfig{Transport: SPCell, Size: size}, att, wifi, reps, 20)
	mp2, _ := medianTime(t, RunConfig{Transport: MP2, Size: size}, att, wifi, reps, 30)

	best := spWiFi
	if spCell < best {
		best = spCell
	}
	if mp2 > best*1.15 {
		t.Errorf("MP-2 median %.2fs not close to best single path %.2fs", mp2, best)
	}
	// For large LTE transfers MPTCP should actually win (§4.2).
	if mp2 > best {
		t.Logf("note: MP-2 %.2fs vs best SP %.2fs (paper expects a win)", mp2, best)
	}
}

// With a poor (3G) cellular network, MPTCP stays close to the best
// path (WiFi) rather than being dragged down (§4, Fig 2).
func TestMPTCPRobustToPoorCellular(t *testing.T) {
	wifi := pathmodel.ComcastHome()
	sprint := pathmodel.Sprint()
	size := units.ByteCount(2 * units.MB)
	const reps = 5

	spWiFi, _ := medianTime(t, RunConfig{Transport: SPWiFi, Size: size}, sprint, wifi, reps, 40)
	spCell, _ := medianTime(t, RunConfig{Transport: SPCell, Size: size}, sprint, wifi, reps, 50)
	mp2, _ := medianTime(t, RunConfig{Transport: MP2, Size: size}, sprint, wifi, reps, 60)

	if spCell < spWiFi {
		t.Skipf("Sprint beat WiFi in this sample (%.2f < %.2f); scenario premise not met", spCell, spWiFi)
	}
	if mp2 > spWiFi*1.4 {
		t.Errorf("MP-2 over Sprint %.2fs far from best path (WiFi %.2fs): not robust", mp2, spWiFi)
	}
}

// §4.1: for small files the cellular path carries (almost) nothing and
// MPTCP matches SP-WiFi; the cellular share grows with size, reaching
// ~50% by 4MB (Fig 5).
func TestCellularShareGrowsWithSize(t *testing.T) {
	wifi := pathmodel.ComcastHome()
	att := pathmodel.ATT()
	share := func(size units.ByteCount, seed int64) float64 {
		s := stats.New()
		_, results := medianTime(t, RunConfig{Transport: MP2, Size: size}, att, wifi, 4, seed)
		for _, r := range results {
			s.Add(r.CellShare())
		}
		return s.Mean()
	}
	s8k := share(8*units.KB, 70)
	s512k := share(512*units.KB, 80)
	s4m := share(4*units.MB, 90)

	if s8k > 0.10 {
		t.Errorf("8KB cellular share %.2f; transfers should finish before the join (paper ~0)", s8k)
	}
	if s4m < 0.40 {
		t.Errorf("4MB cellular share %.2f; paper reaches ~50%%", s4m)
	}
	if !(s8k <= s512k && s512k <= s4m+0.05) {
		t.Errorf("share not growing with size: 8KB=%.2f 512KB=%.2f 4MB=%.2f", s8k, s512k, s4m)
	}
}

// §4.1/§4.2: MP-4 outperforms MP-2, more prominently as size grows.
func TestFourPathsBeatTwo(t *testing.T) {
	wifi := pathmodel.ComcastHome()
	att := pathmodel.ATT()
	size := units.ByteCount(4 * units.MB)
	const reps = 5
	mp2, _ := medianTime(t, RunConfig{Transport: MP2, Size: size}, att, wifi, reps, 100)
	mp4, _ := medianTime(t, RunConfig{Transport: MP4, Size: size}, att, wifi, reps, 110)
	if mp4 > mp2*1.02 {
		t.Errorf("MP-4 median %.2fs not better than MP-2 %.2fs", mp4, mp2)
	}
}

// §4.2: uncoupled reno is the most aggressive controller and the
// fastest (and unfair); coupled and olia are within a band of each
// other.
func TestControllerOrderingLargeFlows(t *testing.T) {
	wifi := pathmodel.ComcastHome()
	att := pathmodel.ATT()
	size := units.ByteCount(16 * units.MB)
	const reps = 5
	coupled, _ := medianTime(t, RunConfig{Transport: MP2, Controller: "coupled", Size: size}, att, wifi, reps, 120)
	olia, _ := medianTime(t, RunConfig{Transport: MP2, Controller: "olia", Size: size}, att, wifi, reps, 130)
	reno, _ := medianTime(t, RunConfig{Transport: MP2, Controller: "reno", Size: size}, att, wifi, reps, 140)

	if reno > coupled*1.05 {
		t.Errorf("reno median %.2fs slower than coupled %.2fs; aggression inverted", reno, coupled)
	}
	ratio := olia / coupled
	if ratio > 1.35 || ratio < 0.6 {
		t.Errorf("olia/coupled ratio %.2f outside plausible band", ratio)
	}
}

// §4.1.2 / Fig 8: simultaneous SYNs cut download times for mid-size
// flows (paper: −14% at 512KB, −5% at 2MB).
func TestSimultaneousSYNHelpsMidsizeFlows(t *testing.T) {
	wifi := pathmodel.ComcastHome()
	att := pathmodel.ATT()
	size := units.ByteCount(512 * units.KB)
	const reps = 8
	delayed, _ := medianTime(t, RunConfig{Transport: MP2, Size: size}, att, wifi, reps, 150)
	simsyn, _ := medianTime(t, RunConfig{Transport: MP2, Size: size, SimultaneousSYN: true}, att, wifi, reps, 150)
	if simsyn > delayed*1.08 {
		t.Errorf("simultaneous SYN median %.3fs vs delayed %.3fs; patch should not hurt", simsyn, delayed)
	}
}

// §5.2 / Fig 13 / Table 6: out-of-order delay is modest on AT&T and
// severe on Sprint — over 20% of packets wait more than 150 ms.
func TestOFODelayByCarrier(t *testing.T) {
	wifi := pathmodel.ComcastHome()
	size := units.ByteCount(8 * units.MB)

	ofoStats := func(cell pathmodel.Profile, seed int64) (*stats.Sample, float64) {
		s := stats.New()
		_, results := medianTime(t, RunConfig{Transport: MP2, Size: size}, cell, wifi, 3, seed)
		for _, r := range results {
			s.AddAll(r.OFOms)
		}
		return s, s.FractionAbove(150)
	}
	attOFO, attAbove := ofoStats(pathmodel.ATT(), 160)
	sprintOFO, sprintAbove := ofoStats(pathmodel.Sprint(), 170)

	if attOFO.Mean() >= sprintOFO.Mean() {
		t.Errorf("AT&T mean OFO %.1fms ≥ Sprint %.1fms; ordering inverted",
			attOFO.Mean(), sprintOFO.Mean())
	}
	if sprintAbove < 0.2 {
		t.Errorf("Sprint OFO>150ms fraction %.2f; paper reports >20%%", sprintAbove)
	}
	if attAbove > 0.5 {
		t.Errorf("AT&T OFO>150ms fraction %.2f; should be modest", attAbove)
	}
}

// §5.1 / Fig 12: cellular RTT distributions sit above WiFi's and the
// 3G tail is the heaviest.
func TestRTTDistributionsByCarrier(t *testing.T) {
	wifi := pathmodel.ComcastHome()
	size := units.ByteCount(8 * units.MB)

	rtts := func(cell pathmodel.Profile, seed int64) (wifiRTT, cellRTT *stats.Sample) {
		wifiRTT, cellRTT = stats.New(), stats.New()
		_, results := medianTime(t, RunConfig{Transport: MP2, Size: size}, cell, wifi, 3, seed)
		for _, r := range results {
			wifiRTT.AddAll(r.WiFiRTTms)
			cellRTT.AddAll(r.CellRTTms)
		}
		return
	}
	wifiATT, att := rtts(pathmodel.ATT(), 180)
	_, sprint := rtts(pathmodel.Sprint(), 190)

	if wifiATT.Quantile(0.9) > 60 {
		t.Errorf("WiFi p90 RTT %.1fms; paper: 90%% under 50ms", wifiATT.Quantile(0.9))
	}
	if att.Min() < wifiATT.Min() {
		t.Errorf("AT&T min RTT %.1fms below WiFi min %.1fms", att.Min(), wifiATT.Min())
	}
	if sprint.Quantile(0.9) < att.Quantile(0.9) {
		t.Errorf("Sprint p90 %.1fms below AT&T p90 %.1fms", sprint.Quantile(0.9), att.Quantile(0.9))
	}
	if sprint.Max() < 500 {
		t.Errorf("Sprint max RTT %.1fms; paper sees seconds", sprint.Max())
	}
}

// §3.1 ablation: with the Linux-default infinite ssthresh, the
// cellular path never leaves slow start and suffers worse RTT
// inflation than with the paper's 64 KB cap.
func TestInfiniteSsthreshInflatesCellularRTT(t *testing.T) {
	wifi := pathmodel.ComcastHome()
	att := pathmodel.ATT()
	size := units.ByteCount(8 * units.MB)

	maxRTT := func(inf bool, seed int64) float64 {
		s := stats.New()
		_, results := medianTime(t, RunConfig{Transport: SPCell, Size: size, InfiniteSSThresh: inf}, att, wifi, 3, seed)
		for _, r := range results {
			s.AddAll(r.CellRTTms)
		}
		return s.Quantile(0.95)
	}
	capped := maxRTT(false, 200)
	infinite := maxRTT(true, 200)
	if infinite < capped {
		t.Errorf("p95 cellular RTT with infinite ssthresh (%.0fms) below capped (%.0fms)", infinite, capped)
	}
}
