package experiment

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"

	"mptcplab/internal/pathmodel"
	"mptcplab/internal/units"
)

// smallMatrix runs a tiny real campaign once for the export tests.
func smallMatrix(t *testing.T) *Matrix {
	t.Helper()
	opts := CampaignOpts{Reps: 2, Seed: 3, SampleProfiles: true}
	m := SimultaneousSYN(opts)
	return m
}

func TestExportRecords(t *testing.T) {
	m := smallMatrix(t)
	recs := m.Export()
	if len(recs) != len(m.Rows)*len(m.Sizes) {
		t.Fatalf("exported %d records, want %d", len(recs), len(m.Rows)*len(m.Sizes))
	}
	for _, r := range recs {
		if r.Experiment != "fig8" {
			t.Errorf("experiment = %q", r.Experiment)
		}
		if r.N != 2 || r.Failures != 0 {
			t.Errorf("n=%d failures=%d", r.N, r.Failures)
		}
		if !(r.TimeMin <= r.TimeMedian && r.TimeMedian <= r.TimeMax) {
			t.Errorf("box summary out of order: %+v", r)
		}
	}
}

func TestWriteCSVParsesBack(t *testing.T) {
	m := smallMatrix(t)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, m); err != nil {
		t.Fatal(err)
	}
	rd := csv.NewReader(&buf)
	rows, err := rd.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1+len(m.Export()) {
		t.Errorf("csv has %d rows, want header+%d", len(rows), len(m.Export()))
	}
	if len(rows[0]) != len(rows[1]) {
		t.Errorf("header has %d cols, data %d", len(rows[0]), len(rows[1]))
	}
}

func TestWriteJSONParsesBack(t *testing.T) {
	m := smallMatrix(t)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, m); err != nil {
		t.Fatal(err)
	}
	var recs []CellExport
	if err := json.Unmarshal(buf.Bytes(), &recs); err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(m.Export()) {
		t.Errorf("json has %d records", len(recs))
	}
}

func TestExportDistributionsMonotone(t *testing.T) {
	opts := CampaignOpts{Reps: 1, Seed: 5, SampleProfiles: true}
	m := runMatrix("t", "t", []RowSpec{{
		Label: "MP-2", WiFi: baselineWiFi(), Cell: baselineCell(),
		Make: mp(MP2, "coupled"),
	}}, []units.ByteCount{2 * units.MB}, opts)
	ds := m.ExportDistributions()
	if len(ds) == 0 {
		t.Fatal("no distributions")
	}
	for _, d := range ds {
		if len(d.CCDF) != len(d.Thresholds) {
			t.Fatalf("%s: ccdf/threshold length mismatch", d.Metric)
		}
		for i := 1; i < len(d.CCDF); i++ {
			if d.CCDF[i] > d.CCDF[i-1]+1e-12 {
				t.Errorf("%s: CCDF not monotone at %d", d.Metric, i)
			}
		}
	}
}

func TestReportWritersProduceTables(t *testing.T) {
	m := smallMatrix(t)
	var buf bytes.Buffer
	WriteDownloadTimes(&buf, m)
	if !strings.Contains(buf.String(), "MP-2 delayed-SYN") {
		t.Error("download-time table missing rows")
	}
	buf.Reset()
	WriteCellShare(&buf, m)
	if !strings.Contains(buf.String(), "%") {
		t.Error("share table missing values")
	}

	lat := runMatrix("t2", "t2", []RowSpec{{
		Label: "MP-x", WiFi: baselineWiFi(), Cell: baselineCell(),
		Make: mp(MP2, "coupled"),
	}}, []units.ByteCount{2 * units.MB}, CampaignOpts{Reps: 1, Seed: 9, SampleProfiles: true})
	buf.Reset()
	WriteRTTCCDF(&buf, lat)
	WriteOFOCCDF(&buf, lat)
	WriteMPTCPLatencyTable(&buf, lat)
	out := buf.String()
	for _, want := range []string{"fig12", "fig13", "table6", "thresholds"} {
		if !strings.Contains(out, want) {
			t.Errorf("latency report missing %q", want)
		}
	}
}

func baselineWiFi() pathmodel.Profile { return pathmodel.ComcastHome() }
func baselineCell() pathmodel.Profile { return pathmodel.ATT() }
