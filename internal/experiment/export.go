package experiment

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"mptcplab/internal/stats"
)

// CellExport is the machine-readable summary of one campaign cell,
// used by paperbench's -format csv/json outputs so results can be
// plotted outside Go.
type CellExport struct {
	Experiment string  `json:"experiment"`
	Config     string  `json:"config"`
	SizeBytes  int64   `json:"size_bytes"`
	N          int     `json:"n"`
	Failures   int     `json:"failures"`
	TimeMin    float64 `json:"time_s_min"`
	TimeQ1     float64 `json:"time_s_q1"`
	TimeMedian float64 `json:"time_s_median"`
	TimeQ3     float64 `json:"time_s_q3"`
	TimeMax    float64 `json:"time_s_max"`
	TimeMean   float64 `json:"time_s_mean"`
	TimeStderr float64 `json:"time_s_stderr"`

	CellShareMean float64 `json:"cell_share_mean"`

	WiFiLossPctMean float64 `json:"wifi_loss_pct_mean"`
	CellLossPctMean float64 `json:"cell_loss_pct_mean"`

	WiFiRTTMean float64 `json:"wifi_rtt_ms_mean"`
	WiFiRTTP90  float64 `json:"wifi_rtt_ms_p90"`
	CellRTTMean float64 `json:"cell_rtt_ms_mean"`
	CellRTTP90  float64 `json:"cell_rtt_ms_p90"`

	OFOMean     float64 `json:"ofo_ms_mean"`
	OFOP90      float64 `json:"ofo_ms_p90"`
	OFOInOrder  float64 `json:"ofo_inorder_frac"`
	OFOAbove150 float64 `json:"ofo_gt150ms_frac"`
}

// Export flattens a matrix into one record per cell.
func (m *Matrix) Export() []CellExport {
	var out []CellExport
	for _, row := range m.Rows {
		for i, size := range m.Sizes {
			c := row.Cells[i]
			b := c.Times.BoxSummary()
			e := CellExport{
				Experiment: m.ID,
				Config:     row.Label,
				SizeBytes:  int64(size),
				N:          c.Times.N(),
				Failures:   c.Failures,
				TimeMin:    b.Min, TimeQ1: b.Q1, TimeMedian: b.Median,
				TimeQ3: b.Q3, TimeMax: b.Max,
				TimeMean: c.Times.Mean(), TimeStderr: c.Times.Stderr(),
				CellShareMean:   c.Share.Mean(),
				WiFiLossPctMean: c.WiFiLoss.Mean(),
				CellLossPctMean: c.CellLoss.Mean(),
				WiFiRTTMean:     c.WiFiRTT.Mean(),
				WiFiRTTP90:      c.WiFiRTT.Quantile(0.9),
				CellRTTMean:     c.CellRTT.Mean(),
				CellRTTP90:      c.CellRTT.Quantile(0.9),
			}
			if c.OFO.N() > 0 {
				e.OFOMean = c.OFO.Mean()
				e.OFOP90 = c.OFO.Quantile(0.9)
				e.OFOInOrder = 1 - c.OFO.FractionAbove(0)
				e.OFOAbove150 = c.OFO.FractionAbove(150)
			}
			out = append(out, e)
		}
	}
	return out
}

// WriteJSON emits the matrix as a JSON array of cell records.
func WriteJSON(w io.Writer, ms ...*Matrix) error {
	var all []CellExport
	for _, m := range ms {
		all = append(all, m.Export()...)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(all)
}

// csvHeader lists the exported columns, in order.
var csvHeader = []string{
	"experiment", "config", "size_bytes", "n", "failures",
	"time_s_min", "time_s_q1", "time_s_median", "time_s_q3", "time_s_max",
	"time_s_mean", "time_s_stderr",
	"cell_share_mean", "wifi_loss_pct_mean", "cell_loss_pct_mean",
	"wifi_rtt_ms_mean", "wifi_rtt_ms_p90", "cell_rtt_ms_mean", "cell_rtt_ms_p90",
	"ofo_ms_mean", "ofo_ms_p90", "ofo_inorder_frac", "ofo_gt150ms_frac",
}

// WriteCSV emits the matrix as CSV with a header row.
func WriteCSV(w io.Writer, ms ...*Matrix) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }
	for _, m := range ms {
		for _, e := range m.Export() {
			rec := []string{
				e.Experiment, e.Config, strconv.FormatInt(e.SizeBytes, 10),
				strconv.Itoa(e.N), strconv.Itoa(e.Failures),
				f(e.TimeMin), f(e.TimeQ1), f(e.TimeMedian), f(e.TimeQ3), f(e.TimeMax),
				f(e.TimeMean), f(e.TimeStderr),
				f(e.CellShareMean), f(e.WiFiLossPctMean), f(e.CellLossPctMean),
				f(e.WiFiRTTMean), f(e.WiFiRTTP90), f(e.CellRTTMean), f(e.CellRTTP90),
				f(e.OFOMean), f(e.OFOP90), f(e.OFOInOrder), f(e.OFOAbove150),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// Describe renders a one-line summary used by paperbench's progress
// output.
func (m *Matrix) Describe() string {
	cells := 0
	for _, r := range m.Rows {
		cells += len(r.Cells)
	}
	return fmt.Sprintf("%s: %d configs x %d sizes (%d cells)", m.ID, len(m.Rows), len(m.Sizes), cells)
}

// DistributionExport carries raw per-packet samples for CCDF plotting
// (Figures 12/13).
type DistributionExport struct {
	Experiment string    `json:"experiment"`
	Config     string    `json:"config"`
	SizeBytes  int64     `json:"size_bytes"`
	Metric     string    `json:"metric"` // "rtt_cell_ms" | "rtt_wifi_ms" | "ofo_ms"
	Thresholds []float64 `json:"thresholds"`
	CCDF       []float64 `json:"ccdf"`
	N          int       `json:"n"`
}

// ExportDistributions renders CCDF series for every cell, at
// log-spaced thresholds, for external plotting of Figures 12/13.
func (m *Matrix) ExportDistributions() []DistributionExport {
	rttT := stats.LogSpace(10, 4000, 24)
	ofoT := append([]float64{0}, stats.LogSpace(1, 2000, 23)...)
	var out []DistributionExport
	add := func(row MatrixRow, size int64, metric string, s *stats.Sample, ts []float64) {
		if s.N() == 0 {
			return
		}
		out = append(out, DistributionExport{
			Experiment: m.ID, Config: row.Label, SizeBytes: size,
			Metric: metric, Thresholds: ts, CCDF: s.CCDF(ts), N: s.N(),
		})
	}
	for _, row := range m.Rows {
		for i, size := range m.Sizes {
			c := row.Cells[i]
			add(row, int64(size), "rtt_cell_ms", c.CellRTT, rttT)
			add(row, int64(size), "rtt_wifi_ms", c.WiFiRTT, rttT)
			add(row, int64(size), "ofo_ms", c.OFO, ofoT)
		}
	}
	return out
}
