package experiment

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"mptcplab/internal/chaos"
	"mptcplab/internal/sim"
	"mptcplab/internal/sweep"
	"mptcplab/internal/units"
)

func mustSchedule(t *testing.T, spec string) chaos.Schedule {
	t.Helper()
	sched, err := chaos.Parse(spec)
	if err != nil {
		t.Fatalf("chaos.Parse(%q): %v", spec, err)
	}
	return sched
}

// TestChaosOutageMPTCPvsSPWiFi reproduces the paper's §6 resilience
// claim through the chaos layer: during a mid-transfer WiFi outage,
// MPTCP's time-to-recover is bounded by reinjection onto the surviving
// cellular subflow, while single-path TCP over WiFi can only sit in
// RTO backoff until the outage ends.
func TestChaosOutageMPTCPvsSPWiFi(t *testing.T) {
	run := func(transport Transport) RunResult {
		tb := NewTestbed(TestbedConfig{
			WiFi: baselineWiFi(), Cell: baselineCell(), WarmRadio: true, Seed: 61,
		})
		return tb.Run(RunConfig{
			Transport: transport,
			Size:      8 * units.MB,
			Chaos:     mustSchedule(t, "outage:path=wifi;at=2s;dur=3s"),
			SelfCheck: true,
		})
	}

	mp := run(MP2)
	sp := run(SPWiFi)
	for name, res := range map[string]RunResult{"MP-2": mp, "SP-WiFi": sp} {
		if res.Violations != 0 {
			t.Fatalf("%s: %d violations; first: %s", name, res.Violations, res.FirstViolation)
		}
		if res.Resilience == nil {
			t.Fatalf("%s: no resilience report", name)
		}
		if !res.Completed {
			t.Fatalf("%s: download did not complete", name)
		}
	}

	// MPTCP keeps moving bytes through the outage on cellular; its
	// recovery time is small and bounded.
	mpTTR := mp.Resilience.TTRAcc
	if mpTTR.N() != 1 {
		t.Fatalf("MP-2 recorded %d recoveries, want 1", mpTTR.N())
	}
	if ttr := mpTTR.Mean(); ttr > 1.0 {
		t.Errorf("MP-2 time-to-recover %.3fs, want < 1s (reinjection-bounded)", ttr)
	}
	if mp.Resilience.FaultBytes == 0 {
		t.Error("MP-2 moved no bytes during the outage; expected cellular to carry traffic")
	}
	if g := mp.Resilience.Graceful(); g != "graceful" {
		t.Errorf("MP-2 verdict %q, want graceful", g)
	}

	// Single-path WiFi stalls for the outage: apart from monitor
	// tick-boundary attribution slop, nothing moves during the fault
	// window, and the monitor scores one long stall spanning it. (The
	// flow still completes after the link returns, so its end verdict
	// is recovery, not failure — the contrast with MPTCP is the stall
	// span and the dead fault window.)
	if fg, sg := sp.Resilience.FaultGoodput(), sp.Resilience.SteadyGoodput(); fg > sg/10 {
		t.Errorf("SP-WiFi fault-window goodput %.0f B/s vs steady %.0f B/s; a WiFi blackout should starve it", fg, sg)
	}
	if sp.Resilience.FaultBytes >= mp.Resilience.FaultBytes {
		t.Errorf("SP-WiFi moved %d bytes during the outage, MP-2 moved %d; aggregation should win",
			sp.Resilience.FaultBytes, mp.Resilience.FaultBytes)
	}
	if sp.Resilience.TotalStalls == 0 {
		t.Error("SP-WiFi recorded no stalls across a 3s outage")
	}
	if ls := sp.Resilience.LongestStall; ls < 2*sim.Second {
		t.Errorf("SP-WiFi longest stall %v, want >= 2s (blacked out for 3s)", ls)
	}
	if mpLS, spLS := mp.Resilience.LongestStall, sp.Resilience.LongestStall; mpLS >= spLS {
		t.Errorf("MP-2 longest stall %v not shorter than SP-WiFi's %v", mpLS, spLS)
	}
}

// TestChaosStormHandover drives the handover storm (withdraw/re-add
// churn) against MP-2 and requires the transfer to survive it.
func TestChaosStormHandover(t *testing.T) {
	tb := NewTestbed(TestbedConfig{
		WiFi: baselineWiFi(), Cell: baselineCell(), WarmRadio: true, Seed: 7,
	})
	res := tb.Run(RunConfig{
		Transport: MP2,
		Size:      4 * units.MB,
		Chaos:     mustSchedule(t, "storm:path=wifi;at=1s;dur=2s;every=500ms"),
		SelfCheck: true,
	})
	if res.Violations != 0 {
		t.Fatalf("%d violations; first: %s", res.Violations, res.FirstViolation)
	}
	if !res.Completed {
		t.Fatal("download did not survive the handover storm")
	}
	if res.Subflows < 3 {
		t.Errorf("server saw %d subflows; a storm of rejoins should leave > 2", res.Subflows)
	}
}

// TestMatrixChaosDeterminism: campaigns whose rows carry chaos
// schedules stay byte-identical across worker counts.
func TestMatrixChaosDeterminism(t *testing.T) {
	rows := []RowSpec{{
		Label: "MP-2 flap", WiFi: baselineWiFi(), Cell: baselineCell(),
		Make: func(size units.ByteCount) RunConfig {
			return RunConfig{
				Transport: MP2, Size: size,
				Chaos: mustSchedule(t, "flap:path=wifi;at=1s;dur=300ms;every=1s;n=3"),
			}
		},
	}}
	sizes := []units.ByteCount{256 * units.KB, units.MB}
	export := func(workers int) []byte {
		m := runMatrix("chaos-det", "chaos determinism probe", rows, sizes,
			CampaignOpts{Reps: 2, Seed: 77, SampleProfiles: true, Workers: workers})
		var buf bytes.Buffer
		if err := WriteJSON(&buf, m); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := export(1)
	if got := export(4); !bytes.Equal(got, serial) {
		t.Error("chaos campaign export differs between 1 and 4 workers")
	}
}

// sabotageMatrix installs testMatrixHook for one test, firing only on
// the testbed with the target seed.
func sabotageMatrix(t *testing.T, target int64, fn func(tb *Testbed)) {
	t.Helper()
	testMatrixHook = func(tb *Testbed) {
		if tb.cfg.Seed == target {
			fn(tb)
		}
	}
	t.Cleanup(func() { testMatrixHook = nil })
}

// TestMatrixContainsPanickingRun: one run panicking mid-campaign is
// contained as a cell failure; the rest of the campaign completes.
func TestMatrixContainsPanickingRun(t *testing.T) {
	opts := CampaignOpts{Reps: 3, Seed: 13, Workers: 2}
	target := sweep.Seed(opts.Seed, 0, 0, 1)
	sabotageMatrix(t, target, func(tb *Testbed) { panic("injected matrix fault") })

	sizes := []units.ByteCount{64 * units.KB}
	m := runMatrix("contain", "panic containment probe", parallelTestRows(), sizes, opts)
	if m.FailedRuns != 1 {
		t.Fatalf("FailedRuns = %d, want 1", m.FailedRuns)
	}
	if !strings.Contains(m.FirstFailure, "injected matrix fault") {
		t.Fatalf("FirstFailure %q missing the panic message", m.FirstFailure)
	}
	if strings.Contains(m.FirstFailure, "goroutine") {
		t.Fatalf("FirstFailure leaked a stack trace: %q", m.FirstFailure)
	}
	var failures, samples int
	for _, row := range m.Rows {
		for _, c := range row.Cells {
			failures += c.Failures
			samples += c.Times.N()
		}
	}
	if failures != 1 {
		t.Errorf("cells recorded %d failures, want exactly the sabotaged run", failures)
	}
	if want := len(m.Rows)*opts.Reps - 1; samples != want {
		t.Errorf("cells hold %d completed samples, want %d", samples, want)
	}
}

// TestMatrixContainsLivelockedRun: a run whose event loop spins
// without advancing virtual time is killed by the watchdog and scored
// as that cell's failure.
func TestMatrixContainsLivelockedRun(t *testing.T) {
	opts := CampaignOpts{Reps: 2, Seed: 19, Workers: 2}
	target := sweep.Seed(opts.Seed, 1, 0, 0)
	sabotageMatrix(t, target, func(tb *Testbed) {
		// Wedge the event loop mid-transfer: a self-rescheduling event
		// that never lets virtual time advance.
		var spin func()
		spin = func() { tb.Sim.At(tb.Sim.Now(), "spin", spin) }
		tb.Sim.At(sim.Millisecond, "spin", spin)
	})

	sizes := []units.ByteCount{64 * units.KB}
	m := runMatrix("livelock", "livelock containment probe", parallelTestRows(), sizes, opts)
	if m.FailedRuns != 1 {
		t.Fatalf("FailedRuns = %d, want 1", m.FailedRuns)
	}
	if !strings.Contains(m.FirstFailure, "livelock") {
		t.Fatalf("FirstFailure %q does not name the livelock", m.FirstFailure)
	}
}

// TestMatrixCancelPartial: cancelling mid-campaign yields a partial
// but exportable matrix.
func TestMatrixCancelPartial(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opts := CampaignOpts{
		Reps: 4, Seed: 29, Workers: 1, Context: ctx,
		Progress: func(done, total int) {
			if done == 3 {
				cancel()
			}
		},
	}
	sizes := []units.ByteCount{64 * units.KB}
	m := runMatrix("cancel", "cancellation probe", parallelTestRows(), sizes, opts)
	if !m.Cancelled {
		t.Fatal("matrix not marked cancelled")
	}
	var absorbed int
	for _, row := range m.Rows {
		for _, c := range row.Cells {
			absorbed += c.Times.N() + c.Failures
		}
	}
	if absorbed != 3 {
		t.Fatalf("absorbed %d runs, want the 3 completed before cancel", absorbed)
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, m); err != nil {
		t.Fatalf("partial export: %v", err)
	}
	if buf.Len() == 0 {
		t.Fatal("partial export is empty")
	}
}
