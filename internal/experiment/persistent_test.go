package experiment

import (
	"testing"

	"mptcplab/internal/pathmodel"
	"mptcplab/internal/seg"
	"mptcplab/internal/sim"
	"mptcplab/internal/tcp"
	"mptcplab/internal/units"
	"mptcplab/internal/web"
)

// TestPersistentConnectionManyGets regression-tests the video-stream
// workload (§6): a large prefetch plus periodic blocks on one
// keep-alive connection. It once deadlocked when an RTO's head
// retransmission was gated on the pipe estimate.
func TestPersistentConnectionManyGets(t *testing.T) {
	tb := NewTestbed(TestbedConfig{
		WiFi: pathmodel.ComcastHome(), Cell: pathmodel.ATT(),
		SampleProfiles: true, WarmRadio: true, Seed: 7,
	})
	cfg := tcp.DefaultConfig()
	prefetch := 40 * units.MB
	block := 5 * units.MB
	const blocks = 6
	fs := &web.FileServer{CloseAfter: -1, SizeFor: func(i int) int {
		if i == 0 {
			return prefetch
		}
		return block
	}}
	lis := tcp.Listen(tb.Server, tb.Net, ServerPort, cfg, tb.RNG.Child("srv"))
	lis.OnAccept = func(ep *tcp.Endpoint, syn *seg.Segment) bool {
		fs.ServeStream(web.TCPStream{EP: ep})
		return true
	}
	ep := tcp.NewEndpoint(tb.Client, tb.Net, tb.WiFiAddr, tb.SrvAddr, cfg, tb.RNG.Child("cli"))
	g := web.NewGetter(web.TCPStream{EP: ep})

	done := false
	var fetchBlock func(i int)
	fetchBlock = func(i int) {
		issued := tb.Sim.Now()
		g.Get(block, func() {
			if i+1 < blocks {
				wait := 72*sim.Second - (tb.Sim.Now() - issued)
				if wait < 0 {
					wait = 0
				}
				tb.Sim.After(wait, "video.block", func() { fetchBlock(i + 1) })
			} else {
				done = true
				tb.Sim.Stop()
			}
		})
	}
	g.Get(prefetch, func() { fetchBlock(0) })
	ep.Connect()
	tb.Sim.RunUntil(30 * sim.Minute)

	if !done {
		t.Fatalf("stream stalled: received %d bytes, client=%v", g.BytesReceived, ep)
	}
	want := int64(prefetch + blocks*block + (blocks+1)*web.ResponseHeaderSize)
	if g.BytesReceived != want {
		t.Errorf("received %d bytes, want %d", g.BytesReceived, want)
	}
	if fs.Requests != blocks+1 {
		t.Errorf("server served %d requests, want %d", fs.Requests, blocks+1)
	}
}
