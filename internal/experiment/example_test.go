package experiment_test

import (
	"fmt"

	"mptcplab/internal/experiment"
	"mptcplab/internal/pathmodel"
	"mptcplab/internal/units"
)

// The basic measurement unit: one download on a fresh Figure-1
// testbed. Everything is deterministic given the seed.
func Example() {
	tb := experiment.NewTestbed(experiment.TestbedConfig{
		WiFi:      pathmodel.ComcastHome(),
		Cell:      pathmodel.ATT(),
		WarmRadio: true,
		Seed:      42,
	})
	res := tb.Run(experiment.RunConfig{
		Transport:  experiment.MP2,
		Controller: "coupled",
		Size:       4 * units.MB,
	})
	fmt.Printf("completed: %v\n", res.Completed)
	fmt.Printf("subflows: %d\n", res.Subflows)
	fmt.Printf("cellular share above 50%%: %v\n", res.CellShare() > 0.5)
	// Output:
	// completed: true
	// subflows: 2
	// cellular share above 50%: true
}

// Campaigns aggregate repeated runs into the paper's figures.
func ExampleSimultaneousSYN() {
	m := experiment.SimultaneousSYN(experiment.CampaignOpts{
		Reps: 2, Seed: 7, SampleProfiles: true,
	})
	// The matrix has one row per configuration, one column per size.
	fmt.Println(len(m.Rows), "configs x", len(m.Sizes), "sizes")
	c := m.Cell("MP-2 delayed-SYN", 512*units.KB)
	fmt.Println("samples per cell:", c.Times.N())
	// Output:
	// 2 configs x 4 sizes
	// samples per cell: 2
}
