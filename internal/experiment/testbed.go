// Package experiment reproduces the paper's measurement campaigns: it
// materializes the Figure 1 testbed on the simulator, runs single-path
// and multipath downloads across carriers, file sizes, congestion
// controllers and SYN modes, and aggregates the metrics behind every
// table and figure in the evaluation (§4, §5).
package experiment

import (
	"mptcplab/internal/chaos"
	"mptcplab/internal/mptcp"
	"mptcplab/internal/netem"
	"mptcplab/internal/pathmodel"
	"mptcplab/internal/seg"
	"mptcplab/internal/sim"
	"mptcplab/internal/units"
)

// Well-known testbed addresses (Figure 1).
var (
	ClientWiFiIP = "10.0.0.2"
	ClientCellIP = "172.16.0.2"
	ServerIP1    = "192.168.1.1"
	ServerIP2    = "192.168.2.1"
	ServerPort   = uint16(8080) // Apache on 8080: AT&T proxies port 80
)

// TestbedConfig selects the networks for one measurement run.
type TestbedConfig struct {
	WiFi pathmodel.Profile
	Cell pathmodel.Profile
	// ServerSecondIface enables the server's second interface
	// (Figure 1's dashed paths, used by 4-path runs).
	ServerSecondIface bool
	// SampleProfiles applies the profiles' per-run Spread, modeling
	// the paper's location-to-location variation.
	SampleProfiles bool
	// UsePeriod applies Period's diurnal load multipliers (§3.2's four
	// measurement windows) before sampling.
	UsePeriod bool
	Period    pathmodel.Period
	// WarmRadio pre-warms the cellular radio, as the paper's two ICMP
	// pings before each measurement do (§3.2). Default true via
	// NewTestbed; set false to measure promotion-delay impact.
	WarmRadio bool
	Seed      int64
}

// Testbed is one materialized client/server/network instance. Each
// measurement run gets a fresh testbed (fresh simulator, fresh
// endpoints) or a Reset one — same simulator and warm pools, rebuilt
// topology and endpoints, observationally identical: the paper's
// server also disables metric caching between connections (§3.1).
type Testbed struct {
	Sim    *sim.Simulator
	Net    *netem.Network
	Client *netem.Host
	Server *netem.Host
	RNG    *sim.RNG

	WiFiAddr, CellAddr seg.Addr
	SrvAddr, SrvAddr2  seg.Addr

	WiFiUp, WiFiDown *netem.Link
	CellUp, CellDown *netem.Link
	CellRadio        *netem.Radio

	cfg TestbedConfig

	// Chaos wiring, populated by Run when the config has a schedule:
	// the monitor scores resilience, clientConn is the live MPTCP
	// connection handover storms act on, nextPort allocates the fresh
	// client ports rejoins require.
	mon        *chaos.Monitor
	clientConn *mptcp.Conn
	nextPort   uint16
}

// NewTestbed builds the Figure 1 topology: the client's WiFi and
// cellular interfaces each reach the server's interface(s) through
// their own access network; the access links are shared bottlenecks
// across subflows (which is why 4-path MPTCP gains little at 512 MB,
// Figure 11).
func NewTestbed(cfg TestbedConfig) *Testbed {
	s := sim.New()
	tb := &Testbed{Sim: s, Net: netem.NewNetwork(s)}
	tb.build(cfg)
	return tb
}

// Reset re-materializes the testbed for a new measurement run while
// reusing the simulator, the network, and their warm pools (event
// records, timer records, segments). The simulator's clock and
// tie-break counter restart from zero and every host, link, and route
// is rebuilt from the config, so a run on a reused testbed is
// byte-identical to the same run on a fresh one — the arena-reuse path
// sweep workers use to stop rebuilding the world once per job.
func (tb *Testbed) Reset(cfg TestbedConfig) {
	tb.Sim.Reset()
	tb.Net.Reset()
	tb.mon = nil
	tb.clientConn = nil
	tb.nextPort = 0
	tb.build(cfg)
}

// build materializes the topology onto the testbed's simulator and
// network, which must be fresh or freshly Reset.
func (tb *Testbed) build(cfg TestbedConfig) {
	s := tb.Sim
	rng := sim.NewRNG(cfg.Seed)
	tb.RNG = rng
	tb.cfg = cfg
	tb.Client = tb.Net.NewHost("client")
	tb.Server = tb.Net.NewHost("umass-server")
	tb.WiFiAddr = seg.MakeAddr(ClientWiFiIP, 40000)
	tb.CellAddr = seg.MakeAddr(ClientCellIP, 40001)
	tb.SrvAddr = seg.MakeAddr(ServerIP1, ServerPort)
	tb.SrvAddr2 = seg.MakeAddr(ServerIP2, ServerPort)

	wifi, cell := cfg.WiFi, cfg.Cell
	if cfg.UsePeriod {
		wifi = wifi.AtPeriod(cfg.Period)
		cell = cell.AtPeriod(cfg.Period)
	}
	if cfg.SampleProfiles {
		wifi = wifi.Sample(rng.Child("wifi-sample"))
		cell = cell.Sample(rng.Child("cell-sample"))
	}
	tb.WiFiUp, tb.WiFiDown, _ = wifi.Links(s, rng.Child("wifi"))
	tb.CellUp, tb.CellDown, tb.CellRadio = cell.Links(s, rng.Child("cell"))

	// Server LAN interfaces: gigabit, sub-millisecond, never the
	// bottleneck.
	lan := func(name string) *netem.Link {
		l := netem.NewLink(s, rng, name)
		l.Rate = 1 * units.Gbps
		l.PropDelay = 500 * sim.Microsecond
		l.QueueLimit = 16 * units.MB
		return l
	}
	srv1In, srv1Out := lan("srv-eth0-in"), lan("srv-eth0-out")

	addPath := func(cli seg.Addr, srv seg.Addr, up, down, lin, lout *netem.Link) {
		tb.Net.AddDuplexRoute(cli.IP, srv.IP, tb.Client, tb.Server,
			[]*netem.Link{up, lin}, []*netem.Link{lout, down})
	}
	addPath(tb.WiFiAddr, tb.SrvAddr, tb.WiFiUp, tb.WiFiDown, srv1In, srv1Out)
	addPath(tb.CellAddr, tb.SrvAddr, tb.CellUp, tb.CellDown, srv1In, srv1Out)
	if cfg.ServerSecondIface {
		srv2In, srv2Out := lan("srv-eth1-in"), lan("srv-eth1-out")
		addPath(tb.WiFiAddr, tb.SrvAddr2, tb.WiFiUp, tb.WiFiDown, srv2In, srv2Out)
		addPath(tb.CellAddr, tb.SrvAddr2, tb.CellUp, tb.CellDown, srv2In, srv2Out)
	}

	if cfg.WarmRadio && tb.CellRadio != nil {
		tb.CellRadio.Warm()
	}
}

// IsCellIP reports whether an address belongs to the client's cellular
// interface — how run results attribute subflows to paths.
func (tb *Testbed) IsCellIP(a seg.Addr) bool { return a.IP == tb.CellAddr.IP }
