// Campaign constructors for every figure and table of the paper. Each
// takes CampaignOpts and honors all its knobs — in particular
// opts.Workers: every campaign fans its runs out over the parallel
// runner (default: all CPUs) with byte-identical results to a serial
// run, so callers may parallelize freely.

package experiment

import (
	"mptcplab/internal/pathmodel"
	"mptcplab/internal/sim"
	"mptcplab/internal/units"
)

// File-size sets used by the paper's campaigns.
var (
	BaselineSizes  = []units.ByteCount{64 * units.KB, 512 * units.KB, 2 * units.MB, 16 * units.MB}
	SmallFlowSizes = []units.ByteCount{8 * units.KB, 64 * units.KB, 512 * units.KB, 4 * units.MB}
	LargeFlowSizes = []units.ByteCount{4 * units.MB, 8 * units.MB, 16 * units.MB, 32 * units.MB}
	SimSYNSizes    = []units.ByteCount{8 * units.KB, 64 * units.KB, 512 * units.KB, 2 * units.MB}
)

func sp(t Transport) func(units.ByteCount) RunConfig {
	return func(size units.ByteCount) RunConfig {
		return RunConfig{Transport: t, Size: size}
	}
}

func mp(t Transport, controller string) func(units.ByteCount) RunConfig {
	return func(size units.ByteCount) RunConfig {
		return RunConfig{Transport: t, Controller: controller, Size: size}
	}
}

// Baseline reproduces Figures 2 and 3 and Table 2: single-path TCP
// over WiFi and each cellular carrier, and 2-path MPTCP (coupled) with
// each carrier, across 64 KB - 16 MB downloads.
func Baseline(opts CampaignOpts) *Matrix {
	wifi := pathmodel.ComcastHome()
	rows := []RowSpec{
		{Label: "SP-WiFi", WiFi: wifi, Cell: pathmodel.ATT(), Make: sp(SPWiFi)},
	}
	for _, carrier := range pathmodel.Carriers() {
		rows = append(rows, RowSpec{
			Label: "SP-" + carrier.Name, WiFi: wifi, Cell: carrier, Make: sp(SPCell),
		})
	}
	for _, carrier := range pathmodel.Carriers() {
		rows = append(rows, RowSpec{
			Label: "MP-" + carrier.Name, WiFi: wifi, Cell: carrier, Make: mp(MP2, "coupled"),
		})
	}
	return runMatrix("fig2", "Baseline download time (Fig 2), cellular share (Fig 3), path characteristics (Table 2)",
		rows, BaselineSizes, opts)
}

// SmallFlows reproduces Figures 4 and 5 and Table 3: 8 KB - 4 MB
// downloads over AT&T LTE + home WiFi, comparing subflow counts and
// congestion controllers.
func SmallFlows(opts CampaignOpts) *Matrix {
	return flowsMatrix("fig4", "Small flows over AT&T+WiFi (Fig 4/5, Table 3)",
		pathmodel.ComcastHome(), SmallFlowSizes, opts,
		[]string{"coupled", "olia", "reno"})
}

// LargeFlows reproduces Figures 9 and 10 and Table 5: 4 - 32 MB
// downloads where the congestion controllers leave slow start and
// differ (§4.2).
func LargeFlows(opts CampaignOpts) *Matrix {
	return flowsMatrix("fig9", "Large flows over AT&T+WiFi (Fig 9/10, Table 5)",
		pathmodel.ComcastHome(), LargeFlowSizes, opts,
		[]string{"coupled", "olia", "reno"})
}

// CoffeeShop reproduces Figure 6/7 and Table 4: the lossy public
// hotspot. The paper skipped olia here "for the sake of time".
func CoffeeShop(opts CampaignOpts) *Matrix {
	return flowsMatrix("fig6", "Coffee-shop public WiFi (Fig 6/7, Table 4)",
		pathmodel.CoffeeShop(), SmallFlowSizes, opts,
		[]string{"coupled", "reno"})
}

// flowsMatrix builds the SP/MP-2/MP-4 x controller grid shared by the
// small-flow, large-flow, and coffee-shop campaigns.
func flowsMatrix(id, title string, wifi pathmodel.Profile, sizes []units.ByteCount,
	opts CampaignOpts, controllers []string) *Matrix {
	att := pathmodel.ATT()
	rows := []RowSpec{
		{Label: "SP-WiFi", WiFi: wifi, Cell: att, Make: sp(SPWiFi)},
		{Label: "SP-ATT", WiFi: wifi, Cell: att, Make: sp(SPCell)},
	}
	for _, ctrl := range controllers {
		rows = append(rows, RowSpec{Label: "MP-2 (" + ctrl + ")", WiFi: wifi, Cell: att, Make: mp(MP2, ctrl)})
	}
	for _, ctrl := range controllers {
		rows = append(rows, RowSpec{Label: "MP-4 (" + ctrl + ")", WiFi: wifi, Cell: att, Make: mp(MP4, ctrl)})
	}
	return runMatrix(id, title, rows, sizes, opts)
}

// SimultaneousSYN reproduces Figure 8: stock delayed-SYN MPTCP versus
// the simultaneous-SYN patch, 2-path over AT&T.
func SimultaneousSYN(opts CampaignOpts) *Matrix {
	wifi := pathmodel.ComcastHome()
	att := pathmodel.ATT()
	rows := []RowSpec{
		{Label: "MP-2 delayed-SYN", WiFi: wifi, Cell: att, Make: mp(MP2, "coupled")},
		{Label: "MP-2 simultaneous-SYN", WiFi: wifi, Cell: att, Make: func(size units.ByteCount) RunConfig {
			return RunConfig{Transport: MP2, Controller: "coupled", Size: size, SimultaneousSYN: true}
		}},
	}
	return runMatrix("fig8", "Simultaneous vs delayed SYN (Fig 8)", rows, SimSYNSizes, opts)
}

// Backlog reproduces Figure 11: approximate infinite backlog via a
// single very large download (512 MB in the paper; Size overridable
// for quick runs) under coupled and uncoupled reno, 2 and 4 paths.
func Backlog(size units.ByteCount, opts CampaignOpts) *Matrix {
	if size == 0 {
		size = 512 * units.MB
	}
	wifi := pathmodel.ComcastHome()
	att := pathmodel.ATT()
	rows := []RowSpec{
		{Label: "MP-2 (coupled)", WiFi: wifi, Cell: att, Make: mp(MP2, "coupled")},
		{Label: "MP-2 (reno)", WiFi: wifi, Cell: att, Make: mp(MP2, "reno")},
		{Label: "MP-4 (coupled)", WiFi: wifi, Cell: att, Make: mp(MP4, "coupled")},
		{Label: "MP-4 (reno)", WiFi: wifi, Cell: att, Make: mp(MP4, "reno")},
	}
	return runMatrix("fig11", "Infinite backlog (Fig 11)", rows, []units.ByteCount{size}, opts)
}

// LatencyDistribution reproduces Figures 12 and 13 and Table 6: 2-path
// MPTCP (coupled) per carrier for 4-32 MB downloads, collecting
// per-packet RTT distributions by interface and out-of-order delay
// distributions at the receiver.
func LatencyDistribution(opts CampaignOpts) *Matrix {
	wifi := pathmodel.ComcastHome()
	var rows []RowSpec
	for _, carrier := range pathmodel.Carriers() {
		rows = append(rows, RowSpec{
			Label: "MP-" + carrier.Name, WiFi: wifi, Cell: carrier, Make: mp(MP2, "coupled"),
		})
	}
	return runMatrix("fig12", "Latency distributions (Fig 12/13, Table 6)", rows, LargeFlowSizes, opts)
}

// ShootoutSizes samples one small-flow and one bulk point — enough to
// see scheduler policy effects in both regimes without a full grid.
var ShootoutSizes = []units.ByteCount{256 * units.KB, 4 * units.MB}

// SchedulerShootout crosses the packet schedulers with congestion
// controllers over two modern path pairings the paper never measured:
// dual LTE (a second carrier in the WiFi slot, after "Is Two Greater
// Than One?") and LTE+5G-mmWave with blockage fades. Every cell
// reports download time, the traffic split, and per-path RTT/loss, so
// the matrix answers both "which scheduler wins on symmetric cellular
// paths?" and "can a scheduler exploit a fast fragile path?".
func SchedulerShootout(opts CampaignOpts) *Matrix {
	att := pathmodel.ATT()
	pairings := []struct {
		tag  string
		wifi pathmodel.Profile
	}{
		{"dual-lte", pathmodel.DualLTE()},
		{"lte+5g", pathmodel.MmWave5G()},
	}
	mk := func(ctrl, sched string) func(units.ByteCount) RunConfig {
		return func(size units.ByteCount) RunConfig {
			return RunConfig{Transport: MP2, Controller: ctrl, Scheduler: sched, Size: size}
		}
	}
	var rows []RowSpec
	for _, pr := range pairings {
		for _, sched := range []string{"minrtt", "roundrobin", "weighted", "redundant", "blest", "adaptive"} {
			for _, ctrl := range []string{"coupled", "olia"} {
				rows = append(rows, RowSpec{
					Label: pr.tag + " " + sched + " (" + ctrl + ")",
					WiFi:  pr.wifi, Cell: att,
					Make: mk(ctrl, sched),
				})
			}
		}
	}
	return runMatrix("shootout", "Scheduler x CC x profile shootout (dual-LTE and LTE+5G-mmWave pairings)",
		rows, ShootoutSizes, opts)
}

// Mobility extends the paper's §6 discussion into a measured campaign:
// a 16 MB download with a WiFi outage injected mid-transfer, sweeping
// the outage duration, for single-path TCP, full MPTCP, and MPTCP in
// backup mode. The "size" axis is reused to carry the outage duration
// in seconds.
func Mobility(opts CampaignOpts) *Matrix {
	wifi := pathmodel.ComcastHome()
	att := pathmodel.ATT()
	durations := []units.ByteCount{1, 3, 6} // seconds, carried on the size axis
	mk := func(t Transport, sched string) func(units.ByteCount) RunConfig {
		return func(d units.ByteCount) RunConfig {
			return RunConfig{
				Transport:       t,
				Scheduler:       sched,
				BackupCell:      sched == "backup",
				Size:            16 * units.MB,
				WiFiOutageStart: 1 * sim.Second,
				WiFiOutageEnd:   sim.Time(1+int64(d)) * sim.Second,
				Timeout:         20 * sim.Minute,
			}
		}
	}
	rows := []RowSpec{
		{Label: "SP-WiFi", WiFi: wifi, Cell: att, Make: mk(SPWiFi, "")},
		{Label: "MP-2 (lowest-rtt)", WiFi: wifi, Cell: att, Make: mk(MP2, "lowest-rtt")},
		{Label: "MP-2 (backup)", WiFi: wifi, Cell: att, Make: mk(MP2, "backup")},
	}
	return runMatrix("mobility", "WiFi outage sweep (beyond the paper; outage seconds on the size axis)",
		rows, durations, opts)
}
