package experiment

import (
	"testing"

	"mptcplab/internal/pathmodel"
	"mptcplab/internal/stats"
	"mptcplab/internal/trace"
	"mptcplab/internal/units"
)

// TestTraceCrossValidatesStackMetrics runs one MPTCP download while
// capturing tcpdump-style traces at both hosts, then checks that the
// trace analyzer's independently recomputed metrics agree with the
// protocol stack's own counters — validating the paper's measurement
// pipeline end to end.
func TestTraceCrossValidatesStackMetrics(t *testing.T) {
	tb := NewTestbed(TestbedConfig{
		WiFi: pathmodel.ComcastHome(), Cell: pathmodel.ATT(),
		SampleProfiles: true, WarmRadio: true, Seed: 77,
	})
	serverCap := &trace.MemoryCapture{}
	clientCap := &trace.MemoryCapture{}
	tb.Server.AddTap(serverCap.Tap())
	tb.Client.AddTap(clientCap.Tap())

	res := tb.Run(RunConfig{Transport: MP2, Size: 4 * units.MB})
	if !res.Completed {
		t.Fatal("download did not complete")
	}

	sa := serverCap.Analyze()

	// Per-path sender stats from the server-side trace must match the
	// endpoints' own counters.
	var traceWiFiData, traceWiFiRetrans, traceCellData, traceCellRetrans uint64
	var traceWiFiRTT, traceCellRTT []float64
	for _, fs := range sa.Flows() {
		if fs.Flow.Src.Port != ServerPort {
			continue // client->server direction
		}
		if fs.Flow.Dst.IP == tb.CellAddr.IP {
			traceCellData += fs.DataPkts
			traceCellRetrans += fs.RetransPkts
			traceCellRTT = append(traceCellRTT, fs.RTTms...)
		} else {
			traceWiFiData += fs.DataPkts
			traceWiFiRetrans += fs.RetransPkts
			traceWiFiRTT = append(traceWiFiRTT, fs.RTTms...)
		}
	}
	if traceWiFiData != res.WiFiDataPkts {
		t.Errorf("trace wifi data pkts %d, stack %d", traceWiFiData, res.WiFiDataPkts)
	}
	if traceCellData != res.CellDataPkts {
		t.Errorf("trace cell data pkts %d, stack %d", traceCellData, res.CellDataPkts)
	}
	if traceWiFiRetrans != res.WiFiRetransPkts {
		t.Errorf("trace wifi retrans %d, stack %d", traceWiFiRetrans, res.WiFiRetransPkts)
	}
	if traceCellRetrans != res.CellRetransPkts {
		t.Errorf("trace cell retrans %d, stack %d", traceCellRetrans, res.CellRetransPkts)
	}

	// RTT sample sets must agree closely (the stack samples cumulative
	// ACK coverage; the trace analyzer does the same arithmetic).
	cmpRTT := func(name string, traceRTT []float64, stackRTT []float64) {
		if len(traceRTT) == 0 || len(stackRTT) == 0 {
			t.Errorf("%s: empty RTT sample sets (trace %d, stack %d)", name, len(traceRTT), len(stackRTT))
			return
		}
		ts := stats.New()
		ts.AddAll(traceRTT)
		ss := stats.New()
		ss.AddAll(stackRTT)
		if d := ts.Mean() - ss.Mean(); d > 2 || d < -2 {
			t.Errorf("%s: trace mean RTT %.2fms vs stack %.2fms", name, ts.Mean(), ss.Mean())
		}
	}
	cmpRTT("wifi", traceWiFiRTT, res.WiFiRTTms)
	cmpRTT("cell", traceCellRTT, res.CellRTTms)

	// OFO reconstruction from the client-side trace should agree with
	// the reorder buffer's measurements in both count and magnitude.
	ca := clientCap.Analyze()
	traceOFO := stats.New()
	traceOFO.AddAll(ca.OFOms())
	stackOFO := stats.New()
	stackOFO.AddAll(res.OFOms)
	if traceOFO.N() == 0 || stackOFO.N() == 0 {
		t.Fatalf("empty OFO sets: trace %d stack %d", traceOFO.N(), stackOFO.N())
	}
	// Counts can differ slightly (subflow-level duplicates are
	// deduplicated differently), but the in-order fraction and the
	// delay distribution must line up.
	tIn := 1 - traceOFO.FractionAbove(0)
	sIn := 1 - stackOFO.FractionAbove(0)
	if d := tIn - sIn; d > 0.05 || d < -0.05 {
		t.Errorf("in-order fraction: trace %.3f vs stack %.3f", tIn, sIn)
	}
	if d := traceOFO.Quantile(0.9) - stackOFO.Quantile(0.9); d > 10 || d < -10 {
		t.Errorf("OFO p90: trace %.1fms vs stack %.1fms", traceOFO.Quantile(0.9), stackOFO.Quantile(0.9))
	}
}
