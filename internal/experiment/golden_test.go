package experiment

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestGoldenSmallFlowsExports pins the campaign exports byte-for-byte,
// for any worker count: parallelism schedules work, it must not change
// results, and the armed checker must observe without perturbing. The
// fixtures change only when protocol behavior intentionally changes:
// regenerate by writing these same campaign exports to testdata/.
func TestGoldenSmallFlowsExports(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full SmallFlows campaigns")
	}
	wantCSV, err := os.ReadFile(filepath.Join("testdata", "golden_smallflows_seed42_reps2.csv"))
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := os.ReadFile(filepath.Join("testdata", "golden_smallflows_seed42_reps2.json"))
	if err != nil {
		t.Fatal(err)
	}

	// SelfCheck arms the full invariant layer on every run. The exports
	// must still match the fixtures byte for byte — proof the checker
	// observes without perturbing — and no run may violate an invariant.
	for _, workers := range []int{1, 4} {
		m := SmallFlows(CampaignOpts{Reps: 2, Seed: 42, SampleProfiles: true, Workers: workers, SelfCheck: true})

		if m.TotalViolations != 0 {
			t.Errorf("workers=%d: %d protocol-invariant violations, first: %s",
				workers, m.TotalViolations, m.FirstViolation)
		}

		var csvBuf bytes.Buffer
		if err := WriteCSV(&csvBuf, m); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(csvBuf.Bytes(), wantCSV) {
			t.Errorf("workers=%d: CSV export differs from pre-pooling golden fixture", workers)
		}

		var jsonBuf bytes.Buffer
		if err := WriteJSON(&jsonBuf, m); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(jsonBuf.Bytes(), wantJSON) {
			t.Errorf("workers=%d: JSON export differs from pre-pooling golden fixture", workers)
		}
	}
}
