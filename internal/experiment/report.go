package experiment

import (
	"fmt"
	"io"
	"strings"

	"mptcplab/internal/stats"
	"mptcplab/internal/units"
	"mptcplab/internal/viz"
)

// WriteDownloadTimes renders a Matrix as the paper's download-time
// figures: one box-and-whisker summary per (configuration, size).
func WriteDownloadTimes(w io.Writer, m *Matrix) {
	fmt.Fprintf(w, "== %s: %s ==\n", m.ID, m.Title)
	fmt.Fprintf(w, "download time, seconds (min | Q1 median Q3 | max)\n")
	for _, size := range m.Sizes {
		fmt.Fprintf(w, "\n-- %v --\n", size)
		plot := &viz.BoxPlot{Unit: "s", Width: 56, Log: true}
		for _, row := range m.Rows {
			c := mustCell(m, row.Label, size)
			b := c.Times.BoxSummary()
			fmt.Fprintf(w, "  %-26s %s", row.Label, b)
			if c.Failures > 0 {
				fmt.Fprintf(w, "  (%d failed)", c.Failures)
			}
			fmt.Fprintln(w)
			if b.N > 0 {
				plot.Add(row.Label, b)
			}
		}
		fmt.Fprintln(w)
		plot.Render(w)
	}
}

// WriteCellShare renders the fraction of traffic carried by the
// cellular path (Figures 3, 5, 7, 10).
func WriteCellShare(w io.Writer, m *Matrix) {
	fmt.Fprintf(w, "== %s: cellular traffic share ==\n", m.ID)
	fmt.Fprintf(w, "%-26s", "config")
	for _, size := range m.Sizes {
		fmt.Fprintf(w, " %9v", size)
	}
	fmt.Fprintln(w)
	for _, row := range m.Rows {
		if !strings.HasPrefix(row.Label, "MP") {
			continue
		}
		fmt.Fprintf(w, "%-26s", row.Label)
		for _, size := range m.Sizes {
			c := mustCell(m, row.Label, size)
			fmt.Fprintf(w, " %8.1f%%", c.Share.Mean()*100)
		}
		fmt.Fprintln(w)
	}
}

// WritePathCharacteristics renders the per-path loss and RTT tables
// (Tables 2, 3, 4, 5) from the matrix's single-path rows.
func WritePathCharacteristics(w io.Writer, m *Matrix) {
	fmt.Fprintf(w, "== %s: path characteristics (single-path rows; mean±stderr) ==\n", m.ID)
	fmt.Fprintf(w, "%-26s %-10s", "config", "metric")
	for _, size := range m.Sizes {
		fmt.Fprintf(w, " %16v", size)
	}
	fmt.Fprintln(w)
	for _, row := range m.Rows {
		if !strings.HasPrefix(row.Label, "SP") {
			continue
		}
		fmt.Fprintf(w, "%-26s %-10s", row.Label, "loss(%)")
		for _, size := range m.Sizes {
			c := mustCell(m, row.Label, size)
			fmt.Fprintf(w, " %16s", lossStr(c, row.Label))
		}
		fmt.Fprintln(w)
		fmt.Fprintf(w, "%-26s %-10s", "", "RTT(ms)")
		for _, size := range m.Sizes {
			c := mustCell(m, row.Label, size)
			fmt.Fprintf(w, " %16s", rttStr(c, row.Label))
		}
		fmt.Fprintln(w)
	}
}

func lossStr(c *Cell, label string) string {
	s := c.WiFiLoss
	if strings.Contains(label, "SP-") && label != "SP-WiFi" {
		s = c.CellLoss
	}
	if s.Mean() < 0.03 {
		return "~"
	}
	return s.MeanStderr()
}

func rttStr(c *Cell, label string) string {
	s := c.WiFiRTT
	if strings.Contains(label, "SP-") && label != "SP-WiFi" {
		s = c.CellRTT
	}
	return s.MeanStderr()
}

// WriteRTTCCDF renders Figure 12: per-carrier, per-size CCDFs of
// packet RTTs over the cellular and WiFi paths of MPTCP connections,
// at logarithmically spaced thresholds, with a chart per size.
func WriteRTTCCDF(w io.Writer, m *Matrix) {
	fmt.Fprintf(w, "== fig12: packet RTT CCDF, P(RTT > t ms) ==\n")
	// Charts: one per size, series per (carrier, path).
	chartT := stats.LogSpace(10, 4000, 40)
	for _, size := range m.Sizes {
		chart := &viz.LineChart{
			Title:  fmt.Sprintf("-- %v: packet RTT CCDF (log x) --", size),
			XLabel: "RTT ms", YLabel: "P(RTT>x)",
			Width: 64, Height: 12, XLog: true,
		}
		for _, row := range m.Rows {
			c := mustCell(m, row.Label, size)
			if c.CellRTT.N() > 0 {
				chart.AddSeries(row.Label+"/cell", chartT, c.CellRTT.CCDF(chartT))
			}
		}
		if c := mustCell(m, m.Rows[0].Label, size); c.WiFiRTT.N() > 0 {
			chart.AddSeries("wifi", chartT, c.WiFiRTT.CCDF(chartT))
		}
		chart.Render(w)
		fmt.Fprintln(w)
	}
	thresholds := stats.LogSpace(10, 4000, 10)
	for _, row := range m.Rows {
		for _, size := range m.Sizes {
			c := mustCell(m, row.Label, size)
			for _, path := range []struct {
				name string
				s    *stats.Sample
			}{{"cell", c.CellRTT}, {"wifi", c.WiFiRTT}} {
				if path.s.N() == 0 {
					continue
				}
				fmt.Fprintf(w, "%-14s %-5s %8v n=%-7d", row.Label, path.name, size, path.s.N())
				for _, p := range path.s.CCDF(thresholds) {
					fmt.Fprintf(w, " %6.3f", p)
				}
				fmt.Fprintln(w)
			}
		}
	}
	fmt.Fprintf(w, "thresholds(ms):%v\n", fmtThresholds(thresholds))
}

// WriteOFOCCDF renders Figure 13: out-of-order delay CCDFs.
func WriteOFOCCDF(w io.Writer, m *Matrix) {
	fmt.Fprintf(w, "== fig13: out-of-order delay CCDF, P(delay > t ms) ==\n")
	chartT := append([]float64{0.5}, stats.LogSpace(1, 2000, 40)...)
	for _, size := range m.Sizes {
		chart := &viz.LineChart{
			Title:  fmt.Sprintf("-- %v: out-of-order delay CCDF (log x) --", size),
			XLabel: "delay ms", YLabel: "P(d>x)",
			Width: 64, Height: 12, XLog: true,
		}
		for _, row := range m.Rows {
			c := mustCell(m, row.Label, size)
			if c.OFO.N() > 0 {
				chart.AddSeries(row.Label, chartT, c.OFO.CCDF(chartT))
			}
		}
		chart.Render(w)
		fmt.Fprintln(w)
	}
	thresholds := append([]float64{0}, stats.LogSpace(1, 2000, 9)...)
	for _, row := range m.Rows {
		for _, size := range m.Sizes {
			c := mustCell(m, row.Label, size)
			if c.OFO.N() == 0 {
				continue
			}
			fmt.Fprintf(w, "%-14s %8v n=%-8d", row.Label, size, c.OFO.N())
			for _, p := range c.OFO.CCDF(thresholds) {
				fmt.Fprintf(w, " %6.3f", p)
			}
			fmt.Fprintln(w)
		}
	}
	fmt.Fprintf(w, "thresholds(ms):%v\n", fmtThresholds(thresholds))
}

// WriteMPTCPLatencyTable renders Table 6: per-carrier MPTCP RTT and
// out-of-order delay, mean ± stderr.
func WriteMPTCPLatencyTable(w io.Writer, m *Matrix) {
	fmt.Fprintf(w, "== table6: MPTCP RTT and OFO delay (mean±stderr, ms) ==\n")
	fmt.Fprintf(w, "%-14s %-8s", "config", "metric")
	for _, size := range m.Sizes {
		fmt.Fprintf(w, " %16v", size)
	}
	fmt.Fprintln(w)
	for _, row := range m.Rows {
		for _, metric := range []struct {
			name string
			get  func(*Cell) *stats.Sample
		}{
			{"RTT-cell", func(c *Cell) *stats.Sample { return c.CellRTT }},
			{"RTT-wifi", func(c *Cell) *stats.Sample { return c.WiFiRTT }},
			{"OFO", func(c *Cell) *stats.Sample { return c.OFO }},
		} {
			fmt.Fprintf(w, "%-14s %-8s", row.Label, metric.name)
			for _, size := range m.Sizes {
				fmt.Fprintf(w, " %16s", metric.get(mustCell(m, row.Label, size)).MeanStderr())
			}
			fmt.Fprintln(w)
		}
	}
}

func fmtThresholds(ts []float64) string {
	parts := make([]string, len(ts))
	for i, t := range ts {
		parts[i] = fmt.Sprintf("%.0f", t)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

func mustCell(m *Matrix, label string, size units.ByteCount) *Cell {
	c := m.Cell(label, size)
	if c == nil {
		panic(fmt.Sprintf("experiment: missing cell %q/%v in %s", label, size, m.ID))
	}
	return c
}
