package experiment

import (
	"fmt"
	"strings"
	"time"

	"mptcplab/internal/cc"
	"mptcplab/internal/chaos"
	"mptcplab/internal/check"
	"mptcplab/internal/mptcp"
	"mptcplab/internal/netem"
	"mptcplab/internal/seg"
	"mptcplab/internal/sim"
	"mptcplab/internal/tcp"
	"mptcplab/internal/trace"
	"mptcplab/internal/units"
	"mptcplab/internal/web"
)

// Transport selects the paper's connection configurations (§3.2).
type Transport int

// Transports.
const (
	SPWiFi Transport = iota // single-path TCP over WiFi
	SPCell                  // single-path TCP over the cellular device
	MP2                     // 2-path MPTCP (WiFi default + cellular)
	MP4                     // 4-path MPTCP (both client ifaces x both server ifaces)
)

// String names the transport as the paper's figure legends do.
func (t Transport) String() string {
	switch t {
	case SPWiFi:
		return "SP-WiFi"
	case SPCell:
		return "SP-Cell"
	case MP2:
		return "MP-2"
	case MP4:
		return "MP-4"
	default:
		return "?"
	}
}

// RunConfig describes one download measurement.
type RunConfig struct {
	Transport  Transport
	Controller string // "reno", "coupled", "olia" (default coupled)
	Scheduler  string // scheduler plugin spec (default minrtt)
	Size       units.ByteCount

	SimultaneousSYN bool
	Penalize        bool
	// BackupCell dials with the cellular path flagged as a backup
	// subflow (the MP_JOIN B bit), for use with the "backup" scheduler.
	BackupCell bool

	// SSThresh overrides the paper's 64 KB initial threshold when
	// nonzero; set Infinite to model the Linux default of infinity
	// (the §3.1 ablation).
	SSThresh         units.ByteCount
	InfiniteSSThresh bool
	// RcvBuf overrides the 8 MB receive buffer when nonzero.
	RcvBuf units.ByteCount

	// WiFiOutageStart/End schedule a WiFi connectivity outage (both
	// directions) — the §6 mobility scenario. Zero values disable it.
	WiFiOutageStart, WiFiOutageEnd sim.Time

	// Chaos applies a declarative fault schedule (flaps, ramps, fades,
	// handover storms) to the run and produces a resilience report in
	// RunResult.Resilience. Deterministic: the schedule runs on virtual
	// time and the same seed reproduces it exactly.
	Chaos chaos.Schedule

	// Deadline caps the run's host wall-clock time (0 = none). It is an
	// execution policy, not part of the modeled experiment: a tripped
	// deadline marks the run failed, and the knob never appears in
	// exports or replay identity.
	Deadline time.Duration

	// Timeout caps the simulated duration (default 30 virtual
	// minutes).
	Timeout sim.Time

	// SelfCheck arms the internal/check invariant layer for this run:
	// every segment at both hosts is verified online and the stacks are
	// probed periodically. The run's wire behavior is unchanged — the
	// checker draws no randomness and mutates nothing — so results stay
	// byte-identical; violations land in RunResult.Violations.
	SelfCheck bool
}

// RunResult aggregates one download's measurements.
type RunResult struct {
	Completed    bool
	DownloadTime sim.Time // first SYN to last data byte (§3.3)

	// Server-side per-path sender statistics.
	WiFiBytesSent, CellBytesSent     int64
	WiFiDataPkts, CellDataPkts       uint64
	WiFiRetransPkts, CellRetransPkts uint64

	// Per-packet RTT samples (milliseconds), taken at the server as
	// tcptrace would (§3.3), grouped by path.
	WiFiRTTms, CellRTTms []float64

	// Client-side out-of-order delay samples (milliseconds), one per
	// delivered packet (§3.3), MPTCP only.
	OFOms []float64

	// Per-path delivered (cumulatively ACKed) bytes from the MPTCP
	// subflow delivery-rate telemetry, MPTCP only. Execution-side
	// diagnostics for the scheduler lab; excluded from campaign
	// CSV/JSON exports, whose schema is pinned by golden fixtures.
	WiFiBytesAcked, CellBytesAcked int64

	// Subflows observed at the server (1 for SP, 2 or 4 for MPTCP).
	Subflows int
	// Penalties counts receive-buffer penalization events (ablation).
	Penalties uint64

	// Events is the number of simulator events the run processed — the
	// denominator of paperbench's events/sec throughput line. It is not
	// exported in campaign CSV/JSON (it is a property of the simulator,
	// not of the modeled network).
	Events uint64

	// Violations counts protocol-invariant breaches detected when the
	// run was executed with SelfCheck; FirstViolation describes the
	// earliest one. Like Events they are execution metadata, excluded
	// from campaign exports.
	Violations     int
	FirstViolation string

	// FailReason is set when the harness killed the run (watchdog
	// deadline or livelock detection): one line, no stack. A failed run
	// also reports Completed=false. Execution metadata, excluded from
	// campaign exports.
	FailReason string

	// Resilience is the chaos monitor's report for runs with a Chaos
	// schedule (nil otherwise). Excluded from campaign exports — the
	// chaos CLI renders it directly.
	Resilience *chaos.Report
}

// CellShare reports the fraction of data bytes the server sent over
// cellular paths (Figures 3, 5, 7, 10).
func (r *RunResult) CellShare() float64 {
	total := r.WiFiBytesSent + r.CellBytesSent
	if total == 0 {
		return 0
	}
	return float64(r.CellBytesSent) / float64(total)
}

// WiFiLossRate reports retransmitted/sent data packets on WiFi paths,
// the paper's per-subflow loss metric (§3.3).
func (r *RunResult) WiFiLossRate() float64 {
	if r.WiFiDataPkts == 0 {
		return 0
	}
	return float64(r.WiFiRetransPkts) / float64(r.WiFiDataPkts)
}

// CellLossRate reports the cellular-path loss rate.
func (r *RunResult) CellLossRate() float64 {
	if r.CellDataPkts == 0 {
		return 0
	}
	return float64(r.CellRetransPkts) / float64(r.CellDataPkts)
}

func (rc RunConfig) tcpConfig() tcp.Config {
	cfg := tcp.DefaultConfig()
	ctrl, err := cc.New(defaultStr(rc.Controller, "coupled"))
	if err != nil {
		panic(err)
	}
	cfg.Controller = ctrl
	if rc.InfiniteSSThresh {
		cfg.SSThresh = 0
	} else if rc.SSThresh > 0 {
		cfg.SSThresh = rc.SSThresh
	}
	if rc.RcvBuf > 0 {
		cfg.RcvBuf = rc.RcvBuf
	}
	return cfg
}

func (rc RunConfig) mptcpConfig() mptcp.Config {
	cfg := mptcp.DefaultConfig()
	cfg.TCP = rc.tcpConfig()
	cfg.Controller = cfg.TCP.Controller
	cfg.Scheduler = defaultStr(rc.Scheduler, "minrtt")
	cfg.SimultaneousSYN = rc.SimultaneousSYN
	cfg.Penalize = rc.Penalize
	cfg.RcvBuf = cfg.TCP.RcvBuf
	return cfg
}

func defaultStr(s, d string) string {
	if s == "" {
		return d
	}
	return s
}

// Run performs one download on the testbed and collects its metrics.
// The testbed must be fresh: connections are never reused across
// measurements (as in the paper).
//
// A Testbed and everything it owns (simulator, network, endpoints,
// RNG streams) is confined to a single goroutine and Run must not be
// called concurrently on one testbed — but runs on *distinct*
// testbeds share no mutable state and may proceed in parallel, which
// is the invariant the campaign worker pool in runMatrix builds on.
func (tb *Testbed) Run(rc RunConfig) RunResult {
	timeout := rc.Timeout
	if timeout == 0 {
		timeout = 30 * sim.Minute
	}
	if rc.WiFiOutageEnd > rc.WiFiOutageStart {
		tb.Sim.At(rc.WiFiOutageStart, "wifi-outage-start", func() {
			tb.WiFiUp.SetDown(true)
			tb.WiFiDown.SetDown(true)
		})
		tb.Sim.At(rc.WiFiOutageEnd, "wifi-outage-end", func() {
			tb.WiFiUp.SetDown(false)
			tb.WiFiDown.SetDown(false)
		})
	}
	if !rc.Chaos.Empty() {
		tb.mon = chaos.NewMonitor(tb.Sim, rc.Chaos)
		rc.Chaos.Apply(tb.Sim, chaos.Target{
			WiFi:     []*netem.Link{tb.WiFiUp, tb.WiFiDown},
			Cell:     []*netem.Link{tb.CellUp, tb.CellDown},
			Withdraw: tb.withdrawPath,
			Restore:  tb.restorePath,
			OnFault:  tb.mon.OnFault,
		})
	}
	chaos.ArmWatchdog(tb.Sim, rc.Deadline)
	var ck *check.Checker
	if rc.SelfCheck {
		ck = check.New(tb.Sim)
		trace.AttachObserver(tb.Client, ck)
		trace.AttachObserver(tb.Server, ck)
		for _, l := range []*netem.Link{tb.WiFiUp, tb.WiFiDown, tb.CellUp, tb.CellDown} {
			ck.ArmLink(l)
		}
		ck.ArmProbes(50 * sim.Millisecond)
	}
	switch rc.Transport {
	case SPWiFi, SPCell:
		return tb.runSP(rc, timeout, ck)
	default:
		return tb.runMP(rc, timeout, ck)
	}
}

// finishCheck folds the checker's findings into the result after a run.
func finishCheck(ck *check.Checker, res *RunResult) {
	if ck == nil {
		return
	}
	ck.RunProbes()
	res.Violations = ck.Count()
	if vs := ck.Violations(); len(vs) > 0 {
		res.FirstViolation = vs[0].String()
	}
}

// runSP performs a single-path TCP download.
func (tb *Testbed) runSP(rc RunConfig, timeout sim.Time, ck *check.Checker) RunResult {
	cfg := rc.tcpConfig()
	res := RunResult{Subflows: 1}

	var serverEPs []*tcp.Endpoint
	fs := &web.FileServer{SizeFor: func(int) int { return int(rc.Size) }}
	lis := tcp.Listen(tb.Server, tb.Net, ServerPort, cfg, tb.RNG.Child("srv"))
	lis.OnAccept = func(ep *tcp.Endpoint, syn *seg.Segment) bool {
		serverEPs = append(serverEPs, ep)
		tb.attachRTTCollector(ep, &res)
		if ck != nil {
			ck.WatchEndpoint("server", ep)
		}
		fs.ServeStream(web.TCPStream{EP: ep})
		return true
	}

	local := tb.WiFiAddr
	if rc.Transport == SPCell {
		local = tb.CellAddr
	}
	clientEP := tcp.NewEndpoint(tb.Client, tb.Net, local, tb.SrvAddr, cfg, tb.RNG.Child("cli"))
	if ck != nil {
		ck.WatchEndpoint("client", clientEP)
	}
	getter := web.NewGetter(web.TCPStream{EP: clientEP})
	tracked := tb.track(func() int64 { return getter.BytesReceived })

	var done sim.Time = -1
	getter.Get(int(rc.Size), func() {
		done = tb.Sim.Now()
		if tracked != nil {
			tracked.Done(true)
		}
		getter.Close()
		tb.Sim.Stop()
	})
	start := tb.Sim.Now()
	clientEP.Connect()

	tb.Sim.RunUntil(start + timeout)
	res.Events = tb.Sim.Processed()
	tb.finishChaos(&res, tracked)
	finishCheck(ck, &res)
	if done < 0 {
		return res
	}
	res.Completed = true
	res.DownloadTime = done - start
	for _, ep := range serverEPs {
		tb.accountSender(ep, &res)
	}
	return res
}

// runMP performs a 2- or 4-path MPTCP download.
func (tb *Testbed) runMP(rc RunConfig, timeout sim.Time, ck *check.Checker) RunResult {
	cfg := rc.mptcpConfig()
	res := RunResult{}

	var serverConn *mptcp.Conn
	fs := &web.FileServer{SizeFor: func(int) int { return int(rc.Size) }}
	srv := mptcp.NewServer(tb.Server, tb.Net, ServerPort, cfg, tb.RNG.Child("srv"))
	if rc.Transport == MP4 {
		srv.AdvertiseAddrs = []seg.Addr{tb.SrvAddr2}
	}
	srv.OnConn = func(c *mptcp.Conn) {
		serverConn = c
		c.OnSubflowUp = func(sf *mptcp.Subflow) { tb.attachRTTCollector(sf.EP, &res) }
		if ck != nil {
			ck.WatchConn("server", c)
		}
		fs.ServeStream(web.MPTCPStream{Conn: c})
	}

	opts := mptcp.DialOpts{
		LocalAddrs:     []seg.Addr{tb.WiFiAddr, tb.CellAddr},
		Labels:         []string{"wifi", "cell"},
		ServerAddr:     tb.SrvAddr,
		JoinAdvertised: rc.Transport == MP4,
		Config:         cfg,
	}
	if rc.BackupCell {
		opts.Backup = []bool{false, true}
	}
	start := tb.Sim.Now()
	conn := mptcp.Dial(tb.Net, tb.Client, opts, tb.RNG.Child("cli"))
	tb.clientConn = conn
	if ck != nil {
		ck.WatchConn("client", conn)
	}
	conn.OnOFOSample = func(d sim.Time, subflowID int) {
		res.OFOms = append(res.OFOms, d.Milliseconds())
	}
	getter := web.NewGetter(web.MPTCPStream{Conn: conn})
	tracked := tb.track(func() int64 { return getter.BytesReceived })
	if tb.mon != nil {
		// Per-path delivery-rate telemetry for the resilience report:
		// sample the sender-side subflow RateEstimators (zero until
		// the server accepts).
		tb.mon.PathRates = func() (wifi, cell float64) {
			if serverConn == nil {
				return 0, 0
			}
			for _, sf := range serverConn.Subflows() {
				if tb.IsCellIP(sf.EP.Remote) {
					cell += sf.DeliveryRate()
				} else {
					wifi += sf.DeliveryRate()
				}
			}
			return wifi, cell
		}
	}
	var done sim.Time = -1
	getter.Get(int(rc.Size), func() {
		done = tb.Sim.Now()
		if tracked != nil {
			tracked.Done(true)
		}
		getter.Close()
		tb.Sim.Stop()
	})

	tb.Sim.RunUntil(start + timeout)
	res.Events = tb.Sim.Processed()
	tb.finishChaos(&res, tracked)
	if ck != nil && serverConn != nil {
		ck.CheckTransfer("download", serverConn, conn, done >= 0)
	}
	finishCheck(ck, &res)
	if done < 0 {
		return res
	}
	res.Completed = true
	res.DownloadTime = done - start
	if serverConn != nil {
		res.Subflows = len(serverConn.Subflows())
		res.Penalties = serverConn.Penalties
		for _, sf := range serverConn.Subflows() {
			tb.accountSender(sf.EP, &res)
			if tb.IsCellIP(sf.EP.Remote) {
				res.CellBytesAcked += sf.AckedBytes()
			} else {
				res.WiFiBytesAcked += sf.AckedBytes()
			}
		}
	}
	return res
}

// attachRTTCollector records the server's per-packet RTT samples,
// classified by the client interface they travel to.
func (tb *Testbed) attachRTTCollector(ep *tcp.Endpoint, res *RunResult) {
	cell := tb.IsCellIP(ep.Remote)
	ep.OnRTTSample = func(rtt sim.Time) {
		ms := rtt.Milliseconds()
		if cell {
			res.CellRTTms = append(res.CellRTTms, ms)
		} else {
			res.WiFiRTTms = append(res.WiFiRTTms, ms)
		}
	}
}

// accountSender folds one server-side endpoint's sender stats into the
// result.
func (tb *Testbed) accountSender(ep *tcp.Endpoint, res *RunResult) {
	st := &ep.Stats
	if tb.IsCellIP(ep.Remote) {
		res.CellBytesSent += st.BytesSent - st.BytesRetrans
		res.CellDataPkts += st.DataPktsSent
		res.CellRetransPkts += st.DataPktsRetrans
	} else {
		res.WiFiBytesSent += st.BytesSent - st.BytesRetrans
		res.WiFiDataPkts += st.DataPktsSent
		res.WiFiRetransPkts += st.DataPktsRetrans
	}
}

// Describe renders the run configuration like the paper's legends.
func (rc RunConfig) Describe() string {
	name := rc.Transport.String()
	ctrl := defaultStr(rc.Controller, "coupled")
	if rc.Transport == MP2 || rc.Transport == MP4 {
		name = fmt.Sprintf("%s (%s)", name, ctrl)
	}
	return fmt.Sprintf("%s %v", name, rc.Size)
}

// track registers the download with the chaos monitor, when one is
// armed; returns nil otherwise.
func (tb *Testbed) track(progress func() int64) *chaos.Tracked {
	if tb.mon == nil {
		return nil
	}
	return tb.mon.Track("download", progress)
}

// finishChaos folds watchdog aborts and the resilience report into the
// result after the simulation loop returns. Only the error's first
// line is kept: failure reasons appear in deterministic artifacts.
func (tb *Testbed) finishChaos(res *RunResult, tracked *chaos.Tracked) {
	if err := tb.Sim.AbortErr(); err != nil {
		res.FailReason, _, _ = strings.Cut(err.Error(), "\n")
		if tracked != nil {
			tracked.Abort()
		}
	}
	if tb.mon != nil {
		res.Resilience = tb.mon.Finish()
	}
}

// onPath reports whether a client address rides the given chaos path.
func (tb *Testbed) onPath(a seg.Addr, p chaos.Path) bool {
	return p == chaos.Both || tb.IsCellIP(a) == (p == chaos.Cell)
}

// withdrawPath implements chaos.Target.Withdraw for handover storms:
// every live client address on the path is withdrawn from the MPTCP
// connection (REMOVE_ADDR + subflow teardown + reinjection). A no-op
// for single-path runs, which have no address agility to disrupt.
func (tb *Testbed) withdrawPath(p chaos.Path) {
	c := tb.clientConn
	if c == nil {
		return
	}
	seen := map[seg.Addr]bool{}
	for _, sf := range c.Subflows() {
		local := sf.EP.Local
		if seen[local] || !tb.onPath(local, p) || sf.EP.State() == tcp.StateClosed {
			continue
		}
		seen[local] = true
		c.RemoveLocalAddr(local)
	}
}

// restorePath implements chaos.Target.Restore: if the connection has
// no live subflow on the path, rejoin through it on a fresh port
// (reusing the withdrawn 4-tuple would race a stale server endpoint
// whose teardown RST was lost during the disruption).
func (tb *Testbed) restorePath(p chaos.Path) {
	c := tb.clientConn
	if c == nil || !c.Established() {
		return
	}
	if (p == chaos.WiFi || p == chaos.Both) && !tb.hasLive(c, false) {
		c.RejoinLocalAddr(tb.freshAddr(ClientWiFiIP))
	}
	if (p == chaos.Cell || p == chaos.Both) && !tb.hasLive(c, true) {
		c.RejoinLocalAddr(tb.freshAddr(ClientCellIP))
	}
}

// hasLive reports whether the connection still has a non-closed
// subflow on the given path.
func (tb *Testbed) hasLive(c *mptcp.Conn, cell bool) bool {
	for _, sf := range c.Subflows() {
		if tb.IsCellIP(sf.EP.Local) == cell && sf.EP.State() != tcp.StateClosed {
			return true
		}
	}
	return false
}

// freshAddr allocates a never-used client port on the interface.
func (tb *Testbed) freshAddr(ip string) seg.Addr {
	if tb.nextPort == 0 {
		tb.nextPort = 41000
	}
	tb.nextPort++
	return seg.MakeAddr(ip, tb.nextPort)
}
