package experiment

import (
	"context"
	"runtime"
	"strings"
	"time"

	"mptcplab/internal/pathmodel"
	"mptcplab/internal/stats"
	"mptcplab/internal/sweep"
	"mptcplab/internal/units"
)

// Cell aggregates repeated runs of one (configuration, size) pair.
type Cell struct {
	Config RunConfig

	Times    *stats.Sample // download times, seconds
	Share    *stats.Sample // cellular traffic share per run
	WiFiLoss *stats.Sample // per-run WiFi loss rate, percent
	CellLoss *stats.Sample // per-run cellular loss rate, percent
	WiFiRTT  *stats.Sample // pooled per-packet WiFi RTTs, ms
	CellRTT  *stats.Sample // pooled per-packet cellular RTTs, ms
	OFO      *stats.Sample // pooled out-of-order delays, ms

	Failures  int
	Penalties uint64
}

func newCell(rc RunConfig) *Cell {
	return &Cell{
		Config:   rc,
		Times:    stats.New(),
		Share:    stats.New(),
		WiFiLoss: stats.New(),
		CellLoss: stats.New(),
		WiFiRTT:  stats.New(),
		CellRTT:  stats.New(),
		OFO:      stats.New(),
	}
}

func (c *Cell) absorb(res RunResult) {
	if !res.Completed {
		c.Failures++
		return
	}
	c.Times.Add(res.DownloadTime.Seconds())
	c.Share.Add(res.CellShare())
	c.WiFiLoss.Add(res.WiFiLossRate() * 100)
	c.CellLoss.Add(res.CellLossRate() * 100)
	c.WiFiRTT.AddAll(res.WiFiRTTms)
	c.CellRTT.AddAll(res.CellRTTms)
	c.OFO.AddAll(res.OFOms)
	c.Penalties += res.Penalties
}

// RowSpec describes one figure row: a labeled configuration over a
// particular pair of access networks.
type RowSpec struct {
	Label string
	WiFi  pathmodel.Profile
	Cell  pathmodel.Profile
	// Make builds the run configuration for a given file size.
	Make func(size units.ByteCount) RunConfig
}

// Matrix is the generic result grid behind the paper's figures: one
// row per configuration, one column per file size.
type Matrix struct {
	ID    string
	Title string
	Sizes []units.ByteCount
	Rows  []MatrixRow

	// Campaign execution metadata, filled by runMatrix and excluded
	// from the CSV/JSON exports (which must stay a pure function of
	// the seed): host wall-clock duration of the campaign, the summed
	// busy time of all runs, and the worker count used. BusyTime /
	// WallTime approximates the parallel speedup.
	WallTime time.Duration
	BusyTime time.Duration
	Workers  int

	// TotalEvents sums the simulator events processed across all runs,
	// the numerator of paperbench's events/sec line. Like the timing
	// fields it is execution metadata, excluded from exports.
	TotalEvents uint64

	// TotalViolations sums protocol-invariant violations across all
	// runs of a SelfCheck campaign (zero otherwise — and zero is the
	// only acceptable value). FirstViolation describes the earliest
	// one seen. Execution metadata, excluded from exports.
	TotalViolations int
	FirstViolation  string

	// FailedRuns counts runs the harness contained — a panic inside the
	// run or a watchdog kill — each of which lands in its cell as a
	// failure instead of tearing down the campaign. FirstFailure is the
	// earliest reason, one line. Execution metadata, excluded from
	// exports.
	FailedRuns   int
	FirstFailure string

	// Cancelled reports the campaign stopped early via
	// CampaignOpts.Context; cells hold only the runs that finished.
	Cancelled bool
}

// MatrixRow is one configuration's cells across the sizes.
type MatrixRow struct {
	Label string
	Cells []*Cell // parallel to Matrix.Sizes
}

// Cell looks up a row/size cell; nil if absent.
func (m *Matrix) Cell(rowLabel string, size units.ByteCount) *Cell {
	for _, r := range m.Rows {
		if r.Label != rowLabel {
			continue
		}
		for i, s := range m.Sizes {
			if s == size {
				return r.Cells[i]
			}
		}
	}
	return nil
}

// Row looks up a row by label; nil if absent.
func (m *Matrix) Row(label string) *MatrixRow {
	for i := range m.Rows {
		if m.Rows[i].Label == label {
			return &m.Rows[i]
		}
	}
	return nil
}

// CampaignOpts tunes a measurement campaign.
type CampaignOpts struct {
	// Reps is the number of repetitions per cell (the paper performs
	// 20 per time period; benchmarks use fewer).
	Reps int
	// Seed drives all randomness; equal seeds reproduce campaigns
	// exactly.
	Seed int64
	// Workers is the number of goroutines executing runs concurrently:
	// 0 (the default) uses runtime.GOMAXPROCS(0), 1 forces the legacy
	// serial path. Aggregates are byte-identical for every worker
	// count: each run owns a private Testbed seeded purely from
	// (Seed, row, col, rep), and results are folded into cells in the
	// same deterministic order the serial runner uses.
	Workers int
	// SampleProfiles applies per-run network variation (§3.2's
	// temporal and spatial randomization). On by default in scenarios.
	SampleProfiles bool
	// Periods cycles repetitions through the paper's four times of
	// day (§3.2), applying diurnal load multipliers. Off by default:
	// the published EXPERIMENTS.md campaign uses Spread-only
	// variation; enable for the time-of-day study.
	Periods bool
	// SelfCheck arms the protocol-invariant checker on every run of the
	// campaign (see RunConfig.SelfCheck). Aggregates remain
	// byte-identical; violation counts land in Matrix.TotalViolations.
	SelfCheck bool
	// Progress, if set, is invoked after each completed run with the
	// count of runs finished so far and the campaign total.
	//
	// Concurrency contract: invocations are serialized behind an
	// internal mutex — the callback is never entered concurrently and
	// may mutate shared state without extra locking. Under a parallel
	// runner the completion order of individual runs is
	// nondeterministic; only done increasing by exactly one per call,
	// from 1 to total, is guaranteed.
	Progress func(done, total int)

	// Context, when non-nil, cancels the campaign: workers finish the
	// run they are on, stop claiming new jobs, and runMatrix returns
	// with Matrix.Cancelled set and only the completed runs absorbed —
	// a Ctrl-C mid-campaign still yields exportable partial results.
	Context context.Context

	// Intercept, when non-nil, wraps every run: instead of executing
	// directly, the runner calls Intercept(job, run) and uses its
	// return value as the run's result. The callback may invoke run()
	// (and must return exactly what it returned) or substitute a
	// previously stored result for the same job — runs are pure
	// functions of the job descriptor, so a content-addressed cache
	// (sweep.Key over CampaignJob, which carries the derived seed) is
	// sound by construction. Intercept is called from worker
	// goroutines and must be safe for concurrent use; panics inside it
	// are contained like any run panic.
	Intercept func(job CampaignJob, run func() RunResult) RunResult
}

// CampaignJob is the canonical descriptor of one run of a campaign —
// everything that determines the run's result, and nothing that
// doesn't (worker counts and deadlines are execution policy). The
// service layer hashes it (minus Seed, which keys separately) for the
// content-addressed result cache.
type CampaignJob struct {
	Experiment string          `json:"experiment"`
	Row        string          `json:"row"`
	Size       units.ByteCount `json:"size"`
	// Rep selects the repetition; with Periods set it also selects the
	// time-of-day profile (rep mod len(pathmodel.AllPeriods)).
	Rep       int   `json:"rep"`
	Periods   bool  `json:"periods,omitempty"`
	Sample    bool  `json:"sample,omitempty"`
	SelfCheck bool  `json:"selfcheck,omitempty"`
	Seed      int64 `json:"seed"`
}

func (o CampaignOpts) cancelled() bool {
	return o.Context != nil && o.Context.Err() != nil
}

func (o CampaignOpts) reps() int {
	if o.Reps <= 0 {
		return 5
	}
	return o.Reps
}

func (o CampaignOpts) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// matrixSalt is the historical shuffle salt of the campaign runner;
// it predates the engine and must never change (it is baked into the
// golden fixtures' execution order).
const matrixSalt = 0x5eed

// matrixJob identifies one run: indices into the row, size, and
// repetition axes.
type matrixJob struct {
	row, col, rep int
}

// runMatrix executes the full grid on the generic sweep engine.
// Mirroring §3.2, the order of all (row, size, repetition) runs is
// randomized before execution; each run gets an independent testbed
// seeded deterministically from the campaign seed via
// sweep.Seed(seed, row, col, rep).
//
// The engine supplies the worker pool, panic containment, and the
// absorb-in-order contract: workers never touch cells — results fold
// into cells in the fixed shuffled-list order the serial runner uses,
// so every aggregate (sample means, CCDFs, pooled RTT/OFO samples) is
// byte-identical for any worker count.
func runMatrix(id, title string, rows []RowSpec, sizes []units.ByteCount, opts CampaignOpts) *Matrix {
	m := &Matrix{ID: id, Title: title, Sizes: sizes}
	var jobs []matrixJob
	for ri := range rows {
		cells := make([]*Cell, len(sizes))
		for ci, size := range sizes {
			cells[ci] = newCell(rows[ri].Make(size))
			cells[ci].Config.SelfCheck = cells[ci].Config.SelfCheck || opts.SelfCheck
			for rep := 0; rep < opts.reps(); rep++ {
				jobs = append(jobs, matrixJob{ri, ci, rep})
			}
		}
		m.Rows = append(m.Rows, MatrixRow{Label: rows[ri].Label, Cells: cells})
	}

	// runJob executes one job on the worker's private testbed. Each
	// worker owns one *Testbed across its whole job stream: the first
	// job builds it, later jobs Reset it in place (same simulator and
	// pools, rebuilt topology). Runs are byte-identical either way, so
	// exports stay invariant across worker counts and across the
	// fresh-vs-reused boundary. The engine discards the testbed after
	// a contained panic — its mid-run state is arbitrary.
	runJob := func(worker **Testbed, k int) RunResult {
		j := jobs[k]
		row := rows[j.row]
		cell := m.Rows[j.row].Cells[j.col]
		do := func() RunResult {
			cfg := TestbedConfig{
				WiFi:              row.WiFi,
				Cell:              row.Cell,
				ServerSecondIface: cell.Config.Transport == MP4,
				SampleProfiles:    opts.SampleProfiles,
				UsePeriod:         opts.Periods,
				Period:            pathmodel.AllPeriods[j.rep%len(pathmodel.AllPeriods)],
				WarmRadio:         true,
				Seed:              sweep.Seed(opts.Seed, j.row, j.col, j.rep),
			}
			if *worker == nil {
				*worker = NewTestbed(cfg)
			} else {
				(*worker).Reset(cfg)
			}
			if testMatrixHook != nil {
				testMatrixHook(*worker)
			}
			return (*worker).Run(cell.Config)
		}
		if opts.Intercept == nil {
			return do()
		}
		return opts.Intercept(CampaignJob{
			Experiment: id,
			Row:        row.Label,
			Size:       sizes[j.col],
			Rep:        j.rep,
			Periods:    opts.Periods,
			Sample:     opts.SampleProfiles,
			SelfCheck:  opts.SelfCheck,
			Seed:       sweep.Seed(opts.Seed, j.row, j.col, j.rep),
		}, do)
	}

	st := sweep.Run(sweep.Opts{
		Seed:     opts.Seed,
		Salt:     matrixSalt,
		Workers:  opts.Workers,
		Progress: opts.Progress,
		Context:  opts.Context,
	}, len(jobs), runJob,
		func(k int, err error) RunResult {
			var res RunResult
			res.FailReason, _, _ = strings.Cut(err.Error(), "\n")
			return res
		},
		func(k int, res RunResult) {
			j := jobs[k]
			m.TotalEvents += res.Events
			m.absorbViolations(res)
			m.Rows[j.row].Cells[j.col].absorb(res)
		})

	m.Workers = st.Workers
	m.Cancelled = st.Cancelled
	m.BusyTime = st.BusyTime
	m.WallTime = st.WallTime
	return m
}

// absorbViolations accumulates a run's self-check findings and harness
// failures into the campaign metadata (absorbed in deterministic job
// order, like cells).
func (m *Matrix) absorbViolations(res RunResult) {
	m.TotalViolations += res.Violations
	if m.FirstViolation == "" {
		m.FirstViolation = res.FirstViolation
	}
	if res.FailReason != "" {
		m.FailedRuns++
		if m.FirstFailure == "" {
			m.FirstFailure = res.FailReason
		}
	}
}

// testMatrixHook, when non-nil, runs after each job's testbed is built
// and before its run starts — containment tests use it to sabotage one
// specific run (by testbed seed) and prove the campaign survives. It
// is written only before a campaign starts.
var testMatrixHook func(*Testbed)
