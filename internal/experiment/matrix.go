package experiment

import (
	"mptcplab/internal/pathmodel"
	"mptcplab/internal/sim"
	"mptcplab/internal/stats"
	"mptcplab/internal/units"
)

// Cell aggregates repeated runs of one (configuration, size) pair.
type Cell struct {
	Config RunConfig

	Times    *stats.Sample // download times, seconds
	Share    *stats.Sample // cellular traffic share per run
	WiFiLoss *stats.Sample // per-run WiFi loss rate, percent
	CellLoss *stats.Sample // per-run cellular loss rate, percent
	WiFiRTT  *stats.Sample // pooled per-packet WiFi RTTs, ms
	CellRTT  *stats.Sample // pooled per-packet cellular RTTs, ms
	OFO      *stats.Sample // pooled out-of-order delays, ms

	Failures  int
	Penalties uint64
}

func newCell(rc RunConfig) *Cell {
	return &Cell{
		Config:   rc,
		Times:    stats.New(),
		Share:    stats.New(),
		WiFiLoss: stats.New(),
		CellLoss: stats.New(),
		WiFiRTT:  stats.New(),
		CellRTT:  stats.New(),
		OFO:      stats.New(),
	}
}

func (c *Cell) absorb(res RunResult) {
	if !res.Completed {
		c.Failures++
		return
	}
	c.Times.Add(res.DownloadTime.Seconds())
	c.Share.Add(res.CellShare())
	c.WiFiLoss.Add(res.WiFiLossRate() * 100)
	c.CellLoss.Add(res.CellLossRate() * 100)
	c.WiFiRTT.AddAll(res.WiFiRTTms)
	c.CellRTT.AddAll(res.CellRTTms)
	c.OFO.AddAll(res.OFOms)
	c.Penalties += res.Penalties
}

// RowSpec describes one figure row: a labeled configuration over a
// particular pair of access networks.
type RowSpec struct {
	Label string
	WiFi  pathmodel.Profile
	Cell  pathmodel.Profile
	// Make builds the run configuration for a given file size.
	Make func(size units.ByteCount) RunConfig
}

// Matrix is the generic result grid behind the paper's figures: one
// row per configuration, one column per file size.
type Matrix struct {
	ID    string
	Title string
	Sizes []units.ByteCount
	Rows  []MatrixRow
}

// MatrixRow is one configuration's cells across the sizes.
type MatrixRow struct {
	Label string
	Cells []*Cell // parallel to Matrix.Sizes
}

// Cell looks up a row/size cell; nil if absent.
func (m *Matrix) Cell(rowLabel string, size units.ByteCount) *Cell {
	for _, r := range m.Rows {
		if r.Label != rowLabel {
			continue
		}
		for i, s := range m.Sizes {
			if s == size {
				return r.Cells[i]
			}
		}
	}
	return nil
}

// Row looks up a row by label; nil if absent.
func (m *Matrix) Row(label string) *MatrixRow {
	for i := range m.Rows {
		if m.Rows[i].Label == label {
			return &m.Rows[i]
		}
	}
	return nil
}

// CampaignOpts tunes a measurement campaign.
type CampaignOpts struct {
	// Reps is the number of repetitions per cell (the paper performs
	// 20 per time period; benchmarks use fewer).
	Reps int
	// Seed drives all randomness; equal seeds reproduce campaigns
	// exactly.
	Seed int64
	// SampleProfiles applies per-run network variation (§3.2's
	// temporal and spatial randomization). On by default in scenarios.
	SampleProfiles bool
	// Periods cycles repetitions through the paper's four times of
	// day (§3.2), applying diurnal load multipliers. Off by default:
	// the published EXPERIMENTS.md campaign uses Spread-only
	// variation; enable for the time-of-day study.
	Periods bool
	// Progress, if set, is invoked after each completed run.
	Progress func(done, total int)
}

func (o CampaignOpts) reps() int {
	if o.Reps <= 0 {
		return 5
	}
	return o.Reps
}

// runMatrix executes the full grid. Mirroring §3.2, the order of all
// (row, size, repetition) runs is randomized before execution; each
// run gets an independent testbed seeded deterministically from the
// campaign seed.
func runMatrix(id, title string, rows []RowSpec, sizes []units.ByteCount, opts CampaignOpts) *Matrix {
	m := &Matrix{ID: id, Title: title, Sizes: sizes}
	type job struct {
		row, col, rep int
	}
	var jobs []job
	for ri := range rows {
		cells := make([]*Cell, len(sizes))
		for ci, size := range sizes {
			cells[ci] = newCell(rows[ri].Make(size))
			for rep := 0; rep < opts.reps(); rep++ {
				jobs = append(jobs, job{ri, ci, rep})
			}
		}
		m.Rows = append(m.Rows, MatrixRow{Label: rows[ri].Label, Cells: cells})
	}

	order := sim.NewRNG(opts.Seed ^ 0x5eed)
	order.Shuffle(len(jobs), func(i, j int) { jobs[i], jobs[j] = jobs[j], jobs[i] })

	for k, j := range jobs {
		row := rows[j.row]
		cell := m.Rows[j.row].Cells[j.col]
		seed := opts.Seed + int64(j.row)*1_000_003 + int64(j.col)*7919 + int64(j.rep)*104729
		tb := NewTestbed(TestbedConfig{
			WiFi:              row.WiFi,
			Cell:              row.Cell,
			ServerSecondIface: cell.Config.Transport == MP4,
			SampleProfiles:    opts.SampleProfiles,
			UsePeriod:         opts.Periods,
			Period:            pathmodel.AllPeriods[j.rep%len(pathmodel.AllPeriods)],
			WarmRadio:         true,
			Seed:              seed,
		})
		cell.absorb(tb.Run(cell.Config))
		if opts.Progress != nil {
			opts.Progress(k+1, len(jobs))
		}
	}
	return m
}
