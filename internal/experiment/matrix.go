package experiment

import (
	"context"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mptcplab/internal/chaos"
	"mptcplab/internal/pathmodel"
	"mptcplab/internal/sim"
	"mptcplab/internal/stats"
	"mptcplab/internal/units"
)

// Cell aggregates repeated runs of one (configuration, size) pair.
type Cell struct {
	Config RunConfig

	Times    *stats.Sample // download times, seconds
	Share    *stats.Sample // cellular traffic share per run
	WiFiLoss *stats.Sample // per-run WiFi loss rate, percent
	CellLoss *stats.Sample // per-run cellular loss rate, percent
	WiFiRTT  *stats.Sample // pooled per-packet WiFi RTTs, ms
	CellRTT  *stats.Sample // pooled per-packet cellular RTTs, ms
	OFO      *stats.Sample // pooled out-of-order delays, ms

	Failures  int
	Penalties uint64
}

func newCell(rc RunConfig) *Cell {
	return &Cell{
		Config:   rc,
		Times:    stats.New(),
		Share:    stats.New(),
		WiFiLoss: stats.New(),
		CellLoss: stats.New(),
		WiFiRTT:  stats.New(),
		CellRTT:  stats.New(),
		OFO:      stats.New(),
	}
}

func (c *Cell) absorb(res RunResult) {
	if !res.Completed {
		c.Failures++
		return
	}
	c.Times.Add(res.DownloadTime.Seconds())
	c.Share.Add(res.CellShare())
	c.WiFiLoss.Add(res.WiFiLossRate() * 100)
	c.CellLoss.Add(res.CellLossRate() * 100)
	c.WiFiRTT.AddAll(res.WiFiRTTms)
	c.CellRTT.AddAll(res.CellRTTms)
	c.OFO.AddAll(res.OFOms)
	c.Penalties += res.Penalties
}

// RowSpec describes one figure row: a labeled configuration over a
// particular pair of access networks.
type RowSpec struct {
	Label string
	WiFi  pathmodel.Profile
	Cell  pathmodel.Profile
	// Make builds the run configuration for a given file size.
	Make func(size units.ByteCount) RunConfig
}

// Matrix is the generic result grid behind the paper's figures: one
// row per configuration, one column per file size.
type Matrix struct {
	ID    string
	Title string
	Sizes []units.ByteCount
	Rows  []MatrixRow

	// Campaign execution metadata, filled by runMatrix and excluded
	// from the CSV/JSON exports (which must stay a pure function of
	// the seed): host wall-clock duration of the campaign, the summed
	// busy time of all runs, and the worker count used. BusyTime /
	// WallTime approximates the parallel speedup.
	WallTime time.Duration
	BusyTime time.Duration
	Workers  int

	// TotalEvents sums the simulator events processed across all runs,
	// the numerator of paperbench's events/sec line. Like the timing
	// fields it is execution metadata, excluded from exports.
	TotalEvents uint64

	// TotalViolations sums protocol-invariant violations across all
	// runs of a SelfCheck campaign (zero otherwise — and zero is the
	// only acceptable value). FirstViolation describes the earliest
	// one seen. Execution metadata, excluded from exports.
	TotalViolations int
	FirstViolation  string

	// FailedRuns counts runs the harness contained — a panic inside the
	// run or a watchdog kill — each of which lands in its cell as a
	// failure instead of tearing down the campaign. FirstFailure is the
	// earliest reason, one line. Execution metadata, excluded from
	// exports.
	FailedRuns   int
	FirstFailure string

	// Cancelled reports the campaign stopped early via
	// CampaignOpts.Context; cells hold only the runs that finished.
	Cancelled bool
}

// MatrixRow is one configuration's cells across the sizes.
type MatrixRow struct {
	Label string
	Cells []*Cell // parallel to Matrix.Sizes
}

// Cell looks up a row/size cell; nil if absent.
func (m *Matrix) Cell(rowLabel string, size units.ByteCount) *Cell {
	for _, r := range m.Rows {
		if r.Label != rowLabel {
			continue
		}
		for i, s := range m.Sizes {
			if s == size {
				return r.Cells[i]
			}
		}
	}
	return nil
}

// Row looks up a row by label; nil if absent.
func (m *Matrix) Row(label string) *MatrixRow {
	for i := range m.Rows {
		if m.Rows[i].Label == label {
			return &m.Rows[i]
		}
	}
	return nil
}

// CampaignOpts tunes a measurement campaign.
type CampaignOpts struct {
	// Reps is the number of repetitions per cell (the paper performs
	// 20 per time period; benchmarks use fewer).
	Reps int
	// Seed drives all randomness; equal seeds reproduce campaigns
	// exactly.
	Seed int64
	// Workers is the number of goroutines executing runs concurrently:
	// 0 (the default) uses runtime.GOMAXPROCS(0), 1 forces the legacy
	// serial path. Aggregates are byte-identical for every worker
	// count: each run owns a private Testbed seeded purely from
	// (Seed, row, col, rep), and results are folded into cells in the
	// same deterministic order the serial runner uses.
	Workers int
	// SampleProfiles applies per-run network variation (§3.2's
	// temporal and spatial randomization). On by default in scenarios.
	SampleProfiles bool
	// Periods cycles repetitions through the paper's four times of
	// day (§3.2), applying diurnal load multipliers. Off by default:
	// the published EXPERIMENTS.md campaign uses Spread-only
	// variation; enable for the time-of-day study.
	Periods bool
	// SelfCheck arms the protocol-invariant checker on every run of the
	// campaign (see RunConfig.SelfCheck). Aggregates remain
	// byte-identical; violation counts land in Matrix.TotalViolations.
	SelfCheck bool
	// Progress, if set, is invoked after each completed run with the
	// count of runs finished so far and the campaign total.
	//
	// Concurrency contract: invocations are serialized behind an
	// internal mutex — the callback is never entered concurrently and
	// may mutate shared state without extra locking. Under a parallel
	// runner the completion order of individual runs is
	// nondeterministic; only done increasing by exactly one per call,
	// from 1 to total, is guaranteed.
	Progress func(done, total int)

	// Context, when non-nil, cancels the campaign: workers finish the
	// run they are on, stop claiming new jobs, and runMatrix returns
	// with Matrix.Cancelled set and only the completed runs absorbed —
	// a Ctrl-C mid-campaign still yields exportable partial results.
	Context context.Context
}

func (o CampaignOpts) cancelled() bool {
	return o.Context != nil && o.Context.Err() != nil
}

func (o CampaignOpts) reps() int {
	if o.Reps <= 0 {
		return 5
	}
	return o.Reps
}

func (o CampaignOpts) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// jobSeed derives the testbed seed for one (row, col, rep) run of a
// campaign. The indices are packed into disjoint 21-bit fields and
// passed through the sim.Splitmix64 bijection, so every job of every
// grid up to 2^21 rows x columns x repetitions gets a distinct seed.
// (The previous additive mix, Seed + row*1_000_003 + col*7919 +
// rep*104729, collided whenever two index combinations hit the same
// linear sum — e.g. 7919 reps ≡ one column step.)
func jobSeed(campaign int64, row, col, rep int) int64 {
	packed := uint64(row)<<42 | uint64(col)<<21 | uint64(rep)
	return int64(sim.Splitmix64(sim.Splitmix64(uint64(campaign)) ^ packed))
}

// matrixJob identifies one run: indices into the row, size, and
// repetition axes. Its position in the shuffled job list is the job id
// results are collected under.
type matrixJob struct {
	row, col, rep int
}

// runMatrix executes the full grid. Mirroring §3.2, the order of all
// (row, size, repetition) runs is randomized before execution; each
// run gets an independent testbed seeded deterministically from the
// campaign seed via jobSeed.
//
// With opts.Workers != 1 the shuffled job list is fanned out to a
// goroutine pool. Workers never touch cells: each run's RunResult is
// collected into a slice indexed by job id, and after the pool drains
// the results are absorbed into cells in shuffled-list order — the
// exact order the serial runner absorbs in — so every aggregate
// (sample means, CCDFs, pooled RTT/OFO samples) is byte-identical to
// the serial runner's for any worker count.
func runMatrix(id, title string, rows []RowSpec, sizes []units.ByteCount, opts CampaignOpts) *Matrix {
	m := &Matrix{ID: id, Title: title, Sizes: sizes, Workers: opts.workers()}
	var jobs []matrixJob
	for ri := range rows {
		cells := make([]*Cell, len(sizes))
		for ci, size := range sizes {
			cells[ci] = newCell(rows[ri].Make(size))
			cells[ci].Config.SelfCheck = cells[ci].Config.SelfCheck || opts.SelfCheck
			for rep := 0; rep < opts.reps(); rep++ {
				jobs = append(jobs, matrixJob{ri, ci, rep})
			}
		}
		m.Rows = append(m.Rows, MatrixRow{Label: rows[ri].Label, Cells: cells})
	}

	order := sim.NewRNG(opts.Seed ^ 0x5eed)
	order.Shuffle(len(jobs), func(i, j int) { jobs[i], jobs[j] = jobs[j], jobs[i] })

	start := time.Now()
	var busy atomic.Int64

	// runJob executes one job on the worker's private testbed, inside a
	// containment boundary: a panic anywhere in the run becomes a
	// failed-run result (one-line reason, no stack) instead of killing
	// the worker and tearing down the campaign. It only reads the
	// (frozen) rows, cells, and jobs slices, so any number of runJob
	// calls may proceed concurrently as long as each has its own
	// testbed slot.
	//
	// Each worker owns one *Testbed across its whole job stream: the
	// first job builds it, later jobs Reset it in place (same simulator
	// and pools, rebuilt topology). Runs are byte-identical either way,
	// so exports stay invariant across worker counts and across the
	// fresh-vs-reused boundary. After a contained panic the testbed is
	// discarded — its mid-run state is arbitrary — and the next job
	// starts fresh.
	runJob := func(worker **Testbed, j matrixJob) RunResult {
		t0 := time.Now()
		row := rows[j.row]
		cell := m.Rows[j.row].Cells[j.col]
		var res RunResult
		if err := chaos.Contain(func() {
			cfg := TestbedConfig{
				WiFi:              row.WiFi,
				Cell:              row.Cell,
				ServerSecondIface: cell.Config.Transport == MP4,
				SampleProfiles:    opts.SampleProfiles,
				UsePeriod:         opts.Periods,
				Period:            pathmodel.AllPeriods[j.rep%len(pathmodel.AllPeriods)],
				WarmRadio:         true,
				Seed:              jobSeed(opts.Seed, j.row, j.col, j.rep),
			}
			if *worker == nil {
				*worker = NewTestbed(cfg)
			} else {
				(*worker).Reset(cfg)
			}
			if testMatrixHook != nil {
				testMatrixHook(*worker)
			}
			res = (*worker).Run(cell.Config)
		}); err != nil {
			*worker = nil
			res = RunResult{}
			res.FailReason, _, _ = strings.Cut(err.Error(), "\n")
		}
		busy.Add(int64(time.Since(t0)))
		return res
	}

	if m.Workers <= 1 {
		// Legacy serial path: absorb each result as it lands, reusing
		// one testbed across the whole campaign.
		var tb *Testbed
		for k, j := range jobs {
			if opts.cancelled() {
				break
			}
			res := runJob(&tb, j)
			m.TotalEvents += res.Events
			m.absorbViolations(res)
			m.Rows[j.row].Cells[j.col].absorb(res)
			if opts.Progress != nil {
				opts.Progress(k+1, len(jobs))
			}
		}
	} else {
		results := make([]RunResult, len(jobs))
		executed := make([]bool, len(jobs))
		var next atomic.Int64
		next.Store(-1)
		var (
			wg         sync.WaitGroup
			progressMu sync.Mutex
			done       int
		)
		for w := 0; w < m.Workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				var tb *Testbed
				for {
					if opts.cancelled() {
						return
					}
					k := int(next.Add(1))
					if k >= len(jobs) {
						return
					}
					results[k] = runJob(&tb, jobs[k])
					executed[k] = true
					if opts.Progress != nil {
						progressMu.Lock()
						done++
						opts.Progress(done, len(jobs))
						progressMu.Unlock()
					}
				}
			}()
		}
		wg.Wait()
		// Absorb in fixed job order, skipping runs cancellation left
		// unexecuted — partial campaigns stay deterministic prefixes of
		// what the absorbed jobs would have produced.
		for k, j := range jobs {
			if !executed[k] {
				continue
			}
			m.TotalEvents += results[k].Events
			m.absorbViolations(results[k])
			m.Rows[j.row].Cells[j.col].absorb(results[k])
		}
	}
	m.Cancelled = opts.cancelled()

	m.BusyTime = time.Duration(busy.Load())
	m.WallTime = time.Since(start)
	return m
}

// absorbViolations accumulates a run's self-check findings and harness
// failures into the campaign metadata (absorbed in deterministic job
// order, like cells).
func (m *Matrix) absorbViolations(res RunResult) {
	m.TotalViolations += res.Violations
	if m.FirstViolation == "" {
		m.FirstViolation = res.FirstViolation
	}
	if res.FailReason != "" {
		m.FailedRuns++
		if m.FirstFailure == "" {
			m.FirstFailure = res.FailReason
		}
	}
}

// testMatrixHook, when non-nil, runs after each job's testbed is built
// and before its run starts — containment tests use it to sabotage one
// specific run (by testbed seed) and prove the campaign survives. It
// is written only before a campaign starts.
var testMatrixHook func(*Testbed)
