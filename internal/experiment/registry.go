package experiment

import (
	"fmt"
	"sort"
	"strings"

	"mptcplab/internal/units"
)

// The campaign registry names every measurement campaign the repo can
// run, so callers that receive a campaign name at runtime — the
// mptcpd service layer, paperbench's -experiment flag — resolve it
// through one table instead of each hard-coding the scenario list.
// Names are the paper's figure identifiers; aliases map the companion
// figure/table numbers onto the campaign that produces them.
var campaignMakers = map[string]func(CampaignOpts) *Matrix{
	"fig2": Baseline,
	"fig4": SmallFlows,
	"fig6": CoffeeShop,
	"fig8": SimultaneousSYN,
	"fig9": LargeFlows,
	"fig11": func(opts CampaignOpts) *Matrix {
		// The infinite-backlog study is far heavier per run than the
		// rest of the matrix; cap repetitions like paperbench does.
		if opts.reps() > 3 {
			opts.Reps = 3
		}
		return Backlog(512*units.MB, opts)
	},
	"fig12":    LatencyDistribution,
	"shootout": SchedulerShootout,
	"mobility": Mobility,
}

var campaignAliases = map[string]string{
	"fig3": "fig2", "table2": "fig2",
	"fig5": "fig4", "table3": "fig4",
	"fig7": "fig6", "table4": "fig6",
	"fig10": "fig9", "table5": "fig9",
	"fig13": "fig12", "table6": "fig12",
	"sched": "shootout",
}

// CampaignNames lists the canonical campaign names, sorted.
func CampaignNames() []string {
	names := make([]string, 0, len(campaignMakers))
	for name := range campaignMakers {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// ResolveCampaign canonicalizes a campaign name or alias; empty
// string if unknown.
func ResolveCampaign(name string) string {
	name = strings.ToLower(strings.TrimSpace(name))
	if canon, ok := campaignAliases[name]; ok {
		return canon
	}
	if _, ok := campaignMakers[name]; ok {
		return name
	}
	return ""
}

// NewCampaign runs the named campaign. The name is resolved through
// the alias table, so "table3" runs the fig4/fig5 small-flows matrix.
func NewCampaign(name string, opts CampaignOpts) (*Matrix, error) {
	canon := ResolveCampaign(name)
	if canon == "" {
		return nil, fmt.Errorf("experiment: unknown campaign %q (have %s)",
			name, strings.Join(CampaignNames(), ", "))
	}
	return campaignMakers[canon](opts), nil
}
