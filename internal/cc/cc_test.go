package cc

import (
	"math"
	"testing"
	"testing/quick"
)

// fakeFlow is a controllable cc.Flow for unit tests.
type fakeFlow struct {
	cwnd        float64
	srtt        float64
	established bool
	l1, l2      int64
}

func (f *fakeFlow) Cwnd() float64                { return f.cwnd }
func (f *fakeFlow) SRTT() float64                { return f.srtt }
func (f *fakeFlow) Established() bool            { return f.established }
func (f *fakeFlow) AckedSinceLoss() int64        { return f.l1 }
func (f *fakeFlow) AckedPrevLossInterval() int64 { return f.l2 }

func flows(fs ...*fakeFlow) []Flow {
	out := make([]Flow, len(fs))
	for i, f := range fs {
		out[i] = f
	}
	return out
}

func TestNew(t *testing.T) {
	for _, name := range Names() {
		c, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if c.Name() != name {
			t.Errorf("New(%q).Name() = %q", name, c.Name())
		}
	}
	if c, err := New("lia"); err != nil || c.Name() != "coupled" {
		t.Error("alias lia not accepted")
	}
	if _, err := New("cubic"); err == nil {
		t.Error("unknown controller accepted")
	}
}

func TestRenoIncreaseIsOnePacketPerRTT(t *testing.T) {
	f := &fakeFlow{cwnd: 10, srtt: 0.05, established: true}
	fs := flows(f)
	// w ACKs of one packet each should add ~1 packet total.
	var total float64
	for i := 0; i < 10; i++ {
		total += (Reno{}).Increase(fs, 0, 1)
	}
	if math.Abs(total-1.0) > 1e-9 {
		t.Errorf("reno per-RTT increase = %f, want 1", total)
	}
}

func TestAllControllersHalveOnLoss(t *testing.T) {
	for _, name := range Names() {
		c, _ := New(name)
		f := &fakeFlow{cwnd: 20, srtt: 0.05, established: true}
		if got := c.OnLoss(flows(f), 0); got != 10 {
			t.Errorf("%s.OnLoss(20) = %f, want 10", name, got)
		}
		f.cwnd = 1.2
		if got := c.OnLoss(flows(f), 0); got != 1 {
			t.Errorf("%s.OnLoss(1.2) = %f, want floor 1", name, got)
		}
	}
}

func TestCoupledReducesToRenoForSingleFlow(t *testing.T) {
	f := &fakeFlow{cwnd: 17, srtt: 0.08, established: true}
	fs := flows(f)
	r := (Reno{}).Increase(fs, 0, 1)
	c := (Coupled{}).Increase(fs, 0, 1)
	o := (OLIA{}).Increase(fs, 0, 1)
	if math.Abs(r-c) > 1e-12 {
		t.Errorf("coupled single-flow %g != reno %g", c, r)
	}
	if math.Abs(r-o) > 1e-12 {
		t.Errorf("olia single-flow %g != reno %g", o, r)
	}
}

func TestCoupledNeverExceedsReno(t *testing.T) {
	// RFC 6356: the min() caps any flow's increase at the uncoupled
	// TCP increase.
	f := func(w1, w2 uint16, r1, r2 uint8) bool {
		a := &fakeFlow{cwnd: 1 + float64(w1%500), srtt: 0.01 + float64(r1)/100, established: true}
		b := &fakeFlow{cwnd: 1 + float64(w2%500), srtt: 0.01 + float64(r2)/100, established: true}
		fs := flows(a, b)
		for i := range fs {
			inc := (Coupled{}).Increase(fs, i, 1)
			reno := (Reno{}).Increase(fs, i, 1)
			if inc > reno+1e-12 {
				return false
			}
			if inc < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestCoupledAggregateMatchesBestPath(t *testing.T) {
	// With equal RTTs, coupled's aggregate increase per round trip
	// should approximate one packet (a single TCP on the best path).
	a := &fakeFlow{cwnd: 30, srtt: 0.05, established: true}
	b := &fakeFlow{cwnd: 30, srtt: 0.05, established: true}
	fs := flows(a, b)
	var total float64
	// One RTT: each flow receives cwnd ACKs.
	for i := 0; i < 30; i++ {
		total += (Coupled{}).Increase(fs, 0, 1)
		total += (Coupled{}).Increase(fs, 1, 1)
	}
	if total < 0.4 || total > 1.2 {
		t.Errorf("coupled aggregate increase per RTT = %f, want ≈1 (single-TCP equivalent)", total)
	}
}

func TestCoupledIgnoresUnestablishedFlows(t *testing.T) {
	a := &fakeFlow{cwnd: 10, srtt: 0.05, established: true}
	b := &fakeFlow{cwnd: 10, srtt: 0.05, established: false} // handshaking
	inc := (Coupled{}).Increase(flows(a, b), 0, 1)
	reno := (Reno{}).Increase(flows(a), 0, 1)
	if math.Abs(inc-reno) > 1e-12 {
		t.Errorf("increase %g with dead sibling, want reno %g", inc, reno)
	}
}

func TestOLIASingleFlowMatchesReno(t *testing.T) {
	f := &fakeFlow{cwnd: 25, srtt: 0.1, established: true, l1: 1 << 20}
	got := (OLIA{}).Increase(flows(f), 0, 1)
	want := 1.0 / 25
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("olia single flow = %g, want %g", got, want)
	}
}

func TestOLIAAlphaShiftsTowardBestUnderusedPath(t *testing.T) {
	// Path a: excellent recent goodput (large l) but small window.
	// Path b: max window. Alpha must be positive for a, negative for b.
	a := &fakeFlow{cwnd: 5, srtt: 0.03, established: true, l1: 10 << 20}
	b := &fakeFlow{cwnd: 50, srtt: 0.03, established: true, l1: 1 << 10}
	fs := flows(a, b)

	alphaA := oliaAlpha([]Flow{a, b}, 2, a)
	alphaB := oliaAlpha([]Flow{a, b}, 2, b)
	if alphaA <= 0 {
		t.Errorf("alpha(best, small-w) = %g, want > 0", alphaA)
	}
	if alphaB >= 0 {
		t.Errorf("alpha(max-w) = %g, want < 0", alphaB)
	}
	// Conservation: transfers cancel.
	if math.Abs(alphaA+alphaB) > 1e-12 {
		t.Errorf("alpha sum = %g, want 0", alphaA+alphaB)
	}
	// And the increase of b never drives the window negative-ward
	// faster than its base term.
	inc := (OLIA{}).Increase(fs, 1, 1)
	if inc < -1 {
		t.Errorf("olia increase %g implausibly negative", inc)
	}
}

func TestOLIAAlphaZeroWhenBestHasMaxWindow(t *testing.T) {
	// The best path already has the max window: no transfer (the
	// "collected" set is empty).
	a := &fakeFlow{cwnd: 50, srtt: 0.03, established: true, l1: 10 << 20}
	b := &fakeFlow{cwnd: 5, srtt: 0.03, established: true, l1: 1 << 10}
	if alpha := oliaAlpha([]Flow{a, b}, 2, a); alpha != 0 {
		t.Errorf("alpha = %g, want 0", alpha)
	}
	if alpha := oliaAlpha([]Flow{a, b}, 2, b); alpha != 0 {
		t.Errorf("alpha = %g, want 0", alpha)
	}
}

func TestOLIAAlphaConservationProperty(t *testing.T) {
	// Sum of alphas across flows is always ~0: OLIA moves window
	// between paths without inflating the total.
	f := func(w1, w2, w3 uint16, l1a, l1b, l1c uint32) bool {
		a := &fakeFlow{cwnd: 1 + float64(w1%300), srtt: 0.02, established: true, l1: int64(l1a)}
		b := &fakeFlow{cwnd: 1 + float64(w2%300), srtt: 0.05, established: true, l1: int64(l1b)}
		c := &fakeFlow{cwnd: 1 + float64(w3%300), srtt: 0.15, established: true, l1: int64(l1c)}
		fs := []Flow{a, b, c}
		sum := oliaAlpha(fs, 3, a) + oliaAlpha(fs, 3, b) + oliaAlpha(fs, 3, c)
		return math.Abs(sum) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestIncreaseScalesWithAckedPackets(t *testing.T) {
	// Delayed ACKs cover 2 packets: increase doubles accordingly.
	for _, name := range Names() {
		c, _ := New(name)
		a := &fakeFlow{cwnd: 20, srtt: 0.05, established: true, l1: 1000}
		b := &fakeFlow{cwnd: 30, srtt: 0.08, established: true, l1: 2000}
		fs := flows(a, b)
		one := c.Increase(fs, 0, 1)
		two := c.Increase(fs, 0, 2)
		if math.Abs(two-2*one) > 1e-9 {
			t.Errorf("%s: Increase(2) = %g, want 2*Increase(1) = %g", name, two, 2*one)
		}
	}
}
