// Package cc implements the congestion-avoidance algorithms compared
// in the paper (§2.2.2): uncoupled TCP New Reno ("reno"), the coupled
// algorithm of RFC 6356 ("coupled", Linux MPTCP's default), and OLIA
// ("olia", Khalili et al., CoNEXT 2012).
//
// Controllers operate on congestion windows measured in packets (MSS
// units, fractional), as the paper's formulas do. Slow start, ssthresh
// management, and recovery mechanics stay in the TCP sender; a
// Controller only answers two questions: by how much does flow i's
// window grow for an ACK in congestion avoidance, and what is flow i's
// window after a loss.
package cc

import "fmt"

// Flow exposes the per-subflow state a controller may read. All of a
// connection's subflows are visible to the controller, which is what
// makes coupling possible.
type Flow interface {
	// Cwnd is the flow's congestion window in packets (fractional).
	Cwnd() float64
	// SRTT is the flow's smoothed round-trip time in seconds. It is
	// never zero once the flow has a sample; before the first sample
	// implementations return a configured initial estimate.
	SRTT() float64
	// Established reports whether the subflow has completed its
	// handshake and participates in transmission. Controllers ignore
	// unestablished flows.
	Established() bool
	// AckedSinceLoss is the number of bytes acknowledged since the
	// flow's last loss event (l1 in the OLIA paper).
	AckedSinceLoss() int64
	// AckedPrevLossInterval is the number of bytes acknowledged
	// between the flow's two most recent loss events (l2 in the OLIA
	// paper).
	AckedPrevLossInterval() int64
}

// Controller computes window evolution across a set of coupled flows.
type Controller interface {
	// Name identifies the algorithm ("reno", "coupled", "olia").
	Name() string
	// Increase returns the congestion-avoidance window increase, in
	// packets, for flow flows[i] upon an ACK covering ackedPackets
	// (usually 1, more with delayed/stretched ACKs).
	Increase(flows []Flow, i int, ackedPackets float64) float64
	// OnLoss returns flow flows[i]'s new window, in packets, after a
	// loss event.
	OnLoss(flows []Flow, i int) float64
}

// New returns the controller with the given name.
func New(name string) (Controller, error) {
	switch name {
	case "reno":
		return Reno{}, nil
	case "coupled", "lia":
		return Coupled{}, nil
	case "olia":
		return OLIA{}, nil
	default:
		return nil, fmt.Errorf("cc: unknown controller %q", name)
	}
}

// Names lists the available controllers in the order the paper
// discusses them.
func Names() []string { return []string{"reno", "coupled", "olia"} }

// activeFlow reports whether a flow participates in transmission.
// Controllers filter with this inline rather than building a filtered
// slice: Increase runs on every ACK, so it must not allocate.
func activeFlow(f Flow) bool { return f.Established() && f.Cwnd() > 0 }

// halve is the common multiplicative decrease: all three paper
// controllers use unmodified TCP behaviour on loss, w_i <- w_i/2,
// floored at one packet.
func halve(w float64) float64 {
	w /= 2
	if w < 1 {
		w = 1
	}
	return w
}

// Reno is uncoupled TCP New Reno on every subflow: the paper's
// baseline. For each ACK on flow i, w_i += 1/w_i; on loss, w_i /= 2.
// It does not balance congestion and is unfair to single-path users at
// shared bottlenecks (paper §4.2).
type Reno struct{}

// Name implements Controller.
func (Reno) Name() string { return "reno" }

// Increase implements Controller.
func (Reno) Increase(flows []Flow, i int, acked float64) float64 {
	w := flows[i].Cwnd()
	if w <= 0 {
		return 0
	}
	return acked / w
}

// OnLoss implements Controller.
func (Reno) OnLoss(flows []Flow, i int) float64 { return halve(flows[i].Cwnd()) }

// Coupled is the RFC 6356 linked-increase algorithm (LIA), the default
// MPTCP controller at the time of the paper. For each ACK on flow i,
//
//	w_i += min(a/w_total, 1/w_i)
//
// where a = w_total * max_p(w_p/rtt_p^2) / (sum_p w_p/rtt_p)^2 couples
// the aggregate increase to take no more than a single TCP on the best
// path.
type Coupled struct{}

// Name implements Controller.
func (Coupled) Name() string { return "coupled" }

// Increase implements Controller.
func (Coupled) Increase(flows []Flow, i int, acked float64) float64 {
	w := flows[i].Cwnd()
	if w <= 0 {
		return 0
	}
	nAct := 0
	var totalW, denom, best float64
	for _, f := range flows {
		if !activeFlow(f) {
			continue
		}
		nAct++
		wp, rtt := f.Cwnd(), f.SRTT()
		if rtt <= 0 {
			continue
		}
		totalW += wp
		denom += wp / rtt
		if v := wp / (rtt * rtt); v > best {
			best = v
		}
	}
	if nAct <= 1 || totalW <= 0 || denom <= 0 {
		return acked / w
	}
	alpha := totalW * best / (denom * denom)
	inc := alpha / totalW
	if own := 1 / w; own < inc {
		inc = own
	}
	return acked * inc
}

// OnLoss implements Controller.
func (Coupled) OnLoss(flows []Flow, i int) float64 { return halve(flows[i].Cwnd()) }
