package cc

// OLIA is the opportunistic linked-increases algorithm of Khalili et
// al. ("MPTCP is not Pareto-optimal", CoNEXT 2012), proposed as the
// replacement for Coupled and evaluated by the paper as its better-
// performing alternative for large flows (§4.2: ~5-10% lower download
// times at 8-32 MB).
//
// For each ACK on flow i,
//
//	w_i += (w_i/rtt_i^2) / (sum_p w_p/rtt_p)^2  +  alpha_i/w_i
//
// The first term is an RTT-compensated coupled increase; alpha_i moves
// window between paths opportunistically:
//
//   - collected paths are the "best" paths by recent goodput estimate
//     l_p^2 / rtt_p (l_p = max of bytes acked in the current and
//     previous inter-loss intervals) that currently have small windows;
//   - max-window paths give up alpha (negative), collected paths gain
//     it (positive), so capacity shifts toward paths that look good but
//     are under-used — this is the better "load balancing" the paper
//     credits for OLIA's wins.
type OLIA struct{}

// Name implements Controller.
func (OLIA) Name() string { return "olia" }

// Increase implements Controller.
func (OLIA) Increase(flows []Flow, i int, acked float64) float64 {
	self := flows[i]
	w := self.Cwnd()
	if w <= 0 {
		return 0
	}
	nAct := 0
	var denom float64
	for _, f := range flows {
		if !activeFlow(f) {
			continue
		}
		nAct++
		if rtt := f.SRTT(); rtt > 0 {
			denom += f.Cwnd() / rtt
		}
	}
	if nAct <= 1 || denom <= 0 {
		return acked / w
	}
	rtt := self.SRTT()
	base := (w / (rtt * rtt)) / (denom * denom)
	alpha := oliaAlpha(flows, nAct, self)
	inc := base + alpha/w
	// OLIA's alpha can make the per-ACK increase negative on max-w
	// paths; the window still never shrinks below halving behaviour —
	// cap the per-ACK decrease at the coupled term so w stays positive.
	if inc < -base {
		inc = -base
	}
	return acked * inc
}

// OnLoss implements Controller.
func (OLIA) OnLoss(flows []Flow, i int) float64 { return halve(flows[i].Cwnd()) }

// oliaAlpha computes alpha for flow self among the nAct active flows
// in flows (inactive ones are skipped in place, never materialized).
func oliaAlpha(flows []Flow, nAct int, self Flow) float64 {
	n := float64(nAct)

	// Best paths maximize l_p^2 / rtt_p.
	quality := func(f Flow) float64 {
		rtt := f.SRTT()
		if rtt <= 0 {
			return 0
		}
		l := float64(f.AckedSinceLoss())
		if l2 := float64(f.AckedPrevLossInterval()); l2 > l {
			l = l2
		}
		return l * l / rtt
	}
	var bestQ, maxW float64
	for _, f := range flows {
		if !activeFlow(f) {
			continue
		}
		if q := quality(f); q > bestQ {
			bestQ = q
		}
		if w := f.Cwnd(); w > maxW {
			maxW = w
		}
	}
	const eps = 1e-12
	inBest := func(f Flow) bool { return quality(f) >= bestQ*(1-1e-9)-eps }
	inMaxW := func(f Flow) bool { return f.Cwnd() >= maxW*(1-1e-9)-eps }

	// collected = best paths that do not have the maximum window.
	var collected, maxSet int
	for _, f := range flows {
		if !activeFlow(f) {
			continue
		}
		if inBest(f) && !inMaxW(f) {
			collected++
		}
		if inMaxW(f) {
			maxSet++
		}
	}
	if collected == 0 {
		// All best paths already have max windows: no transfer.
		return 0
	}
	switch {
	case inBest(self) && !inMaxW(self):
		return 1 / (n * float64(collected))
	case inMaxW(self):
		return -1 / (n * float64(maxSet))
	default:
		return 0
	}
}
