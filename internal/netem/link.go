package netem

import (
	"fmt"

	"mptcplab/internal/seg"
	"mptcplab/internal/sim"
	"mptcplab/internal/units"
)

// ARQ models cellular link-layer retransmission: radio-frame loss is
// hidden from TCP by local retransmissions (paper §2.1), which convert
// loss into delay and rate variability. A packet whose retries are
// exhausted is dropped (residual loss, ~PLoss^(MaxRetries+1)).
type ARQ struct {
	PLoss      float64  // per-attempt radio loss probability
	MaxRetries int      // local retransmissions before giving up
	RetryDelay sim.Time // added delay per retransmission attempt
}

// sample returns the extra delay ARQ recovery adds to one packet and
// whether the packet survives.
func (a *ARQ) sample(rng *sim.RNG) (extra sim.Time, ok bool) {
	if a == nil || a.PLoss <= 0 {
		return 0, true
	}
	for try := 0; ; try++ {
		if !rng.Bool(a.PLoss) {
			return extra, true
		}
		if try >= a.MaxRetries {
			return extra, false
		}
		extra += a.RetryDelay
	}
}

// LinkStats counts a link's lifetime activity.
type LinkStats struct {
	Sent       uint64 // packets delivered to the far end
	MediumDrop uint64 // lost to the loss model / ARQ exhaustion
	QueueDrop  uint64 // tail-dropped at the queue
	Bytes      int64  // payload+header bytes delivered
}

// Link is a one-directional packet pipe: a rate-limited server draining
// a drop-tail byte queue, followed by fixed propagation delay plus
// per-packet jitter, with optional medium loss, ARQ, and a shared
// cellular radio gate. Links preserve FIFO ordering.
//
// Deep queues on slow links are what produce cellular "bufferbloat":
// the queueing delay cwnd/Rate emerges exactly as in the measured
// networks, growing with flow size as Tables 2/5 show.
type Link struct {
	Name       string
	Rate       units.BitRate
	PropDelay  sim.Time
	QueueLimit units.ByteCount // max queued bytes; 0 means unlimited
	Loss       LossModel
	Jitter     DelayModel
	ARQ        *ARQ
	Radio      *Radio

	Stats LinkStats

	// down models a connectivity outage (walking out of WiFi range):
	// every packet is dropped while set.
	down bool

	sim *sim.Simulator
	rng *sim.RNG

	busyUntil   sim.Time
	queuedBytes units.ByteCount
	lastArrival sim.Time
	txSeq       uint64

	// pool receives segments the link kills (queue drop, medium loss,
	// outage). Wired by Network.AddRoute; nil (a no-op) for standalone
	// links driven directly by tests.
	pool *seg.Pool

	// Per-packet event state rides in FIFO rings matched to the two
	// prebound callbacks below, so Send schedules events without
	// allocating a closure or an event-name string per packet. See ring.
	departName, arriveName string
	onDepart, onArrive     func()
	departQ                ring[units.ByteCount]
	arriveQ                ring[arrivalRec]
}

// arrivalRec is one in-flight packet: popped by the link's arrive
// callback when its propagation delay elapses.
type arrivalRec struct {
	s       *seg.Segment
	ws      units.ByteCount
	deliver func(*seg.Segment)
}

// NewLink wires a link to its simulator and RNG stream. Loss and
// Jitter default to NoLoss / NoJitter when nil.
func NewLink(s *sim.Simulator, rng *sim.RNG, name string) *Link {
	l := &Link{
		Name:       name,
		Loss:       NoLoss{},
		Jitter:     NoJitter{},
		sim:        s,
		rng:        rng.Child("link/" + name),
		departName: "link.depart:" + name,
		arriveName: "link.arrive:" + name,
	}
	l.onDepart = func() {
		l.queuedBytes -= l.departQ.pop()
	}
	l.onArrive = func() {
		a := l.arriveQ.pop()
		// An outage that began after this packet was sent still kills
		// it: frames in the air die with the radio.
		if l.down {
			l.Stats.MediumDrop++
			l.pool.Put(a.s)
			return
		}
		l.Stats.Sent++
		l.Stats.Bytes += int64(a.ws)
		a.deliver(a.s)
	}
	return l
}

// QueuedBytes reports the current queue occupancy.
func (l *Link) QueuedBytes() units.ByteCount { return l.queuedBytes }

// QueueDelay reports the delay a packet entering now would wait before
// its serialization begins.
func (l *Link) QueueDelay() sim.Time {
	now := l.sim.Now()
	if l.busyUntil <= now {
		return 0
	}
	return l.busyUntil - now
}

// SetDown starts or ends a connectivity outage: while down, the link
// drops every packet, as a WiFi NIC out of range would. Used by the
// mobility/handover scenarios (§6).
func (l *Link) SetDown(down bool) { l.down = down }

// IsDown reports whether the link is in an outage.
func (l *Link) IsDown() bool { return l.down }

// Send enqueues s. If it survives the queue and the medium, deliver is
// invoked at the packet's arrival time at the far end; otherwise the
// segment is released to the link's pool (if any). Departure and
// arrival events are scheduled through per-link FIFO rings and shared
// callbacks, so the steady-state send path allocates nothing.
func (l *Link) Send(s *seg.Segment, deliver func(*seg.Segment)) {
	if l.down {
		l.Stats.MediumDrop++
		l.pool.Put(s)
		return
	}
	now := l.sim.Now()
	ws := units.ByteCount(s.WireSize())

	if l.QueueLimit > 0 && l.queuedBytes+ws > l.QueueLimit {
		l.Stats.QueueDrop++
		l.pool.Put(s)
		return
	}
	l.queuedBytes += ws
	l.txSeq++
	s.TxSeq = l.txSeq

	start := l.busyUntil
	if start < now {
		start = now
	}
	if l.Radio != nil {
		if at := l.Radio.AvailableAt(); at > start {
			start = at
		}
	}
	departure := start + l.Rate.TransmitTime(ws)
	l.busyUntil = departure

	arqDelay, survives := l.ARQ.sample(l.rng)
	if survives && l.Loss != nil && l.Loss.Drop(l.rng) {
		survives = false
	}

	arrival := departure + l.PropDelay + arqDelay + l.Jitter.Sample(l.rng)
	if arrival < l.lastArrival {
		arrival = l.lastArrival // FIFO: no reordering within a link
	}
	l.lastArrival = arrival

	l.departQ.push(ws)
	l.sim.At(departure, l.departName, l.onDepart)
	if !survives {
		l.Stats.MediumDrop++
		l.pool.Put(s)
		return
	}
	l.arriveQ.push(arrivalRec{s: s, ws: ws, deliver: deliver})
	l.sim.At(arrival, l.arriveName, l.onArrive)
}

// String describes the link.
func (l *Link) String() string {
	return fmt.Sprintf("%s(%v, %v prop, %v queue)", l.Name, l.Rate, l.PropDelay, l.QueueLimit)
}
