package netem

import (
	"fmt"

	"mptcplab/internal/seg"
	"mptcplab/internal/sim"
	"mptcplab/internal/units"
)

// ARQ models cellular link-layer retransmission: radio-frame loss is
// hidden from TCP by local retransmissions (paper §2.1), which convert
// loss into delay and rate variability. A packet whose retries are
// exhausted is dropped (residual loss, ~PLoss^(MaxRetries+1)).
type ARQ struct {
	PLoss      float64  // per-attempt radio loss probability
	MaxRetries int      // local retransmissions before giving up
	RetryDelay sim.Time // added delay per retransmission attempt
}

// sample returns the extra delay ARQ recovery adds to one packet and
// whether the packet survives.
func (a *ARQ) sample(rng *sim.RNG) (extra sim.Time, ok bool) {
	if a == nil || a.PLoss <= 0 {
		return 0, true
	}
	for try := 0; ; try++ {
		if !rng.Bool(a.PLoss) {
			return extra, true
		}
		if try >= a.MaxRetries {
			return extra, false
		}
		extra += a.RetryDelay
	}
}

// LinkStats counts a link's lifetime activity.
type LinkStats struct {
	Sent       uint64 // packets delivered to the far end
	MediumDrop uint64 // lost to the loss model / ARQ exhaustion
	QueueDrop  uint64 // tail-dropped at the queue
	Bytes      int64  // payload+header bytes delivered
}

// Link is a one-directional packet pipe: a rate-limited server draining
// a drop-tail byte queue, followed by fixed propagation delay plus
// per-packet jitter, with optional medium loss, ARQ, and a shared
// cellular radio gate. Links preserve FIFO ordering.
//
// Deep queues on slow links are what produce cellular "bufferbloat":
// the queueing delay cwnd/Rate emerges exactly as in the measured
// networks, growing with flow size as Tables 2/5 show.
type Link struct {
	Name       string
	Rate       units.BitRate
	PropDelay  sim.Time
	QueueLimit units.ByteCount // max queued bytes; 0 means unlimited
	Loss       LossModel
	Jitter     DelayModel
	ARQ        *ARQ
	Radio      *Radio

	// Chaos, when non-nil, injects adversarial behaviours (duplication,
	// reordering) that deliberately break the link's FIFO contract. It
	// exists for the invariant fuzzer; nil costs nothing and draws no
	// randomness, so normal runs are bit-identical with the field absent.
	Chaos *Chaos

	// OnBadOwnership, when non-nil, is called instead of panicking when
	// the link detects that an in-flight segment was recycled before its
	// arrival event fired (a pool use-after-release upstream). The
	// invariant checker arms this to record the violation.
	OnBadOwnership func(link string, s *seg.Segment)

	Stats LinkStats

	// down models a connectivity outage (walking out of WiFi range):
	// every packet is dropped while set.
	down bool

	sim *sim.Simulator
	rng *sim.RNG

	busyUntil   sim.Time
	queuedBytes units.ByteCount
	lastArrival sim.Time
	txSeq       uint64

	// pool receives segments the link kills (queue drop, medium loss,
	// outage). Wired by Network.AddRoute; nil (a no-op) for standalone
	// links driven directly by tests.
	pool *seg.Pool

	// Per-packet event state rides in FIFO rings matched to the two
	// prebound callbacks below, so Send schedules events without
	// allocating a closure or an event-name string per packet. Each
	// ring keeps at most ONE event in the simulator's heap — the head
	// entry, at the (at, seq) slot reserved for it at Send time — and
	// when it fires the callback drains every ring entry due at the
	// same instant inline before scheduling the next head. The heap
	// stays O(links) instead of O(packets in flight) while firing
	// order is byte-identical to one event per packet. See ring, and
	// sim.Slot for the ordering argument.
	departName, arriveName string
	onDepart, onArrive     func()
	departQ                ring[departRec]
	arriveQ                ring[arrivalRec]
}

// departRec is one queued packet's serialization accounting: popped by
// the link's depart callback when the rate limiter finishes with it.
type departRec struct {
	ws   units.ByteCount
	slot sim.Slot
}

// arrivalRec is one in-flight packet: popped by the link's arrive
// callback when its propagation delay elapses. gen snapshots the
// segment's pool generation at push so the pop can detect that the
// segment was recycled while in flight (linear-ownership violation).
// A nil s is a tombstone: the packet was killed by SetDown mid-flight.
type arrivalRec struct {
	s       *seg.Segment
	ws      units.ByteCount
	gen     uint32
	slot    sim.Slot
	deliver func(*seg.Segment)
}

// Chaos configures adversarial packet handling on a Link. All
// probabilities are per-packet; randomness is drawn from the link's own
// RNG stream only when Chaos is non-nil, so enabling it perturbs no
// other stream.
type Chaos struct {
	// DupProb delivers an extra cloned copy of the packet at its normal
	// arrival time (the receiver sees the segment twice).
	DupProb float64
	// ReorderProb routes the packet around the FIFO rings through its
	// own closure event with up to ExtraDelay added, so later packets
	// can overtake it (extreme reordering).
	ReorderProb float64
	// ExtraDelay bounds the extra delay given to reordered packets.
	ExtraDelay sim.Time
}

// NewLink wires a link to its simulator and RNG stream. Loss and
// Jitter default to NoLoss / NoJitter when nil.
func NewLink(s *sim.Simulator, rng *sim.RNG, name string) *Link {
	l := &Link{
		Name:       name,
		Loss:       NoLoss{},
		Jitter:     NoJitter{},
		sim:        s,
		rng:        rng.Child("link/" + name),
		departName: "link.depart:" + name,
		arriveName: "link.arrive:" + name,
	}
	l.onDepart = func() {
		for {
			l.queuedBytes -= l.departQ.pop().ws
			if l.departQ.len() == 0 {
				return
			}
			h := l.departQ.at(0)
			if !l.sim.ConsumeSlot(h.slot) {
				l.sim.ScheduleSlot(h.slot, l.departName, l.onDepart)
				return
			}
		}
	}
	l.onArrive = func() {
		for {
			l.arrive(l.arriveQ.pop())
			if l.arriveQ.len() == 0 {
				return
			}
			h := l.arriveQ.at(0)
			if !l.sim.ConsumeSlot(h.slot) {
				l.sim.ScheduleSlot(h.slot, l.arriveName, l.onArrive)
				return
			}
		}
	}
	return l
}

// arrive completes one popped in-flight packet: tombstone and
// ownership checks, outage kill, then delivery to the far end.
func (l *Link) arrive(a arrivalRec) {
	if a.s == nil {
		// Tombstone: SetDown killed this packet mid-flight; it was
		// counted and released at that moment.
		return
	}
	if a.s.Pooled() || a.s.Gen() != a.gen {
		l.badOwnership(a.s)
		return
	}
	// An outage that began after this packet was sent still kills
	// it: frames in the air die with the radio.
	if l.down {
		l.Stats.MediumDrop++
		l.pool.Put(a.s)
		return
	}
	l.Stats.Sent++
	l.Stats.Bytes += int64(a.ws)
	a.deliver(a.s)
}

// QueuedBytes reports the current queue occupancy.
func (l *Link) QueuedBytes() units.ByteCount { return l.queuedBytes }

// QueueDelay reports the delay a packet entering now would wait before
// its serialization begins.
func (l *Link) QueueDelay() sim.Time {
	now := l.sim.Now()
	if l.busyUntil <= now {
		return 0
	}
	return l.busyUntil - now
}

// SetDown starts or ends a connectivity outage: while down, the link
// drops every packet, as a WiFi NIC out of range would. Used by the
// mobility/handover scenarios (§6).
//
// Starting an outage also kills packets already in the air: their
// segments are released to the pool immediately and counted as medium
// drops, and the already-scheduled arrive events pop tombstoned
// records. Without this, a segment queued before the outage would be
// delivered after it began.
func (l *Link) SetDown(down bool) {
	if down && !l.down {
		for i := 0; i < l.arriveQ.len(); i++ {
			a := l.arriveQ.at(i)
			if a.s == nil {
				continue
			}
			l.Stats.MediumDrop++
			l.pool.Put(a.s)
			a.s = nil
			a.deliver = nil
		}
	}
	l.down = down
}

// SetUp ends an outage; shorthand for SetDown(false).
func (l *Link) SetUp() { l.SetDown(false) }

// badOwnership reports a use-after-release detected at arrival.
func (l *Link) badOwnership(s *seg.Segment) {
	if l.OnBadOwnership != nil {
		l.OnBadOwnership(l.Name, s)
		return
	}
	panic("netem: in-flight segment on " + l.Name + " was recycled before arrival (pool use-after-release)")
}

// IsDown reports whether the link is in an outage.
func (l *Link) IsDown() bool { return l.down }

// Send enqueues s. If it survives the queue and the medium, deliver is
// invoked at the packet's arrival time at the far end; otherwise the
// segment is released to the link's pool (if any). Departure and
// arrival events are scheduled through per-link FIFO rings and shared
// callbacks, so the steady-state send path allocates nothing.
func (l *Link) Send(s *seg.Segment, deliver func(*seg.Segment)) {
	if l.down {
		l.Stats.MediumDrop++
		l.pool.Put(s)
		return
	}
	now := l.sim.Now()
	ws := units.ByteCount(s.WireSize())

	if l.QueueLimit > 0 && l.queuedBytes+ws > l.QueueLimit {
		l.Stats.QueueDrop++
		l.pool.Put(s)
		return
	}
	l.queuedBytes += ws
	l.txSeq++
	s.TxSeq = l.txSeq

	start := l.busyUntil
	if start < now {
		start = now
	}
	if l.Radio != nil {
		if at := l.Radio.AvailableAt(); at > start {
			start = at
		}
	}
	departure := start + l.Rate.TransmitTime(ws)
	l.busyUntil = departure

	arqDelay, survives := l.ARQ.sample(l.rng)
	if survives && l.Loss != nil && l.Loss.Drop(l.rng) {
		survives = false
	}

	arrival := departure + l.PropDelay + arqDelay + l.Jitter.Sample(l.rng)
	if arrival < l.lastArrival {
		arrival = l.lastArrival // FIFO: no reordering within a link
	}
	l.lastArrival = arrival

	// Slot reservations replace eager heap events: only a ring's head
	// entry is heap-resident, and the depart/arrive callbacks schedule
	// (or inline-drain) successors as heads retire. The reservation
	// draws the same tie-break sequence an eager event would have, so
	// the simulation's execution order is unchanged.
	l.departQ.push(departRec{ws: ws, slot: l.sim.ReserveSlot(departure)})
	if l.departQ.len() == 1 {
		l.sim.ScheduleSlot(l.departQ.at(0).slot, l.departName, l.onDepart)
	}
	if !survives {
		l.Stats.MediumDrop++
		l.pool.Put(s)
		return
	}
	if l.Chaos != nil && l.chaosSend(s, ws, arrival, deliver) {
		return
	}
	l.arriveQ.push(arrivalRec{s: s, ws: ws, gen: s.Gen(), slot: l.sim.ReserveSlot(arrival), deliver: deliver})
	if l.arriveQ.len() == 1 {
		l.sim.ScheduleSlot(l.arriveQ.at(0).slot, l.arriveName, l.onArrive)
	}
}

// chaosSend applies the link's Chaos config to a surviving packet.
// It returns true when it took over the packet's delivery (the caller
// must not push it through the FIFO rings). Chaos deliveries run as
// dedicated closure events because the ring contract requires strictly
// FIFO firing; these packets deliberately break it. They re-check the
// outage flag at fire time, but are invisible to the SetDown drain.
func (l *Link) chaosSend(s *seg.Segment, ws units.ByteCount, arrival sim.Time, deliver func(*seg.Segment)) bool {
	c := l.Chaos
	if c.DupProb > 0 && l.rng.Bool(c.DupProb) {
		dup := s.Clone()
		l.sim.At(arrival, l.arriveName, func() {
			if l.down {
				l.Stats.MediumDrop++
				l.pool.Put(dup)
				return
			}
			l.Stats.Sent++
			l.Stats.Bytes += int64(ws)
			deliver(dup)
		})
	}
	if c.ReorderProb > 0 && l.rng.Bool(c.ReorderProb) {
		at := arrival
		if c.ExtraDelay > 0 {
			at += sim.Time(l.rng.Float64() * float64(c.ExtraDelay))
		}
		l.sim.At(at, l.arriveName, func() {
			if l.down {
				l.Stats.MediumDrop++
				l.pool.Put(s)
				return
			}
			l.Stats.Sent++
			l.Stats.Bytes += int64(ws)
			deliver(s)
		})
		return true
	}
	return false
}

// String describes the link.
func (l *Link) String() string {
	return fmt.Sprintf("%s(%v, %v prop, %v queue)", l.Name, l.Rate, l.PropDelay, l.QueueLimit)
}
