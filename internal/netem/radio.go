package netem

import "mptcplab/internal/sim"

// RadioState is the cellular radio-resource-control state.
type RadioState int

// Radio states, after the RRC state machines of 3G/4G modems.
const (
	RadioIdle RadioState = iota
	RadioPromoting
	RadioReady
)

// String names the state.
func (s RadioState) String() string {
	switch s {
	case RadioIdle:
		return "idle"
	case RadioPromoting:
		return "promoting"
	case RadioReady:
		return "ready"
	default:
		return "unknown"
	}
}

// Radio models a cellular device's radio-resource state machine. The
// promotion delay — the time to bring an idle antenna to the ready
// state — is often longer than a packet RTT (paper §3.2, citing Huang
// et al.), so the paper pre-warms the antenna with two pings before
// every measurement. The experiment harness does the same via Warm;
// the state machine is still modeled so its impact can be measured.
//
// One Radio is shared by a device's uplink and downlink: it is the
// same antenna.
type Radio struct {
	sim *sim.Simulator

	// PromotionDelay is the idle->ready transition time.
	PromotionDelay sim.Time
	// DemoteAfter is the inactivity timeout before ready->idle.
	DemoteAfter sim.Time

	state        RadioState
	readyAt      sim.Time
	lastActivity sim.Time
}

// NewRadio returns a radio in the Idle state.
func NewRadio(s *sim.Simulator, promotion, demoteAfter sim.Time) *Radio {
	return &Radio{sim: s, PromotionDelay: promotion, DemoteAfter: demoteAfter}
}

// State reports the current state, applying any pending demotion.
func (r *Radio) State() RadioState {
	r.tick()
	return r.state
}

// tick lazily applies state transitions due to the passage of time.
func (r *Radio) tick() {
	now := r.sim.Now()
	switch r.state {
	case RadioPromoting:
		if now >= r.readyAt {
			r.state = RadioReady
			r.lastActivity = r.readyAt
		}
	case RadioReady:
		if r.DemoteAfter > 0 && now-r.lastActivity >= r.DemoteAfter {
			r.state = RadioIdle
		}
	}
}

// AvailableAt reports the earliest time a packet arriving now can be
// serviced, starting promotion if the radio is idle, and records the
// activity.
func (r *Radio) AvailableAt() sim.Time {
	if r == nil {
		return 0
	}
	r.tick()
	now := r.sim.Now()
	switch r.state {
	case RadioReady:
		r.lastActivity = now
		return now
	case RadioPromoting:
		return r.readyAt
	default: // idle: begin promotion
		r.state = RadioPromoting
		r.readyAt = now + r.PromotionDelay
		return r.readyAt
	}
}

// Warm forces the radio to the ready state immediately, as the paper's
// pre-measurement pings do.
func (r *Radio) Warm() {
	if r == nil {
		return
	}
	r.state = RadioReady
	r.lastActivity = r.sim.Now()
}
