package netem

import (
	"testing"

	"mptcplab/internal/seg"
	"mptcplab/internal/sim"
	"mptcplab/internal/units"
)

func mkSeg(n int) *seg.Segment {
	return &seg.Segment{
		Src:        seg.MakeAddr("10.0.0.1", 1),
		Dst:        seg.MakeAddr("10.0.0.2", 2),
		Flags:      seg.ACK,
		PayloadLen: n,
	}
}

func TestLinkSerializationAndPropagation(t *testing.T) {
	s := sim.New()
	rng := sim.NewRNG(1)
	l := NewLink(s, rng, "l")
	l.Rate = 12 * units.Mbps
	l.PropDelay = 10 * sim.Millisecond

	var arrived sim.Time
	pkt := mkSeg(1460) // 1500 wire bytes = 1 ms at 12 Mbps
	l.Send(pkt, func(*seg.Segment) { arrived = s.Now() })
	s.Run()

	want := sim.Millisecond + 10*sim.Millisecond
	if arrived != want {
		t.Errorf("arrival at %v, want %v", arrived, want)
	}
	if l.Stats.Sent != 1 {
		t.Errorf("Sent = %d", l.Stats.Sent)
	}
}

func TestLinkQueueingDelayAccumulates(t *testing.T) {
	s := sim.New()
	l := NewLink(s, sim.NewRNG(1), "l")
	l.Rate = 12 * units.Mbps
	l.PropDelay = 0

	var arrivals []sim.Time
	for i := 0; i < 5; i++ {
		l.Send(mkSeg(1460), func(*seg.Segment) { arrivals = append(arrivals, s.Now()) })
	}
	if qd := l.QueueDelay(); qd != 5*sim.Millisecond {
		t.Errorf("QueueDelay = %v, want 5ms", qd)
	}
	s.Run()
	for i, a := range arrivals {
		want := sim.Time(i+1) * sim.Millisecond
		if a != want {
			t.Errorf("packet %d arrived %v, want %v", i, a, want)
		}
	}
}

func TestLinkTailDrop(t *testing.T) {
	s := sim.New()
	l := NewLink(s, sim.NewRNG(1), "l")
	l.Rate = 1 * units.Mbps
	l.QueueLimit = 3000 // two 1500-byte frames

	delivered := 0
	for i := 0; i < 5; i++ {
		l.Send(mkSeg(1460), func(*seg.Segment) { delivered++ })
	}
	s.Run()
	if delivered != 2 {
		t.Errorf("delivered %d, want 2", delivered)
	}
	if l.Stats.QueueDrop != 3 {
		t.Errorf("QueueDrop = %d, want 3", l.Stats.QueueDrop)
	}
	// Queue fully drains.
	if l.QueuedBytes() != 0 {
		t.Errorf("QueuedBytes = %d after drain", l.QueuedBytes())
	}
}

func TestLinkFIFOUnderJitter(t *testing.T) {
	s := sim.New()
	l := NewLink(s, sim.NewRNG(7), "l")
	l.Rate = 100 * units.Mbps
	l.PropDelay = 5 * sim.Millisecond
	l.Jitter = UniformJitter{Lo: 0, Hi: 50 * sim.Millisecond}

	var order []uint64
	for i := 0; i < 200; i++ {
		l.Send(mkSeg(100), func(p *seg.Segment) { order = append(order, p.TxSeq) })
	}
	s.Run()
	if len(order) != 200 {
		t.Fatalf("delivered %d of 200", len(order))
	}
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			t.Fatalf("reordering within a link: %d before %d", order[i], order[i-1])
		}
	}
}

func TestBernoulliLossRate(t *testing.T) {
	s := sim.New()
	l := NewLink(s, sim.NewRNG(3), "l")
	l.Rate = 1 * units.Gbps
	l.Loss = BernoulliLoss{P: 0.1}

	delivered := 0
	const n = 5000
	for i := 0; i < n; i++ {
		l.Send(mkSeg(100), func(*seg.Segment) { delivered++ })
	}
	s.Run()
	rate := 1 - float64(delivered)/n
	if rate < 0.08 || rate > 0.12 {
		t.Errorf("observed loss %.3f, want ≈0.10", rate)
	}
}

func TestGilbertElliottStationaryLoss(t *testing.T) {
	p := GilbertElliottParams{PGood: 0.01, PBad: 0.3, PGB: 0.01, PBG: 0.2}
	g := p.New()
	rng := sim.NewRNG(11)
	losses := 0
	const n = 200000
	for i := 0; i < n; i++ {
		if g.Drop(rng) {
			losses++
		}
	}
	got := float64(losses) / n
	want := p.MeanLoss()
	if got < want*0.8 || got > want*1.2 {
		t.Errorf("GE loss %.4f, stationary prediction %.4f", got, want)
	}
}

func TestARQConvertsLossToDelay(t *testing.T) {
	s := sim.New()
	l := NewLink(s, sim.NewRNG(5), "l")
	l.Rate = 1 * units.Gbps
	l.ARQ = &ARQ{PLoss: 0.3, MaxRetries: 3, RetryDelay: 10 * sim.Millisecond}

	delivered, delayed := 0, 0
	const n = 3000
	send := func() {
		sentAt := s.Now()
		l.Send(mkSeg(100), func(*seg.Segment) {
			delivered++
			if s.Now()-sentAt > 9*sim.Millisecond {
				delayed++
			}
		})
	}
	for i := 0; i < n; i++ {
		send()
		s.Run()
	}
	// Residual loss ≈ 0.3^4 = 0.81%; ~30% of packets see ARQ delay.
	lossRate := 1 - float64(delivered)/n
	if lossRate > 0.03 {
		t.Errorf("residual loss %.3f too high; ARQ not recovering", lossRate)
	}
	frac := float64(delayed) / float64(delivered)
	if frac < 0.2 || frac > 0.4 {
		t.Errorf("ARQ-delayed fraction %.3f, want ≈0.3", frac)
	}
}

func TestRadioPromotionAndDemotion(t *testing.T) {
	s := sim.New()
	r := NewRadio(s, 300*sim.Millisecond, 2*sim.Second)

	if r.State() != RadioIdle {
		t.Fatalf("initial state %v", r.State())
	}
	at := r.AvailableAt()
	if at != 300*sim.Millisecond {
		t.Errorf("promotion available at %v, want 300ms", at)
	}
	if r.State() != RadioPromoting {
		t.Errorf("state %v, want promoting", r.State())
	}
	s.RunUntil(400 * sim.Millisecond)
	if r.State() != RadioReady {
		t.Errorf("state %v after promotion, want ready", r.State())
	}
	if got := r.AvailableAt(); got != s.Now() {
		t.Errorf("ready radio available at %v, want now", got)
	}
	// Idle long enough to demote.
	s.RunUntil(5 * sim.Second)
	if r.State() != RadioIdle {
		t.Errorf("state %v after inactivity, want idle", r.State())
	}
	// Warm skips promotion (the paper's ping warm-up).
	r.Warm()
	if r.State() != RadioReady {
		t.Errorf("state %v after Warm", r.State())
	}
}

func TestRadioDelaysFirstPacket(t *testing.T) {
	s := sim.New()
	rng := sim.NewRNG(1)
	l := NewLink(s, rng, "cell")
	l.Rate = 1 * units.Gbps
	l.Radio = NewRadio(s, 250*sim.Millisecond, 10*sim.Second)

	var first, second sim.Time
	l.Send(mkSeg(100), func(*seg.Segment) { first = s.Now() })
	s.Run()
	l.Send(mkSeg(100), func(*seg.Segment) { second = s.Now() })
	s.Run()
	if first < 250*sim.Millisecond {
		t.Errorf("first packet at %v, want ≥ promotion 250ms", first)
	}
	if second-first > 10*sim.Millisecond {
		t.Errorf("second packet took %v after first; radio should be warm", second-first)
	}
}

func TestHostDemux(t *testing.T) {
	s := sim.New()
	n := NewNetwork(s)
	a := n.NewHost("a")
	b := n.NewHost("b")
	l1 := NewLink(s, sim.NewRNG(1), "ab")
	l1.Rate = 1 * units.Gbps
	l2 := NewLink(s, sim.NewRNG(1), "ba")
	l2.Rate = 1 * units.Gbps
	aAddr := seg.MakeAddr("10.0.0.1", 100)
	bAddr := seg.MakeAddr("10.0.0.2", 200)
	n.AddDuplexRoute(aAddr.IP, bAddr.IP, a, b, []*Link{l1}, []*Link{l2})

	got := 0
	b.Bind(bAddr, aAddr, handlerFunc(func(sg *seg.Segment) { got++ }))
	a.Send(&seg.Segment{Src: aAddr, Dst: bAddr, Flags: seg.ACK})
	s.Run()
	if got != 1 {
		t.Errorf("handler received %d segments", got)
	}

	// Listener catches unbound ports; unmatched counts otherwise.
	lis := &recordingListener{}
	b.Listen(999, lis)
	a.Send(&seg.Segment{Src: aAddr, Dst: seg.MakeAddr("10.0.0.2", 999), Flags: seg.SYN})
	a.Send(&seg.Segment{Src: aAddr, Dst: seg.MakeAddr("10.0.0.2", 777), Flags: seg.SYN})
	s.Run()
	if lis.got != 1 {
		t.Errorf("listener received %d", lis.got)
	}
	if b.Unmatched != 1 {
		t.Errorf("Unmatched = %d, want 1", b.Unmatched)
	}

	// Missing route is counted, not fatal.
	a.Send(&seg.Segment{Src: seg.MakeAddr("9.9.9.9", 1), Dst: bAddr})
	s.Run()
	if n.NoRoute != 1 {
		t.Errorf("NoRoute = %d, want 1", n.NoRoute)
	}
}

type handlerFunc func(*seg.Segment)

func (f handlerFunc) Receive(s *seg.Segment) { f(s) }

type recordingListener struct{ got int }

func (l *recordingListener) Incoming(*seg.Segment) { l.got++ }

func TestTapsSeeClones(t *testing.T) {
	s := sim.New()
	n := NewNetwork(s)
	a := n.NewHost("a")
	b := n.NewHost("b")
	l := NewLink(s, sim.NewRNG(1), "ab")
	l.Rate = 1 * units.Gbps
	aAddr := seg.MakeAddr("10.0.0.1", 1)
	bAddr := seg.MakeAddr("10.0.0.2", 2)
	n.AddRoute(aAddr.IP, bAddr.IP, b, l)

	var captured *seg.Segment
	a.AddTap(func(dir Direction, at sim.Time, sg *seg.Segment) {
		if dir == Egress {
			captured = sg
		}
	})
	orig := &seg.Segment{Src: aAddr, Dst: bAddr, Seq: 42}
	a.Send(orig)
	orig.Seq = 99 // mutate after send
	s.Run()
	if captured == nil {
		t.Fatal("tap saw nothing")
	}
	if captured.Seq != 42 {
		t.Errorf("tap saw mutated segment (seq=%d)", captured.Seq)
	}
}

func TestSharedLinkIsSharedBottleneck(t *testing.T) {
	// Two routes over one 1 Mbps link: total goodput is bounded by the
	// shared link, which is what makes the paper's 4-path experiments
	// access-limited.
	s := sim.New()
	n := NewNetwork(s)
	a := n.NewHost("a")
	b := n.NewHost("b")
	shared := NewLink(s, sim.NewRNG(1), "shared")
	shared.Rate = 1 * units.Mbps
	a1 := seg.MakeAddr("10.0.0.1", 1)
	a2 := seg.MakeAddr("10.0.1.1", 1)
	bAddr := seg.MakeAddr("10.0.9.9", 2)
	n.AddRoute(a1.IP, bAddr.IP, b, shared)
	n.AddRoute(a2.IP, bAddr.IP, b, shared)

	got := 0
	var last sim.Time
	b.Bind(bAddr, a1, handlerFunc(func(*seg.Segment) { got++; last = s.Now() }))
	b.Bind(bAddr, a2, handlerFunc(func(*seg.Segment) { got++; last = s.Now() }))

	// 20 full-size packets, alternating "paths", injected at t=0.
	for i := 0; i < 10; i++ {
		a.Send(&seg.Segment{Src: a1, Dst: bAddr, PayloadLen: 1460, Flags: seg.ACK})
		a.Send(&seg.Segment{Src: a2, Dst: bAddr, PayloadLen: 1460, Flags: seg.ACK})
	}
	s.Run()
	if got != 20 {
		t.Fatalf("delivered %d of 20", got)
	}
	// 20 * 1500B at 1 Mbps = 240 ms: both routes serialized through
	// the one link, not 120 ms each in parallel.
	want := sim.Time(240) * sim.Millisecond
	if last < want-sim.Millisecond || last > want+sim.Millisecond {
		t.Errorf("last delivery at %v, want ≈%v (shared bottleneck)", last, want)
	}
}
