package netem

import "mptcplab/internal/sim"

// DelayModel samples per-packet extra propagation delay (jitter) on
// top of a link's fixed propagation time. Links preserve FIFO order
// regardless of the samples drawn.
type DelayModel interface {
	Sample(rng *sim.RNG) sim.Time
}

// NoJitter adds nothing.
type NoJitter struct{}

// Sample implements DelayModel.
func (NoJitter) Sample(*sim.RNG) sim.Time { return 0 }

// UniformJitter adds a uniform sample in [Lo, Hi).
type UniformJitter struct{ Lo, Hi sim.Time }

// Sample implements DelayModel.
func (u UniformJitter) Sample(rng *sim.RNG) sim.Time { return rng.Duration(u.Lo, u.Hi) }

// LogNormalJitter adds a log-normal sample (parameters of the
// underlying normal, in milliseconds), capped at Max. Cellular
// scheduling delay is well described by this shape.
type LogNormalJitter struct {
	Mu, Sigma float64
	Max       sim.Time
}

// Sample implements DelayModel.
func (l LogNormalJitter) Sample(rng *sim.RNG) sim.Time {
	ms := rng.LogNormal(l.Mu, l.Sigma)
	d := sim.Time(ms * float64(sim.Millisecond))
	if l.Max > 0 && d > l.Max {
		d = l.Max
	}
	return d
}

// ParetoTailJitter mixes a base uniform jitter with an occasional
// heavy-tailed Pareto excursion: with probability PTail the sample is
// Pareto(Xm ms, Alpha) capped at Max. 3G radio-network stalls produce
// exactly this multi-second tail (paper §5.1, Fig 12).
type ParetoTailJitter struct {
	Base  UniformJitter
	PTail float64
	Xm    float64 // milliseconds
	Alpha float64
	Max   sim.Time
}

// Sample implements DelayModel.
func (p ParetoTailJitter) Sample(rng *sim.RNG) sim.Time {
	d := p.Base.Sample(rng)
	if rng.Bool(p.PTail) {
		ms := rng.Pareto(p.Xm, p.Alpha)
		t := sim.Time(ms * float64(sim.Millisecond))
		if p.Max > 0 && t > p.Max {
			t = p.Max
		}
		d += t
	}
	return d
}
