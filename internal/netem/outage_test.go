package netem

import (
	"testing"

	"mptcplab/internal/seg"
	"mptcplab/internal/sim"
	"mptcplab/internal/units"
)

// An outage kills packets already in the air (the radio is gone), not
// just new transmissions, and delivery resumes after it ends.
func TestOutageDropsNewAndInFlightPackets(t *testing.T) {
	s := sim.New()
	l := NewLink(s, sim.NewRNG(1), "l")
	l.Rate = 1 * units.Gbps
	l.PropDelay = 50 * sim.Millisecond

	delivered := 0
	sendOne := func() { l.Send(mkSeg(100), func(*seg.Segment) { delivered++ }) }

	// Packet 1 sent at t=0 arrives at ~50ms; outage begins at 20ms,
	// while it is in flight: it must die.
	sendOne()
	s.RunUntil(20 * sim.Millisecond)
	l.SetDown(true)
	if !l.IsDown() {
		t.Fatal("IsDown false after SetDown")
	}
	// Packet 2 sent during the outage: dropped at ingress.
	sendOne()
	s.RunUntil(100 * sim.Millisecond)
	if delivered != 0 {
		t.Fatalf("delivered %d packets through an outage", delivered)
	}
	if l.Stats.MediumDrop != 2 {
		t.Errorf("MediumDrop = %d, want 2", l.Stats.MediumDrop)
	}

	// Outage ends: traffic flows again.
	l.SetDown(false)
	sendOne()
	s.Run()
	if delivered != 1 {
		t.Errorf("delivered %d after recovery, want 1", delivered)
	}
}
