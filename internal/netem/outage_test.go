package netem

import (
	"testing"

	"mptcplab/internal/seg"
	"mptcplab/internal/sim"
	"mptcplab/internal/units"
)

// An outage kills packets already in the air (the radio is gone), not
// just new transmissions, and delivery resumes after it ends.
func TestOutageDropsNewAndInFlightPackets(t *testing.T) {
	s := sim.New()
	l := NewLink(s, sim.NewRNG(1), "l")
	l.Rate = 1 * units.Gbps
	l.PropDelay = 50 * sim.Millisecond

	delivered := 0
	sendOne := func() { l.Send(mkSeg(100), func(*seg.Segment) { delivered++ }) }

	// Packet 1 sent at t=0 arrives at ~50ms; outage begins at 20ms,
	// while it is in flight: it must die.
	sendOne()
	s.RunUntil(20 * sim.Millisecond)
	l.SetDown(true)
	if !l.IsDown() {
		t.Fatal("IsDown false after SetDown")
	}
	// Packet 2 sent during the outage: dropped at ingress.
	sendOne()
	s.RunUntil(100 * sim.Millisecond)
	if delivered != 0 {
		t.Fatalf("delivered %d packets through an outage", delivered)
	}
	if l.Stats.MediumDrop != 2 {
		t.Errorf("MediumDrop = %d, want 2", l.Stats.MediumDrop)
	}

	// Outage ends: traffic flows again.
	l.SetDown(false)
	sendOne()
	s.Run()
	if delivered != 1 {
		t.Errorf("delivered %d after recovery, want 1", delivered)
	}
}

// A packet queued in the in-flight ring when the outage starts must be
// pool-released at that moment — not delivered later, even if the
// outage ends before its scheduled arrival time.
func TestOutageReleasesQueuedPacketsImmediately(t *testing.T) {
	s := sim.New()
	l := NewLink(s, sim.NewRNG(1), "l")
	l.Rate = 1 * units.Gbps
	l.PropDelay = 50 * sim.Millisecond
	pool := &seg.Pool{}
	l.pool = pool

	delivered := 0
	inflight := pool.Get()
	inflight.PayloadLen = 100
	l.Send(inflight, func(*seg.Segment) { delivered++ })

	// Outage begins at 20ms and ends at 30ms — both before the packet's
	// ~50ms arrival. The packet must still die at 20ms.
	s.RunUntil(20 * sim.Millisecond)
	l.SetDown(true)
	if pool.Size() != 1 {
		t.Errorf("pool size = %d immediately after SetDown, want 1 (in-flight segment released)", pool.Size())
	}
	if l.Stats.MediumDrop != 1 {
		t.Errorf("MediumDrop = %d after SetDown, want 1", l.Stats.MediumDrop)
	}
	s.RunUntil(30 * sim.Millisecond)
	l.SetDown(false)

	s.Run()
	if delivered != 0 {
		t.Fatalf("delivered %d packets queued before the outage", delivered)
	}
	if l.Stats.MediumDrop != 1 {
		t.Errorf("MediumDrop = %d, want 1 (tombstoned arrival must not double-count)", l.Stats.MediumDrop)
	}

	// The link stays usable: the recycled segment flows normally.
	l.Send(pool.Get(), func(s *seg.Segment) { delivered++; pool.Put(s) })
	s.Run()
	if delivered != 1 {
		t.Errorf("delivered %d after recovery, want 1", delivered)
	}
}

// A segment recycled while in flight (ownership bug upstream) is caught
// at arrival via its generation counter.
func TestInFlightUseAfterReleaseDetected(t *testing.T) {
	s := sim.New()
	l := NewLink(s, sim.NewRNG(1), "l")
	l.Rate = 1 * units.Gbps
	l.PropDelay = 50 * sim.Millisecond
	pool := &seg.Pool{}
	l.pool = pool

	var caught int
	l.OnBadOwnership = func(link string, _ *seg.Segment) {
		if link != "l" {
			t.Errorf("OnBadOwnership link = %q, want l", link)
		}
		caught++
	}

	sg := pool.Get()
	sg.PayloadLen = 100
	delivered := 0
	l.Send(sg, func(*seg.Segment) { delivered++ })
	// Simulated bug: some other owner releases the in-flight segment.
	pool.Put(sg)

	s.Run()
	if caught != 1 {
		t.Fatalf("ownership violations caught = %d, want 1", caught)
	}
	if delivered != 0 {
		t.Errorf("stale segment was delivered")
	}
}
