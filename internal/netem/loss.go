// Package netem emulates the paper's testbed networks at packet level:
// rate-limited drop-tail links (whose deep buffers reproduce cellular
// bufferbloat), random wireless loss, link-layer ARQ that converts
// radio loss into delay, the cellular radio-resource state machine,
// and the wiring of hosts, routes, and capture taps.
package netem

import "mptcplab/internal/sim"

// LossModel decides whether an egressing packet is dropped by the
// medium (independently of queue overflow, which the Link handles).
type LossModel interface {
	// Drop reports whether the next packet is lost.
	Drop(rng *sim.RNG) bool
}

// NoLoss never drops.
type NoLoss struct{}

// Drop implements LossModel.
func (NoLoss) Drop(*sim.RNG) bool { return false }

// BernoulliLoss drops each packet independently with probability P.
type BernoulliLoss struct{ P float64 }

// Drop implements LossModel.
func (l BernoulliLoss) Drop(rng *sim.RNG) bool { return rng.Bool(l.P) }

// GilbertElliott is a two-state bursty loss process: in the Good state
// packets are lost with probability PGood, in the Bad state with
// probability PBad; the chain moves Good->Bad with probability PGB and
// Bad->Good with PBG per packet. WiFi interference produces loss
// bursts, which this captures better than a Bernoulli process.
type GilbertElliott struct {
	PGood, PBad float64
	PGB, PBG    float64
	bad         bool
}

// GilbertElliottParams is an immutable parameter set from which fresh
// (stateful) GilbertElliott processes are derived — path profiles hold
// params; each link instantiates its own chain.
type GilbertElliottParams struct {
	PGood, PBad float64
	PGB, PBG    float64
}

// New instantiates a chain starting in the Good state.
func (p GilbertElliottParams) New() *GilbertElliott {
	return NewGilbertElliott(p.PGood, p.PBad, p.PGB, p.PBG)
}

// MeanLoss reports the chain's stationary loss probability.
func (p GilbertElliottParams) MeanLoss() float64 {
	if p.PGB+p.PBG == 0 {
		return p.PGood
	}
	fBad := p.PGB / (p.PGB + p.PBG)
	return (1-fBad)*p.PGood + fBad*p.PBad
}

// NewGilbertElliott returns a process starting in the Good state.
func NewGilbertElliott(pGood, pBad, pGB, pBG float64) *GilbertElliott {
	return &GilbertElliott{PGood: pGood, PBad: pBad, PGB: pGB, PBG: pBG}
}

// Drop implements LossModel.
func (g *GilbertElliott) Drop(rng *sim.RNG) bool {
	if g.bad {
		if rng.Bool(g.PBG) {
			g.bad = false
		}
	} else {
		if rng.Bool(g.PGB) {
			g.bad = true
		}
	}
	if g.bad {
		return rng.Bool(g.PBad)
	}
	return rng.Bool(g.PGood)
}
