package netem

// ring is a growable FIFO of T over a power-of-two circular buffer.
// Links use rings to carry per-packet state from Send to the matching
// depart/arrive event: because a link's departure and arrival times are
// both monotone (busyUntil and lastArrival never move backwards) and
// the simulator breaks ties FIFO, events fire in exactly push order, so
// one prebound callback popping the head replaces a fresh closure per
// packet. Steady state pushes and pops allocate nothing.
type ring[T any] struct {
	buf  []T
	head int
	n    int
}

func (r *ring[T]) push(v T) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = v
	r.n++
}

func (r *ring[T]) pop() T {
	if r.n == 0 {
		panic("netem: pop from empty ring")
	}
	var zero T
	v := r.buf[r.head]
	r.buf[r.head] = zero
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return v
}

func (r *ring[T]) len() int { return r.n }

// at returns a pointer to the i-th queued element (0 = head) for
// in-place inspection or mutation without disturbing FIFO order.
func (r *ring[T]) at(i int) *T {
	if i < 0 || i >= r.n {
		panic("netem: ring index out of range")
	}
	return &r.buf[(r.head+i)&(len(r.buf)-1)]
}

func (r *ring[T]) grow() {
	size := len(r.buf) * 2
	if size == 0 {
		size = 8
	}
	buf := make([]T, size)
	for i := 0; i < r.n; i++ {
		buf[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf = buf
	r.head = 0
}
