package netem

import (
	"fmt"

	"mptcplab/internal/seg"
	"mptcplab/internal/sim"
)

// Handler consumes segments addressed to an established connection.
// The segment is only valid for the duration of the call: the network
// releases it back to its pool when Receive returns, so handlers that
// need it longer must Clone.
type Handler interface {
	Receive(s *seg.Segment)
}

// Listener consumes segments that match a listening port but no
// established connection (i.e. incoming SYNs). The same lifetime rule
// as Handler.Receive applies.
type Listener interface {
	Incoming(s *seg.Segment)
}

// Direction distinguishes tap callbacks.
type Direction int

// Tap directions.
const (
	Egress Direction = iota
	Ingress
)

// Tap observes packets at a host's interfaces, like tcpdump. The
// segment passed in is a private clone; taps may retain it.
type Tap func(dir Direction, at sim.Time, s *seg.Segment)

type connKey struct {
	local, remote seg.Addr
}

// Host owns a set of interface addresses, demultiplexes arriving
// segments to connections and listeners, and injects outgoing segments
// into the network's routes.
type Host struct {
	Name string

	net   *Network
	conns map[connKey]Handler
	// listeners are keyed by port: the paper's server listens on one
	// port across both its interfaces.
	listeners map[uint16]Listener
	taps      []Tap
	rawTaps   []Tap

	// Unmatched counts segments that matched neither a connection nor
	// a listener (e.g. late retransmissions after close).
	Unmatched uint64
}

// NewHost registers a named host with the network.
func (n *Network) NewHost(name string) *Host {
	h := &Host{
		Name:      name,
		net:       n,
		conns:     make(map[connKey]Handler),
		listeners: make(map[uint16]Listener),
	}
	n.hosts = append(n.hosts, h)
	return h
}

// Bind routes segments for the (local, remote) pair to h.
func (h *Host) Bind(local, remote seg.Addr, handler Handler) {
	h.conns[connKey{local, remote}] = handler
}

// Unbind removes a connection binding.
func (h *Host) Unbind(local, remote seg.Addr) {
	delete(h.conns, connKey{local, remote})
}

// Listen routes otherwise-unmatched segments for the port to l.
func (h *Host) Listen(port uint16, l Listener) {
	h.listeners[port] = l
}

// AddTap attaches a capture tap to all of the host's traffic.
func (h *Host) AddTap(t Tap) { h.taps = append(h.taps, t) }

// AddRawTap attaches a zero-copy tap: unlike AddTap, the callback gets
// the live segment, not a clone, so it costs nothing per packet beyond
// the call. Raw taps must not mutate the segment or retain it past the
// callback — it is owned by the network and recycled afterwards. The
// invariant checker uses raw taps to observe every segment online.
func (h *Host) AddRawTap(t Tap) { h.rawTaps = append(h.rawTaps, t) }

func (h *Host) tap(dir Direction, s *seg.Segment) {
	for _, t := range h.rawTaps {
		t(dir, h.net.sim.Now(), s)
	}
	if len(h.taps) == 0 {
		return
	}
	c := s.Clone()
	for _, t := range h.taps {
		t(dir, h.net.sim.Now(), c)
	}
}

// NewSegment returns an empty segment from the network's pool; see
// Network.NewSegment for the ownership rules.
func (h *Host) NewSegment() *seg.Segment { return h.net.pool.Get() }

// Send stamps and transmits a segment from this host. Ownership of s
// passes to the network: the route chain releases it to the pool after
// final delivery or at a drop, so callers must not use it afterwards.
func (h *Host) Send(s *seg.Segment) {
	s.SentAt = h.net.sim.Now()
	h.tap(Egress, s)
	h.net.route(s)
}

// Deliver hands an arriving segment to the owning connection or
// listener.
func (h *Host) Deliver(s *seg.Segment) {
	h.tap(Ingress, s)
	if c, ok := h.conns[connKey{s.Dst, s.Src}]; ok {
		c.Receive(s)
		return
	}
	if l, ok := h.listeners[s.Dst.Port]; ok {
		l.Incoming(s)
		return
	}
	h.Unmatched++
}

type routeKey struct {
	src, dst [4]byte
}

type route struct {
	hops []*Link
	dst  *Host

	// start is the precomputed delivery chain: hop 0's Send bound to
	// hop 1's, ending in Deliver-then-release. Built once in AddRoute
	// so routing a packet creates no closures.
	start func(*seg.Segment)
}

// Network connects hosts through routes made of shared links. Routing
// is by (source IP, destination IP): in the paper's testbed the path a
// packet takes is determined entirely by which client interface and
// which server interface it runs between.
type Network struct {
	sim    *sim.Simulator
	hosts  []*Host
	routes map[routeKey]route

	// pool recycles segments across the network's packet lifecycle:
	// endpoints Get one via Host.NewSegment, routes carry it hop to
	// hop, and the end of the chain — final delivery or any drop —
	// Puts it back. Taps and anything else that outlives that moment
	// works on clones.
	pool seg.Pool

	// NoRoute counts segments dropped for lack of a route: a config
	// error in tests, surfaced rather than panicking mid-simulation.
	NoRoute uint64
}

// NewNetwork returns an empty network on the simulator.
func NewNetwork(s *sim.Simulator) *Network {
	return &Network{sim: s, routes: make(map[routeKey]route)}
}

// Sim exposes the simulator driving this network.
func (n *Network) Sim() *sim.Simulator { return n.sim }

// Reset drops every host and route while keeping the segment pool's
// free list warm, so a reused network rebuilds its topology without
// reallocating per-packet state. Segments still in flight on the old
// topology are abandoned to the garbage collector (they were never
// released, so the pool's double-release guard is not at risk); the
// pool's Gets/News counters keep accumulating across runs like the
// simulator's pools do. Callers pair this with Simulator.Reset.
func (n *Network) Reset() {
	n.hosts = n.hosts[:0]
	clear(n.routes)
	n.NoRoute = 0
}

// NewSegment returns an empty segment from the network's pool. The
// segment is surrendered when sent (the route chain releases it after
// final delivery or at a drop); senders must not touch it afterwards.
func (n *Network) NewSegment() *seg.Segment { return n.pool.Get() }

// Pool exposes the network's segment pool (for stats and tests).
func (n *Network) Pool() *seg.Pool { return &n.pool }

// AddRoute installs a one-directional route: segments from srcIP to
// dstIP traverse hops in order and are then delivered to dst. Links
// may appear in multiple routes; they are shared bottlenecks.
func (n *Network) AddRoute(srcIP, dstIP [4]byte, dst *Host, hops ...*Link) {
	next := func(s *seg.Segment) {
		dst.Deliver(s)
		n.pool.Put(s)
	}
	for i := len(hops) - 1; i >= 0; i-- {
		hop, downstream := hops[i], next
		hop.pool = &n.pool
		next = func(s *seg.Segment) { hop.Send(s, downstream) }
	}
	n.routes[routeKey{srcIP, dstIP}] = route{hops: hops, dst: dst, start: next}
}

// AddDuplexRoute installs forward and reverse routes in one call:
// a->b over forward hops, b->a over reverse hops.
func (n *Network) AddDuplexRoute(aIP, bIP [4]byte, aHost, bHost *Host, forward, reverse []*Link) {
	n.AddRoute(aIP, bIP, bHost, forward...)
	n.AddRoute(bIP, aIP, aHost, reverse...)
}

func (n *Network) route(s *seg.Segment) {
	r, ok := n.routes[routeKey{s.Src.IP, s.Dst.IP}]
	if !ok {
		n.NoRoute++
		n.pool.Put(s)
		return
	}
	r.start(s)
}

// String summarizes the network.
func (n *Network) String() string {
	return fmt.Sprintf("network(%d hosts, %d routes)", len(n.hosts), len(n.routes))
}
