package web

import "testing"

// loopStream is a pair of in-memory streams: what one side writes is
// delivered (synchronously) to the other's data callback. It stands in
// for the transport when testing HTTP framing alone.
type loopStream struct {
	peer   *loopStream
	onData func(int64)
	closed bool
}

func loopPair() (a, b *loopStream) {
	a, b = &loopStream{}, &loopStream{}
	a.peer, b.peer = b, a
	return
}

func (s *loopStream) Write(n int) {
	if s.peer.onData != nil {
		s.peer.onData(int64(n))
	}
}
func (s *loopStream) Close()                     { s.closed = true }
func (s *loopStream) SetOnData(fn func(int64))   { s.onData = fn }
func (s *loopStream) SetOnEstablished(fn func()) {}

func TestGetterSingleFetch(t *testing.T) {
	cliSide, srvSide := loopPair()
	fs := &FileServer{SizeFor: func(i int) int { return 5000 }}
	fs.ServeStream(srvSide)

	g := NewGetter(cliSide)
	done := 0
	g.Get(5000, func() { done++ })
	if done != 1 {
		t.Fatalf("done=%d", done)
	}
	if g.BytesReceived != 5000+ResponseHeaderSize {
		t.Errorf("received %d", g.BytesReceived)
	}
	if fs.Requests != 1 {
		t.Errorf("server requests = %d", fs.Requests)
	}
	// CloseAfter defaults to one response.
	if !srvSide.closed {
		t.Error("server did not close after single response")
	}
}

func TestGetterSequentialFetches(t *testing.T) {
	cliSide, srvSide := loopPair()
	sizes := []int{100, 2000, 30}
	fs := &FileServer{CloseAfter: -1, SizeFor: func(i int) int { return sizes[i] }}
	fs.ServeStream(srvSide)

	g := NewGetter(cliSide)
	var order []int
	for i, size := range sizes {
		i := i
		g.Get(size, func() { order = append(order, i) })
	}
	if len(order) != 3 || order[0] != 0 || order[2] != 2 {
		t.Fatalf("completion order %v", order)
	}
	want := int64(100 + 2000 + 30 + 3*ResponseHeaderSize)
	if g.BytesReceived != want {
		t.Errorf("received %d, want %d", g.BytesReceived, want)
	}
}

func TestFileServerCloseAfterN(t *testing.T) {
	cliSide, srvSide := loopPair()
	fs := &FileServer{CloseAfter: 2, SizeFor: func(i int) int { return 10 }}
	fs.ServeStream(srvSide)
	g := NewGetter(cliSide)
	g.Get(10, nil)
	if srvSide.closed {
		t.Error("closed after first response despite CloseAfter=2")
	}
	g.Get(10, nil)
	if !srvSide.closed {
		t.Error("not closed after second response")
	}
}

func TestFileServerRefusal(t *testing.T) {
	cliSide, srvSide := loopPair()
	fs := &FileServer{SizeFor: func(i int) int { return -1 }}
	fs.ServeStream(srvSide)
	g := NewGetter(cliSide)
	fired := false
	g.Get(10, func() { fired = true })
	if fired {
		t.Error("refused request completed")
	}
	if !srvSide.closed {
		t.Error("server did not close on refusal")
	}
	if fs.Requests != 0 {
		t.Errorf("refused request counted: %d", fs.Requests)
	}
}

func TestFramingWithFragmentedDelivery(t *testing.T) {
	// Client writes arrive at the server in 7-byte pieces; server
	// responses arrive at the client in 64-byte pieces.
	var cliToSrv func(int64)
	var srvToCli func(int64)

	cli := &funcStream{write: func(n int) {
		for n > 0 {
			c := 7
			if n < c {
				c = n
			}
			cliToSrv(int64(c))
			n -= c
		}
	}, setOnData: func(fn func(int64)) { srvToCli = fn }}
	srv := &funcStream{write: func(n int) {
		for n > 0 {
			c := 64
			if n < c {
				c = n
			}
			srvToCli(int64(c))
			n -= c
		}
	}, setOnData: func(fn func(int64)) { cliToSrv = fn }}

	fs := &FileServer{CloseAfter: -1, SizeFor: func(i int) int { return 1000 }}
	fs.ServeStream(srv)
	g := NewGetter(cli)
	done := 0
	g.Get(1000, func() { done++ })
	g.Get(1000, func() { done++ })
	if done != 2 {
		t.Errorf("done=%d, want 2", done)
	}
	if fs.Requests != 2 {
		t.Errorf("requests=%d", fs.Requests)
	}
}

type funcStream struct {
	write     func(int)
	setOnData func(func(int64))
}

func (s *funcStream) Write(n int)                { s.write(n) }
func (s *funcStream) Close()                     {}
func (s *funcStream) SetOnData(fn func(int64))   { s.setOnData(fn) }
func (s *funcStream) SetOnEstablished(fn func()) {}
