// Package web models the paper's application layer: an HTTP/1.1-style
// file server (the UMass Apache on port 8080) and a wget-like client
// issuing GETs for objects of known size. Payload contents are
// abstract — requests and responses are byte counts framed by fixed
// header sizes — but all bytes flow through the real simulated TCP or
// MPTCP stacks.
package web

import (
	"mptcplab/internal/mptcp"
	"mptcplab/internal/tcp"
)

// Framing constants: a GET request line plus headers, and a response
// status line plus headers, roughly what the paper's wget/Apache
// exchange.
const (
	RequestSize        = 160
	ResponseHeaderSize = 240
)

// Stream abstracts the transport under an HTTP exchange so the same
// application code runs over single-path TCP and MPTCP.
type Stream interface {
	// Write appends n bytes to the send direction.
	Write(n int)
	// Close half-closes the send direction after pending data.
	Close()
	// SetOnData installs the delivery callback (replacing any).
	SetOnData(fn func(n int64))
	// SetOnEstablished installs the connection-up callback.
	SetOnEstablished(fn func())
}

// TCPStream adapts a tcp.Endpoint.
type TCPStream struct{ EP *tcp.Endpoint }

// Write implements Stream.
func (s TCPStream) Write(n int) { s.EP.Write(n) }

// Close implements Stream.
func (s TCPStream) Close() { s.EP.Close() }

// SetOnData implements Stream.
func (s TCPStream) SetOnData(fn func(int64)) {
	s.EP.OnDeliver = func(n int) { fn(int64(n)) }
}

// SetOnEstablished implements Stream.
func (s TCPStream) SetOnEstablished(fn func()) { s.EP.OnEstablished = fn }

// MPTCPStream adapts an mptcp.Conn.
type MPTCPStream struct{ Conn *mptcp.Conn }

// Write implements Stream.
func (s MPTCPStream) Write(n int) { s.Conn.Write(n) }

// Close implements Stream.
func (s MPTCPStream) Close() { s.Conn.Close() }

// SetOnData implements Stream.
func (s MPTCPStream) SetOnData(fn func(int64)) { s.Conn.OnData = fn }

// SetOnEstablished implements Stream.
func (s MPTCPStream) SetOnEstablished(fn func()) { s.Conn.OnEstablished = fn }

// FileServer answers GETs with fixed-size bodies.
type FileServer struct {
	// SizeFor returns the body size for the i-th request (0-based) on
	// a connection. Returning a negative size refuses the request and
	// closes the connection.
	SizeFor func(reqIndex int) int
	// CloseAfter closes the connection after this many responses;
	// 0 means close after the first (the paper's one-object fetches),
	// negative means keep alive indefinitely (video streaming).
	CloseAfter int

	// Requests counts GETs served across all connections.
	Requests uint64
}

// ServeStream attaches the server behaviour to one accepted stream.
func (f *FileServer) ServeStream(st Stream) {
	var buffered int64
	served := 0
	st.SetOnData(func(n int64) {
		buffered += n
		for buffered >= RequestSize {
			buffered -= RequestSize
			size := 0
			if f.SizeFor != nil {
				size = f.SizeFor(served)
			}
			if size < 0 {
				st.Close()
				return
			}
			f.Requests++
			st.Write(ResponseHeaderSize + size)
			served++
			limit := f.CloseAfter
			if limit == 0 {
				limit = 1
			}
			if limit > 0 && served >= limit {
				st.Close()
				return
			}
		}
	})
}

// Getter issues sequential GETs on a stream and reports completions.
type Getter struct {
	st        Stream
	remaining int64
	inFlight  bool
	queue     []pendingGet

	// BytesReceived counts all delivered bytes including headers.
	BytesReceived int64
}

type pendingGet struct {
	size   int
	onDone func()
}

// NewGetter wraps a stream; it takes over the stream's data callback.
func NewGetter(st Stream) *Getter {
	g := &Getter{st: st}
	st.SetOnData(g.onData)
	return g
}

// Get requests a body of the given size; onDone fires when the last
// byte (header + body) has been delivered. Gets are serialized in
// FIFO order, as wget would issue them.
func (g *Getter) Get(size int, onDone func()) {
	g.queue = append(g.queue, pendingGet{size: size, onDone: onDone})
	g.maybeIssue()
}

// Close half-closes the underlying stream.
func (g *Getter) Close() { g.st.Close() }

func (g *Getter) maybeIssue() {
	if g.inFlight || len(g.queue) == 0 {
		return
	}
	g.inFlight = true
	g.remaining = int64(ResponseHeaderSize + g.queue[0].size)
	g.st.Write(RequestSize)
}

func (g *Getter) onData(n int64) {
	g.BytesReceived += n
	if !g.inFlight {
		return
	}
	g.remaining -= n
	if g.remaining <= 0 {
		// A pipelined server would not over-deliver; any surplus here
		// belongs to the next response (none, since gets serialize).
		done := g.queue[0].onDone
		g.queue = g.queue[1:]
		g.inFlight = false
		if done != nil {
			done()
		}
		g.maybeIssue()
	}
}
