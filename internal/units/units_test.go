package units

import (
	"testing"
	"testing/quick"

	"mptcplab/internal/sim"
)

func TestByteCountString(t *testing.T) {
	cases := []struct {
		in   ByteCount
		want string
	}{
		{512, "512B"},
		{8 * KB, "8KB"},
		{512 * KB, "512KB"},
		{4 * MB, "4MB"},
		{2 * GB, "2GB"},
		{1536, "1.5KB"},
		{3 * MB / 2, "1.5MB"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestBitRateString(t *testing.T) {
	cases := []struct {
		in   BitRate
		want string
	}{
		{25 * Mbps, "25Mbps"},
		{1 * Gbps, "1Gbps"},
		{600 * Kbps, "600Kbps"},
		{1234, "1234bps"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestTransmitTime(t *testing.T) {
	// 1500 bytes at 12 Mbps = 1 ms.
	if got := (12 * Mbps).TransmitTime(1500); got != sim.Millisecond {
		t.Errorf("TransmitTime = %v, want 1ms", got)
	}
	// Zero rate transmits instantly (infinite-speed link).
	if got := BitRate(0).TransmitTime(1500); got != 0 {
		t.Errorf("zero-rate TransmitTime = %v", got)
	}
	// Large transfers do not overflow: 512 MB at 1 Gbps ≈ 4.29 s.
	got := (1 * Gbps).TransmitTime(512 * MB)
	want := sim.Time(float64(512*MB*8) / 1e9 * float64(sim.Second))
	diff := got - want
	if diff < 0 {
		diff = -diff
	}
	if diff > sim.Millisecond {
		t.Errorf("512MB@1Gbps = %v, want ≈%v", got, want)
	}
}

func TestBytesIn(t *testing.T) {
	if got := (8 * Mbps).BytesIn(sim.Second); got != 1_000_000 {
		t.Errorf("8Mbps over 1s = %d bytes, want 1e6", got)
	}
	if got := (8 * Mbps).BytesIn(0); got != 0 {
		t.Errorf("zero duration = %d", got)
	}
}

// TransmitTime and BytesIn are approximate inverses.
func TestRateRoundTripProperty(t *testing.T) {
	f := func(kb uint16, mbps uint8) bool {
		n := ByteCount(kb)*KB + 1
		r := BitRate(int64(mbps)+1) * Mbps
		d := r.TransmitTime(n)
		back := r.BytesIn(d)
		diff := int64(back - n)
		if diff < 0 {
			diff = -diff
		}
		return diff <= 2 // integer rounding
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseByteCount(t *testing.T) {
	cases := []struct {
		in   string
		want ByteCount
	}{
		{"512B", 512},
		{"8KB", 8 * KB},
		{"1.5KB", 1536},
		{"4MB", 4 * MB},
		{"1.5MB", 3 * MB / 2},
		{"2GB", 2 * GB},
		{"1234", 1234}, // bare bytes
		{"0B", 0},
	}
	for _, c := range cases {
		got, err := ParseByteCount(c.in)
		if err != nil {
			t.Errorf("ParseByteCount(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseByteCount(%q) = %d, want %d", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"", "KB", "xMB", "1.2.3KB", "NaNMB", "InfGB"} {
		if v, err := ParseByteCount(bad); err == nil {
			t.Errorf("ParseByteCount(%q) = %d, want error", bad, v)
		}
	}
}

func TestParseBitRate(t *testing.T) {
	cases := []struct {
		in   string
		want BitRate
	}{
		{"25Mbps", 25 * Mbps},
		{"1Gbps", Gbps},
		{"600Kbps", 600 * Kbps},
		{"1234bps", 1234},
		{"2.5Mbps", 2_500_000},
		{"42", 42}, // bare bps
	}
	for _, c := range cases {
		got, err := ParseBitRate(c.in)
		if err != nil {
			t.Errorf("ParseBitRate(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseBitRate(%q) = %d, want %d", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"", "bps", "fastMbps", "1..0Gbps"} {
		if v, err := ParseBitRate(bad); err == nil {
			t.Errorf("ParseBitRate(%q) = %d, want error", bad, v)
		}
	}
}

// Every value String renders as an exact unit multiple must parse back
// to itself.
func TestByteCountStringParseRoundTrip(t *testing.T) {
	f := func(mb uint16, small uint8) bool {
		for _, b := range []ByteCount{
			ByteCount(mb) * MB,    // renders "NMB" or "NGB"
			ByteCount(small),      // renders "NB"
			ByteCount(small) * KB, // renders "NKB" (stays below 1MB)
		} {
			got, err := ParseByteCount(b.String())
			if err != nil || got != b {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Fractional renderings round-trip to within the printed precision
	// (String keeps one decimal).
	for _, b := range []ByteCount{1536, 2500, 3 * MB / 2, 5*MB + 123*KB} {
		got, err := ParseByteCount(b.String())
		if err != nil {
			t.Fatalf("ParseByteCount(%q): %v", b.String(), err)
		}
		tol := ByteCount(MB / 10)
		if b < MB {
			tol = KB / 10
		}
		if diff := got - b; diff > tol || diff < -tol {
			t.Errorf("round trip %q: got %d, want %d±%d", b.String(), got, b, tol)
		}
	}
}

func TestBitRateStringParseRoundTrip(t *testing.T) {
	f := func(kbps uint16) bool {
		r := BitRate(kbps) * Kbps
		got, err := ParseBitRate(r.String())
		return err == nil && got == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
