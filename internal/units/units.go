// Package units holds the small shared vocabulary of byte counts and
// link rates used across mptcplab.
package units

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"mptcplab/internal/sim"
)

// Byte-count constants (powers of two, as in the paper's file sizes).
const (
	KB = 1 << 10
	MB = 1 << 20
	GB = 1 << 30
)

// ByteCount is a number of bytes.
type ByteCount int64

// String renders the count with a binary-prefix unit, e.g. "512KB".
func (b ByteCount) String() string {
	switch {
	case b >= GB && b%GB == 0:
		return fmt.Sprintf("%dGB", b/GB)
	case b >= MB && b%MB == 0:
		return fmt.Sprintf("%dMB", b/MB)
	case b >= MB:
		return fmt.Sprintf("%.1fMB", float64(b)/MB)
	case b >= KB && b%KB == 0:
		return fmt.Sprintf("%dKB", b/KB)
	case b >= KB:
		return fmt.Sprintf("%.1fKB", float64(b)/KB)
	default:
		return fmt.Sprintf("%dB", int64(b))
	}
}

// ParseByteCount parses the formats ByteCount.String produces —
// "512B", "8KB", "1.5MB", "2GB" — plus a bare number, which means
// bytes. Units are binary (KB = 1024), matching the constants above.
func ParseByteCount(s string) (ByteCount, error) {
	num, mult := s, int64(1)
	switch {
	case strings.HasSuffix(s, "GB"):
		num, mult = s[:len(s)-2], GB
	case strings.HasSuffix(s, "MB"):
		num, mult = s[:len(s)-2], MB
	case strings.HasSuffix(s, "KB"):
		num, mult = s[:len(s)-2], KB
	case strings.HasSuffix(s, "B"):
		num = s[:len(s)-1]
	}
	v, err := parseScaled(num, mult)
	if err != nil {
		return 0, fmt.Errorf("units: bad byte count %q: %v", s, err)
	}
	return ByteCount(v), nil
}

// BitRate is a link speed in bits per second.
type BitRate int64

// Common rates.
const (
	Kbps BitRate = 1_000
	Mbps BitRate = 1_000_000
	Gbps BitRate = 1_000_000_000
)

// String renders the rate, e.g. "25Mbps".
func (r BitRate) String() string {
	switch {
	case r >= Gbps && r%Gbps == 0:
		return fmt.Sprintf("%dGbps", r/Gbps)
	case r >= Mbps && r%Mbps == 0:
		return fmt.Sprintf("%dMbps", r/Mbps)
	case r >= Kbps && r%Kbps == 0:
		return fmt.Sprintf("%dKbps", r/Kbps)
	default:
		return fmt.Sprintf("%dbps", int64(r))
	}
}

// ParseBitRate parses the formats BitRate.String produces — "1Gbps",
// "25Mbps", "600Kbps", "1234bps" — plus a bare number, which means
// bits per second. Units are decimal (Kbps = 1000), matching the
// constants above.
func ParseBitRate(s string) (BitRate, error) {
	num, mult := s, int64(1)
	switch {
	case strings.HasSuffix(s, "Gbps"):
		num, mult = s[:len(s)-4], int64(Gbps)
	case strings.HasSuffix(s, "Mbps"):
		num, mult = s[:len(s)-4], int64(Mbps)
	case strings.HasSuffix(s, "Kbps"):
		num, mult = s[:len(s)-4], int64(Kbps)
	case strings.HasSuffix(s, "bps"):
		num = s[:len(s)-3]
	}
	v, err := parseScaled(num, mult)
	if err != nil {
		return 0, fmt.Errorf("units: bad bit rate %q: %v", s, err)
	}
	return BitRate(v), nil
}

// parseScaled parses num (integer or decimal) times mult, exactly for
// integers and rounded to the nearest unit for fractions like "1.5".
func parseScaled(num string, mult int64) (int64, error) {
	if num == "" {
		return 0, fmt.Errorf("empty number")
	}
	if i, err := strconv.ParseInt(num, 10, 64); err == nil {
		return i * mult, nil
	}
	f, err := strconv.ParseFloat(num, 64)
	if err != nil {
		return 0, err
	}
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return 0, fmt.Errorf("not finite")
	}
	return int64(math.Round(f * float64(mult))), nil
}

// TransmitTime reports how long a link at rate r takes to serialize n
// bytes onto the wire.
func (r BitRate) TransmitTime(n ByteCount) sim.Time {
	if r <= 0 {
		return 0
	}
	bits := int64(n) * 8
	// ns = bits * 1e9 / rate, computed to avoid overflow for large n.
	sec := bits / int64(r)
	rem := bits % int64(r)
	return sim.Time(sec)*sim.Second + sim.Time(rem*int64(sim.Second)/int64(r))
}

// BytesIn reports how many whole bytes rate r delivers in d.
func (r BitRate) BytesIn(d sim.Time) ByteCount {
	if r <= 0 || d <= 0 {
		return 0
	}
	// bytes = rate/8 * seconds
	return ByteCount(int64(r) / 8 * int64(d) / int64(sim.Second))
}
