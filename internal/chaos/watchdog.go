package chaos

import (
	"errors"
	"fmt"
	"runtime/debug"
	"time"

	"mptcplab/internal/sim"
)

// Errors reported by the run watchdog via Simulator.AbortErr.
var (
	// ErrDeadline: the run burned more wall-clock time than allowed.
	ErrDeadline = errors.New("chaos: wall-clock deadline exceeded")
	// ErrLivelock: the event loop kept processing events without
	// virtual time moving — a self-feeding event storm.
	ErrLivelock = errors.New("chaos: simulation livelock (events without time progress)")
)

// watchEvery is how many processed events pass between watchdog
// checks; livelockChecks consecutive checks at one virtual instant
// (≈ livelockChecks×watchEvery events, far past any legitimate
// same-instant burst) trip ErrLivelock.
const (
	watchEvery     = 1 << 16
	livelockChecks = 16
)

// ArmWatchdog installs a per-run guard on the simulator: a wall-clock
// deadline (0 = none) and always-on livelock detection. The run loop
// stops with Simulator.AbortErr set to ErrDeadline or ErrLivelock;
// callers turn that into a failed-run row. Wall-clock kills are
// inherently nondeterministic — use generous deadlines (or 0) where
// byte-identical exports matter; livelock detection is a pure function
// of the event stream and never perturbs a healthy run.
func ArmWatchdog(s *sim.Simulator, wall time.Duration) {
	start := time.Now()
	lastNow := sim.Time(-1)
	same := 0
	s.SetWatchdog(watchEvery, func() error {
		if now := s.Now(); now != lastNow {
			lastNow = now
			same = 0
		} else if same++; same >= livelockChecks {
			return fmt.Errorf("%w at t=%v after %d events", ErrLivelock, now, s.Processed())
		}
		if wall > 0 && time.Since(start) > wall {
			return fmt.Errorf("%w (%v) at t=%v", ErrDeadline, wall, s.Now())
		}
		return nil
	})
}

// Contain runs fn, converting a panic into an error carrying the
// panic value and a trimmed stack — the sweep workers' containment
// boundary: one exploding run becomes one failed-run row instead of
// tearing the whole harness down.
func Contain(fn func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("chaos: run panicked: %v\n%s", r, debug.Stack())
		}
	}()
	fn()
	return nil
}
