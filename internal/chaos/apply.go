package chaos

import (
	"mptcplab/internal/netem"
	"mptcplab/internal/pathmodel"
	"mptcplab/internal/sim"
	"mptcplab/internal/units"
)

// Target adapts a topology to the schedule: which links belong to each
// path, and (optionally) how to withdraw and restore addresses for
// handover storms. Nil hooks make Storm a link-level no-op; empty link
// slices make a path's faults no-ops — a schedule never fails at
// apply time, it just has nothing to bite on.
type Target struct {
	WiFi, Cell []*netem.Link

	// Withdraw and Restore implement address-level handover for Storm
	// events: Withdraw pulls the path's local addresses out of active
	// connections (REMOVE_ADDR + subflow abort), Restore re-adds them
	// on a fresh port (ADD_ADDR + join). Both are called at most once
	// per storm cycle, in simulator context.
	Withdraw func(Path)
	Restore  func(Path)

	// OnFault, when non-nil, is told about every fault transition —
	// the Monitor uses it to place marks, CLIs to narrate.
	OnFault func(name string, at sim.Time)
}

func (t Target) links(p Path) []*netem.Link {
	switch p {
	case WiFi:
		return t.WiFi
	case Cell:
		return t.Cell
	default:
		return append(append([]*netem.Link{}, t.WiFi...), t.Cell...)
	}
}

func (t Target) note(name string, at sim.Time) {
	if t.OnFault != nil {
		t.OnFault(name, at)
	}
}

// Apply schedules every event of the schedule onto the simulator. All
// timers are laid down up front — application is data-independent, so
// the same spec always perturbs the run identically.
func (sc Schedule) Apply(s *sim.Simulator, tgt Target) {
	for _, e := range sc.Events {
		e := e
		switch e.Kind {
		case Outage:
			applyOutage(s, tgt, e.Path, e.At, e.Dur, "outage")
		case Flap:
			for i := 0; i < e.Count; i++ {
				applyOutage(s, tgt, e.Path, e.At+sim.Time(i)*e.Every, e.Dur, "flap")
			}
		case Storm:
			applyStorm(s, tgt, e)
		case Ramp, Fade:
			applyShaped(s, tgt, e)
		}
	}
}

func applyOutage(s *sim.Simulator, tgt Target, p Path, at, dur sim.Time, name string) {
	s.At(at, "chaos-"+name+"-down", func() {
		tgt.note(name+"-"+p.String()+"-down", at)
		for _, l := range tgt.links(p) {
			l.SetDown(true)
		}
	})
	s.At(at+dur, "chaos-"+name+"-up", func() {
		tgt.note(name+"-"+p.String()+"-up", at+dur)
		for _, l := range tgt.links(p) {
			l.SetUp()
		}
	})
}

// applyStorm alternates Withdraw and Restore across the window: the
// address leaves at each cycle start and returns halfway through it,
// with a final Restore at window end so the path is always handed
// back.
func applyStorm(s *sim.Simulator, tgt Target, e Event) {
	for at := e.At; at < e.At+e.Dur; at += e.Every {
		at := at
		s.At(at, "chaos-storm-withdraw", func() {
			tgt.note("storm-"+e.Path.String()+"-withdraw", at)
			if tgt.Withdraw != nil {
				tgt.Withdraw(e.Path)
			}
		})
		back := at + e.Every/2
		s.At(back, "chaos-storm-restore", func() {
			tgt.note("storm-"+e.Path.String()+"-restore", back)
			if tgt.Restore != nil {
				tgt.Restore(e.Path)
			}
		})
	}
}

// shapeState snapshots a link's nominal parameters the moment shaping
// begins, so every step scales from nominal (not from the previous
// step) and the end of the window restores exactly.
type shapeState struct {
	link      *netem.Link
	rate      float64
	propDelay sim.Time
	loss      netem.LossModel
}

func snapshot(links []*netem.Link) []shapeState {
	ss := make([]shapeState, len(links))
	for i, l := range links {
		ss[i] = shapeState{link: l, rate: float64(l.Rate), propDelay: l.PropDelay, loss: l.Loss}
	}
	return ss
}

func (st shapeState) apply(rateScale, loss float64, extraDelay sim.Time) {
	if rateScale < 0.01 {
		rateScale = 0.01 // a shaped link never fully blackholes; that's Outage's job
	}
	st.link.Rate = units.BitRate(st.rate * rateScale)
	st.link.PropDelay = st.propDelay + extraDelay
	if loss > 0 {
		st.link.Loss = overlayLoss{base: st.loss, p: loss}
	} else {
		st.link.Loss = st.loss
	}
}

func (st shapeState) restore() {
	st.link.Rate = units.BitRate(st.rate)
	st.link.PropDelay = st.propDelay
	st.link.Loss = st.loss
}

// applyShaped drives Ramp (linear degradation, abrupt recovery) and
// Fade (raised-cosine dip and symmetric recovery) as Steps discrete
// parameter updates across the window.
func applyShaped(s *sim.Simulator, tgt Target, e Event) {
	var ss []shapeState
	step := e.Dur / sim.Time(e.Steps)
	for i := 0; i <= e.Steps; i++ {
		i := i
		at := e.At + sim.Time(i)*step
		s.At(at, "chaos-"+e.Kind.String(), func() {
			if ss == nil {
				ss = snapshot(tgt.links(e.Path))
				tgt.note(e.Kind.String()+"-"+e.Path.String()+"-start", at)
			}
			if i == e.Steps {
				for _, st := range ss {
					st.restore()
				}
				tgt.note(e.Kind.String()+"-"+e.Path.String()+"-end", at)
				return
			}
			frac := float64(i) / float64(e.Steps)
			var scale, loss float64
			var delay sim.Time
			if e.Kind == Fade {
				scale, loss = pathmodel.SignalFade(frac, e.Depth)
			} else {
				scale = 1 - e.Depth*frac
				loss = e.Loss * frac
				delay = sim.Time(float64(e.ExtraDelay) * frac)
			}
			for _, st := range ss {
				st.apply(scale, loss, delay)
			}
		})
	}
}

// overlayLoss adds independent random loss on top of whatever loss
// model the link already had.
type overlayLoss struct {
	base netem.LossModel
	p    float64
}

// Drop consults the base model first so its internal state (e.g. a
// Gilbert-Elliott chain) keeps advancing through the fault.
func (o overlayLoss) Drop(rng *sim.RNG) bool {
	dropped := o.base != nil && o.base.Drop(rng)
	return rng.Bool(o.p) || dropped
}
