package chaos

import (
	"errors"
	"strings"
	"testing"

	"mptcplab/internal/netem"
	"mptcplab/internal/sim"
	"mptcplab/internal/units"
)

func TestPresetsParseAndRoundTrip(t *testing.T) {
	for _, name := range PresetNames() {
		sc, err := Parse(name)
		if err != nil {
			t.Fatalf("Parse(%q): %v", name, err)
		}
		if sc.Empty() {
			t.Fatalf("preset %q is empty", name)
		}
		spec := sc.Spec()
		sc2, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(Spec(%q)) = Parse(%q): %v", name, spec, err)
		}
		if sc2.Spec() != spec {
			t.Fatalf("spec not canonical: %q -> %q", spec, sc2.Spec())
		}
		if len(sc.Windows()) == 0 {
			t.Fatalf("preset %q has no fault windows", name)
		}
	}
}

func TestParseOverridesAndCompose(t *testing.T) {
	sc, err := Parse("outage:path=cell;at=1s;dur=250ms+flap:n=2;every=3s")
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Events) != 2 {
		t.Fatalf("events = %d, want 2", len(sc.Events))
	}
	e := sc.Events[0]
	if e.Path != Cell || e.At != sim.Second || e.Dur != 250*sim.Millisecond {
		t.Fatalf("override not applied: %+v", e)
	}
	if f := sc.Events[1]; f.Count != 2 || f.Every != 3*sim.Second {
		t.Fatalf("flap override not applied: %+v", f)
	}
	ws := sc.Windows()
	if len(ws) != 3 { // 1 outage + 2 flaps
		t.Fatalf("windows = %d, want 3", len(ws))
	}
	if ws[0].Start > ws[1].Start || ws[1].Start > ws[2].Start {
		t.Fatalf("windows not sorted: %+v", ws)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	bad := []string{
		"meteor",               // unknown kind
		"outage:path=dsl",      // unknown path
		"outage:dur=xyz",       // bad duration
		"outage:dur=5",         // missing unit
		"outage:gain=3",        // unknown key
		"outage:dur",           // not key=value
		"flap:every=1s;dur=2s", // flap longer than spacing
		"ramp:steps=0",         // zero steps
		"fade:depth=1.5",       // depth out of range
		"storm:every=0s",       // no period
		"outage:dur=0s",        // empty window
	}
	for _, spec := range bad {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", spec)
		}
	}
	// Empty and "none" mean no chaos, not an error.
	for _, spec := range []string{"", "none"} {
		sc, err := Parse(spec)
		if err != nil || !sc.Empty() {
			t.Errorf("Parse(%q) = %+v, %v; want empty, nil", spec, sc, err)
		}
	}
}

func TestTimeRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want sim.Time
	}{
		{"500ms", 500 * sim.Millisecond},
		{"2s", 2 * sim.Second},
		{"1.5s", 1500 * sim.Millisecond},
		{"250us", 250 * sim.Microsecond},
		{"1m", sim.Minute},
	} {
		got, err := ParseTime(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseTime(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
		back, err := ParseTime(FormatTime(got))
		if err != nil || back != got {
			t.Errorf("FormatTime(%v) = %q does not round-trip", got, FormatTime(got))
		}
	}
}

func testLink(s *sim.Simulator, rng *sim.RNG, name string) *netem.Link {
	l := netem.NewLink(s, rng, name)
	l.Rate = 10 * units.Mbps
	l.PropDelay = 10 * sim.Millisecond
	return l
}

func TestApplyOutageTogglesLinks(t *testing.T) {
	s := sim.New()
	rng := sim.NewRNG(1)
	wifi := testLink(s, rng, "wifi")
	cell := testLink(s, rng, "cell")
	sc, _ := Parse("outage:path=wifi;at=1s;dur=500ms")
	var faults []string
	sc.Apply(s, Target{
		WiFi: []*netem.Link{wifi}, Cell: []*netem.Link{cell},
		OnFault: func(name string, _ sim.Time) { faults = append(faults, name) },
	})

	s.RunUntil(1100 * sim.Millisecond)
	if !wifi.IsDown() {
		t.Fatal("wifi link not down during outage window")
	}
	if cell.IsDown() {
		t.Fatal("cell link went down for a wifi outage")
	}
	s.RunUntil(2 * sim.Second)
	if wifi.IsDown() {
		t.Fatal("wifi link still down after outage window")
	}
	if len(faults) != 2 || faults[0] != "outage-wifi-down" || faults[1] != "outage-wifi-up" {
		t.Fatalf("fault marks = %v", faults)
	}
}

func TestApplyRampDegradesAndRestores(t *testing.T) {
	s := sim.New()
	rng := sim.NewRNG(1)
	cell := testLink(s, rng, "cell")
	nominal := cell.Rate
	nominalLoss := cell.Loss
	sc, _ := Parse("ramp:path=cell;at=1s;dur=2s;depth=0.9;loss=0.1;delay=40ms;steps=8")
	sc.Apply(s, Target{Cell: []*netem.Link{cell}})

	// Deep inside the window the link must be degraded on all three
	// axes.
	s.RunUntil(2800 * sim.Millisecond)
	if cell.Rate >= nominal/2 {
		t.Fatalf("rate %v barely degraded from %v late in the ramp", cell.Rate, nominal)
	}
	if cell.PropDelay <= 10*sim.Millisecond {
		t.Fatalf("delay %v did not grow", cell.PropDelay)
	}
	if _, ok := cell.Loss.(overlayLoss); !ok {
		t.Fatalf("no loss overlay applied: %T", cell.Loss)
	}
	// After the window everything snaps back to nominal, exactly.
	s.RunUntil(4 * sim.Second)
	if cell.Rate != nominal || cell.PropDelay != 10*sim.Millisecond || cell.Loss != nominalLoss {
		t.Fatalf("not restored: rate=%v delay=%v loss=%v", cell.Rate, cell.PropDelay, cell.Loss)
	}
}

func TestApplyFadeDipsAndRecovers(t *testing.T) {
	s := sim.New()
	rng := sim.NewRNG(1)
	wifi := testLink(s, rng, "wifi")
	nominal := wifi.Rate
	nominalLoss := wifi.Loss
	sc, _ := Parse("fade:path=wifi;at=1s;dur=4s;depth=0.95;steps=16")
	sc.Apply(s, Target{WiFi: []*netem.Link{wifi}})

	s.RunUntil(3 * sim.Second) // fade midpoint
	if wifi.Rate > nominal/10 {
		t.Fatalf("rate %v at fade bottom, want <= %v", wifi.Rate, nominal/10)
	}
	s.RunUntil(6 * sim.Second)
	if wifi.Rate != nominal || wifi.Loss != nominalLoss {
		t.Fatalf("fade did not restore: rate=%v loss=%v", wifi.Rate, wifi.Loss)
	}
}

func TestApplyStormCallsHooks(t *testing.T) {
	s := sim.New()
	sc, _ := Parse("storm:path=wifi;at=1s;dur=1s;every=250ms")
	var gone, back int
	sc.Apply(s, Target{
		Withdraw: func(p Path) {
			if p != WiFi {
				t.Errorf("withdraw path = %v", p)
			}
			gone++
		},
		Restore: func(Path) { back++ },
	})
	s.RunUntil(5 * sim.Second)
	if gone != 4 || back != 4 {
		t.Fatalf("withdraw/restore = %d/%d, want 4/4", gone, back)
	}
}

// A monitor over synthetic progress functions: flow A sails through,
// flow B stalls across the fault and recovers, flow C never recovers.
func TestMonitorVerdictsAndTTR(t *testing.T) {
	s := sim.New()
	sc, _ := Parse("outage:path=wifi;at=1s;dur=1s")
	m := NewMonitor(s, sc)

	now := func() sim.Time { return s.Now() }
	// A: constant progress, done at 4s.
	aBytes := func() int64 { return int64(now() / sim.Millisecond) }
	a := m.Track("a", aBytes)
	s.At(4*sim.Second, "a-done", func() { a.Done(true) })
	// B: progress except [1s, 3.5s) — stalls through the fault,
	// recovers 2.5s after it clears... TTR ≈ 1.5s past window end.
	b := m.Track("b", func() int64 {
		t := now()
		if t >= sim.Second && t < 3500*sim.Millisecond {
			return int64(sim.Second / sim.Millisecond)
		}
		if t >= 3500*sim.Millisecond {
			return int64((t - 2500*sim.Millisecond) / sim.Millisecond)
		}
		return int64(t / sim.Millisecond)
	})
	s.At(6*sim.Second, "b-done", func() { b.Done(true) })
	// C: freezes at 1s forever.
	m.Track("c", func() int64 {
		if t := now(); t < sim.Second {
			return int64(t / sim.Millisecond)
		}
		return int64(sim.Second / sim.Millisecond)
	})

	s.RunUntil(8 * sim.Second)
	r := m.Finish()

	if len(r.Flows) != 3 {
		t.Fatalf("flows = %d", len(r.Flows))
	}
	byLabel := map[string]FlowReport{}
	for _, fr := range r.Flows {
		byLabel[fr.Label] = fr
	}
	if v := byLabel["a"].Verdict; v != VerdictOK {
		t.Errorf("a verdict = %v, want ok", v)
	}
	if v := byLabel["b"].Verdict; v != VerdictLate {
		t.Errorf("b verdict = %v, want late", v)
	}
	if byLabel["b"].Stalls == 0 || byLabel["b"].LongestStall < 2*sim.Second {
		t.Errorf("b stalls = %+v", byLabel["b"])
	}
	if v := byLabel["c"].Verdict; v != VerdictStalled {
		t.Errorf("c verdict = %v, want stalled", v)
	}
	// B's recovery from the 2s window end happened at ~3.5s.
	rec := byLabel["b"].Recovered()
	if len(rec) != 1 || rec[0] < 1.4 || rec[0] > 1.7 {
		t.Errorf("b TTR = %v, want ~1.5s", rec)
	}
	// A recovered instantly (it never stopped).
	if rec := byLabel["a"].Recovered(); len(rec) != 1 || rec[0] > 0.2 {
		t.Errorf("a TTR = %v, want ~0", rec)
	}
	// C never recovered.
	if byLabel["c"].TTR[0] != ttrPending {
		t.Errorf("c TTR = %v, want unrecovered", byLabel["c"].TTR)
	}
	if r.Unrecovered != 1 {
		t.Errorf("Unrecovered = %d, want 1", r.Unrecovered)
	}
	if g := r.Graceful(); g != "failed" {
		t.Errorf("Graceful = %q with a stalled flow, want failed", g)
	}
	e := r.Export(sc.Spec())
	if e.Flows != 3 || e.OK != 1 || e.Late != 1 || e.Stalled != 1 || e.Graceful != "failed" {
		t.Errorf("export mismatch: %+v", e)
	}
	if e.Recoveries != 2 || e.TTRMaxS < 1.4 {
		t.Errorf("export TTR mismatch: %+v", e)
	}
}

func TestMonitorFaultVsSteadyBytes(t *testing.T) {
	s := sim.New()
	sc, _ := Parse("outage:path=wifi;at=1s;dur=1s")
	m := NewMonitor(s, sc)
	// Steady 1 byte/ms outside the window, zero inside.
	tr := m.Track("f", func() int64 {
		t := s.Now()
		if t < sim.Second {
			return int64(t / sim.Millisecond)
		}
		if t < 2*sim.Second {
			return 1000
		}
		return 1000 + int64((t-2*sim.Second)/sim.Millisecond)
	})
	s.At(3*sim.Second, "done", func() { tr.Done(true) })
	s.RunUntil(4 * sim.Second)
	r := m.Finish()
	fr := r.Flows[0]
	if fr.FaultBytes > 100 {
		t.Errorf("FaultBytes = %d, want ~0 (flow idle during outage)", fr.FaultBytes)
	}
	if fr.SteadyBytes < 1800 {
		t.Errorf("SteadyBytes = %d, want ~2000", fr.SteadyBytes)
	}
	if r.SteadyGoodput() <= r.FaultGoodput() {
		t.Errorf("steady %v <= fault %v goodput", r.SteadyGoodput(), r.FaultGoodput())
	}
}

func TestArmWatchdogCatchesLivelock(t *testing.T) {
	s := sim.New()
	var spin func()
	spin = func() { s.At(s.Now(), "spin", spin) }
	s.At(10*sim.Millisecond, "start", spin)
	ArmWatchdog(s, 0)
	s.RunUntil(sim.Second)
	if !errors.Is(s.AbortErr(), ErrLivelock) {
		t.Fatalf("AbortErr = %v, want ErrLivelock", s.AbortErr())
	}
}

func TestArmWatchdogPassesHealthyRun(t *testing.T) {
	s := sim.New()
	n := 0
	var tick func()
	tick = func() {
		if n++; n < 3_000_000 {
			s.After(sim.Microsecond, "tick", tick)
		}
	}
	s.After(sim.Microsecond, "tick", tick)
	ArmWatchdog(s, 0)
	s.Run()
	if s.AbortErr() != nil {
		t.Fatalf("healthy run aborted: %v", s.AbortErr())
	}
}

func TestContainConvertsPanic(t *testing.T) {
	err := Contain(func() { panic("kaboom") })
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("Contain = %v, want panic text", err)
	}
	if err := Contain(func() {}); err != nil {
		t.Fatalf("Contain of clean fn = %v", err)
	}
}
