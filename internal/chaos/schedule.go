// Package chaos turns path disruption into a first-class, schedulable,
// measured subsystem. A Schedule is a declarative, deterministic
// timeline of faults — outages, link flaps, handover storms,
// progressive rate/loss/delay ramps, and radio signal fades — applied
// to any topology through a small Target adapter. A Monitor samples
// per-flow progress against the schedule's fault windows and produces
// a resilience Report: stall spans, time-to-recover after each fault,
// bytes moved during faults vs steady state, and a did-it-degrade-
// gracefully verdict.
//
// Everything is driven by simulator virtual time, so a chaos run is a
// pure function of (seed, schedule spec): exports are byte-identical
// at any worker count, and the compact spec string rides inside replay
// tokens (`chaos=outage:path=wifi;at=5s;dur=3s`).
package chaos

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"mptcplab/internal/sim"
)

// Path selects which access network a fault hits.
type Path int

// Fault targets.
const (
	WiFi Path = iota
	Cell
	Both
)

// String names the path in spec grammar form.
func (p Path) String() string {
	switch p {
	case WiFi:
		return "wifi"
	case Cell:
		return "cell"
	case Both:
		return "both"
	default:
		return "unknown"
	}
}

func parsePath(s string) (Path, error) {
	switch s {
	case "wifi":
		return WiFi, nil
	case "cell":
		return Cell, nil
	case "both":
		return Both, nil
	default:
		return 0, fmt.Errorf("chaos: unknown path %q (want wifi|cell|both)", s)
	}
}

// Kind is the fault family.
type Kind int

// Fault kinds.
const (
	// Outage takes the path's links down at At and up at At+Dur.
	Outage Kind = iota
	// Flap repeats Count short outages of Dur each, starting every
	// Every from At.
	Flap
	// Storm withdraws the path's addresses and re-adds them on a fresh
	// port, once per Every across [At, At+Dur] — a handover storm.
	Storm
	// Ramp degrades the path progressively across [At, At+Dur] in
	// Steps linear steps: rate down to (1-Depth)×nominal, Loss extra
	// random loss, ExtraDelay extra propagation delay; nominal values
	// snap back at the end of the window.
	Ramp
	// Fade applies the pathmodel raised-cosine signal fade across
	// [At, At+Dur] in Steps steps: capacity dips to (1-Depth)× at the
	// midpoint and recovers symmetrically, with fade-depth loss.
	Fade
)

// String names the kind in spec grammar form.
func (k Kind) String() string {
	switch k {
	case Outage:
		return "outage"
	case Flap:
		return "flap"
	case Storm:
		return "storm"
	case Ramp:
		return "ramp"
	case Fade:
		return "fade"
	default:
		return "unknown"
	}
}

func parseKind(s string) (Kind, error) {
	switch s {
	case "outage":
		return Outage, nil
	case "flap":
		return Flap, nil
	case "storm":
		return Storm, nil
	case "ramp":
		return Ramp, nil
	case "fade":
		return Fade, nil
	default:
		return 0, fmt.Errorf("chaos: unknown schedule kind %q (want outage|flap|storm|ramp|fade)", s)
	}
}

// Event is one scheduled fault. Which fields matter depends on Kind;
// Parse fills unused ones with zero values and Spec omits them.
type Event struct {
	Kind Kind
	Path Path
	At   sim.Time // fault start
	Dur  sim.Time // outage length / window length
	// Flap and Storm repetition.
	Every sim.Time
	Count int
	// Ramp and Fade shape.
	Depth      float64
	Loss       float64
	ExtraDelay sim.Time
	Steps      int
}

// Schedule is a named list of fault events applied to one run.
type Schedule struct {
	Name   string
	Events []Event
}

// Empty reports whether the schedule does nothing.
func (sc Schedule) Empty() bool { return len(sc.Events) == 0 }

// Window is one fault interval, used by the Monitor to classify bytes
// and measure time-to-recover.
type Window struct {
	Name       string
	Start, End sim.Time
}

// Windows flattens the schedule into its fault intervals, in start
// order. A Flap contributes one window per repetition; Ramp/Fade/Storm
// contribute their whole active span.
func (sc Schedule) Windows() []Window {
	var ws []Window
	for _, e := range sc.Events {
		switch e.Kind {
		case Flap:
			for i := 0; i < e.Count; i++ {
				at := e.At + sim.Time(i)*e.Every
				ws = append(ws, Window{
					Name:  fmt.Sprintf("%s-%s-%d", e.Kind, e.Path, i),
					Start: at, End: at + e.Dur,
				})
			}
		default:
			ws = append(ws, Window{
				Name:  fmt.Sprintf("%s-%s", e.Kind, e.Path),
				Start: e.At, End: e.At + e.Dur,
			})
		}
	}
	sort.SliceStable(ws, func(i, j int) bool { return ws[i].Start < ws[j].Start })
	return ws
}

// End reports when the last fault activity finishes.
func (sc Schedule) End() sim.Time {
	var end sim.Time
	for _, w := range sc.Windows() {
		if w.End > end {
			end = w.End
		}
	}
	return end
}

// Named returns a preset schedule by name — the spec grammar's
// starting points, each overridable with key=value settings.
func Named(name string) (Schedule, error) {
	switch name {
	case "outage":
		// The paper's §5 scenario: a mid-transfer WiFi blackout.
		return Schedule{Name: name, Events: []Event{{
			Kind: Outage, Path: WiFi, At: 5 * sim.Second, Dur: 3 * sim.Second,
		}}}, nil
	case "flap":
		// Walking along the edge of AP coverage: 5 half-second drops
		// spaced 2 s apart.
		return Schedule{Name: name, Events: []Event{{
			Kind: Flap, Path: WiFi, At: 2 * sim.Second,
			Dur: 500 * sim.Millisecond, Every: 2 * sim.Second, Count: 5,
		}}}, nil
	case "storm":
		// Handover storm: the WiFi address is withdrawn and re-added
		// every 200 ms for 3 s.
		return Schedule{Name: name, Events: []Event{{
			Kind: Storm, Path: WiFi, At: 2 * sim.Second,
			Dur: 3 * sim.Second, Every: 200 * sim.Millisecond,
		}}}, nil
	case "ramp":
		// Progressive congestion on the cellular sector: capacity
		// drains to 10%, loss climbs to 2%, +50 ms delay, over 10 s.
		return Schedule{Name: name, Events: []Event{{
			Kind: Ramp, Path: Cell, At: 2 * sim.Second, Dur: 10 * sim.Second,
			Depth: 0.9, Loss: 0.02, ExtraDelay: 50 * sim.Millisecond, Steps: 16,
		}}}, nil
	case "fade":
		// Driving through a coverage dip: a deep raised-cosine WiFi
		// fade over 6 s.
		return Schedule{Name: name, Events: []Event{{
			Kind: Fade, Path: WiFi, At: 2 * sim.Second, Dur: 6 * sim.Second,
			Depth: 0.95, Steps: 24,
		}}}, nil
	default:
		return Schedule{}, fmt.Errorf("chaos: unknown schedule %q (want outage|flap|storm|ramp|fade)", name)
	}
}

// PresetNames lists the built-in schedule names.
func PresetNames() []string { return []string{"outage", "flap", "storm", "ramp", "fade"} }

// Parse builds a schedule from a compact spec:
//
//	kind[:key=val;key=val...][+kind[:...]...]
//
// e.g. "outage:path=wifi;at=5s;dur=3s" or "flap+ramp:path=cell".
// Each clause starts from the preset of its kind, then overrides
// fields. Separators are chosen so a spec embeds verbatim in the
// comma-separated replay-token grammar. Keys: path, at, dur, every,
// n (count), depth, loss, delay, steps.
func Parse(spec string) (Schedule, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "none" {
		return Schedule{}, nil
	}
	out := Schedule{Name: spec}
	for _, clause := range strings.Split(spec, "+") {
		name, rest, _ := strings.Cut(clause, ":")
		base, err := Named(strings.TrimSpace(name))
		if err != nil {
			return Schedule{}, err
		}
		ev := base.Events[0]
		if rest != "" {
			for _, kv := range strings.Split(rest, ";") {
				k, v, ok := strings.Cut(kv, "=")
				if !ok {
					return Schedule{}, fmt.Errorf("chaos: bad setting %q in %q (want key=value)", kv, clause)
				}
				if err := ev.set(strings.TrimSpace(k), strings.TrimSpace(v)); err != nil {
					return Schedule{}, err
				}
			}
		}
		if err := ev.validate(); err != nil {
			return Schedule{}, err
		}
		out.Events = append(out.Events, ev)
	}
	return out, nil
}

func (e *Event) set(key, val string) error {
	switch key {
	case "path":
		p, err := parsePath(val)
		if err != nil {
			return err
		}
		e.Path = p
	case "at":
		return setTime(&e.At, key, val)
	case "dur":
		return setTime(&e.Dur, key, val)
	case "every":
		return setTime(&e.Every, key, val)
	case "delay":
		return setTime(&e.ExtraDelay, key, val)
	case "n":
		n, err := strconv.Atoi(val)
		if err != nil || n < 0 {
			return fmt.Errorf("chaos: bad n=%q (want non-negative integer)", val)
		}
		e.Count = n
	case "steps":
		n, err := strconv.Atoi(val)
		if err != nil || n < 1 {
			return fmt.Errorf("chaos: bad steps=%q (want positive integer)", val)
		}
		e.Steps = n
	case "depth":
		f, err := strconv.ParseFloat(val, 64)
		if err != nil || f < 0 || f > 1 {
			return fmt.Errorf("chaos: bad depth=%q (want 0..1)", val)
		}
		e.Depth = f
	case "loss":
		f, err := strconv.ParseFloat(val, 64)
		if err != nil || f < 0 || f > 1 {
			return fmt.Errorf("chaos: bad loss=%q (want 0..1)", val)
		}
		e.Loss = f
	default:
		return fmt.Errorf("chaos: unknown setting %q", key)
	}
	return nil
}

func setTime(dst *sim.Time, key, val string) error {
	t, err := ParseTime(val)
	if err != nil {
		return fmt.Errorf("chaos: bad %s=%q: %v", key, val, err)
	}
	*dst = t
	return nil
}

func (e *Event) validate() error {
	if e.Dur <= 0 && e.Kind != Flap {
		return fmt.Errorf("chaos: %s needs dur > 0", e.Kind)
	}
	switch e.Kind {
	case Flap:
		if e.Dur <= 0 || e.Every <= 0 || e.Count < 1 {
			return fmt.Errorf("chaos: flap needs dur > 0, every > 0, n >= 1")
		}
		if e.Dur >= e.Every {
			return fmt.Errorf("chaos: flap dur (%v) must be shorter than its spacing every (%v)", e.Dur, e.Every)
		}
	case Storm:
		if e.Every <= 0 {
			return fmt.Errorf("chaos: storm needs every > 0")
		}
	case Ramp, Fade:
		if e.Steps < 1 {
			return fmt.Errorf("chaos: %s needs steps >= 1", e.Kind)
		}
	}
	return nil
}

// Spec renders the schedule back into the Parse grammar, canonical
// (every meaningful field explicit) so tokens round-trip exactly.
func (sc Schedule) Spec() string {
	if sc.Empty() {
		return "none"
	}
	var clauses []string
	for _, e := range sc.Events {
		kv := []string{"path=" + e.Path.String(), "at=" + FormatTime(e.At), "dur=" + FormatTime(e.Dur)}
		switch e.Kind {
		case Flap:
			kv = append(kv, "every="+FormatTime(e.Every), "n="+strconv.Itoa(e.Count))
		case Storm:
			kv = append(kv, "every="+FormatTime(e.Every))
		case Ramp:
			kv = append(kv,
				"depth="+strconv.FormatFloat(e.Depth, 'g', -1, 64),
				"loss="+strconv.FormatFloat(e.Loss, 'g', -1, 64),
				"delay="+FormatTime(e.ExtraDelay),
				"steps="+strconv.Itoa(e.Steps))
		case Fade:
			kv = append(kv,
				"depth="+strconv.FormatFloat(e.Depth, 'g', -1, 64),
				"steps="+strconv.Itoa(e.Steps))
		}
		clauses = append(clauses, e.Kind.String()+":"+strings.Join(kv, ";"))
	}
	return strings.Join(clauses, "+")
}

// ParseTime reads a duration like "500ms", "2s", "1.5s", "250us".
func ParseTime(s string) (sim.Time, error) {
	var unit sim.Time
	var num string
	switch {
	case strings.HasSuffix(s, "ms"):
		unit, num = sim.Millisecond, strings.TrimSuffix(s, "ms")
	case strings.HasSuffix(s, "us"):
		unit, num = sim.Microsecond, strings.TrimSuffix(s, "us")
	case strings.HasSuffix(s, "m"):
		unit, num = sim.Minute, strings.TrimSuffix(s, "m")
	case strings.HasSuffix(s, "s"):
		unit, num = sim.Second, strings.TrimSuffix(s, "s")
	default:
		return 0, fmt.Errorf("missing unit (ms|us|s|m)")
	}
	f, err := strconv.ParseFloat(num, 64)
	if err != nil || f < 0 {
		return 0, fmt.Errorf("bad number %q", num)
	}
	return sim.Time(f * float64(unit)), nil
}

// FormatTime renders a sim duration in the largest exact unit, the
// inverse of ParseTime.
func FormatTime(t sim.Time) string {
	switch {
	case t%sim.Second == 0:
		return strconv.FormatInt(int64(t/sim.Second), 10) + "s"
	case t%sim.Millisecond == 0:
		return strconv.FormatInt(int64(t/sim.Millisecond), 10) + "ms"
	default:
		return strconv.FormatInt(int64(t/sim.Microsecond), 10) + "us"
	}
}
