package chaos

// ReportExport is the flat, serializable form of a resilience Report —
// one record per run, appended to the sweep's export row. Everything
// here derives from virtual time, so equal seeds and specs export
// byte-identically regardless of worker count or wall clock.
type ReportExport struct {
	Schedule string `json:"chaos"`

	Flows      int `json:"res_flows"`
	OK         int `json:"res_ok"`
	Late       int `json:"res_late"`
	Incomplete int `json:"res_incomplete"`
	Stalled    int `json:"res_stalled"`
	Aborted    int `json:"res_aborted"`

	Stalls        int     `json:"res_stalls"`
	LongestStallS float64 `json:"res_longest_stall_s"`
	StallMeanS    float64 `json:"res_stall_s_mean"`

	Recoveries  int     `json:"res_recoveries"`
	Unrecovered int     `json:"res_unrecovered"`
	TTRMeanS    float64 `json:"res_ttr_s_mean"`
	TTRMaxS     float64 `json:"res_ttr_s_max"`

	FaultBytes  int64   `json:"res_fault_bytes"`
	SteadyBytes int64   `json:"res_steady_bytes"`
	FaultBps    float64 `json:"res_fault_bps"`
	SteadyBps   float64 `json:"res_steady_bps"`

	// Per-path delivery-rate telemetry (bits/sec means of the
	// per-tick RateEstimator samples, split by fault-window
	// membership) and per-path mean recovery time after fault windows
	// — zero when the run wired no Monitor.PathRates source.
	WiFiFaultBps  float64 `json:"res_wifi_fault_bps"`
	WiFiSteadyBps float64 `json:"res_wifi_steady_bps"`
	WiFiTTRSec    float64 `json:"res_wifi_ttr_s"`
	CellFaultBps  float64 `json:"res_cell_fault_bps"`
	CellSteadyBps float64 `json:"res_cell_steady_bps"`
	CellTTRSec    float64 `json:"res_cell_ttr_s"`

	Retries  int `json:"res_retries"`
	Timeouts int `json:"res_timeouts"`

	Graceful string `json:"res_graceful"`
}

// Export flattens the report for one run under the given spec.
func (r *Report) Export(spec string) ReportExport {
	e := ReportExport{
		Schedule:      spec,
		Flows:         len(r.Flows),
		OK:            r.OK,
		Late:          r.Late,
		Incomplete:    r.Incomplete,
		Stalled:       r.Stalled,
		Aborted:       r.Aborted,
		Stalls:        r.TotalStalls,
		LongestStallS: r.LongestStall.Seconds(),
		Recoveries:    int(r.TTRAcc.N()),
		Unrecovered:   r.Unrecovered,
		FaultBytes:    r.FaultBytes,
		SteadyBytes:   r.SteadyBytes,
		FaultBps:      8 * r.FaultGoodput(),
		SteadyBps:     8 * r.SteadyGoodput(),
		Retries:       r.Retries,
		Timeouts:      r.Timeouts,
		Graceful:      r.Graceful(),
	}
	if r.StallAcc.N() > 0 {
		e.StallMeanS = r.StallAcc.Mean()
	}
	if r.TTRAcc.N() > 0 {
		e.TTRMeanS = r.TTRAcc.Mean()
		e.TTRMaxS = r.TTRAcc.Max()
	}
	if r.WiFiFaultRate.N() > 0 {
		e.WiFiFaultBps = 8 * r.WiFiFaultRate.Mean()
	}
	if r.WiFiSteadyRate.N() > 0 {
		e.WiFiSteadyBps = 8 * r.WiFiSteadyRate.Mean()
	}
	if r.CellFaultRate.N() > 0 {
		e.CellFaultBps = 8 * r.CellFaultRate.Mean()
	}
	if r.CellSteadyRate.N() > 0 {
		e.CellSteadyBps = 8 * r.CellSteadyRate.Mean()
	}
	if r.WiFiPathTTR.N() > 0 {
		e.WiFiTTRSec = r.WiFiPathTTR.Mean()
	}
	if r.CellPathTTR.N() > 0 {
		e.CellTTRSec = r.CellPathTTR.Mean()
	}
	return e
}
