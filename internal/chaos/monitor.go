package chaos

import (
	"mptcplab/internal/sim"
	"mptcplab/internal/stats"
)

// Verdict classifies how one flow weathered the schedule.
type Verdict int

// Per-flow outcomes, from best to worst.
const (
	// VerdictOK: completed without ever stalling.
	VerdictOK Verdict = iota
	// VerdictLate: completed, but with at least one stall span —
	// degraded gracefully.
	VerdictLate
	// VerdictIncomplete: still making progress when the run ended.
	VerdictIncomplete
	// VerdictStalled: never completed and was not progressing at the
	// end — stalled forever as far as this run can tell.
	VerdictStalled
	// VerdictAborted: the application or harness gave up on the flow.
	VerdictAborted
)

// String names the verdict for exports.
func (v Verdict) String() string {
	switch v {
	case VerdictOK:
		return "ok"
	case VerdictLate:
		return "late"
	case VerdictIncomplete:
		return "incomplete"
	case VerdictStalled:
		return "stalled"
	case VerdictAborted:
		return "aborted"
	default:
		return "unknown"
	}
}

// Monitor samples per-flow progress counters on a fixed virtual-time
// tick and scores each flow against the schedule's fault windows.
// Everything it records is in simulator time, so reports are exactly
// reproducible. Stall spans and recovery times are quantized to the
// sampling period.
type Monitor struct {
	// Period is the sampling tick (default 50 ms).
	Period sim.Time
	// StallAfter is how long a flow must go without progress before a
	// stall span opens (default 1 s).
	StallAfter sim.Time
	// TimeoutAfter is the no-progress span counted as an app-level
	// timeout (default 5 s); each crossing increments Timeouts once.
	TimeoutAfter sim.Time

	// PathRates, when set, is sampled once per tick: the instantaneous
	// aggregate delivery rate on each access path, in bytes of
	// cumulatively ACKed payload per second (the per-subflow
	// RateEstimator telemetry, summed over live sender connections).
	// The samples split by fault-window membership and feed the
	// report's per-path fault/steady rates and per-path recovery
	// times, so a fade can be asserted path by path. Everything it
	// returns must derive from virtual time only.
	PathRates func() (wifi, cell float64)

	sim     *sim.Simulator
	windows []Window
	flows   []*Tracked
	marks   []Mark
	closed  bool

	// Per-path tick telemetry (index 0 = WiFi, 1 = cellular).
	pathFault  [2]stats.Acc
	pathSteady [2]stats.Acc
	pathRecov  [2][]sim.Time // per schedule window, like Tracked.recov
}

// Mark is one fault transition the schedule reported via OnFault.
type Mark struct {
	Name string
	At   sim.Time
}

// NewMonitor builds a monitor for one run of the schedule and starts
// its sampling tick. The tick re-arms itself until Finish, so drive
// the simulator with RunUntil/RunFor (Run would never drain).
func NewMonitor(s *sim.Simulator, sc Schedule) *Monitor {
	m := &Monitor{
		Period:       50 * sim.Millisecond,
		StallAfter:   sim.Second,
		TimeoutAfter: 5 * sim.Second,
		sim:          s,
		windows:      sc.Windows(),
	}
	for p := range m.pathRecov {
		m.pathRecov[p] = make([]sim.Time, len(m.windows))
		for i := range m.pathRecov[p] {
			m.pathRecov[p][i] = ttrPending
		}
	}
	s.After(m.Period, "chaos-monitor", m.tick)
	return m
}

// OnFault records a fault transition; pass it as (or call it from)
// Target.OnFault.
func (m *Monitor) OnFault(name string, at sim.Time) {
	m.marks = append(m.marks, Mark{Name: name, At: at})
}

// Track registers a flow. progress must return a monotone byte count
// (e.g. web.Getter.BytesReceived); it is polled every Period until
// Done or Abort.
func (m *Monitor) Track(label string, progress func() int64) *Tracked {
	tr := &Tracked{
		m: m, Label: label, progress: progress,
		started: m.sim.Now(), lastChange: m.sim.Now(),
		endAt: -1,
		recov: make([]sim.Time, len(m.windows)),
	}
	for i := range tr.recov {
		tr.recov[i] = ttrPending
	}
	// Windows fully before this flow's start never disrupted it.
	for i, w := range m.windows {
		if w.End <= tr.started {
			tr.recov[i] = ttrNA
		}
	}
	m.flows = append(m.flows, tr)
	return tr
}

// Tracked is the monitor's per-flow state.
type Tracked struct {
	m        *Monitor
	Label    string
	progress func() int64

	started    sim.Time
	endAt      sim.Time // -1 while running
	last       int64
	lastChange sim.Time

	stalled      bool
	stallStart   sim.Time
	stalls       int
	stallTime    sim.Time
	longestStall sim.Time
	timedOut     bool
	timeouts     int
	retries      int

	faultBytes int64
	faultDur   sim.Time
	steadyDur  sim.Time

	completed bool
	aborted   bool
	recov     []sim.Time
}

// Sentinels in Tracked.recov.
const (
	ttrPending sim.Time = -1 // window passed (or pending), no recovery seen yet
	ttrNA      sim.Time = -2 // window outside the flow's lifetime
)

// Retry records an application-level retry against this flow.
func (t *Tracked) Retry() { t.retries++ }

// Done marks the flow finished. completed distinguishes a transfer
// that delivered all its bytes from one cut off by the run ending.
func (t *Tracked) Done(completed bool) {
	if t.endAt >= 0 {
		return
	}
	t.observe(t.m.sim.Now())
	t.endAt = t.m.sim.Now()
	t.completed = completed
	t.closeStall(t.endAt)
	for i, w := range t.m.windows {
		if t.recov[i] == ttrPending && w.Start >= t.endAt {
			t.recov[i] = ttrNA // the flow was gone before this fault hit
		}
	}
}

// Abort marks the flow given up on (application or harness decision).
func (t *Tracked) Abort() {
	if t.endAt >= 0 {
		return
	}
	t.Done(false)
	t.aborted = true
}

// observe folds one progress sample at virtual time now into the
// flow's accounting.
func (t *Tracked) observe(now sim.Time) {
	cur := t.progress()
	delta := cur - t.last
	t.last = cur

	inFault := false
	for _, w := range t.m.windows {
		if now >= w.Start && now < w.End {
			inFault = true
			break
		}
	}
	if inFault {
		t.faultBytes += delta
		t.faultDur += t.m.Period
	} else {
		t.steadyDur += t.m.Period
	}

	if delta > 0 {
		// Progress: close any open stall span and credit recovery to
		// every fault window already behind us.
		t.closeStall(now)
		t.lastChange = now
		for i, w := range t.m.windows {
			if t.recov[i] == ttrPending && now >= w.End {
				t.recov[i] = now - w.End
			}
		}
		return
	}
	idle := now - t.lastChange
	if !t.stalled && idle >= t.m.StallAfter {
		t.stalled = true
		t.stallStart = t.lastChange
		t.stalls++
	}
	if !t.timedOut && idle >= t.m.TimeoutAfter {
		t.timedOut = true
		t.timeouts++
	}
}

func (t *Tracked) closeStall(now sim.Time) {
	if !t.stalled {
		return
	}
	span := now - t.stallStart
	t.stallTime += span
	if span > t.longestStall {
		t.longestStall = span
	}
	t.stalled = false
	t.timedOut = false
}

// verdict scores the flow once the run is over.
func (t *Tracked) verdict() Verdict {
	switch {
	case t.aborted:
		return VerdictAborted
	case t.completed && t.stalls == 0:
		return VerdictOK
	case t.completed:
		return VerdictLate
	case t.stalled:
		return VerdictStalled
	default:
		return VerdictIncomplete
	}
}

func (m *Monitor) tick() {
	if m.closed {
		return
	}
	now := m.sim.Now()
	for _, t := range m.flows {
		if t.endAt < 0 {
			t.observe(now)
		}
	}
	if m.PathRates != nil {
		m.observePaths(now)
	}
	m.sim.After(m.Period, "chaos-monitor", m.tick)
}

// observePaths folds one per-path delivery-rate sample: into the
// fault or steady accumulator by window membership, and — for every
// fault window already behind us that the path has not delivered
// since — a recovery credit the first time the path's rate comes back
// above zero (quantized to the sampling period, like flow TTRs).
func (m *Monitor) observePaths(now sim.Time) {
	wifi, cell := m.PathRates()
	inFault := false
	for _, w := range m.windows {
		if now >= w.Start && now < w.End {
			inFault = true
			break
		}
	}
	for p, rate := range [2]float64{wifi, cell} {
		if inFault {
			m.pathFault[p].Add(rate)
		} else {
			m.pathSteady[p].Add(rate)
		}
		if rate <= 0 {
			continue
		}
		for i, w := range m.windows {
			if m.pathRecov[p][i] == ttrPending && now >= w.End {
				m.pathRecov[p][i] = now - w.End
			}
		}
	}
}

// Finish stops sampling, finalizes every still-running flow's state at
// the current virtual time, and builds the resilience report.
func (m *Monitor) Finish() *Report {
	m.closed = true
	now := m.sim.Now()
	r := &Report{Windows: m.windows, Marks: m.marks}
	r.WiFiFaultRate, r.CellFaultRate = m.pathFault[0], m.pathFault[1]
	r.WiFiSteadyRate, r.CellSteadyRate = m.pathSteady[0], m.pathSteady[1]
	for p, recov := range m.pathRecov {
		for _, t := range recov {
			if t < 0 {
				continue // never recovered, or window past run end
			}
			if p == 0 {
				r.WiFiPathTTR.Add(t.Seconds())
			} else {
				r.CellPathTTR.Add(t.Seconds())
			}
		}
	}
	for _, t := range m.flows {
		if t.endAt < 0 {
			t.observe(now)
			// Leave endAt unset: the verdict distinguishes stalled
			// from still-progressing via the open stall state.
			if t.stalled {
				// The span is still open; account it through now.
				t.closeStall(now)
				t.stalled = true
			}
		}
		fr := FlowReport{
			Label:        t.Label,
			Verdict:      t.verdict(),
			Stalls:       t.stalls,
			StallTime:    t.stallTime,
			LongestStall: t.longestStall,
			FaultBytes:   t.faultBytes,
			SteadyBytes:  t.last - t.faultBytes,
			FaultDur:     t.faultDur,
			SteadyDur:    t.steadyDur,
			Retries:      t.retries,
			Timeouts:     t.timeouts,
			TTR:          t.recov,
		}
		r.absorb(fr)
	}
	r.finish()
	return r
}

// FlowReport is the per-flow resilience record.
type FlowReport struct {
	Label        string
	Verdict      Verdict
	Stalls       int
	StallTime    sim.Time
	LongestStall sim.Time
	FaultBytes   int64
	SteadyBytes  int64
	FaultDur     sim.Time
	SteadyDur    sim.Time
	Retries      int
	Timeouts     int
	// TTR holds, per schedule window, the delay between the fault
	// clearing and this flow's first progress afterwards (quantized to
	// the sampling period); ttrPending (-1) if it never recovered,
	// ttrNA (-2) if the window missed the flow's lifetime.
	TTR []sim.Time
}

// Recovered reports the usable TTR samples, in seconds.
func (fr FlowReport) Recovered() []float64 {
	var out []float64
	for _, t := range fr.TTR {
		if t >= 0 {
			out = append(out, t.Seconds())
		}
	}
	return out
}

// Report aggregates resilience over every tracked flow of one run.
// Per-flow records are kept (experiments have one; fleet runs
// thousands — bounded, since flows are already bounded per run).
type Report struct {
	Windows []Window
	Marks   []Mark
	Flows   []FlowReport

	OK, Late, Incomplete, Stalled, Aborted int

	TotalStalls  int
	LongestStall sim.Time
	StallAcc     stats.Acc // per-flow total stall seconds
	TTRAcc       stats.Acc // per-recovery seconds
	Unrecovered  int       // fault windows a flow never recovered from

	FaultBytes, SteadyBytes int64
	FaultDur, SteadyDur     sim.Time

	// Per-path delivery-rate telemetry from Monitor.PathRates (all
	// zero when no source was wired): per-tick delivery-rate samples
	// in bytes/sec split by fault-window membership, and the per-
	// schedule-window recovery times of each path in seconds.
	WiFiFaultRate, WiFiSteadyRate stats.Acc
	CellFaultRate, CellSteadyRate stats.Acc
	WiFiPathTTR, CellPathTTR      stats.Acc

	Retries, Timeouts int
}

func (r *Report) absorb(fr FlowReport) {
	r.Flows = append(r.Flows, fr)
	switch fr.Verdict {
	case VerdictOK:
		r.OK++
	case VerdictLate:
		r.Late++
	case VerdictIncomplete:
		r.Incomplete++
	case VerdictStalled:
		r.Stalled++
	case VerdictAborted:
		r.Aborted++
	}
	r.TotalStalls += fr.Stalls
	if fr.LongestStall > r.LongestStall {
		r.LongestStall = fr.LongestStall
	}
	if fr.StallTime > 0 {
		r.StallAcc.Add(fr.StallTime.Seconds())
	}
	for _, t := range fr.TTR {
		switch {
		case t >= 0:
			r.TTRAcc.Add(t.Seconds())
		case t == ttrPending:
			r.Unrecovered++
		}
	}
	r.FaultBytes += fr.FaultBytes
	r.SteadyBytes += fr.SteadyBytes
	r.FaultDur += fr.FaultDur
	r.SteadyDur += fr.SteadyDur
	r.Retries += fr.Retries
	r.Timeouts += fr.Timeouts
}

func (r *Report) finish() {}

// FaultGoodput is the aggregate bytes/sec flows managed inside fault
// windows; SteadyGoodput the same outside them.
func (r *Report) FaultGoodput() float64 {
	if r.FaultDur <= 0 {
		return 0
	}
	return float64(r.FaultBytes) / r.FaultDur.Seconds()
}

// SteadyGoodput reports bytes/sec outside fault windows.
func (r *Report) SteadyGoodput() float64 {
	if r.SteadyDur <= 0 {
		return 0
	}
	return float64(r.SteadyBytes) / r.SteadyDur.Seconds()
}

// Graceful renders the run's degrade-gracefully verdict: "graceful"
// when every flow completed (on time or late), "degraded" when some
// were cut off but nothing wedged, "failed" when any flow stalled
// forever or was aborted.
func (r *Report) Graceful() string {
	switch {
	case r.Stalled > 0 || r.Aborted > 0:
		return "failed"
	case r.Incomplete > 0:
		return "degraded"
	default:
		return "graceful"
	}
}
