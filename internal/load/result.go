package load

import (
	"mptcplab/internal/chaos"
	"mptcplab/internal/check"
	"mptcplab/internal/netem"
	"mptcplab/internal/sim"
	"mptcplab/internal/stats"
	"mptcplab/internal/units"
)

// Flow-size class boundaries for FCT breakdown: the paper's small-flow
// regime (where MPTCP underperforms), the mid-range crossover, and the
// bulk regime (where aggregation wins).
const (
	SmallFlowMax  = 64 * units.KB
	MediumFlowMax = 4 * units.MB
)

// FCT histogram geometry: 1 ms to 10,000 s in 256 log-spaced bins
// gives a worst-case relative quantile error of about 13% — fixed
// memory for any number of flows.
const (
	fctLo   = 1e-3
	fctHi   = 1e4
	fctBins = 256
)

// LinkUtil is one link's end-of-run accounting.
type LinkUtil struct {
	Name        string
	Rate        units.BitRate
	Bytes       int64
	Sent        uint64
	MediumDrop  uint64
	QueueDrop   uint64
	Utilization float64 // delivered bits / (rate x sim time)
}

// Result accumulates one fleet run's metrics. Every per-flow statistic
// streams through a bounded-memory estimator the moment the flow
// completes, so the result's footprint is O(histogram bins) no matter
// how many flows the run pushed — the acceptance criterion that lets
// campaigns scale to "millions of users" territory.
type Result struct {
	Clients  int
	Seed     int64
	Duration sim.Time
	Drain    sim.Time

	// Flow counts: Offered arrivals, Started stacks, Completed
	// transfers; Incomplete = still in flight when the run ended.
	Offered    int
	Started    int
	Completed  int
	Incomplete int

	// Flow completion time in seconds: overall and per size class.
	FCT       *stats.LogHist
	FCTSmall  *stats.LogHist
	FCTMedium *stats.LogHist
	FCTLarge  *stats.LogHist

	// Streaming FCT quantiles (P² — cross-checked against the
	// histogram in tests).
	FCTp50 *stats.P2Quantile
	FCTp90 *stats.P2Quantile
	FCTp99 *stats.P2Quantile

	// Per-completed-flow goodput in bit/s; Goodput.Jain() is the
	// fairness index over all completed flows.
	Goodput stats.Acc

	// Delivered application bytes, all completed flows.
	BytesDelivered int64

	// Redundancy accounting. Redundant schedulers send each byte once
	// per path; the extra copies appear here — DupTxBytes scheduled by
	// server (sender) connections, DupRxBytes discarded by client
	// reorder buffers — and are excluded from Goodput, BytesDelivered,
	// and the retransmission counters, which measure useful bytes only.
	DupTxBytes int64
	DupRxBytes int64

	// Sender-side per-path accounting (server endpoints, classified by
	// client address: CGNAT 100.64/10 = cellular).
	WiFiBytes       int64
	CellBytes       int64
	WiFiRetrans     int64
	CellRetrans     int64
	WiFiPkts        uint64
	CellPkts        uint64
	WiFiRetransPkts uint64
	CellRetransPkts uint64

	// Per-path delivered (cumulatively ACKed) bytes from the MPTCP
	// subflow delivery-rate telemetry — the numerator the adaptive
	// scheduler weights by. Unlike BytesSent this excludes
	// retransmissions and in-flight losses, so the pair (sent, acked)
	// exposes each path's waste directly in the export.
	WiFiAckedBytes int64
	CellAckedBytes int64

	// Per-link utilization over the full run (access + LAN).
	Links []LinkUtil

	// Failed marks a run the harness killed (watchdog deadline or
	// livelock) or contained after a panic; FailReason is a one-line
	// explanation. Whatever statistics accumulated before the kill are
	// still present above.
	Failed     bool
	FailReason string

	// Resilience is the chaos monitor's report (nil when the run had
	// no schedule); ChaosSpec is the canonical schedule spec it ran.
	Resilience *chaos.Report
	ChaosSpec  string

	// Execution metadata.
	Events         uint64
	SimEnd         sim.Time
	Violations     int
	FirstViolation string
}

func newResult(cfg Config) *Result {
	return &Result{
		Clients:   cfg.Clients,
		Seed:      cfg.Seed,
		Duration:  cfg.Duration,
		Drain:     cfg.Drain,
		FCT:       stats.NewLogHist(fctLo, fctHi, fctBins),
		FCTSmall:  stats.NewLogHist(fctLo, fctHi, fctBins),
		FCTMedium: stats.NewLogHist(fctLo, fctHi, fctBins),
		FCTLarge:  stats.NewLogHist(fctLo, fctHi, fctBins),
		FCTp50:    stats.NewP2Quantile(0.50),
		FCTp90:    stats.NewP2Quantile(0.90),
		FCTp99:    stats.NewP2Quantile(0.99),
	}
}

// absorbFlow folds one completed flow into the streaming estimators.
func (r *Result) absorbFlow(t *Topology, fl *flow, fct sim.Time) {
	r.Completed++
	secs := fct.Seconds()
	r.FCT.Add(secs)
	r.FCTp50.Add(secs)
	r.FCTp90.Add(secs)
	r.FCTp99.Add(secs)
	switch {
	case fl.size <= SmallFlowMax:
		r.FCTSmall.Add(secs)
	case fl.size <= MediumFlowMax:
		r.FCTMedium.Add(secs)
	default:
		r.FCTLarge.Add(secs)
	}
	if secs > 0 {
		r.Goodput.Add(float64(fl.size) * 8 / secs)
	}
	r.BytesDelivered += int64(fl.size)
	r.absorbTx(t, fl)
}

// absorbIncomplete accounts a flow still in flight at run end; its
// sender-side byte counters are folded in so path totals reconcile
// with link counters.
func (r *Result) absorbIncomplete(t *Topology, fl *flow) {
	r.Incomplete++
	r.absorbTx(t, fl)
}

// absorbTx folds the flow's server-side (sender) endpoint stats into
// the per-path counters. Subflows are classified by the client address
// they serve.
func (r *Result) absorbTx(t *Topology, fl *flow) {
	add := func(remote bool, bytesSent, bytesRetrans int64, pkts, retransPkts uint64) {
		if remote {
			r.CellBytes += bytesSent
			r.CellRetrans += bytesRetrans
			r.CellPkts += pkts
			r.CellRetransPkts += retransPkts
		} else {
			r.WiFiBytes += bytesSent
			r.WiFiRetrans += bytesRetrans
			r.WiFiPkts += pkts
			r.WiFiRetransPkts += retransPkts
		}
	}
	if ep := fl.serverEP; ep != nil {
		add(t.IsCellIP(ep.Remote), ep.Stats.BytesSent, ep.Stats.BytesRetrans,
			ep.Stats.DataPktsSent, ep.Stats.DataPktsRetrans)
	}
	if c := fl.serverConn; c != nil {
		for _, sf := range c.Subflows() {
			add(t.IsCellIP(sf.EP.Remote), sf.EP.Stats.BytesSent, sf.EP.Stats.BytesRetrans,
				sf.EP.Stats.DataPktsSent, sf.EP.Stats.DataPktsRetrans)
			if t.IsCellIP(sf.EP.Remote) {
				r.CellAckedBytes += sf.AckedBytes()
			} else {
				r.WiFiAckedBytes += sf.AckedBytes()
			}
		}
		r.DupTxBytes += c.DupTxBytes
	}
	if c := fl.clientConn; c != nil {
		r.DupRxBytes += c.Reorder().DupBytes
	}
}

// CellShare is the fraction of sender bytes that travelled the
// cellular path — the paper's traffic-split metric at fleet scale.
func (r *Result) CellShare() float64 {
	total := r.WiFiBytes + r.CellBytes
	if total == 0 {
		return 0
	}
	return float64(r.CellBytes) / float64(total)
}

// finish snapshots link counters and checker findings.
func (r *Result) finish(t *Topology, s *sim.Simulator, ck *check.Checker) {
	r.Events = s.Processed()
	r.SimEnd = s.Now()
	secs := s.Now().Seconds()
	for _, l := range t.AllLinks() {
		r.Links = append(r.Links, linkUtil(l, secs))
	}
	if ck != nil {
		r.Violations = ck.Count()
		if vs := ck.Violations(); len(vs) > 0 {
			r.FirstViolation = vs[0].String()
		}
	}
}

func linkUtil(l *netem.Link, secs float64) LinkUtil {
	u := LinkUtil{
		Name:       l.Name,
		Rate:       l.Rate,
		Bytes:      l.Stats.Bytes,
		Sent:       l.Stats.Sent,
		MediumDrop: l.Stats.MediumDrop,
		QueueDrop:  l.Stats.QueueDrop,
	}
	if l.Rate > 0 && secs > 0 {
		u.Utilization = float64(l.Stats.Bytes) * 8 / (float64(l.Rate) * secs)
	}
	return u
}
