// Package load is the fleet workload engine: it drives hundreds to
// thousands of concurrent TCP and MPTCP flows through ONE deterministic
// simulation of the paper's access networks, scaled out sideways — N
// clients sharing a single WiFi AP and a single cellular sector, the
// "coffee shop at rush hour" the paper's one-wget-at-a-time methodology
// cannot reach. The paper's most interesting mechanisms (lowest-RTT
// scheduling, coupled congestion control, bufferbloat) only bite under
// exactly this contention, and the ROADMAP's "heavy traffic from
// millions of users" scales through here: every flow the engine opens
// runs the real tcp/mptcp stacks over the real netem links, and every
// metric streams through bounded-memory estimators (internal/stats
// LogHist/P2/Acc) so a million flows cost the same stats memory as
// ten.
package load

import (
	"fmt"

	"mptcplab/internal/netem"
	"mptcplab/internal/pathmodel"
	"mptcplab/internal/seg"
	"mptcplab/internal/sim"
	"mptcplab/internal/units"
)

// Well-known fleet addresses. Clients get 10.x.y.2 WiFi and 100.x.y.2
// (CGNAT range) cellular addresses derived from their index.
var (
	FleetServerIP   = "192.168.1.1"
	FleetServerPort = uint16(8080)
)

// MaxClients bounds the fleet size the address scheme supports.
const MaxClients = 16384

// Client is one fleet member: a host with a WiFi and a cellular
// interface, both behind the shared access bottlenecks.
type Client struct {
	Host     *netem.Host
	WiFiIP   [4]byte
	CellIP   [4]byte
	nextPort uint16
}

// addrs allocates a fresh (WiFi, cellular) local address pair for one
// flow. Ports start at 40000 and advance by two per flow; a client
// would need ~12k flows in one run to wrap into TIME_WAIT reuse.
func (c *Client) addrs() (wifi, cell seg.Addr) {
	p := c.nextPort
	c.nextPort += 2
	if c.nextPort < 40000 {
		c.nextPort = 40000
	}
	return seg.Addr{IP: c.WiFiIP, Port: p}, seg.Addr{IP: c.CellIP, Port: p + 1}
}

// Topology is the materialized fleet network: N clients, one server,
// shared WiFi and cellular access bottlenecks, and optional background
// cross-traffic hosts.
type Topology struct {
	Sim     *sim.Simulator
	Net     *netem.Network
	Server  *netem.Host
	Clients []*Client
	SrvAddr seg.Addr

	// The shared access bottlenecks every client competes for.
	APUp, APDown     *netem.Link
	CellUp, CellDown *netem.Link
	CellRadio        *netem.Radio

	// Server LAN links (gigabit, never the bottleneck).
	SrvIn, SrvOut *netem.Link

	// Background cross-traffic endpoints (nil hosts when disabled).
	bgClient, bgSink *netem.Host
}

// clientIPs derives the two interface addresses of client i.
func clientIPs(i int) (wifi, cell [4]byte) {
	return [4]byte{10, byte(i >> 8), byte(i), 2},
		[4]byte{100, byte(64 + i>>8), byte(i), 2}
}

// NewTopology builds the fleet network onto an empty (fresh or freshly
// Reset) network: the WiFi profile becomes the shared AP, the cellular
// profile the shared sector, and every client's two paths to the server
// run through them. Sharing is the point — netem links serialize all
// routes that traverse them, so client contention emerges from the same
// queueing mechanics as the single-client testbed's self-congestion.
func NewTopology(n *netem.Network, rng *sim.RNG, wifi, cell pathmodel.Profile, clients int) *Topology {
	if clients < 1 || clients > MaxClients {
		panic(fmt.Sprintf("load: %d clients outside [1,%d]", clients, MaxClients))
	}
	s := n.Sim()
	t := &Topology{
		Sim: s, Net: n,
		Server:  n.NewHost("fleet-server"),
		SrvAddr: seg.MakeAddr(FleetServerIP, FleetServerPort),
	}
	t.APUp, t.APDown, _ = wifi.Links(s, rng.Child("ap"))
	t.CellUp, t.CellDown, t.CellRadio = cell.Links(s, rng.Child("cell"))
	// Stable names regardless of profile, so exports and reports can
	// address the bottlenecks uniformly.
	t.APUp.Name, t.APDown.Name = "ap-up", "ap-down"
	t.CellUp.Name, t.CellDown.Name = "cell-up", "cell-down"

	lan := func(name string) *netem.Link {
		l := netem.NewLink(s, rng, name)
		l.Rate = 1 * units.Gbps
		l.PropDelay = 500 * sim.Microsecond
		l.QueueLimit = 64 * units.MB
		return l
	}
	t.SrvIn, t.SrvOut = lan("srv-in"), lan("srv-out")

	t.Clients = make([]*Client, clients)
	for i := range t.Clients {
		wifiIP, cellIP := clientIPs(i)
		c := &Client{
			Host:     n.NewHost(fmt.Sprintf("client-%d", i)),
			WiFiIP:   wifiIP,
			CellIP:   cellIP,
			nextPort: 40000,
		}
		t.Clients[i] = c
		n.AddDuplexRoute(wifiIP, t.SrvAddr.IP, c.Host, t.Server,
			[]*netem.Link{t.APUp, t.SrvIn}, []*netem.Link{t.SrvOut, t.APDown})
		n.AddDuplexRoute(cellIP, t.SrvAddr.IP, c.Host, t.Server,
			[]*netem.Link{t.CellUp, t.SrvIn}, []*netem.Link{t.SrvOut, t.CellDown})
	}
	return t
}

// IsCellIP classifies an address by access network: cellular client
// interfaces live in the CGNAT 100.64/10 block.
func (t *Topology) IsCellIP(a seg.Addr) bool { return a.IP[0] == 100 }

// AccessLinks lists the four shared bottleneck links.
func (t *Topology) AccessLinks() []*netem.Link {
	return []*netem.Link{t.APUp, t.APDown, t.CellUp, t.CellDown}
}

// AllLinks lists every link in the topology, access plus LAN.
func (t *Topology) AllLinks() []*netem.Link {
	return append(t.AccessLinks(), t.SrvIn, t.SrvOut)
}

// Background configures constant-average-rate cross-traffic injected
// straight through the shared bottlenecks — the other patrons of the
// coffee shop, whose packets occupy queue space and serialization time
// but belong to no measured flow.
type Background struct {
	WiFiDown, WiFiUp units.BitRate
	CellDown, CellUp units.BitRate
}

// Enabled reports whether any background stream has a nonzero rate.
func (b Background) Enabled() bool {
	return b.WiFiDown > 0 || b.WiFiUp > 0 || b.CellDown > 0 || b.CellUp > 0
}

// sink swallows delivered background packets; the route chain releases
// the segments back to the pool after Receive returns.
type sink struct{}

func (sink) Receive(*seg.Segment) {}

// Background packets carry a full MSS payload; with the 40-byte
// IPv4+TCP headers the wire size is 1500 bytes.
const (
	bgPayloadBytes = 1460
	bgPacketBytes  = bgPayloadBytes + 40
)

// StartBackground arms the configured cross-traffic streams until
// stop. Each stream is a Poisson packet process with mean rate equal
// to the configured bit rate, drawn from its own RNG child so enabling
// one stream never perturbs another (or the flows).
func (t *Topology) StartBackground(bg Background, rng *sim.RNG, stop sim.Time) {
	if !bg.Enabled() {
		return
	}
	// Downstream sources sit behind the server LAN; upstream sources
	// behind the clients. One source/sink host pair serves all four
	// streams with distinct addresses per direction.
	t.bgClient = t.Net.NewHost("bg-client")
	t.bgSink = t.Net.NewHost("bg-sink")

	arm := func(name string, rate units.BitRate, src, dst seg.Addr, srcHost, dstHost *netem.Host, hops []*netem.Link) {
		if rate <= 0 {
			return
		}
		t.Net.AddRoute(src.IP, dst.IP, dstHost, hops...)
		dstHost.Bind(dst, src, sink{})
		r := rng.Child("bg/" + name)
		// Mean inter-packet gap for the target average rate.
		mean := float64(rate.TransmitTime(bgPacketBytes))
		var tick func()
		tick = func() {
			if t.Sim.Now() >= stop {
				return
			}
			s := t.Net.NewSegment()
			s.Src, s.Dst = src, dst
			s.Flags = seg.ACK
			s.PayloadLen = bgPayloadBytes
			srcHost.Send(s)
			t.Sim.At(t.Sim.Now()+sim.Time(r.Exponential(mean)), "bg:"+name, tick)
		}
		t.Sim.At(sim.Time(r.Exponential(mean)), "bg:"+name, tick)
	}

	arm("wifi-down", bg.WiFiDown,
		seg.MakeAddr("192.168.1.200", 9), seg.MakeAddr("10.255.255.1", 9),
		t.bgClient, t.bgSink, []*netem.Link{t.APDown})
	arm("wifi-up", bg.WiFiUp,
		seg.MakeAddr("10.255.255.2", 9), seg.MakeAddr("192.168.1.201", 9),
		t.bgClient, t.bgSink, []*netem.Link{t.APUp})
	arm("cell-down", bg.CellDown,
		seg.MakeAddr("192.168.1.202", 9), seg.MakeAddr("100.127.255.1", 9),
		t.bgClient, t.bgSink, []*netem.Link{t.CellDown})
	arm("cell-up", bg.CellUp,
		seg.MakeAddr("100.127.255.2", 9), seg.MakeAddr("192.168.1.203", 9),
		t.bgClient, t.bgSink, []*netem.Link{t.CellUp})
}
