package load

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"mptcplab/internal/chaos"
)

// RunExport is the machine-readable summary of one fleet run. Exports
// are a pure function of the sweep seed: no wall-clock or scheduling
// metadata appears, so equal seeds give byte-identical files for any
// worker count.
type RunExport struct {
	Rate    float64 `json:"rate_flows_per_s"`
	Clients int     `json:"clients"`
	Sched   string  `json:"sched,omitempty"`
	Rep     int     `json:"rep"`
	Seed    int64   `json:"seed"`
	Replay  string  `json:"replay"`

	Offered    int `json:"offered"`
	Completed  int `json:"completed"`
	Incomplete int `json:"incomplete"`

	FCTMean float64 `json:"fct_s_mean"`
	FCTP50  float64 `json:"fct_s_p50"`
	FCTP90  float64 `json:"fct_s_p90"`
	FCTP99  float64 `json:"fct_s_p99"`
	FCTMax  float64 `json:"fct_s_max"`

	SmallP50 float64 `json:"fct_small_s_p50"`
	LargeP50 float64 `json:"fct_large_s_p50"`

	GoodputMean float64 `json:"goodput_bps_mean"`
	Jain        float64 `json:"jain"`
	CellShare   float64 `json:"cell_share"`

	// Redundancy accounting (non-zero under the redundant scheduler):
	// duplicate bytes scheduled by senders and discarded by receivers.
	// Goodput and delivered-byte metrics above exclude them by
	// construction.
	DupTxBytes int64 `json:"dup_tx_bytes,omitempty"`
	DupRxBytes int64 `json:"dup_rx_bytes,omitempty"`

	APDownUtil   float64 `json:"ap_down_util"`
	CellDownUtil float64 `json:"cell_down_util"`
	APDownQDrop  uint64  `json:"ap_down_qdrop"`
	CellDownDrop uint64  `json:"cell_down_qdrop"`

	WiFiRetransPct float64 `json:"wifi_retrans_pct"`
	CellRetransPct float64 `json:"cell_retrans_pct"`

	// Per-path delivered (cumulatively ACKed) bytes, from the MPTCP
	// subflow delivery-rate telemetry; zero for plain-TCP transports.
	WiFiAckedBytes int64 `json:"wifi_acked_bytes,omitempty"`
	CellAckedBytes int64 `json:"cell_acked_bytes,omitempty"`

	Violations int `json:"violations"`

	// Harness outcome: failed runs (contained panic, watchdog kill)
	// keep their row with whatever stats accumulated, plus the reason.
	Failed     bool   `json:"failed"`
	FailReason string `json:"fail_reason,omitempty"`
}

// exportRun flattens one run. The replay token re-derives the exact
// per-run Config so any row can be re-executed standalone.
func exportRun(p SweepPoint, rep int, res *Result, token string) RunExport {
	e := RunExport{
		Rate: p.Rate, Clients: p.Clients, Sched: p.Sched, Rep: rep,
		Seed: res.Seed, Replay: token,
		Offered: res.Offered, Completed: res.Completed, Incomplete: res.Incomplete,
		DupTxBytes: res.DupTxBytes, DupRxBytes: res.DupRxBytes,
		FCTMean:        res.FCT.Mean(),
		FCTP50:         res.FCT.Quantile(0.50),
		FCTP90:         res.FCT.Quantile(0.90),
		FCTP99:         res.FCT.Quantile(0.99),
		FCTMax:         res.FCT.Max(),
		GoodputMean:    res.Goodput.Mean(),
		Jain:           res.Goodput.Jain(),
		CellShare:      res.CellShare(),
		WiFiAckedBytes: res.WiFiAckedBytes,
		CellAckedBytes: res.CellAckedBytes,
		Violations:     res.Violations,
		Failed:         res.Failed,
		FailReason:     res.FailReason,
	}
	if res.FCTSmall.N() > 0 {
		e.SmallP50 = res.FCTSmall.Quantile(0.5)
	}
	if res.FCTLarge.N() > 0 {
		e.LargeP50 = res.FCTLarge.Quantile(0.5)
	}
	for _, l := range res.Links {
		switch l.Name {
		case "ap-down", "wifi-down":
			e.APDownUtil = l.Utilization
			e.APDownQDrop = l.QueueDrop
		case "cell-down":
			e.CellDownUtil = l.Utilization
			e.CellDownDrop = l.QueueDrop
		}
	}
	if res.WiFiPkts > 0 {
		e.WiFiRetransPct = 100 * float64(res.WiFiRetransPkts) / float64(res.WiFiPkts)
	}
	if res.CellPkts > 0 {
		e.CellRetransPct = 100 * float64(res.CellRetransPkts) / float64(res.CellPkts)
	}
	return e
}

// ExportOne flattens a single (point, rep) run — the row the service
// layer caches individually. Export composes it over the whole grid.
func ExportOne(base Config, p SweepPoint, rep int, res *Result) RunExport {
	cfg := PointConfig(base, p)
	cfg.Seed = res.Seed
	return exportRun(p, rep, res, cfg.ReplayToken())
}

// Export flattens a sweep into one record per run, in grid order.
func (sw *Sweep) Export(base Config) []RunExport {
	var out []RunExport
	for _, p := range sw.Points {
		for rep, res := range p.Runs {
			if res == nil {
				continue
			}
			out = append(out, ExportOne(base, p, rep, res))
		}
	}
	return out
}

// WriteJSON emits the sweep as a JSON array of run records.
func (sw *Sweep) WriteJSON(w io.Writer, base Config) error {
	return WriteRunsJSON(w, sw.Export(base))
}

// WriteRunsJSON emits run records as a JSON array — the same bytes
// Sweep.WriteJSON produces, for callers (the daemon) that assemble
// rows from a cache instead of a completed Sweep.
func WriteRunsJSON(w io.Writer, rows []RunExport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rows)
}

// csvHeader lists the exported columns, in order.
var csvHeader = []string{
	"rate_flows_per_s", "clients", "sched", "rep", "seed",
	"offered", "completed", "incomplete",
	"fct_s_mean", "fct_s_p50", "fct_s_p90", "fct_s_p99", "fct_s_max",
	"fct_small_s_p50", "fct_large_s_p50",
	"goodput_bps_mean", "jain", "cell_share",
	"dup_tx_bytes", "dup_rx_bytes",
	"ap_down_util", "cell_down_util", "ap_down_qdrop", "cell_down_qdrop",
	"wifi_retrans_pct", "cell_retrans_pct",
	"wifi_acked_bytes", "cell_acked_bytes", "violations",
	"failed", "fail_reason", "replay",
}

// WriteCSV emits the sweep as CSV with a header row.
func (sw *Sweep) WriteCSV(w io.Writer, base Config) error {
	return WriteRunsCSV(w, sw.Export(base))
}

// WriteRunsCSV emits run records as CSV with a header row — the same
// bytes Sweep.WriteCSV produces.
func WriteRunsCSV(w io.Writer, rows []RunExport) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }
	for _, e := range rows {
		rec := []string{
			f(e.Rate), strconv.Itoa(e.Clients), e.Sched, strconv.Itoa(e.Rep),
			strconv.FormatInt(e.Seed, 10),
			strconv.Itoa(e.Offered), strconv.Itoa(e.Completed), strconv.Itoa(e.Incomplete),
			f(e.FCTMean), f(e.FCTP50), f(e.FCTP90), f(e.FCTP99), f(e.FCTMax),
			f(e.SmallP50), f(e.LargeP50),
			f(e.GoodputMean), f(e.Jain), f(e.CellShare),
			strconv.FormatInt(e.DupTxBytes, 10), strconv.FormatInt(e.DupRxBytes, 10),
			f(e.APDownUtil), f(e.CellDownUtil),
			strconv.FormatUint(e.APDownQDrop, 10), strconv.FormatUint(e.CellDownDrop, 10),
			f(e.WiFiRetransPct), f(e.CellRetransPct),
			strconv.FormatInt(e.WiFiAckedBytes, 10), strconv.FormatInt(e.CellAckedBytes, 10),
			strconv.Itoa(e.Violations),
			strconv.FormatBool(e.Failed), e.FailReason, e.Replay,
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Describe summarizes the sweep shape for progress output.
func (sw *Sweep) Describe() string {
	reps := 0
	if len(sw.Points) > 0 {
		reps = len(sw.Points[0].Runs)
	}
	return fmt.Sprintf("load sweep: %d points (%d rates) x %d reps",
		len(sw.Points), len(sw.sortedRates()), reps)
}

// ResilienceExport is one chaos run's resilience row: grid position +
// the flattened chaos report + harness outcome + replay token.
type ResilienceExport struct {
	Rate    float64 `json:"rate_flows_per_s"`
	Clients int     `json:"clients"`
	Rep     int     `json:"rep"`
	Seed    int64   `json:"seed"`

	Failed     bool   `json:"failed"`
	FailReason string `json:"fail_reason,omitempty"`

	chaos.ReportExport

	// Per-path delivered (cumulatively ACKed) bytes over the whole
	// run, from the per-subflow RateEstimator telemetry — read
	// alongside the report's per-path fault/steady delivery rates to
	// assert fade recovery path by path.
	WiFiAckedBytes int64 `json:"wifi_acked_bytes,omitempty"`
	CellAckedBytes int64 `json:"cell_acked_bytes,omitempty"`

	Violations int    `json:"violations"`
	Replay     string `json:"replay"`
}

// ExportResilienceOne flattens a single run's resilience row; ok is
// false when the run produced no row (no chaos report and no harness
// failure).
func ExportResilienceOne(base Config, p SweepPoint, rep int, res *Result) (ResilienceExport, bool) {
	if res.Resilience == nil && !res.Failed {
		return ResilienceExport{}, false
	}
	cfg := PointConfig(base, p)
	cfg.Seed = res.Seed
	e := ResilienceExport{
		Rate: p.Rate, Clients: p.Clients, Rep: rep, Seed: res.Seed,
		Failed: res.Failed, FailReason: res.FailReason,
		WiFiAckedBytes: res.WiFiAckedBytes,
		CellAckedBytes: res.CellAckedBytes,
		Violations:     res.Violations,
		Replay:         cfg.ReplayToken(),
	}
	if res.Resilience != nil {
		e.ReportExport = res.Resilience.Export(res.ChaosSpec)
	} else {
		e.Schedule = res.ChaosSpec
	}
	return e, true
}

// ExportResilience flattens the sweep's resilience reports, one record
// per executed run, in grid order. Failed runs (contained panic or
// watchdog kill) appear with zeroed resilience fields and the failure
// reason; runs without a chaos schedule are skipped.
func (sw *Sweep) ExportResilience(base Config) []ResilienceExport {
	var out []ResilienceExport
	for _, p := range sw.Points {
		for rep, res := range p.Runs {
			if res == nil {
				continue
			}
			if e, ok := ExportResilienceOne(base, p, rep, res); ok {
				out = append(out, e)
			}
		}
	}
	return out
}

// WriteResilienceJSON emits the resilience rows as a JSON array.
func (sw *Sweep) WriteResilienceJSON(w io.Writer, base Config) error {
	return WriteResilienceRowsJSON(w, sw.ExportResilience(base))
}

// WriteResilienceRowsJSON emits resilience rows as a JSON array.
func WriteResilienceRowsJSON(w io.Writer, rows []ResilienceExport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rows)
}

// resCSVHeader lists the resilience columns, in order.
var resCSVHeader = []string{
	"rate_flows_per_s", "clients", "rep", "seed", "failed", "fail_reason",
	"chaos", "res_flows", "res_ok", "res_late", "res_incomplete",
	"res_stalled", "res_aborted", "res_stalls", "res_longest_stall_s",
	"res_stall_s_mean", "res_recoveries", "res_unrecovered",
	"res_ttr_s_mean", "res_ttr_s_max", "res_fault_bytes",
	"res_steady_bytes", "res_fault_bps", "res_steady_bps",
	"res_wifi_fault_bps", "res_wifi_steady_bps", "res_wifi_ttr_s",
	"res_cell_fault_bps", "res_cell_steady_bps", "res_cell_ttr_s",
	"wifi_acked_bytes", "cell_acked_bytes",
	"res_retries", "res_timeouts", "res_graceful", "violations", "replay",
}

// WriteResilienceCSV emits the resilience rows as CSV with a header.
func (sw *Sweep) WriteResilienceCSV(w io.Writer, base Config) error {
	return WriteResilienceRowsCSV(w, sw.ExportResilience(base))
}

// WriteResilienceRowsCSV emits resilience rows as CSV with a header.
func WriteResilienceRowsCSV(w io.Writer, rows []ResilienceExport) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(resCSVHeader); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }
	for _, e := range rows {
		rec := []string{
			f(e.Rate), strconv.Itoa(e.Clients), strconv.Itoa(e.Rep),
			strconv.FormatInt(e.Seed, 10),
			strconv.FormatBool(e.Failed), e.FailReason,
			e.Schedule,
			strconv.Itoa(e.Flows), strconv.Itoa(e.OK), strconv.Itoa(e.Late),
			strconv.Itoa(e.Incomplete), strconv.Itoa(e.Stalled), strconv.Itoa(e.Aborted),
			strconv.Itoa(e.Stalls), f(e.LongestStallS), f(e.StallMeanS),
			strconv.Itoa(e.Recoveries), strconv.Itoa(e.Unrecovered),
			f(e.TTRMeanS), f(e.TTRMaxS),
			strconv.FormatInt(e.FaultBytes, 10), strconv.FormatInt(e.SteadyBytes, 10),
			f(e.FaultBps), f(e.SteadyBps),
			f(e.WiFiFaultBps), f(e.WiFiSteadyBps), f(e.WiFiTTRSec),
			f(e.CellFaultBps), f(e.CellSteadyBps), f(e.CellTTRSec),
			strconv.FormatInt(e.WiFiAckedBytes, 10), strconv.FormatInt(e.CellAckedBytes, 10),
			strconv.Itoa(e.Retries), strconv.Itoa(e.Timeouts),
			e.Graceful, strconv.Itoa(e.Violations), e.Replay,
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
