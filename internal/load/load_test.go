package load

import (
	"bytes"
	"runtime"
	"testing"

	"mptcplab/internal/sim"
	"mptcplab/internal/units"
)

// smokeConfig is a small fleet that still exercises every moving part:
// mixed transports, background traffic, self-check armed.
func smokeConfig() Config {
	return Config{
		Clients:    20,
		Flows:      60,
		Duration:   10 * sim.Second,
		Drain:      20 * sim.Second,
		Transports: TransportMix{WiFi: 0.25, Cell: 0.15, MPTCP: 0.60},
		Background: Background{WiFiDown: 2 * units.Mbps, CellDown: 1 * units.Mbps},
		Seed:       7,
		SelfCheck:  true,
	}
}

func TestFleetSmokeCompletes(t *testing.T) {
	res, f := runFleet(smokeConfig())
	if res.Offered != 60 || res.Started != 60 {
		t.Fatalf("offered %d started %d, want 60/60", res.Offered, res.Started)
	}
	if res.Completed+res.Incomplete != res.Started {
		t.Fatalf("completed %d + incomplete %d != started %d",
			res.Completed, res.Incomplete, res.Started)
	}
	if res.Completed < res.Started*9/10 {
		t.Fatalf("only %d/%d flows completed within drain", res.Completed, res.Started)
	}
	if res.Violations != 0 {
		t.Fatalf("self-check found %d violations; first: %s", res.Violations, res.FirstViolation)
	}
	if res.FCT.N() != int64(res.Completed) {
		t.Fatalf("FCT histogram has %d samples, want %d", res.FCT.N(), res.Completed)
	}
	if res.WiFiBytes == 0 || res.CellBytes == 0 {
		t.Fatalf("expected traffic on both paths, got wifi=%d cell=%d", res.WiFiBytes, res.CellBytes)
	}
	if j := res.Goodput.Jain(); j <= 0 || j > 1 {
		t.Fatalf("Jain index %v out of (0,1]", j)
	}
	// Completed flows must be fully released: live memory is O(active
	// flows), and after a full drain nothing should remain.
	if res.Incomplete == 0 && (len(f.active) != 0 || len(f.byClientAddr) != 0) {
		t.Fatalf("engine retained %d active / %d addr entries after full drain",
			len(f.active), len(f.byClientAddr))
	}
}

func TestFleetClosedLoopSessions(t *testing.T) {
	cfg := Config{
		Clients:   10,
		Sessions:  8,
		ThinkMean: 500 * sim.Millisecond,
		Sizes:     FixedSize(16 * units.KB),
		Duration:  10 * sim.Second,
		Seed:      11,
		SelfCheck: true,
	}
	res := Run(cfg)
	// Each session should cycle several times in 10 s of sim time.
	if res.Completed < 2*cfg.Sessions {
		t.Fatalf("closed loop completed only %d flows for %d sessions", res.Completed, cfg.Sessions)
	}
	if res.Violations != 0 {
		t.Fatalf("violations: %d (%s)", res.Violations, res.FirstViolation)
	}
}

// TestFleetDeterministic: equal seeds give byte-identical exports.
func TestFleetDeterministic(t *testing.T) {
	opts := SweepOpts{Base: smokeConfig(), Reps: 2, Seed: 42, Workers: 1}
	a, b := RunSweep(opts), RunSweep(opts)
	var ba, bb bytes.Buffer
	if err := a.WriteCSV(&ba, opts.Base); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteCSV(&bb, opts.Base); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ba.Bytes(), bb.Bytes()) {
		t.Fatalf("same seed produced different exports:\n%s\nvs\n%s", ba.String(), bb.String())
	}
}

// TestSweepWorkerInvariance: the export is byte-identical for any
// worker count — the acceptance criterion that makes parallel
// campaigns trustworthy.
func TestSweepWorkerInvariance(t *testing.T) {
	base := smokeConfig()
	base.Flows = 0
	opts := SweepOpts{
		Base:  base,
		Rates: []float64{2, 6},
		Reps:  2,
		Seed:  1234,
	}
	serial := opts
	serial.Workers = 1
	parallel := opts
	parallel.Workers = 4

	sa, sp := RunSweep(serial), RunSweep(parallel)
	for _, pair := range []struct {
		name string
		f    func(*Sweep) []byte
	}{
		{"csv", func(s *Sweep) []byte {
			var b bytes.Buffer
			if err := s.WriteCSV(&b, opts.Base); err != nil {
				t.Fatal(err)
			}
			return b.Bytes()
		}},
		{"json", func(s *Sweep) []byte {
			var b bytes.Buffer
			if err := s.WriteJSON(&b, opts.Base); err != nil {
				t.Fatal(err)
			}
			return b.Bytes()
		}},
	} {
		if !bytes.Equal(pair.f(sa), pair.f(sp)) {
			t.Fatalf("%s export differs between -workers 1 and -workers 4", pair.name)
		}
	}
	if sa.TotalViolations != 0 || sp.TotalViolations != 0 {
		t.Fatalf("violations: serial %d, parallel %d", sa.TotalViolations, sp.TotalViolations)
	}
}

// TestFleetStatsMemoryBounded: the result's estimator footprint is
// fixed by histogram geometry, independent of how many flows ran.
func TestFleetStatsMemoryBounded(t *testing.T) {
	small := smokeConfig()
	small.Flows = 20
	small.SelfCheck = false
	big := small
	big.Flows = 200
	big.Duration = 20 * sim.Second

	rs, fs := runFleet(small)
	rb, fb := runFleet(big)
	if rb.Completed <= rs.Completed {
		t.Fatalf("big run completed %d <= small run %d", rb.Completed, rs.Completed)
	}
	for _, pair := range [][2]int{
		{rs.FCT.Bins(), rb.FCT.Bins()},
		{rs.FCTSmall.Bins(), rb.FCTSmall.Bins()},
		{rs.FCTLarge.Bins(), rb.FCTLarge.Bins()},
	} {
		if pair[0] != fctBins || pair[1] != fctBins {
			t.Fatalf("histogram bins %v, want %d regardless of flow count", pair, fctBins)
		}
	}
	// Lifecycle maps must not accumulate completed flows.
	if n := len(fs.active) + len(fb.active); n != rs.Incomplete+rb.Incomplete {
		t.Fatalf("active maps hold %d entries, want %d (the incomplete flows)",
			n, rs.Incomplete+rb.Incomplete)
	}
	_ = runtime.NumGoroutine // keep runtime imported alongside alloc test below
}

// TestFleetSetupAllocsOffHotPath: scaling per-flow *bytes* by 32x must
// not scale allocations anywhere near 32x — transfer bytes ride the
// pooled segment hot path; only per-flow setup allocates.
func TestFleetSetupAllocsOffHotPath(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc measurement needs full runs")
	}
	base := Config{
		Clients:  10,
		Flows:    30,
		Duration: 5 * sim.Second,
		Drain:    60 * sim.Second,
		Seed:     3,
	}
	small := base
	small.Sizes = FixedSize(16 * units.KB)
	big := base
	big.Sizes = FixedSize(512 * units.KB)

	measure := func(cfg Config) uint64 {
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		res := Run(cfg)
		runtime.ReadMemStats(&after)
		if res.Completed != cfg.Flows {
			t.Fatalf("only %d/%d flows completed", res.Completed, cfg.Flows)
		}
		return after.Mallocs - before.Mallocs
	}
	measure(small) // warm pools and lazy init once
	a := measure(small)
	b := measure(big)
	if b > 4*a {
		t.Fatalf("32x bytes cost %dx allocations (%d -> %d); transfer bytes are hitting an allocating path",
			b/a, a, b)
	}
}
