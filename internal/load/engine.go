package load

import (
	"fmt"
	"sort"
	"time"

	"mptcplab/internal/cc"
	"mptcplab/internal/chaos"
	"mptcplab/internal/check"
	"mptcplab/internal/mptcp"
	"mptcplab/internal/netem"
	"mptcplab/internal/pathmodel"
	"mptcplab/internal/seg"
	"mptcplab/internal/sim"
	"mptcplab/internal/tcp"
	"mptcplab/internal/trace"
	"mptcplab/internal/units"
	"mptcplab/internal/web"
)

// Config describes one fleet run. Equal configs (including Seed)
// reproduce runs exactly — the whole fleet, background traffic
// included, executes inside one deterministic simulation.
type Config struct {
	// Clients is the number of fleet members sharing the bottlenecks.
	Clients int
	// WiFi and Cell profile the shared AP and cellular sector
	// (defaults: CoffeeShop and ATT — the §4.1 scenario at scale).
	WiFi, Cell pathmodel.Profile
	// SampleProfiles applies the profiles' per-run Spread before
	// building links, as the campaign runner does.
	SampleProfiles bool

	// Sizes draws per-flow transfer sizes (default SmallFlowMix).
	Sizes SizeDist
	// Transports draws each flow's stack (default all-MPTCP).
	Transports TransportMix
	// Controller and Scheduler configure the stacks ("olia"/"coupled"/
	// "reno"; "lowest-rtt"/...), defaulting as the experiment package
	// does.
	Controller, Scheduler string

	// Open-loop arrivals: Flows > 0 schedules exactly that many flows
	// at Poisson-conditioned times in [0, Duration); otherwise Rate is
	// the Poisson arrival rate in flows per simulated second.
	Flows int
	Rate  float64
	// Closed-loop sessions: when Sessions > 0 the open-loop knobs are
	// ignored and each session loops request → download → think, with
	// exponentially distributed think times of mean ThinkMean.
	Sessions  int
	ThinkMean sim.Time

	// Duration is the arrival window; Drain is extra simulated time
	// for in-flight transfers to finish (default 30 s).
	Duration sim.Time
	Drain    sim.Time

	// Background cross-traffic through the shared bottlenecks.
	Background Background

	// Chaos, when non-empty, applies a deterministic fault schedule to
	// the shared access links (and, for storms, the fleet's MPTCP
	// addresses) and collects a resilience report in Result.Resilience.
	// The schedule spec is part of the replay token.
	Chaos chaos.Schedule

	// Deadline is a per-run wall-clock budget (0 = none): a run burning
	// more real time than this is killed by the watchdog and reported
	// as a failed run. Wall-clock kills are inherently nondeterministic,
	// so Deadline is execution policy, not configuration — it is NOT
	// part of the replay token. Livelock detection is always armed.
	Deadline time.Duration

	// Seed drives every random stream of the run.
	Seed int64
	// SelfCheck arms the internal/check referee: every segment at every
	// host is verified online, all stacks are probed periodically, and
	// completed MPTCP transfers run the byte-stream oracle. Results are
	// unchanged (the checker draws no randomness); violations land in
	// Result.Violations.
	SelfCheck bool
	// ProbeEvery overrides the SelfCheck probe period (default 250 ms).
	ProbeEvery sim.Time
}

func (c Config) withDefaults() Config {
	if c.Clients == 0 {
		c.Clients = 100
	}
	if c.WiFi.Name == "" {
		c.WiFi = pathmodel.CoffeeShop()
	}
	if c.Cell.Name == "" {
		c.Cell = pathmodel.ATT()
	}
	if c.Sizes == nil {
		c.Sizes = SmallFlowMix()
	}
	if c.Transports == (TransportMix{}) {
		// Normalize so the zero value consumes the same RNG draws as
		// the explicit all-MPTCP mix: a replayed token must walk the
		// arrival stream identically to the run that exported it.
		c.Transports = TransportMix{MPTCP: 1}
	}
	if c.Duration == 0 {
		c.Duration = 60 * sim.Second
	}
	if c.Drain == 0 {
		c.Drain = 30 * sim.Second
	}
	if c.ThinkMean == 0 {
		c.ThinkMean = 2 * sim.Second
	}
	if c.ProbeEvery == 0 {
		c.ProbeEvery = 250 * sim.Millisecond
	}
	return c
}

// flow is one in-flight transfer's lifecycle record. It lives only
// while the flow is active: completion folds it into the streaming
// result and drops it, so live memory is O(concurrent flows), never
// O(total flows).
type flow struct {
	id        int
	transport FlowTransport
	size      units.ByteCount
	start     sim.Time
	session   int // closed-loop session index, -1 for open-loop

	client  *Client
	getter  *web.Getter
	tracked *chaos.Tracked

	// Client- and server-side stack handles for accounting/teardown.
	clientEP   *tcp.Endpoint
	clientConn *mptcp.Conn
	serverEP   *tcp.Endpoint
	serverConn *mptcp.Conn
}

// fleet is the per-run engine state.
type fleet struct {
	cfg  Config
	topo *Topology
	s    *sim.Simulator
	ck   *check.Checker
	res  *Result
	mon  *chaos.Monitor

	tcpCfg   tcp.Config
	mpCfg    mptcp.Config
	arrivals *sim.RNG // transport/size/client draws
	flowRNG  *sim.RNG // per-flow stack randomness parent
	nextID   int

	// byClientAddr routes server-side accepts back to the flow that
	// dialed: keyed by the client's first-subflow local address.
	byClientAddr map[seg.Addr]*flow
	active       map[int]*flow
}

// Run executes one fleet workload and returns its streaming-stats
// result. The run is confined to the calling goroutine; distinct runs
// share no state and may proceed in parallel (the sweep builds on
// this, exactly like the campaign runner).
func Run(cfg Config) *Result {
	res, _ := runFleet(cfg)
	return res
}

// runFleet is Run plus the engine handle, for tests that assert on
// internal state (live-flow maps drained, bounded stats).
func runFleet(cfg Config) (*Result, *fleet) {
	return runFleetIn(NewArena(), cfg)
}

// runFleetIn executes one run on a prepared (fresh or reset) arena.
func runFleetIn(a *Arena, cfg Config) (*Result, *fleet) {
	cfg = cfg.withDefaults()
	s := a.sim
	rng := sim.NewRNG(cfg.Seed)

	wifi, cell := cfg.WiFi, cfg.Cell
	if cfg.SampleProfiles {
		wifi = wifi.Sample(rng.Child("wifi-sample"))
		cell = cell.Sample(rng.Child("cell-sample"))
	}
	topo := NewTopology(a.net, rng.Child("topo"), wifi, cell, cfg.Clients)

	f := &fleet{
		cfg:          cfg,
		topo:         topo,
		s:            s,
		res:          newResult(cfg),
		arrivals:     rng.Child("arrivals"),
		flowRNG:      rng.Child("flows"),
		byClientAddr: make(map[seg.Addr]*flow),
		active:       make(map[int]*flow),
	}
	f.buildStackConfigs()

	if cfg.SelfCheck {
		f.ck = check.New(s)
		trace.AttachObserver(topo.Server, f.ck)
		for _, c := range topo.Clients {
			trace.AttachObserver(c.Host, f.ck)
		}
		for _, l := range topo.AllLinks() {
			f.ck.ArmLink(l)
		}
		f.ck.ArmProbes(cfg.ProbeEvery)
	}

	if !cfg.Chaos.Empty() {
		f.mon = chaos.NewMonitor(s, cfg.Chaos)
		f.mon.PathRates = f.pathRates
		cfg.Chaos.Apply(s, chaos.Target{
			WiFi:     []*netem.Link{topo.APUp, topo.APDown},
			Cell:     []*netem.Link{topo.CellUp, topo.CellDown},
			Withdraw: f.withdraw,
			Restore:  f.restore,
			OnFault:  f.mon.OnFault,
		})
	}
	chaos.ArmWatchdog(s, cfg.Deadline)

	f.startServer()
	topo.StartBackground(cfg.Background, rng.Child("background"), cfg.Duration)

	if cfg.Sessions > 0 {
		f.startSessions()
	} else {
		for _, at := range arrivalTimes(f.arrivals, cfg.Rate, cfg.Flows, cfg.Duration) {
			at := at
			s.At(at, "fleet.arrival", func() { f.startFlow(-1) })
			f.res.Offered++
		}
	}
	if testRunHook != nil {
		testRunHook(f)
	}

	s.RunUntil(cfg.Duration + cfg.Drain)
	if err := s.AbortErr(); err != nil {
		f.res.Failed = true
		f.res.FailReason = err.Error()
	}
	f.finish()
	if f.mon != nil {
		f.res.ChaosSpec = cfg.Chaos.Spec()
		f.res.Resilience = f.mon.Finish()
	}
	return f.res, f
}

// testRunHook, when non-nil, runs after a fleet is wired but before
// its simulation starts. Containment tests use it to sabotage one run
// (an injected panic or livelock) and prove the sweep survives. It is
// written only before RunSweep starts its workers.
var testRunHook func(*fleet)

// buildStackConfigs materializes the TCP and MPTCP configs once; the
// controllers are stateless values shared safely by every flow. The
// Controller knob steers MPTCP coupling only — single-path TCP flows
// always run New Reno, like the background wgets in the paper.
func (f *fleet) buildStackConfigs() {
	name := f.cfg.Controller
	if name == "" {
		name = "coupled"
	}
	ctrl, err := cc.New(name)
	if err != nil {
		panic(err)
	}
	f.tcpCfg = tcp.DefaultConfig()

	mc := mptcp.DefaultConfig()
	mc.TCP = f.tcpCfg
	mc.Controller = ctrl
	if f.cfg.Scheduler != "" {
		mc.Scheduler = f.cfg.Scheduler
	}
	mc.RcvBuf = f.tcpCfg.RcvBuf
	f.mpCfg = mc
}

// startServer wires the one server socket every flow lands on: MPTCP
// connections via MP_CAPABLE, plain-TCP fallback for single-path
// flows — as the paper's Apache serves both client kinds on one port.
func (f *fleet) startServer() {
	srv := mptcp.NewServer(f.topo.Server, f.topo.Net, FleetServerPort, f.mpCfg, f.flowRNG.Child("server"))
	srv.OnConn = func(c *mptcp.Conn) {
		fl := f.byClientAddr[c.Subflows()[0].EP.Remote]
		if fl == nil {
			return // background/unknown; nothing to serve
		}
		fl.serverConn = c
		if f.ck != nil {
			f.ck.WatchConn(fmt.Sprintf("srv-flow-%d", fl.id), c)
		}
		fs := &web.FileServer{SizeFor: func(int) int { return int(fl.size) }}
		fs.ServeStream(web.MPTCPStream{Conn: c})
	}
	srv.OnPlainConn = func(ep *tcp.Endpoint) bool {
		fl := f.byClientAddr[ep.Remote]
		if fl == nil {
			return false
		}
		fl.serverEP = ep
		if f.ck != nil {
			f.ck.WatchEndpoint(fmt.Sprintf("srv-flow-%d", fl.id), ep)
		}
		fs := &web.FileServer{SizeFor: func(int) int { return int(fl.size) }}
		fs.ServeStream(web.TCPStream{EP: ep})
		return true
	}
}

// startSessions launches the closed-loop sessions, staggered uniformly
// over one mean think time so they don't all arrive in lockstep.
func (f *fleet) startSessions() {
	for i := 0; i < f.cfg.Sessions; i++ {
		i := i
		at := sim.Time(f.arrivals.Float64() * float64(f.cfg.ThinkMean))
		f.s.At(at, "fleet.session", func() { f.sessionNext(i) })
	}
}

// sessionNext issues session i's next request, if the arrival window
// is still open.
func (f *fleet) sessionNext(i int) {
	if f.s.Now() >= f.cfg.Duration {
		return
	}
	f.res.Offered++
	f.startFlow(i)
}

// startFlow opens one transfer now on a deterministic pseudo-random
// client.
func (f *fleet) startFlow(session int) {
	id := f.nextID
	f.nextID++
	client := f.topo.Clients[f.arrivals.Intn(len(f.topo.Clients))]
	fl := &flow{
		id:        id,
		transport: f.cfg.Transports.pick(f.arrivals),
		size:      f.cfg.Sizes.Sample(f.arrivals),
		start:     f.s.Now(),
		session:   session,
		client:    client,
	}
	f.active[id] = fl
	f.res.Started++

	wifiAddr, cellAddr := client.addrs()
	rng := f.flowRNG.Child(fmt.Sprintf("flow/%d", id))

	switch fl.transport {
	case FlowTCPWiFi, FlowTCPCell:
		local := wifiAddr
		if fl.transport == FlowTCPCell {
			local = cellAddr
		}
		f.byClientAddr[local] = fl
		ep := tcp.NewEndpoint(client.Host, f.topo.Net, local, f.topo.SrvAddr, f.tcpCfg, rng)
		fl.clientEP = ep
		if f.ck != nil {
			f.ck.WatchEndpoint(fmt.Sprintf("cli-flow-%d", id), ep)
		}
		fl.getter = web.NewGetter(web.TCPStream{EP: ep})
		fl.getter.Get(int(fl.size), func() { f.complete(fl) })
		ep.Connect()
	default:
		f.byClientAddr[wifiAddr] = fl
		conn := mptcp.Dial(f.topo.Net, client.Host, mptcp.DialOpts{
			LocalAddrs: []seg.Addr{wifiAddr, cellAddr},
			Labels:     []string{"wifi", "cell"},
			ServerAddr: f.topo.SrvAddr,
			Config:     f.mpCfg,
		}, rng)
		fl.clientConn = conn
		if f.ck != nil {
			f.ck.WatchConn(fmt.Sprintf("cli-flow-%d", id), conn)
		}
		fl.getter = web.NewGetter(web.MPTCPStream{Conn: conn})
		fl.getter.Get(int(fl.size), func() { f.complete(fl) })
	}
	if f.mon != nil {
		fl.tracked = f.mon.Track(fmt.Sprintf("flow-%d", id),
			func() int64 { return fl.getter.BytesReceived })
	}
}

// complete retires a finished flow: fold its lifecycle metrics into
// the streaming result, close the transfer, release the record, and —
// for closed-loop sessions — schedule the next think/request cycle.
func (f *fleet) complete(fl *flow) {
	fct := f.s.Now() - fl.start
	f.res.absorbFlow(f.topo, fl, fct)
	if f.ck != nil && fl.serverConn != nil && fl.clientConn != nil {
		f.ck.CheckTransfer(fmt.Sprintf("flow-%d", fl.id), fl.serverConn, fl.clientConn, true)
	}
	if fl.tracked != nil {
		fl.tracked.Done(true)
	}
	fl.getter.Close()
	f.release(fl)

	if fl.session >= 0 {
		think := sim.Time(f.arrivals.Exponential(float64(f.cfg.ThinkMean)))
		sess := fl.session
		f.s.At(f.s.Now()+think, "fleet.think", func() { f.sessionNext(sess) })
	}
}

// release forgets a flow's routing and lifecycle entries.
func (f *fleet) release(fl *flow) {
	delete(f.active, fl.id)
	if fl.clientEP != nil {
		delete(f.byClientAddr, fl.clientEP.Local)
	}
	if fl.clientConn != nil && len(fl.clientConn.Subflows()) > 0 {
		delete(f.byClientAddr, fl.clientConn.Subflows()[0].EP.Local)
	}
}

// sortedActive lists the live flows in id order — storm hooks iterate
// it instead of the active map so address withdrawal order (and hence
// the whole run) is deterministic.
func (f *fleet) sortedActive() []*flow {
	ids := make([]int, 0, len(f.active))
	for id := range f.active {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([]*flow, len(ids))
	for i, id := range ids {
		out[i] = f.active[id]
	}
	return out
}

// pathRates sums the live fleet's instantaneous per-subflow delivery
// rates on each access path, from the server-side (sender)
// connections' RateEstimators — the telemetry the chaos monitor
// samples per tick. Flows are walked in id order: floating-point
// addition is order-sensitive, and the report must stay a pure
// function of the seed.
func (f *fleet) pathRates() (wifi, cell float64) {
	for _, fl := range f.sortedActive() {
		c := fl.serverConn
		if c == nil {
			continue
		}
		for _, sf := range c.Subflows() {
			if f.topo.IsCellIP(sf.EP.Remote) {
				cell += sf.DeliveryRate()
			} else {
				wifi += sf.DeliveryRate()
			}
		}
	}
	return wifi, cell
}

// onPath reports whether an address belongs to the chaos path.
func (f *fleet) onPath(a seg.Addr, p chaos.Path) bool {
	if p == chaos.Both {
		return true
	}
	return f.topo.IsCellIP(a) == (p == chaos.Cell)
}

// withdraw implements chaos.Target.Withdraw: every active MPTCP flow
// drops its subflows on the path's interface, REMOVE_ADDR-ing the peer
// and reinjecting stranded data on survivors — the "walked away from
// the AP" half of a handover. Single-path TCP flows have no address
// machinery; storms only shake them via whatever the links do.
func (f *fleet) withdraw(p chaos.Path) {
	for _, fl := range f.sortedActive() {
		c := fl.clientConn
		if c == nil {
			continue
		}
		seen := map[seg.Addr]bool{}
		for _, sf := range c.Subflows() {
			local := sf.EP.Local
			if seen[local] || !f.onPath(local, p) || sf.EP.State() == tcp.StateClosed {
				continue
			}
			seen[local] = true
			c.RemoveLocalAddr(local)
		}
	}
}

// restore implements chaos.Target.Restore: flows missing a live
// subflow on the path rejoin through it on a fresh port (reusing the
// withdrawn 4-tuple would race a stale server endpoint whose teardown
// RST was lost).
func (f *fleet) restore(p chaos.Path) {
	for _, fl := range f.sortedActive() {
		c := fl.clientConn
		if c == nil || !c.Established() {
			continue
		}
		if (p == chaos.WiFi || p == chaos.Both) && !f.hasLive(c, false) {
			wifiAddr, _ := fl.client.addrs()
			c.RejoinLocalAddr(wifiAddr)
		}
		if (p == chaos.Cell || p == chaos.Both) && !f.hasLive(c, true) {
			_, cellAddr := fl.client.addrs()
			c.RejoinLocalAddr(cellAddr)
		}
	}
}

// hasLive reports whether the connection has an established subflow on
// the given access network.
func (f *fleet) hasLive(c *mptcp.Conn, cell bool) bool {
	for _, sf := range c.Subflows() {
		if sf.EP.Established() && f.topo.IsCellIP(sf.EP.Local) == cell {
			return true
		}
	}
	return false
}

// finish closes out the run: account still-active flows as
// incomplete, fold link and checker state into the result.
func (f *fleet) finish() {
	for _, fl := range f.active {
		f.res.absorbIncomplete(f.topo, fl)
		if f.ck != nil && fl.serverConn != nil && fl.clientConn != nil {
			f.ck.CheckTransfer(fmt.Sprintf("flow-%d", fl.id), fl.serverConn, fl.clientConn, false)
		}
	}
	f.res.finish(f.topo, f.s, f.ck)
}
