package load

import (
	"reflect"
	"testing"

	"mptcplab/internal/sim"
	"mptcplab/internal/units"
)

// TestArenaReuseDeterminism is the fleet half of the arena-reuse
// contract: RunIn on a dirtied arena must reproduce Run's result
// exactly — same streaming stats, same event count — with no state
// leaking through the warm simulator/network pools.
func TestArenaReuseDeterminism(t *testing.T) {
	cfg := smokeConfig()
	other := Config{
		Clients:    8,
		Sessions:   6,
		Duration:   6 * sim.Second,
		Drain:      10 * sim.Second,
		Transports: TransportMix{MPTCP: 1},
		Seed:       99,
	}

	fresh := Run(cfg)

	a := NewArena()
	RunIn(a, other) // dirty the arena with an unrelated workload
	reused := RunIn(a, cfg)
	if !reflect.DeepEqual(fresh, reused) {
		t.Errorf("reused arena diverged from fresh run\nfresh:  %+v\nreused: %+v", fresh, reused)
	}

	again := RunIn(a, cfg) // back-to-back reuse of the same arena
	if !reflect.DeepEqual(fresh, again) {
		t.Errorf("second reuse diverged from fresh run")
	}
}

// The reuse benchmarks measure what arena reuse buys a sweep worker.
// Run with -benchtime=1000x for the 1k-run sweep comparison quoted in
// EXPERIMENTS.md.
func arenaBenchCfg(i int) Config {
	return Config{
		Clients:    10,
		Flows:      30,
		Duration:   5 * sim.Second,
		Drain:      10 * sim.Second,
		Transports: TransportMix{WiFi: 0.3, MPTCP: 0.7},
		Background: Background{WiFiDown: 1 * units.Mbps},
		Seed:       int64(i),
	}
}

func BenchmarkFleetRunFresh(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Run(arenaBenchCfg(i))
	}
}

func BenchmarkFleetRunReused(b *testing.B) {
	b.ReportAllocs()
	a := NewArena()
	for i := 0; i < b.N; i++ {
		RunIn(a, arenaBenchCfg(i))
	}
}
