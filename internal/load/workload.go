package load

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"mptcplab/internal/sim"
	"mptcplab/internal/units"
)

// SizeDist draws per-flow transfer sizes.
type SizeDist interface {
	Sample(rng *sim.RNG) units.ByteCount
	Name() string
}

// FixedSize always returns the same size.
type FixedSize units.ByteCount

// Sample implements SizeDist.
func (f FixedSize) Sample(*sim.RNG) units.ByteCount { return units.ByteCount(f) }

// Name implements SizeDist.
func (f FixedSize) Name() string { return units.ByteCount(f).String() }

// SizeMix draws from a weighted set of fixed sizes — the paper's
// experiment grids are exactly such mixes.
type SizeMix struct {
	Label   string
	Sizes   []units.ByteCount
	Weights []float64 // need not sum to 1; normalized internally
}

// Sample implements SizeDist.
func (m SizeMix) Sample(rng *sim.RNG) units.ByteCount {
	var total float64
	for _, w := range m.Weights {
		total += w
	}
	x := rng.Float64() * total
	for i, w := range m.Weights {
		x -= w
		if x < 0 {
			return m.Sizes[i]
		}
	}
	return m.Sizes[len(m.Sizes)-1]
}

// Name implements SizeDist.
func (m SizeMix) Name() string { return m.Label }

// BoundedPareto draws heavy-tailed sizes from a Pareto distribution
// truncated to [Lo, Hi] by inverse-CDF sampling — the classic model of
// web transfer sizes, here spanning the paper's full 8 KB–512 MB
// measurement range.
type BoundedPareto struct {
	Label  string
	Lo, Hi units.ByteCount
	Alpha  float64
}

// Sample implements SizeDist.
func (p BoundedPareto) Sample(rng *sim.RNG) units.ByteCount {
	l, h := float64(p.Lo), float64(p.Hi)
	// Inverse CDF of Pareto(l, alpha) truncated at h:
	// x = l * (1 - u*(1-(l/h)^alpha))^(-1/alpha).
	theta := math.Pow(l/h, p.Alpha)
	u := rng.Float64()
	x := l * math.Pow(1-u*(1-theta), -1/p.Alpha)
	if x > h {
		x = h
	}
	return units.ByteCount(x)
}

// Name implements SizeDist.
func (p BoundedPareto) Name() string { return p.Label }

// SmallFlowMix is the paper's small-flow regime (Figures 4/5): mostly
// 8–64 KB objects with an occasional 512 KB, the web-browsing traffic
// MPTCP struggles on.
func SmallFlowMix() SizeDist {
	return SizeMix{
		Label:   "small",
		Sizes:   []units.ByteCount{8 * units.KB, 64 * units.KB, 512 * units.KB},
		Weights: []float64{0.50, 0.35, 0.15},
	}
}

// WebMix spans small objects through multi-MB downloads, weighted
// toward the small end as real web traffic is.
func WebMix() SizeDist {
	return SizeMix{
		Label: "web",
		Sizes: []units.ByteCount{
			8 * units.KB, 64 * units.KB, 512 * units.KB, 4 * units.MB, 16 * units.MB,
		},
		Weights: []float64{0.40, 0.30, 0.18, 0.09, 0.03},
	}
}

// HeavyTail is a bounded Pareto over the paper's full 8 KB–512 MB
// range (alpha 1.15: most flows tiny, most *bytes* in elephants).
func HeavyTail() SizeDist {
	return BoundedPareto{Label: "heavy", Lo: 8 * units.KB, Hi: 512 * units.MB, Alpha: 1.15}
}

// ParseSizeDist resolves a CLI spec: a named mix ("small", "web",
// "heavy") or a fixed size ("64KB").
func ParseSizeDist(s string) (SizeDist, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "small":
		return SmallFlowMix(), nil
	case "web":
		return WebMix(), nil
	case "heavy":
		return HeavyTail(), nil
	}
	if b, err := units.ParseByteCount(s); err == nil {
		return FixedSize(b), nil
	}
	return nil, fmt.Errorf("load: unknown size distribution %q (want small|web|heavy|<size>)", s)
}

// FlowTransport selects one flow's stack.
type FlowTransport int

// Flow transports.
const (
	FlowTCPWiFi FlowTransport = iota // single-path TCP over the shared AP
	FlowTCPCell                      // single-path TCP over the shared sector
	FlowMPTCP                        // 2-path MPTCP (WiFi default + cellular)
)

// String names the transport.
func (t FlowTransport) String() string {
	switch t {
	case FlowTCPWiFi:
		return "tcp-wifi"
	case FlowTCPCell:
		return "tcp-cell"
	case FlowMPTCP:
		return "mptcp"
	default:
		return "?"
	}
}

// TransportMix gives the per-flow transport probabilities. Zero value
// means all-MPTCP.
type TransportMix struct {
	WiFi, Cell, MPTCP float64
}

// pick draws a transport.
func (m TransportMix) pick(rng *sim.RNG) FlowTransport {
	total := m.WiFi + m.Cell + m.MPTCP
	if total <= 0 {
		return FlowMPTCP
	}
	x := rng.Float64() * total
	if x < m.WiFi {
		return FlowTCPWiFi
	}
	if x < m.WiFi+m.Cell {
		return FlowTCPCell
	}
	return FlowMPTCP
}

// String renders the mix as a spec ParseTransportMix inverts. Weighted
// mixes join with "+" rather than "," so the result can embed in a
// comma-separated replay token ("wifi=0.3+cell=0.2+mptcp=0.5").
func (m TransportMix) String() string {
	if m.WiFi == 0 && m.Cell == 0 {
		return "mptcp"
	}
	return fmt.Sprintf("wifi=%g+cell=%g+mptcp=%g", m.WiFi, m.Cell, m.MPTCP)
}

// ParseTransportMix resolves a CLI spec: "mptcp", "tcp-wifi",
// "tcp-cell", or a weighted list like "wifi=0.3,cell=0.2,mptcp=0.5"
// ("+" works as the separator too, as replay tokens require).
func ParseTransportMix(s string) (TransportMix, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "mptcp":
		return TransportMix{MPTCP: 1}, nil
	case "tcp-wifi", "wifi":
		return TransportMix{WiFi: 1}, nil
	case "tcp-cell", "cell":
		return TransportMix{Cell: 1}, nil
	}
	var m TransportMix
	for _, part := range strings.FieldsFunc(s, func(r rune) bool { return r == ',' || r == '+' }) {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return m, fmt.Errorf("load: bad transport mix part %q", part)
		}
		var w float64
		if _, err := fmt.Sscanf(v, "%g", &w); err != nil || w < 0 {
			return m, fmt.Errorf("load: bad transport weight %q", part)
		}
		switch strings.ToLower(k) {
		case "wifi":
			m.WiFi = w
		case "cell":
			m.Cell = w
		case "mptcp":
			m.MPTCP = w
		default:
			return m, fmt.Errorf("load: unknown transport %q", k)
		}
	}
	if m.WiFi+m.Cell+m.MPTCP <= 0 {
		return m, fmt.Errorf("load: transport mix %q has zero total weight", s)
	}
	return m, nil
}

// arrivalTimes draws the open-loop arrival schedule over [0, window).
//
// With count > 0 it returns exactly count arrivals at the order
// statistics of count uniform draws — a Poisson process conditioned on
// its total, so "run a 1,000-flow fleet" is exact and still
// memoryless-looking. Otherwise it draws a Poisson process of the
// given rate (flows per second of simulated time).
func arrivalTimes(rng *sim.RNG, rate float64, count int, window sim.Time) []sim.Time {
	if count > 0 {
		ts := make([]sim.Time, count)
		for i := range ts {
			ts[i] = sim.Time(rng.Float64() * float64(window))
		}
		sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
		return ts
	}
	var ts []sim.Time
	if rate <= 0 {
		return ts
	}
	meanGap := float64(sim.Second) / rate
	for at := sim.Time(rng.Exponential(meanGap)); at < window; at += sim.Time(rng.Exponential(meanGap)) {
		ts = append(ts, at)
	}
	return ts
}
