package load

import (
	"testing"

	"mptcplab/internal/cc"
	"mptcplab/internal/mptcp"
	"mptcplab/internal/netem"
	"mptcplab/internal/seg"
	"mptcplab/internal/sim"
	"mptcplab/internal/tcp"
	"mptcplab/internal/units"
	"mptcplab/internal/web"
)

// TestTCPFairnessOverSharedBottleneck: N near-simultaneous single-path
// TCP flows through the one shared AP must split it almost evenly —
// Jain's index over per-flow goodput at least 0.95. This validates the
// harness itself: if the engine's shared topology or accounting were
// skewed, every fleet-scale conclusion downstream would be too.
func TestTCPFairnessOverSharedBottleneck(t *testing.T) {
	res := Run(Config{
		Clients:    8,
		Flows:      8,
		Sizes:      FixedSize(2 * units.MB),
		Transports: TransportMix{WiFi: 1},
		Duration:   200 * sim.Millisecond, // near-simultaneous arrivals
		Drain:      120 * sim.Second,
		Seed:       5,
		SelfCheck:  true,
	})
	if res.Completed != 8 {
		t.Fatalf("completed %d/8 flows", res.Completed)
	}
	if res.Violations != 0 {
		t.Fatalf("violations: %d (%s)", res.Violations, res.FirstViolation)
	}
	if j := res.Goodput.Jain(); j < 0.95 {
		t.Errorf("Jain index %.3f < 0.95 for %d competing TCP flows (goodput mean %.0f, stddev %.0f)",
			j, res.Completed, res.Goodput.Mean(), res.Goodput.Stddev())
	}
}

// couplingShare runs one MPTCP connection (both subflows through the
// SAME bottleneck) against one plain TCP flow and reports the fraction
// of bottleneck bytes the MPTCP connection took.
func couplingShare(t *testing.T, controller string) float64 {
	t.Helper()
	ctrl, err := cc.New(controller)
	if err != nil {
		t.Fatal(err)
	}
	return couplingShareCtrl(t, ctrl)
}

func couplingShareCtrl(t *testing.T, ctrl cc.Controller) float64 {
	t.Helper()
	s := sim.New()
	rng := sim.NewRNG(99)
	n := netem.NewNetwork(s)
	server := n.NewHost("server")
	client := n.NewHost("client")

	mkLink := func(name string, rate units.BitRate) *netem.Link {
		l := netem.NewLink(s, rng.Child(name), name)
		l.Rate = rate
		l.PropDelay = 10 * sim.Millisecond
		l.QueueLimit = 128 * units.KB
		return l
	}
	down := mkLink("shared-down", 16*units.Mbps) // the contested bottleneck
	up := mkLink("shared-up", 16*units.Mbps)

	srvAddr := seg.MakeAddr("192.168.1.1", 8080)
	addrs := []seg.Addr{
		seg.MakeAddr("10.0.0.2", 41000), // MPTCP subflow 1
		seg.MakeAddr("10.0.1.2", 41001), // MPTCP subflow 2
		seg.MakeAddr("10.0.2.2", 41002), // competing plain TCP
	}
	for _, a := range addrs {
		n.AddDuplexRoute(a.IP, srvAddr.IP, client, server,
			[]*netem.Link{up}, []*netem.Link{down})
	}

	tcpCfg := tcp.DefaultConfig()
	mpCfg := mptcp.DefaultConfig()
	mpCfg.TCP = tcpCfg
	mpCfg.Controller = ctrl
	mpCfg.RcvBuf = tcpCfg.RcvBuf

	// Large enough that neither transfer finishes inside the
	// measurement window: the share must reflect ongoing contention,
	// not completion timing.
	const body = 512 * units.MB
	srv := mptcp.NewServer(server, n, 8080, mpCfg, rng.Child("server"))
	srv.OnConn = func(c *mptcp.Conn) {
		fs := &web.FileServer{SizeFor: func(int) int { return int(body) }}
		fs.ServeStream(web.MPTCPStream{Conn: c})
	}
	srv.OnPlainConn = func(ep *tcp.Endpoint) bool {
		fs := &web.FileServer{SizeFor: func(int) int { return int(body) }}
		fs.ServeStream(web.TCPStream{EP: ep})
		return true
	}

	var mpConn *mptcp.Conn
	var tcpEP *tcp.Endpoint
	s.At(0, "dial-mptcp", func() {
		mpConn = mptcp.Dial(n, client, mptcp.DialOpts{
			LocalAddrs: addrs[:2],
			Labels:     []string{"a", "b"},
			ServerAddr: srvAddr,
			Config:     mpCfg,
		}, rng.Child("dial"))
		web.NewGetter(web.MPTCPStream{Conn: mpConn}).Get(int(body), nil)
	})
	s.At(0, "dial-tcp", func() {
		tcpEP = tcp.NewEndpoint(client, n, addrs[2], srvAddr, tcpCfg, rng.Child("tcp"))
		web.NewGetter(web.TCPStream{EP: tcpEP}).Get(int(body), nil)
		tcpEP.Connect()
	})

	// Skip the first 20 s (slow start, initial loss synchronization)
	// and measure the share over the following 60 s of steady state.
	s.RunUntil(20 * sim.Second)
	mp0, tcp0 := mpConn.Reorder().Delivered, tcpEP.Stats.BytesRcvd
	s.RunUntil(80 * sim.Second)
	mpBytes := mpConn.Reorder().Delivered - mp0
	tcpBytes := tcpEP.Stats.BytesRcvd - tcp0
	if mpBytes == 0 || tcpBytes == 0 {
		t.Fatalf("%s: a flow starved outright (mptcp %d, tcp %d)", ctrl.Name(), mpBytes, tcpBytes)
	}
	return float64(mpBytes) / float64(mpBytes+tcpBytes)
}

// TestCoupledVsUncoupledFairness: with both subflows crossing the same
// bottleneck as a regular TCP flow, uncoupled MPTCP (Reno per subflow)
// behaves like two flows and takes ~2/3 of the link; coupled and OLIA
// each back off jointly and leave the single-path competitor close to
// half — the fairness goal coupled congestion control exists for.
func TestCoupledVsUncoupledFairness(t *testing.T) {
	uncoupled := couplingShare(t, "reno")
	coupled := couplingShare(t, "coupled")
	olia := couplingShare(t, "olia")
	t.Logf("MPTCP share of shared bottleneck: reno %.3f, coupled %.3f, olia %.3f",
		uncoupled, coupled, olia)

	if uncoupled < 0.60 {
		t.Errorf("uncoupled MPTCP took only %.3f; expected ~2/3 of the link", uncoupled)
	}
	for name, share := range map[string]float64{"coupled": coupled, "olia": olia} {
		if share >= uncoupled-0.10 {
			t.Errorf("%s share %.3f not clearly below uncoupled %.3f", name, share, uncoupled)
		}
		if share > 0.58 {
			t.Errorf("%s share %.3f; a coupled controller should stay near one fair share", name, share)
		}
		if share < 0.35 {
			t.Errorf("%s share %.3f; coupling should not starve the MPTCP connection", name, share)
		}
	}
}
