package load

import (
	"mptcplab/internal/netem"
	"mptcplab/internal/sim"
)

// Arena is the reusable substrate a fleet run executes on: one
// simulator and one network whose pools (event records, timer records,
// segments) stay warm across runs. A sweep worker drives its whole job
// stream through a single arena, resetting it between jobs instead of
// rebuilding the world — the same pattern the experiment matrix uses
// with Testbed.Reset. Because Simulator.Reset restarts the clock and
// the tie-break counter and Network.Reset drops every host and route,
// a run on a reused arena is byte-identical to the same run on a fresh
// one.
type Arena struct {
	sim *sim.Simulator
	net *netem.Network
}

// NewArena builds an empty arena with cold pools.
func NewArena() *Arena {
	s := sim.New()
	return &Arena{sim: s, net: netem.NewNetwork(s)}
}

// reset prepares the arena for its next run. Cheap on a fresh arena.
func (a *Arena) reset() {
	a.sim.Reset()
	a.net.Reset()
}

// RunIn executes one fleet workload on a reused arena and returns its
// streaming-stats result, exactly as Run does on a fresh one. The
// arena must not be shared between goroutines.
func RunIn(a *Arena, cfg Config) *Result {
	a.reset()
	res, _ := runFleetIn(a, cfg)
	return res
}
