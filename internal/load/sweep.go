package load

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"

	"mptcplab/internal/chaos"
	"mptcplab/internal/mptcp"
	"mptcplab/internal/sim"
	"mptcplab/internal/sweep"
	"mptcplab/internal/units"
)

// SweepOpts describes a load-vs-FCT campaign: a grid of (arrival rate
// x fleet size) points, each repeated Reps times with independent
// deterministic seeds. The Base config supplies everything the grid
// axes don't override.
type SweepOpts struct {
	Base Config

	// Rates are the open-loop arrival rates swept (flows per simulated
	// second); empty means just Base's own rate/flow settings.
	Rates []float64
	// Clients are the fleet sizes swept; empty means just Base.Clients.
	Clients []int
	// Scheds are the packet schedulers swept ("minrtt", "roundrobin",
	// "weighted[:w0;w1]", "redundant", "backup"); empty means just
	// Base.Scheduler.
	Scheds []string

	// Reps per grid point (default 1).
	Reps int
	// Seed drives the whole sweep; per-run seeds derive from it.
	Seed int64
	// Workers sizes the run pool: 0 = GOMAXPROCS, 1 = serial. Exports
	// are byte-identical for every worker count.
	Workers int
	// Progress, if set, is called after each finished run. Calls are
	// serialized; only done increasing 1..total is guaranteed.
	Progress func(done, total int)

	// Context, when non-nil, cancels the sweep: workers finish the run
	// they are on, stop claiming new jobs, and RunSweep returns with
	// Sweep.Cancelled set and nil entries for the runs never executed —
	// exports skip those, so partial results survive a Ctrl-C.
	Context context.Context
}

func (o SweepOpts) cancelled() bool {
	return o.Context != nil && o.Context.Err() != nil
}

func (o SweepOpts) reps() int {
	if o.Reps <= 0 {
		return 1
	}
	return o.Reps
}

func (o SweepOpts) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// SweepPoint is one (rate, clients, scheduler) grid point's
// repetitions. Sched empty means the Base config's scheduler.
type SweepPoint struct {
	Rate    float64
	Clients int
	Sched   string
	Runs    []*Result // indexed by rep
}

// Sweep is a completed campaign.
type Sweep struct {
	Points []SweepPoint

	// Execution metadata (excluded from exports, which must stay a
	// pure function of the seed).
	WallTime        time.Duration
	BusyTime        time.Duration
	Workers         int
	TotalEvents     uint64
	TotalViolations int
	FirstViolation  string

	// Cancelled reports the sweep was stopped early via
	// SweepOpts.Context; unexecuted runs stay nil.
	Cancelled bool
	// FailedRuns counts runs that panicked or were killed by the
	// watchdog — each still has a Result row (Failed=true).
	FailedRuns int
}

// sweepJob addresses one run: grid point and repetition indices.
type sweepJob struct {
	point, rep int
}

// sweepSalt is the load sweep's historical shuffle salt; like the
// experiment runner's it must never change, since it determines the
// execution order equal seeds replay.
const sweepSalt = 0x10ad

// Grid materializes the sweep's grid points in canonical order —
// rates outermost, then fleet sizes, then schedulers, exactly the
// order exports walk — with Runs slices sized for o.Reps. The service
// layer uses it to address individual (point, rep) runs without
// executing the whole sweep; RunSweep builds its own grid the same
// way.
func (o SweepOpts) Grid() []SweepPoint {
	rates := o.Rates
	if len(rates) == 0 {
		rates = []float64{o.Base.Rate}
	}
	fleets := o.Clients
	if len(fleets) == 0 {
		fleets = []int{o.Base.Clients}
	}
	scheds := o.Scheds
	if len(scheds) == 0 {
		scheds = []string{o.Base.Scheduler}
	}
	var points []SweepPoint
	for _, r := range rates {
		for _, c := range fleets {
			for _, sched := range scheds {
				points = append(points, SweepPoint{
					Rate: r, Clients: c, Sched: sched, Runs: make([]*Result, o.reps()),
				})
			}
		}
	}
	return points
}

// PointConfig specializes the base config to one grid point: the
// point's axes override the base, and a rate axis clears any fixed
// flow count. The per-run seed is not set here — callers derive it
// with RunSeed.
func PointConfig(base Config, p SweepPoint) Config {
	cfg := base
	if p.Rate > 0 {
		cfg.Rate = p.Rate
		cfg.Flows = 0 // rate axis overrides a fixed flow count
	}
	if p.Clients > 0 {
		cfg.Clients = p.Clients
	}
	if p.Sched != "" {
		cfg.Scheduler = p.Sched
	}
	return cfg
}

// RunSeed derives the seed of one (point, rep) run of a sweep, the
// same derivation RunSweep applies: disjoint 21-bit index fields
// through the Splitmix64 bijection (see sweep.Seed).
func (o SweepOpts) RunSeed(point, rep int) int64 {
	return sweep.Seed(o.Seed, point, rep)
}

// RunSweep executes the grid on the generic sweep engine. Like the
// experiment campaign runner, the job list is shuffled before
// execution, fanned out to a worker pool, and absorbed into points in
// the fixed shuffled-list order — so every aggregate and export is
// byte-identical for any worker count.
func RunSweep(opts SweepOpts) *Sweep {
	sw := &Sweep{Points: opts.Grid()}
	var jobs []sweepJob
	for pi := range sw.Points {
		for rep := 0; rep < opts.reps(); rep++ {
			jobs = append(jobs, sweepJob{pi, rep})
		}
	}

	// runJob executes one run on the worker's arena. Each worker
	// reuses one arena across its job stream (warm pools,
	// byte-identical results); after a contained panic the engine
	// discards the arena — it was left mid-run — and the next job
	// builds a fresh one.
	runJob := func(worker **Arena, k int) *Result {
		j := jobs[k]
		cfg := PointConfig(opts.Base, sw.Points[j.point])
		cfg.Seed = opts.RunSeed(j.point, j.rep)
		if *worker == nil {
			*worker = NewArena()
		}
		return RunIn(*worker, cfg)
	}

	st := sweep.Run(sweep.Opts{
		Seed:     opts.Seed,
		Salt:     sweepSalt,
		Workers:  opts.Workers,
		Progress: opts.Progress,
		Context:  opts.Context,
	}, len(jobs), runJob,
		func(k int, err error) *Result {
			j := jobs[k]
			cfg := PointConfig(opts.Base, sw.Points[j.point])
			cfg.Seed = opts.RunSeed(j.point, j.rep)
			return failedResult(cfg, err)
		},
		func(k int, res *Result) {
			j := jobs[k]
			sw.Points[j.point].Runs[j.rep] = res
			sw.TotalEvents += res.Events
			sw.TotalViolations += res.Violations
			if res.Failed {
				sw.FailedRuns++
			}
			if sw.FirstViolation == "" {
				sw.FirstViolation = res.FirstViolation
			}
		})

	sw.Workers = st.Workers
	sw.Cancelled = st.Cancelled
	sw.BusyTime = st.BusyTime
	sw.WallTime = st.WallTime
	return sw
}

// FailedRun builds the structured Result row for a contained run
// failure — exported for harnesses that drive grid points on the
// sweep engine themselves (the mptcpd service layer) and need
// failures shaped exactly as RunSweep shapes them.
func FailedRun(cfg Config, err error) *Result { return failedResult(cfg, err) }

// failedResult builds the structured row for a contained run failure.
// Only the first line of the error is kept: panic stacks carry
// goroutine ids that vary with worker scheduling, and exports must be
// a pure function of the seed.
func failedResult(cfg Config, err error) *Result {
	res := newResult(cfg.withDefaults())
	res.Failed = true
	res.FailReason, _, _ = strings.Cut(err.Error(), "\n")
	if !cfg.Chaos.Empty() {
		res.ChaosSpec = cfg.Chaos.Spec()
	}
	return res
}

// ReplayToken renders the knobs that uniquely determine one run as a
// compact "k=v,..." token; ParseReplay inverts it. Exported rows carry
// one per run so any sweep cell can be re-executed standalone:
//
//	mptcpload -replay 'clients=200,flows=1000,dur=1m0s,seed=42,...'
func (c Config) ReplayToken() string {
	c = c.withDefaults()
	var b strings.Builder
	fmt.Fprintf(&b, "clients=%d", c.Clients)
	if c.Sessions > 0 {
		fmt.Fprintf(&b, ",sessions=%d,think=%s", c.Sessions, c.ThinkMean)
	} else if c.Flows > 0 {
		fmt.Fprintf(&b, ",flows=%d", c.Flows)
	} else {
		fmt.Fprintf(&b, ",rate=%g", c.Rate)
	}
	fmt.Fprintf(&b, ",dur=%s,drain=%s,seed=%d", c.Duration, c.Drain, c.Seed)
	fmt.Fprintf(&b, ",mix=%s,transport=%s", c.Sizes.Name(), c.Transports)
	if c.Controller != "" {
		fmt.Fprintf(&b, ",cc=%s", c.Controller)
	}
	if c.Scheduler != "" {
		fmt.Fprintf(&b, ",sched=%s", c.Scheduler)
	}
	if c.SampleProfiles {
		b.WriteString(",sample=1")
	}
	if c.SelfCheck {
		b.WriteString(",check=1")
	}
	bg := c.Background
	if bg.Enabled() {
		fmt.Fprintf(&b, ",bgwd=%s,bgwu=%s,bgcd=%s,bgcu=%s",
			bg.WiFiDown, bg.WiFiUp, bg.CellDown, bg.CellUp)
	}
	if !c.Chaos.Empty() {
		// The chaos grammar uses ':', ';' and '+' precisely so its
		// canonical spec nests inside this comma-separated token.
		fmt.Fprintf(&b, ",chaos=%s", c.Chaos.Spec())
	}
	return b.String()
}

// ParseReplay reconstructs a run Config from a ReplayToken. Profiles
// come back as the defaults (the token does not encode sampled link
// parameters; SampleProfiles re-derives them from the seed).
func ParseReplay(tok string) (Config, error) {
	var c Config
	for _, part := range strings.Split(tok, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return c, fmt.Errorf("load: bad replay part %q", part)
		}
		var err error
		switch k {
		case "clients":
			_, err = fmt.Sscanf(v, "%d", &c.Clients)
		case "sessions":
			_, err = fmt.Sscanf(v, "%d", &c.Sessions)
		case "think":
			c.ThinkMean, err = parseSimTime(v)
		case "flows":
			_, err = fmt.Sscanf(v, "%d", &c.Flows)
		case "rate":
			_, err = fmt.Sscanf(v, "%g", &c.Rate)
		case "dur":
			c.Duration, err = parseSimTime(v)
		case "drain":
			c.Drain, err = parseSimTime(v)
		case "seed":
			_, err = fmt.Sscanf(v, "%d", &c.Seed)
		case "mix":
			c.Sizes, err = ParseSizeDist(v)
		case "transport":
			c.Transports, err = ParseTransportMix(v)
		case "cc":
			c.Controller = v
		case "sched":
			c.Scheduler = v
		case "sample":
			c.SampleProfiles = v == "1"
		case "check":
			c.SelfCheck = v == "1"
		case "bgwd":
			c.Background.WiFiDown, err = units.ParseBitRate(v)
		case "bgwu":
			c.Background.WiFiUp, err = units.ParseBitRate(v)
		case "bgcd":
			c.Background.CellDown, err = units.ParseBitRate(v)
		case "bgcu":
			c.Background.CellUp, err = units.ParseBitRate(v)
		case "chaos":
			c.Chaos, err = chaos.Parse(v)
		default:
			err = fmt.Errorf("unknown key %q", k)
		}
		if err != nil {
			return c, fmt.Errorf("load: replay token part %q: %v", part, err)
		}
	}
	if err := c.Validate(); err != nil {
		return c, err
	}
	return c, nil
}

// Validate rejects configs that would panic or wedge the engine —
// the guard that makes a malformed or hand-edited replay token fail
// with a one-line error instead of a stack trace.
func (c Config) Validate() error {
	d := c.withDefaults()
	if d.Clients < 1 || d.Clients > MaxClients {
		return fmt.Errorf("load: clients=%d outside [1,%d]", d.Clients, MaxClients)
	}
	if c.Flows < 0 {
		return fmt.Errorf("load: flows=%d is negative", c.Flows)
	}
	if c.Rate < 0 {
		return fmt.Errorf("load: rate=%g is negative", c.Rate)
	}
	if c.Sessions < 0 {
		return fmt.Errorf("load: sessions=%d is negative", c.Sessions)
	}
	if c.ThinkMean < 0 {
		return fmt.Errorf("load: think=%v is negative", c.ThinkMean)
	}
	if d.Duration <= 0 {
		return fmt.Errorf("load: dur=%v must be positive", d.Duration)
	}
	if c.Drain < 0 {
		return fmt.Errorf("load: drain=%v is negative", c.Drain)
	}
	if c.Scheduler != "" {
		if err := mptcp.ValidateScheduler(c.Scheduler); err != nil {
			return err
		}
	}
	return nil
}

func parseSimTime(s string) (sim.Time, error) {
	d, err := time.ParseDuration(s)
	return sim.Time(d), err
}

// sortedRates lists a sweep's distinct rates in ascending order, for
// report tables.
func (sw *Sweep) sortedRates() []float64 {
	seen := map[float64]bool{}
	var out []float64
	for _, p := range sw.Points {
		if !seen[p.Rate] {
			seen[p.Rate] = true
			out = append(out, p.Rate)
		}
	}
	sort.Float64s(out)
	return out
}
