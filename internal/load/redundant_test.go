package load

import (
	"strings"
	"testing"

	"mptcplab/internal/sim"
	"mptcplab/internal/units"
)

// The redundant scheduler sends every byte once per path. That
// redundancy must surface in the dedicated DupTx/DupRx counters and
// NOWHERE else: goodput, delivered bytes, and the retransmission
// percentages measure useful bytes only, so a redundant fleet must
// report the same delivered volume as a minrtt fleet, not double.
func TestRedundantSchedulerAccountingNotInflated(t *testing.T) {
	base := Config{
		Clients:    10,
		Flows:      20,
		Sizes:      FixedSize(256 * units.KB),
		Duration:   10 * sim.Second,
		Drain:      60 * sim.Second,
		Seed:       7,
		SelfCheck:  true,
		Transports: TransportMix{MPTCP: 1},
	}

	minrtt := base
	minrtt.Scheduler = "minrtt"
	redundant := base
	redundant.Scheduler = "redundant"

	rm := Run(minrtt)
	rr := Run(redundant)

	for name, res := range map[string]*Result{"minrtt": rm, "redundant": rr} {
		if res.Violations != 0 {
			t.Fatalf("%s run had %d violations: %s", name, res.Violations, res.FirstViolation)
		}
		if res.Completed != base.Flows {
			t.Fatalf("%s run completed %d of %d flows", name, res.Completed, base.Flows)
		}
	}

	want := int64(base.Flows) * int64(256*units.KB)
	if rm.BytesDelivered != want || rr.BytesDelivered != want {
		t.Errorf("delivered bytes: minrtt %d, redundant %d, want both exactly %d",
			rm.BytesDelivered, rr.BytesDelivered, want)
	}

	// Single-copy scheduling must not register duplicate sends.
	if rm.DupTxBytes != 0 {
		t.Errorf("minrtt DupTxBytes = %d, want 0", rm.DupTxBytes)
	}
	// Redundant duplicates the bulk of the stream once the second
	// subflow joins, and receivers discard roughly that much.
	if rr.DupTxBytes < want/2 {
		t.Errorf("redundant DupTxBytes = %d, want most of the %d delivered bytes duplicated", rr.DupTxBytes, want)
	}
	// Not every scheduled copy reaches the wire — the connection closes
	// once the stream completes, stranding queued duplicates on the
	// slower path — but the receivers must have discarded a real volume.
	if rr.DupRxBytes <= 0 || rr.DupRxBytes > rr.DupTxBytes {
		t.Errorf("redundant DupRxBytes = %d, want in (0, DupTxBytes=%d]", rr.DupRxBytes, rr.DupTxBytes)
	}

	// Duplicates are fresh subflow sends, not TCP retransmissions: the
	// per-path payload totals carry the stream once plus every copy the
	// receivers discarded...
	if sent := rr.WiFiBytes + rr.CellBytes; sent < want+rr.DupRxBytes {
		t.Errorf("redundant per-path sent bytes %d below delivered+discarded %d", sent, want+rr.DupRxBytes)
	}
	// ...while the retransmission counters stay bounded by actual loss,
	// orders of magnitude below the duplicated volume.
	if retrans := rr.WiFiRetrans + rr.CellRetrans; retrans > rr.DupTxBytes/4 {
		t.Errorf("redundant retransmissions %d approach duplicate volume %d — copies miscounted as retransmits",
			retrans, rr.DupTxBytes)
	}

	// Goodput derives from flow size over completion time, so the
	// redundant fleet (bottlenecked by duplicating everything) must not
	// report more aggregate goodput than physically delivered.
	if rr.Goodput.Mean() > 2*rm.Goodput.Mean() {
		t.Errorf("redundant goodput mean %.0f implausibly above minrtt %.0f",
			rr.Goodput.Mean(), rm.Goodput.Mean())
	}
}

// A sweep row produced under each scheduler must carry the scheduler
// in its replay token and re-execute to the identical row.
func TestReplayReproducesSweepRowPerScheduler(t *testing.T) {
	base := Config{
		Clients:   8,
		Duration:  5 * sim.Second,
		Drain:     20 * sim.Second,
		SelfCheck: true,
	}
	scheds := []string{"minrtt", "roundrobin", "weighted", "redundant", "blest", "adaptive"}
	sw := RunSweep(SweepOpts{Base: base, Rates: []float64{2}, Scheds: scheds, Reps: 1, Seed: 23})
	rows := sw.Export(base)
	if len(rows) != len(scheds) {
		t.Fatalf("exported %d rows, want %d (one per scheduler)", len(rows), len(scheds))
	}
	for i, row := range rows {
		if row.Sched != scheds[i] {
			t.Errorf("row %d sched column %q, want %q", i, row.Sched, scheds[i])
		}
		if !strings.Contains(row.Replay, "sched="+scheds[i]) {
			t.Errorf("row %d replay token %q missing sched=%s", i, row.Replay, scheds[i])
		}
		cfg, err := ParseReplay(row.Replay)
		if err != nil {
			t.Fatalf("ParseReplay(%q): %v", row.Replay, err)
		}
		if cfg.Scheduler != scheds[i] {
			t.Errorf("replayed config scheduler %q, want %q", cfg.Scheduler, scheds[i])
		}
		res := Run(cfg)
		if res.Offered != row.Offered || res.Completed != row.Completed {
			t.Errorf("%s: replay offered/completed %d/%d, row had %d/%d",
				scheds[i], res.Offered, res.Completed, row.Offered, row.Completed)
		}
		if got := res.FCT.Mean(); got != row.FCTMean {
			t.Errorf("%s: replay FCT mean %v, row had %v", scheds[i], got, row.FCTMean)
		}
		if got := res.Goodput.Mean(); got != row.GoodputMean {
			t.Errorf("%s: replay goodput mean %v, row had %v", scheds[i], got, row.GoodputMean)
		}
		if res.DupTxBytes != row.DupTxBytes || res.DupRxBytes != row.DupRxBytes {
			t.Errorf("%s: replay dup tx/rx %d/%d, row had %d/%d",
				scheds[i], res.DupTxBytes, res.DupRxBytes, row.DupTxBytes, row.DupRxBytes)
		}
	}
	// The redundant column must actually have exercised duplication,
	// or the assertions above prove nothing.
	for _, row := range rows {
		if row.Sched == "redundant" && row.DupTxBytes == 0 {
			t.Error("redundant sweep row recorded zero duplicate bytes")
		}
		if row.Sched == "minrtt" && row.DupTxBytes != 0 {
			t.Error("minrtt sweep row recorded duplicate bytes")
		}
	}
}
