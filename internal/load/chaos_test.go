package load

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"mptcplab/internal/chaos"
	"mptcplab/internal/sim"
)

// chaosConfig is smokeConfig plus a named flap schedule: five WiFi
// outages of 500 ms every 2 s, hitting mid-transfer.
func chaosConfig() Config {
	cfg := smokeConfig()
	sched, err := chaos.Named("flap")
	if err != nil {
		panic(err)
	}
	cfg.Chaos = sched
	return cfg
}

func flapSpec() string {
	sched, _ := chaos.Named("flap")
	return sched.Spec()
}

func TestChaosRunProducesResilience(t *testing.T) {
	res := Run(chaosConfig())
	if res.Violations != 0 {
		t.Fatalf("self-check found %d violations; first: %s", res.Violations, res.FirstViolation)
	}
	if res.Resilience == nil {
		t.Fatal("chaos run produced no resilience report")
	}
	r := res.Resilience
	if res.ChaosSpec != flapSpec() {
		t.Fatalf("ChaosSpec = %q, want canonical flap spec", res.ChaosSpec)
	}
	if len(r.Windows) != 5 {
		t.Fatalf("flap schedule produced %d fault windows, want 5", len(r.Windows))
	}
	if len(r.Marks) < 10 {
		t.Fatalf("only %d fault marks for 5 down/up pairs", len(r.Marks))
	}
	if len(r.Flows) == 0 {
		t.Fatal("no flows tracked")
	}
	if r.FaultDur == 0 || r.SteadyDur == 0 {
		t.Fatalf("fault/steady time split missing: fault=%v steady=%v", r.FaultDur, r.SteadyDur)
	}
	if g := r.Graceful(); g == "" {
		t.Fatal("empty graceful verdict")
	}
}

// TestChaosPerPathTelemetry asserts fade recovery per path: while WiFi
// flaps, the cell path keeps delivering through the fault windows, the
// WiFi delivery rate collapses relative to steady state, and the WiFi
// path earns recovery credits once the radio comes back.
func TestChaosPerPathTelemetry(t *testing.T) {
	res := Run(chaosConfig())
	r := res.Resilience
	if r == nil {
		t.Fatal("chaos run produced no resilience report")
	}
	if r.WiFiFaultRate.N() == 0 || r.WiFiSteadyRate.N() == 0 ||
		r.CellFaultRate.N() == 0 || r.CellSteadyRate.N() == 0 {
		t.Fatal("per-path rate accumulators empty — PathRates not wired")
	}
	if r.CellFaultRate.Mean() <= 0 {
		t.Fatalf("cell path delivered nothing through WiFi fault windows (mean %.0f B/s)",
			r.CellFaultRate.Mean())
	}
	// Absolute rates are higher inside fault windows (they land
	// mid-transfer; steady sampling includes the idle head and tail of
	// the run), so the fade shows up in WiFi's *share* of delivery.
	faultShare := r.WiFiFaultRate.Mean() / (r.WiFiFaultRate.Mean() + r.CellFaultRate.Mean())
	steadyShare := r.WiFiSteadyRate.Mean() / (r.WiFiSteadyRate.Mean() + r.CellSteadyRate.Mean())
	if faultShare >= steadyShare {
		t.Fatalf("WiFi delivery share did not drop during its outages: fault %.3f, steady %.3f",
			faultShare, steadyShare)
	}
	if n := r.WiFiPathTTR.N(); n == 0 {
		t.Fatal("no WiFi recovery credited after any fault window")
	}
	if res.WiFiAckedBytes == 0 || res.CellAckedBytes == 0 {
		t.Fatalf("per-path acked bytes missing: wifi=%d cell=%d",
			res.WiFiAckedBytes, res.CellAckedBytes)
	}
	e := r.Export(res.ChaosSpec)
	if e.CellFaultBps <= 0 || e.WiFiSteadyBps <= 0 {
		t.Fatalf("export dropped per-path telemetry: %+v", e)
	}
}

// TestChaosSweepWorkerInvariance is the PR's golden determinism
// criterion: same seed + schedule, checker armed, serial vs 4 workers,
// all four export writers byte-identical, zero violations.
func TestChaosSweepWorkerInvariance(t *testing.T) {
	base := chaosConfig()
	base.Flows = 0
	opts := SweepOpts{
		Base:  base,
		Rates: []float64{3, 6},
		Reps:  2,
		Seed:  99,
	}
	serial := opts
	serial.Workers = 1
	parallel := opts
	parallel.Workers = 4

	sa, sp := RunSweep(serial), RunSweep(parallel)
	if sa.TotalViolations != 0 || sp.TotalViolations != 0 {
		t.Fatalf("violations: serial %d, parallel %d (first: %s)",
			sa.TotalViolations, sp.TotalViolations, sa.FirstViolation)
	}
	for _, pair := range []struct {
		name string
		f    func(*Sweep) []byte
	}{
		{"csv", func(s *Sweep) []byte {
			var b bytes.Buffer
			if err := s.WriteCSV(&b, opts.Base); err != nil {
				t.Fatal(err)
			}
			return b.Bytes()
		}},
		{"json", func(s *Sweep) []byte {
			var b bytes.Buffer
			if err := s.WriteJSON(&b, opts.Base); err != nil {
				t.Fatal(err)
			}
			return b.Bytes()
		}},
		{"resilience-csv", func(s *Sweep) []byte {
			var b bytes.Buffer
			if err := s.WriteResilienceCSV(&b, opts.Base); err != nil {
				t.Fatal(err)
			}
			return b.Bytes()
		}},
		{"resilience-json", func(s *Sweep) []byte {
			var b bytes.Buffer
			if err := s.WriteResilienceJSON(&b, opts.Base); err != nil {
				t.Fatal(err)
			}
			return b.Bytes()
		}},
	} {
		ba, bp := pair.f(sa), pair.f(sp)
		if len(ba) == 0 {
			t.Fatalf("%s export is empty", pair.name)
		}
		if !bytes.Equal(ba, bp) {
			t.Fatalf("%s export differs between -workers 1 and -workers 4", pair.name)
		}
	}
	rows := sa.ExportResilience(opts.Base)
	if len(rows) != 4 {
		t.Fatalf("resilience export has %d rows, want 4", len(rows))
	}
	for _, e := range rows {
		if e.Schedule != flapSpec() {
			t.Fatalf("row schedule %q, want flap spec", e.Schedule)
		}
		if !strings.Contains(e.Replay, "chaos="+e.Schedule) {
			t.Fatalf("replay token %q does not embed the chaos spec", e.Replay)
		}
	}
}

// sabotage installs a testRunHook for the duration of one test. The
// hook fires only for the run whose derived seed matches target.
func sabotage(t *testing.T, target int64, fn func(f *fleet)) {
	t.Helper()
	testRunHook = func(f *fleet) {
		if f.cfg.Seed == target {
			fn(f)
		}
	}
	t.Cleanup(func() { testRunHook = nil })
}

// TestSweepContainsPanickingRun: a run that panics mid-sweep becomes a
// single structured failed row; every other run completes normally.
func TestSweepContainsPanickingRun(t *testing.T) {
	opts := SweepOpts{Base: smokeConfig(), Reps: 3, Seed: 17, Workers: 2}
	target := opts.RunSeed(0, 1)
	sabotage(t, target, func(f *fleet) { panic("injected fault") })

	sw := RunSweep(opts)
	if sw.FailedRuns != 1 {
		t.Fatalf("FailedRuns = %d, want 1", sw.FailedRuns)
	}
	rows := sw.Export(opts.Base)
	if len(rows) != 3 {
		t.Fatalf("exported %d rows, want 3", len(rows))
	}
	var failed, ok int
	for _, e := range rows {
		if e.Failed {
			failed++
			if !strings.Contains(e.FailReason, "injected fault") {
				t.Fatalf("fail reason %q missing panic message", e.FailReason)
			}
			if strings.ContainsAny(e.FailReason, "\n") || strings.Contains(e.FailReason, "goroutine") {
				t.Fatalf("fail reason leaked a stack trace: %q", e.FailReason)
			}
			if e.Seed != target {
				t.Fatalf("failed row has seed %d, want sabotaged %d", e.Seed, target)
			}
			if !strings.Contains(e.Replay, "seed=") {
				t.Fatalf("failed row lost its replay token: %q", e.Replay)
			}
		} else {
			ok++
			if e.Completed == 0 {
				t.Fatalf("healthy run rep=%d completed nothing", e.Rep)
			}
		}
	}
	if failed != 1 || ok != 2 {
		t.Fatalf("failed=%d ok=%d, want 1/2", failed, ok)
	}
}

// TestSweepContainsLivelockedRun: a run whose event loop stops
// advancing virtual time is killed by the watchdog and reported as a
// failed row, while the rest of the sweep completes.
func TestSweepContainsLivelockedRun(t *testing.T) {
	opts := SweepOpts{Base: smokeConfig(), Reps: 3, Seed: 23, Workers: 2}
	target := opts.RunSeed(0, 2)
	sabotage(t, target, func(f *fleet) {
		var spin func()
		spin = func() { f.s.At(f.s.Now(), "spin", spin) }
		f.s.At(5*sim.Second, "spin", spin)
	})

	sw := RunSweep(opts)
	if sw.FailedRuns != 1 {
		t.Fatalf("FailedRuns = %d, want 1", sw.FailedRuns)
	}
	var found bool
	for _, e := range sw.Export(opts.Base) {
		if !e.Failed {
			continue
		}
		found = true
		if e.Seed != target {
			t.Fatalf("livelocked row has seed %d, want %d", e.Seed, target)
		}
		if !strings.Contains(e.FailReason, "livelock") {
			t.Fatalf("fail reason %q does not name the livelock", e.FailReason)
		}
	}
	if !found {
		t.Fatal("no failed row exported for the livelocked run")
	}
}

// TestSweepCancelExportsPartial: cancelling mid-sweep stops new runs
// but keeps every completed row exportable.
func TestSweepCancelExportsPartial(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opts := SweepOpts{
		Base: smokeConfig(), Reps: 5, Seed: 31, Workers: 1,
		Context: ctx,
		Progress: func(done, total int) {
			if done == 2 {
				cancel()
			}
		},
	}
	sw := RunSweep(opts)
	if !sw.Cancelled {
		t.Fatal("sweep not marked cancelled")
	}
	rows := sw.Export(opts.Base)
	if len(rows) != 2 {
		t.Fatalf("partial export has %d rows, want the 2 completed before cancel", len(rows))
	}
	var csv, res bytes.Buffer
	if err := sw.WriteCSV(&csv, opts.Base); err != nil {
		t.Fatalf("partial CSV export: %v", err)
	}
	if err := sw.WriteResilienceCSV(&res, opts.Base); err != nil {
		t.Fatalf("partial resilience export: %v", err)
	}
}

// TestSweepCancelBeforeStart: an already-cancelled context yields an
// empty but well-formed sweep at any worker count.
func TestSweepCancelBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		sw := RunSweep(SweepOpts{
			Base: smokeConfig(), Reps: 2, Seed: 5, Workers: workers, Context: ctx,
		})
		if !sw.Cancelled {
			t.Fatalf("workers=%d: not marked cancelled", workers)
		}
		if n := len(sw.Export(smokeConfig())); n != 0 {
			t.Fatalf("workers=%d: pre-cancelled sweep exported %d rows", workers, n)
		}
	}
}
