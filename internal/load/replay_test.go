package load

import (
	"strings"
	"testing"

	"mptcplab/internal/chaos"
	"mptcplab/internal/sim"
	"mptcplab/internal/units"
)

// TestReplayTokenRoundTrip: ParseReplay must invert ReplayToken for
// every workload shape — a token that cannot rebuild its config would
// make exported rows unreproducible.
func TestReplayTokenRoundTrip(t *testing.T) {
	configs := []Config{
		{}, // all defaults
		{Clients: 200, Rate: 8, Seed: 42},
		{Clients: 50, Flows: 500, Seed: -3, Controller: "olia", Scheduler: "round-robin"},
		{Sessions: 30, ThinkMean: 5 * sim.Second, SampleProfiles: true, SelfCheck: true},
		{
			Clients: 10, Rate: 0.5, Duration: 15 * sim.Second, Drain: 5 * sim.Second,
			Sizes:      FixedSize(64 * units.KB),
			Transports: TransportMix{WiFi: 0.25, Cell: 0.25, MPTCP: 0.5},
			Background: Background{WiFiDown: 8 * units.Mbps, CellUp: 256 * units.Kbps},
		},
	}
	for _, cfg := range configs {
		tok := cfg.ReplayToken()
		back, err := ParseReplay(tok)
		if err != nil {
			t.Fatalf("ParseReplay(%q): %v", tok, err)
		}
		if got := back.ReplayToken(); got != tok {
			t.Errorf("token round trip changed:\n  orig  %s\n  again %s", tok, got)
		}
	}
	if _, err := ParseReplay("clients=10,bogus"); err == nil {
		t.Error("ParseReplay accepted a part with no '='")
	}
	if _, err := ParseReplay("wat=1"); err == nil {
		t.Error("ParseReplay accepted an unknown key")
	}
}

// TestReplayReproducesSweepRow: the token exported with a sweep row
// must re-execute to that row's exact numbers — the whole point of
// carrying it.
func TestReplayReproducesSweepRow(t *testing.T) {
	base := Config{
		Clients:   10,
		Duration:  5 * sim.Second,
		Drain:     10 * sim.Second,
		SelfCheck: true,
	}
	sw := RunSweep(SweepOpts{Base: base, Rates: []float64{3}, Reps: 1, Seed: 11})
	rows := sw.Export(base)
	if len(rows) != 1 {
		t.Fatalf("exported %d rows, want 1", len(rows))
	}
	row := rows[0]

	cfg, err := ParseReplay(row.Replay)
	if err != nil {
		t.Fatalf("ParseReplay(%q): %v", row.Replay, err)
	}
	res := Run(cfg)
	if res.Offered != row.Offered || res.Completed != row.Completed {
		t.Errorf("replay offered/completed %d/%d, row had %d/%d",
			res.Offered, res.Completed, row.Offered, row.Completed)
	}
	if got := res.FCT.Mean(); got != row.FCTMean {
		t.Errorf("replay FCT mean %v, row had %v", got, row.FCTMean)
	}
	if got := res.Goodput.Mean(); got != row.GoodputMean {
		t.Errorf("replay goodput mean %v, row had %v", got, row.GoodputMean)
	}
}

// TestParseSizeDist covers the named mixes, fixed sizes, and rejects.
func TestParseSizeDist(t *testing.T) {
	for spec, name := range map[string]string{
		"small": "small", "web": "web", "heavy": "heavy", "64KB": "64KB",
	} {
		d, err := ParseSizeDist(spec)
		if err != nil {
			t.Fatalf("ParseSizeDist(%q): %v", spec, err)
		}
		if d.Name() != name {
			t.Errorf("ParseSizeDist(%q).Name() = %q, want %q", spec, d.Name(), name)
		}
	}
	if _, err := ParseSizeDist("enormous"); err == nil {
		t.Error("ParseSizeDist accepted an unknown name")
	}

	// Every distribution must sample inside its declared support.
	rng := sim.NewRNG(3)
	for _, d := range []SizeDist{SmallFlowMix(), WebMix(), HeavyTail(), FixedSize(units.MB)} {
		lo, hi := units.ByteCount(1), units.ByteCount(1)<<40
		if p, ok := d.(BoundedPareto); ok {
			lo, hi = p.Lo, p.Hi
		}
		for i := 0; i < 2000; i++ {
			if s := d.Sample(rng); s < lo || s > hi {
				t.Fatalf("%s sampled %d outside [%d,%d]", d.Name(), s, lo, hi)
			}
		}
	}

	// The heavy tail must actually be heavy: with alpha close to 1, a
	// few thousand draws should span several orders of magnitude.
	h := HeavyTail()
	var minS, maxS units.ByteCount = 1 << 62, 0
	for i := 0; i < 5000; i++ {
		s := h.Sample(rng)
		if s < minS {
			minS = s
		}
		if s > maxS {
			maxS = s
		}
	}
	if maxS < 1000*minS {
		t.Errorf("heavy tail spanned only %d..%d; expected orders of magnitude", minS, maxS)
	}
}

// TestParseTransportMix covers named stacks, weighted lists, rejects,
// and the String inverse.
func TestParseTransportMix(t *testing.T) {
	cases := map[string]TransportMix{
		"mptcp":                       {MPTCP: 1},
		"":                            {MPTCP: 1},
		"tcp-wifi":                    {WiFi: 1},
		"cell":                        {Cell: 1},
		"wifi=0.3,cell=0.2,mptcp=0.5": {WiFi: 0.3, Cell: 0.2, MPTCP: 0.5},
	}
	for spec, want := range cases {
		m, err := ParseTransportMix(spec)
		if err != nil {
			t.Fatalf("ParseTransportMix(%q): %v", spec, err)
		}
		if m != want {
			t.Errorf("ParseTransportMix(%q) = %+v, want %+v", spec, m, want)
		}
	}
	for _, bad := range []string{"wifi=x", "train=1", "wifi=0,cell=0,mptcp=0", "justwifi"} {
		if _, err := ParseTransportMix(bad); err == nil {
			t.Errorf("ParseTransportMix(%q) accepted", bad)
		}
	}
	// String renders a spec ParseTransportMix maps back to the same mix.
	mixed := TransportMix{WiFi: 0.25, Cell: 0.25, MPTCP: 0.5}
	back, err := ParseTransportMix(mixed.String())
	if err != nil || back != mixed {
		t.Errorf("String round trip: %q -> %+v, %v", mixed.String(), back, err)
	}
	if s := (TransportMix{MPTCP: 1}).String(); s != "mptcp" {
		t.Errorf("all-MPTCP String() = %q", s)
	}
	for tr, want := range map[FlowTransport]string{
		FlowTCPWiFi: "tcp-wifi", FlowTCPCell: "tcp-cell", FlowMPTCP: "mptcp",
	} {
		if tr.String() != want {
			t.Errorf("FlowTransport(%d).String() = %q, want %q", tr, tr.String(), want)
		}
	}
}

// TestSweepDescribe pins the one-line shape summary.
func TestSweepDescribe(t *testing.T) {
	sw := RunSweep(SweepOpts{
		Base:  Config{Clients: 5, Duration: sim.Second, Drain: 2 * sim.Second},
		Rates: []float64{1, 2},
		Reps:  2,
		Seed:  1,
	})
	want := "load sweep: 2 points (2 rates) x 2 reps"
	if got := sw.Describe(); !strings.HasPrefix(got, want) {
		t.Errorf("Describe() = %q, want prefix %q", got, want)
	}
}

// TestReplayTokenChaosRoundTrip: a chaos spec embedded in the token
// must come back as the same canonical schedule.
func TestReplayTokenChaosRoundTrip(t *testing.T) {
	sched, err := chaos.Parse("flap:path=wifi;at=1s;dur=200ms;every=1s;n=3+fade:path=cell;depth=0.5")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Clients: 20, Rate: 4, Seed: 9, Chaos: sched}
	tok := cfg.ReplayToken()
	if !strings.Contains(tok, "chaos="+sched.Spec()) {
		t.Fatalf("token %q does not embed canonical chaos spec", tok)
	}
	back, err := ParseReplay(tok)
	if err != nil {
		t.Fatalf("ParseReplay(%q): %v", tok, err)
	}
	if back.Chaos.Spec() != sched.Spec() {
		t.Fatalf("chaos spec changed: %q -> %q", sched.Spec(), back.Chaos.Spec())
	}
	if got := back.ReplayToken(); got != tok {
		t.Fatalf("token round trip changed:\n  orig  %s\n  again %s", tok, got)
	}
}

// TestParseReplayRejectsMalformed: every malformed or hostile token
// must fail with a one-line error — never a panic, never a wedged run.
func TestParseReplayRejectsMalformed(t *testing.T) {
	bad := []string{
		"",                                      // empty token
		"clients=10,flows",                      // truncated mid-pair
		"clients=10,flows=",                     // empty value
		"clients=-5,flows=10",                   // out-of-range fleet size
		"clients=999999",                        // beyond MaxClients
		"clients=10,dur=0s",                     // zero duration after defaults? (dur explicit 0 is default-substituted)
		"clients=10,dur=-5s",                    // negative duration
		"clients=10,flows=-3",                   // negative flow count
		"clients=10,rate=-1",                    // negative rate
		"clients=10,chaos=wat",                  // unknown chaos preset
		"clients=10,chaos=flap:dur=2s;every=1s", // invalid schedule (dur >= every)
		"clients=10,seed=notanum",               // unparseable integer
		"clients=10,sched=bogus",                // unknown scheduler
		"clients=10,sched=weighted:a;b",         // malformed weights
	}
	for _, tok := range bad {
		cfg, err := ParseReplay(tok)
		if err == nil {
			// dur=0s parses and then defaults kick in — that one is
			// legitimately accepted; everything else must error.
			if tok == "clients=10,dur=0s" {
				continue
			}
			t.Errorf("ParseReplay(%q) accepted: %+v", tok, cfg)
			continue
		}
		if strings.Contains(err.Error(), "\n") {
			t.Errorf("ParseReplay(%q) returned a multi-line error: %q", tok, err)
		}
	}
}
