package pcap

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	pkts := []Packet{
		{TS: 0, Data: []byte{1, 2, 3}},
		{TS: 1_500_000_123, Data: []byte{0xFF}},
		{TS: 3_000_000_000_000, Data: make([]byte, 1500)},
	}
	for _, p := range pkts {
		if err := w.WritePacket(p); err != nil {
			t.Fatal(err)
		}
	}
	if w.Packets != 3 {
		t.Errorf("Packets = %d", w.Packets)
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.LinkType != LinkTypeRaw {
		t.Errorf("LinkType = %d", r.LinkType)
	}
	for i, want := range pkts {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
		if got.TS != want.TS {
			t.Errorf("packet %d TS = %d, want %d", i, got.TS, want.TS)
		}
		if !bytes.Equal(got.Data, want.Data) {
			t.Errorf("packet %d data mismatch", i)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("expected EOF, got %v", err)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(ts int64, data []byte) bool {
		if ts < 0 {
			ts = -ts
		}
		// The classic pcap header stores seconds as uint32; clamp the
		// property domain to representable timestamps (~136 years).
		ts %= int64(1<<32) * 1e9
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			return false
		}
		if err := w.WritePacket(Packet{TS: ts, Data: data}); err != nil {
			return false
		}
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		got, err := r.Next()
		if err != nil {
			return false
		}
		return got.TS == ts && bytes.Equal(got.Data, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMicrosecondMagicAccepted(t *testing.T) {
	var buf bytes.Buffer
	hdr := make([]byte, 24)
	binary.LittleEndian.PutUint32(hdr[0:], MagicMicros)
	binary.LittleEndian.PutUint32(hdr[20:], LinkTypeRaw)
	buf.Write(hdr)
	// One packet: 2s + 500us, 1 data byte.
	ph := make([]byte, 16)
	binary.LittleEndian.PutUint32(ph[0:], 2)
	binary.LittleEndian.PutUint32(ph[4:], 500)
	binary.LittleEndian.PutUint32(ph[8:], 1)
	binary.LittleEndian.PutUint32(ph[12:], 1)
	buf.Write(ph)
	buf.WriteByte(0xAB)

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	p, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if p.TS != 2_000_500_000 {
		t.Errorf("TS = %d, want 2000500000 (µs scaled to ns)", p.TS)
	}
}

func TestBadMagicRejected(t *testing.T) {
	buf := bytes.NewReader(make([]byte, 24))
	if _, err := NewReader(buf); err == nil {
		t.Error("zero magic accepted")
	}
}

func TestTruncatedStreams(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Error("truncated global header accepted")
	}
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	_ = w.WritePacket(Packet{TS: 1, Data: []byte{1, 2, 3, 4}})
	full := buf.Bytes()
	// Chop mid-frame.
	r, err := NewReader(bytes.NewReader(full[:len(full)-2]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil {
		t.Error("truncated frame read without error")
	}
}
