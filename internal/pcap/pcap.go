// Package pcap reads and writes libpcap capture files. The simulator's
// capture taps encode segments as genuine raw-IP frames (linktype 101),
// so files written here open in tcpdump/tshark/wireshark — mirroring
// the paper's methodology of collecting tcpdump traces at both
// endpoints and analyzing them offline (§3.2).
package pcap

import (
	"encoding/binary"
	"fmt"
	"io"
)

// File format constants.
const (
	// MagicNanos is the nanosecond-resolution pcap magic.
	MagicNanos = 0xa1b23c4d
	// MagicMicros is the classic microsecond magic.
	MagicMicros = 0xa1b2c3d4
	// LinkTypeRaw is LINKTYPE_RAW: packets begin with the IP header.
	LinkTypeRaw = 101

	versionMajor = 2
	versionMinor = 4
	snapLen      = 262144
)

// Packet is one captured frame.
type Packet struct {
	// TS is the capture timestamp in nanoseconds since the start of
	// the simulation (pcap epoch 0).
	TS int64
	// Data is the raw frame starting at the IP header.
	Data []byte
}

// Writer emits a pcap stream.
type Writer struct {
	w   io.Writer
	err error
	buf [16]byte

	// Packets counts frames written.
	Packets uint64
}

// NewWriter writes the global header and returns a packet writer.
func NewWriter(w io.Writer) (*Writer, error) {
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:], MagicNanos)
	binary.LittleEndian.PutUint16(hdr[4:], versionMajor)
	binary.LittleEndian.PutUint16(hdr[6:], versionMinor)
	// thiszone, sigfigs: zero.
	binary.LittleEndian.PutUint32(hdr[16:], snapLen)
	binary.LittleEndian.PutUint32(hdr[20:], LinkTypeRaw)
	if _, err := w.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("pcap: writing header: %w", err)
	}
	return &Writer{w: w}, nil
}

// WritePacket appends one frame.
func (w *Writer) WritePacket(p Packet) error {
	if w.err != nil {
		return w.err
	}
	sec := uint32(p.TS / 1e9)
	nsec := uint32(p.TS % 1e9)
	binary.LittleEndian.PutUint32(w.buf[0:], sec)
	binary.LittleEndian.PutUint32(w.buf[4:], nsec)
	binary.LittleEndian.PutUint32(w.buf[8:], uint32(len(p.Data)))
	binary.LittleEndian.PutUint32(w.buf[12:], uint32(len(p.Data)))
	if _, err := w.w.Write(w.buf[:]); err != nil {
		w.err = fmt.Errorf("pcap: %w", err)
		return w.err
	}
	if _, err := w.w.Write(p.Data); err != nil {
		w.err = fmt.Errorf("pcap: %w", err)
		return w.err
	}
	w.Packets++
	return nil
}

// Reader consumes a pcap stream.
type Reader struct {
	r        io.Reader
	nanos    bool
	swapped  bool
	LinkType uint32
}

// NewReader parses the global header.
func NewReader(r io.Reader) (*Reader, error) {
	var hdr [24]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("pcap: reading header: %w", err)
	}
	magic := binary.LittleEndian.Uint32(hdr[0:])
	rd := &Reader{r: r}
	switch magic {
	case MagicNanos:
		rd.nanos = true
	case MagicMicros:
	default:
		// Try big-endian captures.
		magicBE := binary.BigEndian.Uint32(hdr[0:])
		switch magicBE {
		case MagicNanos:
			rd.nanos, rd.swapped = true, true
		case MagicMicros:
			rd.swapped = true
		default:
			return nil, fmt.Errorf("pcap: bad magic %#x", magic)
		}
	}
	if rd.swapped {
		rd.LinkType = binary.BigEndian.Uint32(hdr[20:])
	} else {
		rd.LinkType = binary.LittleEndian.Uint32(hdr[20:])
	}
	return rd, nil
}

func (r *Reader) u32(b []byte) uint32 {
	if r.swapped {
		return binary.BigEndian.Uint32(b)
	}
	return binary.LittleEndian.Uint32(b)
}

// Next returns the next frame, or io.EOF at the end of the stream.
func (r *Reader) Next() (Packet, error) {
	var hdr [16]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			err = io.EOF
		}
		return Packet{}, err
	}
	sec := int64(r.u32(hdr[0:]))
	sub := int64(r.u32(hdr[4:]))
	incl := r.u32(hdr[8:])
	if incl > snapLen {
		return Packet{}, fmt.Errorf("pcap: frame length %d exceeds snaplen", incl)
	}
	data := make([]byte, incl)
	if _, err := io.ReadFull(r.r, data); err != nil {
		return Packet{}, fmt.Errorf("pcap: truncated frame: %w", err)
	}
	ts := sec * 1e9
	if r.nanos {
		ts += sub
	} else {
		ts += sub * 1000
	}
	return Packet{TS: ts, Data: data}, nil
}
