package check

import (
	"mptcplab/internal/sim"
	"mptcplab/internal/units"
)

// The scheduler conformance harness runs every registered packet
// scheduler through an identical battery of deterministic scenarios
// with the invariant checker armed, and measures the path-placement
// behavior each scheduler promises: byte split across access paths,
// duplicate-transmission volume, and the longest delivery stall seen
// by the receiver. The battery reuses the fuzzer's Figure-1 harness
// (RunScenario) so every conformance run gets the full wire/DSS rule
// set and the byte-stream oracle for free.

// ConformanceScenario is one battery entry: a fixed, fully explicit
// Scenario (nothing derived from the seed — the seed only feeds link
// RNG streams) under a descriptive name.
type ConformanceScenario struct {
	Name string
	Base Scenario
}

// conformancePeriod is the delivery-probe sampling interval. Stall
// measurements subtract one period as the resolution floor, so a
// receiver whose in-order edge advances every probe — or misses a
// single probe — reports 0; only sustained multi-period gaps count.
const conformancePeriod = 50 * sim.Millisecond

// ConformanceBattery returns the standard scenario battery: steady
// state, asymmetric RTT, a mid-transfer single-path blackout, and a
// handover storm. Every registered scheduler must complete each with
// zero invariant violations; the measured placement behavior feeds
// the scheduler-specific property assertions.
func ConformanceBattery() []ConformanceScenario {
	wifi := PathParams{Rate: 20 * units.Mbps, Delay: 10 * sim.Millisecond, Queue: 256 * units.KB}
	cell := PathParams{Rate: 8 * units.Mbps, Delay: 40 * sim.Millisecond, Queue: 512 * units.KB}
	base := func(seed int64, size int) Scenario {
		return Scenario{Seed: seed, Size: size, RcvBuf: 2 * units.MB, WiFi: wifi, Cell: cell}
	}
	steady := base(101, 2<<20)
	asym := base(102, 1<<20)
	asym.WiFi = PathParams{Rate: 10 * units.Mbps, Delay: 5 * sim.Millisecond, Queue: 256 * units.KB}
	asym.Cell = PathParams{Rate: 10 * units.Mbps, Delay: 80 * sim.Millisecond, Queue: 512 * units.KB}
	// The blackout scenario makes the surviving (cellular) path the
	// capacity workhorse: a redundant scheduler's duplicate stream
	// then stays caught up with the in-order edge, so when WiFi dies
	// mid-transfer the copies already cover the stranded bytes — the
	// zero-stall property under test. (With a slow surviving path the
	// duplicates would lag by the coupled controller's ramp deficit
	// and every scheduler would stall on the catch-up.) minrtt still
	// prefers WiFi — its 10 ms delay beats cellular's 30 ms — so the
	// outage strands real in-flight data on the dead path.
	blackout := base(103, 8<<20)
	blackout.WiFi = PathParams{Rate: 6 * units.Mbps, Delay: 10 * sim.Millisecond, Queue: 128 * units.KB}
	blackout.Cell = PathParams{Rate: 30 * units.Mbps, Delay: 30 * sim.Millisecond, Queue: 512 * units.KB}
	blackout.Faults = []Fault{{Kind: FaultWiFiOutage, At: 1 * sim.Second, Dur: 3 * sim.Second}}
	blackout.Mask = 1
	storm := base(104, 1<<20)
	storm.Faults = []Fault{{Kind: FaultHandoverStorm, At: 500 * sim.Millisecond, Dur: 1 * sim.Second}}
	storm.Mask = 1
	// The fade scenario is the mmWave-blockage shape: the fast path
	// sinks through a deep raised-cosine fade mid-transfer — never
	// administratively down, just starved and lossy — while the slower
	// path stays healthy. A scheduler that keeps trusting the fast
	// path's pre-fade reputation (static weighted's cumulative deficit
	// gate) crawls in lockstep with the faded link for the whole fade;
	// HoL-aware and delivery-rate-adaptive policies must shift to the
	// healthy path and finish within 2x of minrtt.
	fade := base(105, 8<<20)
	fade.WiFi = PathParams{Rate: 20 * units.Mbps, Delay: 10 * sim.Millisecond, Queue: 256 * units.KB}
	fade.Cell = PathParams{Rate: 8 * units.Mbps, Delay: 40 * sim.Millisecond, Queue: 512 * units.KB}
	fade.Faults = []Fault{{Kind: FaultWiFiFade, At: 1 * sim.Second, Dur: 20 * sim.Second, Par: 1.0}}
	fade.Mask = 1
	return []ConformanceScenario{
		{Name: "steady-state", Base: steady},
		{Name: "asymmetric-rtt", Base: asym},
		{Name: "blackout", Base: blackout},
		{Name: "handover-storm", Base: storm},
		{Name: "fade", Base: fade},
	}
}

// ConformanceResult is one scheduler x scenario outcome.
type ConformanceResult struct {
	Scheduler string
	Scenario  string
	Report    Report

	// Sender-side payload bytes per access path (server subflows,
	// classified by the client address they serve).
	WiFiTxBytes int64
	CellTxBytes int64

	// Redundancy accounting: duplicate bytes the sender scheduled and
	// the receiver discarded.
	DupTxBytes int64
	DupRxBytes int64

	// Placement telemetry from the sender: fresh-chunk placements per
	// subflow index and the number of consecutive placements that
	// switched subflow (round-robin alternation shows up here).
	PlaceCounts   []int
	PlaceSwitches int

	// LongestStall is the longest span the receiver's in-order
	// delivery edge failed to advance, sampled every conformancePeriod
	// between first byte and completion, minus one period of sampling
	// resolution. A scheduler that keeps data flowing through a fault
	// reports 0 here.
	LongestStall sim.Time
}

// Ok reports a violation-free, completed, fully delivered run. The
// delivered count includes the web layer's request/response framing,
// so it must reach at least the payload size.
func (r ConformanceResult) Ok() bool {
	return r.Report.Ok() && r.Report.Completed &&
		r.Report.Delivered >= int64(r.Report.Scenario.Size)
}

// RunConformance executes one battery scenario under the named
// scheduler spec with the checker armed.
func RunConformance(sched string, cs ConformanceScenario) ConformanceResult {
	sc := cs.Base
	sc.Scheduler = sched
	var (
		h     *Harness
		stall *stallProbe
	)
	rep := RunScenario(sc, func(hh *Harness) {
		h = hh
		stall = watchStalls(hh, int64(sc.Size))
	})
	res := ConformanceResult{
		Scheduler:    sched,
		Scenario:     cs.Name,
		Report:       rep,
		LongestStall: stall.longest,
	}
	if h.ServerConn != nil {
		for _, sf := range h.ServerConn.Subflows() {
			if sf.EP.Remote.IP == h.CellAddr.IP {
				res.CellTxBytes += sf.EP.Stats.BytesSent
			} else {
				res.WiFiTxBytes += sf.EP.Stats.BytesSent
			}
		}
		res.DupTxBytes = h.ServerConn.DupTxBytes
		res.PlaceCounts = h.ServerConn.Placements()
		res.PlaceSwitches = h.ServerConn.PlacementSwitches()
	}
	res.DupRxBytes = h.ClientConn.Reorder().DupBytes
	return res
}

// stallProbe samples the client's in-order delivery edge on a fixed
// period and records the longest non-advancing span between the first
// delivered byte and transfer completion, net of one sampling period.
type stallProbe struct {
	longest sim.Time
}

func watchStalls(h *Harness, size int64) *stallProbe {
	p := &stallProbe{}
	var (
		last        int64
		lastAdvance sim.Time
		started     bool
	)
	var tick func()
	tick = func() {
		now := h.Sim.Now()
		d := h.ClientConn.Reorder().Delivered
		if started {
			if gap := now - lastAdvance - conformancePeriod; gap > p.longest {
				p.longest = gap
			}
		}
		if d > last {
			last, lastAdvance = d, now
			started = true
		}
		if d >= size || now+conformancePeriod > scenarioDeadline {
			return
		}
		h.Sim.At(now+conformancePeriod, "conformance.stall-probe", tick)
	}
	h.Sim.At(conformancePeriod, "conformance.stall-probe", tick)
	return p
}
