package check

import (
	"strings"
	"testing"

	"mptcplab/internal/netem"
	"mptcplab/internal/seg"
	"mptcplab/internal/sim"
)

var (
	addrA = seg.MakeAddr("10.9.9.1", 1111)
	addrB = seg.MakeAddr("10.9.9.2", 2222)
)

func newChecker() *Checker { return New(sim.New()) }

func egress(c *Checker, s *seg.Segment)  { c.OnSegment("a", netem.Egress, 0, s) }
func ingress(c *Checker, s *seg.Segment) { c.OnSegment("a", netem.Ingress, 0, s) }

// expectRule asserts the checker recorded at least one violation of
// rule and no violations of any other rule.
func expectRule(t *testing.T, c *Checker, rule string) {
	t.Helper()
	if c.Ok() {
		t.Fatalf("expected a %q violation, checker is clean", rule)
	}
	for _, v := range c.Violations() {
		if v.Rule != rule {
			t.Fatalf("unexpected violation %v (want only %q)", v, rule)
		}
	}
}

func dataSeg(src, dst seg.Addr, sn uint32, n int) *seg.Segment {
	return &seg.Segment{Src: src, Dst: dst, Seq: sn, PayloadLen: n}
}

func TestCheckerCleanSequence(t *testing.T) {
	c := newChecker()
	syn := &seg.Segment{Src: addrA, Dst: addrB, Seq: 100, Flags: seg.SYN}
	egress(c, syn)
	egress(c, dataSeg(addrA, addrB, 101, 500))
	egress(c, dataSeg(addrA, addrB, 601, 500))
	rtx := dataSeg(addrA, addrB, 101, 500)
	rtx.Retransmit = true
	egress(c, rtx)
	if !c.Ok() {
		t.Fatalf("clean sequence flagged: %v", c.Violations())
	}
}

func TestCheckerSeqGap(t *testing.T) {
	c := newChecker()
	egress(c, &seg.Segment{Src: addrA, Dst: addrB, Seq: 100, Flags: seg.SYN})
	egress(c, dataSeg(addrA, addrB, 301, 500)) // expected 101
	expectRule(t, c, "seq-gap")
}

func TestCheckerSYNISSChanged(t *testing.T) {
	c := newChecker()
	egress(c, &seg.Segment{Src: addrA, Dst: addrB, Seq: 100, Flags: seg.SYN})
	egress(c, &seg.Segment{Src: addrA, Dst: addrB, Seq: 200, Flags: seg.SYN, Retransmit: true})
	expectRule(t, c, "syn-iss-changed")
}

func TestCheckerRtxBeyondSent(t *testing.T) {
	c := newChecker()
	egress(c, &seg.Segment{Src: addrA, Dst: addrB, Seq: 100, Flags: seg.SYN})
	egress(c, dataSeg(addrA, addrB, 101, 100))
	rtx := dataSeg(addrA, addrB, 201, 100) // nothing at 201 was ever sent
	rtx.Retransmit = true
	egress(c, rtx)
	expectRule(t, c, "rtx-beyond-sent")
}

func TestCheckerRtxExtends(t *testing.T) {
	c := newChecker()
	egress(c, &seg.Segment{Src: addrA, Dst: addrB, Seq: 100, Flags: seg.SYN})
	egress(c, dataSeg(addrA, addrB, 101, 100))
	rtx := dataSeg(addrA, addrB, 151, 100) // [151,251) extends past 201
	rtx.Retransmit = true
	egress(c, rtx)
	expectRule(t, c, "rtx-extends")
}

func TestCheckerAckRegress(t *testing.T) {
	c := newChecker()
	egress(c, &seg.Segment{Src: addrB, Dst: addrA, Seq: 0, PayloadLen: 200})
	egress(c, &seg.Segment{Src: addrA, Dst: addrB, Flags: seg.ACK, Ack: 100})
	egress(c, &seg.Segment{Src: addrA, Dst: addrB, Flags: seg.ACK, Ack: 50})
	expectRule(t, c, "ack-regress")
}

func TestCheckerAckUnsent(t *testing.T) {
	c := newChecker()
	egress(c, &seg.Segment{Src: addrB, Dst: addrA, Seq: 0, Flags: seg.SYN}) // peer sent [0,1)
	egress(c, &seg.Segment{Src: addrA, Dst: addrB, Flags: seg.ACK, Ack: 500})
	expectRule(t, c, "ack-unsent")
}

func TestCheckerSACK(t *testing.T) {
	cases := []struct {
		rule   string
		ack    uint32
		blocks []seg.SACKBlock
	}{
		{"sack-empty", 10, []seg.SACKBlock{{Start: 50, End: 50}}},
		{"sack-below-ack", 100, []seg.SACKBlock{{Start: 50, End: 80}}},
		{"sack-overlap", 10, []seg.SACKBlock{{Start: 20, End: 40}, {Start: 30, End: 50}}},
	}
	for _, tc := range cases {
		t.Run(tc.rule, func(t *testing.T) {
			c := newChecker()
			s := &seg.Segment{Src: addrA, Dst: addrB, Flags: seg.ACK, Ack: tc.ack}
			s.AddOption(seg.SACKOption{Blocks: tc.blocks})
			egress(c, s)
			expectRule(t, c, tc.rule)
		})
	}
}

func TestCheckerSACKUnsent(t *testing.T) {
	c := newChecker()
	egress(c, &seg.Segment{Src: addrB, Dst: addrA, Seq: 0, Flags: seg.SYN}) // peer sent [0,1)
	s := &seg.Segment{Src: addrA, Dst: addrB, Flags: seg.ACK, Ack: 1}
	s.AddOption(seg.SACKOption{Blocks: []seg.SACKBlock{{Start: 100, End: 200}}})
	egress(c, s)
	expectRule(t, c, "sack-unsent")
}

func TestCheckerWindowOverrun(t *testing.T) {
	c := newChecker()
	// B announces window scale 2 on its SYN.
	syn := &seg.Segment{Src: addrB, Dst: addrA, Seq: 0, Flags: seg.SYN}
	syn.AddOption(seg.WindowScaleOption{Shift: 2})
	c.OnSegment("b", netem.Egress, 0, syn)
	// A receives B's ACK: right edge = 500 + 100<<2 = 900.
	ingress(c, &seg.Segment{Src: addrB, Dst: addrA, Flags: seg.ACK, Ack: 500, Window: 100})

	inside := dataSeg(addrA, addrB, 500, 400) // ends exactly at 900
	egress(c, inside)
	if !c.Ok() {
		t.Fatalf("payload inside advertised window flagged: %v", c.Violations())
	}
	over := dataSeg(addrA, addrB, 900, 1) // contiguous, one byte past the edge
	egress(c, over)
	expectRule(t, c, "window-overrun")
}

func TestCheckerDSSLength(t *testing.T) {
	c := newChecker()
	s := dataSeg(addrA, addrB, 1, 100)
	s.AddOption(seg.DSSOption{HasMap: true, DataSeq: 1, SubflowSeq: 1, Length: 50})
	ingress(c, s)
	expectRule(t, c, "dss-length")
}

func TestCheckerDSSSubflowSeq(t *testing.T) {
	c := newChecker()
	egress(c, &seg.Segment{Src: addrA, Dst: addrB, Seq: 100, Flags: seg.SYN})
	s := dataSeg(addrA, addrB, 101, 100)
	s.AddOption(seg.DSSOption{HasMap: true, DataSeq: 1, SubflowSeq: 999, Length: 100})
	egress(c, s)
	expectRule(t, c, "dss-subflow-seq")
}

func TestCheckerDSSRemap(t *testing.T) {
	c := newChecker()
	s1 := dataSeg(addrA, addrB, 1, 100)
	s1.AddOption(seg.DSSOption{HasMap: true, DataSeq: 1000, SubflowSeq: 1, Length: 100})
	ingress(c, s1)
	// Same subflow bytes re-presented with a different data sequence.
	s2 := dataSeg(addrA, addrB, 1, 100)
	s2.AddOption(seg.DSSOption{HasMap: true, DataSeq: 2000, SubflowSeq: 1, Length: 100})
	ingress(c, s2)
	expectRule(t, c, "dss-remap")
}

func TestCheckerDSSRemapConsistentDuplicate(t *testing.T) {
	c := newChecker()
	for i := 0; i < 2; i++ { // exact duplicate delivery is legal
		s := dataSeg(addrA, addrB, 1, 100)
		s.AddOption(seg.DSSOption{HasMap: true, DataSeq: 1000, SubflowSeq: 1, Length: 100})
		ingress(c, s)
	}
	if !c.Ok() {
		t.Fatalf("consistent duplicate mapping flagged: %v", c.Violations())
	}
}

func TestCheckerDataAckRegress(t *testing.T) {
	c := newChecker()
	s1 := &seg.Segment{Src: addrA, Dst: addrB, Flags: seg.ACK}
	s1.AddOption(seg.DSSOption{HasAck: true, DataAck: 1000})
	egress(c, s1)
	s2 := &seg.Segment{Src: addrA, Dst: addrB, Flags: seg.ACK}
	s2.AddOption(seg.DSSOption{HasAck: true, DataAck: 500})
	egress(c, s2)
	expectRule(t, c, "dack-regress")
}

func TestCheckerDataFinMoved(t *testing.T) {
	c := newChecker()
	s1 := &seg.Segment{Src: addrA, Dst: addrB, Flags: seg.ACK}
	s1.AddOption(seg.DSSOption{HasMap: true, DataFin: true, DataSeq: 500})
	ingress(c, s1)
	s2 := &seg.Segment{Src: addrA, Dst: addrB, Flags: seg.ACK}
	s2.AddOption(seg.DSSOption{HasMap: true, DataFin: true, DataSeq: 600})
	ingress(c, s2)
	expectRule(t, c, "datafin-moved")
}

func TestCheckerIgnoresRST(t *testing.T) {
	c := newChecker()
	egress(c, &seg.Segment{Src: addrA, Dst: addrB, Seq: 100, Flags: seg.SYN})
	egress(c, &seg.Segment{Src: addrA, Dst: addrB, Seq: 9999, Flags: seg.RST})
	if !c.Ok() {
		t.Fatalf("RST flagged: %v", c.Violations())
	}
}

func TestCheckerMaxViolations(t *testing.T) {
	c := newChecker()
	c.MaxViolations = 3
	for i := 0; i < 10; i++ {
		c.Report("synthetic", "overflow test")
	}
	if got := len(c.Violations()); got != 3 {
		t.Fatalf("retained %d violations, want cap 3", got)
	}
	if c.Count() != 10 {
		t.Fatalf("Count() = %d, want 10", c.Count())
	}
}

func TestCheckerArmLink(t *testing.T) {
	s := sim.New()
	c := New(s)
	l := netem.NewLink(s, sim.NewRNG(1), "lnk")
	c.ArmLink(l)
	if l.OnBadOwnership == nil {
		t.Fatal("ArmLink did not install the ownership hook")
	}
	l.OnBadOwnership("lnk", &seg.Segment{})
	if c.Ok() {
		t.Fatal("ownership hook did not record a violation")
	}
	if v := c.Violations()[0]; v.Rule != "pool-ownership" || !strings.Contains(v.Detail, "lnk") {
		t.Fatalf("unexpected violation %v", v)
	}
}
