// Package check is mptcplab's opt-in correctness layer: an online
// protocol-invariant checker that observes every segment through the
// hosts' raw taps and asserts TCP and MPTCP invariants as the
// simulation runs — sequence-space monotonicity per subflow, SACK
// legality, DSS mapping consistency, advertised-window respect,
// congestion-state sanity (via periodic probes into the stacks'
// CheckInvariants observation points), segment-pool linear ownership,
// and an end-to-end byte-stream oracle.
//
// Nothing in this package runs unless a Checker is attached, so normal
// simulations pay zero cost; with one attached, runs remain
// deterministic and bit-identical because the checker draws no
// randomness and never mutates what it observes.
package check

import (
	"fmt"

	"mptcplab/internal/mptcp"
	"mptcplab/internal/netem"
	"mptcplab/internal/seg"
	"mptcplab/internal/sim"
	"mptcplab/internal/tcp"
)

// Violation is one detected invariant breach.
type Violation struct {
	At     sim.Time
	Rule   string
	Detail string
}

func (v Violation) String() string {
	return fmt.Sprintf("%v [%s] %s", v.At, v.Rule, v.Detail)
}

// flowKey identifies one direction of one subflow.
type flowKey struct{ src, dst seg.Addr }

// mapIv is a verified DSS mapping interval in subflow-sequence space:
// [start, end) maps to data sequence start+delta.
type mapIv struct {
	start, end uint32
	delta      uint64
}

// flowState is the checker's wire-level view of one flow direction.
type flowState struct {
	sawSYN bool
	iss    uint32
	wscale uint8 // window-scale shift this flow's sender advertised

	// A 4-tuple may be reused: if a subflow handshake dies, the client
	// retries from the same port with a fresh ISS. prevIss remembers the
	// superseded incarnation so its straggling SYN retransmissions (a
	// half-open server endpoint keeps re-sending its old SYN-ACK) are
	// recognized as stale rather than flagged against the new state.
	prevSet bool
	prevIss uint32

	maxEndSet bool
	maxEnd    uint32 // highest sequence-space End sent, in egress order

	maxAckSet bool
	maxAck    uint32 // highest cumulative ACK this flow has carried

	edgeSet bool
	edge    uint32 // highest advertised right edge for this flow's data

	dackSet    bool
	maxDataAck uint64

	finSeq uint64 // data-level FIN point (DataSeq+Length); 0 = unseen

	maps []mapIv
}

// watcher is one registered stack-state probe.
type watcher struct {
	name   string
	probe  func() error
	active func() bool
}

// Checker accumulates invariant violations for a single simulation.
// Attach it to hosts with trace.AttachObserver, register stack probes
// with WatchEndpoint/WatchConn, and arm periodic probing with
// ArmProbes. It is not safe for concurrent use; like everything else
// it is confined to one simulator goroutine.
type Checker struct {
	// MaxViolations caps how many violations are retained in detail
	// (the count keeps incrementing past it).
	MaxViolations int

	sim        *sim.Simulator
	flows      map[flowKey]*flowState
	violations []Violation
	count      int
	watchers   []watcher
}

// New returns an empty checker bound to the simulator's clock.
func New(s *sim.Simulator) *Checker {
	return &Checker{MaxViolations: 64, sim: s, flows: make(map[flowKey]*flowState)}
}

// Violations returns the retained violations (oldest first).
func (c *Checker) Violations() []Violation { return c.violations }

// Count reports the total number of violations, including any dropped
// past MaxViolations.
func (c *Checker) Count() int { return c.count }

// Ok reports whether no invariant has been violated.
func (c *Checker) Ok() bool { return c.count == 0 }

// Report records an externally detected violation (e.g. a harness-level
// oracle or a link ownership hook).
func (c *Checker) Report(rule, detail string) {
	c.count++
	if len(c.violations) < c.MaxViolations {
		c.violations = append(c.violations, Violation{At: c.sim.Now(), Rule: rule, Detail: detail})
	}
}

func (c *Checker) violatef(rule, format string, args ...any) {
	c.Report(rule, fmt.Sprintf(format, args...))
}

func (c *Checker) flow(src, dst seg.Addr) *flowState {
	k := flowKey{src, dst}
	f := c.flows[k]
	if f == nil {
		f = &flowState{}
		c.flows[k] = f
	}
	return f
}

func (c *Checker) peekFlow(src, dst seg.Addr) *flowState {
	return c.flows[flowKey{src, dst}]
}

// OnSegment observes one live segment at a host interface. It
// implements trace.SegmentObserver; host is the observing host's name.
// Egress observations carry the sender's authoritative ordering and
// drive the monotonicity checks; ingress observations harvest window
// advertisements (the sender can only act on ACKs that arrived) and
// re-verify DSS consistency, which is order-independent.
func (c *Checker) OnSegment(host string, dir netem.Direction, at sim.Time, s *seg.Segment) {
	if s.Flags.Has(seg.RST) {
		return
	}
	if dir == netem.Egress {
		c.onEgress(s)
	} else {
		c.onIngress(s)
	}
}

func (c *Checker) onEgress(s *seg.Segment) {
	f := c.flow(s.Src, s.Dst)
	rev := c.peekFlow(s.Dst, s.Src)

	// Sequence-space monotonicity, in the sender's own send order.
	switch {
	case s.Flags.Has(seg.SYN):
		if f.sawSYN && s.Seq != f.iss {
			if f.prevSet && s.Seq == f.prevIss {
				// Straggling retransmit from the superseded incarnation
				// (see flowState.prevIss): its seq/ack numbers live in
				// the old spaces, so skip every check for this segment.
				return
			}
			if s.Retransmit {
				// The stack marks SYN retransmits; a retransmitted SYN
				// must repeat the ISS it originally carried.
				c.violatef("syn-iss-changed", "%v>%v SYN seq %d, initial was %d", s.Src, s.Dst, s.Seq, f.iss)
				break
			}
			// A fresh SYN with a new ISS is a new connection incarnation
			// on a reused 4-tuple. Reset both directions' state — every
			// sequence number learned so far belongs to the old
			// incarnation — and fall through to learn the new one.
			*f = flowState{prevSet: true, prevIss: f.iss}
			if rev != nil && rev.sawSYN {
				*rev = flowState{prevSet: true, prevIss: rev.iss}
			}
		}
		if !f.sawSYN {
			if f.prevSet && s.Seq == f.prevIss && s.Retransmit {
				// The flow was just reset by the peer's new incarnation,
				// and the superseded endpoint's SYN retransmit straggled
				// in first. Don't let it hijack the fresh state.
				return
			}
			f.sawSYN = true
			f.iss = s.Seq
			f.maxEnd, f.maxEndSet = s.End(), true
			if o := s.Option(seg.KindWindowScale); o != nil {
				f.wscale = o.(seg.WindowScaleOption).Shift
			}
		}
	case !f.maxEndSet:
		// Attached mid-connection: learn the high-water mark.
		f.maxEnd, f.maxEndSet = s.End(), true
	case s.PayloadLen > 0 || s.Flags.Has(seg.FIN):
		if s.Retransmit {
			if !seg.SeqLT(s.Seq, f.maxEnd) {
				c.violatef("rtx-beyond-sent", "%v>%v retransmit at %d, but only [..%d) was ever sent", s.Src, s.Dst, s.Seq, f.maxEnd)
			} else if !seg.SeqLEQ(s.End(), f.maxEnd) {
				c.violatef("rtx-extends", "%v>%v retransmit [%d,%d) extends past sent data %d", s.Src, s.Dst, s.Seq, s.End(), f.maxEnd)
			}
		} else if s.Seq != f.maxEnd {
			c.violatef("seq-gap", "%v>%v fresh data at %d, expected contiguous %d", s.Src, s.Dst, s.Seq, f.maxEnd)
		}
		f.maxEnd = seg.SeqMax(f.maxEnd, s.End())
	default:
		// Pure ACK: sits at the left of unsent space.
		if seg.SeqGT(s.Seq, f.maxEnd) {
			c.violatef("seq-gap", "%v>%v pure ACK seq %d beyond sent data %d", s.Src, s.Dst, s.Seq, f.maxEnd)
		}
	}

	// Cumulative ACK discipline.
	if s.Flags.Has(seg.ACK) {
		if f.maxAckSet && seg.SeqLT(s.Ack, f.maxAck) {
			c.violatef("ack-regress", "%v>%v ACK %d after acknowledging %d", s.Src, s.Dst, s.Ack, f.maxAck)
		}
		if !f.maxAckSet || seg.SeqGT(s.Ack, f.maxAck) {
			f.maxAck, f.maxAckSet = s.Ack, true
		}
		if rev != nil && rev.maxEndSet && seg.SeqGT(s.Ack, rev.maxEnd) {
			c.violatef("ack-unsent", "%v>%v acknowledges %d, peer sent only [..%d)", s.Src, s.Dst, s.Ack, rev.maxEnd)
		}
	}

	// SACK legality.
	if blocks := s.GetSACK(); len(blocks) > 0 {
		for i, b := range blocks {
			if !seg.SeqLT(b.Start, b.End) {
				c.violatef("sack-empty", "%v>%v SACK block %d [%d,%d) empty or inverted", s.Src, s.Dst, i, b.Start, b.End)
				continue
			}
			if s.Flags.Has(seg.ACK) && seg.SeqLT(b.Start, s.Ack) {
				c.violatef("sack-below-ack", "%v>%v SACK [%d,%d) below cumulative ACK %d", s.Src, s.Dst, b.Start, b.End, s.Ack)
			}
			if rev != nil && rev.maxEndSet && seg.SeqGT(b.End, rev.maxEnd) {
				c.violatef("sack-unsent", "%v>%v SACK [%d,%d) above peer's sent data %d", s.Src, s.Dst, b.Start, b.End, rev.maxEnd)
			}
			for j := 0; j < i; j++ {
				a := blocks[j]
				if seg.SeqLT(a.Start, b.End) && seg.SeqLT(b.Start, a.End) {
					c.violatef("sack-overlap", "%v>%v SACK blocks [%d,%d) and [%d,%d) overlap", s.Src, s.Dst, a.Start, a.End, b.Start, b.End)
				}
			}
		}
	}

	// Window respect: payload must stay inside the highest right edge
	// the peer ever advertised to this sender (max over delivered ACKs
	// of ack+window — the MPTCP shared window may legitimately shrink,
	// so the instantaneous edge is not a bound on in-flight data).
	if s.PayloadLen > 0 && f.edgeSet {
		if pe := s.Seq + uint32(s.PayloadLen); seg.SeqGT(pe, f.edge) {
			c.violatef("window-overrun", "%v>%v payload ends at %d, advertised right edge is %d", s.Src, s.Dst, pe, f.edge)
		}
	}

	c.checkDSS(f, s, true)
}

func (c *Checker) onIngress(s *seg.Segment) {
	// Harvest the advertised right edge for the reverse flow: this ACK
	// was delivered, so its sender may now send up to ack+window.
	if s.Flags.Has(seg.ACK) {
		f := c.peekFlow(s.Src, s.Dst)
		if f != nil && f.sawSYN { // need the sender's window scale
			w := uint64(s.Window)
			if !s.Flags.Has(seg.SYN) {
				w <<= f.wscale
			}
			edge := s.Ack + uint32(w)
			rev := c.flow(s.Dst, s.Src)
			if !rev.edgeSet || seg.SeqGT(edge, rev.edge) {
				rev.edge, rev.edgeSet = edge, true
			}
		}
	}
	c.checkDSS(c.flow(s.Src, s.Dst), s, false)
}

// checkDSS verifies data-sequence signaling. Mapping-consistency checks
// run in both directions (they are order-independent, so reordered or
// duplicated deliveries re-verify cleanly); DataAck monotonicity only
// holds in egress order.
func (c *Checker) checkDSS(f *flowState, s *seg.Segment, egress bool) {
	d, ok := s.GetDSS()
	if !ok {
		return
	}
	if d.HasMap && d.Length > 0 {
		if s.PayloadLen > 0 && int(d.Length) != s.PayloadLen {
			c.violatef("dss-length", "%v>%v DSS maps %d bytes, segment carries %d", s.Src, s.Dst, d.Length, s.PayloadLen)
		}
		if egress && f.sawSYN {
			if want := s.Seq - f.iss; d.SubflowSeq != want {
				c.violatef("dss-subflow-seq", "%v>%v DSS subflow seq %d, segment sits at stream position %d", s.Src, s.Dst, d.SubflowSeq, want)
			}
		}
		c.checkMapping(f, s, d)
	}
	if egress && d.HasAck {
		if f.dackSet && d.DataAck < f.maxDataAck {
			c.violatef("dack-regress", "%v>%v data-ACK %d after acknowledging %d", s.Src, s.Dst, d.DataAck, f.maxDataAck)
		}
		if !f.dackSet || d.DataAck > f.maxDataAck {
			f.maxDataAck, f.dackSet = d.DataAck, true
		}
	}
	if d.DataFin {
		fin := d.DataSeq + uint64(d.Length)
		if f.finSeq != 0 && f.finSeq != fin {
			c.violatef("datafin-moved", "%v>%v DATA_FIN at %d, previously announced at %d", s.Src, s.Dst, fin, f.finSeq)
		}
		f.finSeq = fin
	}
}

// checkMapping verifies that the same subflow-sequence range is never
// mapped to two different data sequences: every data-level byte a
// subflow carries must keep one consistent mapping for the connection's
// lifetime, or reassembly silently corrupts the stream.
func (c *Checker) checkMapping(f *flowState, s *seg.Segment, d seg.DSSOption) {
	start, end := d.SubflowSeq, d.SubflowSeq+uint32(d.Length)
	delta := d.DataSeq - uint64(d.SubflowSeq)
	for i := range f.maps {
		iv := &f.maps[i]
		if !seg.SeqLT(start, iv.end) || !seg.SeqLT(iv.start, end) {
			continue // no overlap
		}
		if iv.delta != delta {
			c.violatef("dss-remap", "%v>%v subflow range [%d,%d) remapped: data seq %d, previously %d",
				s.Src, s.Dst, start, end, d.DataSeq, uint64(start)+iv.delta)
			return
		}
		// Consistent overlap: extend the interval in place.
		iv.start = seg.SeqMin(iv.start, start)
		iv.end = seg.SeqMax(iv.end, end)
		return
	}
	// Merge with an adjacent same-delta interval when possible to keep
	// the list short (mappings arrive contiguously in practice).
	for i := range f.maps {
		iv := &f.maps[i]
		if iv.delta == delta && (iv.end == start || end == iv.start) {
			iv.start = seg.SeqMin(iv.start, start)
			iv.end = seg.SeqMax(iv.end, end)
			return
		}
	}
	f.maps = append(f.maps, mapIv{start: start, end: end, delta: delta})
}

// --- Stack-state probes ---

// WatchEndpoint registers a single-path TCP endpoint for periodic
// invariant probing.
func (c *Checker) WatchEndpoint(name string, ep *tcp.Endpoint) {
	c.watchers = append(c.watchers, watcher{
		name:   name,
		probe:  ep.CheckInvariants,
		active: func() bool { return ep.State() != tcp.StateClosed },
	})
}

// WatchConn registers an MPTCP connection: each probe verifies the
// connection's data-sequence bookkeeping plus every current subflow
// endpoint (subflows joining later are picked up automatically).
func (c *Checker) WatchConn(name string, conn *mptcp.Conn) {
	c.watchers = append(c.watchers, watcher{
		name: name,
		probe: func() error {
			if err := conn.CheckInvariants(); err != nil {
				return err
			}
			for _, sf := range conn.Subflows() {
				if err := sf.EP.CheckInvariants(); err != nil {
					return err
				}
			}
			return nil
		},
		active: func() bool {
			for _, sf := range conn.Subflows() {
				if sf.EP.State() != tcp.StateClosed {
					return true
				}
			}
			return len(conn.Subflows()) == 0
		},
	})
}

// RunProbes runs every registered probe once, recording failures.
// Watchers whose stacks have fully closed are dropped after this final
// probe: a fleet run watches thousands of short flows, and without
// pruning every probe tick would keep re-checking long-dead endpoints,
// making the tick cost O(total flows) instead of O(active flows).
func (c *Checker) RunProbes() {
	live := c.watchers[:0]
	for _, w := range c.watchers {
		if err := w.probe(); err != nil {
			c.violatef("state", "%s: %v", w.name, err)
		}
		if w.active() {
			live = append(live, w)
		}
	}
	for i := len(live); i < len(c.watchers); i++ {
		c.watchers[i] = watcher{} // release closed stacks to the GC
	}
	c.watchers = live
}

func (c *Checker) anyActive() bool {
	for _, w := range c.watchers {
		if w.active() {
			return true
		}
	}
	return false
}

// ArmProbes schedules RunProbes every interval of simulated time,
// stopping once every watched stack has fully closed (so a simulator
// run to quiescence still terminates).
func (c *Checker) ArmProbes(every sim.Time) {
	var tick func()
	tick = func() {
		c.RunProbes()
		if c.anyActive() {
			c.sim.At(c.sim.Now()+every, "check.probe", tick)
		}
	}
	c.sim.At(c.sim.Now()+every, "check.probe", tick)
}

// ArmLink converts a link's pool-ownership panic into a recorded
// violation, so the fuzzer can shrink ownership bugs like any other.
func (c *Checker) ArmLink(l *netem.Link) {
	l.OnBadOwnership = func(link string, s *seg.Segment) {
		c.violatef("pool-ownership", "link %s: in-flight segment recycled before arrival (%v)", link, s)
	}
}

// CheckTransfer runs the end-to-end byte-stream oracle over one
// direction of an MPTCP transfer: the receiver must never deliver more
// than the sender wrote, and a completed transfer must deliver exactly
// the written byte count, in order (the reorder buffer's accounting
// invariants, verified here and by probes, rule out duplication and
// gaps below the delivery point). Final stack invariants run too.
func (c *Checker) CheckTransfer(name string, tx, rx *mptcp.Conn, complete bool) {
	wrote, got := tx.BytesWritten(), rx.Reorder().Delivered
	if got > wrote {
		c.violatef("oracle", "%s: delivered %d bytes, sender wrote only %d", name, got, wrote)
	} else if complete && got != wrote {
		c.violatef("oracle", "%s: transfer complete but delivered %d of %d bytes", name, got, wrote)
	}
	if err := tx.CheckInvariants(); err != nil {
		c.violatef("state", "%s sender: %v", name, err)
	}
	if err := rx.CheckInvariants(); err != nil {
		c.violatef("state", "%s receiver: %v", name, err)
	}
}
