package check

import (
	"strings"
	"testing"

	"mptcplab/internal/mptcp"
	"mptcplab/internal/sim"
)

// TestSchedulerConformance is the conformance suite: every registered
// scheduler runs the identical scenario battery with the invariant
// checker armed. Universal obligations first — zero wire/DSS
// violations and an intact byte stream everywhere — then the
// scheduler-specific placement properties each policy advertises.
func TestSchedulerConformance(t *testing.T) {
	battery := ConformanceBattery()
	results := map[string]map[string]ConformanceResult{}
	for _, sched := range mptcp.SchedulerNames() {
		results[sched] = map[string]ConformanceResult{}
		for _, cs := range battery {
			res := RunConformance(sched, cs)
			results[sched][cs.Name] = res
			t.Logf("%s/%s: fct=%v wifi=%d cell=%d dupTx=%d dupRx=%d stall=%v places=%v switches=%d",
				sched, cs.Name, res.Report.CompletedAt, res.WiFiTxBytes, res.CellTxBytes,
				res.DupTxBytes, res.DupRxBytes, res.LongestStall,
				res.PlaceCounts, res.PlaceSwitches)

			if !res.Report.Completed {
				t.Errorf("%s/%s: transfer did not complete (%d of %d bytes)",
					sched, cs.Name, res.Report.Delivered, cs.Base.Size)
			}
			if res.Report.Delivered < int64(cs.Base.Size) {
				t.Errorf("%s/%s: delivered %d bytes, want at least %d",
					sched, cs.Name, res.Report.Delivered, cs.Base.Size)
			}
			if res.Report.Count != 0 {
				t.Errorf("%s/%s: %d invariant violation(s); first: %v",
					sched, cs.Name, res.Report.Count, res.Report.Violations[0])
			}

			// Single-copy schedulers must never schedule duplicates;
			// redundant must always duplicate once a second path
			// exists. (Receiver-side duplicate discards can appear for
			// single-copy schedulers in faulted scenarios — reinjection
			// races a recovering path — so DupRx is only pinned to zero
			// when no fault fired.)
			if sched == "redundant" {
				if res.DupTxBytes <= 0 {
					t.Errorf("redundant/%s: no duplicate bytes scheduled", cs.Name)
				}
			} else {
				if res.DupTxBytes != 0 {
					t.Errorf("%s/%s: single-copy scheduler scheduled %d duplicate bytes",
						sched, cs.Name, res.DupTxBytes)
				}
				if len(cs.Base.ActiveFaults()) == 0 && res.DupRxBytes != 0 {
					t.Errorf("%s/%s: receiver discarded %d duplicate bytes in a fault-free run",
						sched, cs.Name, res.DupRxBytes)
				}
			}
		}
	}

	// minrtt prefers the faster (lower-RTT) path: on both the steady
	// and asymmetric-RTT scenarios the WiFi path (10 ms / 5 ms OWD vs
	// 40 ms / 80 ms cellular) must carry the clear majority of bytes.
	for _, scen := range []string{"steady-state", "asymmetric-rtt"} {
		r := results["minrtt"][scen]
		if r.WiFiTxBytes <= 2*r.CellTxBytes {
			t.Errorf("minrtt/%s: wifi carried %d vs cell %d — lowest-RTT preference not visible",
				scen, r.WiFiTxBytes, r.CellTxBytes)
		}
	}

	// roundrobin alternates regardless of RTT. A saturating sender
	// fills every congestion window each pump pass, so byte totals
	// converge across single-copy policies — the alternation shows in
	// the placement order: round-robin must switch subflow on most
	// consecutive placements, and far more often than minrtt, whose
	// RTT greed produces long same-path streaks.
	{
		alt := func(r ConformanceResult) float64 {
			total := 0
			for _, n := range r.PlaceCounts {
				total += n
			}
			if total <= 1 {
				return 0
			}
			return float64(r.PlaceSwitches) / float64(total-1)
		}
		rr := results["roundrobin"]["asymmetric-rtt"]
		mr := results["minrtt"]["asymmetric-rtt"]
		rrAlt, mrAlt := alt(rr), alt(mr)
		// The absolute rate sits below 1.0 because the pre-join phase
		// is single-path and align-hold deferrals occasionally skip a
		// turn; 0.3 is still triple what RTT greed produces here.
		if rrAlt < 0.3 {
			t.Errorf("roundrobin/asymmetric-rtt: alternation rate %.2f below 0.3 — not rotating", rrAlt)
		}
		if rrAlt < 2*mrAlt {
			t.Errorf("roundrobin alternation %.2f not clearly above minrtt's %.2f", rrAlt, mrAlt)
		}
		if len(rr.PlaceCounts) < 2 || len(mr.PlaceCounts) < 2 ||
			rr.PlaceCounts[1] < 2*mr.PlaceCounts[1] {
			t.Errorf("roundrobin cell placements %v not clearly above minrtt's %v — rotation should force cellular turns",
				rr.PlaceCounts, mr.PlaceCounts)
		}
	}

	// weighted with explicit 3;1 weights is a gating deficit
	// scheduler: on the equal-rate asymmetric-RTT scenario the WiFi
	// subflow must carry close to three quarters of the payload.
	{
		r := RunConformance("weighted:3;1", battery[1]) // asymmetric-rtt: equal 10 Mbps rates
		if !r.Ok() {
			t.Errorf("weighted:3;1/asymmetric-rtt: completed=%v delivered=%d violations=%d",
				r.Report.Completed, r.Report.Delivered, r.Report.Count)
		}
		total := r.WiFiTxBytes + r.CellTxBytes
		if share := float64(r.WiFiTxBytes) / float64(total); share < 0.65 || share > 0.85 {
			t.Errorf("weighted:3;1/asymmetric-rtt: wifi share %.2f outside [0.65,0.85] for a 3:1 weight ratio",
				share)
		}
	}

	// blest degenerates to minrtt in bulk transfer — the HoL gate only
	// ever *withholds* a slow-path placement minrtt would have made —
	// so on the fault-free scenarios it must place no more chunks on
	// the slow (cellular) path than minrtt does, at no meaningful cost
	// in completion time.
	for _, scen := range []string{"steady-state", "asymmetric-rtt"} {
		bl, mr := results["blest"][scen], results["minrtt"][scen]
		if len(bl.PlaceCounts) < 2 || len(mr.PlaceCounts) < 2 {
			t.Fatalf("blest/%s: missing placement telemetry", scen)
		}
		if bl.PlaceCounts[1] > mr.PlaceCounts[1] {
			t.Errorf("blest/%s: %d cell placements exceed minrtt's %d — the gate should only withhold slow-path picks",
				scen, bl.PlaceCounts[1], mr.PlaceCounts[1])
		}
		if bl.Report.CompletedAt > mr.Report.CompletedAt*3/2 {
			t.Errorf("blest/%s completed at %v, above 1.5x minrtt's %v",
				scen, bl.Report.CompletedAt, mr.Report.CompletedAt)
		}
	}

	// adaptive's live weights must track delivered capacity: on the
	// steady scenario (20 Mbps WiFi vs 8 Mbps cellular) the WiFi path
	// carries the clear majority, the probe rule still exercises the
	// second path, and the re-estimated split costs little next to
	// minrtt.
	{
		ad, mr := results["adaptive"]["steady-state"], results["minrtt"]["steady-state"]
		if ad.WiFiTxBytes <= ad.CellTxBytes {
			t.Errorf("adaptive/steady-state: wifi %d vs cell %d — weights not tracking delivered capacity",
				ad.WiFiTxBytes, ad.CellTxBytes)
		}
		if len(ad.PlaceCounts) < 2 || ad.PlaceCounts[1] == 0 {
			t.Errorf("adaptive/steady-state: placements %v never probed the second path", ad.PlaceCounts)
		}
		if ad.Report.CompletedAt > mr.Report.CompletedAt*3/2 {
			t.Errorf("adaptive/steady-state completed at %v, above 1.5x minrtt's %v",
				ad.Report.CompletedAt, mr.Report.CompletedAt)
		}
	}

	// The fade scenario pins the tentpole property: through a deep
	// mmWave-style blockage fade on the fast path, the HoL-aware (blest)
	// and delivery-rate-adaptive schedulers must finish within 2x of
	// minrtt and strictly beat static weighted, whose cumulative-deficit
	// gate keeps waiting for the faded path and crawls in lockstep with
	// it. The weighted guard below keeps the comparison honest: if a
	// future change teaches weighted to dodge the fade, these
	// assertions stop proving anything and must be revisited.
	{
		min := results["minrtt"]["fade"].Report.CompletedAt
		wgt := results["weighted"]["fade"].Report.CompletedAt
		if min <= 0 || wgt <= 0 {
			t.Fatalf("fade: missing completion times (minrtt=%v weighted=%v)", min, wgt)
		}
		if wgt < 2*min {
			t.Errorf("weighted/fade completed at %v, less than 2x minrtt's %v — the fade no longer hurts static weights and the comparison below is vacuous",
				wgt, min)
		}
		for _, sched := range []string{"blest", "adaptive"} {
			fct := results[sched]["fade"].Report.CompletedAt
			if fct <= 0 {
				t.Fatalf("%s/fade: missing completion time", sched)
			}
			if fct > 2*min {
				t.Errorf("%s/fade completed at %v, above 2x minrtt's %v", sched, fct, min)
			}
			if fct >= wgt {
				t.Errorf("%s/fade completed at %v, not strictly better than weighted's %v", sched, fct, wgt)
			}
		}
	}

	// The headline resilience property: through the 3 s single-path
	// blackout the redundant scheduler's surviving copies keep the
	// receiver's in-order edge moving — zero measured stall — while
	// minrtt stalls until its dead-path detection and reinjection
	// recover the stranded mappings.
	{
		red := results["redundant"]["blackout"]
		if red.LongestStall != 0 {
			t.Errorf("redundant/blackout: longest stall %v, want 0", red.LongestStall)
		}
		min := results["minrtt"]["blackout"]
		if min.LongestStall < 200*sim.Millisecond {
			t.Errorf("minrtt/blackout: longest stall %v — expected a visible stall; the redundant comparison proves nothing",
				min.LongestStall)
		}
	}
}

// TestConformanceReplayTokens: every scheduler-tagged scenario renders
// a replay token that reconstructs the same scheduler, and malformed
// scheduler fields are rejected with a one-line error.
func TestConformanceReplayTokens(t *testing.T) {
	for _, sched := range []string{"minrtt", "roundrobin", "weighted:3;1", "redundant", "blest", "adaptive"} {
		sc := GenScenario(7)
		sc.Scheduler = sched
		tok := sc.Replay()
		back, err := ParseReplay(tok)
		if err != nil {
			t.Fatalf("ParseReplay(%q): %v", tok, err)
		}
		if back.Scheduler != sched {
			t.Errorf("token %q round-tripped scheduler %q, want %q", tok, back.Scheduler, sched)
		}
	}
	// A default-scheduler scenario renders the legacy two-field token.
	sc := GenScenario(7)
	tok := sc.Replay()
	if strings.Count(tok, ":") != 1 {
		t.Errorf("default-scheduler token %q is not the legacy seed:mask form", tok)
	}
	if back, err := ParseReplay(tok); err != nil || back.Scheduler != "" {
		t.Errorf("default token %q: sched=%q err=%v", tok, back.Scheduler, err)
	}
	if _, err := ParseReplay("7:f:bogus"); err == nil {
		t.Error("ParseReplay accepted an unknown scheduler field")
	}
}
