package check

import (
	"fmt"
	"strconv"
	"strings"

	"mptcplab/internal/mptcp"
	"mptcplab/internal/netem"
	"mptcplab/internal/pathmodel"
	"mptcplab/internal/seg"
	"mptcplab/internal/sim"
	"mptcplab/internal/trace"
	"mptcplab/internal/units"
	"mptcplab/internal/web"
)

// FaultKind enumerates the adversarial events the fuzzer composes.
type FaultKind int

// Fault kinds.
const (
	FaultWiFiOutage FaultKind = iota
	FaultCellOutage
	FaultBurstLoss     // Bernoulli loss spike on the WiFi path
	FaultChaosWindow   // duplication + extreme reordering on the WiFi path
	FaultRemoveAddr    // client tears an interface down via REMOVE_ADDR
	FaultHandoverStorm // rapid WiFi down/up toggles
	faultKinds

	// Kinds past the faultKinds sentinel are battery-only: GenScenario's
	// seeded draw is rng.Intn(int(faultKinds)), so adding them here
	// leaves every historical seed-derived scenario — and with it every
	// replay token — byte-identical. They can only appear in scripts
	// built by hand (the conformance battery).

	// FaultWiFiFade sweeps a raised-cosine signal fade across the WiFi
	// path: link rate scales down and loss scales up following
	// pathmodel.SignalFade, bottoming out at depth Par mid-fade. Unlike
	// an outage the path never goes administratively down — it keeps
	// accepting (and mostly dropping) bytes, which is exactly the trap
	// that punishes schedulers trusting stale path weights.
	FaultWiFiFade
)

// String names the fault for replay logs.
func (k FaultKind) String() string {
	switch k {
	case FaultWiFiOutage:
		return "wifi-outage"
	case FaultCellOutage:
		return "cell-outage"
	case FaultBurstLoss:
		return "burst-loss"
	case FaultChaosWindow:
		return "chaos"
	case FaultRemoveAddr:
		return "remove-addr"
	case FaultHandoverStorm:
		return "handover-storm"
	case FaultWiFiFade:
		return "wifi-fade"
	}
	return fmt.Sprintf("fault(%d)", int(k))
}

// Fault is one timed adversarial event in a scenario.
type Fault struct {
	Kind FaultKind
	At   sim.Time
	Dur  sim.Time
	Par  float64 // kind-specific intensity
}

func (f Fault) String() string {
	return fmt.Sprintf("%v@%v+%v(%.2f)", f.Kind, f.At, f.Dur, f.Par)
}

// PathParams sizes one access network of a scenario.
type PathParams struct {
	Rate  units.BitRate
	Delay sim.Time
	Loss  float64
	Queue units.ByteCount
}

// Scenario is one fully seeded adversarial run: every parameter —
// topology, transfer, and the fault script — derives deterministically
// from Seed, and Mask selects which generated faults are active (bit i
// keeps Faults[i]). Shrinking only clears mask bits, so a scenario is
// always replayable from the "seed:mask" token alone.
type Scenario struct {
	Seed         int64
	Size         int
	FourPaths    bool
	Simultaneous bool
	RcvBuf       units.ByteCount
	WiFi, Cell   PathParams
	Faults       []Fault
	Mask         uint64

	// Scheduler selects the packet-scheduling plugin ("" = minrtt).
	// It is not derived from the seed — the fuzzer sweeps the same
	// seeded scenarios under each scheduler — and rides the replay
	// token as an optional third field ("seed:mask:sched").
	Scheduler string
}

// maxFaults bounds the script length so Mask always fits.
const maxFaults = 8

// GenScenario derives the scenario for a case seed.
func GenScenario(seed int64) Scenario {
	rng := sim.NewRNG(seed).Child("scenario")
	sc := Scenario{
		Seed:         seed,
		Size:         16<<10 + rng.Intn(240<<10),
		FourPaths:    rng.Bool(0.25),
		Simultaneous: rng.Bool(0.5),
		RcvBuf:       units.ByteCount(64<<10 + rng.Intn(2<<20)),
		WiFi: PathParams{
			Rate:  units.BitRate(rng.Uniform(2e6, 30e6)),
			Delay: rng.Duration(5*sim.Millisecond, 40*sim.Millisecond),
			Loss:  rng.Uniform(0, 0.02),
			Queue: units.ByteCount(50<<10 + rng.Intn(250<<10)),
		},
		Cell: PathParams{
			Rate:  units.BitRate(rng.Uniform(1e6, 10e6)),
			Delay: rng.Duration(30*sim.Millisecond, 120*sim.Millisecond),
			Loss:  rng.Uniform(0, 0.005),
			Queue: units.ByteCount(100<<10 + rng.Intn(650<<10)),
		},
	}
	n := rng.Intn(maxFaults + 1)
	for i := 0; i < n; i++ {
		f := Fault{
			Kind: FaultKind(rng.Intn(int(faultKinds))),
			At:   rng.Duration(0, 4*sim.Second),
			Dur:  rng.Duration(50*sim.Millisecond, 2*sim.Second),
			Par:  rng.Uniform(0.05, 0.5),
		}
		if i == 0 && rng.Bool(0.3) {
			// Bias one fault onto the handshake window.
			f.At = rng.Duration(0, 200*sim.Millisecond)
		}
		sc.Faults = append(sc.Faults, f)
	}
	if len(sc.Faults) > 0 {
		sc.Mask = (uint64(1) << len(sc.Faults)) - 1
	}
	return sc
}

// ActiveFaults returns the faults selected by the mask.
func (sc Scenario) ActiveFaults() []Fault {
	var out []Fault
	for i, f := range sc.Faults {
		if sc.Mask&(uint64(1)<<i) != 0 {
			out = append(out, f)
		}
	}
	return out
}

// Replay renders the one-line token that reproduces this scenario.
// The scheduler appears as a third field only when it differs from
// the default, so tokens from earlier versions stay canonical.
func (sc Scenario) Replay() string {
	tok := fmt.Sprintf("%d:%x", sc.Seed, sc.Mask)
	if sc.Scheduler != "" {
		tok += ":" + sc.Scheduler
	}
	return tok
}

// ParseReplay reconstructs a scenario from a "seed:mask[:sched]"
// token (a bare seed means all generated faults active under the
// default scheduler). The scheduler field may itself contain colons
// ("weighted:3;1") — everything after the second colon is the spec.
func ParseReplay(tok string) (Scenario, error) {
	seedStr, rest, hasMask := strings.Cut(tok, ":")
	seed, err := strconv.ParseInt(seedStr, 10, 64)
	if err != nil {
		return Scenario{}, fmt.Errorf("check: bad replay seed %q: %v", seedStr, err)
	}
	sc := GenScenario(seed)
	if hasMask {
		maskStr, sched, hasSched := strings.Cut(rest, ":")
		mask, err := strconv.ParseUint(maskStr, 16, 64)
		if err != nil {
			return Scenario{}, fmt.Errorf("check: bad replay mask %q: %v", maskStr, err)
		}
		sc.Mask = mask
		if hasSched {
			if err := mptcp.ValidateScheduler(sched); err != nil {
				return Scenario{}, fmt.Errorf("check: bad replay scheduler: %v", err)
			}
			sc.Scheduler = sched
		}
	}
	return sc, nil
}

// Harness is one materialized fuzz topology: the Figure-1 shape
// (client with WiFi + cellular interfaces, dual-homed server) built
// directly on netem/mptcp primitives with the checker armed on every
// host and link. Bug-injection hooks (tests only) receive it before
// the simulation runs.
type Harness struct {
	Sim            *sim.Simulator
	Net            *netem.Network
	Client, Server *netem.Host

	WiFiUp, WiFiDown *netem.Link
	CellUp, CellDown *netem.Link

	WiFiAddr, CellAddr seg.Addr
	SrvAddr, SrvAddr2  seg.Addr

	Checker    *Checker
	ClientConn *mptcp.Conn
	ServerConn *mptcp.Conn
}

// Report is the outcome of one fuzzed scenario.
type Report struct {
	Scenario    Scenario
	Completed   bool
	CompletedAt sim.Time // virtual completion time; valid only when Completed
	Delivered   int64
	Violations  []Violation
	Count       int
}

// Ok reports a violation-free run.
func (r Report) Ok() bool { return r.Count == 0 }

// scenarioDeadline bounds one fuzz case in virtual time; every fault
// ends well before it, so a healthy stack always finishes or stalls
// into a stable state by then.
const scenarioDeadline = 120 * sim.Second

// RunScenario executes one scenario with the checker armed and returns
// what it found. bug, if non-nil, runs after the harness is built and
// before the simulation starts — the test hook used to prove the
// checker catches deliberately injected corruption.
func RunScenario(sc Scenario, bug func(*Harness)) Report {
	s := sim.New()
	rng := sim.NewRNG(sc.Seed)
	n := netem.NewNetwork(s)

	h := &Harness{
		Sim: s, Net: n,
		Client:   n.NewHost("client"),
		Server:   n.NewHost("server"),
		WiFiAddr: seg.MakeAddr("10.0.0.2", 40000),
		CellAddr: seg.MakeAddr("172.16.0.2", 40001),
		SrvAddr:  seg.MakeAddr("192.168.1.1", 8080),
		SrvAddr2: seg.MakeAddr("192.168.2.1", 8080),
		Checker:  New(s),
	}

	access := func(name string, p PathParams) *netem.Link {
		l := netem.NewLink(s, rng, name)
		l.Rate = p.Rate
		l.PropDelay = p.Delay
		l.QueueLimit = p.Queue
		if p.Loss > 0 {
			l.Loss = netem.BernoulliLoss{P: p.Loss}
		}
		return l
	}
	lan := func(name string) *netem.Link {
		l := netem.NewLink(s, rng, name)
		l.Rate = 1 * units.Gbps
		l.PropDelay = 500 * sim.Microsecond
		l.QueueLimit = 16 * units.MB
		return l
	}
	h.WiFiUp, h.WiFiDown = access("wifi-up", sc.WiFi), access("wifi-down", sc.WiFi)
	h.CellUp, h.CellDown = access("cell-up", sc.Cell), access("cell-down", sc.Cell)
	srv1In, srv1Out := lan("srv1-in"), lan("srv1-out")

	addPath := func(cli, srv seg.Addr, up, down, lin, lout *netem.Link) {
		n.AddDuplexRoute(cli.IP, srv.IP, h.Client, h.Server,
			[]*netem.Link{up, lin}, []*netem.Link{lout, down})
	}
	addPath(h.WiFiAddr, h.SrvAddr, h.WiFiUp, h.WiFiDown, srv1In, srv1Out)
	addPath(h.CellAddr, h.SrvAddr, h.CellUp, h.CellDown, srv1In, srv1Out)
	if sc.FourPaths {
		srv2In, srv2Out := lan("srv2-in"), lan("srv2-out")
		addPath(h.WiFiAddr, h.SrvAddr2, h.WiFiUp, h.WiFiDown, srv2In, srv2Out)
		addPath(h.CellAddr, h.SrvAddr2, h.CellUp, h.CellDown, srv2In, srv2Out)
	}

	ck := h.Checker
	trace.AttachObserver(h.Client, ck)
	trace.AttachObserver(h.Server, ck)
	for _, l := range []*netem.Link{h.WiFiUp, h.WiFiDown, h.CellUp, h.CellDown, srv1In, srv1Out} {
		ck.ArmLink(l)
	}

	cfg := mptcp.DefaultConfig()
	cfg.SimultaneousSYN = sc.Simultaneous
	cfg.TCP.RcvBuf = sc.RcvBuf
	cfg.RcvBuf = sc.RcvBuf
	if sc.Scheduler != "" {
		cfg.Scheduler = sc.Scheduler
	}

	fs := &web.FileServer{SizeFor: func(int) int { return sc.Size }}
	srv := mptcp.NewServer(h.Server, n, 8080, cfg, rng.Child("srv"))
	if sc.FourPaths {
		srv.AdvertiseAddrs = []seg.Addr{h.SrvAddr2}
	}
	srv.OnConn = func(c *mptcp.Conn) {
		h.ServerConn = c
		fs.ServeStream(web.MPTCPStream{Conn: c})
		ck.WatchConn("server", c)
	}

	conn := mptcp.Dial(n, h.Client, mptcp.DialOpts{
		LocalAddrs:     []seg.Addr{h.WiFiAddr, h.CellAddr},
		Labels:         []string{"wifi", "cell"},
		ServerAddr:     h.SrvAddr,
		JoinAdvertised: sc.FourPaths,
		Config:         cfg,
	}, rng.Child("cli"))
	h.ClientConn = conn
	ck.WatchConn("client", conn)

	getter := web.NewGetter(web.MPTCPStream{Conn: conn})
	completed := false
	var completedAt sim.Time
	getter.Get(sc.Size, func() {
		completed = true
		completedAt = s.Now()
		getter.Close()
	})

	h.scheduleFaults(sc)
	ck.ArmProbes(25 * sim.Millisecond)
	if bug != nil {
		bug(h)
	}

	s.RunUntil(scenarioDeadline)

	if h.ServerConn != nil {
		ck.CheckTransfer("download", h.ServerConn, conn, completed)
	}
	ck.RunProbes()

	return Report{
		Scenario:    sc,
		Completed:   completed,
		CompletedAt: completedAt,
		Delivered:   conn.Reorder().Delivered,
		Violations:  ck.Violations(),
		Count:       ck.Count(),
	}
}

// scheduleFaults turns the active fault script into simulator events.
func (h *Harness) scheduleFaults(sc Scenario) {
	setWiFi := func(down bool) {
		h.WiFiUp.SetDown(down)
		h.WiFiDown.SetDown(down)
	}
	setCell := func(down bool) {
		h.CellUp.SetDown(down)
		h.CellDown.SetDown(down)
	}
	for _, f := range sc.ActiveFaults() {
		f := f
		switch f.Kind {
		case FaultWiFiOutage:
			h.Sim.At(f.At, "fault.wifi-outage", func() { setWiFi(true) })
			h.Sim.At(f.At+f.Dur, "fault.wifi-restore", func() { setWiFi(false) })
		case FaultCellOutage:
			h.Sim.At(f.At, "fault.cell-outage", func() { setCell(true) })
			h.Sim.At(f.At+f.Dur, "fault.cell-restore", func() { setCell(false) })
		case FaultBurstLoss:
			h.Sim.At(f.At, "fault.burst-loss", func() {
				h.WiFiUp.Loss = netem.BernoulliLoss{P: f.Par}
				h.WiFiDown.Loss = netem.BernoulliLoss{P: f.Par}
			})
			h.Sim.At(f.At+f.Dur, "fault.loss-restore", func() {
				h.WiFiUp.Loss = netem.BernoulliLoss{P: sc.WiFi.Loss}
				h.WiFiDown.Loss = netem.BernoulliLoss{P: sc.WiFi.Loss}
			})
		case FaultChaosWindow:
			chaos := &netem.Chaos{
				DupProb:     f.Par * 0.5,
				ReorderProb: f.Par,
				ExtraDelay:  150 * sim.Millisecond,
			}
			h.Sim.At(f.At, "fault.chaos", func() {
				h.WiFiUp.Chaos = chaos
				h.WiFiDown.Chaos = chaos
			})
			h.Sim.At(f.At+f.Dur, "fault.chaos-restore", func() {
				h.WiFiUp.Chaos = nil
				h.WiFiDown.Chaos = nil
			})
		case FaultRemoveAddr:
			addr := h.CellAddr
			if f.Par > 0.3 {
				addr = h.WiFiAddr
			}
			h.Sim.At(f.At, "fault.remove-addr", func() { h.ClientConn.RemoveLocalAddr(addr) })
		case FaultHandoverStorm:
			toggles := int(f.Dur/(100*sim.Millisecond)) + 1
			if toggles > 10 {
				toggles = 10
			}
			for i := 0; i < toggles; i++ {
				down := i%2 == 0
				h.Sim.At(f.At+sim.Time(i)*100*sim.Millisecond, "fault.handover", func() { setWiFi(down) })
			}
			// Always come back up after the storm.
			h.Sim.At(f.At+sim.Time(toggles)*100*sim.Millisecond, "fault.handover-end", func() { setWiFi(false) })
		case FaultWiFiFade:
			// Sweep the raised-cosine fade in fixed steps. The link never
			// goes down — rate bottoms out at (1-Par) of nominal with a
			// small floor so serialization stays defined, and loss peaks
			// mid-fade per the SignalFade curve.
			const fadeSteps = 40
			step := f.Dur / fadeSteps
			if step <= 0 {
				step = sim.Millisecond
			}
			for i := 0; i <= fadeSteps; i++ {
				frac := float64(i) / fadeSteps
				scale, fadeLoss := pathmodel.SignalFade(frac, f.Par)
				rate := units.BitRate(float64(sc.WiFi.Rate) * scale)
				if rate < 50*units.Kbps {
					rate = 50 * units.Kbps
				}
				p := sc.WiFi.Loss + fadeLoss
				if p > 0.95 {
					p = 0.95
				}
				h.Sim.At(f.At+sim.Time(i)*step, "fault.wifi-fade", func() {
					h.WiFiUp.Rate = rate
					h.WiFiDown.Rate = rate
					h.WiFiUp.Loss = netem.BernoulliLoss{P: p}
					h.WiFiDown.Loss = netem.BernoulliLoss{P: p}
				})
			}
			h.Sim.At(f.At+f.Dur+step, "fault.wifi-fade-end", func() {
				h.WiFiUp.Rate = sc.WiFi.Rate
				h.WiFiDown.Rate = sc.WiFi.Rate
				h.WiFiUp.Loss = netem.BernoulliLoss{P: sc.WiFi.Loss}
				h.WiFiDown.Loss = netem.BernoulliLoss{P: sc.WiFi.Loss}
			})
		}
	}
}

// Shrink minimizes a violating scenario's fault script: it greedily
// clears mask bits while the run still reproduces the original
// violation rule, converging on a minimal fault set (possibly empty —
// a violation the base scenario triggers on its own). run abstracts
// RunScenario so tests can thread the bug hook through.
func Shrink(sc Scenario, run func(Scenario) Report) Scenario {
	rep := run(sc)
	if rep.Ok() || len(rep.Violations) == 0 {
		return sc
	}
	rule := rep.Violations[0].Rule
	reproduces := func(mask uint64) bool {
		s2 := sc
		s2.Mask = mask
		r := run(s2)
		for _, v := range r.Violations {
			if v.Rule == rule {
				return true
			}
		}
		return false
	}
	for changed := true; changed; {
		changed = false
		for i := range sc.Faults {
			bit := uint64(1) << i
			if sc.Mask&bit == 0 {
				continue
			}
			if reproduces(sc.Mask &^ bit) {
				sc.Mask &^= bit
				changed = true
			}
		}
	}
	return sc
}
