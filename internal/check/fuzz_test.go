package check

import (
	"testing"

	"mptcplab/internal/netem"
	"mptcplab/internal/seg"
	"mptcplab/internal/sim"
)

func TestGenScenarioDeterministic(t *testing.T) {
	a, b := GenScenario(42), GenScenario(42)
	if a.Replay() != b.Replay() || a.Size != b.Size || len(a.Faults) != len(b.Faults) {
		t.Fatalf("GenScenario not deterministic: %+v vs %+v", a, b)
	}
	for i := range a.Faults {
		if a.Faults[i] != b.Faults[i] {
			t.Fatalf("fault %d differs: %v vs %v", i, a.Faults[i], b.Faults[i])
		}
	}
}

func TestParseReplayRoundTrip(t *testing.T) {
	sc := GenScenario(17)
	sc.Mask &= 0x5 // arbitrary sub-script
	got, err := ParseReplay(sc.Replay())
	if err != nil {
		t.Fatal(err)
	}
	if got.Seed != sc.Seed || got.Mask != sc.Mask {
		t.Fatalf("round trip %q -> seed=%d mask=%x, want seed=%d mask=%x",
			sc.Replay(), got.Seed, got.Mask, sc.Seed, sc.Mask)
	}
	if _, err := ParseReplay("nonsense"); err == nil {
		t.Fatal("ParseReplay accepted garbage")
	}
	if _, err := ParseReplay("12:zz"); err == nil {
		t.Fatal("ParseReplay accepted a bad mask")
	}
}

func TestFuzzScenariosClean(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz scenarios are slow")
	}
	for s := int64(1); s <= 8; s++ {
		sc := GenScenario(s)
		rep := RunScenario(sc, nil)
		if !rep.Ok() {
			t.Errorf("seed %d (replay %s): %d violations, first: %v",
				s, sc.Replay(), rep.Count, rep.Violations[0])
		}
		if rep.Completed && rep.Delivered < int64(sc.Size) {
			t.Errorf("seed %d: completed but delivered %d < %d", s, rep.Delivered, sc.Size)
		}
	}
}

func TestRunScenarioDeterministic(t *testing.T) {
	sc := GenScenario(3)
	a, b := RunScenario(sc, nil), RunScenario(sc, nil)
	if a.Delivered != b.Delivered || a.Completed != b.Completed || a.Count != b.Count {
		t.Fatalf("same scenario diverged: %+v vs %+v", a, b)
	}
}

// corruptDSS is the deliberately injected bug used to prove the
// checker catches real wire-level corruption: a raw tap installed
// after the checker's (so the checker first observes the clean
// mapping at server egress) that shifts the DSS data sequence of
// every payload segment past the first few, silently remapping
// subflow bytes onto the wrong data-stream position.
func corruptDSS(h *Harness) {
	n := 0
	h.Server.AddRawTap(func(dir netem.Direction, at sim.Time, s *seg.Segment) {
		if dir != netem.Egress || s.PayloadLen == 0 {
			return
		}
		n++
		if n < 4 {
			return
		}
		for _, o := range s.Options {
			if d, ok := o.(*seg.DSSOption); ok && d.HasMap && d.Length > 0 {
				d.DataSeq += 1 << 20
			}
		}
	})
}

func TestFuzzShrinkReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz scenarios are slow")
	}
	run := func(sc Scenario) Report { return RunScenario(sc, corruptDSS) }

	sc := GenScenario(1)
	if len(sc.Faults) < 2 {
		t.Fatalf("seed 1 generated %d faults; want a non-trivial script to shrink", len(sc.Faults))
	}
	rep := run(sc)
	if rep.Ok() {
		t.Fatal("injected DSS corruption went undetected")
	}
	if !hasRule(rep, "dss-remap") {
		t.Fatalf("expected a dss-remap violation, got %v", rep.Violations)
	}

	// The bug is independent of the fault script, so shrinking must
	// strip every fault and still reproduce.
	min := Shrink(sc, run)
	if min.Mask != 0 {
		t.Fatalf("shrink left mask %x, want 0 (fault-independent bug)", min.Mask)
	}

	// The printed one-line token must reproduce the minimal case.
	tok := min.Replay()
	parsed, err := ParseReplay(tok)
	if err != nil {
		t.Fatalf("replay token %q: %v", tok, err)
	}
	rerun := run(parsed)
	if !hasRule(rerun, "dss-remap") {
		t.Fatalf("replay %q did not reproduce dss-remap: %v", tok, rerun.Violations)
	}
	// And without the bug the very same scenario is clean — the
	// violation is the bug's, not the scenario's.
	if clean := RunScenario(parsed, nil); !clean.Ok() {
		t.Fatalf("scenario %q violates without the injected bug: %v", tok, clean.Violations)
	}
}

func hasRule(rep Report, rule string) bool {
	for _, v := range rep.Violations {
		if v.Rule == rule {
			return true
		}
	}
	return false
}
