package trace

import (
	"testing"

	"mptcplab/internal/seg"
)

func synCapable(ts int64, src, dst seg.Addr, key uint64) *Packet {
	s := &seg.Segment{Src: src, Dst: dst, Flags: seg.SYN,
		Options: []seg.Option{seg.MPCapableOption{Key: key}}}
	return newPacketFromSegment(ts, s)
}

func synJoin(ts int64, src, dst seg.Addr, tok uint32) *Packet {
	s := &seg.Segment{Src: src, Dst: dst, Flags: seg.SYN,
		Options: []seg.Option{seg.MPJoinOption{Token: tok}}}
	return newPacketFromSegment(ts, s)
}

func dssData(ts int64, src, dst seg.Addr, dseq uint64, n int) *Packet {
	s := &seg.Segment{Src: src, Dst: dst, Flags: seg.ACK, PayloadLen: n,
		Options: []seg.Option{seg.DSSOption{HasMap: true, DataSeq: dseq, Length: uint16(n)}}}
	return newPacketFromSegment(ts, s)
}

func TestConnectionGroupingByToken(t *testing.T) {
	a := NewAnalyzer()
	wifi := seg.MakeAddr("10.0.0.2", 40000)
	cellA := seg.MakeAddr("172.16.0.2", 40001)
	server := seg.MakeAddr("192.168.1.1", 8080)
	other := seg.MakeAddr("10.0.0.9", 50000)

	// Connection 1: MP_CAPABLE with clientKey; join identified by the
	// client's token (as our simultaneous-SYN mode does).
	const key1 = 0xAABBCCDD11223344
	a.Add(synCapable(0, wifi, server, key1))
	a.Add(synJoin(1, cellA, server, tokenOfKey(key1)))

	// Connection 2: an unrelated MPTCP connection in the same capture.
	const key2 = 0x5566778899AABBCC
	a.Add(synCapable(2, other, server, key2))

	// Data: conn 1 receives out-of-order across its two subflows;
	// conn 2 receives in order.
	ms := int64(1e6)
	a.Add(dssData(10*ms, server, wifi, 1, 1000))
	a.Add(dssData(20*ms, server, wifi, 2001, 1000)) // hole at 1001
	a.Add(dssData(60*ms, server, cellA, 1001, 1000))
	a.Add(dssData(10*ms, server, other, 1, 1000))
	a.Add(dssData(20*ms, server, other, 1001, 1000))

	conns := a.Connections()
	if len(conns) != 2 {
		t.Fatalf("reconstructed %d connections, want 2", len(conns))
	}
	c1, c2 := conns[0], conns[1]
	if len(c1.Subflows) != 2 {
		t.Errorf("conn 1 has %d subflows, want 2 (join grouped by token)", len(c1.Subflows))
	}
	if len(c2.Subflows) != 1 {
		t.Errorf("conn 2 has %d subflows, want 1", len(c2.Subflows))
	}
	// Conn 1: exactly one sample waited (40ms), others zero.
	var waited int
	for _, d := range c1.OFOms {
		if d > 0 {
			waited++
			if d != 40 {
				t.Errorf("conn1 OFO sample %v, want 40ms", d)
			}
		}
	}
	if len(c1.OFOms) != 3 || waited != 1 {
		t.Errorf("conn1 OFO = %v", c1.OFOms)
	}
	// Conn 2: all in order.
	for _, d := range c2.OFOms {
		if d != 0 {
			t.Errorf("conn2 unexpected OFO delay %v", d)
		}
	}
}

func TestJoinWithUnknownTokenStillAnalyzed(t *testing.T) {
	a := NewAnalyzer()
	cli := seg.MakeAddr("10.0.0.2", 40000)
	server := seg.MakeAddr("192.168.1.1", 8080)
	// Capture began mid-connection: only the join SYN is visible.
	a.Add(synJoin(0, cli, server, 0xDEADBEEF))
	a.Add(dssData(1e6, server, cli, 1, 500))
	conns := a.Connections()
	if len(conns) != 1 || len(conns[0].OFOms) != 1 {
		t.Fatalf("mid-capture join not analyzed: %+v", conns)
	}
}

func TestTokenMatchesMPTCPPackage(t *testing.T) {
	// The tracker's hash must match internal/mptcp's token derivation,
	// verified against a captured live handshake in the experiment
	// cross-validation test; here check the FNV constants directly.
	if tokenOfKey(0) != 0x811c9dc5*0 && tokenOfKey(1) == tokenOfKey(2) {
		t.Error("token hash degenerate")
	}
	if tokenOfKey(42) != tokenOfKey(42) {
		t.Error("token hash unstable")
	}
}
