package trace

import (
	"sort"

	"mptcplab/internal/seg"
)

// connID identifies one MPTCP connection within a capture.
type connID int

// mptcpTracker groups subflows into MPTCP connections by token — the
// same association logic an MPTCP server uses: an MP_CAPABLE SYN /
// SYN-ACK reveals each side's key (and thus both tokens); an MP_JOIN
// SYN names the connection by token. Each connection then gets its own
// data-sequence reassembly for out-of-order delay.
type mptcpTracker struct {
	nextID  connID
	byToken map[uint32]connID
	byFlow  map[Flow]connID
	conns   map[connID]*connState
}

type connState struct {
	id       connID
	subflows []Flow

	// Data-level reassembly (one direction: the bulk/data direction,
	// which for the paper's workloads is server->client; the tracker
	// keeps one stream per direction keyed by data-sender endpoint).
	streams map[Endpoint]*dataStream
}

type dataStream struct {
	rcvNxt     uint64
	seen       bool
	blocks     []ofoBlock
	ofoSamples []float64
}

func newMPTCPTracker() *mptcpTracker {
	return &mptcpTracker{
		byToken: make(map[uint32]connID),
		byFlow:  make(map[Flow]connID),
		conns:   make(map[connID]*connState),
	}
}

// token mirrors the mptcp package's key hash (FNV-1a over the key's
// little-endian bytes) so captures of our stack group correctly.
func tokenOfKey(key uint64) uint32 {
	h := uint32(2166136261)
	for i := 0; i < 8; i++ {
		h ^= uint32(key >> (8 * i) & 0xFF)
		h *= 16777619
	}
	return h
}

// observe digests one packet's MPTCP signaling and returns the
// connection the packet's flow belongs to (creating it as needed), or
// nil for non-MPTCP flows.
func (t *mptcpTracker) observe(p *Packet) *connState {
	tcp := p.TCP()
	if tcp == nil {
		return nil
	}
	f := p.Flow()

	if o := findMPTCP[seg.MPCapableOption](tcp); o != nil {
		id, ok := t.byFlow[canonical(f)]
		if !ok {
			id = t.newConn(canonical(f))
		}
		t.byToken[tokenOfKey(o.Key)] = id
		return t.conns[id]
	}
	if o := findMPTCP[seg.MPJoinOption](tcp); o != nil {
		if id, ok := t.byToken[o.Token]; ok {
			t.adopt(id, canonical(f))
			return t.conns[id]
		}
		// Unknown token (e.g. capture started mid-connection): treat
		// the join as its own connection so analysis still proceeds.
		id := t.newConn(canonical(f))
		t.byToken[o.Token] = id
		return t.conns[id]
	}
	if id, ok := t.byFlow[canonical(f)]; ok {
		return t.conns[id]
	}
	return nil
}

func (t *mptcpTracker) newConn(f Flow) connID {
	id := t.nextID
	t.nextID++
	t.conns[id] = &connState{id: id, streams: make(map[Endpoint]*dataStream)}
	t.adopt(id, f)
	return id
}

func (t *mptcpTracker) adopt(id connID, f Flow) {
	if _, ok := t.byFlow[f]; !ok {
		t.byFlow[f] = id
		t.conns[id].subflows = append(t.conns[id].subflows, f)
	}
}

// canonical orders a flow so both directions map to one key.
func canonical(f Flow) Flow {
	r := f.Reverse()
	if less(r.Src, f.Src) {
		return r
	}
	return f
}

func less(a, b Endpoint) bool {
	for i := 0; i < 4; i++ {
		if a.IP[i] != b.IP[i] {
			return a.IP[i] < b.IP[i]
		}
	}
	return a.Port < b.Port
}

// addDSS feeds one data packet's DSS mapping into the per-connection,
// per-sender reassembly and records out-of-order delay samples.
func (cs *connState) addDSS(sender Endpoint, ts int64, start, end uint64) {
	st, ok := cs.streams[sender]
	if !ok {
		st = &dataStream{}
		cs.streams[sender] = st
	}
	if !st.seen {
		st.seen = true
		st.rcvNxt = start
	}
	if end <= st.rcvNxt {
		return
	}
	if start < st.rcvNxt {
		start = st.rcvNxt
	}
	if start == st.rcvNxt {
		st.ofoSamples = append(st.ofoSamples, 0)
		st.rcvNxt = end
		st.drain(ts)
		return
	}
	for _, b := range st.blocks {
		if b.start <= start && end <= b.end {
			return
		}
	}
	st.blocks = append(st.blocks, ofoBlock{start: start, end: end, ts: ts})
	sort.Slice(st.blocks, func(i, j int) bool { return st.blocks[i].start < st.blocks[j].start })
}

func (st *dataStream) drain(now int64) {
	i := 0
	for ; i < len(st.blocks); i++ {
		b := st.blocks[i]
		if b.start > st.rcvNxt {
			break
		}
		if b.end > st.rcvNxt {
			st.rcvNxt = b.end
		}
		st.ofoSamples = append(st.ofoSamples, float64(now-b.ts)/1e6)
	}
	st.blocks = st.blocks[i:]
}

// findMPTCP extracts the first MPTCP option of type T.
func findMPTCP[T seg.Option](t *TCPLayer) *T {
	for _, o := range t.Options {
		if v, ok := o.(T); ok {
			return &v
		}
	}
	return nil
}

// ConnSummary reports one reconstructed MPTCP connection.
type ConnSummary struct {
	ID       int
	Subflows []Flow
	// OFOms has one out-of-order delay sample per data packet in the
	// connection's dominant (most data) direction.
	OFOms []float64
}

// Connections lists the MPTCP connections reconstructed from the
// capture, with per-connection reordering samples for the direction
// that carried the most data.
func (a *Analyzer) Connections() []ConnSummary {
	ids := make([]connID, 0, len(a.mptcp.conns))
	for id := range a.mptcp.conns {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	out := make([]ConnSummary, 0, len(ids))
	for _, id := range ids {
		cs := a.mptcp.conns[id]
		var best *dataStream
		var bestN int
		for _, st := range cs.streams {
			if n := len(st.ofoSamples); n > bestN {
				best, bestN = st, n
			}
		}
		sum := ConnSummary{ID: int(cs.id), Subflows: cs.subflows}
		if best != nil {
			sum.OFOms = best.ofoSamples
		}
		out = append(out, sum)
	}
	return out
}
