// Package trace is mptcplab's tcptrace: it decodes captured frames
// into layered packets (in the style of gopacket: Layer, LayerType,
// Flow, Endpoint, PacketSource) and recomputes the paper's metrics —
// per-packet RTT, retransmission-based loss rate, and MPTCP data-level
// out-of-order delay — purely from the wire, independent of the
// protocol stack's own counters. Tests cross-validate the two.
package trace

import (
	"fmt"
	"io"

	"mptcplab/internal/pcap"
	"mptcplab/internal/seg"
)

// LayerType identifies a protocol layer within a packet.
type LayerType int

// Layer types known to the decoder.
const (
	LayerTypeIPv4 LayerType = iota + 1
	LayerTypeTCP
)

// String names the layer type.
func (t LayerType) String() string {
	switch t {
	case LayerTypeIPv4:
		return "IPv4"
	case LayerTypeTCP:
		return "TCP"
	default:
		return fmt.Sprintf("LayerType(%d)", int(t))
	}
}

// Layer is one decoded protocol layer.
type Layer interface {
	LayerType() LayerType
}

// IPv4Layer is the decoded network layer.
type IPv4Layer struct {
	Src, Dst [4]byte
}

// LayerType implements Layer.
func (*IPv4Layer) LayerType() LayerType { return LayerTypeIPv4 }

// TCPLayer is the decoded transport layer, including MPTCP options.
type TCPLayer struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            seg.Flags
	Window           uint32
	PayloadLen       int
	Options          []seg.Option
}

// LayerType implements Layer.
func (*TCPLayer) LayerType() LayerType { return LayerTypeTCP }

// DSS returns the segment's DSS option, if any. Decoded frames carry
// it by value; segments captured in-memory may carry the sender's
// inline pointer form.
func (t *TCPLayer) DSS() (seg.DSSOption, bool) {
	for _, o := range t.Options {
		switch d := o.(type) {
		case seg.DSSOption:
			return d, true
		case *seg.DSSOption:
			return *d, true
		}
	}
	return seg.DSSOption{}, false
}

// Packet is one decoded frame.
type Packet struct {
	TS     int64 // capture timestamp, ns
	layers []Layer
	seg    *seg.Segment
}

// Layers lists the packet's decoded layers, outermost first.
func (p *Packet) Layers() []Layer { return p.layers }

// Layer returns the first layer of the given type, or nil.
func (p *Packet) Layer(t LayerType) Layer {
	for _, l := range p.layers {
		if l.LayerType() == t {
			return l
		}
	}
	return nil
}

// TCP is shorthand for the transport layer (nil if not TCP).
func (p *Packet) TCP() *TCPLayer {
	if l := p.Layer(LayerTypeTCP); l != nil {
		return l.(*TCPLayer)
	}
	return nil
}

// IPv4 is shorthand for the network layer.
func (p *Packet) IPv4() *IPv4Layer {
	if l := p.Layer(LayerTypeIPv4); l != nil {
		return l.(*IPv4Layer)
	}
	return nil
}

// Flow returns the packet's transport flow (src->dst).
func (p *Packet) Flow() Flow {
	return Flow{
		Src: Endpoint{IP: p.seg.Src.IP, Port: p.seg.Src.Port},
		Dst: Endpoint{IP: p.seg.Dst.IP, Port: p.seg.Dst.Port},
	}
}

// NewPacket decodes raw frame bytes (IP header first).
func NewPacket(ts int64, data []byte) (*Packet, error) {
	s, err := seg.Decode(data)
	if err != nil {
		return nil, err
	}
	return newPacketFromSegment(ts, s), nil
}

func newPacketFromSegment(ts int64, s *seg.Segment) *Packet {
	return &Packet{
		TS:  ts,
		seg: s,
		layers: []Layer{
			&IPv4Layer{Src: s.Src.IP, Dst: s.Dst.IP},
			&TCPLayer{
				SrcPort: s.Src.Port, DstPort: s.Dst.Port,
				Seq: s.Seq, Ack: s.Ack,
				Flags: s.Flags, Window: s.Window,
				PayloadLen: s.PayloadLen,
				Options:    s.Options,
			},
		},
	}
}

// Endpoint is one side of a flow (gopacket's Endpoint, specialized to
// IPv4+port).
type Endpoint struct {
	IP   [4]byte
	Port uint16
}

// String renders "a.b.c.d:port".
func (e Endpoint) String() string {
	return fmt.Sprintf("%d.%d.%d.%d:%d", e.IP[0], e.IP[1], e.IP[2], e.IP[3], e.Port)
}

// Flow is a directed (src, dst) endpoint pair.
type Flow struct {
	Src, Dst Endpoint
}

// Reverse flips the flow's direction.
func (f Flow) Reverse() Flow { return Flow{Src: f.Dst, Dst: f.Src} }

// String renders "src->dst".
func (f Flow) String() string { return f.Src.String() + "->" + f.Dst.String() }

// PacketSource iterates packets from a pcap stream, in the style of
// gopacket.PacketSource.
type PacketSource struct {
	r *pcap.Reader
	// DecodeErrors counts frames that failed to decode (skipped).
	DecodeErrors uint64
}

// NewPacketSource wraps a pcap reader.
func NewPacketSource(r *pcap.Reader) *PacketSource { return &PacketSource{r: r} }

// Next returns the next decodable packet, or io.EOF.
func (ps *PacketSource) Next() (*Packet, error) {
	for {
		fr, err := ps.r.Next()
		if err != nil {
			return nil, err
		}
		p, err := NewPacket(fr.TS, fr.Data)
		if err != nil {
			ps.DecodeErrors++
			continue
		}
		return p, nil
	}
}

// ReadAll drains a source into a slice.
func (ps *PacketSource) ReadAll() ([]*Packet, error) {
	var out []*Packet
	for {
		p, err := ps.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, p)
	}
}
