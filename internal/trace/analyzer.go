package trace

import (
	"fmt"
	"io"
	"sort"

	"mptcplab/internal/seg"
	"mptcplab/internal/stats"
)

// FlowStats is the tcptrace-style per-direction summary of one TCP
// flow.
type FlowStats struct {
	Flow Flow

	DataPkts    uint64
	RetransPkts uint64
	Bytes       int64
	Acks        uint64

	// RTTms holds one sample per acknowledged, never-retransmitted
	// data packet: the time from the packet leaving this vantage point
	// to the ACK covering it arriving back — the paper's RTT metric
	// (§3.3), which matches tcptrace's.
	RTTms []float64

	FirstTS, LastTS int64

	// Per-flow open ranges awaiting ACK.
	outstanding []txRange
	// covered tracks sequence ranges already seen, for retransmission
	// detection.
	covered []seg.SACKBlock
}

type txRange struct {
	end   uint32
	ts    int64
	valid bool // false once retransmitted (Karn)
}

// LossRate reports retransmitted / sent data packets.
func (f *FlowStats) LossRate() float64 {
	if f.DataPkts == 0 {
		return 0
	}
	return float64(f.RetransPkts) / float64(f.DataPkts)
}

// Duration reports the flow's observed lifetime in seconds.
func (f *FlowStats) Duration() float64 {
	return float64(f.LastTS-f.FirstTS) / 1e9
}

// Analyzer reconstructs per-flow metrics from a packet stream captured
// at one vantage point (the paper captures at both ends and analyzes
// each; do the same here with two Analyzers).
//
// MPTCP data-level reordering is reconstructed from DSS options under
// the assumption that the capture contains a single MPTCP connection,
// which matches the paper's one-download-per-measurement method.
type Analyzer struct {
	flows map[Flow]*FlowStats

	// Data-level reassembly for OFO delay (receiver vantage point),
	// pooling all DSS mappings — exact when the capture holds one
	// connection, as the paper's per-measurement captures do.
	dataRcvNxt uint64
	dataSeen   bool
	ofoBlocks  []ofoBlock
	ofoSamples []float64

	// mptcp groups subflows into connections by token for captures
	// holding several MPTCP connections; see Connections.
	mptcp *mptcpTracker
}

type ofoBlock struct {
	start, end uint64
	ts         int64
}

// NewAnalyzer returns an empty analyzer.
func NewAnalyzer() *Analyzer {
	return &Analyzer{
		flows: make(map[Flow]*FlowStats),
		mptcp: newMPTCPTracker(),
	}
}

// Add processes one packet.
func (a *Analyzer) Add(p *Packet) {
	t := p.TCP()
	if t == nil {
		return
	}
	f := p.Flow()
	fs := a.flow(f)
	if fs.FirstTS == 0 {
		fs.FirstTS = p.TS
	}
	fs.LastTS = p.TS

	if t.PayloadLen > 0 {
		a.addData(fs, p, t)
	}
	if t.Flags.Has(seg.ACK) && !t.Flags.Has(seg.SYN) {
		a.addAck(f.Reverse(), p, t)
	}
	cs := a.mptcp.observe(p)
	if d, ok := t.DSS(); ok && d.HasMap && t.PayloadLen > 0 {
		a.addDSS(p.TS, d.DataSeq, d.DataSeq+uint64(t.PayloadLen))
		if cs != nil {
			cs.addDSS(f.Src, p.TS, d.DataSeq, d.DataSeq+uint64(t.PayloadLen))
		}
	}
}

func (a *Analyzer) flow(f Flow) *FlowStats {
	fs, ok := a.flows[f]
	if !ok {
		fs = &FlowStats{Flow: f}
		a.flows[f] = fs
	}
	return fs
}

// addData records a data transmission, detecting retransmissions as
// tcptrace does: payload covering sequence space already seen.
func (a *Analyzer) addData(fs *FlowStats, p *Packet, t *TCPLayer) {
	fs.DataPkts++
	fs.Bytes += int64(t.PayloadLen)
	start, end := t.Seq, t.Seq+uint32(t.PayloadLen)

	retrans := false
	for _, c := range fs.covered {
		if seg.SeqGEQ(start, c.Start) && seg.SeqLEQ(end, c.End) {
			retrans = true
			break
		}
	}
	if retrans {
		fs.RetransPkts++
		// Karn: invalidate the pending RTT sample for this range.
		for i := range fs.outstanding {
			if fs.outstanding[i].end == end {
				fs.outstanding[i].valid = false
			}
		}
		return
	}
	fs.covered = mergeBlock(fs.covered, seg.SACKBlock{Start: start, End: end})
	fs.outstanding = append(fs.outstanding, txRange{end: end, ts: p.TS, valid: true})
}

// addAck matches an arriving ACK against outstanding transmissions of
// the reverse flow.
func (a *Analyzer) addAck(dataFlow Flow, p *Packet, t *TCPLayer) {
	fs, ok := a.flows[dataFlow]
	if !ok {
		return
	}
	fs.Acks++
	keep := fs.outstanding[:0]
	for _, r := range fs.outstanding {
		if seg.SeqGEQ(t.Ack, r.end) {
			if r.valid {
				fs.RTTms = append(fs.RTTms, float64(p.TS-r.ts)/1e6)
			}
			continue
		}
		keep = append(keep, r)
	}
	fs.outstanding = keep
}

// addDSS reconstructs connection-level reordering from the DSS
// mapping stream: out-of-order delay is the residence time of data in
// the (virtual) receive buffer before its data sequence is in order.
func (a *Analyzer) addDSS(ts int64, start, end uint64) {
	if !a.dataSeen {
		a.dataSeen = true
		a.dataRcvNxt = start
	}
	if end <= a.dataRcvNxt {
		return // duplicate at data level
	}
	if start < a.dataRcvNxt {
		start = a.dataRcvNxt
	}
	if start == a.dataRcvNxt {
		a.ofoSamples = append(a.ofoSamples, 0)
		a.dataRcvNxt = end
		a.drainOFO(ts)
		return
	}
	for _, b := range a.ofoBlocks {
		if b.start <= start && end <= b.end {
			return
		}
	}
	a.ofoBlocks = append(a.ofoBlocks, ofoBlock{start: start, end: end, ts: ts})
	sort.Slice(a.ofoBlocks, func(i, j int) bool { return a.ofoBlocks[i].start < a.ofoBlocks[j].start })
}

func (a *Analyzer) drainOFO(now int64) {
	i := 0
	for ; i < len(a.ofoBlocks); i++ {
		b := a.ofoBlocks[i]
		if b.start > a.dataRcvNxt {
			break
		}
		if b.end > a.dataRcvNxt {
			a.dataRcvNxt = b.end
		}
		a.ofoSamples = append(a.ofoSamples, float64(now-b.ts)/1e6)
	}
	a.ofoBlocks = a.ofoBlocks[i:]
}

// Flows lists per-flow stats, largest data volume first.
func (a *Analyzer) Flows() []*FlowStats {
	out := make([]*FlowStats, 0, len(a.flows))
	for _, fs := range a.flows {
		out = append(out, fs)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Bytes != out[j].Bytes {
			return out[i].Bytes > out[j].Bytes
		}
		return out[i].Flow.String() < out[j].Flow.String()
	})
	return out
}

// FlowByEndpoints looks up a flow's stats, or nil.
func (a *Analyzer) FlowByEndpoints(f Flow) *FlowStats { return a.flows[f] }

// OFOms returns the reconstructed out-of-order delay samples
// (milliseconds, one per data packet).
func (a *Analyzer) OFOms() []float64 { return a.ofoSamples }

// AddAll consumes an entire packet source.
func (a *Analyzer) AddAll(ps *PacketSource) error {
	for {
		p, err := ps.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		a.Add(p)
	}
}

// WriteSummary renders a tcptrace-like report.
func (a *Analyzer) WriteSummary(w io.Writer) {
	for _, fs := range a.Flows() {
		if fs.DataPkts == 0 && fs.Acks == 0 {
			continue
		}
		fmt.Fprintf(w, "flow %v\n", fs.Flow)
		fmt.Fprintf(w, "  data pkts: %-8d retransmits: %-6d (loss %.2f%%)  bytes: %d\n",
			fs.DataPkts, fs.RetransPkts, fs.LossRate()*100, fs.Bytes)
		if len(fs.RTTms) > 0 {
			s := stats.New()
			s.AddAll(fs.RTTms)
			fmt.Fprintf(w, "  rtt: n=%d min=%.1fms median=%.1fms mean=%.1fms max=%.1fms\n",
				s.N(), s.Min(), s.Median(), s.Mean(), s.Max())
		}
		fmt.Fprintf(w, "  duration: %.3fs\n", fs.Duration())
	}
	for _, c := range a.Connections() {
		fmt.Fprintf(w, "mptcp connection %d: %d subflow(s)\n", c.ID, len(c.Subflows))
		for _, f := range c.Subflows {
			fmt.Fprintf(w, "  subflow %v\n", f)
		}
		if len(c.OFOms) > 0 {
			s := stats.New()
			s.AddAll(c.OFOms)
			fmt.Fprintf(w, "  out-of-order delay: n=%d in-order=%.1f%% mean=%.1fms p95=%.1fms max=%.1fms\n",
				s.N(), 100*(1-s.FractionAbove(0)), s.Mean(), s.Quantile(0.95), s.Max())
		}
	}
}

// mergeBlock inserts a range into a sorted disjoint set.
func mergeBlock(blocks []seg.SACKBlock, nb seg.SACKBlock) []seg.SACKBlock {
	blocks = append(blocks, nb)
	sort.Slice(blocks, func(i, j int) bool { return seg.SeqLT(blocks[i].Start, blocks[j].Start) })
	out := blocks[:1]
	for _, b := range blocks[1:] {
		last := &out[len(out)-1]
		if seg.SeqLEQ(b.Start, last.End) {
			if seg.SeqGT(b.End, last.End) {
				last.End = b.End
			}
		} else {
			out = append(out, b)
		}
	}
	return out
}
