package trace_test

import (
	"fmt"

	"mptcplab/internal/seg"
	"mptcplab/internal/trace"
)

// Decoding a captured frame the gopacket way: layers, then typed
// access to the one you need.
func ExampleNewPacket() {
	wire := seg.Encode(&seg.Segment{
		Src: seg.MakeAddr("192.168.1.1", 8080), Dst: seg.MakeAddr("10.0.0.2", 40000),
		Seq: 1000, Flags: seg.ACK | seg.PSH, PayloadLen: 1460,
		Options: []seg.Option{seg.DSSOption{HasMap: true, DataSeq: 4096, Length: 1460}},
	})
	p, err := trace.NewPacket(0, wire)
	if err != nil {
		panic(err)
	}
	for _, l := range p.Layers() {
		fmt.Println("layer:", l.LayerType())
	}
	tcp := p.TCP()
	fmt.Printf("payload: %d bytes from port %d\n", tcp.PayloadLen, tcp.SrcPort)
	if d, ok := tcp.DSS(); ok {
		fmt.Println("data seq:", d.DataSeq)
	}
	// Output:
	// layer: IPv4
	// layer: TCP
	// payload: 1460 bytes from port 8080
	// data seq: 4096
}

// The analyzer recomputes tcptrace-style metrics from raw packets.
func ExampleAnalyzer() {
	srv := seg.MakeAddr("192.168.1.1", 8080)
	cli := seg.MakeAddr("10.0.0.2", 40000)
	a := trace.NewAnalyzer()

	add := func(ts int64, s *seg.Segment) {
		p, _ := trace.NewPacket(ts, seg.Encode(s))
		a.Add(p)
	}
	add(0, &seg.Segment{Src: srv, Dst: cli, Seq: 1, Flags: seg.ACK, PayloadLen: 1000})
	add(30e6, &seg.Segment{Src: cli, Dst: srv, Ack: 1001, Flags: seg.ACK})

	fs := a.Flows()[0]
	fmt.Printf("%d data pkts, rtt %.0fms\n", fs.DataPkts, fs.RTTms[0])
	// Output:
	// 1 data pkts, rtt 30ms
}
