package trace

import (
	"bytes"
	"strings"
	"testing"

	"mptcplab/internal/pcap"
	"mptcplab/internal/seg"
)

func dataPkt(ts int64, src, dst seg.Addr, seqn uint32, n int, opts ...seg.Option) *Packet {
	s := &seg.Segment{Src: src, Dst: dst, Seq: seqn, Flags: seg.ACK, PayloadLen: n, Options: opts}
	return newPacketFromSegment(ts, s)
}

func ackPkt(ts int64, src, dst seg.Addr, ack uint32) *Packet {
	s := &seg.Segment{Src: src, Dst: dst, Ack: ack, Flags: seg.ACK}
	return newPacketFromSegment(ts, s)
}

var (
	srv = seg.MakeAddr("192.168.1.1", 8080)
	cli = seg.MakeAddr("10.0.0.2", 40000)
)

func TestLayeredDecode(t *testing.T) {
	s := &seg.Segment{
		Src: srv, Dst: cli, Seq: 1000, Ack: 2000,
		Flags: seg.ACK | seg.PSH, PayloadLen: 500,
		Options: []seg.Option{seg.DSSOption{HasMap: true, HasAck: true, DataSeq: 77, Length: 500}},
	}
	p, err := NewPacket(123456, seg.Encode(s))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Layers()) != 2 {
		t.Fatalf("layers = %d", len(p.Layers()))
	}
	ip := p.IPv4()
	if ip == nil || ip.Src != srv.IP || ip.Dst != cli.IP {
		t.Errorf("IPv4 layer wrong: %+v", ip)
	}
	tcp := p.TCP()
	if tcp == nil || tcp.Seq != 1000 || tcp.PayloadLen != 500 {
		t.Fatalf("TCP layer wrong: %+v", tcp)
	}
	if d, ok := tcp.DSS(); !ok || d.DataSeq != 77 {
		t.Errorf("DSS = %+v, %v", d, ok)
	}
	f := p.Flow()
	if f.String() != "192.168.1.1:8080->10.0.0.2:40000" {
		t.Errorf("flow = %v", f)
	}
	if f.Reverse().Src != f.Dst {
		t.Error("Reverse wrong")
	}
}

func TestAnalyzerRTTAndRetransmissions(t *testing.T) {
	a := NewAnalyzer()
	ms := int64(1e6)

	a.Add(dataPkt(0*ms, srv, cli, 1, 1000))     // segment A
	a.Add(dataPkt(1*ms, srv, cli, 1001, 1000))  // segment B
	a.Add(ackPkt(30*ms, cli, srv, 1001))        // acks A: RTT 30ms
	a.Add(dataPkt(40*ms, srv, cli, 1001, 1000)) // B retransmitted
	a.Add(ackPkt(80*ms, cli, srv, 2001))        // acks B — Karn: no sample

	fs := a.FlowByEndpoints(Flow{Src: Endpoint{srv.IP, srv.Port}, Dst: Endpoint{cli.IP, cli.Port}})
	if fs == nil {
		t.Fatal("flow missing")
	}
	if fs.DataPkts != 3 || fs.RetransPkts != 1 {
		t.Errorf("pkts=%d retrans=%d", fs.DataPkts, fs.RetransPkts)
	}
	if got := fs.LossRate(); got < 0.33 || got > 0.34 {
		t.Errorf("loss = %v", got)
	}
	if len(fs.RTTms) != 1 || fs.RTTms[0] != 30 {
		t.Errorf("RTT samples = %v, want [30]", fs.RTTms)
	}
}

func TestAnalyzerPartialRetransmissionNotCounted(t *testing.T) {
	a := NewAnalyzer()
	a.Add(dataPkt(0, srv, cli, 1, 1000))
	// New data overlapping nothing previously seen entirely: counts as
	// fresh even though it abuts.
	a.Add(dataPkt(1, srv, cli, 1001, 500))
	fs := a.Flows()[0]
	if fs.RetransPkts != 0 {
		t.Errorf("fresh data misclassified as retransmission")
	}
}

func TestAnalyzerOFOReconstruction(t *testing.T) {
	a := NewAnalyzer()
	ms := int64(1e6)
	dss := func(dseq uint64, n uint16) seg.Option {
		return seg.DSSOption{HasMap: true, HasAck: true, DataSeq: dseq, Length: n}
	}
	// Data seq 1..1001 arrives at t=0 (in order), 2001..3001 at t=10ms
	// (hole at 1001), hole filled at t=50ms.
	a.Add(dataPkt(0*ms, srv, cli, 1, 1000, dss(1, 1000)))
	a.Add(dataPkt(10*ms, srv, cli, 2001, 1000, dss(2001, 1000)))
	a.Add(dataPkt(50*ms, srv, cli, 1001, 1000, dss(1001, 1000)))

	ofo := a.OFOms()
	if len(ofo) != 3 {
		t.Fatalf("OFO samples = %v", ofo)
	}
	// First in order, the hole-filler in order at its arrival, the
	// early block waited 40ms.
	var waited []float64
	zero := 0
	for _, d := range ofo {
		if d == 0 {
			zero++
		} else {
			waited = append(waited, d)
		}
	}
	if zero != 2 || len(waited) != 1 || waited[0] != 40 {
		t.Errorf("OFO = %v, want two zeros and one 40ms", ofo)
	}
}

func TestMemoryCaptureAndSummary(t *testing.T) {
	mc := &MemoryCapture{}
	tap := mc.Tap()
	s := &seg.Segment{Src: srv, Dst: cli, Seq: 1, Flags: seg.ACK, PayloadLen: 100}
	tap(0, 5, s)
	if len(mc.Packets) != 1 {
		t.Fatalf("capture holds %d packets", len(mc.Packets))
	}
	a := mc.Analyze()
	var sb strings.Builder
	a.WriteSummary(&sb)
	if !strings.Contains(sb.String(), "data pkts: 1") {
		t.Errorf("summary = %q", sb.String())
	}
}

func TestAnalyzePcapEndToEnd(t *testing.T) {
	var buf bytes.Buffer
	w, err := pcap.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	ms := int64(1e6)
	write := func(ts int64, s *seg.Segment) {
		if err := w.WritePacket(pcap.Packet{TS: ts, Data: seg.Encode(s)}); err != nil {
			t.Fatal(err)
		}
	}
	write(0, &seg.Segment{Src: srv, Dst: cli, Seq: 1, Flags: seg.ACK, PayloadLen: 1000})
	write(25*ms, &seg.Segment{Src: cli, Dst: srv, Ack: 1001, Flags: seg.ACK})

	a, err := AnalyzePcap(&buf)
	if err != nil {
		t.Fatal(err)
	}
	fs := a.Flows()[0]
	if len(fs.RTTms) != 1 || fs.RTTms[0] != 25 {
		t.Errorf("RTT = %v", fs.RTTms)
	}
}

func TestPacketSourceSkipsGarbage(t *testing.T) {
	var buf bytes.Buffer
	w, _ := pcap.NewWriter(&buf)
	_ = w.WritePacket(pcap.Packet{TS: 1, Data: []byte{0xde, 0xad}}) // undecodable
	good := &seg.Segment{Src: srv, Dst: cli, Flags: seg.ACK}
	_ = w.WritePacket(pcap.Packet{TS: 2, Data: seg.Encode(good)})

	r, err := pcap.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	ps := NewPacketSource(r)
	pkts, err := ps.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) != 1 || ps.DecodeErrors != 1 {
		t.Errorf("pkts=%d decodeErrors=%d", len(pkts), ps.DecodeErrors)
	}
}
