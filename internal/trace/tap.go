package trace

import (
	"io"

	"mptcplab/internal/netem"
	"mptcplab/internal/pcap"
	"mptcplab/internal/seg"
	"mptcplab/internal/sim"
)

// PcapTap returns a host tap (tcpdump analog) that encodes every
// packet crossing the host's interfaces to a pcap stream. One scratch
// buffer is reused across packets (the writer copies bytes out before
// returning), so steady-state capture does not allocate per frame.
func PcapTap(w *pcap.Writer) netem.Tap {
	var scratch []byte
	return func(dir netem.Direction, at sim.Time, s *seg.Segment) {
		// Both directions are captured, as tcpdump would; the frame
		// itself identifies direction via its addresses.
		_ = dir
		scratch = seg.AppendEncode(scratch[:0], s)
		_ = w.WritePacket(pcap.Packet{TS: int64(at), Data: scratch})
	}
}

// MemoryCapture collects decoded packets in memory — the fast path
// for in-process trace analysis without a file round trip.
type MemoryCapture struct {
	Packets []*Packet
}

// Tap returns the netem.Tap feeding this capture.
func (m *MemoryCapture) Tap() netem.Tap {
	return func(dir netem.Direction, at sim.Time, s *seg.Segment) {
		_ = dir
		m.Packets = append(m.Packets, newPacketFromSegment(int64(at), s))
	}
}

// Analyze runs a fresh Analyzer over the captured packets.
func (m *MemoryCapture) Analyze() *Analyzer {
	a := NewAnalyzer()
	for _, p := range m.Packets {
		a.Add(p)
	}
	return a
}

// AnalyzePcap is the one-call path from a capture file to an analysis.
func AnalyzePcap(r io.Reader) (*Analyzer, error) {
	pr, err := pcap.NewReader(r)
	if err != nil {
		return nil, err
	}
	a := NewAnalyzer()
	if err := a.AddAll(NewPacketSource(pr)); err != nil {
		return nil, err
	}
	return a, nil
}
