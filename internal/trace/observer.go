package trace

import (
	"mptcplab/internal/netem"
	"mptcplab/internal/seg"
	"mptcplab/internal/sim"
)

// SegmentObserver consumes live segments at a host's interfaces. It is
// the hook the invariant checker (internal/check) plugs into: unlike a
// capture Tap, the observer sees the segment the network owns — no
// clone, no allocation — and therefore must neither mutate it nor
// retain it past the call.
type SegmentObserver interface {
	OnSegment(host string, dir netem.Direction, at sim.Time, s *seg.Segment)
}

// AttachObserver wires obs to all of the host's traffic through a raw
// tap. Multiple observers (and regular capture taps) compose freely.
func AttachObserver(h *netem.Host, obs SegmentObserver) {
	name := h.Name
	h.AddRawTap(func(dir netem.Direction, at sim.Time, s *seg.Segment) {
		obs.OnSegment(name, dir, at, s)
	})
}
