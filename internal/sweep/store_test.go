package sweep

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func openTestStore(t *testing.T, dir string, opts StoreOpts) *Store {
	t.Helper()
	s, err := OpenStore(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestStoreRoundTrip: rows Put into one store come back — same bytes,
// same stats shape as Cache — from a reopened store on the same dir.
func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir, StoreOpts{})
	rows := map[string]string{
		"aa:1": "row-one", "bb:2": "row-two", "cc:3": "",
	}
	for k, v := range rows {
		s.Put(k, []byte(v))
	}
	if _, ok := s.Get("absent"); ok {
		t.Fatal("Get(absent) hit")
	}
	s.Close()

	r := openTestStore(t, dir, StoreOpts{})
	for k, v := range rows {
		got, ok := r.Get(k)
		if !ok || string(got) != v {
			t.Fatalf("reopened Get(%q) = %q, %v; want %q", k, got, ok, v)
		}
	}
	entries, hits, misses := r.Stats()
	if entries != len(rows) || hits != int64(len(rows)) || misses != 0 {
		t.Fatalf("Stats = (%d, %d, %d), want (%d, %d, 0)", entries, hits, misses, len(rows), len(rows))
	}
	h := r.Health()
	if h.LoadedRecords != len(rows) || h.CorruptRecords != 0 || h.Degraded {
		t.Fatalf("Health after clean reopen: %+v", h)
	}
}

// TestStoreGetReturnsCopy pins the satellite contract for both
// backends: mutating the slice Get returns must not poison later hits,
// while GetRef is the documented aliasing fast path.
func TestStoreGetReturnsCopy(t *testing.T) {
	backends := map[string]ResultStore{
		"cache": NewCache(),
		"store": openTestStore(t, t.TempDir(), StoreOpts{}),
	}
	for name, b := range backends {
		b.Put("k", []byte("pristine"))
		got, _ := b.Get("k")
		copy(got, "XXXXXXXX") // a hostile caller scribbles on the result
		again, _ := b.Get("k")
		if string(again) != "pristine" {
			t.Fatalf("%s: Get returned the live slice; later hit reads %q", name, again)
		}
		ref, _ := b.GetRef("k")
		later, _ := b.GetRef("k")
		if &ref[0] != &later[0] {
			t.Fatalf("%s: GetRef copied; it is documented zero-copy", name)
		}
	}
}

// segmentFiles returns the store's segment paths in order.
func segmentFiles(t *testing.T, dir string) []string {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if err != nil {
		t.Fatal(err)
	}
	return names
}

// TestStoreCorruptRecordSkipped is the acceptance case: flip one byte
// inside the middle record's payload; the reopened store must skip
// exactly that record — counted, not fatal — and serve the others.
func TestStoreCorruptRecordSkipped(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir, StoreOpts{})
	for i := 0; i < 3; i++ {
		s.Put(fmt.Sprintf("key-%d:0", i), []byte(fmt.Sprintf("value-%d", i)))
	}
	s.Close()

	segs := segmentFiles(t, dir)
	if len(segs) != 1 {
		t.Fatalf("want 1 segment, have %v", segs)
	}
	b, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	// Walk the framing to the second record and corrupt its payload.
	rec0 := storeHeaderLen + int(binary.LittleEndian.Uint32(b[0:4])) + int(binary.LittleEndian.Uint32(b[4:8]))
	b[rec0+storeHeaderLen] ^= 0xff
	if err := os.WriteFile(segs[0], b, 0o644); err != nil {
		t.Fatal(err)
	}

	r := openTestStore(t, dir, StoreOpts{})
	h := r.Health()
	if h.CorruptRecords != 1 || h.LoadedRecords != 2 || h.Entries != 2 {
		t.Fatalf("corrupt middle record: Health = %+v, want exactly 1 skipped, 2 served", h)
	}
	for _, i := range []int{0, 2} {
		got, ok := r.Get(fmt.Sprintf("key-%d:0", i))
		if !ok || string(got) != fmt.Sprintf("value-%d", i) {
			t.Fatalf("record %d not served after sibling corruption: %q, %v", i, got, ok)
		}
	}
	if _, ok := r.Get("key-1:0"); ok {
		t.Fatal("the corrupted record was served")
	}
}

// TestStoreTruncatedTail: a kill mid-append leaves a ragged last
// record; reopening loads the intact prefix, counts one corruption,
// and keeps accepting writes on a fresh segment.
func TestStoreTruncatedTail(t *testing.T) {
	for _, cut := range []int{1, storeHeaderLen - 2} { // mid-payload, mid-header
		dir := t.TempDir()
		s := openTestStore(t, dir, StoreOpts{})
		s.Put("a:1", []byte("alpha"))
		s.Put("b:2", []byte("beta"))
		s.Close()

		seg := segmentFiles(t, dir)[0]
		fi, err := os.Stat(seg)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(seg, fi.Size()-int64(len("beta"))-int64(cut)); err != nil {
			t.Fatal(err)
		}

		r := openTestStore(t, dir, StoreOpts{})
		h := r.Health()
		if h.LoadedRecords != 1 || h.CorruptRecords != 1 {
			t.Fatalf("cut=%d: Health = %+v, want 1 loaded + 1 truncated", cut, h)
		}
		if _, ok := r.Get("b:2"); ok {
			t.Fatalf("cut=%d: truncated record served", cut)
		}
		// Recovery keeps working: new writes land on a fresh segment
		// and survive another reopen alongside the old prefix.
		r.Put("c:3", []byte("gamma"))
		r.Close()
		rr := openTestStore(t, dir, StoreOpts{})
		for k, v := range map[string]string{"a:1": "alpha", "c:3": "gamma"} {
			if got, ok := rr.Get(k); !ok || string(got) != v {
				t.Fatalf("cut=%d: after recovery Get(%q) = %q, %v", cut, k, got, ok)
			}
		}
	}
}

// TestStoreGarbageHeaderAbandonsSegment: lengths beyond the framing
// bounds offer no resync point, so the rest of that segment is
// abandoned (one counted corruption) — but later segments still load.
func TestStoreGarbageHeaderAbandonsSegment(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir, StoreOpts{})
	s.Put("a:1", []byte("alpha"))
	s.Close()
	seg := segmentFiles(t, dir)[0]
	b, _ := os.ReadFile(seg)
	garbage := append(append([]byte(nil), b...), bytes.Repeat([]byte{0xff}, 40)...)
	if err := os.WriteFile(seg, garbage, 0o644); err != nil {
		t.Fatal(err)
	}
	// A later, intact segment written after the bad one.
	next := encodeRecord("b:2", []byte("beta"))
	if err := os.WriteFile(filepath.Join(dir, "seg-000099.log"), next, 0o644); err != nil {
		t.Fatal(err)
	}

	r := openTestStore(t, dir, StoreOpts{})
	h := r.Health()
	if h.LoadedRecords != 2 || h.CorruptRecords != 1 {
		t.Fatalf("Health = %+v, want both intact records + 1 abandonment", h)
	}
	if got, ok := r.Get("b:2"); !ok || string(got) != "beta" {
		t.Fatalf("later segment not loaded past the garbage one: %q, %v", got, ok)
	}
}

// TestStoreSegmentRotation: a tiny segment cap forces rotation; every
// record still loads across all segments on reopen, and new stores
// never append to an old file.
func TestStoreSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir, StoreOpts{MaxSegmentBytes: 64})
	const n = 20
	for i := 0; i < n; i++ {
		s.Put(fmt.Sprintf("key-%02d:0", i), []byte(fmt.Sprintf("value-%02d", i)))
	}
	s.Close()
	if segs := segmentFiles(t, dir); len(segs) < 3 {
		t.Fatalf("64-byte cap over %d records produced only %v", n, segs)
	}
	r := openTestStore(t, dir, StoreOpts{MaxSegmentBytes: 64})
	entries, _, _ := r.Stats()
	if entries != n {
		t.Fatalf("reopen across rotated segments loaded %d/%d entries", entries, n)
	}
}

// TestStoreDegradedMode: the first write fault flips the store to
// memory-only — Puts keep serving this process, nothing crashes, and
// Health surfaces the reason. Exactly the disk-full story.
func TestStoreDegradedMode(t *testing.T) {
	dir := t.TempDir()
	var fail bool
	s := openTestStore(t, dir, StoreOpts{
		WriteFault: func(op string) error {
			if fail {
				return fmt.Errorf("injected %s fault: disk full", op)
			}
			return nil
		},
	})
	s.Put("durable:1", []byte("on disk"))
	fail = true
	s.Put("volatile:2", []byte("memory only"))
	if h := s.Health(); !h.Degraded || h.DegradedReason == "" {
		t.Fatalf("write fault did not degrade: %+v", h)
	}
	// Degraded mode still serves both rows in-process.
	for k, v := range map[string]string{"durable:1": "on disk", "volatile:2": "memory only"} {
		if got, ok := s.Get(k); !ok || string(got) != v {
			t.Fatalf("degraded Get(%q) = %q, %v", k, got, ok)
		}
	}
	entries, hits, _ := s.Stats()
	if entries != 2 || hits != 2 {
		t.Fatalf("degraded Stats = (%d, %d, _)", entries, hits)
	}
	s.Close()
	// Only the pre-fault row survived the process.
	r := openTestStore(t, dir, StoreOpts{})
	if _, ok := r.Get("durable:1"); !ok {
		t.Fatal("pre-fault row lost")
	}
	if _, ok := r.Get("volatile:2"); ok {
		t.Fatal("memory-only row resurrected from disk")
	}
}

// TestStoreDuplicatePutNotRelogged: re-Putting identical bytes (a
// resumed campaign absorbing a hit path that Puts anyway) must not
// grow the log.
func TestStoreDuplicatePutNotRelogged(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir, StoreOpts{})
	s.Put("k:1", []byte("row"))
	seg := segmentFiles(t, dir)[0]
	fi, _ := os.Stat(seg)
	size := fi.Size()
	for i := 0; i < 10; i++ {
		s.Put("k:1", []byte("row"))
	}
	fi, _ = os.Stat(seg)
	if fi.Size() != size {
		t.Fatalf("identical re-Puts grew the log %d → %d bytes", size, fi.Size())
	}
}

// FuzzStoreOpen throws arbitrary bytes at the segment loader: opening
// must never panic or error, must serve every record it claims to
// have loaded, and must leave the store writable — recovery, not just
// survival. Wired into make fuzz-smoke.
func FuzzStoreOpen(f *testing.F) {
	valid := func(rows ...string) []byte {
		var b []byte
		for i, v := range rows {
			b = append(b, encodeRecord(fmt.Sprintf("fuzz-%d:%d", i, i), []byte(v))...)
		}
		return b
	}
	f.Add(valid("alpha", "beta", "gamma"))
	f.Add(valid("alpha")[:storeHeaderLen+3]) // truncated mid-record
	f.Add([]byte{})
	flipped := valid("alpha", "beta")
	flipped[storeHeaderLen] ^= 0x80
	f.Add(flipped)
	f.Add(bytes.Repeat([]byte{0xff}, 64)) // implausible header
	huge := make([]byte, storeHeaderLen)
	binary.LittleEndian.PutUint32(huge[4:8], 1<<31-1)
	f.Add(huge)

	f.Fuzz(func(t *testing.T, seg []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "seg-000001.log"), seg, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := OpenStore(dir, StoreOpts{})
		if err != nil {
			t.Fatalf("OpenStore must absorb arbitrary segment bytes, got %v", err)
		}
		defer s.Close()
		h := s.Health()
		if h.Degraded {
			t.Fatalf("open alone degraded the store: %+v", h)
		}
		if h.Entries > h.LoadedRecords {
			t.Fatalf("more entries (%d) than loaded records (%d)", h.Entries, h.LoadedRecords)
		}
		// Still writable after whatever the bytes were: round-trip a
		// fresh record through a reopen.
		s.Put("post-fuzz:1", []byte("still alive"))
		if s.Health().Degraded {
			t.Fatal("Put after fuzzed open degraded the store")
		}
		s.Close()
		r, err := OpenStore(dir, StoreOpts{})
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		if got, ok := r.Get("post-fuzz:1"); !ok || string(got) != "still alive" {
			t.Fatalf("post-fuzz write lost across reopen: %q, %v", got, ok)
		}
	})
}
