package sweep

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"mptcplab/internal/sim"
)

// The engine's Seed must reproduce the two private helpers it
// replaced bit-for-bit: the experiment matrix packed (row, col, rep)
// and the load sweep packed (point, rep) into disjoint 21-bit fields.
// Any drift here would silently re-seed every pinned export.
func TestSeedMatchesLegacyPackings(t *testing.T) {
	legacyMatrix := func(campaign int64, row, col, rep int) int64 {
		packed := uint64(row)<<42 | uint64(col)<<21 | uint64(rep)
		return int64(sim.Splitmix64(sim.Splitmix64(uint64(campaign)) ^ packed))
	}
	legacySweep := func(campaign int64, point, rep int) int64 {
		packed := uint64(point)<<21 | uint64(rep)
		return int64(sim.Splitmix64(sim.Splitmix64(uint64(campaign)) ^ packed))
	}
	for campaign := int64(-3); campaign <= 99; campaign += 17 {
		for _, idx := range [][3]int{{0, 0, 0}, {1, 2, 3}, {7, 0, 19}, {1 << 20, 5, 1<<21 - 1}} {
			if got, want := Seed(campaign, idx[0], idx[1], idx[2]), legacyMatrix(campaign, idx[0], idx[1], idx[2]); got != want {
				t.Fatalf("Seed(%d, %v) = %d, legacy matrix mix = %d", campaign, idx, got, want)
			}
			if got, want := Seed(campaign, idx[1], idx[2]), legacySweep(campaign, idx[1], idx[2]); got != want {
				t.Fatalf("Seed(%d, %v) = %d, legacy sweep mix = %d", campaign, idx[1:], got, want)
			}
		}
	}
}

// Collision-freedom property: within a campaign, every grid index
// combination gets a distinct seed, and distinct campaigns produce
// disjoint seed sets over the same grid — the guarantee the old
// additive mix (Seed + row*1_000_003 + ...) broke.
func TestSeedCollisionFree(t *testing.T) {
	seen := map[int64]string{}
	for _, campaign := range []int64{1, 2, 42, -7} {
		for r := 0; r < 12; r++ {
			for c := 0; c < 12; c++ {
				for p := 0; p < 12; p++ {
					s := Seed(campaign, r, c, p)
					id := fmt.Sprintf("campaign %d job (%d,%d,%d)", campaign, r, c, p)
					if prev, dup := seen[s]; dup {
						t.Fatalf("seed collision: %s and %s both got %d", prev, id, s)
					}
					seen[s] = id
				}
			}
		}
	}
	// Regression for the linear-mix failure mode: index deltas must
	// not translate across campaigns.
	if Seed(1, 0, 0, 0)-Seed(1, 0, 0, 1) == Seed(2, 0, 0, 0)-Seed(2, 0, 0, 1) {
		t.Fatal("seed deltas repeat across campaigns; mix looks linear")
	}
}

// sweepRow is the toy result type the engine tests fold.
type sweepRow struct {
	job  int
	seed int64
	fail string
}

func runToy(t *testing.T, opts Opts, n int, panicJob int) (rows []sweepRow, st Stats) {
	t.Helper()
	st = Run(opts, n,
		func(ws *int, job int) sweepRow {
			*ws++
			if job == panicJob {
				panic("injected fault")
			}
			return sweepRow{job: job, seed: Seed(opts.Seed, job)}
		},
		func(job int, err error) sweepRow {
			line, _, _ := strings.Cut(err.Error(), "\n")
			return sweepRow{job: job, fail: line}
		},
		func(job int, r sweepRow) { rows = append(rows, r) })
	return rows, st
}

// The determinism contract: the absorbed row sequence is identical
// for every worker count, shuffle included.
func TestRunWorkerInvariance(t *testing.T) {
	const n = 40
	base := Opts{Seed: 42, Salt: 0x5eed, Workers: 1}
	want, _ := runToy(t, base, n, -1)
	if len(want) != n {
		t.Fatalf("serial run absorbed %d rows, want %d", len(want), n)
	}
	for _, workers := range []int{2, 4, 16} {
		opts := base
		opts.Workers = workers
		got, st := runToy(t, opts, n, -1)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d absorbed a different row sequence", workers)
		}
		if st.Workers != workers || st.Cancelled {
			t.Fatalf("workers=%d: stats %+v", workers, st)
		}
		if st.BusyTime < 0 || st.WallTime <= 0 {
			t.Fatalf("workers=%d: implausible timing %+v", workers, st)
		}
	}
}

// Salt zero must leave jobs in natural order — the fuzz sweep's
// contract (scenario i is always seed+i, printed in order).
func TestRunNaturalOrderWithoutSalt(t *testing.T) {
	rows, _ := runToy(t, Opts{Seed: 9, Workers: 1}, 10, -1)
	for i, r := range rows {
		if r.job != i {
			t.Fatalf("row %d came from job %d; expected natural order without a salt", i, r.job)
		}
	}
}

// A panicking run becomes a failed row (first line only, no stack),
// the worker state is discarded, and every other job still executes.
func TestRunContainsPanic(t *testing.T) {
	for _, workers := range []int{1, 4} {
		rows, _ := runToy(t, Opts{Seed: 7, Salt: 0x5eed, Workers: workers}, 12, 5)
		if len(rows) != 12 {
			t.Fatalf("workers=%d: absorbed %d rows, want 12", workers, len(rows))
		}
		var failed *sweepRow
		for i := range rows {
			if rows[i].fail != "" {
				if failed != nil {
					t.Fatalf("workers=%d: more than one failed row", workers)
				}
				failed = &rows[i]
			}
		}
		if failed == nil || failed.job != 5 {
			t.Fatalf("workers=%d: expected exactly job 5 to fail, got %+v", workers, failed)
		}
		if !strings.Contains(failed.fail, "injected fault") {
			t.Fatalf("fail reason %q lost the panic message", failed.fail)
		}
		if strings.Contains(failed.fail, "\n") || strings.Contains(failed.fail, "goroutine") {
			t.Fatalf("fail reason %q leaked a stack trace", failed.fail)
		}
	}
}

// The engine zeroes a worker's state slot after containment, so the
// job after a panic starts from fresh state.
func TestRunResetsWorkerStateAfterPanic(t *testing.T) {
	var states []int
	Run(Opts{Workers: 1}, 4,
		func(ws *int, job int) int {
			states = append(states, *ws)
			*ws++
			if job == 1 {
				panic("boom")
			}
			return job
		},
		func(job int, err error) int { return -job },
		func(int, int) {})
	want := []int{0, 1, 0, 1} // reset after job 1's panic
	if !reflect.DeepEqual(states, want) {
		t.Fatalf("worker state sequence %v, want %v", states, want)
	}
}

// Cancellation mid-sweep: workers stop claiming jobs, absorb sees
// only executed runs, and Stats.Cancelled is set.
func TestRunCancellation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var rows []int
		st := Run(Opts{Workers: workers, Context: ctx,
			Progress: func(done, total int) {
				if done == 3 {
					cancel()
				}
			}}, 100,
			func(ws *struct{}, job int) int { return job },
			func(job int, err error) int { return -1 },
			func(job, r int) { rows = append(rows, r) })
		cancel()
		if !st.Cancelled {
			t.Fatalf("workers=%d: Stats.Cancelled not set", workers)
		}
		if len(rows) >= 100 || len(rows) < 3 {
			t.Fatalf("workers=%d: absorbed %d rows after cancel at 3", workers, len(rows))
		}
	}
}

// A pre-cancelled context executes nothing.
func TestRunPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := 0
	st := Run(Opts{Workers: 4, Context: ctx},
		10,
		func(ws *struct{}, job int) int { ran++; return job },
		func(job int, err error) int { return -1 },
		func(int, int) {})
	if ran != 0 || !st.Cancelled {
		t.Fatalf("pre-cancelled sweep ran %d jobs (cancelled=%v)", ran, st.Cancelled)
	}
}

// Progress must report done counts increasing by exactly one, 1..n,
// under any worker count.
func TestRunProgressMonotone(t *testing.T) {
	for _, workers := range []int{1, 8} {
		var seen []int
		Run(Opts{Workers: workers, Progress: func(done, total int) {
			if total != 20 {
				t.Fatalf("total = %d, want 20", total)
			}
			seen = append(seen, done)
		}}, 20,
			func(ws *struct{}, job int) int { return job },
			func(job int, err error) int { return -1 },
			func(int, int) {})
		if len(seen) != 20 {
			t.Fatalf("workers=%d: %d progress calls, want 20", workers, len(seen))
		}
		for i, d := range seen {
			if d != i+1 {
				t.Fatalf("workers=%d: progress %v not 1..20", workers, seen)
			}
		}
	}
}
