// Package sweep is the generic campaign engine every runner in this
// repo executes on: a seeded job → row contract with deterministic
// fan-out. The engine owns the pieces the experiment matrix, the load
// sweep, and the fuzz sweep used to reimplement separately:
//
//   - per-run seed derivation (Seed: disjoint 21-bit index packing
//     through the Splitmix64 bijection),
//   - optional deterministic job-order shuffling (§3.2-style
//     randomized execution order, derived only from the seed),
//   - worker-pool fan-out with worker-local reusable state,
//   - panic containment (a run that panics becomes a failed row, not
//     a dead campaign; the worker's state is discarded),
//   - absorb-in-order: results fold into the caller's aggregates in
//     the fixed shuffled-list order for every worker count, so
//     exports are byte-identical whether a campaign ran serially or
//     on sixteen cores,
//   - context cancellation with deterministic partial results
//     (workers finish the run they are on, unexecuted jobs are
//     skipped during absorption).
//
// Runs are pure functions of their seed; everything wall-clock lands
// in Stats, never in results. That purity is also what makes the
// content-addressed result cache (Cache, Key) sound: see cache.go.
package sweep

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mptcplab/internal/chaos"
	"mptcplab/internal/sim"
)

// Opts configures one engine execution. The zero value runs every job
// in natural order on GOMAXPROCS workers.
type Opts struct {
	// Seed is the campaign seed; per-job seeds are the caller's
	// business (via Seed), but the execution-order shuffle derives
	// from it too, so equal seeds replay the same order.
	Seed int64
	// Salt, when non-zero, shuffles the job execution order with
	// sim.NewRNG(Seed ^ Salt) — each runner keeps its historical salt
	// so refactoring onto the engine changed no byte of any export.
	// Zero leaves jobs in natural order.
	Salt int64
	// Workers sizes the pool: 0 = runtime.GOMAXPROCS(0), 1 = serial.
	// Results are byte-identical for every worker count.
	Workers int
	// Progress, if set, is invoked after each completed run with the
	// count of runs finished so far and the total. Invocations are
	// serialized; only done increasing by one per call is guaranteed
	// (completion order under a pool is nondeterministic).
	Progress func(done, total int)
	// Context, when non-nil, cancels the sweep: workers finish the
	// run they are on, stop claiming jobs, and Run returns with
	// Stats.Cancelled set, having absorbed only the executed jobs.
	Context context.Context
}

func (o Opts) cancelled() bool {
	return o.Context != nil && o.Context.Err() != nil
}

func (o Opts) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Stats is the execution metadata of one engine run — wall-clock
// facts, deliberately separated from results so exports stay a pure
// function of the seed. BusyTime / WallTime approximates the parallel
// speedup.
type Stats struct {
	Workers  int
	WallTime time.Duration
	BusyTime time.Duration
	// Cancelled reports the sweep stopped early via Opts.Context.
	Cancelled bool
}

// Run executes n jobs and folds their results in deterministic order.
//
// W is the worker-local state a runner reuses across its job stream
// (a testbed, an arena): each worker goroutine owns one *W slot,
// initially zero; run builds it on first use and resets it in place
// after. After a contained panic the engine zeroes the slot — its
// mid-run state is arbitrary — and the next job starts fresh.
//
// run executes job (an index into the caller's job list) and returns
// its row. A panic inside run is contained: failed(job, err) supplies
// the substitute row (err's first line is scheduling-independent; the
// stack beneath it is not, so exports must not include it).
//
// absorb folds one row into the caller's aggregates. It is called on
// the caller's goroutine, in the fixed (shuffled) job order, for
// exactly the jobs that executed — identical for any worker count,
// which is the engine's export-determinism contract.
func Run[W, R any](opts Opts, n int, run func(ws *W, job int) R, failed func(job int, err error) R, absorb func(job int, res R)) Stats {
	st := Stats{Workers: opts.workers()}

	// Shuffle an index permutation rather than the caller's job list:
	// same RNG, same swap sequence, so perm[k] is exactly the job the
	// pre-engine runners would have had at position k.
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	if opts.Salt != 0 {
		order := sim.NewRNG(opts.Seed ^ opts.Salt)
		order.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	}

	start := time.Now()
	var busy atomic.Int64

	// exec runs one job inside the containment boundary and charges
	// its wall time to BusyTime.
	exec := func(ws *W, job int) R {
		t0 := time.Now()
		var res R
		if err := chaos.Contain(func() { res = run(ws, job) }); err != nil {
			var zero W
			*ws = zero
			res = failed(job, err)
		}
		busy.Add(int64(time.Since(t0)))
		return res
	}

	if st.Workers <= 1 {
		// Serial path: absorb each row as it lands, one worker state
		// reused across the whole campaign.
		var ws W
		for k := 0; k < n; k++ {
			if opts.cancelled() {
				break
			}
			absorb(perm[k], exec(&ws, perm[k]))
			if opts.Progress != nil {
				opts.Progress(k+1, n)
			}
		}
	} else {
		results := make([]R, n)
		executed := make([]bool, n)
		var next atomic.Int64
		next.Store(-1)
		var (
			wg         sync.WaitGroup
			progressMu sync.Mutex
			done       int
		)
		for w := 0; w < st.Workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				var ws W
				for {
					if opts.cancelled() {
						return
					}
					k := int(next.Add(1))
					if k >= n {
						return
					}
					results[k] = exec(&ws, perm[k])
					executed[k] = true
					if opts.Progress != nil {
						progressMu.Lock()
						done++
						opts.Progress(done, n)
						progressMu.Unlock()
					}
				}
			}()
		}
		wg.Wait()
		// Absorb in fixed job order, skipping runs cancellation left
		// unexecuted — partial campaigns are deterministic prefixes
		// of the full absorption sequence.
		for k := 0; k < n; k++ {
			if executed[k] {
				absorb(perm[k], results[k])
			}
		}
	}
	st.Cancelled = opts.cancelled()

	st.BusyTime = time.Duration(busy.Load())
	st.WallTime = time.Since(start)
	return st
}
