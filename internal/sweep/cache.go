package sweep

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"sync"
)

// Key builds the content address for one run: the SHA-256 of the
// canonical JSON encoding of desc, paired with the run seed as
// "<hex>:<seed>".
//
// Canonicalization marshals desc, decodes it into generic values, and
// re-marshals: every JSON object becomes a map whose keys Go's
// encoder emits sorted, so two descriptors that differ only in field
// declaration order (or map insertion order, or whether they were a
// struct or a map to begin with) share a key — across processes,
// since nothing here depends on runtime state.
//
// Soundness: every run in this repo is a pure function of (config,
// seed) — no wall clock, no scheduling, no global state reaches a
// result row. So two submissions whose canonical descriptors and
// seeds match would recompute byte-identical rows, and serving the
// cached row instead is indistinguishable from re-running. Distinct
// seeds can never collide because the seed is appended outside the
// hash. Execution policy that cannot change the row (worker count,
// wall-clock deadlines) must stay out of desc.
//
// One caveat of the JSON route: numbers pass through float64, so
// integer descriptor fields above 2^53 would lose precision. Nothing
// in a campaign spec is near that (sizes, durations in nanoseconds,
// counts), and seeds — the one full-range 64-bit input — bypass the
// hash entirely.
func Key(desc any, seed int64) (string, error) {
	raw, err := json.Marshal(desc)
	if err != nil {
		return "", fmt.Errorf("sweep: cache key: %w", err)
	}
	var v any
	if err := json.Unmarshal(raw, &v); err != nil {
		return "", fmt.Errorf("sweep: cache key: %w", err)
	}
	canon, err := json.Marshal(v)
	if err != nil {
		return "", fmt.Errorf("sweep: cache key: %w", err)
	}
	return fmt.Sprintf("%x:%d", sha256.Sum256(canon), seed), nil
}

// ResultStore is the content-addressed result contract the daemon
// programs against: Cache (memory-only) and Store (disk-backed,
// store.go) both satisfy it, so the service layer is backend-blind.
type ResultStore interface {
	// Get returns a copy of the row stored under key, counting a hit
	// or a miss. The caller owns the returned slice.
	Get(key string) ([]byte, bool)
	// GetRef is Get without the defensive copy: the returned bytes
	// alias the store and must not be mutated or retained past
	// immediate decoding.
	GetRef(key string) ([]byte, bool)
	// Put stores a row under key.
	Put(key string, val []byte)
	// Stats reports the entry count and the hit/miss counters.
	Stats() (entries int, hits, misses int64)
}

// Cache is a thread-safe content-addressed result store: serialized
// rows keyed by Key(desc, seed). It never evicts — campaign rows are
// small and bounded by the grids a daemon actually serves — and it
// counts hits and misses so a service can prove a repeat submission
// was answered entirely from cache.
type Cache struct {
	mu      sync.Mutex
	entries map[string][]byte
	hits    int64
	misses  int64
}

// NewCache builds an empty cache.
func NewCache() *Cache {
	return &Cache{entries: make(map[string][]byte)}
}

// Get returns a copy of the row stored under key, counting a hit or a
// miss. The copy means a caller scribbling on the result cannot
// poison every future hit for that key.
func (c *Cache) Get(key string) ([]byte, bool) {
	b, ok := c.GetRef(key)
	if !ok {
		return nil, false
	}
	return append([]byte(nil), b...), true
}

// GetRef is Get without the defensive copy: the returned bytes alias
// the cache and MUST NOT be mutated or retained past immediate
// decoding. For the daemon's unmarshal-and-drop hot path.
func (c *Cache) GetRef(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.entries[key]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return v, ok
}

// Put stores a row under key (last writer wins; by construction every
// writer for a key computed the same bytes).
func (c *Cache) Put(key string, val []byte) {
	cp := make([]byte, len(val))
	copy(cp, val)
	c.mu.Lock()
	c.entries[key] = cp
	c.mu.Unlock()
}

// Stats reports the entry count and the hit/miss counters.
func (c *Cache) Stats() (entries int, hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries), c.hits, c.misses
}
