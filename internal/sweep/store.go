package sweep

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Store is the disk-backed ResultStore: the same content-addressed
// contract as Cache (Get/GetRef/Put/Stats), persisted as a segmented,
// checksummed append-only log so results survive a process kill.
//
// Durability model. Every Put appends one framed record to the active
// segment with an unbuffered os.File write — the bytes reach the
// kernel page cache before Put returns, so a SIGKILL (the failure this
// layer is built for) loses nothing already Put; only an OS crash can
// lose the tail, and losing cached rows is always safe because every
// row is recomputable from its key's (config, seed). No fsync on the
// hot path.
//
// Degradation model, in order of severity:
//
//   - A record that fails its CRC is skipped at open — exactly that
//     record, using its stated lengths to resync — and counted in
//     Health().CorruptRecords. Never a crash.
//   - A truncated tail (the classic kill-during-append shape) ends
//     that segment's scan, counted once. Opening always starts a fresh
//     segment, so a ragged tail is never appended to.
//   - A header too implausible to resync from (lengths beyond the
//     framing bounds) abandons the rest of that one segment, counted
//     once; later segments still load.
//   - A write error (disk full, permission) flips the store to
//     memory-only degraded mode: Put keeps serving from the map,
//     nothing crashes, and Health() reports Degraded with the first
//     error — surfaced by the daemon's /healthz.
//
// Record framing, little-endian:
//
//	[keyLen u32][valLen u32][crc32-IEEE(key||val) u32][key][val]
//
// Segments are seg-NNNNNN.log files; Put rotates to a new segment
// once the active one exceeds MaxSegmentBytes, bounding the blast
// radius of any single corrupt file.
type Store struct {
	dir    string
	maxSeg int64
	fault  func(op string) error // test-only write-fault injection

	mu             sync.Mutex
	entries        map[string][]byte
	hits, misses   int64
	loaded         int // records loaded at open
	corrupt        int // records skipped at open
	segIndex       int // numeric suffix of the segment Put appends to
	seg            *os.File
	segSize        int64
	segments       int // segment files on disk
	degraded       bool
	degradedReason string
}

// Both backends satisfy the daemon-facing contract.
var (
	_ ResultStore = (*Cache)(nil)
	_ ResultStore = (*Store)(nil)
)

// StoreOpts tunes OpenStore. The zero value is the production config.
type StoreOpts struct {
	// MaxSegmentBytes rotates the active segment once it exceeds this
	// many bytes (0 = 4 MiB).
	MaxSegmentBytes int64
	// WriteFault, when non-nil, intercepts every segment create and
	// append; a returned error is handled exactly like the disk
	// failing. Fault injection for tests only.
	WriteFault func(op string) error
}

const (
	storeHeaderLen  = 12
	storeMaxKeyLen  = 1 << 16 // keys are "<64 hex>:<seed>", far below this
	storeMaxValLen  = 1 << 30
	defaultSegBytes = 4 << 20
)

// OpenStore opens (creating if needed) the store rooted at dir,
// loading every decodable record from every segment. Corrupt or
// truncated records degrade per the Store contract and never fail the
// open; only an unusable directory (cannot create, cannot list) does.
func OpenStore(dir string, opts StoreOpts) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sweep: open store: %w", err)
	}
	names, err := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if err != nil {
		return nil, fmt.Errorf("sweep: open store: %w", err)
	}
	sort.Strings(names)
	s := &Store{
		dir:     dir,
		maxSeg:  opts.MaxSegmentBytes,
		fault:   opts.WriteFault,
		entries: make(map[string][]byte),
	}
	if s.maxSeg <= 0 {
		s.maxSeg = defaultSegBytes
	}
	last := 0
	for _, name := range names {
		var idx int
		if _, err := fmt.Sscanf(filepath.Base(name), "seg-%d.log", &idx); err != nil {
			continue // not ours; leave it alone
		}
		if idx > last {
			last = idx
		}
		s.segments++
		s.loadSegment(name)
	}
	// Always append to a fresh segment: a prior crash may have left a
	// ragged tail, and a clean boundary means one bad file can never
	// swallow records written after recovery. The file is created
	// lazily on first Put so restarts alone don't litter the dir.
	s.segIndex = last + 1
	return s, nil
}

// loadSegment replays one segment file into the entry map, skipping
// undecodable records per the degradation contract.
func (s *Store) loadSegment(path string) {
	b, err := os.ReadFile(path)
	if err != nil {
		s.corrupt++
		return
	}
	off := 0
	for off < len(b) {
		rest := b[off:]
		if len(rest) < storeHeaderLen {
			s.corrupt++ // truncated header: kill landed mid-append
			return
		}
		keyLen := int(binary.LittleEndian.Uint32(rest[0:4]))
		valLen := int(binary.LittleEndian.Uint32(rest[4:8]))
		sum := binary.LittleEndian.Uint32(rest[8:12])
		if keyLen > storeMaxKeyLen || valLen > storeMaxValLen {
			s.corrupt++ // header garbage: no trustworthy resync point
			return
		}
		recLen := storeHeaderLen + keyLen + valLen
		if len(rest) < recLen {
			s.corrupt++ // truncated record
			return
		}
		key := rest[storeHeaderLen : storeHeaderLen+keyLen]
		val := rest[storeHeaderLen+keyLen : recLen]
		if crc32.ChecksumIEEE(rest[storeHeaderLen:recLen]) != sum {
			// Payload rot with an intact header: skip exactly this
			// record and keep going — lengths still frame the stream.
			s.corrupt++
			off += recLen
			continue
		}
		s.entries[string(key)] = append([]byte(nil), val...)
		s.loaded++
		off += recLen
	}
}

func encodeRecord(key string, val []byte) []byte {
	rec := make([]byte, storeHeaderLen+len(key)+len(val))
	binary.LittleEndian.PutUint32(rec[0:4], uint32(len(key)))
	binary.LittleEndian.PutUint32(rec[4:8], uint32(len(val)))
	copy(rec[storeHeaderLen:], key)
	copy(rec[storeHeaderLen+len(key):], val)
	binary.LittleEndian.PutUint32(rec[8:12], crc32.ChecksumIEEE(rec[storeHeaderLen:]))
	return rec
}

// Get returns a copy of the row stored under key, counting a hit or a
// miss. The caller owns the returned slice.
func (s *Store) Get(key string) ([]byte, bool) {
	b, ok := s.GetRef(key)
	if !ok {
		return nil, false
	}
	return append([]byte(nil), b...), true
}

// GetRef is Get without the defensive copy: the returned bytes alias
// the store and MUST NOT be mutated or retained past immediate
// decoding. For the daemon's unmarshal-and-drop hot path.
func (s *Store) GetRef(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.entries[key]
	if ok {
		s.hits++
	} else {
		s.misses++
	}
	return v, ok
}

// Put stores a row under key and appends it to the log. A disk error
// degrades the store to memory-only (see Store); it never propagates
// to the caller, because the in-memory copy is already authoritative
// for this process's lifetime.
func (s *Store) Put(key string, val []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.entries[key]; ok && bytes.Equal(old, val) {
		return // same content-addressed bytes; no point re-logging
	}
	s.entries[key] = append([]byte(nil), val...)
	if s.degraded {
		return
	}
	if err := s.append(encodeRecord(key, val)); err != nil {
		s.degraded = true
		s.degradedReason = err.Error()
	}
}

// append writes one framed record to the active segment, rotating
// first if the segment is full. Caller holds s.mu.
func (s *Store) append(rec []byte) error {
	if s.seg != nil && s.segSize+int64(len(rec)) > s.maxSeg && s.segSize > 0 {
		s.seg.Close()
		s.seg = nil
		s.segIndex++
	}
	if s.seg == nil {
		if s.fault != nil {
			if err := s.fault("create"); err != nil {
				return err
			}
		}
		f, err := os.OpenFile(s.segPath(s.segIndex), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		s.seg = f
		s.segSize = 0
		s.segments++
	}
	if s.fault != nil {
		if err := s.fault("append"); err != nil {
			return err
		}
	}
	n, err := s.seg.Write(rec)
	s.segSize += int64(n)
	return err
}

func (s *Store) segPath(idx int) string {
	return filepath.Join(s.dir, fmt.Sprintf("seg-%06d.log", idx))
}

// Stats reports the entry count and the hit/miss counters — the same
// shape as Cache.Stats, so the daemon's accounting is backend-blind.
func (s *Store) Stats() (entries int, hits, misses int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries), s.hits, s.misses
}

// StoreHealth is the durability surface Stats can't carry, exported
// by the daemon's /healthz.
type StoreHealth struct {
	Dir            string `json:"dir"`
	Entries        int    `json:"entries"`
	Segments       int    `json:"segments"`
	LoadedRecords  int    `json:"loaded_records"`
	CorruptRecords int    `json:"corrupt_records"`
	Degraded       bool   `json:"degraded"`
	DegradedReason string `json:"degraded_reason,omitempty"`
}

// Health reports the store's durability state.
func (s *Store) Health() StoreHealth {
	s.mu.Lock()
	defer s.mu.Unlock()
	return StoreHealth{
		Dir:            s.dir,
		Entries:        len(s.entries),
		Segments:       s.segments,
		LoadedRecords:  s.loaded,
		CorruptRecords: s.corrupt,
		Degraded:       s.degraded,
		DegradedReason: s.degradedReason,
	}
}

// Close releases the active segment file handle. The store stays
// usable in memory; further Puts degrade (the log is gone).
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.seg == nil {
		return nil
	}
	err := s.seg.Close()
	s.seg = nil
	if !s.degraded {
		s.degraded = true
		s.degradedReason = "store closed"
	}
	return err
}
