package sweep

import "mptcplab/internal/sim"

// Seed derives one job's seed from the campaign seed and the job's
// grid indices. The indices are packed into disjoint 21-bit fields
// (most-significant first) and the packed word is passed through the
// sim.Splitmix64 bijection, so every job of every grid up to 2^21 per
// axis gets a distinct seed, and distinct campaign seeds never share
// a job seed with each other's grids.
//
// This is the one implementation of the mix the experiment matrix
// (Seed(c, row, col, rep)) and the load sweep (Seed(c, point, rep))
// previously each carried privately; the fold below reproduces both
// packings bit-for-bit, which the legacy-equivalence test pins.
func Seed(campaign int64, idx ...int) int64 {
	var packed uint64
	for _, i := range idx {
		packed = packed<<21 | uint64(i)
	}
	return int64(sim.Splitmix64(sim.Splitmix64(uint64(campaign)) ^ packed))
}
