// Package client is a small retrying HTTP client for the mptcpd
// service API: capped exponential backoff with jitter, Retry-After
// honored on queue-full 503s, and connection-error retries so a
// caller rides out a daemon restart — the client-side half of the
// service's durability story, and the helper the smoke tests drive
// the daemon with.
//
// Retries are safe by the service's own semantics: a submit that
// never reached the daemon left no state, a 503 left no state by
// definition, and a duplicate submit of the same spec is answered
// from the content-addressed store — re-asking is idempotent in
// effect even though POST is not in form.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"time"
)

// Options tunes a Client. The zero value gets production defaults;
// the hooks exist so tests can pin backoff behavior deterministically.
type Options struct {
	// HTTP is the underlying client (nil = http.DefaultClient).
	HTTP *http.Client
	// MaxAttempts bounds tries per request, first included (0 = 6).
	MaxAttempts int
	// BaseDelay seeds the exponential backoff (0 = 100ms); attempt n
	// waits ~BaseDelay<<n, capped at MaxDelay (0 = 5s).
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Sleep replaces time.Sleep in tests.
	Sleep func(time.Duration)
	// Jitter returns a value in [0,1); nil = math/rand. The wait is
	// "equal jitter": half the backoff fixed, half scaled by this.
	Jitter func() float64
}

// Client talks to one mptcpd base URL ("http://host:port").
type Client struct {
	base string
	o    Options
}

// New builds a client for the daemon at base.
func New(base string, opts ...Options) *Client {
	var o Options
	if len(opts) > 0 {
		o = opts[0]
	}
	if o.HTTP == nil {
		o.HTTP = http.DefaultClient
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 6
	}
	if o.BaseDelay <= 0 {
		o.BaseDelay = 100 * time.Millisecond
	}
	if o.MaxDelay <= 0 {
		o.MaxDelay = 5 * time.Second
	}
	if o.Sleep == nil {
		o.Sleep = time.Sleep
	}
	if o.Jitter == nil {
		o.Jitter = rand.Float64
	}
	return &Client{base: base, o: o}
}

// CampaignStatus mirrors the daemon's status body.
type CampaignStatus struct {
	ID          string `json:"id"`
	Kind        string `json:"kind"`
	Name        string `json:"name,omitempty"`
	State       string `json:"state"`
	Done        int    `json:"done"`
	Total       int    `json:"total"`
	CacheHits   int64  `json:"cache_hits"`
	CacheMisses int64  `json:"cache_misses"`
	Rows        int    `json:"rows"`
	Resumed     bool   `json:"resumed,omitempty"`
	Error       string `json:"error,omitempty"`
}

// Terminal reports whether the campaign has reached a final state.
func (st CampaignStatus) Terminal() bool {
	switch st.State {
	case "done", "cancelled", "failed":
		return true
	}
	return false
}

// Health mirrors the daemon's /healthz body.
type Health struct {
	Status   string          `json:"status"`
	QueueLen int             `json:"queue_len"`
	QueueCap int             `json:"queue_cap"`
	Store    json.RawMessage `json:"store,omitempty"`
	Journal  json.RawMessage `json:"journal,omitempty"`
}

// backoffDelay is the wait before retry number attempt (0-based):
// equal jitter over an exponentially growing, capped window, unless
// the server named its own price via Retry-After.
func (c *Client) backoffDelay(attempt int, resp *http.Response) time.Duration {
	if resp != nil {
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			if secs, err := strconv.Atoi(ra); err == nil && secs >= 0 {
				return min(time.Duration(secs)*time.Second, c.o.MaxDelay)
			}
		}
	}
	d := c.o.BaseDelay << attempt
	if d <= 0 || d > c.o.MaxDelay { // <<= overflow or past the cap
		d = c.o.MaxDelay
	}
	return d/2 + time.Duration(c.o.Jitter()*float64(d/2))
}

// do issues one request with the retry policy: connection errors and
// 503s back off and retry; everything else returns immediately.
func (c *Client) do(ctx context.Context, method, path string, body []byte) (*http.Response, error) {
	var lastErr error
	for attempt := 0; attempt < c.o.MaxAttempts; attempt++ {
		req, err := http.NewRequestWithContext(ctx, method, c.base+path, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := c.o.HTTP.Do(req)
		if err == nil && resp.StatusCode != http.StatusServiceUnavailable {
			return resp, nil
		}
		if last := attempt == c.o.MaxAttempts-1; last {
			if err != nil {
				return nil, fmt.Errorf("client: %s %s: %d attempts exhausted: %w", method, path, c.o.MaxAttempts, err)
			}
			return resp, nil // the final 503 is the caller's to report
		}
		delay := c.backoffDelay(attempt, resp)
		if resp != nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		lastErr = err
		if ctx != nil && ctx.Err() != nil {
			return nil, ctx.Err()
		}
		c.o.Sleep(delay)
	}
	return nil, lastErr // unreachable; loop always returns
}

// decode reads resp as JSON into v, turning non-2xx into an error
// carrying the daemon's error body.
func decode(resp *http.Response, v any) error {
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(b, &e) == nil && e.Error != "" {
			return fmt.Errorf("client: %s: %s", resp.Status, e.Error)
		}
		return fmt.Errorf("client: %s: %s", resp.Status, bytes.TrimSpace(b))
	}
	if v == nil {
		return nil
	}
	return json.Unmarshal(b, v)
}

// Submit POSTs a campaign spec (any JSON-marshalable value) and
// returns the accepted campaign's status.
func (c *Client) Submit(ctx context.Context, spec any) (CampaignStatus, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return CampaignStatus{}, err
	}
	resp, err := c.do(ctx, http.MethodPost, "/v1/campaigns", body)
	if err != nil {
		return CampaignStatus{}, err
	}
	var st CampaignStatus
	return st, decode(resp, &st)
}

// Status fetches one campaign's status.
func (c *Client) Status(ctx context.Context, id string) (CampaignStatus, error) {
	resp, err := c.do(ctx, http.MethodGet, "/v1/campaigns/"+id, nil)
	if err != nil {
		return CampaignStatus{}, err
	}
	var st CampaignStatus
	return st, decode(resp, &st)
}

// WaitTerminal polls every poll until the campaign reaches a terminal
// state or ctx expires.
func (c *Client) WaitTerminal(ctx context.Context, id string, poll time.Duration) (CampaignStatus, error) {
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	for {
		st, err := c.Status(ctx, id)
		if err != nil {
			return st, err
		}
		if st.Terminal() {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-time.After(poll):
		}
	}
}

// Artifact downloads one export artifact (export.csv, export.json,
// resilience.csv, ...) of a finished campaign.
func (c *Client) Artifact(ctx context.Context, id, name string) ([]byte, error) {
	resp, err := c.do(ctx, http.MethodGet, "/v1/campaigns/"+id+"/"+name, nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("client: artifact %s/%s: %s: %s", id, name, resp.Status, bytes.TrimSpace(b))
	}
	return b, nil
}

// Healthz fetches the daemon's durability/health surface.
func (c *Client) Healthz(ctx context.Context) (Health, error) {
	resp, err := c.do(ctx, http.MethodGet, "/healthz", nil)
	if err != nil {
		return Health{}, err
	}
	var h Health
	return h, decode(resp, &h)
}
