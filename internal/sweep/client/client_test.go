package client

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// pinned returns a client whose backoff is deterministic (jitter
// pinned to 1.0, so the wait equals the full backoff window) and
// whose sleeps are recorded instead of slept.
func pinned(base string, attempts int, maxDelay time.Duration, slept *[]time.Duration) *Client {
	return New(base, Options{
		MaxAttempts: attempts,
		BaseDelay:   100 * time.Millisecond,
		MaxDelay:    maxDelay,
		Sleep:       func(d time.Duration) { *slept = append(*slept, d) },
		Jitter:      func() float64 { return 1.0 },
	})
}

// TestClientHonorsRetryAfter: a queue-full 503 carrying Retry-After
// sets the wait exactly; the request succeeds once the queue drains.
func TestClientHonorsRetryAfter(t *testing.T) {
	var calls int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		if calls <= 2 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprint(w, `{"error":"campaign queue full"}`)
			return
		}
		w.WriteHeader(http.StatusCreated)
		fmt.Fprint(w, `{"id":"c1","state":"queued"}`)
	}))
	defer ts.Close()

	var slept []time.Duration
	st, err := pinned(ts.URL, 6, 5*time.Second, &slept).Submit(context.Background(), map[string]any{"experiment": "fig8"})
	if err != nil {
		t.Fatal(err)
	}
	if st.ID != "c1" || calls != 3 {
		t.Fatalf("Submit = %+v after %d calls", st, calls)
	}
	want := []time.Duration{time.Second, time.Second}
	if len(slept) != 2 || slept[0] != want[0] || slept[1] != want[1] {
		t.Fatalf("slept %v, want Retry-After-pinned %v", slept, want)
	}
}

// TestClientBackoffCaps: without Retry-After the waits grow
// exponentially from BaseDelay and cap at MaxDelay.
func TestClientBackoffCaps(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	var slept []time.Duration
	resp, err := pinned(ts.URL, 6, 800*time.Millisecond, &slept).do(context.Background(), http.MethodGet, "/v1/campaigns/c1", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("exhausted retries should surface the final 503, got %d", resp.StatusCode)
	}
	// Jitter pinned to 1.0 → wait = full window: 100, 200, 400, then
	// capped at 800, 800 for the 5 sleeps between 6 attempts.
	want := []time.Duration{100, 200, 400, 800, 800}
	if len(slept) != len(want) {
		t.Fatalf("slept %v, want %d waits", slept, len(want))
	}
	for i, ms := range want {
		if slept[i] != ms*time.Millisecond {
			t.Fatalf("wait %d = %v, want %v (full slept %v)", i, slept[i], ms*time.Millisecond, slept)
		}
	}
}

// TestClientRetriesConnectionErrors: a dead daemon (restarting after
// a crash) produces transport errors, which retry like 503s and
// succeed once the daemon is back.
func TestClientRetriesConnectionErrors(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"id":"c1","state":"done"}`)
	}))
	defer ts.Close()

	var calls int
	rt := roundTripFunc(func(r *http.Request) (*http.Response, error) {
		calls++
		if calls <= 2 {
			return nil, fmt.Errorf("dial tcp: connection refused")
		}
		return http.DefaultTransport.RoundTrip(r)
	})
	var slept []time.Duration
	c := New(ts.URL, Options{
		HTTP:        &http.Client{Transport: rt},
		MaxAttempts: 4,
		Sleep:       func(d time.Duration) { slept = append(slept, d) },
		Jitter:      func() float64 { return 0 },
	})
	st, err := c.Status(context.Background(), "c1")
	if err != nil || st.State != "done" {
		t.Fatalf("Status = %+v, %v after %d dials", st, err, calls)
	}
	if calls != 3 || len(slept) != 2 {
		t.Fatalf("wanted 2 retried connection errors, got %d calls, slept %v", calls, slept)
	}
}

// TestClientExhaustsAttemptsOnDeadDaemon: permanent transport failure
// surfaces the last error after exactly MaxAttempts tries.
func TestClientExhaustsAttemptsOnDeadDaemon(t *testing.T) {
	var calls int
	rt := roundTripFunc(func(r *http.Request) (*http.Response, error) {
		calls++
		return nil, fmt.Errorf("dial tcp: connection refused")
	})
	var slept []time.Duration
	c := New("http://127.0.0.1:0", Options{
		HTTP:        &http.Client{Transport: rt},
		MaxAttempts: 3,
		Sleep:       func(d time.Duration) { slept = append(slept, d) },
	})
	if _, err := c.Status(context.Background(), "c1"); err == nil {
		t.Fatal("dead daemon produced no error")
	}
	if calls != 3 {
		t.Fatalf("made %d attempts, want exactly MaxAttempts=3", calls)
	}
}

// TestClientNonRetryableStatusReturnsImmediately: 4xx responses are
// the caller's problem, not a reason to back off.
func TestClientNonRetryableStatusReturnsImmediately(t *testing.T) {
	var calls int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		w.WriteHeader(http.StatusBadRequest)
		fmt.Fprint(w, `{"error":"unknown experiment \"fig99\""}`)
	}))
	defer ts.Close()

	var slept []time.Duration
	_, err := pinned(ts.URL, 6, 5*time.Second, &slept).Submit(context.Background(), map[string]any{"experiment": "fig99"})
	if err == nil || calls != 1 || len(slept) != 0 {
		t.Fatalf("400 handling: err=%v calls=%d slept=%v; want one attempt, no sleeps, an error", err, calls, slept)
	}
}

type roundTripFunc func(*http.Request) (*http.Response, error)

func (f roundTripFunc) RoundTrip(r *http.Request) (*http.Response, error) { return f(r) }
