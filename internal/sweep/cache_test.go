package sweep

import (
	"crypto/sha256"
	"fmt"
	"strings"
	"testing"
)

// Canonical config-hash stability: the same logical spec must produce
// the same key regardless of struct field declaration order, and
// regardless of whether it arrives as a struct or a map.
func TestKeyFieldOrderStability(t *testing.T) {
	type specAB struct {
		Clients int     `json:"clients"`
		Rate    float64 `json:"rate"`
		Sched   string  `json:"sched"`
	}
	type specBA struct {
		Sched   string  `json:"sched"`
		Rate    float64 `json:"rate"`
		Clients int     `json:"clients"`
	}
	a, err := Key(specAB{Clients: 40, Rate: 2.5, Sched: "minrtt"}, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Key(specBA{Sched: "minrtt", Rate: 2.5, Clients: 40}, 42)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Key(map[string]any{"sched": "minrtt", "clients": 40, "rate": 2.5}, 42)
	if err != nil {
		t.Fatal(err)
	}
	if a != b || a != m {
		t.Fatalf("keys diverge for one logical spec:\n struct AB %s\n struct BA %s\n map       %s", a, b, m)
	}
}

// Process stability: the key is a pure function of the canonical JSON
// bytes, pinned here against a hand-written canonical encoding — no
// map iteration order, pointer value, or per-process state may leak
// into it.
func TestKeyPinnedAcrossProcesses(t *testing.T) {
	got, err := Key(map[string]any{"b": "x", "a": 1}, 7)
	if err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("%x:7", sha256.Sum256([]byte(`{"a":1,"b":"x"}`)))
	if got != want {
		t.Fatalf("Key = %s, want pinned %s", got, want)
	}
}

// Distinct seeds never collide — the seed rides outside the hash, so
// this holds structurally, and distinct configs get distinct hashes.
func TestKeyDistinctness(t *testing.T) {
	desc := map[string]any{"clients": 40}
	seen := map[string]bool{}
	for seed := int64(-500); seed < 500; seed++ {
		k, err := Key(desc, seed)
		if err != nil {
			t.Fatal(err)
		}
		if seen[k] {
			t.Fatalf("seed %d reused key %s", seed, k)
		}
		seen[k] = true
		if !strings.HasSuffix(k, fmt.Sprintf(":%d", seed)) {
			t.Fatalf("key %s does not carry seed %d outside the hash", k, seed)
		}
	}
	k1, _ := Key(map[string]any{"clients": 40}, 1)
	k2, _ := Key(map[string]any{"clients": 41}, 1)
	if k1 == k2 {
		t.Fatal("distinct configs share a key")
	}
}

func TestCacheHitMissAccounting(t *testing.T) {
	c := NewCache()
	if _, ok := c.Get("k"); ok {
		t.Fatal("empty cache returned a hit")
	}
	val := []byte("row")
	c.Put("k", val)
	val[0] = 'X' // Put must have copied
	got, ok := c.Get("k")
	if !ok || string(got) != "row" {
		t.Fatalf("Get = %q, %v; want cached copy \"row\"", got, ok)
	}
	entries, hits, misses := c.Stats()
	if entries != 1 || hits != 1 || misses != 1 {
		t.Fatalf("Stats = (%d, %d, %d), want (1, 1, 1)", entries, hits, misses)
	}
}
