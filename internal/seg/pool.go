package seg

// Pool recycles Segments through a free list so the per-packet hot
// path (build → route → deliver, or build → drop) allocates nothing in
// steady state. A download's live-segment population is bounded by the
// windows in flight, so the pool stays O(window) while packet counts
// grow O(bytes).
//
// Ownership is linear: the sender Gets a segment, the netem layer
// carries it hop to hop, and whoever terminates its life — the final
// deliver after the receiver's synchronous Receive returns, or any
// drop point — Puts it back. Anything that must outlive that moment
// (capture taps, held SYNs) works on a Clone, which is an ordinary
// heap segment. A nil *Pool is valid and simply allocates: Get returns
// a fresh Segment and Put drops it for the GC, so code paths that
// predate pooling (tests, standalone links) work unchanged.
//
// A Pool is confined to one simulator goroutine like everything else
// it feeds; it is intentionally not safe for concurrent use.
type Pool struct {
	free []*Segment

	// Gets counts segments handed out; News counts the subset that had
	// to be freshly allocated (pool empty). News/Gets is the miss rate.
	Gets, News uint64
}

// Get returns an empty segment, recycled when possible.
func (p *Pool) Get() *Segment {
	if p == nil {
		return &Segment{}
	}
	p.Gets++
	if n := len(p.free); n > 0 {
		s := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		s.pooled = false
		return s
	}
	p.News++
	return &Segment{}
}

// Put resets s and returns it to the free list. Releasing the same
// segment twice panics: a double release means two owners believe they
// hold the segment, which silently corrupts later packets.
func (p *Pool) Put(s *Segment) {
	if p == nil || s == nil {
		return
	}
	if s.pooled {
		panic("seg: segment released to pool twice")
	}
	opts := s.Options
	clear(opts)
	// The generation counter survives the reset (incremented): holders
	// that recorded Gen() at hand-off can detect recycling.
	*s = Segment{Options: opts[:0], pooled: true, gen: s.gen + 1}
	p.free = append(p.free, s)
}

// Size reports how many segments are currently idle in the pool.
func (p *Pool) Size() int {
	if p == nil {
		return 0
	}
	return len(p.free)
}
