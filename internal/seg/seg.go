// Package seg defines mptcplab's wire model: TCP segments with real
// IPv4/TCP binary encodings, including the MPTCP option (kind 30) and
// its MP_CAPABLE / MP_JOIN / DSS / ADD_ADDR subtypes.
//
// The simulator moves *Segment values between endpoints directly (no
// serialization on the hot path), but every segment can be encoded to
// genuine wire bytes for pcap capture and decoded back by the trace
// analyzer, mirroring the paper's tcpdump/tcptrace methodology.
package seg

import (
	"fmt"
	"net/netip"

	"mptcplab/internal/sim"
)

// Addr is an IPv4 endpoint address (host + TCP port).
type Addr struct {
	IP   [4]byte
	Port uint16
}

// MakeAddr builds an Addr from a dotted-quad string and port. It
// panics on a malformed literal; addresses in mptcplab are static
// testbed configuration, so a bad one is a programming error.
func MakeAddr(ip string, port uint16) Addr {
	a, err := netip.ParseAddr(ip)
	if err != nil || !a.Is4() {
		panic(fmt.Sprintf("seg: bad IPv4 literal %q", ip))
	}
	return Addr{IP: a.As4(), Port: port}
}

// String renders "a.b.c.d:port".
func (a Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d:%d", a.IP[0], a.IP[1], a.IP[2], a.IP[3], a.Port)
}

// IPString renders just the dotted quad.
func (a Addr) IPString() string {
	return fmt.Sprintf("%d.%d.%d.%d", a.IP[0], a.IP[1], a.IP[2], a.IP[3])
}

// Flags is the TCP flag byte.
type Flags uint8

// TCP control flags.
const (
	FIN Flags = 1 << 0
	SYN Flags = 1 << 1
	RST Flags = 1 << 2
	PSH Flags = 1 << 3
	ACK Flags = 1 << 4
)

// Has reports whether all flags in f2 are set in f.
func (f Flags) Has(f2 Flags) bool { return f&f2 == f2 }

// String renders e.g. "SYN|ACK".
func (f Flags) String() string {
	s := ""
	add := func(b Flags, n string) {
		if f&b != 0 {
			if s != "" {
				s += "|"
			}
			s += n
		}
	}
	add(SYN, "SYN")
	add(ACK, "ACK")
	add(FIN, "FIN")
	add(RST, "RST")
	add(PSH, "PSH")
	if s == "" {
		s = "-"
	}
	return s
}

// Segment is one TCP segment in flight. PayloadLen stands in for the
// application bytes (contents are synthesized on capture); everything
// else is genuine TCP header state.
type Segment struct {
	Src, Dst Addr
	Seq, Ack uint32
	Flags    Flags
	Window   uint32 // advertised receive window, bytes (post-scaling)

	PayloadLen int
	Options    []Option

	// Simulation bookkeeping, not on the wire.
	SentAt     sim.Time // stamped when the sender hands it to the NIC
	Retransmit bool     // true if this carries previously sent data
	TxSeq      uint64   // per-path transmission serial, set by netem

	// Inline storage for the per-packet options: AddDSS and AddSACK
	// write here and append an interior pointer to Options, so
	// decorating a data segment or ACK costs no allocation (boxing a
	// pointer is allocation-free, boxing the option value is not).
	// Clone re-points these into the copy.
	dss     DSSOption
	sack    SACKOption
	sackArr [maxSACKBlocks]SACKBlock

	pooled bool   // currently on a Pool free list (double-release guard)
	gen    uint32 // incremented on each Pool.Put; detects stale handles
}

// Gen reports the segment's pool generation. The counter advances every
// time the segment is released to a Pool, so a holder that records the
// generation at hand-off can later detect that the segment it still
// points to has been recycled into a different packet.
func (s *Segment) Gen() uint32 { return s.gen }

// Pooled reports whether the segment currently sits on a Pool free
// list. A true result means any outstanding pointer to it is stale.
func (s *Segment) Pooled() bool { return s.pooled }

// maxSACKBlocks bounds a segment's inline SACK storage; RFC 2018's
// 40-byte option budget caps a real header at four blocks anyway.
const maxSACKBlocks = 4

// Len reports the payload length in bytes.
func (s *Segment) Len() int { return s.PayloadLen }

// WireSize reports the on-the-wire size in bytes: IPv4 header, TCP
// header with options (padded to a 4-byte boundary), and payload.
// Link-level queueing and transmission delay are computed from this.
func (s *Segment) WireSize() int {
	return ipv4HeaderLen + tcpBaseHeaderLen + s.optionsWireLen() + s.PayloadLen
}

// End reports the sequence number after this segment's data, counting
// SYN and FIN as one unit each, per TCP sequence-space rules.
func (s *Segment) End() uint32 {
	n := uint32(s.PayloadLen)
	if s.Flags.Has(SYN) {
		n++
	}
	if s.Flags.Has(FIN) {
		n++
	}
	return s.Seq + n
}

// Option looks up the first option of the given kind, or nil.
func (s *Segment) Option(kind OptionKind) Option {
	for _, o := range s.Options {
		if o.Kind() == kind {
			return o
		}
	}
	return nil
}

// MPTCP looks up the first MPTCP option with the given subtype, or nil.
func (s *Segment) MPTCP(sub MPTCPSubtype) Option {
	for _, o := range s.Options {
		if m, ok := o.(mptcpOption); ok && m.Subtype() == sub {
			return o
		}
	}
	return nil
}

// AddOption appends an option and returns the segment for chaining.
// Value options box on append; the hot-path options have allocation-
// free variants (AddDSS, AddSACK) that use the segment's inline slots.
func (s *Segment) AddOption(o Option) *Segment {
	s.Options = append(s.Options, o)
	return s
}

// AddDSS attaches a DSS option using the segment's inline slot, so the
// per-data-segment/per-ACK path does not allocate.
func (s *Segment) AddDSS(d DSSOption) *Segment {
	s.dss = d
	s.Options = append(s.Options, &s.dss)
	return s
}

// AddSACK attaches a SACK option, copying blocks into the segment's
// inline array (at most maxSACKBlocks are kept).
func (s *Segment) AddSACK(blocks []SACKBlock) *Segment {
	n := copy(s.sackArr[:], blocks)
	s.sack = SACKOption{Blocks: s.sackArr[:n]}
	s.Options = append(s.Options, &s.sack)
	return s
}

// GetDSS returns the segment's DSS option, whether attached inline by
// AddDSS or decoded from the wire as a value.
func (s *Segment) GetDSS() (DSSOption, bool) {
	for _, o := range s.Options {
		switch d := o.(type) {
		case *DSSOption:
			return *d, true
		case DSSOption:
			return d, true
		}
	}
	return DSSOption{}, false
}

// GetSACK returns the segment's SACK blocks, or nil. The slice may
// point into the segment's inline storage: callers must not retain it
// past the segment's lifetime.
func (s *Segment) GetSACK() []SACKBlock {
	for _, o := range s.Options {
		switch v := o.(type) {
		case *SACKOption:
			return v.Blocks
		case SACKOption:
			return v.Blocks
		}
	}
	return nil
}

func (s *Segment) optionsWireLen() int {
	// Same greedy budget scan as encodeOptions, without building the
	// packed subset.
	n := 0
	for _, o := range s.Options {
		w := o.wireLen()
		if n+w > maxOptionBytes {
			continue
		}
		n += w
	}
	// Pad to 32-bit boundary with NOPs as real stacks do.
	return (n + 3) &^ 3
}

// String renders a compact one-line summary for logs and tests.
func (s *Segment) String() string {
	extra := ""
	if s.Retransmit {
		extra = " RTX"
	}
	for _, o := range s.Options {
		if m, ok := o.(mptcpOption); ok {
			extra += " " + m.Subtype().String()
		}
	}
	return fmt.Sprintf("%v>%v %s seq=%d ack=%d len=%d win=%d%s",
		s.Src, s.Dst, s.Flags, s.Seq, s.Ack, s.PayloadLen, s.Window, extra)
}

// Clone returns a deep copy of the segment (options included). The
// netem layer clones segments at fan-out points such as capture taps so
// later mutation — including release back to a Pool — cannot corrupt a
// recorded trace. Interior option pointers are re-pointed at the
// clone's own inline slots.
func (s *Segment) Clone() *Segment {
	c := &Segment{}
	*c = *s
	c.pooled = false
	c.Options = nil
	c.sack.Blocks = nil
	if len(s.Options) > 0 {
		c.Options = make([]Option, len(s.Options))
		for i, o := range s.Options {
			switch v := o.(type) {
			case *DSSOption:
				c.dss = *v
				c.Options[i] = &c.dss
			case *SACKOption:
				n := copy(c.sackArr[:], v.Blocks)
				c.sack = SACKOption{Blocks: c.sackArr[:n]}
				c.Options[i] = &c.sack
			default:
				c.Options[i] = o
			}
		}
	}
	return c
}

// SeqLT reports a < b in 32-bit TCP sequence arithmetic.
func SeqLT(a, b uint32) bool { return int32(a-b) < 0 }

// SeqLEQ reports a <= b in sequence arithmetic.
func SeqLEQ(a, b uint32) bool { return int32(a-b) <= 0 }

// SeqGT reports a > b in sequence arithmetic.
func SeqGT(a, b uint32) bool { return int32(a-b) > 0 }

// SeqGEQ reports a >= b in sequence arithmetic.
func SeqGEQ(a, b uint32) bool { return int32(a-b) >= 0 }

// SeqMax returns the later of a and b in sequence arithmetic.
func SeqMax(a, b uint32) uint32 {
	if SeqGT(a, b) {
		return a
	}
	return b
}

// SeqMin returns the earlier of a and b in sequence arithmetic.
func SeqMin(a, b uint32) uint32 {
	if SeqLT(a, b) {
		return a
	}
	return b
}

// DSeqLT reports a < b in 64-bit MPTCP data-sequence arithmetic.
func DSeqLT(a, b uint64) bool { return int64(a-b) < 0 }

// DSeqGEQ reports a >= b in data-sequence arithmetic.
func DSeqGEQ(a, b uint64) bool { return int64(a-b) >= 0 }
