package seg

import (
	"encoding/binary"
	"fmt"
)

// Header sizes on the wire.
const (
	ipv4HeaderLen    = 20
	tcpBaseHeaderLen = 20
	protoTCP         = 6
)

// Encode renders the segment as real IPv4+TCP wire bytes, with valid
// lengths and checksums. Payload bytes are synthesized (a repeating
// counter pattern) since the simulator tracks only payload length.
func Encode(s *Segment) []byte {
	return AppendEncode(nil, s)
}

// AppendEncode appends the segment's wire bytes to dst and returns the
// extended slice. Reusing one scratch buffer across calls makes
// per-packet capture (pcap taps) allocation-free in steady state.
func AppendEncode(dst []byte, s *Segment) []byte {
	optLen := s.optionsWireLen()
	tcpLen := tcpBaseHeaderLen + optLen + s.PayloadLen
	total := ipv4HeaderLen + tcpLen
	base := len(dst)
	if cap(dst)-base < total {
		grown := make([]byte, base, base+total)
		copy(grown, dst)
		dst = grown
	}

	// IPv4 header.
	dst = append(dst, 0x45, 0) // version 4, IHL 5, DSCP 0
	dst = binary.BigEndian.AppendUint16(dst, uint16(total))
	dst = append(dst, 0, 0, 0x40, 0) // ID 0, flags DF, frag 0
	dst = append(dst, 64, protoTCP)  // TTL, protocol
	dst = append(dst, 0, 0)          // checksum placeholder
	dst = append(dst, s.Src.IP[:]...)
	dst = append(dst, s.Dst.IP[:]...)
	csum := ipChecksum(dst[base : base+ipv4HeaderLen])
	binary.BigEndian.PutUint16(dst[base+10:], csum)

	// TCP header.
	tcpStart := len(dst)
	dst = binary.BigEndian.AppendUint16(dst, s.Src.Port)
	dst = binary.BigEndian.AppendUint16(dst, s.Dst.Port)
	dst = binary.BigEndian.AppendUint32(dst, s.Seq)
	dst = binary.BigEndian.AppendUint32(dst, s.Ack)
	dataOff := byte((tcpBaseHeaderLen + optLen) / 4)
	dst = append(dst, dataOff<<4, byte(s.Flags))
	win := s.Window
	if win > 0xFFFF {
		win = 0xFFFF // wire field is 16 bits; scaling is a receiver concern
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(win))
	dst = append(dst, 0, 0, 0, 0) // checksum + urgent placeholder
	dst = encodeOptions(dst, s.Options)

	// Synthesized payload.
	for i := 0; i < s.PayloadLen; i++ {
		dst = append(dst, byte(s.Seq)+byte(i))
	}

	tcsum := tcpChecksum(s.Src.IP, s.Dst.IP, dst[tcpStart:])
	binary.BigEndian.PutUint16(dst[tcpStart+16:], tcsum)
	return dst
}

// Decode parses wire bytes produced by Encode (or any IPv4/TCP frame)
// back into a Segment. Payload contents are discarded; only the length
// is retained.
func Decode(b []byte) (*Segment, error) {
	if len(b) < ipv4HeaderLen {
		return nil, fmt.Errorf("seg: short IPv4 header (%d bytes)", len(b))
	}
	if b[0]>>4 != 4 {
		return nil, fmt.Errorf("seg: not IPv4 (version %d)", b[0]>>4)
	}
	ihl := int(b[0]&0xF) * 4
	if ihl < ipv4HeaderLen || len(b) < ihl {
		return nil, fmt.Errorf("seg: bad IHL %d", ihl)
	}
	total := int(binary.BigEndian.Uint16(b[2:]))
	if total > len(b) {
		return nil, fmt.Errorf("seg: IPv4 total length %d exceeds capture %d", total, len(b))
	}
	if total < ihl {
		return nil, fmt.Errorf("seg: IPv4 total length %d shorter than header %d", total, ihl)
	}
	if b[9] != protoTCP {
		return nil, fmt.Errorf("seg: not TCP (protocol %d)", b[9])
	}
	var s Segment
	copy(s.Src.IP[:], b[12:16])
	copy(s.Dst.IP[:], b[16:20])

	t := b[ihl:total]
	if len(t) < tcpBaseHeaderLen {
		return nil, fmt.Errorf("seg: short TCP header (%d bytes)", len(t))
	}
	s.Src.Port = binary.BigEndian.Uint16(t[0:])
	s.Dst.Port = binary.BigEndian.Uint16(t[2:])
	s.Seq = binary.BigEndian.Uint32(t[4:])
	s.Ack = binary.BigEndian.Uint32(t[8:])
	dataOff := int(t[12]>>4) * 4
	if dataOff < tcpBaseHeaderLen || dataOff > len(t) {
		return nil, fmt.Errorf("seg: bad TCP data offset %d", dataOff)
	}
	s.Flags = Flags(t[13])
	s.Window = uint32(binary.BigEndian.Uint16(t[14:]))
	opts, err := decodeOptions(t[tcpBaseHeaderLen:dataOff])
	if err != nil {
		return nil, err
	}
	s.Options = opts
	s.PayloadLen = len(t) - dataOff
	return &s, nil
}

// ipChecksum computes the standard Internet checksum over the header.
func ipChecksum(h []byte) uint16 {
	return onesComplement(sum16(h, 0))
}

// tcpChecksum computes the TCP checksum including the IPv4 pseudo
// header.
func tcpChecksum(src, dst [4]byte, tcp []byte) uint16 {
	var pseudo [12]byte
	copy(pseudo[0:], src[:])
	copy(pseudo[4:], dst[:])
	pseudo[9] = protoTCP
	binary.BigEndian.PutUint16(pseudo[10:], uint16(len(tcp)))
	s := sum16(pseudo[:], 0)
	s = sum16(tcp, s)
	return onesComplement(s)
}

func sum16(b []byte, acc uint32) uint32 {
	for len(b) >= 2 {
		acc += uint32(binary.BigEndian.Uint16(b))
		b = b[2:]
	}
	if len(b) == 1 {
		acc += uint32(b[0]) << 8
	}
	return acc
}

func onesComplement(s uint32) uint16 {
	for s>>16 != 0 {
		s = (s & 0xFFFF) + s>>16
	}
	return ^uint16(s)
}

// VerifyChecksums reports whether the IPv4 and TCP checksums in a wire
// frame are valid. Used by tests and the trace analyzer's sanity pass.
func VerifyChecksums(b []byte) error {
	if len(b) < ipv4HeaderLen {
		return fmt.Errorf("seg: frame too short")
	}
	ihl := int(b[0]&0xF) * 4
	if ihl > len(b) {
		return fmt.Errorf("seg: bad IHL")
	}
	if onesComplement(sum16(b[:ihl], 0)) != 0 {
		return fmt.Errorf("seg: bad IPv4 checksum")
	}
	total := int(binary.BigEndian.Uint16(b[2:]))
	if total > len(b) {
		return fmt.Errorf("seg: truncated frame")
	}
	var src, dst [4]byte
	copy(src[:], b[12:16])
	copy(dst[:], b[16:20])
	tcp := b[ihl:total]
	var pseudo [12]byte
	copy(pseudo[0:], src[:])
	copy(pseudo[4:], dst[:])
	pseudo[9] = protoTCP
	binary.BigEndian.PutUint16(pseudo[10:], uint16(len(tcp)))
	s := sum16(pseudo[:], 0)
	s = sum16(tcp, s)
	if onesComplement(s) != 0 {
		return fmt.Errorf("seg: bad TCP checksum")
	}
	return nil
}
