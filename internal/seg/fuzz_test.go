package seg

import (
	"bytes"
	"testing"
)

// FuzzSegDecode throws arbitrary bytes at the wire decoder. Frames the
// decoder accepts must re-encode to a fixpoint: Encode(Decode(b))
// decodes again to the same segment and encodes to identical bytes,
// with valid checksums throughout. This pins the codec pair against
// asymmetries (an option decoded differently than it encodes corrupts
// every pcap the tracer writes).
func FuzzSegDecode(f *testing.F) {
	seed := func(s *Segment) {
		f.Add(Encode(s))
	}
	seed(&Segment{
		Src: MakeAddr("10.0.0.2", 40000), Dst: MakeAddr("192.168.1.1", 8080),
		Seq: 1000, Flags: SYN, Window: 65535,
	})
	syn := &Segment{
		Src: MakeAddr("10.0.0.2", 40000), Dst: MakeAddr("192.168.1.1", 8080),
		Seq: 1, Ack: 0, Flags: SYN, Window: 14600,
	}
	syn.AddOption(MSSOption{MSS: 1460})
	syn.AddOption(WindowScaleOption{Shift: 7})
	syn.AddOption(SACKPermittedOption{})
	syn.AddOption(MPCapableOption{Key: 0xDEADBEEF})
	seed(syn)
	data := &Segment{
		Src: MakeAddr("192.168.1.1", 8080), Dst: MakeAddr("10.0.0.2", 40000),
		Seq: 5000, Ack: 2, Flags: ACK | PSH, Window: 1000, PayloadLen: 512,
	}
	data.AddDSS(DSSOption{HasAck: true, DataAck: 77, HasMap: true, DataSeq: 100, SubflowSeq: 4999, Length: 512})
	seed(data)
	sack := &Segment{
		Src: MakeAddr("10.0.0.2", 40000), Dst: MakeAddr("192.168.1.1", 8080),
		Seq: 2, Ack: 5512, Flags: ACK, Window: 8192,
	}
	sack.AddSACK([]SACKBlock{{Start: 6000, End: 6512}, {Start: 7000, End: 7512}})
	seed(sack)

	f.Fuzz(func(t *testing.T, b []byte) {
		s, err := Decode(b)
		if err != nil {
			return // rejected input: fine, as long as we didn't panic
		}
		w := Encode(s)
		if err := VerifyChecksums(w); err != nil {
			t.Fatalf("re-encoded frame has bad checksums: %v", err)
		}
		s2, err := Decode(w)
		if err != nil {
			t.Fatalf("re-encoded frame does not decode: %v", err)
		}
		if s2.Src != s.Src || s2.Dst != s.Dst || s2.Seq != s.Seq || s2.Ack != s.Ack ||
			s2.Flags != s.Flags || s2.Window != s.Window || s2.PayloadLen != s.PayloadLen {
			t.Fatalf("header fields drifted: %+v vs %+v", s, s2)
		}
		if w2 := Encode(s2); !bytes.Equal(w, w2) {
			t.Fatal("Encode(Decode(Encode(s))) is not a fixpoint")
		}
	})
}
