package seg

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func TestSeqArithmetic(t *testing.T) {
	cases := []struct {
		a, b uint32
		lt   bool
	}{
		{1, 2, true},
		{2, 1, false},
		{5, 5, false},
		{math.MaxUint32, 0, true},       // wraparound
		{0, math.MaxUint32, false},      // wraparound
		{math.MaxUint32 - 10, 10, true}, // across the wrap
	}
	for _, c := range cases {
		if got := SeqLT(c.a, c.b); got != c.lt {
			t.Errorf("SeqLT(%d,%d) = %v, want %v", c.a, c.b, got, c.lt)
		}
	}
	if !SeqLEQ(7, 7) || !SeqGEQ(7, 7) {
		t.Error("SeqLEQ/SeqGEQ not reflexive")
	}
	if SeqMax(10, 20) != 20 || SeqMin(10, 20) != 10 {
		t.Error("SeqMax/SeqMin wrong")
	}
	if SeqMax(math.MaxUint32, 5) != 5 {
		t.Error("SeqMax across wrap wrong")
	}
}

// SeqLT is a strict total order on windows < 2^31.
func TestSeqOrderProperty(t *testing.T) {
	f := func(base uint32, d1, d2 uint16) bool {
		a := base + uint32(d1)
		b := base + uint32(d2)
		switch {
		case d1 < d2:
			return SeqLT(a, b)
		case d1 > d2:
			return SeqGT(a, b)
		default:
			return !SeqLT(a, b) && !SeqGT(a, b)
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDSeqArithmetic(t *testing.T) {
	if !DSeqLT(1, 2) || DSeqLT(2, 1) {
		t.Error("DSeqLT wrong")
	}
	if !DSeqGEQ(5, 5) {
		t.Error("DSeqGEQ not reflexive")
	}
}

func TestMakeAddr(t *testing.T) {
	a := MakeAddr("10.1.2.3", 8080)
	if a.String() != "10.1.2.3:8080" {
		t.Errorf("String = %q", a.String())
	}
	if a.IPString() != "10.1.2.3" {
		t.Errorf("IPString = %q", a.IPString())
	}
	defer func() {
		if recover() == nil {
			t.Error("bad literal did not panic")
		}
	}()
	MakeAddr("not-an-ip", 1)
}

func TestFlagsString(t *testing.T) {
	if got := (SYN | ACK).String(); got != "SYN|ACK" {
		t.Errorf("Flags = %q", got)
	}
	if got := Flags(0).String(); got != "-" {
		t.Errorf("empty Flags = %q", got)
	}
}

func TestSegmentEnd(t *testing.T) {
	s := &Segment{Seq: 100, PayloadLen: 50}
	if s.End() != 150 {
		t.Errorf("End = %d", s.End())
	}
	s.Flags = SYN
	if s.End() != 151 {
		t.Errorf("End with SYN = %d", s.End())
	}
	s.Flags = SYN | FIN
	if s.End() != 152 {
		t.Errorf("End with SYN|FIN = %d", s.End())
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := &Segment{Seq: 1, Options: []Option{MSSOption{MSS: 1460}}}
	c := s.Clone()
	c.Options[0] = MSSOption{MSS: 9000}
	if s.Options[0].(MSSOption).MSS != 1460 {
		t.Error("Clone shares option storage")
	}
}

// realistic option stacks (each within the 40-byte TCP option budget).
var optionStacks = [][]Option{
	{ // MPTCP SYN
		MSSOption{MSS: 1460},
		WindowScaleOption{Shift: 8},
		SACKPermittedOption{},
		MPCapableOption{Key: 0xDEADBEEFCAFEF00D},
	},
	{ // join SYN
		MSSOption{MSS: 1400},
		WindowScaleOption{Shift: 7},
		SACKPermittedOption{},
		MPJoinOption{Token: 0xABCD1234, Nonce: 42, AddrID: 3},
	},
	{ // data segment with full DSS
		DSSOption{HasMap: true, HasAck: true, DataSeq: 1 << 40, SubflowSeq: 77, Length: 1460, DataAck: 999, DataFin: true},
	},
	{ // pure ACK with SACK blocks and a data-level ACK
		SACKOption{Blocks: []SACKBlock{{Start: 100, End: 200}, {Start: 400, End: 480}}},
		DSSOption{HasAck: true, DataAck: 4242},
	},
	{ // address advertisement riding on an ACK
		DSSOption{HasAck: true, DataAck: 1},
		AddAddrOption{AddrID: 9, Addr: MakeAddr("172.16.0.2", 443)},
	},
	{ // timestamps
		TimestampsOption{Val: 12345, Ecr: 678},
	},
	{ // address withdrawal riding on an ACK
		DSSOption{HasAck: true, DataAck: 7},
		RemoveAddrOption{AddrID: 2, Addr: MakeAddr("10.0.0.2", 40000)},
	},
	{ // connection-level abort
		FastCloseOption{Key: 0x0123456789ABCDEF},
	},
	{ // backup-flagged join
		MPJoinOption{Token: 0xFEEDF00D, Nonce: 7, AddrID: 1, Backup: true},
	},
}

func TestWireRoundTrip(t *testing.T) {
	for i, opts := range optionStacks {
		s := &Segment{
			Src:        MakeAddr("10.0.0.2", 40000),
			Dst:        MakeAddr("192.168.1.1", 8080),
			Seq:        0xDEAD0001,
			Ack:        0xBEEF0002,
			Flags:      ACK | PSH,
			Window:     31000,
			PayloadLen: 777,
			Options:    opts,
		}
		b := Encode(s)
		if err := VerifyChecksums(b); err != nil {
			t.Fatalf("stack %d: checksums: %v", i, err)
		}
		if len(b) != s.WireSize() {
			t.Errorf("stack %d: encoded %d bytes, WireSize says %d", i, len(b), s.WireSize())
		}
		d, err := Decode(b)
		if err != nil {
			t.Fatalf("stack %d: decode: %v", i, err)
		}
		if d.Src != s.Src || d.Dst != s.Dst || d.Seq != s.Seq || d.Ack != s.Ack ||
			d.Flags != s.Flags || d.PayloadLen != s.PayloadLen {
			t.Errorf("stack %d: header mismatch: got %v want %v", i, d, s)
		}
		if !reflect.DeepEqual(d.Options, s.Options) {
			t.Errorf("stack %d: options mismatch:\n got  %#v\n want %#v", i, d.Options, s.Options)
		}
	}
}

// Options beyond the 40-byte TCP budget are dropped, never corrupting
// the frame.
func TestOptionBudgetOverflow(t *testing.T) {
	s := &Segment{
		Src: MakeAddr("1.1.1.1", 1), Dst: MakeAddr("2.2.2.2", 2),
		Flags: ACK, PayloadLen: 10,
		Options: []Option{
			DSSOption{HasMap: true, HasAck: true, Length: 10},       // 28 bytes
			SACKOption{Blocks: []SACKBlock{{1, 2}, {3, 4}, {5, 6}}}, // 26: overflows
			AddAddrOption{AddrID: 1, Addr: MakeAddr("3.3.3.3", 3)},  // 10: still fits
		},
	}
	b := Encode(s)
	if err := VerifyChecksums(b); err != nil {
		t.Fatalf("checksums: %v", err)
	}
	d, err := Decode(b)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if d.Option(KindSACK) != nil {
		t.Error("over-budget SACK survived")
	}
	if d.MPTCP(SubDSS) == nil || d.MPTCP(SubAddAddr) == nil {
		t.Error("fitting options were dropped")
	}
}

// Any segment built from random fields round-trips through the wire.
func TestWireRoundTripProperty(t *testing.T) {
	f := func(seq, ack uint32, flagBits uint8, payload uint16, win uint16,
		key uint64, dseq uint64) bool {
		flags := Flags(flagBits) & (SYN | ACK | FIN | RST | PSH)
		s := &Segment{
			Src:        MakeAddr("10.0.0.1", 1234),
			Dst:        MakeAddr("10.0.0.2", 80),
			Seq:        seq,
			Ack:        ack,
			Flags:      flags,
			Window:     uint32(win),
			PayloadLen: int(payload % 1461),
			Options: []Option{
				MPCapableOption{Key: key},
				DSSOption{HasMap: true, HasAck: true, DataSeq: dseq, SubflowSeq: seq, Length: uint16(payload % 1461), DataAck: dseq >> 1},
			},
			// (MP_CAPABLE 12 + DSS 28 = 40 bytes: exactly the budget.)
		}
		b := Encode(s)
		if VerifyChecksums(b) != nil {
			return false
		}
		d, err := Decode(b)
		if err != nil {
			return false
		}
		return d.Seq == s.Seq && d.Ack == s.Ack && d.Flags == s.Flags &&
			d.PayloadLen == s.PayloadLen && reflect.DeepEqual(d.Options, s.Options)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{0x45},
		make([]byte, 19),
		append([]byte{0x65}, make([]byte, 30)...), // IPv6 version nibble
	}
	for i, b := range cases {
		if _, err := Decode(b); err == nil {
			t.Errorf("case %d: decode accepted garbage", i)
		}
	}
	// Non-TCP protocol.
	s := &Segment{Src: MakeAddr("1.2.3.4", 1), Dst: MakeAddr("5.6.7.8", 2)}
	b := Encode(s)
	b[9] = 17 // UDP
	if _, err := Decode(b); err == nil {
		t.Error("decode accepted UDP frame")
	}
}

func TestCorruptedChecksumDetected(t *testing.T) {
	s := &Segment{
		Src: MakeAddr("10.0.0.1", 5), Dst: MakeAddr("10.0.0.2", 6),
		PayloadLen: 100, Flags: ACK,
	}
	b := Encode(s)
	b[len(b)-1] ^= 0xFF
	if VerifyChecksums(b) == nil {
		t.Error("flipped payload byte not caught by TCP checksum")
	}
}

func TestOptionLookup(t *testing.T) {
	s := &Segment{}
	s.AddOption(MSSOption{MSS: 1400})
	s.AddOption(DSSOption{HasAck: true, DataAck: 5})
	if s.Option(KindMSS) == nil {
		t.Error("MSS lookup failed")
	}
	if s.Option(KindSACK) != nil {
		t.Error("found absent option")
	}
	if s.MPTCP(SubDSS) == nil {
		t.Error("DSS lookup failed")
	}
	if s.MPTCP(SubMPJoin) != nil {
		t.Error("found absent MPTCP subtype")
	}
}

func TestDecodeOptionsIgnoresUnknownKinds(t *testing.T) {
	// kind 254 (experimental), length 4, two payload bytes, then MSS.
	raw := []byte{254, 4, 0, 0, byte(KindMSS), 4, 5, 0xB4}
	opts, err := decodeOptions(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(opts) != 1 || opts[0].Kind() != KindMSS {
		t.Errorf("opts = %#v", opts)
	}
}

func TestDecodeOptionsTruncated(t *testing.T) {
	if _, err := decodeOptions([]byte{byte(KindMSS), 10, 1}); err == nil {
		t.Error("accepted option longer than buffer")
	}
	if _, err := decodeOptions([]byte{byte(KindMSS)}); err == nil {
		t.Error("accepted truncated option header")
	}
}
