package seg

import (
	"encoding/binary"
	"fmt"
)

// OptionKind is a TCP option kind byte.
type OptionKind uint8

// TCP option kinds used by mptcplab (IANA assignments).
const (
	KindEOL           OptionKind = 0
	KindNOP           OptionKind = 1
	KindMSS           OptionKind = 2
	KindWindowScale   OptionKind = 3
	KindSACKPermitted OptionKind = 4
	KindSACK          OptionKind = 5
	KindTimestamps    OptionKind = 8
	KindMPTCP         OptionKind = 30
)

// MPTCPSubtype selects among the MPTCP option sub-messages.
type MPTCPSubtype uint8

// MPTCP option subtypes (RFC 6824 values).
const (
	SubMPCapable  MPTCPSubtype = 0x0
	SubMPJoin     MPTCPSubtype = 0x1
	SubDSS        MPTCPSubtype = 0x2
	SubAddAddr    MPTCPSubtype = 0x3
	SubRemoveAddr MPTCPSubtype = 0x4
	SubFastClose  MPTCPSubtype = 0x7
)

// String names the subtype.
func (s MPTCPSubtype) String() string {
	switch s {
	case SubMPCapable:
		return "MP_CAPABLE"
	case SubMPJoin:
		return "MP_JOIN"
	case SubDSS:
		return "DSS"
	case SubAddAddr:
		return "ADD_ADDR"
	case SubRemoveAddr:
		return "REMOVE_ADDR"
	case SubFastClose:
		return "MP_FASTCLOSE"
	default:
		return fmt.Sprintf("MPTCP(0x%x)", uint8(s))
	}
}

// Option is one TCP option. Implementations are value types; a Segment
// carries a slice of them.
type Option interface {
	Kind() OptionKind
	// wireLen is the encoded length including kind and length bytes.
	wireLen() int
	// encode appends the option's wire bytes to dst.
	encode(dst []byte) []byte
}

// mptcpOption is implemented by the MPTCP option subtypes.
type mptcpOption interface {
	Option
	Subtype() MPTCPSubtype
}

// --- Plain TCP options ---

// MSSOption advertises the maximum segment size on a SYN.
type MSSOption struct{ MSS uint16 }

func (MSSOption) Kind() OptionKind { return KindMSS }
func (MSSOption) wireLen() int     { return 4 }
func (o MSSOption) encode(dst []byte) []byte {
	return append(dst, byte(KindMSS), 4, byte(o.MSS>>8), byte(o.MSS))
}

// WindowScaleOption advertises a window shift count on a SYN.
type WindowScaleOption struct{ Shift uint8 }

func (WindowScaleOption) Kind() OptionKind { return KindWindowScale }
func (WindowScaleOption) wireLen() int     { return 3 }
func (o WindowScaleOption) encode(dst []byte) []byte {
	return append(dst, byte(KindWindowScale), 3, o.Shift)
}

// SACKPermittedOption signals SACK support on a SYN.
type SACKPermittedOption struct{}

func (SACKPermittedOption) Kind() OptionKind { return KindSACKPermitted }
func (SACKPermittedOption) wireLen() int     { return 2 }
func (o SACKPermittedOption) encode(dst []byte) []byte {
	return append(dst, byte(KindSACKPermitted), 2)
}

// SACKBlock is one [Start,End) selectively acknowledged range.
type SACKBlock struct{ Start, End uint32 }

// Contains reports whether sequence s lies within the block.
func (b SACKBlock) Contains(s uint32) bool {
	return SeqLEQ(b.Start, s) && SeqLT(s, b.End)
}

// SACKOption carries up to four SACK blocks on an ACK.
type SACKOption struct{ Blocks []SACKBlock }

func (SACKOption) Kind() OptionKind { return KindSACK }
func (o SACKOption) wireLen() int   { return 2 + 8*len(o.Blocks) }
func (o SACKOption) encode(dst []byte) []byte {
	dst = append(dst, byte(KindSACK), byte(2+8*len(o.Blocks)))
	for _, b := range o.Blocks {
		dst = binary.BigEndian.AppendUint32(dst, b.Start)
		dst = binary.BigEndian.AppendUint32(dst, b.End)
	}
	return dst
}

// TimestampsOption carries TSval/TSecr (RFC 7323).
type TimestampsOption struct{ Val, Ecr uint32 }

func (TimestampsOption) Kind() OptionKind { return KindTimestamps }
func (TimestampsOption) wireLen() int     { return 10 }
func (o TimestampsOption) encode(dst []byte) []byte {
	dst = append(dst, byte(KindTimestamps), 10)
	dst = binary.BigEndian.AppendUint32(dst, o.Val)
	return binary.BigEndian.AppendUint32(dst, o.Ecr)
}

// --- MPTCP option subtypes ---

// MPCapableOption starts an MPTCP connection on the first subflow's
// SYN / SYN-ACK, carrying each side's 64-bit key.
type MPCapableOption struct {
	Key uint64
}

func (MPCapableOption) Kind() OptionKind      { return KindMPTCP }
func (MPCapableOption) Subtype() MPTCPSubtype { return SubMPCapable }
func (MPCapableOption) wireLen() int          { return 12 }
func (o MPCapableOption) encode(d []byte) []byte {
	d = append(d, byte(KindMPTCP), 12, byte(SubMPCapable)<<4, 0x01 /* checksum off, ver 1 flags */)
	return binary.BigEndian.AppendUint64(d, o.Key)
}

// MPJoinOption attaches a new subflow to an existing connection. Token
// is the receiver's token (a hash of its key); AddrID identifies the
// advertised address being joined from/to; Backup is RFC 6824's B bit,
// asking the peer to use this subflow only when regular paths fail.
type MPJoinOption struct {
	Token  uint32
	Nonce  uint32
	AddrID uint8
	Backup bool
}

func (MPJoinOption) Kind() OptionKind      { return KindMPTCP }
func (MPJoinOption) Subtype() MPTCPSubtype { return SubMPJoin }
func (MPJoinOption) wireLen() int          { return 12 }
func (o MPJoinOption) encode(d []byte) []byte {
	b := byte(SubMPJoin) << 4
	if o.Backup {
		b |= 0x1
	}
	d = append(d, byte(KindMPTCP), 12, b, o.AddrID)
	d = binary.BigEndian.AppendUint32(d, o.Token)
	return binary.BigEndian.AppendUint32(d, o.Nonce)
}

// DSSOption is the MPTCP data-sequence-signal mapping: it binds a run
// of subflow sequence space to connection-level (data) sequence space
// and acknowledges connection-level data.
type DSSOption struct {
	DataSeq    uint64 // data sequence number of the first payload byte
	SubflowSeq uint32 // corresponding subflow-relative sequence number
	Length     uint16 // bytes covered by this mapping
	DataAck    uint64 // cumulative data-level ACK
	HasMap     bool   // mapping fields valid
	HasAck     bool   // DataAck valid
	DataFin    bool   // connection-level FIN
}

func (DSSOption) Kind() OptionKind      { return KindMPTCP }
func (DSSOption) Subtype() MPTCPSubtype { return SubDSS }
func (o DSSOption) wireLen() int {
	n := 4
	if o.HasAck {
		n += 8
	}
	if o.HasMap {
		n += 8 + 4 + 2 + 2 // dseq, sseq, len, checksum(placeholder)
	}
	return n
}
func (o DSSOption) encode(d []byte) []byte {
	flags := byte(0)
	if o.HasAck {
		flags |= 0x03 // data ACK present, 8 octets
	}
	if o.HasMap {
		flags |= 0x0C // DSN present, 8 octets
	}
	if o.DataFin {
		flags |= 0x10
	}
	d = append(d, byte(KindMPTCP), byte(o.wireLen()), byte(SubDSS)<<4, flags)
	if o.HasAck {
		d = binary.BigEndian.AppendUint64(d, o.DataAck)
	}
	if o.HasMap {
		d = binary.BigEndian.AppendUint64(d, o.DataSeq)
		d = binary.BigEndian.AppendUint32(d, o.SubflowSeq)
		d = binary.BigEndian.AppendUint16(d, o.Length)
		d = append(d, 0, 0) // checksum not used (negotiated off)
	}
	return d
}

// AddAddrOption advertises an additional address of the sender.
type AddAddrOption struct {
	AddrID uint8
	Addr   Addr
}

func (AddAddrOption) Kind() OptionKind      { return KindMPTCP }
func (AddAddrOption) Subtype() MPTCPSubtype { return SubAddAddr }
func (AddAddrOption) wireLen() int          { return 10 }
func (o AddAddrOption) encode(d []byte) []byte {
	d = append(d, byte(KindMPTCP), 10, byte(SubAddAddr)<<4|0x4 /* IPv4 */, o.AddrID)
	d = append(d, o.Addr.IP[:]...)
	return binary.BigEndian.AppendUint16(d, o.Addr.Port)
}

// maxOptionBytes is the TCP header option budget: the 4-bit data
// offset allows at most a 60-byte header, i.e. 40 bytes of options.
const maxOptionBytes = 40

// RemoveAddrOption withdraws a previously advertised (or implicit)
// address: the peer should close subflows using it (RFC 6824 §3.4.2).
// The address itself rides along so simulated peers — which never saw
// an explicit AddrID for implicit addresses — can match subflows.
type RemoveAddrOption struct {
	AddrID uint8
	Addr   Addr
}

func (RemoveAddrOption) Kind() OptionKind      { return KindMPTCP }
func (RemoveAddrOption) Subtype() MPTCPSubtype { return SubRemoveAddr }
func (RemoveAddrOption) wireLen() int          { return 10 }
func (o RemoveAddrOption) encode(d []byte) []byte {
	d = append(d, byte(KindMPTCP), 10, byte(SubRemoveAddr)<<4, o.AddrID)
	d = append(d, o.Addr.IP[:]...)
	return binary.BigEndian.AppendUint16(d, o.Addr.Port)
}

// FastCloseOption aborts the whole MPTCP connection at once (RFC 6824
// §3.5), carrying the peer's key as authentication.
type FastCloseOption struct {
	Key uint64
}

func (FastCloseOption) Kind() OptionKind      { return KindMPTCP }
func (FastCloseOption) Subtype() MPTCPSubtype { return SubFastClose }
func (FastCloseOption) wireLen() int          { return 12 }
func (o FastCloseOption) encode(d []byte) []byte {
	d = append(d, byte(KindMPTCP), 12, byte(SubFastClose)<<4, 0)
	return binary.BigEndian.AppendUint64(d, o.Key)
}

// encodeOptions appends the options that fit the 40-byte TCP header
// budget — greedily skipping options that would overflow, the same
// space rationing real MPTCP stacks perform when SACK blocks and DSS
// compete for header room — plus NOP padding to a 32-bit boundary.
// The budget scan must stay in lockstep with Segment.optionsWireLen.
func encodeOptions(dst []byte, opts []Option) []byte {
	start := len(dst)
	n := 0
	for _, o := range opts {
		w := o.wireLen()
		if n+w > maxOptionBytes {
			continue
		}
		n += w
		dst = o.encode(dst)
	}
	for (len(dst)-start)%4 != 0 {
		dst = append(dst, byte(KindNOP))
	}
	return dst
}

// decodeOptions parses the options region of a TCP header.
func decodeOptions(b []byte) ([]Option, error) {
	var opts []Option
	for len(b) > 0 {
		kind := OptionKind(b[0])
		switch kind {
		case KindEOL:
			return opts, nil
		case KindNOP:
			b = b[1:]
			continue
		}
		if len(b) < 2 {
			return nil, fmt.Errorf("seg: truncated option kind %d", kind)
		}
		olen := int(b[1])
		if olen < 2 || olen > len(b) {
			return nil, fmt.Errorf("seg: bad option length %d for kind %d", olen, kind)
		}
		body := b[:olen]
		o, err := decodeOption(kind, body)
		if err != nil {
			return nil, err
		}
		if o != nil {
			opts = append(opts, o)
		}
		b = b[olen:]
	}
	return opts, nil
}

func decodeOption(kind OptionKind, b []byte) (Option, error) {
	switch kind {
	case KindMSS:
		if len(b) != 4 {
			return nil, fmt.Errorf("seg: MSS option length %d", len(b))
		}
		return MSSOption{MSS: binary.BigEndian.Uint16(b[2:])}, nil
	case KindWindowScale:
		if len(b) != 3 {
			return nil, fmt.Errorf("seg: wscale option length %d", len(b))
		}
		return WindowScaleOption{Shift: b[2]}, nil
	case KindSACKPermitted:
		return SACKPermittedOption{}, nil
	case KindSACK:
		if (len(b)-2)%8 != 0 {
			return nil, fmt.Errorf("seg: SACK option length %d", len(b))
		}
		n := (len(b) - 2) / 8
		o := SACKOption{Blocks: make([]SACKBlock, n)}
		for i := 0; i < n; i++ {
			o.Blocks[i].Start = binary.BigEndian.Uint32(b[2+8*i:])
			o.Blocks[i].End = binary.BigEndian.Uint32(b[6+8*i:])
		}
		return o, nil
	case KindTimestamps:
		if len(b) != 10 {
			return nil, fmt.Errorf("seg: timestamps option length %d", len(b))
		}
		return TimestampsOption{
			Val: binary.BigEndian.Uint32(b[2:]),
			Ecr: binary.BigEndian.Uint32(b[6:]),
		}, nil
	case KindMPTCP:
		return decodeMPTCP(b)
	default:
		// Unknown options are skipped, as a real stack would.
		return nil, nil
	}
}

func decodeMPTCP(b []byte) (Option, error) {
	if len(b) < 3 {
		return nil, fmt.Errorf("seg: truncated MPTCP option")
	}
	sub := MPTCPSubtype(b[2] >> 4)
	switch sub {
	case SubMPCapable:
		if len(b) != 12 {
			return nil, fmt.Errorf("seg: MP_CAPABLE length %d", len(b))
		}
		return MPCapableOption{Key: binary.BigEndian.Uint64(b[4:])}, nil
	case SubMPJoin:
		if len(b) != 12 {
			return nil, fmt.Errorf("seg: MP_JOIN length %d", len(b))
		}
		return MPJoinOption{
			AddrID: b[3],
			Backup: b[2]&0x1 != 0,
			Token:  binary.BigEndian.Uint32(b[4:]),
			Nonce:  binary.BigEndian.Uint32(b[8:]),
		}, nil
	case SubDSS:
		flags := b[3]
		o := DSSOption{
			HasAck:  flags&0x03 != 0,
			HasMap:  flags&0x0C != 0,
			DataFin: flags&0x10 != 0,
		}
		p := 4
		if o.HasAck {
			if len(b) < p+8 {
				return nil, fmt.Errorf("seg: truncated DSS ack")
			}
			o.DataAck = binary.BigEndian.Uint64(b[p:])
			p += 8
		}
		if o.HasMap {
			if len(b) < p+14 {
				return nil, fmt.Errorf("seg: truncated DSS map")
			}
			o.DataSeq = binary.BigEndian.Uint64(b[p:])
			o.SubflowSeq = binary.BigEndian.Uint32(b[p+8:])
			o.Length = binary.BigEndian.Uint16(b[p+12:])
			p += 14
		}
		return o, nil
	case SubAddAddr:
		if len(b) != 10 {
			return nil, fmt.Errorf("seg: ADD_ADDR length %d", len(b))
		}
		var a Addr
		copy(a.IP[:], b[4:8])
		a.Port = binary.BigEndian.Uint16(b[8:])
		return AddAddrOption{AddrID: b[3], Addr: a}, nil
	case SubRemoveAddr:
		if len(b) != 10 {
			return nil, fmt.Errorf("seg: REMOVE_ADDR length %d", len(b))
		}
		var a Addr
		copy(a.IP[:], b[4:8])
		a.Port = binary.BigEndian.Uint16(b[8:])
		return RemoveAddrOption{AddrID: b[3], Addr: a}, nil
	case SubFastClose:
		if len(b) != 12 {
			return nil, fmt.Errorf("seg: MP_FASTCLOSE length %d", len(b))
		}
		return FastCloseOption{Key: binary.BigEndian.Uint64(b[4:])}, nil
	default:
		return nil, fmt.Errorf("seg: unknown MPTCP subtype %v", sub)
	}
}
