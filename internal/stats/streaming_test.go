package stats

import (
	"math"
	"math/rand"
	"testing"
)

// generators produce the input shapes fleet metrics actually have:
// flat, heavy-tailed, and multi-modal positive data.
var generators = []struct {
	name string
	gen  func(r *rand.Rand) float64
}{
	{"uniform", func(r *rand.Rand) float64 { return 1 + 999*r.Float64() }},
	{"lognormal", func(r *rand.Rand) float64 { return math.Exp(2 + 1.5*r.NormFloat64()) }},
	{"pareto", func(r *rand.Rand) float64 { return 8 * math.Pow(r.Float64(), -1/1.2) }},
	{"bimodal", func(r *rand.Rand) float64 {
		if r.Intn(2) == 0 {
			return 5 + r.Float64()
		}
		return 500 + 100*r.Float64()
	}},
}

var quantiles = []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99}

// TestLogHistVsExactSample is the streaming-estimator property test:
// on random inputs the histogram's mean must match the exact Sample
// mean and its quantiles must land within the documented relative
// error bound — two bin-edge ratios in log space — of the exact
// Sample quantiles.
func TestLogHistVsExactSample(t *testing.T) {
	const (
		lo, hi = 1e-2, 1e6
		bins   = 256
		n      = 5000
	)
	// Two bin widths in log space: the estimate and the exact quantile
	// can land in adjacent bins before interpolation error.
	bound := 2 * math.Log(hi/lo) / bins
	for _, g := range generators {
		for seed := int64(1); seed <= 5; seed++ {
			r := rand.New(rand.NewSource(seed))
			h := NewLogHist(lo, hi, bins)
			exact := New()
			for i := 0; i < n; i++ {
				x := g.gen(r)
				h.Add(x)
				exact.Add(x)
			}
			if h.N() != int64(exact.N()) {
				t.Fatalf("%s/%d: N %d != %d", g.name, seed, h.N(), exact.N())
			}
			if diff := math.Abs(h.Mean() - exact.Mean()); diff > 1e-6*math.Abs(exact.Mean()) {
				t.Errorf("%s/%d: mean %g != exact %g", g.name, seed, h.Mean(), exact.Mean())
			}
			if h.Min() != exact.Min() || h.Max() != exact.Max() {
				t.Errorf("%s/%d: min/max %g/%g != exact %g/%g",
					g.name, seed, h.Min(), h.Max(), exact.Min(), exact.Max())
			}
			for _, q := range quantiles {
				est, ex := h.Quantile(q), exact.Quantile(q)
				if ex <= 0 {
					continue
				}
				if err := math.Abs(math.Log(est / ex)); err > bound {
					t.Errorf("%s/%d: q%.2f est %g vs exact %g (log err %.4f > %.4f)",
						g.name, seed, q, est, ex, err, bound)
				}
			}
		}
	}
}

// TestP2QuantileVsExactSample pins the P² estimator against the exact
// sample quantile by rank: the estimate's rank in the exact sorted
// sample must be within a few percent of the target quantile. (P² has
// no worst-case value-error bound, but its rank error on smooth data
// is small and stable — this is the property the fleet p99 relies on.)
func TestP2QuantileVsExactSample(t *testing.T) {
	const n = 5000
	for _, g := range generators {
		for _, p := range []float64{0.5, 0.9, 0.99} {
			for seed := int64(1); seed <= 5; seed++ {
				r := rand.New(rand.NewSource(seed))
				est := NewP2Quantile(p)
				exact := New()
				for i := 0; i < n; i++ {
					x := g.gen(r)
					est.Add(x)
					exact.Add(x)
				}
				v := est.Value()
				// Rank of the estimate within the exact sample.
				rank := 1 - exact.FractionAbove(v)
				if diff := math.Abs(rank - p); diff > 0.04 {
					t.Errorf("%s p%.2f seed %d: estimate %g sits at rank %.3f (|Δ| %.3f > 0.04)",
						g.name, p, seed, v, rank, diff)
				}
			}
		}
	}
}

// TestP2QuantileSmallN: below five observations the estimator must be
// exact (it interpolates the sorted partial sample).
func TestP2QuantileSmallN(t *testing.T) {
	xs := []float64{5, 1, 4, 2}
	est := NewP2Quantile(0.5)
	exact := New()
	for i, x := range xs {
		est.Add(x)
		exact.Add(x)
		if got, want := est.Value(), exact.Quantile(0.5); got != want {
			t.Fatalf("after %d adds: P2 median %g != exact %g", i+1, got, want)
		}
	}
}

// TestLogHistUnderOverflow exercises observations outside [lo, hi).
func TestLogHistUnderOverflow(t *testing.T) {
	h := NewLogHist(1, 100, 10)
	for _, x := range []float64{0.1, 0.5, 2, 50, 200, 1000} {
		h.Add(x)
	}
	if h.N() != 6 {
		t.Fatalf("N = %d", h.N())
	}
	if got := h.Quantile(0); got != 0.1 {
		t.Errorf("q0 = %g, want exact min 0.1", got)
	}
	if got := h.Quantile(1); got != 1000 {
		t.Errorf("q1 = %g, want exact max 1000", got)
	}
	// The 5/6 rank boundary falls in the overflow range [100, 1000].
	if got := h.Quantile(0.99); got < 100 || got > 1000 {
		t.Errorf("q0.99 = %g, want within overflow range [100,1000]", got)
	}
	if got := h.FractionAbove(100); got != 2.0/6 {
		t.Errorf("FractionAbove(100) = %g, want 1/3", got)
	}
}

// TestLogHistMerge: merging two histograms must equal histogramming
// the concatenated stream.
func TestLogHistMerge(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	a, b, all := NewLogHist(1, 1e4, 64), NewLogHist(1, 1e4, 64), NewLogHist(1, 1e4, 64)
	for i := 0; i < 1000; i++ {
		x := math.Exp(4 + 2*r.NormFloat64())
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
		all.Add(x)
	}
	a.Merge(b)
	if a.N() != all.N() {
		t.Fatalf("merge N %d != %d", a.N(), all.N())
	}
	// Sums are folded in a different order, so the means may differ by
	// float rounding — but nothing more.
	if diff := math.Abs(a.Mean() - all.Mean()); diff > 1e-9*all.Mean() {
		t.Fatalf("merge mean %g != %g", a.Mean(), all.Mean())
	}
	for _, q := range quantiles {
		if got, want := a.Quantile(q), all.Quantile(q); got != want {
			t.Errorf("merge q%.2f %g != %g", q, got, want)
		}
	}
}

// TestAccJain checks the closed forms: equal shares give 1, a single
// hog among n flows gives 1/n.
func TestAccJain(t *testing.T) {
	var eq Acc
	for i := 0; i < 8; i++ {
		eq.Add(3.5)
	}
	if got := eq.Jain(); math.Abs(got-1) > 1e-12 {
		t.Errorf("equal shares: Jain %g != 1", got)
	}
	var hog Acc
	hog.Add(100)
	for i := 0; i < 9; i++ {
		hog.Add(0)
	}
	if got := hog.Jain(); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("one hog in 10: Jain %g != 0.1", got)
	}
	var mixed Acc
	for _, x := range []float64{1, 2, 3, 4} {
		mixed.Add(x)
	}
	// (1+2+3+4)²/(4·(1+4+9+16)) = 100/120.
	if got, want := mixed.Jain(), 100.0/120.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("mixed: Jain %g != %g", got, want)
	}
}

// TestAccMergeAndMoments pins Acc against the exact Sample.
func TestAccMergeAndMoments(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	var a, b Acc
	exact := New()
	for i := 0; i < 500; i++ {
		x := r.Float64() * 100
		exact.Add(x)
		if i%3 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(&b)
	if a.N() != int64(exact.N()) {
		t.Fatalf("N %d != %d", a.N(), exact.N())
	}
	if math.Abs(a.Mean()-exact.Mean()) > 1e-9 {
		t.Errorf("mean %g != %g", a.Mean(), exact.Mean())
	}
	if a.Min() != exact.Min() || a.Max() != exact.Max() {
		t.Errorf("min/max %g/%g != %g/%g", a.Min(), a.Max(), exact.Min(), exact.Max())
	}
}

// TestSampleValuesDefensiveCopy guards the aliasing fix: mutating the
// returned slice must not corrupt later quantiles.
func TestSampleValuesDefensiveCopy(t *testing.T) {
	s := Of(3, 1, 2)
	vs := s.Values()
	vs[0] = 1e9
	if got := s.Min(); got != 1 {
		t.Fatalf("mutating Values() corrupted the sample: min = %g", got)
	}
	if got := s.Median(); got != 2 {
		t.Fatalf("mutating Values() corrupted the sample: median = %g", got)
	}
}

// TestStreamingAccessors pins the small accessor surface the exporters
// and CLIs read: exact moments riding along the histogram, and the P²
// estimator's identity methods.
func TestStreamingAccessors(t *testing.T) {
	h := NewLogHist(1, 100, 8)
	var a Acc
	for _, x := range []float64{2, 4, 8, 16} {
		h.Add(x)
		a.Add(x)
	}
	if h.Bins() != 8 {
		t.Errorf("Bins() = %d, want 8", h.Bins())
	}
	if got := a.Sum(); got != 30 {
		t.Errorf("Acc.Sum() = %v, want 30", got)
	}
	if got, want := h.Stddev(), a.Stddev(); got != want {
		t.Errorf("LogHist.Stddev() = %v, want Acc's %v", got, want)
	}
	// Population stddev of {2,4,8,16}: mean 7.5, E[x^2] = 85.
	if want := math.Sqrt(85 - 7.5*7.5); math.Abs(a.Stddev()-want) > 1e-12 {
		t.Errorf("Acc.Stddev() = %v, want %v", a.Stddev(), want)
	}

	p := NewP2Quantile(0.9)
	if p.P() != 0.9 {
		t.Errorf("P() = %v, want 0.9", p.P())
	}
	for i := 0; i < 10; i++ {
		p.Add(float64(i))
	}
	if p.N() != 10 {
		t.Errorf("N() = %d, want 10", p.N())
	}
}
