package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestMeanStddevStderr(t *testing.T) {
	s := Of(2, 4, 4, 4, 5, 5, 7, 9)
	if got := s.Mean(); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	// Known population: sample variance = 32/7.
	if got := s.Var(); math.Abs(got-32.0/7) > 1e-12 {
		t.Errorf("Var = %v, want %v", got, 32.0/7)
	}
	wantSE := math.Sqrt(32.0/7) / math.Sqrt(8)
	if got := s.Stderr(); math.Abs(got-wantSE) > 1e-12 {
		t.Errorf("Stderr = %v, want %v", got, wantSE)
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	e := New()
	if e.Mean() != 0 || e.Stderr() != 0 || e.Min() != 0 || e.Max() != 0 || e.Median() != 0 {
		t.Error("empty sample statistics not all zero")
	}
	s := Of(42)
	if s.Mean() != 42 || s.Median() != 42 || s.Stderr() != 0 {
		t.Error("singleton statistics wrong")
	}
}

func TestQuantiles(t *testing.T) {
	s := Of(1, 2, 3, 4, 5)
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
		{-1, 1}, {2, 5}, // clamped
		{0.1, 1.4}, // interpolated
	}
	for _, c := range cases {
		if got := s.Quantile(c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestBoxSummary(t *testing.T) {
	s := Of(10, 20, 30, 40, 50)
	b := s.BoxSummary()
	if b.Min != 10 || b.Q1 != 20 || b.Median != 30 || b.Q3 != 40 || b.Max != 50 || b.N != 5 {
		t.Errorf("Box = %+v", b)
	}
	if b.String() == "" {
		t.Error("Box.String empty")
	}
}

func TestCCDF(t *testing.T) {
	s := Of(1, 2, 3, 4)
	got := s.CCDF([]float64{0, 1, 2.5, 4, 5})
	want := []float64{1, 0.75, 0.5, 0, 0}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("CCDF[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if s.FractionAbove(0) != 1 {
		t.Error("FractionAbove(0) != 1")
	}
	// CCDF at exactly a data value excludes it: P(X > 4) = 0.
	if s.CCDFAt(4) != 0 {
		t.Errorf("CCDFAt(4) = %v", s.CCDFAt(4))
	}
}

func TestCCDFMonotoneProperty(t *testing.T) {
	f := func(xs []float64, ts []float64) bool {
		if len(xs) == 0 {
			return true
		}
		s := New()
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				s.Add(x)
			}
		}
		if s.N() == 0 {
			return true
		}
		clean := ts[:0]
		for _, v := range ts {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				clean = append(clean, v)
			}
		}
		sort.Float64s(clean)
		ps := s.CCDF(clean)
		for i := 1; i < len(ps); i++ {
			if ps[i] > ps[i-1]+1e-12 {
				return false
			}
		}
		for _, p := range ps {
			if p < 0 || p > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuantileOrderProperty(t *testing.T) {
	f := func(xs []float64) bool {
		s := New()
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				s.Add(x)
			}
		}
		if s.N() == 0 {
			return true
		}
		q25, q50, q75 := s.Quantile(0.25), s.Quantile(0.5), s.Quantile(0.75)
		return s.Min() <= q25 && q25 <= q50 && q50 <= q75 && q75 <= s.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLogSpace(t *testing.T) {
	pts := LogSpace(10, 1000, 3)
	want := []float64{10, 100, 1000}
	for i := range want {
		if math.Abs(pts[i]-want[i]) > 1e-9 {
			t.Errorf("LogSpace[%d] = %v, want %v", i, pts[i], want[i])
		}
	}
	if got := LogSpace(0, 10, 5); len(got) != 1 {
		t.Error("LogSpace with lo=0 should degrade to single point")
	}
}

func TestMeanStderrFormat(t *testing.T) {
	s := Of(1, 2, 3)
	if got := s.MeanStderr(); got != "2.00±0.58" {
		t.Errorf("MeanStderr = %q", got)
	}
}

func TestAddAllAndValues(t *testing.T) {
	s := New()
	s.AddAll([]float64{3, 1, 2})
	v := s.Values()
	if v[0] != 1 || v[1] != 2 || v[2] != 3 {
		t.Errorf("Values not sorted: %v", v)
	}
	// Adding after Values still works.
	s.Add(0)
	if s.Min() != 0 {
		t.Error("Min after late Add wrong")
	}
}

func TestAddDropsNaN(t *testing.T) {
	s := Of(1, 2, 3)
	s.Add(math.NaN())
	if s.N() != 3 {
		t.Fatalf("NaN was admitted: N = %d", s.N())
	}
	s.AddAll([]float64{math.NaN(), 4, math.NaN()})
	if s.N() != 4 {
		t.Fatalf("AddAll NaN filtering wrong: N = %d", s.N())
	}
	if m := s.Mean(); math.IsNaN(m) || m != 2.5 {
		t.Errorf("Mean after NaN adds = %v, want 2.5", m)
	}
	if q := s.Quantile(0.5); math.IsNaN(q) {
		t.Error("Quantile poisoned by NaN")
	}
}

func TestQuantileEdgeSizes(t *testing.T) {
	// Zero elements: every statistic is zero, no panic.
	e := New()
	for _, q := range []float64{0, 0.25, 0.5, 1} {
		if got := e.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%v) = %v", q, got)
		}
	}
	if b := e.BoxSummary(); b.N != 0 || b.Min != 0 || b.Max != 0 {
		t.Errorf("empty BoxSummary = %+v", b)
	}
	// One element: every quantile is that element.
	s := Of(7)
	for _, q := range []float64{0, 0.01, 0.5, 0.99, 1} {
		if got := s.Quantile(q); got != 7 {
			t.Errorf("singleton Quantile(%v) = %v, want 7", q, got)
		}
	}
	// Two elements interpolate linearly.
	s2 := Of(10, 20)
	if got := s2.Quantile(0.5); got != 15 {
		t.Errorf("two-element median = %v, want 15", got)
	}
	if got := s2.Quantile(0.25); got != 12.5 {
		t.Errorf("two-element Q1 = %v, want 12.5", got)
	}
}

func TestVarSingleton(t *testing.T) {
	if v := Of(5).Var(); v != 0 {
		t.Errorf("singleton Var = %v", v)
	}
	if sd := Of(5).Stddev(); sd != 0 {
		t.Errorf("singleton Stddev = %v", sd)
	}
}
