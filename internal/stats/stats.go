// Package stats provides the summary statistics the paper reports:
// sample mean ± standard error (Tables 2-7), box-and-whisker summaries
// (Figures 2, 4, 6, 8, 9, 11), and CDF/CCDF series (Figures 12, 13).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Sample is a growing collection of float64 observations.
type Sample struct {
	xs     []float64
	sorted bool
}

// New returns an empty sample.
func New() *Sample { return &Sample{} }

// Of builds a sample from values.
func Of(xs ...float64) *Sample {
	s := New()
	for _, x := range xs {
		s.Add(x)
	}
	return s
}

// Add appends one observation. NaN observations are dropped: a single
// NaN would poison every downstream statistic and break the sorted
// order the quantile machinery depends on.
func (s *Sample) Add(x float64) {
	if math.IsNaN(x) {
		return
	}
	s.xs = append(s.xs, x)
	s.sorted = false
}

// AddAll appends many observations, dropping NaNs like Add.
func (s *Sample) AddAll(xs []float64) {
	for _, x := range xs {
		s.Add(x)
	}
}

// N reports the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Values returns a copy of the observations in sorted order. The copy
// is defensive: earlier versions returned the internal slice, and a
// caller mutating it would silently corrupt every later quantile.
// Callers that only need order statistics should prefer Quantile.
func (s *Sample) Values() []float64 {
	s.sort()
	out := make([]float64, len(s.xs))
	copy(out, s.xs)
	return out
}

func (s *Sample) sort() {
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
}

// Mean reports the sample mean (0 for an empty sample).
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Var reports the unbiased sample variance.
func (s *Sample) Var() float64 {
	n := len(s.xs)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	var ss float64
	for _, x := range s.xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// Stddev reports the sample standard deviation.
func (s *Sample) Stddev() float64 { return math.Sqrt(s.Var()) }

// Stderr reports the standard error of the mean — the "± " the paper's
// tables quote.
func (s *Sample) Stderr() float64 {
	if len(s.xs) < 2 {
		return 0
	}
	return s.Stddev() / math.Sqrt(float64(len(s.xs)))
}

// Min reports the smallest observation.
func (s *Sample) Min() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.sort()
	return s.xs[0]
}

// Max reports the largest observation.
func (s *Sample) Max() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.sort()
	return s.xs[len(s.xs)-1]
}

// Quantile reports the q-quantile (0 <= q <= 1) by linear
// interpolation between order statistics.
func (s *Sample) Quantile(q float64) float64 {
	n := len(s.xs)
	if n == 0 {
		return 0
	}
	s.sort()
	if q <= 0 {
		return s.xs[0]
	}
	if q >= 1 {
		return s.xs[n-1]
	}
	pos := q * float64(n-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= n {
		return s.xs[n-1]
	}
	return s.xs[lo]*(1-frac) + s.xs[lo+1]*frac
}

// Median reports the 0.5 quantile.
func (s *Sample) Median() float64 { return s.Quantile(0.5) }

// MeanStderr formats "mean±stderr" as the paper's tables do.
func (s *Sample) MeanStderr() string {
	return fmt.Sprintf("%.2f±%.2f", s.Mean(), s.Stderr())
}

// Box is a five-number box-and-whisker summary (the paper's download
// time figures: min, Q1, median, Q3, max).
type Box struct {
	Min, Q1, Median, Q3, Max float64
	N                        int
}

// BoxSummary computes the box-plot summary of the sample.
func (s *Sample) BoxSummary() Box {
	return Box{
		Min:    s.Min(),
		Q1:     s.Quantile(0.25),
		Median: s.Median(),
		Q3:     s.Quantile(0.75),
		Max:    s.Max(),
		N:      s.N(),
	}
}

// String renders the box compactly.
func (b Box) String() string {
	return fmt.Sprintf("[%.3g | %.3g ▁%.3g▁ %.3g | %.3g] n=%d",
		b.Min, b.Q1, b.Median, b.Q3, b.Max, b.N)
}

// CCDF returns the complementary CDF evaluated at each of the given
// thresholds: P(X > t).
func (s *Sample) CCDF(thresholds []float64) []float64 {
	s.sort()
	out := make([]float64, len(thresholds))
	n := float64(len(s.xs))
	if n == 0 {
		return out
	}
	for i, t := range thresholds {
		// Count of xs > t = n - upperBound(t).
		idx := sort.SearchFloat64s(s.xs, math.Nextafter(t, math.Inf(1)))
		out[i] = float64(len(s.xs)-idx) / n
	}
	return out
}

// CCDFAt reports P(X > t).
func (s *Sample) CCDFAt(t float64) float64 {
	return s.CCDF([]float64{t})[0]
}

// FractionAbove is an alias of CCDFAt for readability at call sites.
func (s *Sample) FractionAbove(t float64) float64 { return s.CCDFAt(t) }

// LogSpace generates n logarithmically spaced points in [lo, hi],
// matching the paper's log-scale CCDF axes.
func LogSpace(lo, hi float64, n int) []float64 {
	if n < 2 || lo <= 0 || hi <= lo {
		return []float64{lo}
	}
	out := make([]float64, n)
	ratio := math.Pow(hi/lo, 1/float64(n-1))
	x := lo
	for i := range out {
		out[i] = x
		x *= ratio
	}
	return out
}
