package stats

// Streaming estimators for fleet-scale metrics. A campaign of a few
// dozen downloads can afford to keep every sample in a Sample; a fleet
// of thousands of concurrent flows cannot — per-packet RTTs alone
// would be O(flows × samples). The types here hold O(bins) (LogHist)
// or O(1) (Acc, P2Quantile) memory no matter how many observations
// stream through, at the cost of bounded approximation error that the
// property tests in streaming_test.go pin against the exact Sample.

import (
	"fmt"
	"math"
)

// Acc is a constant-memory accumulator of count, sum, sum of squares,
// min and max — enough for mean, stddev, and Jain's fairness index.
type Acc struct {
	n          int64
	sum, sumsq float64
	minv, maxv float64
}

// Add folds one observation in. NaNs are dropped, as Sample.Add does.
func (a *Acc) Add(x float64) {
	if math.IsNaN(x) {
		return
	}
	if a.n == 0 || x < a.minv {
		a.minv = x
	}
	if a.n == 0 || x > a.maxv {
		a.maxv = x
	}
	a.n++
	a.sum += x
	a.sumsq += x * x
}

// N reports the number of observations.
func (a *Acc) N() int64 { return a.n }

// Sum reports the running total.
func (a *Acc) Sum() float64 { return a.sum }

// Mean reports the running mean (0 when empty).
func (a *Acc) Mean() float64 {
	if a.n == 0 {
		return 0
	}
	return a.sum / float64(a.n)
}

// Min reports the smallest observation (0 when empty).
func (a *Acc) Min() float64 { return a.minv }

// Max reports the largest observation (0 when empty).
func (a *Acc) Max() float64 { return a.maxv }

// Stddev reports the population standard deviation. Computed from the
// sum of squares, so it can wobble for huge means; fleet metrics
// (seconds, Mbps) are far from that regime.
func (a *Acc) Stddev() float64 {
	if a.n < 2 {
		return 0
	}
	m := a.Mean()
	v := a.sumsq/float64(a.n) - m*m
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// Jain reports Jain's fairness index (sum x)² / (n · sum x²) over the
// accumulated observations: 1 when all shares are equal, 1/n when one
// flow has everything. Empty accumulators report 0.
func (a *Acc) Jain() float64 {
	if a.n == 0 || a.sumsq == 0 {
		return 0
	}
	return a.sum * a.sum / (float64(a.n) * a.sumsq)
}

// Merge folds another accumulator into this one.
func (a *Acc) Merge(b *Acc) {
	if b.n == 0 {
		return
	}
	if a.n == 0 || b.minv < a.minv {
		a.minv = b.minv
	}
	if a.n == 0 || b.maxv > a.maxv {
		a.maxv = b.maxv
	}
	a.n += b.n
	a.sum += b.sum
	a.sumsq += b.sumsq
}

// LogHist is a fixed-bin histogram with logarithmically spaced bin
// edges over [Lo, Hi) plus underflow and overflow ranges. Memory is
// O(bins) forever. Quantile estimates carry bounded *relative* error:
// the estimate lands in the same (or an adjacent) bin as the exact
// sample quantile, so it is within roughly two bin-edge ratios
// (2·ln(Hi/Lo)/bins in log space) of the exact value — the bound the
// property tests assert.
type LogHist struct {
	lo, hi  float64
	invLogW float64 // bins / ln(hi/lo), precomputed for Add
	counts  []uint64
	under   uint64 // observations < lo (incl. zero and negative)
	over    uint64 // observations >= hi
	acc     Acc    // exact count/sum/min/max ride along for free
}

// NewLogHist returns a histogram of the given bin count over [lo, hi).
// lo must be positive and hi > lo; bins must be at least 1.
func NewLogHist(lo, hi float64, bins int) *LogHist {
	if !(lo > 0) || !(hi > lo) || bins < 1 {
		panic(fmt.Sprintf("stats: bad LogHist geometry [%g,%g) x%d", lo, hi, bins))
	}
	return &LogHist{
		lo: lo, hi: hi,
		invLogW: float64(bins) / math.Log(hi/lo),
		counts:  make([]uint64, bins),
	}
}

// Add folds one observation in. NaNs are dropped.
func (h *LogHist) Add(x float64) {
	if math.IsNaN(x) {
		return
	}
	h.acc.Add(x)
	if x < h.lo {
		h.under++
		return
	}
	if x >= h.hi {
		h.over++
		return
	}
	i := int(math.Log(x/h.lo) * h.invLogW)
	if i >= len(h.counts) { // guard float rounding at the top edge
		i = len(h.counts) - 1
	}
	h.counts[i]++
}

// N reports the number of observations.
func (h *LogHist) N() int64 { return h.acc.N() }

// Bins reports the configured bin count.
func (h *LogHist) Bins() int { return len(h.counts) }

// Mean reports the exact running mean.
func (h *LogHist) Mean() float64 { return h.acc.Mean() }

// Min reports the exact minimum observation.
func (h *LogHist) Min() float64 { return h.acc.Min() }

// Max reports the exact maximum observation.
func (h *LogHist) Max() float64 { return h.acc.Max() }

// Stddev reports the exact-sum population standard deviation.
func (h *LogHist) Stddev() float64 { return h.acc.Stddev() }

// edge returns the i-th bin edge (0..bins), log-spaced.
func (h *LogHist) edge(i int) float64 {
	if i <= 0 {
		return h.lo
	}
	if i >= len(h.counts) {
		return h.hi
	}
	return h.lo * math.Exp(float64(i)/h.invLogW)
}

// Quantile estimates the q-quantile by walking the cumulative counts
// and interpolating log-linearly inside the covering bin. Underflow
// mass interpolates between the exact min and lo; overflow between hi
// and the exact max.
func (h *LogHist) Quantile(q float64) float64 {
	n := h.acc.N()
	if n == 0 {
		return 0
	}
	if q <= 0 {
		return h.acc.Min()
	}
	if q >= 1 {
		return h.acc.Max()
	}
	rank := q * float64(n)
	cum := float64(h.under)
	if rank <= cum {
		// Inside the underflow range: linear between min and lo.
		lo := h.acc.Min()
		return lo + (h.lo-lo)*(rank/cum)
	}
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if rank <= next {
			frac := (rank - cum) / float64(c)
			a, b := h.edge(i), h.edge(i+1)
			return a * math.Pow(b/a, frac)
		}
		cum = next
	}
	// Overflow range: linear between hi and max.
	if h.over == 0 {
		return h.acc.Max()
	}
	frac := (rank - cum) / float64(h.over)
	if frac > 1 {
		frac = 1
	}
	return h.hi + (h.acc.Max()-h.hi)*frac
}

// FractionAbove reports the estimated P(X > t), rounding t up to the
// covering bin edge (exact at bin edges; bounded by one bin otherwise).
func (h *LogHist) FractionAbove(t float64) float64 {
	n := h.acc.N()
	if n == 0 {
		return 0
	}
	if t < h.lo {
		return float64(n-int64(h.under)) / float64(n)
	}
	if t >= h.hi {
		return float64(h.over) / float64(n)
	}
	i := int(math.Log(t/h.lo) * h.invLogW)
	if i >= len(h.counts) {
		i = len(h.counts) - 1
	}
	var above uint64 = h.over
	for j := i + 1; j < len(h.counts); j++ {
		above += h.counts[j]
	}
	return float64(above) / float64(n)
}

// Merge folds another histogram with identical geometry into this one.
func (h *LogHist) Merge(o *LogHist) {
	if o.lo != h.lo || o.hi != h.hi || len(o.counts) != len(h.counts) {
		panic("stats: merging LogHists with different geometry")
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.under += o.under
	h.over += o.over
	h.acc.Merge(&o.acc)
}

// P2Quantile estimates a single quantile online with the P² algorithm
// (Jain & Chlamtac, CACM 1985): five markers, O(1) memory and O(1)
// per observation, no distribution assumptions.
type P2Quantile struct {
	p     float64
	n     int64
	q     [5]float64 // marker heights
	pos   [5]float64 // marker positions (1-based)
	want  [5]float64 // desired positions
	dwant [5]float64 // desired-position increments
}

// NewP2Quantile returns an estimator for the p-quantile (0 < p < 1).
func NewP2Quantile(p float64) *P2Quantile {
	if !(p > 0 && p < 1) {
		panic(fmt.Sprintf("stats: P2 quantile p=%g outside (0,1)", p))
	}
	e := &P2Quantile{p: p}
	e.pos = [5]float64{1, 2, 3, 4, 5}
	e.want = [5]float64{1, 1 + 2*p, 1 + 4*p, 3 + 2*p, 5}
	e.dwant = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
	return e
}

// P reports the target quantile.
func (e *P2Quantile) P() float64 { return e.p }

// N reports the number of observations.
func (e *P2Quantile) N() int64 { return e.n }

// Add folds one observation in. NaNs are dropped.
func (e *P2Quantile) Add(x float64) {
	if math.IsNaN(x) {
		return
	}
	if e.n < 5 {
		// Insertion-sort the first five observations into the markers.
		i := int(e.n)
		for i > 0 && e.q[i-1] > x {
			e.q[i] = e.q[i-1]
			i--
		}
		e.q[i] = x
		e.n++
		return
	}
	e.n++

	// Find the cell k such that q[k] <= x < q[k+1], clamping extremes.
	var k int
	switch {
	case x < e.q[0]:
		e.q[0] = x
		k = 0
	case x >= e.q[4]:
		e.q[4] = x
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if x < e.q[k+1] {
				break
			}
		}
	}

	for i := k + 1; i < 5; i++ {
		e.pos[i]++
	}
	for i := range e.want {
		e.want[i] += e.dwant[i]
	}

	// Nudge the three interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := e.want[i] - e.pos[i]
		if (d >= 1 && e.pos[i+1]-e.pos[i] > 1) || (d <= -1 && e.pos[i-1]-e.pos[i] < -1) {
			s := 1.0
			if d < 0 {
				s = -1.0
			}
			qn := e.parabolic(i, s)
			if e.q[i-1] < qn && qn < e.q[i+1] {
				e.q[i] = qn
			} else {
				e.q[i] = e.linear(i, s)
			}
			e.pos[i] += s
		}
	}
}

// parabolic is the P² piecewise-parabolic marker adjustment.
func (e *P2Quantile) parabolic(i int, s float64) float64 {
	return e.q[i] + s/(e.pos[i+1]-e.pos[i-1])*
		((e.pos[i]-e.pos[i-1]+s)*(e.q[i+1]-e.q[i])/(e.pos[i+1]-e.pos[i])+
			(e.pos[i+1]-e.pos[i]-s)*(e.q[i]-e.q[i-1])/(e.pos[i]-e.pos[i-1]))
}

// linear is the fallback adjustment when the parabola escapes the
// neighbouring markers.
func (e *P2Quantile) linear(i int, s float64) float64 {
	j := i + int(s)
	return e.q[i] + s*(e.q[j]-e.q[i])/(e.pos[j]-e.pos[i])
}

// Value reports the current quantile estimate. With fewer than five
// observations it interpolates the exact partial sample.
func (e *P2Quantile) Value() float64 {
	if e.n == 0 {
		return 0
	}
	if e.n < 5 {
		// Exact quantile of the sorted partial sample.
		pos := e.p * float64(e.n-1)
		lo := int(pos)
		frac := pos - float64(lo)
		if lo+1 >= int(e.n) {
			return e.q[e.n-1]
		}
		return e.q[lo]*(1-frac) + e.q[lo+1]*frac
	}
	return e.q[2]
}
